//===- relation_cache_test.cpp - Hot-path caching correctness ------------===//
//
// The caching layer must be invisible: every answer a cached solver gives
// is the answer the uncached solver gives, mutating a predicate can never
// resurrect a stale entry, and the whole lifting pipeline produces
// bit-identical results with the caches on — serially and in parallel.
// The two worklist orders must agree on graph structure (vertices, edges,
// outcomes); their invariants may differ because join order matters in a
// non-distributive domain. These tests pin each of those properties
// directly; bench_step1_hotpath measures what the caches buy.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "hg/Lifter.h"
#include "hg/StateMemo.h"
#include "smt/RelationSolver.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace hglift;
using expr::Expr;
using expr::ExprContext;
using expr::VarClass;
using pred::Pred;
using pred::RelOp;
using smt::MemRel;
using smt::Region;
using smt::RelationSolver;

namespace {

// --- version stamps -------------------------------------------------------

TEST(PredVersion, EveryMutatorBumps) {
  ExprContext Ctx;
  Pred P = Pred::entry(Ctx);
  uint64_t V = P.version();
  auto Bumped = [&](const char *What) {
    EXPECT_NE(P.version(), V) << What << " did not re-stamp";
    V = P.version();
  };

  P.setReg64(x86::Reg::RAX, Ctx.mkConst(1, 64));
  Bumped("setReg64");
  P.writeReg(Ctx, x86::Reg::RBX, 4, false, Ctx.mkConst(2, 32));
  Bumped("writeReg");
  P.setFlagsCmp(Ctx.mkConst(1, 64), Ctx.mkConst(2, 64), 64);
  Bumped("setFlagsCmp");
  P.setFlagsTest(Ctx.mkConst(1, 64), Ctx.mkConst(1, 64), 64);
  Bumped("setFlagsTest");
  P.setFlagsRes(Ctx.mkConst(3, 64), 64);
  Bumped("setFlagsRes");
  P.setFlagsZeroOf(Ctx.mkConst(3, 64), 64);
  Bumped("setFlagsZeroOf");
  P.clearFlags();
  Bumped("clearFlags");

  const Expr *A = Ctx.mkAddK(P.reg64(x86::Reg::RSP), -8);
  P.setCell(A, 8, Ctx.mkConst(7, 64));
  Bumped("setCell");
  P.removeCell(A, 8);
  Bumped("removeCell");
  P.setCell(A, 8, Ctx.mkConst(7, 64));
  Bumped("setCell (re-add)");
  P.filterCells([](const pred::MemCell &) { return false; });
  Bumped("filterCells");

  const Expr *E = Ctx.mkVar(VarClass::InitReg, "rdi0");
  P.addRange(E, RelOp::ULe, 100);
  Bumped("addRange");
  P.clearRangesFor(E);
  Bumped("clearRangesFor");
  P.setBottom();
  Bumped("setBottom");
}

TEST(PredVersion, NoOpMutationsKeepStamp) {
  ExprContext Ctx;
  Pred P = Pred::entry(Ctx);
  const Expr *A = Ctx.mkAddK(P.reg64(x86::Reg::RSP), -8);
  const Expr *V7 = Ctx.mkConst(7, 64);
  P.setCell(A, 8, V7);
  uint64_t V = P.version();
  P.setCell(A, 8, V7); // same value: content unchanged
  EXPECT_EQ(P.version(), V);
  P.removeCell(A, 16); // no such cell
  EXPECT_EQ(P.version(), V);
  P.clearRangesFor(A); // no ranges on A
  EXPECT_EQ(P.version(), V);
}

TEST(PredVersion, CopiesShareStampUntilMutated) {
  ExprContext Ctx;
  Pred P = Pred::entry(Ctx);
  Pred Q = P;
  EXPECT_EQ(P.version(), Q.version());
  EXPECT_TRUE(P == Q);
  EXPECT_EQ(P.digest(), Q.digest());
  Q.setReg64(x86::Reg::RAX, Ctx.mkConst(5, 64));
  EXPECT_NE(P.version(), Q.version());
  EXPECT_FALSE(P == Q);
}

TEST(PredVersion, DigestFollowsContent) {
  // Two predicates built independently but identically have equal digests;
  // the digest memo keyed on the version stamp does not leak stale values
  // across mutations.
  ExprContext Ctx;
  Pred A = Pred::entry(Ctx), B = Pred::entry(Ctx);
  EXPECT_EQ(A.digest(), B.digest());
  A.setReg64(x86::Reg::RAX, Ctx.mkConst(1, 64));
  uint64_t DMut = A.digest();
  EXPECT_NE(DMut, B.digest());
  B.setReg64(x86::Reg::RAX, Ctx.mkConst(1, 64));
  EXPECT_EQ(A.digest(), B.digest());
}

// --- the relation cache ---------------------------------------------------

/// A pool of addresses exercising every solver layer: stack offsets,
/// argument-pointer offsets, globals, scaled indices.
std::vector<const Expr *> addrPool(ExprContext &Ctx, const Pred &P) {
  const Expr *Rsp0 = P.reg64(x86::Reg::RSP);
  const Expr *Rdi0 = Ctx.mkVar(VarClass::InitReg, "rdi0");
  const Expr *Idx = Ctx.mkZExt(Ctx.mkTrunc(Rdi0, 32), 64);
  std::vector<const Expr *> Pool;
  for (int64_t K : {0, -8, -16, -24, 4})
    Pool.push_back(Ctx.mkAddK(Rsp0, K));
  for (int64_t K : {0, 8, 12})
    Pool.push_back(Ctx.mkAddK(Rdi0, K));
  Pool.push_back(Ctx.mkConst(0x404000, 64));
  Pool.push_back(Ctx.mkConst(0x404010, 64));
  Pool.push_back(Ctx.mkAddK(
      Ctx.mkAdd(Rsp0, Ctx.mkBin(expr::Opcode::Mul, Idx, Ctx.mkConst(8, 64))),
      -0x20));
  return Pool;
}

TEST(RelationCache, CachedMatchesUncachedRandomized) {
  // The exactness property: for a randomized workload of relate() and
  // mustEqual() queries — with repeats, so the cache actually hits — the
  // cached solver and the uncached solver agree on every single answer.
  // Z3 is off so both solvers are pure functions of their inputs.
  ExprContext Ctx;
  RelationSolver::Config On, Off;
  On.UseZ3 = Off.UseZ3 = false;
  On.EnableCache = true;
  Off.EnableCache = false;
  RelationSolver Cached(Ctx, On), Uncached(Ctx, Off);

  Pred P = Pred::entry(Ctx);
  std::vector<const Expr *> Pool = addrPool(Ctx, P);
  Rng R(0xcac4e);
  const uint32_t Sizes[] = {1, 4, 8, 16};

  for (int Round = 0; Round < 4; ++Round) {
    for (int I = 0; I < 400; ++I) {
      Region R0{Pool[R.next() % Pool.size()],
                Sizes[R.next() % std::size(Sizes)]};
      Region R1{Pool[R.next() % Pool.size()],
                Sizes[R.next() % std::size(Sizes)]};
      ASSERT_EQ(Cached.relate(R0, R1, P), Uncached.relate(R0, R1, P))
          << "round " << Round << " query " << I << ": " << R0.str(Ctx)
          << " vs " << R1.str(Ctx);
      ASSERT_EQ(Cached.mustEqual(R0.Addr, R1.Addr, P),
                Uncached.mustEqual(R0.Addr, R1.Addr, P));
    }
    // Evolve the predicate between rounds; old entries must never leak.
    const Expr *Idx = Ctx.mkTrunc(Pool[5], 32);
    P.addRange(Idx, RelOp::ULe, 2 + static_cast<uint64_t>(Round));
  }
  EXPECT_GT(Cached.stats().CacheHits, 0u) << "workload never hit the cache";
  EXPECT_GT(Cached.stats().CacheMisses, 0u);
  EXPECT_EQ(Uncached.stats().CacheHits, 0u);
  EXPECT_EQ(Uncached.stats().CacheMisses, 0u);
}

TEST(RelationCache, RepeatQueryHitsMutationMisses) {
  ExprContext Ctx;
  RelationSolver::Config Cfg;
  Cfg.UseZ3 = false;
  RelationSolver S(Ctx, Cfg);
  Pred P = Pred::entry(Ctx);
  const Expr *Rsp0 = P.reg64(x86::Reg::RSP);
  Region R0{Ctx.mkAddK(Rsp0, -8), 8}, R1{Rsp0, 8};

  EXPECT_EQ(S.relate(R0, R1, P), MemRel::MustSep);
  uint64_t Misses = S.stats().CacheMisses;
  EXPECT_EQ(S.stats().CacheHits, 0u);
  EXPECT_EQ(S.relate(R0, R1, P), MemRel::MustSep);
  EXPECT_EQ(S.stats().CacheHits, 1u) << "identical re-query must hit";
  EXPECT_EQ(S.stats().CacheMisses, Misses);

  // Any mutation re-stamps P: same regions, fresh version, cache miss.
  uint64_t OldVer = P.version();
  P.setReg64(x86::Reg::RAX, Ctx.mkConst(1, 64));
  EXPECT_NE(P.version(), OldVer);
  EXPECT_EQ(S.relate(R0, R1, P), MemRel::MustSep);
  EXPECT_EQ(S.stats().CacheHits, 1u);
  EXPECT_EQ(S.stats().CacheMisses, Misses + 1)
      << "mutated predicate must not hit entries of its old version";
}

TEST(RelationCache, MutationNeverResurrectsStaleAnswer) {
  // The sharp version of invalidation: a mutation that *changes the
  // answer* for the same (regions) pair. A bounded index makes the access
  // separate from the return-address slot; the bound arriving after the
  // unbounded query was cached must not be shadowed by the stale entry,
  // and dropping the bound again must not leak the bounded answer.
  ExprContext Ctx;
  RelationSolver::Config Cfg;
  Cfg.UseZ3 = false;
  RelationSolver S(Ctx, Cfg);
  Pred P = Pred::entry(Ctx);
  const Expr *Rsp0 = P.reg64(x86::Reg::RSP);
  const Expr *Rdi0 = Ctx.mkVar(VarClass::InitReg, "rdi0");
  const Expr *I32 = Ctx.mkTrunc(Rdi0, 32);
  const Expr *Idx = Ctx.mkZExt(I32, 64);
  const Expr *A = Ctx.mkAddK(
      Ctx.mkAdd(Rsp0, Ctx.mkBin(expr::Opcode::Mul, Idx, Ctx.mkConst(8, 64))),
      -0x20);
  Region RA{A, 8}, RRet{Rsp0, 8};

  EXPECT_EQ(S.relate(RA, RRet, P), MemRel::Unknown);
  EXPECT_EQ(S.relate(RA, RRet, P), MemRel::Unknown); // cached
  P.addRange(I32, RelOp::ULe, 2);
  EXPECT_EQ(S.relate(RA, RRet, P), MemRel::MustSep)
      << "stale Unknown survived the mutation";
  P.clearRangesFor(I32);
  EXPECT_EQ(S.relate(RA, RRet, P), MemRel::Unknown)
      << "stale MustSep survived the mutation";
}

TEST(RelationCache, CapSweepsStaleVersions) {
  ExprContext Ctx;
  RelationSolver::Config Cfg;
  Cfg.UseZ3 = false;
  Cfg.CacheCap = 8;
  RelationSolver S(Ctx, Cfg);
  Pred P = Pred::entry(Ctx);
  const Expr *Rsp0 = P.reg64(x86::Reg::RSP);

  // Far more distinct (query, version) pairs than the cap can hold.
  for (int Round = 0; Round < 16; ++Round) {
    for (int64_t K = 0; K < 8; ++K)
      S.relate(Region{Ctx.mkAddK(Rsp0, -8 * K), 8}, Region{Rsp0, 8}, P);
    P.setReg64(x86::Reg::RAX, Ctx.mkConst(Round, 64));
  }
  EXPECT_GT(S.stats().CacheInvalidated, 0u)
      << "cap never triggered the stale sweep";
  // Exactness survives the churn.
  EXPECT_EQ(S.relate(Region{Ctx.mkAddK(Rsp0, -8), 8}, Region{Rsp0, 8}, P),
            MemRel::MustSep);
}

TEST(RelationCache, CapEvictsLiveEntriesWhenSweepFreesNothing) {
  // One hot predicate, never mutated: when the maps hit the cap there is
  // nothing stale to sweep, so the still-hittable entries are cleared.
  // That MUST be counted as eviction, not invalidation — the two have
  // opposite performance meanings (stale sweeps are free wins, live
  // evictions are capacity misses).
  ExprContext Ctx;
  RelationSolver::Config Cfg;
  Cfg.UseZ3 = false;
  Cfg.CacheCap = 8;
  RelationSolver S(Ctx, Cfg);
  Pred P = Pred::entry(Ctx);
  const Expr *Rsp0 = P.reg64(x86::Reg::RSP);

  for (int64_t K = 0; K < 64; ++K)
    S.relate(Region{Ctx.mkAddK(Rsp0, -8 * K), 8}, Region{Rsp0, 8}, P);
  EXPECT_GT(S.stats().CacheEvicted, 0u)
      << "cap under a single live version never cleared";
  EXPECT_EQ(S.stats().CacheInvalidated, 0u)
      << "live-entry clears must not masquerade as stale sweeps";
  EXPECT_EQ(S.relate(Region{Ctx.mkAddK(Rsp0, -8), 8}, Region{Rsp0, 8}, P),
            MemRel::MustSep);
}

TEST(RelationCache, NoSweepCountersBelowCap) {
  // The healthy steady state — and the reason `rel_cache_invalidated: 0`
  // in --stats-json is not a dead counter: version-keyed entries make
  // mutation itself the invalidation (stale keys just stop being
  // queried), so the sweep counters only move when the cap forces a
  // cleanup. Below the cap both stay zero no matter how often the
  // predicate mutates.
  ExprContext Ctx;
  RelationSolver::Config Cfg;
  Cfg.UseZ3 = false; // default CacheCap (1 << 16), far above this traffic
  RelationSolver S(Ctx, Cfg);
  Pred P = Pred::entry(Ctx);
  const Expr *Rsp0 = P.reg64(x86::Reg::RSP);
  for (int Round = 0; Round < 8; ++Round) {
    for (int64_t K = 0; K < 8; ++K)
      S.relate(Region{Ctx.mkAddK(Rsp0, -8 * K), 8}, Region{Rsp0, 8}, P);
    P.setReg64(x86::Reg::RAX, Ctx.mkConst(Round, 64));
  }
  EXPECT_EQ(S.stats().CacheInvalidated, 0u);
  EXPECT_EQ(S.stats().CacheEvicted, 0u);
  EXPECT_GT(S.stats().CacheMisses, 0u);
}

TEST(RelationCache, LiftStatsMirrorsSweepAndEvictionCounters) {
  // --stats-json reads the LiftStats mirror, not RelationSolver::Stats;
  // the two must agree for every counter the report exposes.
  ExprContext Ctx;
  RelationSolver::Config Cfg;
  Cfg.UseZ3 = false;
  Cfg.CacheCap = 8;
  RelationSolver S(Ctx, Cfg);
  hglift::LiftStats LS;
  S.setLiftStats(&LS);
  Pred P = Pred::entry(Ctx);
  const Expr *Rsp0 = P.reg64(x86::Reg::RSP);

  // Phase 1: churn versions so the cap triggers stale sweeps.
  for (int Round = 0; Round < 16; ++Round) {
    for (int64_t K = 0; K < 8; ++K)
      S.relate(Region{Ctx.mkAddK(Rsp0, -8 * K), 8}, Region{Rsp0, 8}, P);
    P.setReg64(x86::Reg::RAX, Ctx.mkConst(Round, 64));
  }
  // Phase 2: hammer one version so the cap forces live evictions.
  for (int64_t K = 0; K < 64; ++K)
    S.relate(Region{Ctx.mkAddK(Rsp0, -8 * K), 8}, Region{Rsp0, 8}, P);

  EXPECT_GT(S.stats().CacheInvalidated, 0u);
  EXPECT_GT(S.stats().CacheEvicted, 0u);
  EXPECT_EQ(LS.RelCacheInvalidated, S.stats().CacheInvalidated);
  EXPECT_EQ(LS.RelCacheEvicted, S.stats().CacheEvicted);
  EXPECT_EQ(LS.RelCacheHits, S.stats().CacheHits);
  EXPECT_EQ(LS.RelCacheMisses, S.stats().CacheMisses);
  EXPECT_EQ(LS.SolverQueries, S.stats().Queries);
}

// --- the leq memo ---------------------------------------------------------

TEST(StateLeqMemo, MatchesDirectLeq) {
  // Randomized agreement between the memoized and the direct abstraction
  // order, with repeated probes so hits occur, plus counter plumbing.
  ExprContext Ctx;
  Rng R(0x1e9);
  std::vector<Pred> Preds;
  for (int I = 0; I < 8; ++I) {
    Pred P = Pred::entry(Ctx);
    if (R.next() % 2)
      P.setReg64(x86::Reg::RAX, Ctx.mkConst(R.next() % 3, 64));
    if (R.next() % 2)
      P.setCell(Ctx.mkAddK(P.reg64(x86::Reg::RSP), -8), 8,
                Ctx.mkConst(R.next() % 3, 64));
    if (R.next() % 2)
      P.addRange(Ctx.mkVar(VarClass::InitReg, "rdi0"), RelOp::ULe,
                 R.next() % 5);
    Preds.push_back(std::move(P));
  }
  std::vector<mem::MemModel> Mems;
  for (int I = 0; I < 4; ++I) {
    mem::MemModel M;
    const Expr *Rsp0 = Preds[0].reg64(x86::Reg::RSP);
    M.Forest.push_back(mem::MemTree{{Region{Rsp0, 8}}, {}});
    if (I % 2)
      M.Forest.push_back(
          mem::MemTree{{Region{Ctx.mkAddK(Rsp0, -16), 8}}, {}});
    if (I >= 2)
      M.noteWrite(Region{Ctx.mkAddK(Rsp0, -16), 8});
    Mems.push_back(std::move(M));
  }

  LiftStats Stats;
  hg::StateLeqMemo Memo;
  Memo.setLiftStats(&Stats);
  for (int Pass = 0; Pass < 3; ++Pass) {
    for (const Pred &A : Preds)
      for (const Pred &B : Preds)
        ASSERT_EQ(Memo.predLeq(A, B), Pred::leq(A, B));
    for (const mem::MemModel &A : Mems)
      for (const mem::MemModel &B : Mems)
        ASSERT_EQ(Memo.memLeq(A, B), mem::MemModel::leq(A, B));
  }
  EXPECT_GT(Stats.LeqHits, 0u) << "repeated probes never hit the memo";
  EXPECT_GT(Stats.LeqMisses, 0u);

  // Disabled memo forwards and stops counting hits.
  uint64_t Hits = Stats.LeqHits;
  Memo.setEnabled(false);
  for (const Pred &A : Preds)
    ASSERT_EQ(Memo.predLeq(A, Preds[0]), Pred::leq(A, Preds[0]));
  EXPECT_EQ(Stats.LeqHits, Hits);
}

// --- whole-pipeline identity ----------------------------------------------

std::string liftFingerprint(const corpus::BuiltBinary &BB,
                            const hg::LiftConfig &Cfg, bool Library) {
  hg::Lifter L(BB.Img, Cfg);
  hg::BinaryResult R = Library ? L.liftLibrary() : L.liftBinary();
  std::string S;
  S += std::string(hg::liftOutcomeName(R.Outcome)) + " " + R.FailReason + "\n";
  for (const hg::FunctionResult &F : R.Functions) {
    S += "fn " + hexStr(F.Entry) + " " + hg::liftOutcomeName(F.Outcome) +
         " ret " + std::to_string(F.MayReturn) + " v " +
         std::to_string(F.Graph.Vertices.size()) + " j " +
         std::to_string(F.Stats.Joins) + "\n";
    for (const auto &[Key, V] : F.Graph.Vertices)
      S += "  v " + hexStr(Key.Rip) + "/" + hexStr(Key.CtrlHash) + " P " +
           V.State.P.str(F.ctx()) + " M " + V.State.M.str(F.ctx()) + "\n";
    for (const hg::Edge &E : F.Graph.Edges)
      S += "  e " + hexStr(E.From.Rip) + "->" + hexStr(E.To.Rip) + "\n";
    for (const std::string &O : F.Obligations)
      S += "  o " + O + "\n";
  }
  return S;
}

TEST(HotPath, CachingOnByDefaultAndInvisibleToResults) {
  // The config defaults are the optimized mode...
  hg::LiftConfig Def;
  EXPECT_TRUE(Def.Solver.EnableCache);
  EXPECT_TRUE(Def.LeqMemo);
  EXPECT_TRUE(Def.OrderedWorklist);
  // ...and turning every hot-path optimization off changes nothing
  // observable (same worklist order, so even fresh names align).
  hg::LiftConfig Plain;
  Plain.Solver.EnableCache = false;
  Plain.LeqMemo = false;
  for (auto Make : {corpus::branchLoopBinary, corpus::weirdEdgeBinary,
                    corpus::callChainBinary}) {
    auto BB = Make();
    ASSERT_TRUE(BB.has_value());
    EXPECT_EQ(liftFingerprint(*BB, Def, false),
              liftFingerprint(*BB, Plain, false));
  }
}

TEST(HotPath, SerialAndParallelIdenticalWithCachesOn) {
  // Version stamps are handed out from one process-wide atomic counter, so
  // concurrent lifts interleave stamp *values* — hit/miss behaviour (and
  // with it every result) must still be schedule-independent, because only
  // stamp equality within one function's lift can matter.
  corpus::GenOptions G;
  G.Seed = 0xca11;
  G.NumFuncs = 6;
  G.TargetInstrs = 35;
  auto BB = corpus::randomLibrary(G);
  ASSERT_TRUE(BB.has_value());
  hg::LiftConfig Cfg; // caches on by default
  Cfg.Threads = 1;
  std::string Serial = liftFingerprint(*BB, Cfg, true);
  for (unsigned T : {2u, 4u, 8u}) {
    Cfg.Threads = T;
    EXPECT_EQ(Serial, liftFingerprint(*BB, Cfg, true)) << "threads=" << T;
  }
}

/// The order-independent structure of a lift: per-function outcome class
/// and the set of explored instruction addresses. Exploration order
/// legitimately changes everything finer — joins are order-sensitive in a
/// non-distributive domain, so LIFO and ordered exploration can stabilize
/// on different (equally sound) invariants, obligation sets, edges (which
/// derive from invariant precision at indirect jumps and returns), and
/// failure messages. What every exhaustive order must agree on is which
/// instructions are reachable and whether the function lifts.
std::string shapeFingerprint(const corpus::BuiltBinary &BB,
                             const hg::LiftConfig &Cfg) {
  hg::Lifter L(BB.Img, Cfg);
  hg::BinaryResult R = L.liftBinary();
  std::string S = std::string(hg::liftOutcomeName(R.Outcome)) + "\n";
  for (const hg::FunctionResult &F : R.Functions) {
    S += "fn " + hexStr(F.Entry) + " " + hg::liftOutcomeName(F.Outcome);
    if (F.Outcome != hg::LiftOutcome::Lifted) {
      // Everything else about a failed lift — the partial graph, how far
      // exploration got, even MayReturn — is order-dependent state.
      S += "\n";
      continue;
    }
    S += " ret " + std::to_string(F.MayReturn) + "\n";
    std::vector<uint64_t> Rips;
    for (const auto &[Key, V] : F.Graph.Vertices)
      if (Key.Rip < 0xfffffffffffffff0ull) // skip synthetic sinks
        Rips.push_back(Key.Rip);
    std::sort(Rips.begin(), Rips.end());
    Rips.erase(std::unique(Rips.begin(), Rips.end()), Rips.end());
    for (uint64_t Rip : Rips)
      S += "  i " + hexStr(Rip) + "\n";
  }
  return S;
}

TEST(HotPath, OrderedAndLifoWorklistsAgree) {
  // Both exploration orders are exhaustive, so they must agree on the
  // structure: same per-function outcomes, same instructions explored.
  // (Finer identity across orders is NOT expected — see shapeFingerprint.
  // Cache on/off identity at a fixed order is the strict test above.)
  hg::LiftConfig Ord, Lifo;
  Lifo.OrderedWorklist = false;
  for (auto Make : {corpus::straightlineBinary, corpus::branchLoopBinary,
                    corpus::callChainBinary, corpus::weirdEdgeBinary,
                    corpus::stackProbeBinary}) {
    auto BB = Make();
    ASSERT_TRUE(BB.has_value());
    EXPECT_EQ(shapeFingerprint(*BB, Ord), shapeFingerprint(*BB, Lifo));
  }
  // And at the LIFO order too, caching stays bit-invisible.
  hg::LiftConfig LifoPlain = Lifo;
  LifoPlain.Solver.EnableCache = false;
  LifoPlain.LeqMemo = false;
  auto BB = corpus::branchLoopBinary();
  ASSERT_TRUE(BB.has_value());
  EXPECT_EQ(liftFingerprint(*BB, Lifo, false),
            liftFingerprint(*BB, LifoPlain, false));
}

} // namespace
