//===- solver_portfolio_test.cpp - Tiered-portfolio differential harness --===//
//
// The tiered relation solver (smt/RelationSolver.h) must never buy speed
// with wrong answers. This harness proves it two ways:
//
//   * differential replay: lift a corpus with query logging on, then push
//     every recorded query back through each tier in isolation via
//     decideWithTierOnly(). A forced-Z3 replay (fresh solver, admission
//     filter off) is the trusted oracle; tiers 0/1 must never contradict
//     it, and every query the portfolio answered Unknown — including all
//     admission-filter skips — must be one the oracle cannot decide
//     either, i.e. the filter forfeits no definite answer on this corpus;
//   * adversarial queries: handcrafted predicates from the two clause
//     classes the cheap tiers actually reason about — unsigned range
//     clauses (ULt/ULe/UGe/UGt) and the loop-join bounds widening
//     produces — checked tier-against-oracle at hostile boundary values.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "hg/Lifter.h"
#include "smt/RelationSolver.h"

#include <gtest/gtest.h>

using namespace hglift;
using expr::Expr;
using expr::ExprContext;
using expr::VarClass;
using pred::Pred;
using pred::RelOp;
using smt::MemRel;
using smt::Region;
using smt::RelationSolver;
using smt::Tier;

namespace {

bool definite(MemRel R) { return R != MemRel::Unknown; }

/// Lift one corpus binary with query logging on and hand each function's
/// solver to Fn. The arena (and with it every logged expression) stays
/// alive for the duration of the callback.
template <typename F>
void withLoggedLift(std::optional<corpus::BuiltBinary> BB, bool Library,
                    F &&Fn) {
  ASSERT_TRUE(BB.has_value());
  hg::LiftConfig Cfg;
  Cfg.Solver.LogQueries = true;
  hg::Lifter L(BB->Img, Cfg);
  hg::BinaryResult R = Library ? L.liftLibrary() : L.liftBinary();
  for (hg::FunctionResult &FR : R.Functions) {
    if (!FR.Arena)
      continue;
    Fn(FR.Arena->solver());
  }
}

/// Replay every logged query of one solver through every tier and check
/// the differential invariants. Returns the number of queries replayed.
size_t replaySolverLog(RelationSolver &S) {
  size_t N = 0;
  for (const RelationSolver::LoggedQuery &Q : S.queryLog()) {
    ++N;
    Region R0{Q.A0, Q.S0}, R1{Q.A1, Q.S1};
    // Dead-branch predicates (contradictory clauses) make every
    // necessarily-relation hold vacuously, so Z3 "proves" whichever
    // probe runs first while the structural tiers answer from shape;
    // any combination of answers is consistent there. Detect them with
    // the oracle itself: a region can only be separate from *itself*
    // under an unsatisfiable predicate.
    if (S.decideWithTierOnly(R0, R0, Q.P, Tier::Z3).Rel == MemRel::MustSep)
      continue;
    RelationSolver::Decision T0 =
        S.decideWithTierOnly(R0, R1, Q.P, Tier::Syntactic);
    RelationSolver::Decision T1 =
        S.decideWithTierOnly(R0, R1, Q.P, Tier::Interval);
    RelationSolver::Decision Oracle =
        S.decideWithTierOnly(R0, R1, Q.P, Tier::Z3);

    // Soundness: a cheap tier that commits to a definite relation must
    // agree with the oracle whenever the oracle can decide at all.
    if (definite(T0.Rel) && definite(Oracle.Rel))
      EXPECT_EQ(T0.Rel, Oracle.Rel) << "tier 0 contradicts Z3";
    if (definite(T1.Rel) && definite(Oracle.Rel))
      EXPECT_EQ(T1.Rel, Oracle.Rel) << "tier 1 contradicts Z3";
    // Tier 0 and tier 1 reason from the same clause set; if both commit,
    // they must commit to the same relation.
    if (definite(T0.Rel) && definite(T1.Rel))
      EXPECT_EQ(T0.Rel, T1.Rel) << "tier 0 contradicts tier 1";

    // Determinism: the tier recorded as deciding the live query must
    // reproduce the recorded answer in isolation.
    if (Q.DecidedBy == Tier::Syntactic)
      EXPECT_EQ(T0.Rel, Q.Rel);
    else if (Q.DecidedBy == Tier::Interval)
      EXPECT_EQ(T1.Rel, Q.Rel);

    // Zero-disagreement gate for the admission filter: every query the
    // portfolio answered Unknown (which includes every skipped tier-2
    // round trip) is one the unfiltered oracle cannot decide either.
    if (Q.DecidedBy == Tier::None)
      EXPECT_EQ(Oracle.Rel, MemRel::Unknown)
          << "admission filter (or fallthrough) dropped a definite answer";
  }
  return N;
}

TEST(PortfolioDifferential, CorpusReplayNoTierContradictsZ3) {
  size_t Replayed = 0;
  withLoggedLift(corpus::branchLoopBinary(), false,
                 [&](RelationSolver &S) { Replayed += replaySolverLog(S); });
  withLoggedLift(corpus::jumpTableBinary(), false,
                 [&](RelationSolver &S) { Replayed += replaySolverLog(S); });
  withLoggedLift(corpus::overflowBinary(), false,
                 [&](RelationSolver &S) { Replayed += replaySolverLog(S); });
  // A loop/join-heavy generated library: where widening bounds and
  // repeated relation queries actually accumulate.
  corpus::GenOptions G;
  G.Seed = 0x40710a;
  G.NumFuncs = 6;
  G.TargetInstrs = 120;
  G.JumpTablePct = 30;
  G.Name = "portfolio_lib";
  withLoggedLift(corpus::randomLibrary(G), true,
                 [&](RelationSolver &S) { Replayed += replaySolverLog(S); });
  // The harness is vacuous if nothing was logged; the corpus above is
  // known to produce thousands of computed decisions.
  EXPECT_GT(Replayed, 100u);
}

TEST(PortfolioDifferential, LogRecordsOnlyComputedDecisions) {
  withLoggedLift(corpus::branchLoopBinary(), false, [&](RelationSolver &S) {
    const RelationSolver::Stats &St = S.stats();
    // The log holds exactly the computed relate() decisions (cache hits
    // are re-deliveries, not new answers; the corpus is far below
    // LogCap), and every one is attributed to exactly one tier or the
    // fallthrough bucket.
    EXPECT_EQ(St.SyntacticHits + St.IntervalHits + St.ClassAssumptionHits +
                  St.Z3Hits + St.Fallthroughs,
              S.queryLog().size());
    // The cache counters also cover mustEqual() memoization, so they
    // bound the decide() traffic from above.
    EXPECT_GE(St.CacheHits + St.CacheMisses, St.Queries);
    EXPECT_LE(S.queryLog().size(), St.CacheMisses);
  });
}

/// Handcrafted adversarial fixture: build queries directly against a
/// scratch context, compare each cheap tier with the forced-Z3 oracle.
struct Adversarial : ::testing::Test {
  ExprContext Ctx;
  RelationSolver Solver{Ctx};
  Pred P{Pred::entry(Ctx)};
  const Expr *Idx = Ctx.mkVar(VarClass::InitReg, "rdi0");
  const Expr *Base = Ctx.mkVar(VarClass::InitReg, "rsi0");

  void expectConsistent(const Expr *A0, uint32_t S0, const Expr *A1,
                        uint32_t S1) {
    Region R0{A0, S0}, R1{A1, S1};
    MemRel T0 = Solver.decideWithTierOnly(R0, R1, P, Tier::Syntactic).Rel;
    MemRel T1 = Solver.decideWithTierOnly(R0, R1, P, Tier::Interval).Rel;
    MemRel Z = Solver.decideWithTierOnly(R0, R1, P, Tier::Z3).Rel;
    if (definite(T0) && definite(Z))
      EXPECT_EQ(T0, Z);
    if (definite(T1) && definite(Z))
      EXPECT_EQ(T1, Z);
    // The full portfolio's committed answers must match the oracle too.
    MemRel Full = Solver.decide(R0, R1, P).Rel;
    if (definite(Full) && definite(Z))
      EXPECT_EQ(Full, Z);
  }
};

TEST_F(Adversarial, UnsignedClauseBoundaries) {
  // Unsigned clauses at hostile boundaries: an index bounded with UGe/UGt
  // near wraparound, queried against regions that sit exactly at the
  // bound. Tier 1's interval arithmetic must saturate, never wrap.
  P.addRange(Idx, RelOp::UGe, 0xffffffffffffff00ull);
  P.addRange(Idx, RelOp::ULe, 0xffffffffffffff20ull);
  for (int64_t K : {-0x100ll, -0x20ll, -1ll, 0ll, 1ll, 0x20ll, 0x100ll})
    expectConsistent(Ctx.mkAddK(Idx, K), 8, Ctx.mkConst(0x601000), 8);

  // UGt at the top of the space: [b+1, max].
  Pred Q = Pred::entry(Ctx);
  Q.addRange(Base, RelOp::UGt, 0xfffffffffffffff0ull);
  P = Q;
  expectConsistent(Base, 8, Ctx.mkConst(0x10), 8);
  expectConsistent(Ctx.mkAddK(Base, 8), 8, Base, 8);
}

TEST_F(Adversarial, LoopJoinBoundClauses) {
  // The clause shape widening leaves behind: a loop counter i with
  // 0 <= i <= n (small constant), addressing base + i scaled by element
  // size. A one-past-the-end slot must stay separate; an in-range slot
  // must stay undecided (never falsely separate).
  P.addRange(Idx, RelOp::ULe, 16); // i in [0, 16] after the join
  const Expr *Elem = Ctx.mkAdd(Base, Idx);
  // Slot just past the widened bound: base+17..base+24 vs base+i (8b).
  expectConsistent(Ctx.mkAddK(Base, 17), 8, Elem, 8);
  // Inside the bound: overlap is possible, nothing may claim separation.
  MemRel In =
      Solver.decideWithTierOnly({Ctx.mkAddK(Base, 8), 8}, {Elem, 8}, P,
                                Tier::Interval)
          .Rel;
  EXPECT_NE(In, MemRel::MustSep);
  expectConsistent(Ctx.mkAddK(Base, 8), 8, Elem, 8);
  // And the boundary value itself, one byte short of clearance.
  expectConsistent(Ctx.mkAddK(Base, 16), 8, Elem, 8);
  expectConsistent(Ctx.mkAddK(Base, 24), 8, Elem, 8);
}

TEST_F(Adversarial, ForcedTierIsolationBypassesCache) {
  // decideWithTierOnly must not read or pollute the decision cache: a
  // cached full-portfolio answer must not leak into a forced replay, and
  // replays must not seed entries the live path then serves back.
  const Expr *A = Ctx.mkAddK(P.reg64(x86::Reg::RSP), -8);
  const Expr *B = Ctx.mkAddK(P.reg64(x86::Reg::RSP), -16);
  uint64_t Hits0 = Solver.stats().CacheHits;
  MemRel Live = Solver.decide({A, 8}, {B, 8}, P).Rel;
  EXPECT_EQ(Live, MemRel::MustSep);
  // Forced syntactic replay answers from structure, not from the cache.
  EXPECT_EQ(Solver.decideWithTierOnly({A, 8}, {B, 8}, P, Tier::Syntactic).Rel,
            MemRel::MustSep);
  // Forced None decides nothing, ever.
  EXPECT_EQ(Solver.decideWithTierOnly({A, 8}, {B, 8}, P, Tier::None).Rel,
            MemRel::Unknown);
  EXPECT_EQ(Solver.stats().CacheHits, Hits0)
      << "forced replays must not count as cache traffic";
}

} // namespace
