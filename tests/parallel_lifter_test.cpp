//===- parallel_lifter_test.cpp - Determinism of the parallel engine -----===//
//
// The acceptance bar for the work-queue lifting engine: lifting with N
// worker threads is observably identical to lifting with 1. Per-function
// isolation (one LiftArena per lift) makes each FunctionResult a pure
// function of (image, config, entry); the engine merges results sorted by
// entry address. We fingerprint everything observable — outcomes, graph
// shapes, vertex keys, invariant strings, annotation counts, callees,
// obligations, deterministic stats — and require bit-identical strings.
//
//===----------------------------------------------------------------------===//

#include "api/Hglift.h"
#include "corpus/Programs.h"
#include "diag/Diag.h"
#include "driver/Report.h"
#include "export/HoareChecker.h"
#include "support/Format.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace hglift;
using corpus::BuiltBinary;

namespace {

/// Serialize every schedule-independent observable of a lift result.
/// Wall-clock fields (Seconds, Stats.Seconds) are the only exclusions.
std::string fingerprint(const hg::BinaryResult &R) {
  std::string S;
  S += "binary " + R.Name + " outcome " +
       std::string(hg::liftOutcomeName(R.Outcome)) + " fail '" +
       R.FailReason + "'\n";
  S += "totals A " + std::to_string(R.totalA()) + " B " +
       std::to_string(R.totalB()) + " C " + std::to_string(R.totalC()) +
       " instrs " + std::to_string(R.totalInstructions()) + " states " +
       std::to_string(R.totalStates()) + "\n";
  S += "stats v " + std::to_string(R.Total.Vertices) + " j " +
       std::to_string(R.Total.Joins) + " w " +
       std::to_string(R.Total.Widenings) + " s " +
       std::to_string(R.Total.Steps) + " f " +
       std::to_string(R.Total.Forks) + " q " +
       std::to_string(R.Total.SolverQueries) + "\n";
  for (const std::string &O : R.allObligations())
    S += "obl " + O + "\n";
  // Structured diagnostics are schedule-independent except for the worker
  // ordinal (trace-only by design; excluded from --report-json too).
  for (const diag::Diagnostic &D : R.allDiagnostics())
    S += "diag " + std::string(diag::diagKindName(D.Kind)) + " " +
         std::string(diag::componentName(D.Prov.Origin)) + " " +
         hexStr(D.Prov.FunctionEntry) + " " + hexStr(D.Prov.Addr) + " '" +
         D.Prov.Mnemonic + "' #" + std::to_string(D.Prov.ClauseId) + " '" +
         D.Prov.ClauseText + "' q" +
         std::to_string(D.Prov.QueryChain.size()) + " " + D.Message + "\n";
  for (const hg::FunctionResult &F : R.Functions) {
    S += "fn " + hexStr(F.Entry) + " " + hg::liftOutcomeName(F.Outcome) +
         " '" + F.FailReason + "' ret " + std::to_string(F.MayReturn) +
         " A " + std::to_string(F.ResolvedIndirections) + " B " +
         std::to_string(F.UnresolvedJumps) + " C " +
         std::to_string(F.UnresolvedCalls) + "\n";
    for (uint64_t C : F.Callees)
      S += "  callee " + hexStr(C) + "\n";
    S += "  initial " + hexStr(F.Graph.Initial.Rip) + "/" +
         hexStr(F.Graph.Initial.CtrlHash) + "\n";
    for (const auto &[Key, V] : F.Graph.Vertices) {
      S += "  v " + hexStr(Key.Rip) + "/" + hexStr(Key.CtrlHash) +
           " joins " + std::to_string(V.JoinCount) + " " +
           (V.Instr.isValid() ? V.Instr.str() : "?") + "\n";
      S += "    P " + V.State.P.str(F.ctx()) + "\n";
      S += "    M " + V.State.M.str(F.ctx()) + "\n";
    }
    for (const hg::Edge &E : F.Graph.Edges)
      S += "  e " + hexStr(E.From.Rip) + "/" + hexStr(E.From.CtrlHash) +
           " -> " + hexStr(E.To.Rip) + "/" + hexStr(E.To.CtrlHash) + " " +
           std::to_string(static_cast<int>(E.Kind)) + "\n";
  }
  return S;
}

hg::BinaryResult lift(const BuiltBinary &BB, unsigned Threads, bool Library) {
  hg::LiftConfig Cfg;
  Cfg.Threads = Threads;
  hg::Lifter L(BB.Img, Cfg);
  return Library ? L.liftLibrary() : L.liftBinary();
}

/// The whole handcrafted corpus, including rejection/timeout outcomes —
/// failure paths must be deterministic too.
std::vector<std::pair<std::string, std::optional<BuiltBinary>>> corpusSet() {
  std::vector<std::pair<std::string, std::optional<BuiltBinary>>> Out;
  Out.emplace_back("straightline", corpus::straightlineBinary());
  Out.emplace_back("branch_loop", corpus::branchLoopBinary());
  Out.emplace_back("call_chain", corpus::callChainBinary());
  Out.emplace_back("jump_table", corpus::jumpTableBinary());
  Out.emplace_back("callback", corpus::callbackBinary());
  Out.emplace_back("recursion", corpus::recursionBinary());
  Out.emplace_back("weird_edge", corpus::weirdEdgeBinary());
  Out.emplace_back("ret2win", corpus::ret2winBinary());
  Out.emplace_back("overflow", corpus::overflowBinary());
  Out.emplace_back("stack_probe", corpus::stackProbeBinary());
  return Out;
}

TEST(ParallelLifter, CorpusIdenticalAcrossThreadCounts) {
  for (auto &[Name, BB] : corpusSet()) {
    ASSERT_TRUE(BB.has_value()) << Name;
    std::string Serial = fingerprint(lift(*BB, 1, false));
    for (unsigned Threads : {2u, 4u, 8u}) {
      std::string Par = fingerprint(lift(*BB, Threads, false));
      EXPECT_EQ(Serial, Par)
          << Name << ": threads=" << Threads << " diverged from serial";
    }
  }
}

TEST(ParallelLifter, LibraryIdenticalAcrossThreadCounts) {
  // A multi-function library is where the queue actually fans out: many
  // roots at once plus dynamically discovered callees.
  corpus::GenOptions G;
  G.Seed = 0x9a11e1;
  G.NumFuncs = 8;
  G.TargetInstrs = 40;
  G.CallbackPct = 25;
  G.UnresJumpPct = 25;
  auto BB = corpus::randomLibrary(G);
  ASSERT_TRUE(BB.has_value());
  std::string Serial = fingerprint(lift(*BB, 1, true));
  for (unsigned Threads : {2u, 4u, 8u}) {
    std::string Par = fingerprint(lift(*BB, Threads, true));
    EXPECT_EQ(Serial, Par) << "threads=" << Threads;
  }
  // Threads=0 (hardware concurrency) is just another thread count.
  EXPECT_EQ(Serial, fingerprint(lift(*BB, 0, true)));
}

TEST(ParallelLifter, RepeatedRunsIdentical) {
  // Determinism also means run-to-run stability at a fixed thread count
  // (vertex keys are structural hashes, never pointer-derived).
  corpus::GenOptions G;
  G.Seed = 0x5eed;
  G.NumFuncs = 5;
  G.TargetInstrs = 30;
  auto BB = corpus::randomLibrary(G);
  ASSERT_TRUE(BB.has_value());
  std::string First = fingerprint(lift(*BB, 4, true));
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(First, fingerprint(lift(*BB, 4, true))) << "run " << I;
}

TEST(ParallelLifter, DiagnosticOrderDeterministic) {
  // The (function-entry, address) diagnostic order is part of the report
  // contract: every function's Diags are sorted by (address, kind,
  // message), and allDiagnostics() concatenates in entry order — at every
  // thread count.
  for (auto &[Name, BB] : corpusSet()) {
    ASSERT_TRUE(BB.has_value()) << Name;
    for (unsigned Threads : {1u, 4u}) {
      hg::BinaryResult R = lift(*BB, Threads, false);
      for (const hg::FunctionResult &F : R.Functions)
        for (size_t I = 1; I < F.Diags.size(); ++I) {
          const diag::Diagnostic &A = F.Diags[I - 1], &B = F.Diags[I];
          EXPECT_TRUE(A.Prov.Addr < B.Prov.Addr ||
                      (A.Prov.Addr == B.Prov.Addr &&
                       (A.Kind < B.Kind ||
                        (A.Kind == B.Kind && A.Message <= B.Message))))
              << Name << " threads=" << Threads << ": diagnostics out of "
              << "(address, kind, message) order at index " << I;
        }
      uint64_t PrevEntry = 0;
      for (const diag::Diagnostic &D : R.allDiagnostics()) {
        EXPECT_GE(D.Prov.FunctionEntry, PrevEntry);
        PrevEntry = D.Prov.FunctionEntry;
      }
    }
  }
}

TEST(ParallelLifter, ReportJsonByteIdenticalAcrossThreadCounts) {
  // The machine-readable report is the deterministic artifact: the exact
  // bytes of writeReportJson (including the Step-2 check section) must not
  // depend on the thread count.
  for (auto &[Name, BB] : corpusSet()) {
    ASSERT_TRUE(BB.has_value()) << Name;
    auto Render = [&](unsigned Threads) {
      Options O;
      O.Lift.Threads = Threads;
      Session S(BB->Img, O);
      S.lift();
      S.check();
      std::ostringstream OS;
      S.writeReportJson(OS);
      return OS.str();
    };
    std::string Serial = Render(1);
    for (unsigned Threads : {2u, 4u})
      EXPECT_EQ(Serial, Render(Threads))
          << Name << ": report bytes diverged at threads=" << Threads;
  }
}

TEST(ParallelLifter, DiscoveredCalleesLiftedExactlyOnce) {
  // The mutex-guarded seen-set must dedupe concurrent discoveries of the
  // same callee: every entry appears exactly once in the merged results,
  // sorted by entry address.
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = lift(*BB, 8, false);
  std::set<uint64_t> Entries;
  uint64_t Prev = 0;
  for (const hg::FunctionResult &F : R.Functions) {
    EXPECT_TRUE(Entries.insert(F.Entry).second)
        << "duplicate function " << hexStr(F.Entry);
    EXPECT_GT(F.Entry, Prev) << "results not sorted by entry";
    Prev = F.Entry;
  }
  for (const hg::FunctionResult &F : R.Functions)
    for (uint64_t C : F.Callees)
      EXPECT_TRUE(Entries.count(C)) << "callee " << hexStr(C) << " missing";
}

TEST(ParallelLifter, StatsAggregateExactly) {
  // BinaryResult::Total is the exact merge of the per-function stats, at
  // every thread count.
  corpus::GenOptions G;
  G.Seed = 0x57a7;
  G.NumFuncs = 4;
  auto BB = corpus::randomLibrary(G);
  ASSERT_TRUE(BB.has_value());
  for (unsigned Threads : {1u, 4u}) {
    hg::BinaryResult R = lift(*BB, Threads, true);
    LiftStats Sum;
    for (const hg::FunctionResult &F : R.Functions)
      Sum.merge(F.Stats);
    EXPECT_EQ(Sum.Vertices, R.Total.Vertices);
    EXPECT_EQ(Sum.Joins, R.Total.Joins);
    EXPECT_EQ(Sum.Widenings, R.Total.Widenings);
    EXPECT_EQ(Sum.Steps, R.Total.Steps);
    EXPECT_EQ(Sum.Forks, R.Total.Forks);
    EXPECT_EQ(Sum.SolverQueries, R.Total.SolverQueries);
    EXPECT_EQ(Sum.Z3Queries, R.Total.Z3Queries);
    EXPECT_GT(R.Total.Vertices, 0u);
    EXPECT_GT(R.Total.Steps, 0u);
    for (const hg::FunctionResult &F : R.Functions) {
      EXPECT_EQ(F.Stats.Vertices, F.Graph.Vertices.size());
      EXPECT_GE(F.Stats.Steps, F.Stats.Vertices)
          << "every vertex exploration is at least one step";
    }
  }
}

} // namespace
