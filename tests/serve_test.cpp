//===- serve_test.cpp - End-to-end hglift serve daemon tests -------------===//
//
// Drives the real shipped binary in daemon mode over its Unix socket:
//
//   * golden-locked response schemas, keyed by serve_schema_version —
//     changing any event's shape forces a golden update AND a version bump
//     (regenerate with HGLIFT_REGEN_GOLDEN=1 after bumping
//     serve::ServeSchemaVersion);
//   * warm-vs-cold byte identity: the report payload of a serve `check`
//     response equals a cold CLI --report-json file, and a warm (store-hit)
//     re-request equals it again;
//   * cross-client dedup: two clients submitting byte-identical functions
//     produce exactly one store write, observed through metrics;
//   * admission control: queue overflow yields a structured `rejected`
//     event with retry_after_ms, never a hang (the HGLIFT_SERVE_TEST_SLEEP_MS
//     hook parks the worker so the queue fills deterministically);
//   * budgets: an exhausted max_insns fuel yields a partial-graph timeout
//     result, not a dropped connection;
//   * drain: SIGTERM finishes in-flight work, answers it, and exits 0;
//   * a concurrent-clients hammer (also run under TSAN and as the tier2
//     serve_soak, which extends it via HGLIFT_SERVE_SOAK_SECONDS).
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "diag/Json.h"
#include "serve/Serve.h"
#include "shard/LineProto.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#ifndef HGLIFT_BIN
#error "HGLIFT_BIN must point at the hglift executable"
#endif
#ifndef HGLIFT_GOLDEN_DIR
#error "HGLIFT_GOLDEN_DIR must point at tests/golden"
#endif

using namespace hglift;

namespace {

std::string tmpPath(const std::string &Name) {
  return std::string("/tmp/hglift_serve_") + std::to_string(getpid()) + "_" +
         Name;
}

void writeBinary(const corpus::BuiltBinary &BB, const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary);
  Out.write(reinterpret_cast<const char *>(BB.ElfBytes.data()),
            static_cast<std::streamsize>(BB.ElfBytes.size()));
}

std::string readFileStr(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

struct RunResult {
  int ExitCode;
  std::string Output;
};

RunResult runCli(const std::string &Args) {
  std::string Cmd = std::string(HGLIFT_BIN) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr);
  std::string Out;
  char Buf[4096];
  while (P && fgets(Buf, sizeof(Buf), P))
    Out += Buf;
  int RC = P ? pclose(P) : -1;
  return RunResult{WEXITSTATUS(RC), Out};
}

int connectSock(const std::string &Path) {
  sockaddr_un SU{};
  SU.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(SU.sun_path))
    return -1;
  memcpy(SU.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&SU), sizeof(SU)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// The real daemon, spawned fresh per test over its own socket. Killed and
/// reaped on destruction if the test didn't already drain it.
struct Daemon {
  pid_t Pid = -1;
  std::string Sock;

  explicit Daemon(const std::string &Name,
                  const std::vector<std::string> &Extra = {}) {
    Sock = tmpPath(Name + ".sock");
    ::unlink(Sock.c_str());
    std::vector<std::string> Args = {HGLIFT_BIN, "serve", "--socket", Sock};
    Args.insert(Args.end(), Extra.begin(), Extra.end());
    Pid = fork();
    if (Pid == 0) {
      std::vector<char *> Argv;
      for (std::string &A : Args)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      // The daemon's banner and drain message are noise here.
      FILE *Null = freopen("/dev/null", "w", stdout);
      (void)Null;
      execv(HGLIFT_BIN, Argv.data());
      _exit(127);
    }
    EXPECT_GT(Pid, 0);
    // Ready when the socket accepts.
    for (int I = 0; Pid > 0 && I < 400; ++I) {
      int Fd = connectSock(Sock);
      if (Fd >= 0) {
        ::close(Fd);
        Ready = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ADD_FAILURE() << "daemon never started listening on " << Sock;
  }

  bool Ready = false;

  /// Wait for a clean exit (after SIGTERM or a shutdown request) and
  /// return the exit code; -1 on abnormal termination.
  int waitExit() {
    int St = 0;
    EXPECT_EQ(waitpid(Pid, &St, 0), Pid);
    Pid = -1;
    return WIFEXITED(St) ? WEXITSTATUS(St) : -1;
  }

  ~Daemon() {
    if (Pid > 0) {
      kill(Pid, SIGKILL);
      int St;
      waitpid(Pid, &St, 0);
    }
    ::unlink(Sock.c_str());
  }
};

/// One client connection speaking raw JSONL.
struct Client {
  int Fd = -1;
  std::string Buf;

  explicit Client(const Daemon &D) { Fd = connectSock(D.Sock); }
  ~Client() {
    if (Fd >= 0)
      ::close(Fd);
  }
  bool send(const std::string &Line) {
    return shard::writeAll(Fd, Line + "\n");
  }
  std::optional<std::string> readLine() {
    return shard::readLineBlocking(Fd, Buf);
  }
  /// Read one response line, assert it parses and carries the schema
  /// version, and return the parsed event.
  diag::JValue readEvent() {
    std::optional<std::string> L = readLine();
    EXPECT_TRUE(L.has_value()) << "connection closed mid-conversation";
    if (!L)
      return diag::JValue();
    std::optional<diag::JValue> V = diag::parseJson(*L);
    EXPECT_TRUE(V && V->isObj()) << "unparsable response line: " << *L;
    if (!V)
      return diag::JValue();
    EXPECT_EQ(V->num("serve_schema_version", -1),
              double(serve::ServeSchemaVersion))
        << *L;
    return *V;
  }
};

std::string liftRequest(const std::string &Id, const std::string &File,
                        const std::string &Op = "lift",
                        const std::string &ExtraFields = "") {
  return "{\"op\":\"" + Op + "\",\"id\":\"" + Id + "\",\"file\":\"" + File +
         "\"" + ExtraFields + "}";
}

/// Poll metrics on a dedicated connection until Pred holds (metrics are
/// answered inline by the reader thread, so this works while every worker
/// is busy).
bool waitMetrics(const Daemon &D,
                 const std::function<bool(const diag::JValue &)> &Pred,
                 int TimeoutMs = 5000) {
  Client C(D);
  if (C.Fd < 0)
    return false;
  for (int Waited = 0; Waited < TimeoutMs; Waited += 50) {
    if (!C.send("{\"op\":\"metrics\",\"id\":\"poll\"}"))
      return false;
    diag::JValue M = C.readEvent();
    if (Pred(M))
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

// ------------------------------------------------------- golden schema lock

const char *typeName(const diag::JValue &V) {
  switch (V.K) {
  case diag::JValue::Kind::Null:
    return "null";
  case diag::JValue::Kind::Bool:
    return "bool";
  case diag::JValue::Kind::Num:
    return "num";
  case diag::JValue::Kind::Str:
    return "str";
  case diag::JValue::Kind::Arr:
    return "arr";
  case diag::JValue::Kind::Obj:
    return "obj";
  }
  return "?";
}

/// Flatten one response event into "<event>.<field>: type" lines.
void collectEventPaths(const diag::JValue &V, std::set<std::string> &Out) {
  std::string Ev = V.str("event", "?");
  std::function<void(const diag::JValue &, const std::string &)> Walk =
      [&](const diag::JValue &N, const std::string &Path) {
        Out.insert(Ev + Path + ": " + typeName(N));
        if (N.isObj())
          for (const auto &[K, Child] : N.Obj)
            Walk(Child, Path + "." + K);
        if (N.isArr())
          for (const diag::JValue &Child : N.Arr)
            Walk(Child, Path + "[]");
      };
  for (const auto &[K, Child] : V.Obj)
    Walk(Child, "." + K);
}

void checkGolden(const std::string &File,
                 const std::set<std::string> &Lines) {
  std::string Path = std::string(HGLIFT_GOLDEN_DIR) + "/" + File;
  if (std::getenv("HGLIFT_REGEN_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    for (const std::string &L : Lines)
      Out << L << "\n";
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good())
      << Path << " is missing. If you changed the wire protocol, bump "
      << "serve::ServeSchemaVersion, update docs/SERVE.md, and regenerate "
      << "with HGLIFT_REGEN_GOLDEN=1 ctest -R serve_test.";
  std::set<std::string> Golden;
  std::string L;
  while (std::getline(In, L))
    if (!L.empty())
      Golden.insert(L);
  const char *Bump =
      "Changing a response event's shape requires bumping "
      "serve::ServeSchemaVersion, updating docs/SERVE.md, and regenerating "
      "tests/golden (HGLIFT_REGEN_GOLDEN=1). Clients key on "
      "serve_schema_version.";
  for (const std::string &Have : Lines)
    EXPECT_TRUE(Golden.count(Have))
        << "new field not in " << File << ": `" << Have << "`\n" << Bump;
  for (const std::string &Want : Golden)
    EXPECT_TRUE(Lines.count(Want))
        << "field vanished from the protocol: `" << Want << "`\n" << Bump;
}

// ------------------------------------------------------------------- tests

TEST(ServeProto, GoldenSchemas) {
  // One exemplar of every response event. The sleep hook parks the single
  // worker so a third submission overflows --max-queue 1 and produces a
  // real `rejected` exemplar.
  setenv("HGLIFT_SERVE_TEST_SLEEP_MS", "400", 1);
  std::set<std::string> Paths;
  {
    Daemon D("golden", {"--threads", "1", "--max-queue", "1"});
    unsetenv("HGLIFT_SERVE_TEST_SLEEP_MS");
    auto BB = corpus::straightlineBinary();
    ASSERT_TRUE(BB.has_value());
    std::string Elf = tmpPath("golden.elf");
    writeBinary(*BB, Elf);

    Client C(D);
    ASSERT_GE(C.Fd, 0);
    ASSERT_TRUE(C.send(liftRequest("a", Elf, "check")));
    collectEventPaths(C.readEvent(), Paths); // accepted
    ASSERT_TRUE(waitMetrics(D, [](const diag::JValue &M) {
      return M.num("in_flight", 0) == 1;
    }));
    ASSERT_TRUE(C.send(liftRequest("b", Elf)));
    C.readEvent(); // accepted (queue slot 1)
    ASSERT_TRUE(C.send(liftRequest("c", Elf)));
    collectEventPaths(C.readEvent(), Paths); // rejected: queue_full
    diag::JValue ResA = C.readEvent();       // result for a
    collectEventPaths(ResA, Paths);
    collectEventPaths(C.readEvent(), Paths); // done for a
    C.readEvent();                           // result for b
    C.readEvent();                           // done for b

    // An explain result (the `text` payload variant), fed the report the
    // lift just produced.
    ASSERT_TRUE(C.send("{\"op\":\"explain\",\"id\":\"d\",\"report\":\"" +
                       diag::jsonEscape(ResA.str("report")) + "\"}"));
    C.readEvent();                           // accepted
    collectEventPaths(C.readEvent(), Paths); // result (explain)
    C.readEvent();                           // done

    ASSERT_TRUE(C.send("{\"op\":\"bogus\",\"id\":\"e\"}"));
    collectEventPaths(C.readEvent(), Paths); // error
    ASSERT_TRUE(C.send("{\"op\":\"metrics\",\"id\":\"m\"}"));
    collectEventPaths(C.readEvent(), Paths); // metrics
  }
  checkGolden("serve_schema_v" +
                  std::to_string(serve::ServeSchemaVersion) + ".txt",
              Paths);
}

TEST(ServeWarmCold, ReportByteIdenticalToCli) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Elf = tmpPath("warmcold.elf");
  writeBinary(*BB, Elf);

  // Cold CLI ground truth.
  std::string CliReport = tmpPath("cli_report.json");
  RunResult R = runCli(Elf + " --check --report-json " + CliReport);
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  std::string Cold = readFileStr(CliReport);
  ASSERT_FALSE(Cold.empty());

  // Serve with a warm store; memo off so the second request must go
  // through the artifact store, exercising the hit-validation-merge path.
  std::string CacheDir = tmpPath("warmcold_cache");
  Daemon D("warmcold",
           {"--threads", "1", "--cache-dir", CacheDir, "--memo-max", "0"});
  Client C(D);
  ASSERT_GE(C.Fd, 0);

  for (int Round = 0; Round < 2; ++Round) {
    SCOPED_TRACE(Round == 0 ? "cold serve request" : "warm serve request");
    ASSERT_TRUE(C.send(liftRequest("r" + std::to_string(Round), Elf,
                                   "check")));
    diag::JValue Acc = C.readEvent();
    EXPECT_EQ(Acc.str("event"), "accepted");
    diag::JValue Res = C.readEvent();
    ASSERT_EQ(Res.str("event"), "result");
    EXPECT_EQ(Res.num("exit", -1), 0);
    EXPECT_EQ(Res.str("outcome"), "lifted");
    EXPECT_EQ(Res.str("report"), Cold)
        << "serve report payload must be byte-identical to a cold CLI "
           "--report-json file";
    EXPECT_EQ(C.readEvent().str("event"), "done");
  }

  // The second round really was warm: the store served hits.
  EXPECT_TRUE(waitMetrics(D, [](const diag::JValue &M) {
    const diag::JValue *Cache = M.get("cache");
    return Cache && Cache->num("hits", 0) > 0;
  }));
}

TEST(ServeWitness, ReportByteIdenticalToCli) {
  // A daemon started with --witness-dir runs the same witness search a
  // CLI `check --witness-dir` run performs, so the report payload —
  // including the `witnesses` section and its per-site records — must be
  // byte-identical, and the result event must surface the counts.
  auto BB = corpus::overflowBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Elf = tmpPath("witness.elf");
  writeBinary(*BB, Elf);

  std::string CliDir = tmpPath("witness_cli_dir");
  std::string CliReport = tmpPath("witness_cli_report.json");
  RunResult R = runCli("check " + Elf + " --witness-dir " + CliDir +
                       " --report-json " + CliReport);
  EXPECT_EQ(R.ExitCode, 1) << R.Output; // overflow fails to lift
  std::string Cli = readFileStr(CliReport);
  ASSERT_NE(Cli.find("\"witnesses\""), std::string::npos) << Cli;

  std::string SrvDir = tmpPath("witness_srv_dir");
  Daemon D("witness", {"--threads", "1", "--witness-dir", SrvDir});
  Client C(D);
  ASSERT_GE(C.Fd, 0);
  ASSERT_TRUE(C.send(liftRequest("w", Elf, "check")));
  EXPECT_EQ(C.readEvent().str("event"), "accepted");
  diag::JValue Res = C.readEvent();
  ASSERT_EQ(Res.str("event"), "result");
  EXPECT_EQ(Res.str("report"), Cli)
      << "serve witness report must be byte-identical to the CLI's";
  // overflow's single site is unconfirmed (function-level failure: there
  // is no lifted graph to drive a concrete run against).
  EXPECT_EQ(Res.num("witnesses_confirmed", -1), 0);
  EXPECT_EQ(Res.num("witnesses_unconfirmed", -1), 1);
  EXPECT_EQ(C.readEvent().str("event"), "done");

  // A lift (not check) request on the same daemon runs no witness search
  // and carries no counts.
  ASSERT_TRUE(C.send(liftRequest("l", Elf, "lift")));
  C.readEvent(); // accepted
  diag::JValue LRes = C.readEvent();
  ASSERT_EQ(LRes.str("event"), "result");
  EXPECT_EQ(LRes.get("witnesses_confirmed"), nullptr);
  EXPECT_EQ(LRes.str("report").find("\"witnesses\""), std::string::npos);
  C.readEvent(); // done
}

TEST(ServeDedup, TwoClientsOneStoreWrite) {
  auto BB = corpus::branchLoopBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Elf = tmpPath("dedup.elf");
  writeBinary(*BB, Elf);

  std::string CacheDir = tmpPath("dedup_cache");
  Daemon D("dedup",
           {"--threads", "1", "--cache-dir", CacheDir, "--memo-max", "0"});

  auto submit = [&](const std::string &Id) {
    Client C(D);
    ASSERT_GE(C.Fd, 0);
    ASSERT_TRUE(C.send(liftRequest(Id, Elf)));
    EXPECT_EQ(C.readEvent().str("event"), "accepted");
    diag::JValue Res = C.readEvent();
    EXPECT_EQ(Res.str("event"), "result");
    EXPECT_EQ(Res.num("exit", -1), 0);
    EXPECT_EQ(C.readEvent().str("event"), "done");
  };

  auto storeCounters = [&](uint64_t &Stored, uint64_t &Hits) {
    Client C(D);
    ASSERT_GE(C.Fd, 0);
    ASSERT_TRUE(C.send("{\"op\":\"metrics\",\"id\":\"m\"}"));
    diag::JValue M = C.readEvent();
    const diag::JValue *Cache = M.get("cache");
    ASSERT_TRUE(Cache);
    Stored = static_cast<uint64_t>(Cache->num("stored", 0));
    Hits = static_cast<uint64_t>(Cache->num("hits", 0));
  };

  submit("client1");
  uint64_t Stored1 = 0, Hits1 = 0;
  storeCounters(Stored1, Hits1);
  EXPECT_GT(Stored1, 0u) << "first client's lift must populate the store";
  EXPECT_EQ(Hits1, 0u);

  submit("client2");
  uint64_t Stored2 = 0, Hits2 = 0;
  storeCounters(Stored2, Hits2);
  EXPECT_EQ(Stored2, Stored1)
      << "byte-identical resubmission must not write the store again";
  EXPECT_GT(Hits2, 0u) << "second client must be served from the store";
}

TEST(ServeAdmission, QueueFullRejectsStructurally) {
  setenv("HGLIFT_SERVE_TEST_SLEEP_MS", "500", 1);
  Daemon D("admission", {"--threads", "1", "--max-queue", "1",
                         "--retry-after-ms", "77"});
  unsetenv("HGLIFT_SERVE_TEST_SLEEP_MS");
  auto BB = corpus::straightlineBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Elf = tmpPath("admission.elf");
  writeBinary(*BB, Elf);

  Client C(D);
  ASSERT_GE(C.Fd, 0);
  ASSERT_TRUE(C.send(liftRequest("a", Elf)));
  EXPECT_EQ(C.readEvent().str("event"), "accepted");
  // The worker is holding `a` (sleep hook): wait until it is in flight so
  // `b` occupies the single queue slot and `c` must overflow.
  ASSERT_TRUE(waitMetrics(
      D, [](const diag::JValue &M) { return M.num("in_flight", 0) == 1; }));
  ASSERT_TRUE(C.send(liftRequest("b", Elf)));
  diag::JValue AccB = C.readEvent();
  EXPECT_EQ(AccB.str("event"), "accepted");
  EXPECT_EQ(AccB.num("queue_depth", 0), 1);

  ASSERT_TRUE(C.send(liftRequest("c", Elf)));
  diag::JValue Rej = C.readEvent();
  EXPECT_EQ(Rej.str("event"), "rejected");
  EXPECT_EQ(Rej.str("id"), "c");
  EXPECT_EQ(Rej.str("reason"), "queue_full");
  EXPECT_EQ(Rej.num("retry_after_ms", 0), 77);

  // The admitted requests still complete in order — overload rejected the
  // overflow, it did not wedge the service.
  for (const char *Id : {"a", "b"}) {
    diag::JValue Res = C.readEvent();
    EXPECT_EQ(Res.str("event"), "result");
    EXPECT_EQ(Res.str("id"), Id);
    EXPECT_EQ(C.readEvent().str("event"), "done");
  }
}

TEST(ServeBudget, ExhaustedFuelYieldsPartialTimeout) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Elf = tmpPath("budget.elf");
  writeBinary(*BB, Elf);

  Daemon D("budget");
  Client C(D);
  ASSERT_GE(C.Fd, 0);
  // max_insns maps onto the lifter's vertex fuel; 2 is never enough.
  ASSERT_TRUE(C.send(liftRequest("b", Elf, "lift", ",\"max_insns\":2")));
  EXPECT_EQ(C.readEvent().str("event"), "accepted");
  diag::JValue Res = C.readEvent();
  ASSERT_EQ(Res.str("event"), "result");
  EXPECT_EQ(Res.num("exit", -1), 1);
  EXPECT_EQ(Res.str("outcome"), "timeout");
  // Partial-graph retention: the report still carries the function with
  // its structured outcome, it is not an empty husk.
  std::optional<diag::JValue> Rep = diag::parseJson(Res.str("report"));
  ASSERT_TRUE(Rep && Rep->isObj());
  EXPECT_EQ(Rep->str("outcome"), "timeout");
  const diag::JValue *Fns = Rep->get("functions");
  ASSERT_TRUE(Fns && Fns->isArr());
  EXPECT_FALSE(Fns->Arr.empty());
  EXPECT_EQ(C.readEvent().str("event"), "done");
}

TEST(ServeDrain, SigtermFinishesInFlightAndExitsZero) {
  auto BB = corpus::branchLoopBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Elf = tmpPath("drain.elf");
  writeBinary(*BB, Elf);

  setenv("HGLIFT_SERVE_TEST_SLEEP_MS", "300", 1);
  Daemon D("drain", {"--threads", "1"});
  unsetenv("HGLIFT_SERVE_TEST_SLEEP_MS");
  Client C(D);
  ASSERT_GE(C.Fd, 0);
  ASSERT_TRUE(C.send(liftRequest("d", Elf, "check")));
  EXPECT_EQ(C.readEvent().str("event"), "accepted");

  // SIGTERM while the request is parked in the worker: the daemon must
  // finish and answer it before exiting.
  ASSERT_EQ(kill(D.Pid, SIGTERM), 0);
  diag::JValue Res = C.readEvent();
  EXPECT_EQ(Res.str("event"), "result");
  EXPECT_EQ(Res.num("exit", -1), 0);
  EXPECT_EQ(C.readEvent().str("event"), "done");
  EXPECT_FALSE(C.readLine().has_value()) << "socket must close after drain";
  EXPECT_EQ(D.waitExit(), 0);

  // New connections are refused once drained: the socket file is gone.
  EXPECT_LT(connectSock(D.Sock), 0);
}

TEST(ServeDrain, ShutdownRequestDrains) {
  Daemon D("shutreq");
  Client C(D);
  ASSERT_GE(C.Fd, 0);
  ASSERT_TRUE(C.send("{\"op\":\"shutdown\",\"id\":\"s\"}"));
  diag::JValue Done = C.readEvent();
  EXPECT_EQ(Done.str("event"), "done");
  EXPECT_EQ(Done.str("id"), "s");
  EXPECT_EQ(D.waitExit(), 0);
}

TEST(ServeErrors, StructuredTaxonomy) {
  Daemon D("errors");
  Client C(D);
  ASSERT_GE(C.Fd, 0);

  // Malformed line: usage error (2), connection stays usable.
  ASSERT_TRUE(C.send("this is not json"));
  diag::JValue E1 = C.readEvent();
  EXPECT_EQ(E1.str("event"), "error");
  EXPECT_EQ(E1.num("exit", -1), 2);

  // Unknown op: usage error (2).
  ASSERT_TRUE(C.send("{\"op\":\"frobnicate\",\"id\":\"u\"}"));
  diag::JValue E2 = C.readEvent();
  EXPECT_EQ(E2.str("event"), "error");
  EXPECT_EQ(E2.str("id"), "u");
  EXPECT_EQ(E2.num("exit", -1), 2);

  // Missing required field: usage error (2).
  ASSERT_TRUE(C.send("{\"op\":\"lift\",\"id\":\"nf\"}"));
  EXPECT_EQ(C.readEvent().num("exit", -1), 2);

  // Unreadable file: io error (3), after admission.
  ASSERT_TRUE(C.send(liftRequest("io", "/nonexistent/nope.elf")));
  EXPECT_EQ(C.readEvent().str("event"), "accepted");
  diag::JValue E3 = C.readEvent();
  EXPECT_EQ(E3.str("event"), "error");
  EXPECT_EQ(E3.num("exit", -1), 3);

  // Unparsable ELF: analysis rejection (1).
  std::string Junk = tmpPath("junk.elf");
  {
    std::ofstream Out(Junk, std::ios::binary);
    Out << "definitely not an ELF";
  }
  ASSERT_TRUE(C.send(liftRequest("bad", Junk)));
  EXPECT_EQ(C.readEvent().str("event"), "accepted");
  diag::JValue E4 = C.readEvent();
  EXPECT_EQ(E4.str("event"), "error");
  EXPECT_EQ(E4.num("exit", -1), 1);
}

TEST(ServeExplain, InlineReportRoundTrip) {
  auto BB = corpus::overflowBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Elf = tmpPath("explain.elf");
  writeBinary(*BB, Elf);
  std::string Report = tmpPath("explain_report.json");
  runCli(Elf + " --check --report-json " + Report);
  std::string ReportText = readFileStr(Report);
  ASSERT_FALSE(ReportText.empty());

  Daemon D("explain");
  Client C(D);
  ASSERT_GE(C.Fd, 0);
  ASSERT_TRUE(C.send("{\"op\":\"explain\",\"id\":\"x\",\"report\":\"" +
                     diag::jsonEscape(ReportText) + "\"}"));
  EXPECT_EQ(C.readEvent().str("event"), "accepted");
  diag::JValue Res = C.readEvent();
  ASSERT_EQ(Res.str("event"), "result");
  EXPECT_EQ(Res.num("exit", -1), 0);
  EXPECT_NE(Res.str("text").find("verification report"), std::string::npos);
  EXPECT_NE(Res.str("text").find("unprovable-return"), std::string::npos);
  EXPECT_EQ(C.readEvent().str("event"), "done");
}

TEST(ServeClientMode, SubmitsAndExtractsReport) {
  auto BB = corpus::straightlineBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Elf = tmpPath("climode.elf");
  writeBinary(*BB, Elf);
  std::string CliReport = tmpPath("climode_cli.json");
  ASSERT_EQ(runCli(Elf + " --check --report-json " + CliReport).ExitCode, 0);

  Daemon D("climode");
  std::string Out = tmpPath("climode_serve.json");
  RunResult R = runCli("serve --socket " + D.Sock + " --client --op check " +
                       Elf + " --report-out " + Out);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"event\":\"result\""), std::string::npos)
      << R.Output;
  EXPECT_EQ(readFileStr(Out), readFileStr(CliReport))
      << "--report-out must extract the exact CLI report bytes";
}

/// The shared hammer body: Clients threads, each its own connection,
/// looping lift/check/metrics until Deadline. Every response line must
/// parse, carry the schema version, and close with a terminal event.
void hammer(unsigned Clients, double Seconds) {
  auto BB1 = corpus::straightlineBinary();
  auto BB2 = corpus::branchLoopBinary();
  ASSERT_TRUE(BB1 && BB2);
  std::string Elf1 = tmpPath("hammer1.elf"), Elf2 = tmpPath("hammer2.elf");
  writeBinary(*BB1, Elf1);
  writeBinary(*BB2, Elf2);

  std::string CacheDir = tmpPath("hammer_cache");
  Daemon D("hammer", {"--threads", "2", "--cache-dir", CacheDir});

  std::atomic<uint64_t> Requests{0}, ProtocolErrors{0};
  std::vector<std::thread> Threads;
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(Seconds);
  for (unsigned T = 0; T < Clients; ++T)
    Threads.emplace_back([&, T] {
      Client C(D);
      if (C.Fd < 0) {
        ++ProtocolErrors;
        return;
      }
      unsigned I = 0;
      while (std::chrono::steady_clock::now() < Deadline) {
        std::string Id = std::to_string(T) + "-" + std::to_string(I);
        std::string Req;
        switch (I % 4) {
        case 0:
          Req = liftRequest(Id, Elf1);
          break;
        case 1:
          Req = liftRequest(Id, Elf2, "check");
          break;
        case 2:
          Req = liftRequest(Id, Elf1, "check");
          break;
        default:
          Req = "{\"op\":\"metrics\",\"id\":\"" + Id + "\"}";
        }
        if (!C.send(Req)) {
          ++ProtocolErrors;
          return;
        }
        // Drain this request's events through its terminal line.
        for (;;) {
          std::optional<std::string> L = C.readLine();
          if (!L) {
            ++ProtocolErrors;
            return;
          }
          std::optional<diag::JValue> V = diag::parseJson(*L);
          if (!V || !V->isObj() ||
              V->num("serve_schema_version", -1) !=
                  double(serve::ServeSchemaVersion) ||
              V->str("id") != Id) {
            ++ProtocolErrors;
            return;
          }
          std::string Ev = V->str("event");
          if (Ev == "error" || Ev == "rejected") {
            ++ProtocolErrors; // nothing here should overflow or fail
            return;
          }
          if (Ev == "done" || Ev == "metrics")
            break;
        }
        ++Requests;
        ++I;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(ProtocolErrors.load(), 0u);
  EXPECT_GT(Requests.load(), 0u);
}

TEST(ServeHammer, ConcurrentClients) { hammer(4, 3.0); }

// The tier2 soak: N concurrent clients sustained for
// HGLIFT_SERVE_SOAK_SECONDS (the serve_soak ctest sets 30) with zero
// protocol errors. Without the variable it degrades to a short smoke so
// plain `serve_test` runs stay fast.
TEST(ServeSoak, SustainedConcurrentClients) {
  double Seconds = 2.0;
  if (const char *E = std::getenv("HGLIFT_SERVE_SOAK_SECONDS"))
    Seconds = std::atof(E);
  hammer(6, Seconds);
}

} // namespace
