//===- vsa_test.cpp - Binary-level value-set analysis ---------------------===//
//
// The VSA contract (docs/VSA.md):
//
//   * recognized table idioms (absolute, gcc -fPIC offset, and-masked,
//     guard-across-widened-loop) resolve to concrete target sets;
//   * every resolution is validated, never trusted: Step 2 re-derives the
//     same successors from the vertex invariant, and the deliberately
//     wrong `vsa-phantom-target` mutant dies there;
//   * `--no-vsa` (Options::Vsa.Enable = false) reproduces the legacy
//     resolver exactly — extended-only shapes degrade to annotations;
//   * unresolvable shapes (missing guard, reads past the table, truly
//     unbounded indices) still degrade to annotations with VSA on;
//   * reports are byte-identical across thread counts.
//
//===----------------------------------------------------------------------===//

#include "api/Hglift.h"
#include "corpus/Programs.h"
#include "fuzz/Campaign.h"
#include "fuzz/Mutants.h"
#include "hg/Lifter.h"

#include <cstdlib>
#include <gtest/gtest.h>
#include <sstream>

using namespace hglift;

namespace {

hg::BinaryResult liftIt(const corpus::BuiltBinary &BB, bool Vsa = true) {
  hg::LiftConfig Cfg;
  Cfg.Sym.Vsa = Vsa;
  hg::Lifter L(BB.Img, Cfg);
  return L.liftBinary();
}

uint64_t sumStat(const hg::BinaryResult &R,
                 uint64_t LiftStats::*Field) {
  uint64_t N = 0;
  for (const hg::FunctionResult &F : R.Functions)
    N += F.Stats.*Field;
  return N;
}

bool hasObligation(const hg::BinaryResult &R, const std::string &Needle) {
  for (const std::string &O : R.allObligations())
    if (O.find(Needle) != std::string::npos)
      return true;
  return false;
}

size_t tableEdges(const hg::BinaryResult &R) {
  size_t N = 0;
  for (const hg::FunctionResult &F : R.Functions)
    for (const hg::Edge &E : F.Graph.Edges)
      if (E.ViaTable && E.To.Rip != hg::UnresolvedTargetRip)
        ++N;
  return N;
}

// --- idiom recognition ----------------------------------------------------

TEST(Vsa, OffsetTableResolved) {
  auto BB = corpus::offsetTableBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_GE(R.totalA(), 1u) << "the offset table should be resolved";
  EXPECT_EQ(R.totalB(), 0u);
  // One edge per case (6 distinct targets), each tagged with the table.
  EXPECT_GE(tableEdges(R), 6u);
  EXPECT_GE(sumStat(R, &LiftStats::VsaResolved), 1u);
  EXPECT_TRUE(
      hasObligation(R, "vsa resolved indirect jump via jump-table@"))
      << "extended resolutions must carry a provenance obligation";
}

TEST(Vsa, OffsetTableAblated) {
  // --no-vsa: the offset-table idiom is extended-only, so the site must
  // degrade to today's unresolved-jump annotation — not a wrong edge.
  auto BB = corpus::offsetTableBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB, /*Vsa=*/false);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_GE(R.totalB(), 1u);
  EXPECT_EQ(tableEdges(R), 0u);
  EXPECT_EQ(sumStat(R, &LiftStats::VsaQueries), 0u);
  EXPECT_FALSE(hasObligation(R, "vsa resolved"));
}

TEST(Vsa, MaskedTableResolved) {
  auto BB = corpus::maskedTableBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_GE(R.totalA(), 1u) << "the and-mask bounds the index";
  EXPECT_EQ(R.totalB(), 0u);
  EXPECT_GE(tableEdges(R), 8u);
}

TEST(Vsa, MaskedTableAblated) {
  auto BB = corpus::maskedTableBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB, /*Vsa=*/false);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_GE(R.totalB(), 1u) << "the legacy resolver cannot see the mask";
}

TEST(Vsa, CallbackTableResolvedCall) {
  auto BB = corpus::callbackTableBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_GE(R.totalA(), 1u);
  EXPECT_EQ(R.totalC(), 0u) << "the handler array is fully resolved";
  // Each handler is a call edge carrying both callee and provenance.
  size_t CallEdges = 0;
  for (const hg::FunctionResult &F : R.Functions)
    for (const hg::Edge &E : F.Graph.Edges)
      if (E.Kind == sem::CtrlKind::CallInternal && E.ViaTable) {
        EXPECT_NE(E.CalleeAddr, 0u);
        ++CallEdges;
      }
  EXPECT_GE(CallEdges, 4u);
  EXPECT_TRUE(hasObligation(R, "vsa resolved indirect call via jump-table@"));
}

TEST(Vsa, CallbackTableAblated) {
  auto BB = corpus::callbackTableBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB, /*Vsa=*/false);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_GE(R.totalC(), 1u) << "legacy: an unresolved-call annotation";
}

TEST(Vsa, WidenedGuardNeedsRestart) {
  auto BB = corpus::widenedGuardTableBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_GE(R.totalA(), 1u)
      << "the protected-interval restart recovers the guard";
  EXPECT_EQ(R.totalB(), 0u);
  EXPECT_GE(sumStat(R, &LiftStats::VsaRestarts), 1u);
}

TEST(Vsa, WidenedGuardAblated) {
  auto BB = corpus::widenedGuardTableBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB, /*Vsa=*/false);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_GE(R.totalB(), 1u);
  EXPECT_EQ(sumStat(R, &LiftStats::VsaRestarts), 0u);
}

// --- unresolvable shapes stay annotations ---------------------------------

TEST(Vsa, GuardSlackReadsPastTable) {
  // The loosened guard admits indices past the table: some entry fails
  // the read-only/executable checks, so resolution must be abandoned
  // whole — never a partial target set.
  auto BB = corpus::jumpTableBinary(8, /*GuardSlack=*/8);
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_GE(R.totalB(), 1u);
  EXPECT_EQ(tableEdges(R), 0u);
}

TEST(Vsa, UnguardedTableStaysUnresolved) {
  // Table-shaped but truly unbounded: no guard, no mask. The restart
  // machinery must give up (bounded attempts) and annotate.
  corpus::ProgramBuilder PB("unguarded_table");
  x86::Asm &A = PB.text();
  x86::Asm::Label Start = A.newLabel(), F = A.newLabel();
  std::vector<x86::Asm::Label> Cases;
  for (unsigned I = 0; I < 4; ++I)
    Cases.push_back(A.newLabel());
  uint64_t Table = PB.jumpTable(Cases);

  A.bind(Start);
  A.endbr64();
  A.callL(F);
  A.movRI(x86::Reg::RAX, 60, 4);
  A.xorRR(x86::Reg::RDI, x86::Reg::RDI, 4);
  A.syscall();

  A.bind(F);
  A.endbr64();
  A.movRR(x86::Reg::RAX, x86::Reg::RDI, 8);
  x86::MemOperand M;
  M.Index = x86::Reg::RAX;
  M.Scale = 8;
  M.Disp = static_cast<int32_t>(Table);
  A.jmpM(M);
  for (unsigned I = 0; I < 4; ++I) {
    A.bind(Cases[I]);
    A.movRI(x86::Reg::RAX, static_cast<int64_t>(I), 4);
    A.ret();
  }

  auto BB = PB.build(Start);
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_GE(R.totalB(), 1u);
  EXPECT_EQ(tableEdges(R), 0u);
}

// --- validate, don't trust ------------------------------------------------

TEST(Vsa, Step2ReprovesResolutions) {
  // Every VSA-resolved edge is an ordinary proof obligation: the checker
  // re-derives the successors from the stored invariant and must cover
  // each one. All four table idioms prove end to end.
  std::optional<corpus::BuiltBinary> Subjects[] = {
      corpus::offsetTableBinary(), corpus::maskedTableBinary(),
      corpus::callbackTableBinary(), corpus::widenedGuardTableBinary()};
  for (auto &BB : Subjects) {
    ASSERT_TRUE(BB.has_value());
    Session S(BB->Img, Options());
    const hg::BinaryResult &R = S.lift();
    ASSERT_EQ(R.Outcome, hg::LiftOutcome::Lifted)
        << BB->Name << ": " << R.FailReason;
    const exporter::CheckResult &C = S.check();
    EXPECT_GT(C.Theorems, 0u) << BB->Name;
    EXPECT_EQ(C.Proven, C.Theorems)
        << BB->Name << ": "
        << (C.Failures.empty() ? "" : C.Failures[0]);
  }
}

TEST(Vsa, PhantomTargetMutantKilledByStep2) {
  // A wrong resolution must die in Step 2, never ship as a silent claim:
  // the mutant redirects one resolved target during lifting; the clean
  // re-derivation produces the true target set and coverage fails.
  const fuzz::Mutant *M = fuzz::findMutant("vsa-phantom-target");
  ASSERT_NE(M, nullptr);
  std::optional<corpus::BuiltBinary> Subjects[] = {
      corpus::jumpTableBinary(8), corpus::offsetTableBinary(),
      corpus::callbackTableBinary()};
  for (auto &BB : Subjects) {
    ASSERT_TRUE(BB.has_value());
    Session S(BB->Img, Options());
    {
      fuzz::MutantInstall Install(*M); // corrupt Step 1 only
      const hg::BinaryResult &R = S.lift();
      ASSERT_EQ(R.Outcome, hg::LiftOutcome::Lifted)
          << BB->Name << ": " << R.FailReason;
    }
    const exporter::CheckResult &C = S.check();
    EXPECT_LT(C.Proven, C.Theorems)
        << BB->Name << ": the checker must object to the phantom edge";
  }
}

// --- determinism ----------------------------------------------------------

TEST(Vsa, ReportBytesIdenticalAcrossThreads) {
  std::optional<corpus::BuiltBinary> Subjects[] = {
      corpus::offsetTableBinary(), corpus::callbackTableBinary(),
      corpus::widenedGuardTableBinary()};
  for (auto &BB : Subjects) {
    ASSERT_TRUE(BB.has_value());
    std::string Reports[2];
    for (unsigned T = 1; T <= 2; ++T) {
      Options O;
      O.Lift.Threads = T;
      Session S(BB->Img, O);
      S.lift();
      S.check();
      std::ostringstream OS;
      S.writeReportJson(OS);
      Reports[T - 1] = OS.str();
    }
    EXPECT_EQ(Reports[0], Reports[1]) << BB->Name;
  }
}

TEST(Vsa, StatsCountersExported) {
  auto BB = corpus::offsetTableBinary();
  ASSERT_TRUE(BB.has_value());
  Options O;
  Session S(BB->Img, O);
  S.lift();
  std::ostringstream OS;
  S.writeStatsJson(OS);
  const std::string J = OS.str();
  for (const char *Key :
       {"\"vsa_queries\"", "\"vsa_resolved\"", "\"vsa_targets\"",
        "\"vsa_restarts\""})
    EXPECT_NE(J.find(Key), std::string::npos) << Key << " missing:\n" << J;
}

TEST(Vsa, OptionsFacadeDrivesSymConfig) {
  // The facade contract: Options::Vsa is the single configuration point;
  // Session maps it onto the lifting SymConfig at construction.
  auto BB = corpus::maskedTableBinary();
  ASSERT_TRUE(BB.has_value());
  Options Off;
  Off.Vsa.Enable = false;
  Session S(BB->Img, Off);
  const hg::BinaryResult &R = S.lift();
  EXPECT_GE(R.totalB(), 1u);
  EXPECT_EQ(S.options().Lift.Sym.Vsa, false);

  Options Capped;
  Capped.Vsa.MaxTargets = 2; // 8 distinct targets > 2: resolution aborts
  Session S2(BB->Img, Capped);
  const hg::BinaryResult &R2 = S2.lift();
  EXPECT_GE(R2.totalB(), 1u);
  EXPECT_EQ(S2.options().Lift.Sym.VsaMaxTargets, 2u);
}

// --- tier-2 soak: full mutant registry × the jump-table corpus ------------

bool soakEnabled() { return std::getenv("HGLIFT_VSA_SOAK") != nullptr; }

TEST(VsaSoak, RegistryAcrossTableCorpus) {
  if (!soakEnabled())
    GTEST_SKIP() << "set HGLIFT_VSA_SOAK=1 to run";
  // Every registered mutant against every table idiom: the pipeline must
  // never crash or hang, LiftOnly corruption must never survive a green
  // check as a wrong edge (either the lift degrades or Step 2 objects),
  // and the VSA mutant specifically must be killed on table subjects.
  unsigned PhantomKills = 0;
  for (const fuzz::Mutant &M : fuzz::mutantRegistry()) {
    std::optional<corpus::BuiltBinary> Subjects[] = {
        corpus::jumpTableBinary(8), corpus::offsetTableBinary(),
        corpus::maskedTableBinary(), corpus::callbackTableBinary(),
        corpus::widenedGuardTableBinary()};
    for (auto &BB : Subjects) {
      ASSERT_TRUE(BB.has_value());
      Session S(BB->Img, Options());
      {
        fuzz::MutantInstall Install(M);
        S.lift();
        if (M.Scope == fuzz::MutantScope::Both)
          S.check(); // shared-bug scope: checker runs mutated too
      }
      if (S.lift().Outcome != hg::LiftOutcome::Lifted)
        continue; // corrupted lift degraded: acceptable (no silent claim)
      const exporter::CheckResult &C = S.check();
      if (M.Name == "vsa-phantom-target" && C.Proven < C.Theorems)
        ++PhantomKills;
    }
  }
  EXPECT_GE(PhantomKills, 3u)
      << "the VSA mutant must die in Step 2 on resolved-table subjects";
}

TEST(VsaSoak, CampaignZeroViolationsWithVsaOn) {
  if (!soakEnabled())
    GTEST_SKIP() << "set HGLIFT_VSA_SOAK=1 to run";
  // A full mutation campaign with VSA on (the default): zero oracle
  // violations, zero unexplained survivors — including vsa-phantom-target.
  fuzz::FuzzOptions O;
  O.Seed = 7;
  O.Runs = 6;
  O.MutateSemantics = true;
  std::ostringstream Log;
  fuzz::CampaignResult R = fuzz::runCampaign(O, Log);
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  EXPECT_EQ(R.oracleViolations(), 0u);
  EXPECT_EQ(R.checkFailures(), 0u);
  bool SawPhantom = false;
  for (const fuzz::MutantOutcome &M : R.Mutants) {
    EXPECT_TRUE(M.Killed) << M.Name << " survived\n" << Log.str();
    if (M.Name == "vsa-phantom-target") {
      SawPhantom = true;
      EXPECT_EQ(M.KilledBy, "step2");
    }
  }
  EXPECT_TRUE(SawPhantom);
  EXPECT_TRUE(R.success());
}

} // namespace
