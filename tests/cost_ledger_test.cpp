//===- cost_ledger_test.cpp - Persisted lift-cost ledger ------------------===//
//
// The cost ledger orders the shard scheduler's queue and must never do
// anything else: records serialize deterministically, anything that is
// not an exact canonical record is a miss (validate-don't-trust, the
// artifact store's posture), and observations fold in as a bounded EWMA.
// The end-to-end half of the contract — a trashed ledger cannot perturb a
// single merged-report byte — is pinned in shard_test.cpp.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "elf/ElfReader.h"
#include "store/CostLedger.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

using namespace hglift;
namespace fs = std::filesystem;

namespace {

std::string freshDir(const std::string &Name) {
  std::string Dir = "/tmp/hglift_cost_ledger_" + Name;
  fs::remove_all(Dir);
  return Dir;
}

TEST(CostRecordFormat, SerializationIsCanonicalAndRoundTrips) {
  store::CostRecord R{0x0123456789abcdefULL, 1.5, 3};
  std::string Bytes = store::serializeCostRecord(R);
  EXPECT_EQ(Bytes, "hgcost 1 0123456789abcdef 1.500000 3\n");
  // Deterministic: same record, same bytes, every time.
  EXPECT_EQ(Bytes, store::serializeCostRecord(R));

  auto Parsed = store::parseCostRecord(Bytes);
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(*Parsed, R);

  // Small keys keep the fixed 16-digit field (canonical form depends on it).
  store::CostRecord Small{7, 0.000001, 1};
  auto P2 = store::parseCostRecord(store::serializeCostRecord(Small));
  ASSERT_TRUE(P2.has_value());
  EXPECT_EQ(*P2, Small);
}

TEST(CostRecordFormat, NonCanonicalBytesAreMissesNotGuesses) {
  std::string Good =
      store::serializeCostRecord(store::CostRecord{42, 2.25, 5});
  ASSERT_TRUE(store::parseCostRecord(Good).has_value());

  // Every corruption class degrades to nullopt: truncation, trailing
  // junk, version drift, non-canonical float text, absurd values.
  EXPECT_FALSE(store::parseCostRecord("").has_value());
  EXPECT_FALSE(
      store::parseCostRecord(Good.substr(0, Good.size() / 2)).has_value());
  EXPECT_FALSE(store::parseCostRecord(Good + "extra").has_value());
  EXPECT_FALSE(store::parseCostRecord("hgcost 9 000000000000002a 2.250000 5\n")
                   .has_value());
  EXPECT_FALSE(store::parseCostRecord("hgcost 1 000000000000002a 2.25 5\n")
                   .has_value())
      << "non-canonical float rendering must not parse";
  EXPECT_FALSE(store::parseCostRecord("hgcost 1 000000000000002a nan 5\n")
                   .has_value());
  EXPECT_FALSE(
      store::parseCostRecord("hgcost 1 000000000000002a 2.250000 0\n")
          .has_value())
      << "zero samples is not a record";
  EXPECT_FALSE(store::parseCostRecord(
                   "hgcost 1 000000000000002a 9999999.000000 5\n")
                   .has_value())
      << "absurd seconds must be rejected";
}

TEST(CostLedgerIo, MissingCorruptAndMismatchedEntriesDegradeToMiss) {
  store::CostLedger L(freshDir("degrade"));

  // Missing directory, missing entry: plain misses.
  EXPECT_FALSE(L.lookup(1).has_value());

  ASSERT_TRUE(L.record(1, 2.0));
  ASSERT_TRUE(L.lookup(1).has_value());

  // A record stored under the wrong key (filesystem tampering) must not
  // be served for that key.
  std::string Stolen = store::serializeCostRecord(store::CostRecord{1, 2.0, 1});
  {
    std::ofstream Out(L.entryPath(9), std::ios::trunc);
    Out << Stolen;
  }
  EXPECT_FALSE(L.lookup(9).has_value());

  // Scribble over the good entry: miss, not garbage seconds.
  {
    std::ofstream Out(L.entryPath(1), std::ios::trunc);
    Out << "hgcost 1 what even is this";
  }
  EXPECT_FALSE(L.lookup(1).has_value());

  // And a fresh observation repairs it.
  ASSERT_TRUE(L.record(1, 4.0));
  auto R = L.lookup(1);
  ASSERT_TRUE(R.has_value());
  EXPECT_DOUBLE_EQ(R->Seconds, 4.0);
  EXPECT_EQ(R->Samples, 1u);
}

TEST(CostLedgerIo, ObservationsFoldAsEwma) {
  store::CostLedger L(freshDir("ewma"));
  ASSERT_TRUE(L.record(5, 8.0));
  ASSERT_TRUE(L.record(5, 4.0)); // 0.5*8 + 0.5*4
  ASSERT_TRUE(L.record(5, 2.0)); // 0.5*6 + 0.5*2
  auto R = L.lookup(5);
  ASSERT_TRUE(R.has_value());
  EXPECT_DOUBLE_EQ(R->Seconds, 4.0);
  EXPECT_EQ(R->Samples, 3u);

  // Junk observations are refused outright, leaving the record alone.
  EXPECT_FALSE(L.record(5, -1.0));
  EXPECT_FALSE(L.record(5, std::nan("")));
  auto R2 = L.lookup(5);
  ASSERT_TRUE(R2.has_value());
  EXPECT_EQ(*R2, *R);
}

TEST(CostKey, TracksInstructionBytesOnly) {
  corpus::GenOptions G;
  G.Seed = 3;
  G.NumFuncs = 3;
  G.TargetInstrs = 15;
  auto A = corpus::randomLibrary(G);
  ASSERT_TRUE(A.has_value());
  G.Seed = 4; // different code
  auto B = corpus::randomLibrary(G);
  ASSERT_TRUE(B.has_value());

  auto Load = [](const corpus::BuiltBinary &BB, const std::string &Path) {
    std::ofstream Out(Path, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(BB.ElfBytes.data()),
              static_cast<std::streamsize>(BB.ElfBytes.size()));
    Out.close();
    return elf::readElfFile(Path);
  };
  auto ImgA = Load(*A, "/tmp/hglift_cost_key_a.elf");
  auto ImgA2 = Load(*A, "/tmp/hglift_cost_key_a2.elf");
  auto ImgB = Load(*B, "/tmp/hglift_cost_key_b.elf");
  ASSERT_TRUE(ImgA && ImgA2 && ImgB);

  // Same bytes, same key (independent of path); different code, different
  // key.
  EXPECT_EQ(store::costKey(*ImgA), store::costKey(*ImgA2));
  EXPECT_NE(store::costKey(*ImgA), store::costKey(*ImgB));
}

} // namespace
