//===- corpus_determinism_test.cpp - Seeded generators are functions ------===//
//
// The fuzzing campaign's reproducers record only seeds, so the corpus
// generators must be pure functions of GenOptions: the same seed must
// yield byte-identical ELF images, run after run, for both the executable
// and the shared-object generator. Any hidden nondeterminism (wall clock,
// address-dependent iteration, uninitialized padding) breaks replay.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"

#include <gtest/gtest.h>

using namespace hglift;
using corpus::BuiltBinary;
using corpus::GenOptions;

namespace {

uint64_t fnv1a(const std::vector<uint8_t> &Bytes) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (uint8_t B : Bytes)
    H = (H ^ B) * 0x100000001b3ull;
  return H;
}

const uint64_t Seeds[] = {0ull, 1ull, 42ull, 0xdeadbeefull,
                          0xffffffffffffffffull};

GenOptions optsFor(uint64_t Seed) {
  GenOptions G;
  G.Seed = Seed;
  G.NumFuncs = 3;
  G.TargetInstrs = 30;
  G.JumpTablePct = 40;
  G.ExternalPct = 40;
  G.CallbackPct = 20;
  G.UnresJumpPct = 20;
  return G;
}

TEST(CorpusDeterminism, RandomBinarySameSeedSameBytes) {
  for (uint64_t Seed : Seeds) {
    auto A = corpus::randomBinary(optsFor(Seed));
    auto B = corpus::randomBinary(optsFor(Seed));
    ASSERT_TRUE(A && B) << "seed " << Seed;
    EXPECT_EQ(A->ElfBytes, B->ElfBytes)
        << "seed " << Seed << ": digests " << std::hex << fnv1a(A->ElfBytes)
        << " vs " << fnv1a(B->ElfBytes);
  }
}

TEST(CorpusDeterminism, RandomLibrarySameSeedSameBytes) {
  for (uint64_t Seed : Seeds) {
    auto A = corpus::randomLibrary(optsFor(Seed));
    auto B = corpus::randomLibrary(optsFor(Seed));
    ASSERT_TRUE(A && B) << "seed " << Seed;
    EXPECT_EQ(A->ElfBytes, B->ElfBytes)
        << "seed " << Seed << ": digests " << std::hex << fnv1a(A->ElfBytes)
        << " vs " << fnv1a(B->ElfBytes);
  }
}

TEST(CorpusDeterminism, DistinctSeedsDiffer) {
  // Not a soundness property, but a broken Rng plumbing (options ignored,
  // seed dropped) would make every "random" binary identical and quietly
  // gut the campaign's coverage.
  auto A = corpus::randomBinary(optsFor(1));
  auto B = corpus::randomBinary(optsFor(2));
  ASSERT_TRUE(A && B);
  EXPECT_NE(A->ElfBytes, B->ElfBytes);
}

TEST(CorpusDeterminism, HandwrittenProgramsAreStable) {
  // The handwritten corpus is seedless; two builds must agree too (the
  // reducer replays them by name).
  auto A = corpus::jumpTableBinary(), B = corpus::jumpTableBinary();
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->ElfBytes, B->ElfBytes);
  auto C = corpus::callbackBinary(), D = corpus::callbackBinary();
  ASSERT_TRUE(C && D);
  EXPECT_EQ(C->ElfBytes, D->ElfBytes);
}

TEST(CorpusDeterminism, VsaTableProgramsAreStable) {
  // The VSA corpus: offsetTableBinary is a double-build (the 32-bit
  // offsets are filled from a first pass's addresses), so instability
  // here would also mean the two passes disagree about the layout.
  for (auto *Builder :
       {corpus::offsetTableBinary, corpus::callbackTableBinary,
        corpus::maskedTableBinary, corpus::widenedGuardTableBinary}) {
    auto A = Builder(), B = Builder();
    ASSERT_TRUE(A && B);
    EXPECT_EQ(A->ElfBytes, B->ElfBytes) << A->Name;
  }
}

} // namespace
