//===- machine_test.cpp - Concrete emulator unit tests -------------------===//

#include "corpus/ProgramBuilder.h"
#include "semantics/Machine.h"

#include <gtest/gtest.h>

using namespace hglift;
using namespace hglift::x86;
using corpus::ProgramBuilder;
using sem::Machine;

namespace {

/// Assemble a function body, run it as a call with the given arguments,
/// and return rax.
struct Runner {
  ProgramBuilder PB{"machine_test"};
  Asm::Label F;

  Runner() : F(PB.text().newLabel()) { PB.text().bind(F); }

  uint64_t run(std::initializer_list<uint64_t> Args,
               Machine::Status Expect = Machine::Status::Returned) {
    auto BB = PB.build(F);
    EXPECT_TRUE(BB.has_value());
    Machine M(BB->Img);
    M.setupCall(BB->Img.Entry);
    unsigned I = 0;
    for (uint64_t A : Args)
      M.setReg(argReg(I++), A);
    EXPECT_EQ(M.run(100000), Expect);
    return M.reg(Reg::RAX);
  }
};

TEST(Machine, Arithmetic) {
  Runner R;
  Asm &A = R.PB.text();
  // rax = (rdi + 3*rsi) ^ (rdx >> 2)
  A.leaRM(Reg::RAX, MemOperand{Reg::RDI, Reg::RSI, 2, 0, false}, 8);
  A.addRR(Reg::RAX, Reg::RSI, 8);
  A.movRR(Reg::RCX, Reg::RDX, 8);
  A.shiftRI(Mnemonic::Sar, Reg::RCX, 2, 8);
  A.arithRR(Mnemonic::Xor, Reg::RAX, Reg::RCX, 8);
  A.ret();
  EXPECT_EQ(R.run({10, 7, 100}), (10 + 3 * 7) ^ (100 >> 2));
}

TEST(Machine, BranchesAndLoops) {
  Runner R;
  Asm &A = R.PB.text();
  // rax = sum of rdi added 8 times, then +1 if rdi > 3 else -1.
  Asm::Label Loop = A.newLabel(), Else = A.newLabel(), Join = A.newLabel();
  A.xorRR(Reg::RAX, Reg::RAX, 8);
  A.movRI(Reg::RCX, 8, 4);
  A.bind(Loop);
  A.addRR(Reg::RAX, Reg::RDI, 8);
  A.decR(Reg::RCX, 4);
  A.jccL(Cond::NE, Loop);
  A.cmpRI(Reg::RDI, 3, 8);
  A.jccL(Cond::LE, Else);
  A.addRI(Reg::RAX, 1, 8);
  A.jmpL(Join);
  A.bind(Else);
  A.subRI(Reg::RAX, 1, 8);
  A.bind(Join);
  A.ret();
  EXPECT_EQ(R.run({5}), 5u * 8 + 1);
  Runner R2;
  // rebuild with identical body for the second input
  Asm &B = R2.PB.text();
  Asm::Label L2 = B.newLabel(), E2 = B.newLabel(), J2 = B.newLabel();
  B.xorRR(Reg::RAX, Reg::RAX, 8);
  B.movRI(Reg::RCX, 8, 4);
  B.bind(L2);
  B.addRR(Reg::RAX, Reg::RDI, 8);
  B.decR(Reg::RCX, 4);
  B.jccL(Cond::NE, L2);
  B.cmpRI(Reg::RDI, 3, 8);
  B.jccL(Cond::LE, E2);
  B.addRI(Reg::RAX, 1, 8);
  B.jmpL(J2);
  B.bind(E2);
  B.subRI(Reg::RAX, 1, 8);
  B.bind(J2);
  B.ret();
  EXPECT_EQ(R2.run({2}), 2u * 8 - 1);
}

TEST(Machine, SignedUnsignedConditions) {
  // setcc-based comparison matrix for one interesting pair.
  Runner R;
  Asm &A = R.PB.text();
  A.cmpRR(Reg::RDI, Reg::RSI, 8);
  A.setccR(Cond::B, Reg::RAX);  // bit 0: unsigned <
  A.setccR(Cond::L, Reg::RCX);  // signed <
  A.shiftRI(Mnemonic::Shl, Reg::RCX, 1, 8);
  A.arithRR(Mnemonic::Or, Reg::RAX, Reg::RCX, 1);
  A.movzxRR(Reg::RAX, Reg::RAX, 1, 8);
  A.ret();
  // -1 (unsigned huge) vs 1: not unsigned-less, signed-less.
  EXPECT_EQ(R.run({static_cast<uint64_t>(-1), 1}), 0b10u);
}

TEST(Machine, MemoryAndStack) {
  Runner R;
  Asm &A = R.PB.text();
  A.pushR(Reg::RBP);
  A.movRR(Reg::RBP, Reg::RSP, 8);
  A.subRI(Reg::RSP, 0x20, 8);
  A.movMR(MemOperand{Reg::RBP, Reg::None, 1, -8, false}, Reg::RDI, 8);
  A.movRM(Reg::RAX, MemOperand{Reg::RBP, Reg::None, 1, -8, false}, 8);
  A.addRI(Reg::RAX, 1, 8);
  A.addRI(Reg::RSP, 0x20, 8);
  A.popR(Reg::RBP);
  A.ret();
  EXPECT_EQ(R.run({41}), 42u);
}

TEST(Machine, DivisionAndWidening) {
  Runner R;
  Asm &A = R.PB.text();
  // rax = rdi / rsi (unsigned), rdx = remainder folded in.
  A.movRR(Reg::RAX, Reg::RDI, 8);
  A.xorRR(Reg::RDX, Reg::RDX, 4);
  A.divR(Reg::RSI, 8);
  A.addRR(Reg::RAX, Reg::RDX, 8); // quotient + remainder
  A.ret();
  EXPECT_EQ(R.run({100, 7}), 100u / 7 + 100u % 7);
}

TEST(Machine, DivByZeroFaults) {
  Runner R;
  Asm &A = R.PB.text();
  A.movRR(Reg::RAX, Reg::RDI, 8);
  A.xorRR(Reg::RDX, Reg::RDX, 4);
  A.divR(Reg::RSI, 8);
  A.ret();
  R.run({1, 0}, Machine::Status::Fault);
}

TEST(Machine, HighByteAccess) {
  Runner R;
  Asm &A = R.PB.text();
  // rax = 0x1234; al <- ah  => 0x1212.
  A.movRI(Reg::RAX, 0x1234, 8);
  // 88 e0: mov al, ah (raw bytes; the assembler API doesn't emit ah).
  A.byte(0x88);
  A.byte(0xe0);
  A.ret();
  EXPECT_EQ(R.run({}), 0x1212u);
}

TEST(Machine, CmovAndCdqe) {
  Runner R;
  Asm &A = R.PB.text();
  A.movRI(Reg::RAX, -5, 4); // eax = 0xfffffffb; rax zero-extended
  A.cdqe();                 // rax = sign-extended: -5
  A.movRI(Reg::RCX, 7, 8);
  A.cmpRI(Reg::RDI, 0, 8);
  A.cmovRR(Cond::E, Reg::RAX, Reg::RCX, 8); // rax = 7 iff rdi == 0
  A.ret();
  EXPECT_EQ(R.run({0}), 7u);
}

TEST(Machine, ExternalCallDefaultModel) {
  ProgramBuilder PB("ext");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel();
  uint64_t Puts = PB.plt("puts");
  A.bind(F);
  A.pushR(Reg::RBX);
  A.movRI(Reg::RBX, 123, 8);
  A.callAbs(Puts);
  A.movRR(Reg::RAX, Reg::RBX, 8); // rbx is callee-saved: must survive
  A.popR(Reg::RBX);
  A.ret();
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());
  Machine M(BB->Img);
  M.setupCall(BB->Img.Entry);
  ASSERT_EQ(M.run(1000), Machine::Status::Returned);
  EXPECT_EQ(M.reg(Reg::RAX), 123u);
}

TEST(Machine, ExitHaltsViaSyscall) {
  ProgramBuilder PB("exit");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel();
  A.bind(F);
  A.movRI(Reg::RAX, 60, 4);
  A.syscall();
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());
  Machine M(BB->Img);
  M.setupCall(BB->Img.Entry);
  EXPECT_EQ(M.run(10), Machine::Status::Halted);
}

TEST(Machine, SelfModifiedFetchFaults) {
  ProgramBuilder PB("selfmod");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel(), Next = A.newLabel();
  A.bind(F);
  // Write over the next instruction's bytes, then fall into them.
  A.leaRL(Reg::RAX, Next);
  A.movMI(MemOperand{Reg::RAX, Reg::None, 1, 0, false}, 0x90, 1);
  A.bind(Next);
  A.nop();
  A.ret();
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());
  Machine M(BB->Img);
  M.setupCall(BB->Img.Entry);
  EXPECT_EQ(M.run(10), Machine::Status::Fault)
      << "self-modifying code is out of scope and must fault";
}

} // namespace
