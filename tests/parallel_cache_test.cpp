//===- parallel_cache_test.cpp - Cache store under concurrency -----------===//
//
// The artifact store's concurrency contract: lookups and stores may race
// freely — across the parallel lifting engine's workers sharing one
// CacheStore, and across independent stores (processes) sharing one
// directory — and the worst possible outcome is a redundant lift, never a
// torn entry, a wrong hit, or a crash. The file name keeps the "parallel"
// stem so the TSAN configuration (-R parallel) races these paths.
//
//===----------------------------------------------------------------------===//

#include "api/Hglift.h"
#include "corpus/Programs.h"
#include "store/Store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <thread>

using namespace hglift;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path Path;
  explicit TempDir(const std::string &Name)
      : Path(fs::path("/tmp") / ("hglift_parallel_cache_" + Name)) {
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~TempDir() { fs::remove_all(Path); }
  std::string str() const { return Path.string(); }
};

TEST(ParallelCache, WorkersShareOneStore) {
  // The parallel lifting engine's workers hit the same CacheStore from
  // many threads: cold (all stores race) and warm (all validations race).
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  TempDir Dir("workers");

  Options O;
  O.Cache.Dir = Dir.str();
  O.Lift.Threads = 4;

  std::string Cold, Warm;
  {
    Session S(BB->Img, O);
    S.lift();
    S.check();
    std::ostringstream OS;
    S.writeReportJson(OS);
    Cold = OS.str();
    auto CS = S.cacheStats();
    ASSERT_TRUE(CS.has_value());
    EXPECT_GT(CS->Stored, 0u);
  }
  {
    Session S(BB->Img, O);
    S.lift();
    S.check();
    std::ostringstream OS;
    S.writeReportJson(OS);
    Warm = OS.str();
    auto CS = S.cacheStats();
    ASSERT_TRUE(CS.has_value());
    EXPECT_EQ(CS->Misses, 0u);
    EXPECT_EQ(CS->Validated, CS->Hits);
  }
  EXPECT_EQ(Cold, Warm)
      << "fully-cached parallel run must reproduce the report bytes";
}

TEST(ParallelCache, IndependentWritersRaceOneDirectory) {
  // Many independent stores (modeling many processes) populate one
  // directory at once. Every interleaving of tempfile+rename publishes
  // only complete entries, so a subsequent warm lift hits everything.
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  TempDir Dir("racers");

  constexpr unsigned Racers = 4;
  std::vector<std::thread> Threads;
  std::vector<store::CacheStats> Stats(Racers);
  for (unsigned I = 0; I < Racers; ++I)
    Threads.emplace_back([&, I] {
      store::CacheStore Store({Dir.str(), 0, true});
      hg::LiftConfig Cfg;
      Cfg.Cache = &Store;
      hg::Lifter L(BB->Img, Cfg);
      hg::BinaryResult R = L.liftBinary();
      EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted);
      Stats[I] = Store.stats();
    });
  for (std::thread &T : Threads)
    T.join();

  // No lookup may ever fail validation (a hit is either absent or whole),
  // and at least one racer must have written every function.
  uint64_t MaxStored = 0;
  for (const store::CacheStats &S : Stats) {
    EXPECT_EQ(S.ValidationFailures, 0u);
    MaxStored = std::max(MaxStored, S.Stored);
  }
  EXPECT_GT(MaxStored, 0u);

  store::CacheStore Store({Dir.str(), 0, true});
  hg::LiftConfig Cfg;
  Cfg.Cache = &Store;
  hg::Lifter L(BB->Img, Cfg);
  hg::BinaryResult R = L.liftBinary();
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted);
  EXPECT_EQ(Store.stats().Misses, 0u)
      << "after the race settles, every function must hit";
}

TEST(ParallelCache, RacingSessionsAgreeOnResults) {
  // Two whole Sessions (lift + check) race on one directory; both must
  // produce the same report bytes as an uncached run.
  auto BB = corpus::branchLoopBinary();
  ASSERT_TRUE(BB.has_value());
  TempDir Dir("sessions");

  std::string Plain;
  {
    Session S(BB->Img, Options());
    S.lift();
    S.check();
    std::ostringstream OS;
    S.writeReportJson(OS);
    Plain = OS.str();
  }

  constexpr unsigned N = 3;
  std::vector<std::string> Reports(N);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      Options O;
      O.Cache.Dir = Dir.str();
      Session S(BB->Img, O);
      S.lift();
      S.check();
      std::ostringstream OS;
      S.writeReportJson(OS);
      Reports[I] = OS.str();
    });
  for (std::thread &T : Threads)
    T.join();

  for (unsigned I = 0; I < N; ++I)
    EXPECT_EQ(Reports[I], Plain) << "racing session " << I << " diverged";
}

TEST(ParallelCache, EvictionRacesLookups) {
  // A tiny byte budget makes every store trigger the eviction sweep while
  // other workers are mid-lookup; misses from evicted entries just relift.
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  TempDir Dir("evict");

  constexpr unsigned Racers = 3;
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < Racers; ++I)
    Threads.emplace_back([&] {
      store::CacheStore Store({Dir.str(), /*MaxBytes=*/64, true});
      hg::LiftConfig Cfg;
      Cfg.Cache = &Store;
      hg::Lifter L(BB->Img, Cfg);
      hg::BinaryResult R = L.liftBinary();
      EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted);
    });
  for (std::thread &T : Threads)
    T.join();
}

} // namespace
