//===- fuzz_campaign_test.cpp - Campaign determinism and mutant kills -----===//
//
// The campaign contract: (1) a campaign is a pure function of its options
// — two runs with the same seed produce byte-identical --fuzz-json
// reports; (2) the unmutated pipeline is clean on the generated corpus;
// (3) every registered semantics mutant is killed, each by the layer its
// registration predicts (lift-only mutants by the Step-2 checker, mutants
// surviving into the checker's own semantics by the concrete oracle).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include <gtest/gtest.h>
#include <sstream>

using namespace hglift;
using fuzz::CampaignResult;
using fuzz::FuzzOptions;

namespace {

std::string jsonFor(const FuzzOptions &O, CampaignResult *Out = nullptr) {
  std::ostringstream Log;
  CampaignResult R = fuzz::runCampaign(O, Log);
  std::ostringstream JS;
  fuzz::writeFuzzJson(JS, O, R);
  if (Out)
    *Out = std::move(R);
  return JS.str();
}

TEST(FuzzCampaign, DeterministicReport) {
  FuzzOptions O;
  O.Seed = 3;
  O.Runs = 6;
  CampaignResult R1, R2;
  std::string J1 = jsonFor(O, &R1), J2 = jsonFor(O, &R2);
  EXPECT_EQ(J1, J2);
  EXPECT_TRUE(R1.success());
  EXPECT_EQ(R1.Runs.size(), 6u);
  EXPECT_EQ(R1.oracleViolations(), 0u);
  EXPECT_EQ(R1.checkFailures(), 0u);
}

TEST(FuzzCampaign, DifferentSeedsDifferentReport) {
  FuzzOptions A, B;
  A.Seed = 3, B.Seed = 4;
  A.Runs = B.Runs = 3;
  EXPECT_NE(jsonFor(A), jsonFor(B));
}

TEST(FuzzCampaign, UnmutatedPipelineClean) {
  FuzzOptions O;
  O.Seed = 11;
  O.Runs = 8;
  CampaignResult R;
  jsonFor(O, &R);
  for (const fuzz::RunRecord &Run : R.Runs) {
    EXPECT_TRUE(Run.ok()) << "run " << Run.Index << " (" << Run.Name << ")";
    EXPECT_EQ(Run.Theorems, Run.Proven);
  }
}

TEST(FuzzCampaign, AllMutantsKilledByExpectedLayer) {
  FuzzOptions O;
  O.Seed = 1;
  O.Runs = 0;
  O.MutateSemantics = true; // empty filter: the whole registry

  std::ostringstream Log;
  CampaignResult R = fuzz::runCampaign(O, Log);
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  ASSERT_EQ(R.Mutants.size(), fuzz::mutantRegistry().size());
  for (const fuzz::MutantOutcome &M : R.Mutants) {
    EXPECT_TRUE(M.Killed) << M.Name << " survived " << M.Probes
                          << " probes\n" << Log.str();
    EXPECT_EQ(M.KilledBy, M.ExpectedKiller) << M.Name;
    EXPECT_FALSE(M.Detail.empty()) << M.Name;
  }
  EXPECT_TRUE(R.success());
}

TEST(FuzzCampaign, UnknownMutantIsUsageError) {
  FuzzOptions O;
  O.Runs = 0;
  O.MutateSemantics = true;
  O.MutantFilter = {"no-such-mutant"};
  std::ostringstream Log;
  CampaignResult R = fuzz::runCampaign(O, Log);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_FALSE(R.success());
}

TEST(FuzzCampaign, BudgetStopsRunLoop) {
  FuzzOptions O;
  O.Seed = 5;
  O.Runs = 100000;
  O.BudgetSeconds = 0.2;
  std::ostringstream Log;
  CampaignResult R = fuzz::runCampaign(O, Log);
  EXPECT_TRUE(R.BudgetStopped);
  EXPECT_LT(R.Runs.size(), 100000u);
  EXPECT_GT(R.Runs.size(), 0u);
}

} // namespace
