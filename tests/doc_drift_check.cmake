# Documentation drift gate (ctest: doc_drift_check).
#
# Greps the driver's argument parser for every registered flag ("--xyz"
# string literal) and subcommand (compared against argv[1]) and fails if
# any is not mentioned in docs/CLI.md. Run as:
#   cmake -DMAIN=<hglift_main.cpp> -DDOC=<CLI.md> -P doc_drift_check.cmake

if(NOT EXISTS "${MAIN}")
  message(FATAL_ERROR "doc_drift_check: missing source ${MAIN}")
endif()
if(NOT EXISTS "${DOC}")
  message(FATAL_ERROR "doc_drift_check: docs/CLI.md does not exist -- every "
                      "flag in hglift_main.cpp must be documented there")
endif()

file(READ "${MAIN}" MAIN_SRC)
file(READ "${DOC}" DOC_SRC)

# Flags: any "--flag" string literal in the parser.
string(REGEX MATCHALL "\"--[a-z0-9-]+\"" RAW_FLAGS "${MAIN_SRC}")
# Subcommands: bare-word string literals compared with ==.
string(REGEX MATCHALL "== \"[a-z][a-z-]*\"" RAW_SUBS "${MAIN_SRC}")

set(TOKENS "")
foreach(F ${RAW_FLAGS})
  string(REPLACE "\"" "" F "${F}")
  list(APPEND TOKENS "${F}")
endforeach()
foreach(S ${RAW_SUBS})
  string(REPLACE "== " "" S "${S}")
  string(REPLACE "\"" "" S "${S}")
  list(APPEND TOKENS "${S}")
endforeach()
list(REMOVE_DUPLICATES TOKENS)

set(MISSING "")
foreach(T ${TOKENS})
  string(FIND "${DOC_SRC}" "${T}" POS)
  if(POS EQUAL -1)
    list(APPEND MISSING "${T}")
  endif()
endforeach()

if(MISSING)
  message(FATAL_ERROR "doc_drift_check: registered in hglift_main.cpp but "
                      "undocumented in docs/CLI.md: ${MISSING}")
endif()
message(STATUS "doc_drift_check: all ${TOKENS} documented")
