# Documentation drift gate (ctest: doc_drift_check).
#
# Greps the driver's argument parser for every registered flag ("--xyz"
# string literal) and subcommand (compared against argv[1]) and fails if
# any is not mentioned in docs/CLI.md. When SERVE_SRC/SERVEDOC are given,
# additionally requires every serve flag and request-op literal from
# src/serve/Serve.cpp to appear in BOTH docs/CLI.md and docs/SERVE.md, and
# the wire spec to pin the serve_schema_version literal. When
# WITNESSDOC/DIAG_H are given, additionally requires the witness sidecar
# spec (docs/WITNESSES.md) to document the witness flags and both it and
# docs/CLI.md to pin the exact "witness_schema_version N" literal declared
# in src/diag/Diag.h. When VSADOC is given, additionally requires the VSA
# design doc (docs/VSA.md) to document the --no-vsa and --vsa-max-targets
# flags. Run as:
#   cmake -DMAIN=<hglift_main.cpp> -DDOC=<CLI.md>
#         [-DSERVE_SRC=<Serve.cpp> -DSERVEDOC=<SERVE.md>]
#         [-DWITNESSDOC=<WITNESSES.md> -DDIAG_H=<Diag.h>]
#         [-DVSADOC=<VSA.md>]
#         -P doc_drift_check.cmake

if(NOT EXISTS "${MAIN}")
  message(FATAL_ERROR "doc_drift_check: missing source ${MAIN}")
endif()
if(NOT EXISTS "${DOC}")
  message(FATAL_ERROR "doc_drift_check: docs/CLI.md does not exist -- every "
                      "flag in hglift_main.cpp must be documented there")
endif()

file(READ "${MAIN}" MAIN_SRC)
file(READ "${DOC}" DOC_SRC)

# Flags: any "--flag" string literal in the parser.
string(REGEX MATCHALL "\"--[a-z0-9-]+\"" RAW_FLAGS "${MAIN_SRC}")
# Subcommands: bare-word string literals compared with ==.
string(REGEX MATCHALL "== \"[a-z][a-z-]*\"" RAW_SUBS "${MAIN_SRC}")

set(TOKENS "")
foreach(F ${RAW_FLAGS})
  string(REPLACE "\"" "" F "${F}")
  list(APPEND TOKENS "${F}")
endforeach()
foreach(S ${RAW_SUBS})
  string(REPLACE "== " "" S "${S}")
  string(REPLACE "\"" "" S "${S}")
  list(APPEND TOKENS "${S}")
endforeach()
list(REMOVE_DUPLICATES TOKENS)

set(MISSING "")
foreach(T ${TOKENS})
  string(FIND "${DOC_SRC}" "${T}" POS)
  if(POS EQUAL -1)
    list(APPEND MISSING "${T}")
  endif()
endforeach()

if(MISSING)
  message(FATAL_ERROR "doc_drift_check: registered in hglift_main.cpp but "
                      "undocumented in docs/CLI.md: ${MISSING}")
endif()
message(STATUS "doc_drift_check: all ${TOKENS} documented")

# ---- serve wire-protocol drift: Serve.cpp vs docs/SERVE.md + docs/CLI.md
if(SERVE_SRC)
  if(NOT EXISTS "${SERVE_SRC}")
    message(FATAL_ERROR "doc_drift_check: missing source ${SERVE_SRC}")
  endif()
  if(NOT EXISTS "${SERVEDOC}")
    message(FATAL_ERROR "doc_drift_check: docs/SERVE.md does not exist -- "
                        "the serve wire protocol must be specified there")
  endif()
  file(READ "${SERVE_SRC}" SERVE_SRC_TXT)
  file(READ "${SERVEDOC}" SERVEDOC_TXT)

  # Serve flags, and the request ops the dispatcher compares against.
  string(REGEX MATCHALL "\"--[a-z0-9-]+\"" RAW_SFLAGS "${SERVE_SRC_TXT}")
  string(REGEX MATCHALL "== \"[a-z][a-z-]*\"" RAW_SOPS "${SERVE_SRC_TXT}")
  set(STOKENS "")
  foreach(F ${RAW_SFLAGS})
    string(REPLACE "\"" "" F "${F}")
    list(APPEND STOKENS "${F}")
  endforeach()
  foreach(S ${RAW_SOPS})
    string(REPLACE "== " "" S "${S}")
    string(REPLACE "\"" "" S "${S}")
    list(APPEND STOKENS "${S}")
  endforeach()
  list(REMOVE_DUPLICATES STOKENS)

  set(SMISSING "")
  foreach(T ${STOKENS})
    string(FIND "${SERVEDOC_TXT}" "${T}" SPOS)
    string(FIND "${DOC_SRC}" "${T}" CPOS)
    if(SPOS EQUAL -1 OR CPOS EQUAL -1)
      list(APPEND SMISSING "${T}")
    endif()
  endforeach()
  if(SMISSING)
    message(FATAL_ERROR "doc_drift_check: registered in Serve.cpp but "
                        "undocumented in docs/SERVE.md and/or docs/CLI.md: "
                        "${SMISSING}")
  endif()

  # The wire spec and the CLI doc must both pin the protocol version field.
  string(FIND "${SERVEDOC_TXT}" "serve_schema_version" VPOS)
  if(VPOS EQUAL -1)
    message(FATAL_ERROR "doc_drift_check: docs/SERVE.md must document the "
                        "serve_schema_version response field")
  endif()
  string(FIND "${DOC_SRC}" "serve_schema_version" CVPOS)
  if(CVPOS EQUAL -1)
    message(FATAL_ERROR "doc_drift_check: docs/CLI.md must mention the "
                        "serve_schema_version response field")
  endif()
  message(STATUS "doc_drift_check: serve tokens ${STOKENS} documented")
endif()

# ---- witness sidecar drift: Diag.h schema version vs WITNESSES.md + CLI.md
if(WITNESSDOC)
  if(NOT EXISTS "${WITNESSDOC}")
    message(FATAL_ERROR "doc_drift_check: docs/WITNESSES.md does not exist -- "
                        "the witness sidecar format must be specified there")
  endif()
  if(NOT EXISTS "${DIAG_H}")
    message(FATAL_ERROR "doc_drift_check: missing source ${DIAG_H}")
  endif()
  file(READ "${WITNESSDOC}" WITNESSDOC_TXT)
  file(READ "${DIAG_H}" DIAG_SRC)

  # The flags that configure witness synthesis must be explained in the
  # sidecar spec, not just listed in the CLI reference.
  foreach(T "--witness-dir" "--witness-budget")
    string(FIND "${WITNESSDOC_TXT}" "${T}" WPOS)
    if(WPOS EQUAL -1)
      message(FATAL_ERROR "doc_drift_check: docs/WITNESSES.md must document "
                          "the ${T} flag")
    endif()
  endforeach()

  # Both docs must pin the exact schema version literal from Diag.h, so a
  # bump there forces a matching doc (and golden) update.
  string(REGEX MATCH "WitnessSchemaVersion = ([0-9]+)" _ "${DIAG_SRC}")
  if(NOT CMAKE_MATCH_1)
    message(FATAL_ERROR "doc_drift_check: could not find the "
                        "WitnessSchemaVersion literal in ${DIAG_H}")
  endif()
  set(WVER "witness_schema_version ${CMAKE_MATCH_1}")
  string(FIND "${WITNESSDOC_TXT}" "${WVER}" WVPOS)
  if(WVPOS EQUAL -1)
    message(FATAL_ERROR "doc_drift_check: docs/WITNESSES.md must pin "
                        "\"${WVER}\" (the literal from src/diag/Diag.h)")
  endif()
  string(FIND "${DOC_SRC}" "${WVER}" CWVPOS)
  if(CWVPOS EQUAL -1)
    message(FATAL_ERROR "doc_drift_check: docs/CLI.md must pin "
                        "\"${WVER}\" (the literal from src/diag/Diag.h)")
  endif()
  message(STATUS "doc_drift_check: witness flags and ${WVER} documented")
endif()

# ---- VSA drift: the analysis doc must explain its CLI surface
if(VSADOC)
  if(NOT EXISTS "${VSADOC}")
    message(FATAL_ERROR "doc_drift_check: docs/VSA.md does not exist -- the "
                        "value-set analysis and its validate-don't-trust "
                        "contract must be specified there")
  endif()
  file(READ "${VSADOC}" VSADOC_TXT)
  foreach(T "--no-vsa" "--vsa-max-targets")
    string(FIND "${VSADOC_TXT}" "${T}" VPOS)
    if(VPOS EQUAL -1)
      message(FATAL_ERROR "doc_drift_check: docs/VSA.md must document "
                          "the ${T} flag")
    endif()
  endforeach()
  message(STATUS "doc_drift_check: VSA flags documented")
endif()
