//===- fuzz_reducer_test.cpp - Delta-debugging reducer convergence --------===//
//
// Plant a known-bad semantics mutant, let the campaign find a killing
// multi-function binary, and check that the reducer shrinks the failure
// to a minimal reproducer: at most one function and a handful of live
// instructions, written to disk next to a seed sidecar that replays the
// same failure through `hglift fuzz --replay`.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace hglift;
using fuzz::CampaignResult;
using fuzz::FuzzOptions;
using fuzz::ReductionRecord;

namespace {

bool fileExists(const std::string &P) {
  return std::ifstream(P).good();
}

void runReducerDemo(const std::string &MutantName, const char *ExpectLayer) {
  FuzzOptions O;
  O.Seed = 1;
  O.Runs = 0; // mutation probing only
  O.MutateSemantics = true;
  O.MutantFilter = {MutantName};
  O.ReduceMutant = MutantName;
  O.ReproDir = ::testing::TempDir();

  std::ostringstream Log;
  CampaignResult R = fuzz::runCampaign(O, Log);
  ASSERT_TRUE(R.Error.empty()) << R.Error << "\n" << Log.str();
  ASSERT_EQ(R.Reductions.size(), 1u) << Log.str();

  const ReductionRecord &Red = R.Reductions[0];
  EXPECT_EQ(Red.Mutant, MutantName);
  EXPECT_GT(Red.Steps, 0u);

  // Convergence: the planted violation lives in one instruction, so the
  // reducer must strip the binary down to (at most) the function holding
  // it and a short live tail.
  EXPECT_LE(Red.FunctionsAfter, 1u) << Log.str();
  EXPECT_LE(Red.InstructionsAfter, 8u) << Log.str();
  EXPECT_LE(Red.FunctionsAfter, Red.FunctionsBefore);
  EXPECT_LT(Red.InstructionsAfter, Red.InstructionsBefore);
  EXPECT_EQ(Red.Layer, ExpectLayer);

  // The on-disk reproducer pair exists and replays the failure.
  ASSERT_TRUE(fileExists(Red.ReproElf)) << Red.ReproElf;
  ASSERT_TRUE(fileExists(Red.ReproJson)) << Red.ReproJson;
  EXPECT_TRUE(Red.Replayed) << Log.str();

  std::ostringstream ReplayLog;
  EXPECT_EQ(fuzz::replayReproducer(Red.ReproJson, ReplayLog), 0)
      << ReplayLog.str();
}

TEST(FuzzReducer, OracleKilledMutantConverges) {
  runReducerDemo("add-imm-off-by-one", "oracle");
}

TEST(FuzzReducer, CheckerKilledMutantConverges) {
  runReducerDemo("jcc-drop-fallthrough", "step2");
}

TEST(FuzzReducer, ReplayRejectsMalformedInput) {
  std::ostringstream Log;
  EXPECT_EQ(fuzz::replayReproducer("/nonexistent/repro.json", Log), 2);

  std::string Bad = ::testing::TempDir() + "/bad_repro.json";
  std::ofstream(Bad) << "{\"fuzz_schema_version\": 999}";
  EXPECT_EQ(fuzz::replayReproducer(Bad, Log), 2);
}

} // namespace
