//===- diag_test.cpp - Provenance, tracing, explain plumbing -------------===//
//
// The PR-level guarantees of the diagnostics layer:
//
//   * every diagnostic produced by the Lifter and the Step-2 checker
//     carries non-empty provenance (function entry, address, origin);
//   * entailment failures name the failing postcondition clause
//     (Pred::leqExplain / MemModel::leqExplain);
//   * the tracer emits valid JSON Lines even when hammered from many
//     threads, and costs one atomic load when disabled;
//   * the bundled JSON parser round-trips what our writers emit.
//
//===----------------------------------------------------------------------===//

#include "api/Hglift.h"
#include "corpus/Programs.h"
#include "diag/Json.h"
#include "diag/Trace.h"
#include "export/HoareChecker.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

using namespace hglift;

namespace {

// --- provenance on lifter diagnostics ------------------------------------

TEST(DiagProvenance, EveryLifterDiagnosticHasProvenance) {
  // overflowBinary induces a verification error; ret2winBinary induces
  // proof obligations; callbackBinary induces unresolved-call annotations.
  for (auto BB : {corpus::overflowBinary(), corpus::ret2winBinary(),
                  corpus::callbackBinary()}) {
    ASSERT_TRUE(BB.has_value());
    hg::Lifter L(BB->Img, hg::LiftConfig());
    hg::BinaryResult R = L.liftBinary();
    for (const diag::Diagnostic &D : R.allDiagnostics()) {
      EXPECT_FALSE(D.Prov.empty()) << D.Message;
      EXPECT_NE(D.Prov.FunctionEntry, 0u) << D.Message;
      EXPECT_NE(D.Prov.Addr, 0u) << D.Message;
      EXPECT_FALSE(D.Message.empty());
    }
  }
}

TEST(DiagProvenance, VerificationErrorCarriesQueryChain) {
  auto BB = corpus::overflowBinary();
  ASSERT_TRUE(BB.has_value());
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  ASSERT_NE(R.Outcome, hg::LiftOutcome::Lifted);

  bool SawError = false;
  for (const diag::Diagnostic &D : R.allDiagnostics())
    if (D.Kind == diag::DiagKind::VerificationError) {
      SawError = true;
      EXPECT_EQ(D.Prov.Origin, diag::Component::SymExec);
      EXPECT_FALSE(D.Prov.Mnemonic.empty());
      // The unprovable return must leave relation queries in the chain —
      // that chain is the root-cause trail `hglift explain` renders.
      EXPECT_FALSE(D.Prov.QueryChain.empty());
    }
  EXPECT_TRUE(SawError);
}

TEST(DiagProvenance, DiagnosticsSortedByAddress) {
  auto BB = corpus::ret2winBinary();
  ASSERT_TRUE(BB.has_value());
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  for (const hg::FunctionResult &F : R.Functions)
    for (size_t I = 1; I < F.Diags.size(); ++I)
      EXPECT_LE(F.Diags[I - 1].Prov.Addr, F.Diags[I].Prov.Addr);
}

// --- provenance + clause explanation on checker diagnostics ---------------

TEST(DiagProvenance, CheckerFailureNamesFailingClause) {
  auto BB = corpus::branchLoopBinary();
  ASSERT_TRUE(BB.has_value());
  Session S(BB->Img, Options());
  hg::BinaryResult R = S.lift(); // mutable copy: we corrupt it below
  ASSERT_EQ(R.Outcome, hg::LiftOutcome::Lifted);

  // Corrupt one invariant: claim rbx holds a bogus constant. Post-states
  // reaching that vertex are no longer entailed, and the explanation must
  // point at the rbx clause.
  bool Tampered = false;
  for (hg::FunctionResult &F : R.Functions) {
    for (auto &[K, V] : F.Graph.Vertices) {
      if (!V.Explored || V.Instr.isTerminator())
        continue;
      V.State.P.setReg64(x86::Reg::RBX, F.ctx().mkConst(0x1234567, 64));
      Tampered = true;
      break;
    }
    if (Tampered)
      break;
  }
  ASSERT_TRUE(Tampered);

  exporter::CheckContext CC{BB->Img, sem::SymConfig()};
  exporter::CheckResult C = exporter::checkBinary(CC, R);
  ASSERT_LT(C.Proven, C.Theorems);
  ASSERT_EQ(C.Diags.size(), C.Failures.size());

  bool SawClause = false;
  for (const diag::Diagnostic &D : C.Diags) {
    EXPECT_EQ(D.Prov.Origin, diag::Component::HoareChecker);
    EXPECT_FALSE(D.Prov.empty()) << D.Message;
    EXPECT_NE(D.Prov.FunctionEntry, 0u);
    if (D.Prov.ClauseId >= 0) {
      SawClause = true;
      EXPECT_FALSE(D.Prov.ClauseText.empty());
      EXPECT_NE(D.Message.find("clause"), std::string::npos) << D.Message;
    }
  }
  EXPECT_TRUE(SawClause)
      << "at least one failure must be explained down to the clause";
}

// --- leqExplain mirrors leq ------------------------------------------------

TEST(LeqExplain, AgreesWithLeqAndNamesRegisterClause) {
  expr::ExprContext Ctx;
  pred::Pred A = pred::Pred::entry(Ctx);
  pred::Pred B = A;
  EXPECT_TRUE(pred::Pred::leq(A, B));
  EXPECT_FALSE(pred::Pred::leqExplain(Ctx, A, B).has_value());

  // B claims rbx == 42; the entry state cannot entail that.
  B.setReg64(x86::Reg::RBX, Ctx.mkConst(42, 64));
  EXPECT_FALSE(pred::Pred::leq(A, B));
  auto F = pred::Pred::leqExplain(Ctx, A, B);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->ClauseId, static_cast<int>(x86::regNum(x86::Reg::RBX)));
  EXPECT_NE(F->Clause.find("rbx"), std::string::npos) << F->Clause;
  EXPECT_FALSE(F->Why.empty());
}

TEST(LeqExplain, NamesRangeClause) {
  expr::ExprContext Ctx;
  pred::Pred A = pred::Pred::entry(Ctx);
  pred::Pred B = A;
  const expr::Expr *Rax = A.reg64(x86::Reg::RAX);
  B.addRange(Rax, pred::RelOp::ULe, 0xc3);
  EXPECT_FALSE(pred::Pred::leq(A, B));
  auto F = pred::Pred::leqExplain(Ctx, A, B);
  ASSERT_TRUE(F.has_value());
  // Range clauses number after the 16 registers and the flag clause.
  EXPECT_GE(F->ClauseId, 17);
  EXPECT_NE(F->Clause.find("195"), std::string::npos) << F->Clause;
}

TEST(LeqExplain, MemModelExplainsMissingClobber) {
  expr::ExprContext Ctx;
  mem::MemModel A, B;
  smt::Region R{Ctx.mkConst(0x1000, 64), 8};
  A.Clobbered.push_back(R);
  EXPECT_FALSE(mem::MemModel::leq(A, B));
  std::string Why = mem::MemModel::leqExplain(Ctx, A, B);
  EXPECT_NE(Why.find("clobber"), std::string::npos) << Why;
  EXPECT_TRUE(mem::MemModel::leqExplain(Ctx, B, A).empty());
}

// --- tracer ---------------------------------------------------------------

TEST(Tracer, DisabledByDefault) {
  EXPECT_EQ(diag::Tracer::active(), nullptr);
}

TEST(Tracer, EmitsValidJsonLines) {
  std::ostringstream OS;
  {
    diag::Tracer T(OS, "unit");
    diag::TracerScope Scope(T);
    ASSERT_EQ(diag::Tracer::active(), &T);
    diag::TraceEvent E("unit_event");
    E.hex("addr", 0x401000);
    E.field("count", uint64_t(7));
    E.field("label", std::string("a \"quoted\" name\n"));
    diag::Tracer::active()->emit(std::move(E));
  }
  EXPECT_EQ(diag::Tracer::active(), nullptr);

  std::istringstream In(OS.str());
  std::string Line;
  size_t Lines = 0;
  bool SawBegin = false, SawEnd = false, SawEvent = false;
  while (std::getline(In, Line)) {
    ++Lines;
    auto V = diag::parseJson(Line);
    ASSERT_TRUE(V.has_value()) << Line;
    std::string Ev = V->str("ev");
    SawBegin |= Ev == "trace_begin";
    SawEnd |= Ev == "trace_end";
    if (Ev == "unit_event") {
      SawEvent = true;
      EXPECT_EQ(V->str("addr"), "0x401000");
      EXPECT_EQ(V->num("count"), 7);
      EXPECT_EQ(V->str("label"), "a \"quoted\" name\n");
    }
  }
  EXPECT_EQ(Lines, 3u);
  EXPECT_TRUE(SawBegin && SawEnd && SawEvent);
}

TEST(Tracer, ThreadSafeWholeLines) {
  std::ostringstream OS;
  {
    diag::Tracer T(OS, "hammer");
    diag::TracerScope Scope(T);
    std::vector<std::thread> Workers;
    for (int W = 0; W < 4; ++W)
      Workers.emplace_back([W] {
        for (int I = 0; I < 250; ++I) {
          diag::TraceEvent E("hammer");
          E.field("worker", static_cast<uint64_t>(W));
          E.field("i", static_cast<uint64_t>(I));
          if (diag::Tracer *T = diag::Tracer::active())
            T->emit(std::move(E));
        }
      });
    for (std::thread &W : Workers)
      W.join();
  }

  std::istringstream In(OS.str());
  std::string Line;
  size_t Hammered = 0;
  while (std::getline(In, Line)) {
    auto V = diag::parseJson(Line);
    ASSERT_TRUE(V.has_value()) << "interleaved write produced: " << Line;
    if (V->str("ev") == "hammer")
      ++Hammered;
  }
  EXPECT_EQ(Hammered, 1000u);
}

TEST(Tracer, TracedParallelLiftProducesValidJsonl) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  std::ostringstream OS;
  {
    diag::Tracer T(OS, "parallel");
    diag::TracerScope Scope(T);
    Options O;
    O.Lift.Threads = 4;
    Session S(BB->Img, O);
    S.lift();
    S.check();
  }

  std::istringstream In(OS.str());
  std::string Line;
  size_t LiftEnds = 0, CheckEnds = 0;
  while (std::getline(In, Line)) {
    auto V = diag::parseJson(Line);
    ASSERT_TRUE(V.has_value()) << Line;
    LiftEnds += V->str("ev") == "lift_end";
    CheckEnds += V->str("ev") == "check_end";
  }
  EXPECT_GE(LiftEnds, 2u) << "one lift span per function";
  EXPECT_GE(CheckEnds, 2u) << "one check span per function";
}

// --- JSON parser ----------------------------------------------------------

TEST(Json, RoundTripsWriterOutput) {
  std::string Doc = R"({"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true},
                        "e": null, "f": "A\"\\"})";
  auto V = diag::parseJson(Doc);
  ASSERT_TRUE(V.has_value());
  const diag::JValue *A = V->get("a");
  ASSERT_TRUE(A && A->isArr());
  ASSERT_EQ(A->Arr.size(), 3u);
  EXPECT_EQ(A->Arr[1].Num, 2.5);
  EXPECT_EQ(A->Arr[2].Num, -3);
  const diag::JValue *B = V->get("b");
  ASSERT_TRUE(B && B->isObj());
  EXPECT_EQ(B->str("c"), "x\ny");
  EXPECT_TRUE(B->get("d")->B);
  EXPECT_EQ(V->get("e")->K, diag::JValue::Kind::Null);
  EXPECT_EQ(V->str("f"), "A\"\\");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(diag::parseJson("{\"a\": ").has_value());
  EXPECT_FALSE(diag::parseJson("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(diag::parseJson("").has_value());
  EXPECT_FALSE(diag::parseJson("{'a': 1}").has_value());
}

} // namespace
