//===- interval_test.cpp - Interval arithmetic unit + property tests -----===//

#include "support/Interval.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using hglift::Interval;
using hglift::Rng;

namespace {

TEST(Interval, Basics) {
  Interval T = Interval::top();
  EXPECT_TRUE(T.isTop());
  EXPECT_FALSE(T.isEmpty());
  EXPECT_TRUE(T.contains(0));
  EXPECT_TRUE(T.contains(INT64_MIN));

  Interval E = Interval::empty();
  EXPECT_TRUE(E.isEmpty());
  EXPECT_FALSE(E.contains(0));

  Interval P(42);
  EXPECT_TRUE(P.isPoint());
  EXPECT_TRUE(P.contains(42));
  EXPECT_FALSE(P.contains(41));
}

TEST(Interval, JoinMeet) {
  Interval A(0, 10), B(5, 20);
  EXPECT_EQ(A.join(B), Interval(0, 20));
  EXPECT_EQ(A.meet(B), Interval(5, 10));
  EXPECT_TRUE(A.meet(Interval(11, 12)).isEmpty());
  EXPECT_EQ(A.join(Interval::empty()), A);
  EXPECT_EQ(A.meet(Interval::empty()), Interval::empty());
}

TEST(Interval, BelowAtLeast) {
  Interval A(3, 7);
  EXPECT_TRUE(A.below(8));
  EXPECT_FALSE(A.below(7));
  EXPECT_TRUE(A.atLeast(3));
  EXPECT_FALSE(A.atLeast(4));
}

TEST(Interval, ArithmeticExact) {
  EXPECT_EQ(Interval(1, 2).add(Interval(10, 20)), Interval(11, 22));
  EXPECT_EQ(Interval(1, 2).sub(Interval(10, 20)), Interval(-19, -8));
  EXPECT_EQ(Interval(-3, 4).mul(2), Interval(-6, 8));
  EXPECT_EQ(Interval(-3, 4).mul(-2), Interval(-8, 6));
  EXPECT_EQ(Interval(1, 5).neg(), Interval(-5, -1));
}

TEST(Interval, OverflowIsTop) {
  Interval Big(INT64_MAX - 1, INT64_MAX);
  EXPECT_TRUE(Big.add(Interval(10)).isTop());
  EXPECT_TRUE(Interval(INT64_MIN).neg().isTop());
  EXPECT_TRUE(Interval(INT64_MAX / 2, INT64_MAX).mul(3).isTop());
}

/// Property: interval ops are sound abstractions of concrete arithmetic.
TEST(IntervalProperty, SoundAbstraction) {
  Rng R(7);
  for (int Iter = 0; Iter < 2000; ++Iter) {
    int64_t ALo = R.range(-1000, 1000);
    int64_t AHi = ALo + R.range(0, 100);
    int64_t BLo = R.range(-1000, 1000);
    int64_t BHi = BLo + R.range(0, 100);
    Interval A(ALo, AHi), B(BLo, BHi);
    int64_t X = R.range(ALo, AHi), Y = R.range(BLo, BHi);
    int64_t K = R.range(-9, 9);

    EXPECT_TRUE(A.add(B).contains(X + Y));
    EXPECT_TRUE(A.sub(B).contains(X - Y));
    EXPECT_TRUE(A.mul(K).contains(X * K));
    EXPECT_TRUE(A.neg().contains(-X));
    EXPECT_TRUE(A.join(B).contains(X));
    EXPECT_TRUE(A.join(B).contains(Y));
    if (A.meet(B).contains(X)) {
      EXPECT_TRUE(B.contains(X));
    }
  }
}

/// Property: join is ACI; meet ordered under join.
TEST(IntervalProperty, LatticeLaws) {
  Rng R(13);
  for (int Iter = 0; Iter < 2000; ++Iter) {
    auto Mk = [&]() {
      int64_t Lo = R.range(-50, 50);
      return Interval(Lo, Lo + R.range(0, 40));
    };
    Interval A = Mk(), B = Mk(), C = Mk();
    EXPECT_EQ(A.join(B), B.join(A));
    EXPECT_EQ(A.join(A), A);
    EXPECT_EQ(A.join(B).join(C), A.join(B.join(C)));
    EXPECT_TRUE(A.join(B).contains(A.meet(B)));
  }
}

} // namespace
