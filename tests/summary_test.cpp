//===- summary_test.cpp - HG summaries: round-trip + patch diff ----------===//

#include "corpus/Programs.h"
#include "export/Summary.h"
#include "hg/Lifter.h"

#include <gtest/gtest.h>

using namespace hglift;
using exporter::HgSummary;

namespace {

HgSummary liftSum(const corpus::BuiltBinary &BB) {
  hg::Lifter L(BB.Img, hg::LiftConfig());
  return exporter::summarize(L.liftBinary());
}

TEST(Summary, CapturesStructure) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  HgSummary S = liftSum(*BB);
  EXPECT_EQ(S.Outcome, "lifted");
  EXPECT_GE(S.Functions.size(), 4u);
  size_t Instrs = 0, Edges = 0;
  for (const auto &[E, F] : S.Functions) {
    Instrs += F.Instrs.size();
    Edges += F.Edges.size();
    EXPECT_EQ(F.Outcome, "lifted");
  }
  EXPECT_GT(Instrs, 20u);
  // Every instruction has an outgoing edge except terminal ones (exit
  // syscalls, hlt): at most one per function.
  EXPECT_GE(Edges + S.Functions.size(), Instrs);
}

TEST(Summary, TextRoundTrip) {
  auto BB = corpus::weirdEdgeBinary();
  ASSERT_TRUE(BB.has_value());
  HgSummary S = liftSum(*BB);
  std::string Text = exporter::writeSummary(S);
  auto R = exporter::parseSummary(Text);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Outcome, S.Outcome);
  ASSERT_EQ(R->Functions.size(), S.Functions.size());
  for (const auto &[E, F] : S.Functions) {
    ASSERT_TRUE(R->Functions.count(E));
    const exporter::FunctionSummary &G = R->Functions[E];
    EXPECT_EQ(G.Instrs, F.Instrs);
    EXPECT_EQ(G.Edges, F.Edges);
    EXPECT_EQ(G.Obligations, F.Obligations);
    EXPECT_EQ(G.A, F.A);
    EXPECT_EQ(G.B, F.B);
    EXPECT_EQ(G.C, F.C);
    EXPECT_EQ(G.MayReturn, F.MayReturn);
  }
  // And the round-tripped summary diffs empty against the original.
  EXPECT_TRUE(exporter::diffSummaries(S, *R).identical());
}

TEST(Summary, ParserRejectsGarbage) {
  EXPECT_FALSE(exporter::parseSummary("").has_value());
  EXPECT_FALSE(exporter::parseSummary("not a summary\n").has_value());
  EXPECT_FALSE(exporter::parseSummary("hg-summary 1\n").has_value())
      << "missing end marker";
  EXPECT_FALSE(
      exporter::parseSummary("hg-summary 1\n  edge orphan\nend\n")
          .has_value())
      << "facts before any function header";
}

TEST(Summary, DiffDetectsThePatchRegression) {
  auto V1 = corpus::jumpTableBinary(6, 0);
  auto V2 = corpus::jumpTableBinary(6, 1); // off-by-one guard
  ASSERT_TRUE(V1.has_value());
  ASSERT_TRUE(V2.has_value());
  HgSummary S1 = liftSum(*V1), S2 = liftSum(*V2);

  exporter::SummaryDiff D = exporter::diffSummaries(S1, S2);
  ASSERT_FALSE(D.identical());
  bool NewUnresolved = false, ChangedGuard = false;
  for (const std::string &L : D.Lines) {
    NewUnresolved |= L.find("+ edge") != std::string::npos &&
                     L.find("unresolved") != std::string::npos;
    ChangedGuard |= L.find("instr @") != std::string::npos;
  }
  EXPECT_TRUE(NewUnresolved)
      << "the loosened guard must surface as a new annotated edge";
  EXPECT_TRUE(ChangedGuard) << "the changed cmp must be reported";

  // Identity diff is empty.
  EXPECT_TRUE(exporter::diffSummaries(S1, S1).identical());
}

TEST(Summary, DiffSeesOutcomeFlips) {
  auto Good = corpus::straightlineBinary();
  auto Bad = corpus::overflowBinary();
  ASSERT_TRUE(Good.has_value());
  ASSERT_TRUE(Bad.has_value());
  exporter::SummaryDiff D =
      diffSummaries(liftSum(*Good), liftSum(*Bad));
  bool OutcomeLine = false;
  for (const std::string &L : D.Lines)
    OutcomeLine |= L.find("outcome") != std::string::npos;
  EXPECT_TRUE(OutcomeLine);
}

} // namespace
