//===- elf_test.cpp - ELF writer/reader round trip + hostile inputs ------===//

#include "elf/ElfReader.h"
#include "elf/ElfWriter.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace hglift;
using namespace hglift::elf;

namespace {

ElfSpec sampleSpec() {
  ElfSpec Spec;
  Spec.Entry = 0x401000;

  OutSection Text;
  Text.Name = ".text";
  Text.VAddr = 0x401000;
  Text.Bytes = {0xf3, 0x0f, 0x1e, 0xfa, 0xc3};
  Text.Exec = true;
  Spec.Sections.push_back(Text);

  OutSection Ro;
  Ro.Name = ".rodata";
  Ro.VAddr = 0x402000;
  Ro.Bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  Spec.Sections.push_back(Ro);

  OutSection Data;
  Data.Name = ".data";
  Data.VAddr = 0x403000;
  Data.Bytes = {9, 9, 9, 9};
  Data.Write = true;
  Spec.Sections.push_back(Data);

  Spec.Symbols.push_back(OutSymbol{"main", 0x401000, 5, true, false});
  Spec.Symbols.push_back(OutSymbol{"memset", 0x404000, 16, true, true});
  return Spec;
}

TEST(Elf, RoundTrip) {
  std::vector<uint8_t> Bytes = writeElf(sampleSpec());
  auto Img = readElf(Bytes, "sample");
  ASSERT_TRUE(Img.has_value());
  EXPECT_EQ(Img->Entry, 0x401000u);
  EXPECT_EQ(Img->Name, "sample");
  ASSERT_EQ(Img->Segments.size(), 3u);

  EXPECT_TRUE(Img->isExec(0x401000));
  EXPECT_FALSE(Img->isExec(0x402000));
  EXPECT_TRUE(Img->isReadOnly(0x402000, 8));
  EXPECT_FALSE(Img->isReadOnly(0x403000));

  auto V = Img->read(0x402000, 8);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 0x0807060504030201ull);

  ASSERT_EQ(Img->Functions.size(), 1u);
  EXPECT_EQ(Img->Functions[0].Name, "main");
  EXPECT_EQ(Img->Functions[0].Addr, 0x401000u);

  auto Ext = Img->externalName(0x404000);
  ASSERT_TRUE(Ext.has_value());
  EXPECT_EQ(*Ext, "memset");
  EXPECT_FALSE(Img->externalName(0x401000).has_value());
}

TEST(Elf, ReadAcrossBoundsFails) {
  std::vector<uint8_t> Bytes = writeElf(sampleSpec());
  auto Img = readElf(Bytes);
  ASSERT_TRUE(Img.has_value());
  EXPECT_FALSE(Img->read(0x402006, 4).has_value()) << "straddles the end";
  EXPECT_FALSE(Img->read(0x500000, 1).has_value()) << "unmapped";
  size_t Avail = 99;
  EXPECT_EQ(Img->bytesAt(0x500000, Avail), nullptr);
  EXPECT_EQ(Avail, 0u);
}

TEST(Elf, RejectsBadMagicAndClass) {
  std::vector<uint8_t> Bytes = writeElf(sampleSpec());
  {
    auto Bad = Bytes;
    Bad[0] = 0x7e;
    EXPECT_FALSE(readElf(Bad).has_value());
  }
  {
    auto Bad = Bytes;
    Bad[4] = 1; // ELFCLASS32
    EXPECT_FALSE(readElf(Bad).has_value());
  }
  {
    auto Bad = Bytes;
    Bad[18] = 0x03; // EM_386
    EXPECT_FALSE(readElf(Bad).has_value());
  }
}

TEST(Elf, RejectsTruncation) {
  std::vector<uint8_t> Bytes = writeElf(sampleSpec());
  for (size_t Keep : {size_t(0), size_t(10), size_t(63), Bytes.size() / 2}) {
    std::vector<uint8_t> Trunc(Bytes.begin(),
                               Bytes.begin() + static_cast<ptrdiff_t>(Keep));
    EXPECT_FALSE(readElf(Trunc).has_value()) << "kept " << Keep;
  }
}

/// Fuzz-ish: random single-byte corruptions must never crash the parser
/// (they may or may not parse; they must not be UB).
TEST(ElfProperty, ByteFlipsNeverCrash) {
  std::vector<uint8_t> Bytes = writeElf(sampleSpec());
  Rng R(0xe1f);
  for (int Iter = 0; Iter < 3000; ++Iter) {
    auto Bad = Bytes;
    size_t Pos = R.below(Bad.size());
    Bad[Pos] ^= static_cast<uint8_t>(1 + R.below(255));
    auto Img = readElf(Bad);
    if (Img) {
      // If it parsed, basic invariants must hold (no huge segments).
      for (const Segment &S : Img->Segments)
        EXPECT_LE(S.Bytes.size(), uint64_t(1) << 32);
    }
  }
}

TEST(Elf, SharedObjectFlag) {
  ElfSpec Spec = sampleSpec();
  Spec.SharedObject = true;
  auto Img = readElf(writeElf(Spec));
  ASSERT_TRUE(Img.has_value());
}

TEST(Elf, ZeroFillTail) {
  // Memsz > Filesz produces zero-filled .bss-style tail in our reader.
  ElfSpec Spec = sampleSpec();
  std::vector<uint8_t> Bytes = writeElf(Spec);
  auto Img = readElf(Bytes);
  ASSERT_TRUE(Img.has_value());
  // All segments here have Filesz == Memsz; just verify the data content.
  auto V = Img->read(0x403000, 4);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 0x09090909u);
}

} // namespace
