//===- shard_test.cpp - Multi-process sharded lifting ---------------------===//
//
// The shard runner's whole contract is "N processes, same bytes": the
// merged report of any worker count must be byte-identical to the serial
// run, a killed worker must be retried without a trace in the output, and
// a poisoned artifact-store entry must degrade to a clean re-lift in
// whichever process hits it. Workers are the real hglift binary
// (HGLIFT_BIN), spawned through shard::runShards exactly as the CLI does
// it.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "shard/Shard.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>

using namespace hglift;
namespace fs = std::filesystem;

namespace {

std::string tmpPath(const std::string &Name) {
  return "/tmp/hglift_shard_" + Name;
}

void writeBinary(const corpus::BuiltBinary &BB, const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary);
  Out.write(reinterpret_cast<const char *>(BB.ElfBytes.data()),
            static_cast<std::streamsize>(BB.ElfBytes.size()));
}

/// The corpus every test shares: a mix of clean lifts and one binary the
/// analysis rejects, so exit-code aggregation is exercised too.
std::vector<std::string> corpusOnDisk() {
  static std::vector<std::string> Paths = [] {
    std::vector<std::string> P;
    auto Put = [&](const char *Name,
                   std::optional<corpus::BuiltBinary> BB) {
      if (!BB)
        return;
      std::string Path = tmpPath(std::string(Name) + ".elf");
      writeBinary(*BB, Path);
      P.push_back(Path);
    };
    Put("callchain", corpus::callChainBinary());
    Put("jt", corpus::jumpTableBinary());
    Put("branch", corpus::branchLoopBinary());
    Put("overflow", corpus::overflowBinary());
    return P;
  }();
  return Paths;
}

shard::ShardOptions baseOptions(const std::string &CacheDir,
                                unsigned Shards) {
  shard::ShardOptions O;
  O.Binaries = corpusOnDisk();
  O.Shards = Shards;
  O.CacheDir = CacheDir;
  O.Check = true;
  O.WorkerExe = HGLIFT_BIN;
  return O;
}

shard::ShardResult runFresh(const std::string &Tag, unsigned Shards) {
  std::string Dir = tmpPath("cache_" + Tag);
  fs::remove_all(Dir);
  return shard::runShards(baseOptions(Dir, Shards));
}

TEST(ShardPlan, RoundRobinDeterministicAndBalanced) {
  auto Plan = shard::planShards(10, 3);
  ASSERT_EQ(Plan.size(), 3u);
  EXPECT_EQ(Plan[0], (std::vector<size_t>{0, 3, 6, 9}));
  EXPECT_EQ(Plan[1], (std::vector<size_t>{1, 4, 7}));
  EXPECT_EQ(Plan[2], (std::vector<size_t>{2, 5, 8}));

  // Every index appears exactly once, slices are balanced to within one,
  // and more shards than binaries leaves the tail empty, never crashes.
  auto Wide = shard::planShards(2, 5);
  ASSERT_EQ(Wide.size(), 5u);
  size_t Total = 0;
  for (const auto &Slice : Wide)
    Total += Slice.size();
  EXPECT_EQ(Total, 2u);
  EXPECT_TRUE(Wide[3].empty());
  EXPECT_TRUE(shard::planShards(0, 4) ==
              std::vector<std::vector<size_t>>(4));
  // Shards == 0 is clamped to one slice holding everything.
  auto One = shard::planShards(7, 0);
  ASSERT_EQ(One.size(), 1u);
  EXPECT_EQ(One[0].size(), 7u);
}

TEST(ShardMerge, SerialOneAndManyShardsAreByteIdentical) {
  shard::ShardResult Serial = runFresh("serial", 1);
  ASSERT_TRUE(Serial.Ok) << Serial.Error;
  EXPECT_EQ(Serial.WorkersSpawned, 0u) << "serial mode runs in-process";
  EXPECT_FALSE(Serial.MergedReport.empty());
  // The corpus contains a rejected binary: aggregate exit must say so.
  EXPECT_EQ(Serial.Exit, 1);

  for (unsigned N : {2u, 4u}) {
    shard::ShardResult R = runFresh("n" + std::to_string(N), N);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_GE(R.WorkersSpawned, std::min<size_t>(N, corpusOnDisk().size()));
    EXPECT_EQ(R.WorkersCrashed, 0u);
    EXPECT_EQ(R.Exit, Serial.Exit);
    EXPECT_EQ(R.MergedReport, Serial.MergedReport)
        << N << "-shard merge differs from the serial run";
  }
}

TEST(ShardMerge, KilledWorkerIsRetriedWithUnaffectedReport) {
  shard::ShardResult Clean = runFresh("clean", 3);
  ASSERT_TRUE(Clean.Ok) << Clean.Error;

  // Shard 1's first attempt kills itself before lifting (the hook the
  // parent plants only in that child's environment); the retry must run
  // clean and the merged bytes must not betray that anything happened.
  ::setenv("HGLIFT_SHARD_TEST_CRASH", "1", 1);
  shard::ShardResult Crashed = runFresh("crashed", 3);
  ::unsetenv("HGLIFT_SHARD_TEST_CRASH");

  ASSERT_TRUE(Crashed.Ok) << Crashed.Error;
  EXPECT_EQ(Crashed.WorkersCrashed, 1u);
  EXPECT_EQ(Crashed.WorkersRetried, 1u);
  EXPECT_EQ(Crashed.Exit, Clean.Exit);
  EXPECT_EQ(Crashed.MergedReport, Clean.MergedReport);
}

TEST(ShardMerge, MidClaimCrashRequeuesUnitWithUnaffectedReport) {
  shard::ShardResult Clean = runFresh("mc_clean", 3);
  ASSERT_TRUE(Clean.Ok) << Clean.Error;

  // Worker 1's first spawn claims a unit and dies before executing it —
  // the claimed-but-unfinished unit must go back to the queue, someone
  // must lift it, and the merged bytes must not change.
  ::setenv("HGLIFT_SHARD_TEST_CRASH_MIDCLAIM", "1", 1);
  shard::ShardResult Crashed = runFresh("mc_crashed", 3);
  ::unsetenv("HGLIFT_SHARD_TEST_CRASH_MIDCLAIM");

  ASSERT_TRUE(Crashed.Ok) << Crashed.Error;
  EXPECT_EQ(Crashed.WorkersCrashed, 1u);
  EXPECT_EQ(Crashed.WorkersRetried, 1u);
  EXPECT_GE(Crashed.Sched.Requeues, 1u)
      << "the claimed unit was never returned to the queue";
  EXPECT_EQ(Crashed.Exit, Clean.Exit);
  EXPECT_EQ(Crashed.MergedReport, Clean.MergedReport);
}

TEST(ShardSched, AutoShardsResolveAndStayByteIdentical) {
  // The probe itself: at least one worker, never more than the units.
  unsigned Auto = shard::resolveAutoShards(3);
  EXPECT_GE(Auto, 1u);
  EXPECT_LE(Auto, 3u);

  shard::ShardResult Serial = runFresh("auto_serial", 1);
  ASSERT_TRUE(Serial.Ok) << Serial.Error;

  std::string Dir = tmpPath("cache_auto");
  fs::remove_all(Dir);
  shard::ShardOptions O = baseOptions(Dir, 1);
  O.AutoShards = true;
  shard::ShardResult R = shard::runShards(O);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GE(R.ShardsResolved, 1u);
  EXPECT_LE(R.ShardsResolved, corpusOnDisk().size());
  EXPECT_EQ(R.Exit, Serial.Exit);
  EXPECT_EQ(R.MergedReport, Serial.MergedReport);
}

TEST(ShardSched, StaticAblationStealsNothingAndMatchesBytes) {
  shard::ShardResult Serial = runFresh("ab_serial", 1);
  ASSERT_TRUE(Serial.Ok) << Serial.Error;

  std::string Dir = tmpPath("cache_ablation");
  fs::remove_all(Dir);
  shard::ShardOptions O = baseOptions(Dir, 2);
  O.WorkStealing = false;
  shard::ShardResult R = shard::runShards(O);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Sched.Steals, 0u)
      << "--no-work-stealing granted outside the round-robin plan";
  EXPECT_EQ(R.Sched.Claims, R.Sched.UnitsTotal);
  EXPECT_EQ(R.MergedReport, Serial.MergedReport);
}

TEST(ShardSched, FunctionGranularityPrewarmsAndMatchesBytes) {
  // A symbol-rich shared object: enough exports that function granularity
  // actually splits it into prewarm chunks.
  corpus::GenOptions G;
  G.Seed = 11;
  G.NumFuncs = 9;
  G.TargetInstrs = 18;
  G.JumpTablePct = 0;
  G.ExternalPct = 0;
  G.Name = "shardlib";
  auto Lib = corpus::randomLibrary(G);
  ASSERT_TRUE(Lib.has_value());
  std::string LibPath = tmpPath("shardlib.so");
  writeBinary(*Lib, LibPath);

  auto MakeOpts = [&](const std::string &Tag, unsigned Shards) {
    std::string Dir = tmpPath("cache_fg_" + Tag);
    fs::remove_all(Dir);
    shard::ShardOptions O;
    O.Binaries = {LibPath};
    O.Shards = Shards;
    O.CacheDir = Dir;
    O.Check = true;
    O.Library = true;
    O.WorkerExe = HGLIFT_BIN;
    return O;
  };

  shard::ShardResult Serial = shard::runShards(MakeOpts("serial", 1));
  ASSERT_TRUE(Serial.Ok) << Serial.Error;

  for (unsigned N : {1u, 2u}) {
    shard::ShardOptions O = MakeOpts("n" + std::to_string(N), N);
    O.Granularity = shard::StealGranularity::Function;
    O.PrewarmChunk = 3;
    shard::ShardResult R = shard::runShards(O);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_GE(R.Sched.UnitsPrewarm, 2u)
        << "library was not split into prewarm chunks";
    EXPECT_EQ(R.Exit, Serial.Exit);
    EXPECT_EQ(R.MergedReport, Serial.MergedReport)
        << "function granularity perturbed the report (N=" << N << ")";
  }
}

TEST(ShardSched, LedgerWarmsAcrossRunsWithoutPerturbingBytes) {
  std::string Dir = tmpPath("cache_ledger");
  fs::remove_all(Dir);

  shard::ShardOptions O = baseOptions(Dir, 1);
  O.Progress = true; // progress writes stderr only; bytes must not move
  shard::ShardResult Cold = shard::runShards(O);
  ASSERT_TRUE(Cold.Ok) << Cold.Error;
  EXPECT_EQ(Cold.Sched.LedgerHits, 0u);
  // Every readable binary's observed seconds get persisted.
  EXPECT_GE(Cold.Sched.LedgerRecords, 3u);

  shard::ShardResult Warm = shard::runShards(O);
  ASSERT_TRUE(Warm.Ok) << Warm.Error;
  EXPECT_GE(Warm.Sched.LedgerHits, 3u)
      << "second run did not schedule from recorded costs";
  EXPECT_EQ(Warm.MergedReport, Cold.MergedReport);

  // A trashed ledger is a cold ledger, never an error: scribble over
  // every record and the run must fall back to the heuristic with the
  // same bytes.
  size_t Scribbled = 0;
  for (auto &E : fs::directory_iterator(Dir + "/ledger")) {
    std::ofstream(E.path(), std::ios::trunc) << "hgcost 1 garbage";
    ++Scribbled;
  }
  ASSERT_GT(Scribbled, 0u);
  shard::ShardResult Corrupt = shard::runShards(O);
  ASSERT_TRUE(Corrupt.Ok) << Corrupt.Error;
  EXPECT_EQ(Corrupt.Sched.LedgerHits, 0u)
      << "corrupt ledger records were trusted";
  EXPECT_EQ(Corrupt.MergedReport, Cold.MergedReport);
}

TEST(ShardCache, PoisonedEntryDegradesToCleanMissAcrossProcesses) {
  std::string Dir = tmpPath("cache_poison");
  fs::remove_all(Dir);
  shard::ShardResult Cold = shard::runShards(baseOptions(Dir, 2));
  ASSERT_TRUE(Cold.Ok) << Cold.Error;

  // Corrupt every stored function object: truncate to half. The store's
  // checksum must reject them in whichever worker process reads them, and
  // the warm re-run must silently re-lift — identical report, no crash.
  size_t Poisoned = 0;
  for (auto &E : fs::directory_iterator(Dir + "/objects")) {
    std::ifstream In(E.path(), std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    In.close();
    ASSERT_GT(Bytes.size(), 16u);
    std::ofstream Out(E.path(), std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(),
              static_cast<std::streamsize>(Bytes.size() / 2));
    ++Poisoned;
  }
  ASSERT_GT(Poisoned, 0u);

  shard::ShardResult Warm = shard::runShards(baseOptions(Dir, 2));
  ASSERT_TRUE(Warm.Ok) << Warm.Error;
  EXPECT_EQ(Warm.Exit, Cold.Exit);
  EXPECT_EQ(Warm.MergedReport, Cold.MergedReport);
}

TEST(ShardErrors, UsageAndIoFailuresAreReportedNotHung) {
  shard::ShardOptions NoCache = baseOptions("", 2);
  NoCache.CacheDir.clear();
  shard::ShardResult R = shard::runShards(NoCache);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Exit, 2);

  shard::ShardOptions Empty = baseOptions(tmpPath("cache_empty"), 2);
  Empty.Binaries.clear();
  R = shard::runShards(Empty);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Exit, 2);

  // An unreadable input is a per-binary rejection, not a crash: the run
  // completes with a synthetic "unreadable" fragment and exit 1.
  std::string Garbage = tmpPath("garbage.bin");
  std::ofstream(Garbage) << "this is not an elf";
  shard::ShardOptions WithGarbage = baseOptions(tmpPath("cache_garbage"), 2);
  fs::remove_all(tmpPath("cache_garbage"));
  WithGarbage.Binaries.push_back(Garbage);
  R = shard::runShards(WithGarbage);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Exit, 1);
  EXPECT_NE(R.MergedReport.find("\"outcome\": \"unreadable\""),
            std::string::npos);
}

} // namespace
