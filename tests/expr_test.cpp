//===- expr_test.cpp - Expression interning, simplifier, linearizer ------===//

#include "expr/Eval.h"
#include "expr/ExprContext.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <map>

using namespace hglift;
using expr::Expr;
using expr::ExprContext;
using expr::Opcode;
using expr::VarClass;

namespace {

TEST(Expr, InterningSharesNodes) {
  ExprContext Ctx;
  const Expr *A = Ctx.mkConst(42, 64);
  const Expr *B = Ctx.mkConst(42, 64);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, Ctx.mkConst(42, 32)) << "width distinguishes constants";

  const Expr *X = Ctx.mkVar(VarClass::InitReg, "rdi0");
  const Expr *S1 = Ctx.mkAdd(X, A);
  const Expr *S2 = Ctx.mkAdd(X, B);
  EXPECT_EQ(S1, S2);
}

TEST(Expr, ConstFolding) {
  ExprContext Ctx;
  auto C = [&](uint64_t V) { return Ctx.mkConst(V, 64); };
  EXPECT_EQ(Ctx.mkAdd(C(2), C(3)), C(5));
  EXPECT_EQ(Ctx.mkSub(C(2), C(3)), C(static_cast<uint64_t>(-1)));
  EXPECT_EQ(Ctx.mkBin(Opcode::Mul, C(7), C(6)), C(42));
  EXPECT_EQ(Ctx.mkBin(Opcode::UDiv, C(42), C(5)), C(8));
  EXPECT_EQ(Ctx.mkBin(Opcode::And, C(0xf0), C(0x3c)), C(0x30));
  // Division by zero does not fold (and does not crash).
  const Expr *D = Ctx.mkBin(Opcode::UDiv, C(1), C(0));
  EXPECT_TRUE(D->isOp());
}

TEST(Expr, AdditiveNormalForm) {
  ExprContext Ctx;
  const Expr *X = Ctx.mkVar(VarClass::StackBase, "rsp0");
  // ((x + 8) - 24) + 4  ->  x - 12
  const Expr *E = Ctx.mkAddK(Ctx.mkAddK(Ctx.mkAddK(X, 8), -24), 4);
  expr::LinearForm LF = expr::linearize(E);
  ASSERT_EQ(LF.Terms.size(), 1u);
  EXPECT_EQ(LF.Terms[0].first, 1);
  EXPECT_EQ(LF.Terms[0].second, X);
  EXPECT_EQ(LF.Constant, -12);
  // And the expression itself is in `x + k` shape.
  ASSERT_TRUE(E->isOp());
  EXPECT_EQ(E->opcode(), Opcode::Add);
  EXPECT_EQ(E->operand(0), X);
}

TEST(Expr, SubToAddCanonicalization) {
  ExprContext Ctx;
  const Expr *X = Ctx.mkVar(VarClass::InitReg, "rax0");
  const Expr *E = Ctx.mkSub(X, Ctx.mkConst(8, 64));
  // x - 8 == x + (-8); both spellings intern identically.
  EXPECT_EQ(E, Ctx.mkAddK(X, -8));
  EXPECT_EQ(Ctx.mkSub(X, X), Ctx.mkConst(0, 64));
}

TEST(Expr, WidthChanging) {
  ExprContext Ctx;
  const Expr *X = Ctx.mkVar(VarClass::InitReg, "rax0", 64);
  const Expr *T = Ctx.mkTrunc(X, 32);
  EXPECT_EQ(T->width(), 32);
  EXPECT_EQ(Ctx.mkTrunc(Ctx.mkZExt(T, 64), 32), T)
      << "trunc(zext(x)) == x at matching width";
  EXPECT_EQ(Ctx.mkZExt(X, 64), X) << "zext to same width is identity";
  EXPECT_EQ(Ctx.mkConst(0xffffffffcafe0000ull, 32)->constVal(), 0xcafe0000u);
}

TEST(Expr, LinearizeScaledIndex) {
  ExprContext Ctx;
  const Expr *B = Ctx.mkVar(VarClass::StackBase, "rsp0");
  const Expr *I = Ctx.mkVar(VarClass::InitReg, "rdi0");
  // rsp0 + 4*rdi0 - 24 via shl: (rdi0 << 2) normalizes to rdi0 * 4.
  const Expr *Scaled =
      Ctx.mkBin(Opcode::Shl, I, Ctx.mkConst(2, 64));
  const Expr *E = Ctx.mkAddK(Ctx.mkAdd(B, Scaled), -24);
  expr::LinearForm LF = expr::linearize(E);
  ASSERT_EQ(LF.Terms.size(), 2u);
  EXPECT_EQ(LF.Constant, -24);
  std::map<const Expr *, int64_t> Coeffs;
  for (auto &[C, A] : LF.Terms)
    Coeffs[A] = C;
  EXPECT_EQ(Coeffs[B], 1);
  EXPECT_EQ(Coeffs[I], 4);
}

TEST(Expr, TreeSizeAndFreshness) {
  ExprContext Ctx;
  const Expr *F = Ctx.mkFresh("tmp");
  EXPECT_TRUE(F->hasFreshLeaf());
  const Expr *G = Ctx.mkFresh("tmp");
  EXPECT_NE(F, G) << "each mkFresh is a distinct variable";
  const Expr *X = Ctx.mkVar(VarClass::InitReg, "rbx0");
  EXPECT_FALSE(X->hasFreshLeaf());
  EXPECT_TRUE(Ctx.mkAdd(X, F)->hasFreshLeaf());
  EXPECT_GT(Ctx.mkAdd(X, F)->treeSize(), X->treeSize());
}

// --- property: every simplification is semantics-preserving --------------

struct RandomExprGen {
  ExprContext &Ctx;
  Rng &R;
  std::vector<const Expr *> Leaves;

  const Expr *gen(unsigned Depth) {
    if (Depth == 0 || R.chance(1, 4)) {
      if (R.chance(1, 2))
        return Ctx.mkConst(R.next() & 0xffff, 64);
      return R.pick(Leaves);
    }
    static const Opcode Bins[] = {Opcode::Add,  Opcode::Sub,  Opcode::Mul,
                                  Opcode::And,  Opcode::Or,   Opcode::Xor,
                                  Opcode::Shl,  Opcode::LShr, Opcode::AShr,
                                  Opcode::UDiv, Opcode::URem};
    Opcode Op = Bins[R.below(std::size(Bins))];
    return Ctx.mkOp(Op, {gen(Depth - 1), gen(Depth - 1)}, 64);
  }
};

TEST(ExprProperty, SimplifierSoundVsConcreteEval) {
  ExprContext Ctx;
  Rng R(0x51a9);
  std::vector<const Expr *> Leaves;
  for (int I = 0; I < 4; ++I)
    Leaves.push_back(
        Ctx.mkVar(VarClass::InitReg, "v" + std::to_string(I)));
  RandomExprGen Gen{Ctx, R, Leaves};

  for (int Iter = 0; Iter < 3000; ++Iter) {
    // Build the same random tree twice: once through the simplifying
    // factories, once evaluating operand values concretely alongside.
    const Expr *E = Gen.gen(4);
    uint64_t Vals[4];
    for (auto &V : Vals)
      V = R.next();
    auto Valuation = [&](uint32_t Id) {
      const std::string &N = Ctx.varInfo(Id).Name;
      return Vals[N[1] - '0'];
    };
    auto V1 = expr::evalExpr(E, Valuation);
    if (!V1)
      continue; // division by zero somewhere: undefined, nothing to check
    // Re-evaluating must be deterministic.
    auto V2 = expr::evalExpr(E, Valuation);
    ASSERT_TRUE(V2.has_value());
    EXPECT_EQ(*V1, *V2);
  }
}

TEST(ExprProperty, LinearizeAgreesWithEval) {
  ExprContext Ctx;
  Rng R(0x11ea);
  std::vector<const Expr *> Leaves;
  for (int I = 0; I < 4; ++I)
    Leaves.push_back(
        Ctx.mkVar(VarClass::InitReg, "v" + std::to_string(I)));

  for (int Iter = 0; Iter < 2000; ++Iter) {
    // Random linear combination built from adds/subs/muls-by-const.
    const Expr *E = Ctx.mkConst(static_cast<uint64_t>(R.range(-50, 50)), 64);
    for (int T = 0; T < 4; ++T) {
      const Expr *Term = R.pick(Leaves);
      int64_t K = R.range(-8, 8);
      Term = Ctx.mkBin(Opcode::Mul, Term,
                       Ctx.mkConst(static_cast<uint64_t>(K), 64));
      E = R.chance(1, 2) ? Ctx.mkAdd(E, Term) : Ctx.mkSub(E, Term);
    }
    expr::LinearForm LF = expr::linearize(E);

    uint64_t Vals[4];
    for (auto &V : Vals)
      V = R.next();
    auto Valuation = [&](uint32_t Id) {
      return Vals[Ctx.varInfo(Id).Name[1] - '0'];
    };
    // Reconstruct from the linear form.
    uint64_t Recon = static_cast<uint64_t>(LF.Constant);
    for (auto &[C, A] : LF.Terms)
      Recon += static_cast<uint64_t>(C) * *expr::evalExpr(A, Valuation);
    EXPECT_EQ(Recon, *expr::evalExpr(E, Valuation));
  }
}

TEST(ExprProperty, DerefEvaluatesThroughOracle) {
  ExprContext Ctx;
  const Expr *A = Ctx.mkVar(VarClass::StackBase, "rsp0");
  const Expr *D = Ctx.mkDeref(Ctx.mkAddK(A, 16), 4);
  auto Vars = [](uint32_t) { return uint64_t(0x1000); };
  auto Mem = [](uint64_t Addr, uint32_t Size) -> uint64_t {
    EXPECT_EQ(Addr, 0x1010u);
    EXPECT_EQ(Size, 4u);
    return 0x1234567890ull; // oracle may return wide; eval masks
  };
  auto V = expr::evalExpr(D, Vars, Mem);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 0x34567890u);
}

} // namespace
