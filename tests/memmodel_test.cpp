//===- memmodel_test.cpp - Memory models: ins, destroy, join -------------===//
//
// Covers §3.2:
//   * Figure 2 / Example 3.8: the three-instruction snippet yields exactly
//     the aliasing and non-aliasing forests;
//   * Lemma 3.11 (insertion completeness) as a property over random
//     concrete layouts;
//   * Lemma 3.14 (join soundness) as a property;
//   * Example 3.13 (join of enclosed children);
//   * clobber tracking and the abstraction order.
//
//===----------------------------------------------------------------------===//

#include "memmodel/MemModel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace hglift;
using expr::Expr;
using expr::ExprContext;
using expr::VarClass;
using mem::InsertResult;
using mem::MemModel;
using mem::MemTree;
using mem::UnknownPolicy;
using smt::MemRel;
using smt::Region;

namespace {

struct Fixture {
  ExprContext Ctx;
  smt::RelationSolver Solver{Ctx};
  pred::Pred P{pred::Pred::entry(Ctx)};

  const Expr *Rdi0 = Ctx.mkVar(VarClass::InitReg, "rdi0");
  const Expr *Rsi0 = Ctx.mkVar(VarClass::InitReg, "rsi0");

  std::vector<InsertResult> ins(const MemModel &M, const Expr *Addr,
                                uint32_t Size) {
    return M.insert(Region{Addr, Size}, P, Solver,
                    UnknownPolicy::BranchAliasOrSep, Ctx);
  }
};

/// Example 3.8: mov [rdi],1000 ; mov [rsi+4],1001 ; mov [rsi],1002 gives
/// the two memory models of Figure 2.
TEST(MemModel, Figure2FromExample38) {
  Fixture F;
  MemModel M0;

  // Insert [rdi0, 8].
  auto R1 = F.ins(M0, F.Rdi0, 8);
  ASSERT_EQ(R1.size(), 1u);
  // Insert [rsi0+4, 4]: unknown vs [rdi0,8] with different sizes: the
  // conservative outcome destroys the rdi tree; to match the paper's
  // narrative we insert [rsi0,8] second instead and the enclosed child
  // third, which is also what the writes' evaluation order produces for
  // the region *relations* (the paper inserts by instruction order; the
  // relation set is the same).
  auto R2 = F.ins(R1[0].Model, F.Rsi0, 8);
  // Unknown relation, same size: aliasing and separation both possible.
  ASSERT_EQ(R2.size(), 2u);

  const MemModel *Aliased = nullptr, *Separate = nullptr;
  for (const InsertResult &IR : R2) {
    if (IR.Model.Forest.size() >= 2 &&
        IR.Model.Forest[0].Node.size() == 1)
      Separate = &IR.Model;
    else
      Aliased = &IR.Model;
    EXPECT_FALSE(IR.Assumptions.empty())
        << "the no-partial-overlap assumption must be recorded";
  }
  ASSERT_NE(Aliased, nullptr);
  ASSERT_NE(Separate, nullptr);

  // Figure 2a: {[rdi0,8],[rsi0,8]} aliasing with child [rsi0+4,4].
  {
    auto R3 = F.ins(*Aliased, F.Ctx.mkAddK(F.Rsi0, 4), 4);
    ASSERT_EQ(R3.size(), 1u);
    const MemModel &M = R3[0].Model;
    // One tree besides the return-address region's.
    const MemTree *T = nullptr;
    for (const MemTree &X : M.Forest)
      if (X.Node.size() == 2)
        T = &X;
    ASSERT_NE(T, nullptr);
    ASSERT_EQ(T->Children.size(), 1u);
    EXPECT_EQ(T->Children[0].Node[0].Size, 4u);
  }
  // Figure 2b: separate, child under [rsi0,8] only.
  {
    auto R3 = F.ins(*Separate, F.Ctx.mkAddK(F.Rsi0, 4), 4);
    ASSERT_EQ(R3.size(), 1u);
    const MemModel &M = R3[0].Model;
    const MemTree *Rsi = nullptr, *Rdi = nullptr;
    for (const MemTree &X : M.Forest) {
      if (X.Node[0].Addr == F.Rsi0)
        Rsi = &X;
      if (X.Node[0].Addr == F.Rdi0)
        Rdi = &X;
    }
    ASSERT_NE(Rsi, nullptr);
    ASSERT_NE(Rdi, nullptr);
    ASSERT_EQ(Rsi->Children.size(), 1u);
    EXPECT_TRUE(Rdi->Children.empty());
  }
}

TEST(MemModel, ConstantOffsetsDecideExactly) {
  Fixture F;
  MemModel M;
  const Expr *Rsp0 = F.P.reg64(x86::Reg::RSP);
  auto R1 = F.ins(M, Rsp0, 8);
  ASSERT_EQ(R1.size(), 1u);
  // [rsp0-8, 8] is necessarily separate: single outcome, two top trees.
  auto R2 = F.ins(R1[0].Model, F.Ctx.mkAddK(Rsp0, -8), 8);
  ASSERT_EQ(R2.size(), 1u);
  EXPECT_EQ(R2[0].Model.Forest.size(), 2u);
  EXPECT_TRUE(R2[0].Assumptions.empty()) << "no assumption for exact facts";
  // [rsp0+4, 4] is enclosed in [rsp0,8]: child.
  auto R3 = F.ins(R2[0].Model, F.Ctx.mkAddK(Rsp0, 4), 4);
  ASSERT_EQ(R3.size(), 1u);
  bool FoundChild = false;
  for (const MemTree &T : R3[0].Model.Forest)
    if (T.Node[0].Addr == Rsp0 && !T.Children.empty())
      FoundChild = true;
  EXPECT_TRUE(FoundChild);
  // Partial overlap [rsp0+4, 8] vs [rsp0,8]: the tree is destroyed.
  auto R4 = F.ins(R2[0].Model, F.Ctx.mkAddK(Rsp0, 4), 8);
  ASSERT_EQ(R4.size(), 1u);
  bool Destroyed = false;
  for (const Region &D : R4[0].Destroyed)
    Destroyed |= D.Addr == Rsp0;
  EXPECT_TRUE(Destroyed);
}

TEST(MemModel, DestroyAlwaysPolicy) {
  Fixture F;
  MemModel M;
  auto R1 = M.insert(Region{F.Rdi0, 8}, F.P, F.Solver,
                     UnknownPolicy::DestroyAlways, F.Ctx);
  ASSERT_EQ(R1.size(), 1u);
  auto R2 = R1[0].Model.insert(Region{F.Rsi0, 8}, F.P, F.Solver,
                               UnknownPolicy::DestroyAlways, F.Ctx);
  ASSERT_EQ(R2.size(), 1u) << "no branching under the ablation policy";
  bool RdiDestroyed = false;
  for (const Region &D : R2[0].Destroyed)
    RdiDestroyed |= D.Addr == F.Rdi0;
  EXPECT_TRUE(RdiDestroyed);
}

TEST(MemModel, Example313_JoinOfChildren) {
  Fixture F;
  const Expr *Rdi4 = F.Ctx.mkAddK(F.Rdi0, 4);
  MemModel M0, M1;
  M0.Forest = {MemTree{{Region{F.Rdi0, 8}},
                       {MemTree{{Region{F.Rdi0, 4}}, {}}}}};
  M1.Forest = {MemTree{{Region{F.Rdi0, 8}},
                       {MemTree{{Region{Rdi4, 4}}, {}}}}};
  MemModel J = MemModel::join(M0, M1);
  ASSERT_EQ(J.Forest.size(), 1u);
  EXPECT_EQ(J.Forest[0].Node[0].Addr, F.Rdi0);
  // Both children appeared only on one side each: the sound join drops
  // them rather than asserting their (true but underivable) separation —
  // see DESIGN.md §5 on the divergence from the literal Definition 3.12.
  EXPECT_TRUE(J.Forest[0].Children.empty() ||
              J.Forest[0].Children.size() == 2);
  // Either way, the join must be an upper bound of both.
  EXPECT_TRUE(MemModel::leq(M0, J));
  EXPECT_TRUE(MemModel::leq(M1, J));
}

TEST(MemModel, ClobberTracking) {
  Fixture F;
  MemModel M;
  Region R{F.Rdi0, 8};
  EXPECT_TRUE(M.provablyUntouched(R, F.P, F.Solver, F.Ctx));
  M.noteWrite(Region{F.Rsi0, 8});
  EXPECT_FALSE(M.provablyUntouched(R, F.P, F.Solver, F.Ctx))
      << "an unknown-relation write spoils untouchedness";
  const Expr *Rsp0 = F.P.reg64(x86::Reg::RSP);
  EXPECT_TRUE(M.provablyUntouched(Region{Rsp0, 8}, F.P, F.Solver, F.Ctx))
      << "stack frame is separate from the arg pointer (assumed)";
  M.HavocGlobals = true;
  EXPECT_TRUE(M.provablyUntouched(Region{Rsp0, 8}, F.P, F.Solver, F.Ctx));
  EXPECT_FALSE(
      M.provablyUntouched(Region{F.Ctx.mkConst(0x500000, 64), 8}, F.P,
                          F.Solver, F.Ctx))
      << "globals are havoced by external calls";
  M.HavocAll = true;
  EXPECT_FALSE(M.provablyUntouched(Region{Rsp0, 8}, F.P, F.Solver, F.Ctx));
}

// --- Lemma 3.11: insertion completeness (property) -------------------------

TEST(MemModelProperty, InsertionCompleteness) {
  // Build random concrete layouts of K pointer variables, insert the
  // corresponding regions in random order, and check that some produced
  // model HOLDS in the concrete state (Definition 3.9 via evalExpr).
  ExprContext Ctx;
  Rng R(0x311);
  pred::Pred P = pred::Pred::entry(Ctx);
  smt::RelationSolver Solver(Ctx);

  const char *Names[] = {"rdi0", "rsi0", "rdx0", "rcx0"};
  std::vector<const Expr *> Vars;
  for (const char *N : Names)
    Vars.push_back(Ctx.mkVar(VarClass::InitReg, N));

  for (int Iter = 0; Iter < 300; ++Iter) {
    // Concrete addresses: either fully aliased, separated, or enclosed.
    uint64_t BaseAddr = 0x10000 + R.below(0x1000) * 16;
    std::vector<uint64_t> Addr(4);
    std::vector<uint32_t> Size(4);
    for (int I = 0; I < 4; ++I) {
      switch (R.below(3)) {
      case 0: // share a base with a previous pointer (alias/enclose)
        if (I > 0) {
          Addr[I] = Addr[R.below(static_cast<uint64_t>(I))];
          Size[I] = 8;
          break;
        }
        [[fallthrough]];
      case 1:
        Addr[I] = BaseAddr + R.below(16) * 32;
        Size[I] = 8;
        break;
      default:
        Addr[I] = BaseAddr + R.below(16) * 32 + (R.below(2) ? 0 : 4);
        Size[I] = 4;
        break;
      }
    }

    auto Valuation = [&](uint32_t Id) -> uint64_t {
      for (int I = 0; I < 4; ++I)
        if (Ctx.varInfo(Id).Name == Names[I])
          return Addr[static_cast<size_t>(I)];
      return 0;
    };
    auto Mem = [](uint64_t, uint32_t) -> uint64_t { return 0; };

    // Insert all four regions, keeping every nondeterministic outcome.
    std::vector<MemModel> Models{MemModel{}};
    for (int I = 0; I < 4; ++I) {
      std::vector<MemModel> Next;
      for (const MemModel &M : Models)
        for (InsertResult &IR :
             M.insert(Region{Vars[static_cast<size_t>(I)],
                             Size[static_cast<size_t>(I)]},
                      P, Solver, UnknownPolicy::BranchAliasOrSep, Ctx))
          Next.push_back(std::move(IR.Model));
      Models = std::move(Next);
    }

    bool Covered = false;
    for (const MemModel &M : Models)
      Covered |= M.holds(Valuation, Mem);
    EXPECT_TRUE(Covered) << "no produced model covers the concrete layout "
                         << "(iter " << Iter << ")";
  }
}

// --- Lemma 3.14: join soundness (property) ----------------------------------

TEST(MemModelProperty, JoinSoundness) {
  ExprContext Ctx;
  Rng R(0x314);
  pred::Pred P = pred::Pred::entry(Ctx);
  smt::RelationSolver Solver(Ctx);

  const Expr *Rsp0 = P.reg64(x86::Reg::RSP);
  const Expr *Rdi0 = Ctx.mkVar(VarClass::InitReg, "rdi0");

  for (int Iter = 0; Iter < 300; ++Iter) {
    // Two models built by random insertions from a shared region pool.
    std::vector<Region> Pool;
    for (int I = 0; I < 5; ++I) {
      const Expr *B = R.chance(1, 2) ? Rsp0 : Rdi0;
      Pool.push_back(
          Region{Ctx.mkAddK(B, R.range(-8, 8) * 8),
                 R.chance(1, 3) ? 4u : 8u});
    }
    auto Build = [&]() {
      MemModel M;
      for (int I = 0; I < 3; ++I) {
        auto Rs = M.insert(R.pick(Pool), P, Solver,
                           UnknownPolicy::BranchAliasOrSep, Ctx);
        if (!Rs.empty())
          M = Rs[R.below(Rs.size())].Model;
      }
      return M;
    };
    MemModel A = Build(), B = Build();
    MemModel J = MemModel::join(A, B);

    // Order-theoretic form of Lemma 3.14: the join abstracts both.
    EXPECT_TRUE(MemModel::leq(A, J)) << "A ⊑ A⊔B (iter " << Iter << ")";
    EXPECT_TRUE(MemModel::leq(B, J)) << "B ⊑ A⊔B (iter " << Iter << ")";

    // Semantic form on a concrete state satisfying A.
    uint64_t RspV = 0x7fff0000, RdiV = R.chance(1, 2) ? 0x7fff0000 : 0x9000;
    auto Valuation = [&](uint32_t Id) -> uint64_t {
      return Ctx.varInfo(Id).Cls == VarClass::StackBase ? RspV : RdiV;
    };
    auto Mem = [](uint64_t, uint32_t) -> uint64_t { return 0; };
    if (A.holds(Valuation, Mem)) {
      EXPECT_TRUE(J.holds(Valuation, Mem))
          << "s ⊢ A ⟹ s ⊢ A⊔B (iter " << Iter << ")";
    }
    if (B.holds(Valuation, Mem)) {
      EXPECT_TRUE(J.holds(Valuation, Mem));
    }
  }
}

TEST(MemModel, LocateFindsPlacement) {
  Fixture F;
  const Expr *Rsp0 = F.P.reg64(x86::Reg::RSP);
  MemModel M;
  M.Forest = {MemTree{{Region{Rsp0, 16}},
                      {MemTree{{Region{F.Ctx.mkAddK(Rsp0, 8), 8}}, {}}}},
              MemTree{{Region{F.Rdi0, 8}}, {}}};
  std::vector<Region> Al, An, De;
  ASSERT_TRUE(M.locate(Region{F.Ctx.mkAddK(Rsp0, 8), 8}, Al, An, De));
  EXPECT_TRUE(Al.empty());
  ASSERT_EQ(An.size(), 1u);
  EXPECT_EQ(An[0].Size, 16u);
  EXPECT_TRUE(De.empty());

  Al.clear();
  An.clear();
  De.clear();
  ASSERT_TRUE(M.locate(Region{Rsp0, 16}, Al, An, De));
  EXPECT_EQ(De.size(), 1u);
  EXPECT_FALSE(M.locate(Region{F.Rsi0, 8}, Al, An, De));
}

} // namespace
