//===- suite_test.cpp - The Table 1 / Table 2 corpus builders ------------===//

#include "corpus/Suites.h"
#include "hg/Lifter.h"

#include <gtest/gtest.h>

using namespace hglift;

namespace {

TEST(Suites, XenSuiteShape) {
  corpus::SuiteOptions Opts;
  Opts.LibraryScale = 100; // tiny, for test speed
  auto Rows = corpus::buildXenSuite(Opts);
  ASSERT_EQ(Rows.size(), 8u);

  // The eight directory rows of Table 1, binaries then libraries.
  EXPECT_EQ(Rows[0].Directory, ".../bin");
  EXPECT_FALSE(Rows[0].IsLibrary);
  EXPECT_EQ(Rows[4].Directory, ".../lib");
  EXPECT_TRUE(Rows[4].IsLibrary);

  // Paper mixes preserved.
  EXPECT_EQ(Rows[0].Paper.Lifted, 12u);
  EXPECT_EQ(Rows[0].Paper.Concurrency, 1u);
  EXPECT_EQ(Rows[1].Paper.Timeout, 1u);
  EXPECT_EQ(Rows[4].Paper.Lifted, 1874u);

  // Scaled mixes: nonzero categories stay nonzero.
  EXPECT_GE(Rows[4].Ours.Lifted, 1u);
  EXPECT_GE(Rows[4].Ours.Unprovable, 1u);
  EXPECT_GE(Rows[4].Ours.Timeout, 1u);
  EXPECT_EQ(Rows[7].Ours.Unprovable, 0u);

  // Every row materialized its binaries.
  for (const corpus::SuiteRow &Row : Rows) {
    EXPECT_FALSE(Row.Binaries.empty()) << Row.Directory;
    for (const corpus::BuiltBinary &BB : Row.Binaries)
      EXPECT_FALSE(BB.Img.Segments.empty()) << Row.Directory;
  }
}

TEST(Suites, XenBinaryRowOutcomesRealize) {
  // Lift one binary row end-to-end and check the outcome mix matches the
  // suite's intent.
  corpus::SuiteOptions Opts;
  Opts.LibraryScale = 100;
  auto Rows = corpus::buildXenSuite(Opts);
  const corpus::SuiteRow &Bin = Rows[0]; // .../bin: 12 + 2 + 1 + 0

  hg::LiftConfig Cfg;
  Cfg.MaxVertices = 3000;
  Cfg.MaxSeconds = 10;
  unsigned Lifted = 0, Unprov = 0, Conc = 0, Tout = 0;
  for (const corpus::BuiltBinary &BB : Bin.Binaries) {
    hg::Lifter L(BB.Img, Cfg);
    switch (L.liftBinary().Outcome) {
    case hg::LiftOutcome::Lifted:
      ++Lifted;
      break;
    case hg::LiftOutcome::UnprovableReturn:
      ++Unprov;
      break;
    case hg::LiftOutcome::Concurrency:
      ++Conc;
      break;
    case hg::LiftOutcome::Timeout:
      ++Tout;
      break;
    }
  }
  EXPECT_EQ(Lifted, Bin.Ours.Lifted);
  EXPECT_EQ(Unprov, Bin.Ours.Unprovable);
  EXPECT_EQ(Conc, Bin.Ours.Concurrency);
  EXPECT_EQ(Tout, Bin.Ours.Timeout);
}

TEST(Suites, CoreutilsSuite) {
  auto Suite = corpus::buildCoreutilsSuite(0xc0de, /*Scale=*/20);
  ASSERT_EQ(Suite.size(), 6u);
  EXPECT_EQ(Suite[0].Name, "hexdump");
  EXPECT_EQ(Suite[2].Name, "wc");
  EXPECT_EQ(Suite[2].PaperIndirections, 0u);
  for (const corpus::Table2Entry &E : Suite) {
    EXPECT_FALSE(E.Binary.Img.Segments.empty());
    hg::LiftConfig Cfg;
    Cfg.MaxVertices = 3000;
    Cfg.MaxSeconds = 15;
    hg::Lifter L(E.Binary.Img, Cfg);
    EXPECT_EQ(L.liftBinary().Outcome, hg::LiftOutcome::Lifted) << E.Name;
  }
}

TEST(Suites, Determinism) {
  // Same seed, same bytes: the corpus must be bit-stable for reproducible
  // benchmarks.
  corpus::SuiteOptions Opts;
  Opts.LibraryScale = 200;
  auto A = corpus::buildXenSuite(Opts);
  auto B = corpus::buildXenSuite(Opts);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    ASSERT_EQ(A[I].Binaries.size(), B[I].Binaries.size());
    for (size_t J = 0; J < A[I].Binaries.size(); ++J)
      EXPECT_EQ(A[I].Binaries[J].ElfBytes, B[I].Binaries[J].ElfBytes);
  }
}

} // namespace
