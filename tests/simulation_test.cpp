//===- simulation_test.cpp - Simulation soundness (Theorem 4.7) ----------===//
//
// Theorem 4.7: every reachable concrete transition s →B s' is covered by a
// Hoare-Graph edge. We test the control-flow projection of that statement:
// run corpus binaries concretely on many random inputs and check every
// executed (address, next-address) pair against the extracted graph —
// either an edge to the next address exists, or the transition is a call
// into a separately lifted function / a return covered by a Ret edge, or
// the source vertex carries an unsoundness annotation (which is exactly
// the disclaimer the paper's algorithm emits).
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "hg/Lifter.h"
#include "semantics/Machine.h"
#include "support/Format.h"

#include <gtest/gtest.h>

using namespace hglift;
using sem::CtrlKind;
using sem::Machine;

namespace {

struct CoverageChecker {
  const hg::BinaryResult &R;
  const elf::BinaryImage &Img;

  bool vertexAt(uint64_t Addr) const {
    for (const hg::FunctionResult &F : R.Functions)
      for (const auto &[K, V] : F.Graph.Vertices)
        if (K.Rip == Addr && V.Explored)
          return true;
    return false;
  }

  bool edge(uint64_t From, uint64_t To) const {
    for (const hg::FunctionResult &F : R.Functions)
      for (const hg::Edge &E : F.Graph.Edges)
        if (E.From.Rip == From && E.To.Rip == To)
          return true;
    return false;
  }

  bool annotatedAt(uint64_t From) const {
    for (const hg::FunctionResult &F : R.Functions)
      for (const hg::Edge &E : F.Graph.Edges)
        if (E.From.Rip == From &&
            (E.Kind == CtrlKind::UnresJump || E.Kind == CtrlKind::UnresCall))
          return true;
    return false;
  }

  bool retEdgeAt(uint64_t From) const {
    for (const hg::FunctionResult &F : R.Functions)
      for (const hg::Edge &E : F.Graph.Edges)
        if (E.From.Rip == From && E.To.Rip == hg::RetTargetRip)
          return true;
    return false;
  }

  /// Check one concrete transition.
  bool covers(uint64_t From, uint64_t To) const {
    if (edge(From, To))
      return true;
    size_t Avail;
    const uint8_t *Bytes = Img.bytesAt(From, Avail);
    if (!Bytes)
      return false;
    x86::Instr I = x86::decodeInstr(Bytes, Avail, From);
    if (!I.isValid())
      return false;
    // Calls: concrete control enters the callee, which is lifted as its
    // own unit (context-free, §4.2); external stubs return to the edge's
    // target which `edge` already covered.
    if (I.isCall() && vertexAt(To))
      return true;
    // External call whose stub returned: the concrete successor is the
    // return site, covered by the CallExternal edge (handled above) — or
    // the callee was annotated.
    if (annotatedAt(From))
      return true;
    // Returns / jumps back to a caller: covered by a Ret edge; the return
    // site exists in the calling function.
    if ((I.isRet() || I.isJump()) && retEdgeAt(From))
      return true;
    return false;
  }
};

void checkBinary(const corpus::BuiltBinary &BB, unsigned Runs,
                 uint64_t Seed) {
  hg::LiftConfig Cfg;
  hg::Lifter L(BB.Img, Cfg);
  hg::BinaryResult R = L.liftBinary();
  ASSERT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;

  CoverageChecker CC{R, BB.Img};
  Rng Rand(Seed);
  for (unsigned Run = 0; Run < Runs; ++Run) {
    Machine M(BB.Img, Rand.next());
    M.setupCall(BB.Img.Entry);
    for (unsigned I = 0; I < 6; ++I)
      M.setReg(x86::argReg(I),
               Rand.chance(1, 2) ? Rand.below(256) : Rand.next());
    Machine::Status St = M.run(20000);
    EXPECT_TRUE(St == Machine::Status::Halted ||
                St == Machine::Status::Returned)
        << BB.Name << " run " << Run << " status "
        << static_cast<int>(St) << " rip " << hexStr(M.Rip);

    const auto &Trace = M.trace();
    for (size_t I = 0; I + 1 < Trace.size(); ++I) {
      EXPECT_TRUE(CC.vertexAt(Trace[I]))
          << BB.Name << ": executed " << hexStr(Trace[I])
          << " has no vertex";
      EXPECT_TRUE(CC.covers(Trace[I], Trace[I + 1]))
          << BB.Name << ": transition " << hexStr(Trace[I]) << " -> "
          << hexStr(Trace[I + 1]) << " not covered";
    }
  }
}

TEST(Simulation, Straightline) {
  auto BB = corpus::straightlineBinary();
  ASSERT_TRUE(BB.has_value());
  checkBinary(*BB, 20, 1);
}

TEST(Simulation, BranchLoop) {
  auto BB = corpus::branchLoopBinary();
  ASSERT_TRUE(BB.has_value());
  checkBinary(*BB, 30, 2);
}

TEST(Simulation, JumpTable) {
  auto BB = corpus::jumpTableBinary(10);
  ASSERT_TRUE(BB.has_value());
  checkBinary(*BB, 40, 3);
}

TEST(Simulation, CallChain) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  checkBinary(*BB, 20, 4);
}

TEST(Simulation, WeirdEdgeBothWorlds) {
  // Both the aliasing (ROP) and non-aliasing executions must be covered —
  // the defining property of overapproximative lifting (§2).
  auto BB = corpus::weirdEdgeBinary();
  ASSERT_TRUE(BB.has_value());
  hg::LiftConfig Cfg;
  hg::Lifter L(BB->Img, Cfg);
  hg::BinaryResult R = L.liftBinary();
  ASSERT_EQ(R.Outcome, hg::LiftOutcome::Lifted);
  CoverageChecker CC{R, BB->Img};

  // Find f via _start's call.
  Machine Probe(BB->Img);
  Probe.setupCall(BB->Img.Entry);
  uint64_t F = 0;
  for (int I = 0; I < 10 && F == 0; ++I) {
    size_t Avail;
    const uint8_t *Bytes = BB->Img.bytesAt(Probe.Rip, Avail);
    x86::Instr In = x86::decodeInstr(Bytes, Avail, Probe.Rip);
    bool WasCall = In.isCall();
    ASSERT_EQ(Probe.step(), Machine::Status::Running);
    if (WasCall)
      F = Probe.Rip;
  }

  Rng Rand(5);
  for (int Run = 0; Run < 60; ++Run) {
    Machine M(BB->Img);
    M.setupCall(F);
    M.setReg(x86::Reg::RDI, Rand.below(0x140)); // straddles the 0xc3 bound
    uint64_t P1 = 0x700000, P2 = Rand.chance(1, 2) ? P1 : 0x700100;
    M.setReg(x86::Reg::RSI, P1);
    M.setReg(x86::Reg::RDX, P2);
    ASSERT_EQ(M.run(1000), Machine::Status::Returned);
    const auto &Trace = M.trace();
    for (size_t I = 0; I + 1 < Trace.size(); ++I)
      EXPECT_TRUE(CC.covers(Trace[I], Trace[I + 1]))
          << "aliasing=" << (P1 == P2) << " rdi=" << M.reg(x86::Reg::RDI)
          << ": " << hexStr(Trace[I]) << " -> " << hexStr(Trace[I + 1]);
  }
}

TEST(Simulation, RandomBinaries) {
  Rng Seeds(0x51a);
  for (int B = 0; B < 6; ++B) {
    corpus::GenOptions G;
    G.Seed = Seeds.next();
    G.NumFuncs = 3;
    G.TargetInstrs = 50;
    G.JumpTablePct = 40;
    G.Name = "sim_rand_" + std::to_string(B);
    auto BB = corpus::randomBinary(G);
    ASSERT_TRUE(BB.has_value());
    checkBinary(*BB, 10, Seeds.next());
  }
}

TEST(Simulation, Ret2winHonestMemset) {
  // With a well-behaved memset (the obligation holds) every run is
  // covered; exploit_hunt.cpp demonstrates the violated-obligation case.
  auto BB = corpus::ret2winBinary();
  ASSERT_TRUE(BB.has_value());
  checkBinary(*BB, 10, 7);
}


TEST(Simulation, OverlappingInstructions) {
  auto BB = corpus::overlappingBinary();
  ASSERT_TRUE(BB.has_value());
  checkBinary(*BB, 20, 11);
}

TEST(Simulation, Recursion) {
  auto BB = corpus::recursionBinary();
  ASSERT_TRUE(BB.has_value());
  checkBinary(*BB, 15, 12);
}

} // namespace
