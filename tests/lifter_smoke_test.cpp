//===- lifter_smoke_test.cpp - End-to-end pipeline smoke tests -----------===//
//
// Early sanity: corpus binaries build, parse, lift, and produce the
// expected outcomes. Detailed per-module behaviour is covered elsewhere.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "hg/Lifter.h"
#include "semantics/Machine.h"

#include <gtest/gtest.h>

using namespace hglift;

namespace {

hg::BinaryResult liftIt(const corpus::BuiltBinary &BB) {
  hg::LiftConfig Cfg;
  hg::Lifter L(BB.Img, Cfg);
  return L.liftBinary();
}

TEST(LifterSmoke, Straightline) {
  auto BB = corpus::straightlineBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_GT(R.totalInstructions(), 5u);
}

TEST(LifterSmoke, BranchLoop) {
  auto BB = corpus::branchLoopBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
}

TEST(LifterSmoke, JumpTable) {
  auto BB = corpus::jumpTableBinary(8);
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_GE(R.totalA(), 1u) << "the jump-table site should be resolved";
  EXPECT_EQ(R.totalB(), 0u);
  // One edge per distinct read table value (§2): the indirect jmp vertex
  // must have all 8 case targets.
  size_t CaseEdges = 0;
  for (const hg::FunctionResult &F : R.Functions)
    for (const hg::Edge &E : F.Graph.Edges)
      if (E.Instr.isJump() && !E.Instr.Ops[0].isImm() &&
          E.To.Rip != hg::UnresolvedTargetRip)
        ++CaseEdges;
  EXPECT_GE(CaseEdges, 8u);
}

TEST(LifterSmoke, CallChain) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_GE(R.Functions.size(), 4u); // _start, f, g, h
}

TEST(LifterSmoke, WeirdEdgeFound) {
  auto BB = corpus::weirdEdgeBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  bool AnyWeird = false;
  for (const hg::FunctionResult &F : R.Functions)
    AnyWeird |= !F.Graph.weirdEdges().empty();
  EXPECT_TRUE(AnyWeird) << "the §2 ROP edge must appear in the HG";
}

TEST(LifterSmoke, WeirdEdgeConcreteAliasRun) {
  // The emulator proves the weird path is real: with rsi == rdx the hidden
  // ret executes.
  auto BB = corpus::weirdEdgeBinary();
  ASSERT_TRUE(BB.has_value());
  uint64_t F = 0;
  // _start sets up arguments and calls f; step until the call executes,
  // after which rip is f's entry.
  sem::Machine Probe(BB->Img);
  Probe.setupCall(BB->Img.Entry);
  for (int I = 0; I < 10 && F == 0; ++I) {
    size_t Avail;
    const uint8_t *Bytes = BB->Img.bytesAt(Probe.Rip, Avail);
    ASSERT_NE(Bytes, nullptr);
    x86::Instr In = x86::decodeInstr(Bytes, Avail, Probe.Rip);
    bool WasCall = In.isCall();
    ASSERT_EQ(Probe.step(), sem::Machine::Status::Running);
    if (WasCall)
      F = Probe.Rip;
  }
  ASSERT_NE(F, 0u);

  sem::Machine M(BB->Img);
  M.setupCall(F);
  M.setReg(x86::Reg::RDI, 3);        // index <= 0xc3
  M.setReg(x86::Reg::RSI, 0x700000); // aliasing pointers
  M.setReg(x86::Reg::RDX, 0x700000);
  auto St = M.run(1000);
  EXPECT_EQ(St, sem::Machine::Status::Returned);
  // The trace must contain the mid-instruction ret byte address (f + 2).
  bool SawRop = false;
  for (uint64_t A : M.trace())
    SawRop |= (A == F + 2);
  EXPECT_TRUE(SawRop) << "aliasing run must execute the hidden ret";
}

TEST(LifterSmoke, OverflowRejected) {
  auto BB = corpus::overflowBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::UnprovableReturn);
}

TEST(LifterSmoke, StackProbeRejected) {
  auto BB = corpus::stackProbeBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::UnprovableReturn);
}

TEST(LifterSmoke, NonstandardRspRejected) {
  auto BB = corpus::nonstandardRspBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::UnprovableReturn);
}

TEST(LifterSmoke, ConcurrencyOutOfScope) {
  auto BB = corpus::concurrencyBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Concurrency);
}

TEST(LifterSmoke, Ret2winObligation) {
  auto BB = corpus::ret2winBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  bool Found = false;
  for (const std::string &O : R.allObligations())
    Found |= O.find("memset") != std::string::npos &&
             O.find("MUST PRESERVE") != std::string::npos;
  EXPECT_TRUE(Found) << "the memset MUST PRESERVE obligation must appear";
}

TEST(LifterSmoke, CallbackAnnotated) {
  auto BB = corpus::callbackBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_GE(R.totalC(), 1u) << "mutable-global callback: unresolved call";
  EXPECT_GE(R.totalA(), 1u) << "rodata callback: resolved indirection";
}

TEST(LifterSmoke, RandomBinariesLift) {
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    corpus::GenOptions Opts;
    Opts.Seed = Seed;
    Opts.NumFuncs = 3;
    Opts.TargetInstrs = 40;
    auto BB = corpus::randomBinary(Opts);
    ASSERT_TRUE(BB.has_value()) << "seed " << Seed;
    hg::BinaryResult R = liftIt(*BB);
    EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted)
        << "seed " << Seed << ": " << R.FailReason;
  }
}

TEST(LifterSmoke, ExplodingTimesOut) {
  auto BB = corpus::explodingBinary(14);
  ASSERT_TRUE(BB.has_value());
  hg::LiftConfig Cfg;
  Cfg.MaxVertices = 2000;
  Cfg.MaxSeconds = 10.0;
  hg::Lifter L(BB->Img, Cfg);
  hg::BinaryResult R = L.liftBinary();
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Timeout);
}


TEST(LifterSmoke, OverlappingInstructions) {
  // A direct jump into the middle of a movabs: both decodings must appear
  // in the HG and the edge is flagged weird; the emulator executes both.
  auto BB = corpus::overlappingBinary();
  ASSERT_TRUE(BB.has_value());
  hg::BinaryResult R = liftIt(*BB);
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  bool AnyWeird = false;
  for (const hg::FunctionResult &F : R.Functions)
    AnyWeird |= !F.Graph.weirdEdges().empty();
  EXPECT_TRUE(AnyWeird);

  // Concrete: find f (call target), run both paths.
  sem::Machine Probe(BB->Img);
  Probe.setupCall(BB->Img.Entry);
  uint64_t F = 0;
  for (int I = 0; I < 10 && F == 0; ++I) {
    size_t Avail;
    const uint8_t *Bytes = BB->Img.bytesAt(Probe.Rip, Avail);
    x86::Instr In = x86::decodeInstr(Bytes, Avail, Probe.Rip);
    bool WasCall = In.isCall();
    ASSERT_EQ(Probe.step(), sem::Machine::Status::Running);
    if (WasCall)
      F = Probe.Rip;
  }
  for (uint64_t Rdi : {uint64_t(0), uint64_t(7)}) {
    sem::Machine M(BB->Img);
    M.setupCall(F);
    M.setReg(x86::Reg::RDI, Rdi);
    ASSERT_EQ(M.run(100), sem::Machine::Status::Returned);
    EXPECT_EQ(M.Regs[0] & 0xffffffff, Rdi ? 1u : 0u);
  }
}

} // namespace
