//===- lifter_test.cpp - Algorithm 1 behaviours beyond the smoke tests ---===//

#include "corpus/ProgramBuilder.h"
#include "corpus/Programs.h"
#include "hg/Lifter.h"
#include "semantics/Machine.h"

#include <gtest/gtest.h>

using namespace hglift;
using namespace hglift::x86;
using corpus::ProgramBuilder;

namespace {

TEST(Lifter, LibraryModeLiftsExportedFunctions) {
  corpus::GenOptions G;
  G.Seed = 0x11b;
  G.NumFuncs = 5;
  G.TargetInstrs = 30;
  auto BB = corpus::randomLibrary(G);
  ASSERT_TRUE(BB.has_value());
  ASSERT_EQ(BB->Img.Functions.size(), 5u);
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftLibrary();
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  // Every exported symbol lifted as its own root.
  for (const elf::Symbol &S : BB->Img.Functions) {
    bool Found = false;
    for (const hg::FunctionResult &F : R.Functions)
      Found |= F.Entry == S.Addr;
    EXPECT_TRUE(Found) << S.Name;
  }
}

TEST(Lifter, EachFunctionExploredOnce) {
  // f calls g three times; g appears exactly once in the results
  // (context-free treatment, §4.2: "each function is explored only once").
  ProgramBuilder PB("multi_call");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel(), G = A.newLabel();
  A.bind(F);
  A.subRI(Reg::RSP, 8, 8);
  A.callL(G);
  A.callL(G);
  A.callL(G);
  A.addRI(Reg::RSP, 8, 8);
  A.ret();
  A.bind(G);
  A.leaRM(Reg::RAX, MemOperand{Reg::RDI, Reg::RDI, 1, 0, false}, 8);
  A.ret();
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  ASSERT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  unsigned GCount = 0;
  for (const hg::FunctionResult &FR : R.Functions)
    GCount += FR.Entry == A.labelAddr(G);
  EXPECT_EQ(GCount, 1u);
}

TEST(Lifter, ReturnSymbolSemantics) {
  // The callee starts with S_callee on the stack, not a concrete return
  // address (§4.2.2).
  ProgramBuilder PB("retsym");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel(), G = A.newLabel();
  A.bind(F);
  A.subRI(Reg::RSP, 8, 8);
  A.callL(G);
  A.addRI(Reg::RSP, 8, 8);
  A.ret();
  A.bind(G);
  A.nop();
  A.ret();
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  ASSERT_EQ(R.Outcome, hg::LiftOutcome::Lifted);
  for (const hg::FunctionResult &FR : R.Functions) {
    ASSERT_NE(FR.RetSym, nullptr);
    const expr::VarInfo &VI = FR.ctx().varInfo(FR.RetSym->varId());
    EXPECT_EQ(VI.Cls, expr::VarClass::RetSym);
    EXPECT_EQ(VI.Aux, FR.Entry) << "symbol is keyed by the entry address";
    EXPECT_TRUE(FR.MayReturn);
  }
}

TEST(Lifter, NonReturningCalleePrunesReturnSite) {
  // f calls g; g calls exit. The code after the call to g is unreachable
  // (§4.2.2 reachability) and g must be known not to return.
  ProgramBuilder PB("noreturn");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel(), G = A.newLabel();
  uint64_t Exit = PB.plt("exit");
  A.bind(F);
  A.subRI(Reg::RSP, 8, 8);
  A.callL(G);
  // Return site: would fail verification if explored as reachable code
  // that returns with a broken stack — keep it innocuous but marked.
  A.movRI(Reg::RAX, 0x42, 4);
  A.addRI(Reg::RSP, 8, 8);
  A.ret();
  A.bind(G);
  A.xorRR(Reg::RDI, Reg::RDI, 4);
  A.callAbs(Exit);
  // No ret: exit does not return.
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  ASSERT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  const hg::FunctionResult *GFn = nullptr, *FFn = nullptr;
  for (const hg::FunctionResult &FR : R.Functions) {
    if (FR.Entry == A.labelAddr(G))
      GFn = &FR;
    if (FR.Entry == A.labelAddr(F))
      FFn = &FR;
  }
  ASSERT_NE(GFn, nullptr);
  ASSERT_NE(FFn, nullptr);
  EXPECT_FALSE(GFn->MayReturn);
  EXPECT_FALSE(FFn->MayReturn)
      << "f's only path to ret goes through the non-returning call";
}

TEST(Lifter, CallingConventionViolationRejected) {
  // A function that clobbers rbx without restoring it violates the System
  // V calling convention: lifting must reject it.
  ProgramBuilder PB("clobber_rbx");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel();
  A.bind(F);
  A.movRI(Reg::RBX, 1, 8);
  A.ret();
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::UnprovableReturn);
  EXPECT_NE(R.FailReason.find("calling convention"), std::string::npos)
      << R.FailReason;
}

TEST(Lifter, RetWithImmediatePops) {
  // ret 0x10 (callee-pops) restores rsp0 + 8 + 0x10: still verifiable.
  ProgramBuilder PB("ret_imm");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel();
  A.bind(F);
  A.nop();
  A.byte(0xc2); // ret 0x10
  A.byte(0x10);
  A.byte(0x00);
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
}

TEST(Lifter, JumpToNowhereRejected) {
  // A direct jump outside every executable segment is a verification
  // error, not a crash.
  ProgramBuilder PB("wild_jump");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel();
  A.bind(F);
  A.byte(0xe9); // jmp rel32 to an unmapped address
  A.u32(0x00800000);
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::UnprovableReturn);
}

TEST(Lifter, UndecodableRejected) {
  ProgramBuilder PB("garbage");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel();
  A.bind(F);
  A.byte(0x62); // EVEX prefix: unsupported
  A.byte(0xff);
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::UnprovableReturn);
  EXPECT_NE(R.FailReason.find("undecodable"), std::string::npos);
}

TEST(Lifter, WideningTerminatesSymbolicLoops) {
  // A loop whose trip count is symbolic (bounded by rdi) must still reach
  // a fixpoint through join widening.
  ProgramBuilder PB("symloop");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel(), Loop = A.newLabel(), Done = A.newLabel();
  A.bind(F);
  A.xorRR(Reg::RAX, Reg::RAX, 8);
  A.movRR(Reg::RCX, Reg::RDI, 8);
  A.bind(Loop);
  A.cmpRI(Reg::RCX, 0, 8);
  A.jccL(Cond::E, Done);
  A.addRI(Reg::RAX, 2, 8);
  A.decR(Reg::RCX, 8);
  A.jmpL(Loop);
  A.bind(Done);
  A.ret();
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());
  hg::LiftConfig Cfg;
  Cfg.MaxVertices = 500; // tight: must converge, not burn fuel
  hg::Lifter L(BB->Img, Cfg);
  hg::BinaryResult R = L.liftBinary();
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  EXPECT_LT(R.totalStates(), 60u) << "joining must collapse the loop states";
}

TEST(Lifter, TimeoutRetainsPartialGraph) {
  // Exhausting the vertex fuel must flag Timeout but keep everything built
  // so far: the partial Hoare Graph, its stats, and the annotation counts —
  // a truncated graph is still a sound prefix of the exploration.
  ProgramBuilder PB("fuel");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel();
  A.bind(F);
  for (int I = 0; I < 8; ++I)
    A.nop();
  A.ret();
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());
  hg::LiftConfig Cfg;
  Cfg.MaxVertices = 3; // far fewer than the 9 instructions
  hg::Lifter L(BB->Img, Cfg);
  hg::BinaryResult R = L.liftBinary();
  ASSERT_EQ(R.Outcome, hg::LiftOutcome::Timeout);
  ASSERT_EQ(R.Functions.size(), 1u);
  const hg::FunctionResult &FR = R.Functions[0];
  EXPECT_EQ(FR.Outcome, hg::LiftOutcome::Timeout);
  EXPECT_NE(FR.FailReason.find("partial graph retained"), std::string::npos)
      << FR.FailReason;
  // The partial graph is retained, not dropped.
  EXPECT_GE(FR.Graph.Vertices.size(), Cfg.MaxVertices);
  EXPECT_FALSE(FR.Graph.Edges.empty());
  EXPECT_EQ(FR.Stats.Vertices, FR.Graph.Vertices.size());
  EXPECT_GT(FR.Stats.Steps, 0u);
  // Wall-clock timeouts keep the partial graph too.
  hg::LiftConfig CfgT;
  CfgT.MaxSeconds = 1e-9;
  hg::BinaryResult RT = hg::Lifter(BB->Img, CfgT).liftBinary();
  ASSERT_EQ(RT.Outcome, hg::LiftOutcome::Timeout);
  EXPECT_FALSE(RT.Functions[0].Graph.Vertices.empty());
}

TEST(Lifter, ObligationsDeduplicated) {
  auto BB = corpus::ret2winBinary();
  ASSERT_TRUE(BB.has_value());
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  auto Obls = R.allObligations();
  std::set<std::string> Uniq(Obls.begin(), Obls.end());
  EXPECT_EQ(Obls.size(), Uniq.size());
}

TEST(Lifter, TailCallViaJmpIsReturnEdge) {
  // g ends with `jmp rax` where rax holds the caller's return address
  // pattern is exotic; the common tail call `pop rbp; jmp f` where f is a
  // direct target is the plain case: check a direct tail call works.
  ProgramBuilder PB("tailcall");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel(), G = A.newLabel();
  A.bind(F);
  A.addRI(Reg::RDI, 1, 8);
  A.jmpL(G); // tail call
  A.bind(G);
  A.leaRM(Reg::RAX, MemOperand{Reg::RDI, Reg::None, 1, 5, false}, 8);
  A.ret();
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
}

TEST(Lifter, CtrlImmediateExceptionKeepsStatesApart) {
  // Two paths load different function pointers and meet; with the §4
  // exception the states stay apart and the indirect call resolves on
  // both; without it they join and the call is annotated.
  ProgramBuilder PB("fptr_diamond");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel(), Else = A.newLabel(), Join = A.newLabel();
  Asm::Label CB1 = A.newLabel(), CB2 = A.newLabel();
  A.bind(F);
  A.subRI(Reg::RSP, 8, 8);
  A.testRR(Reg::RDI, Reg::RDI, 8);
  A.jccL(Cond::E, Else);
  A.leaRL(Reg::R10, CB1);
  A.jmpL(Join);
  A.bind(Else);
  A.leaRL(Reg::R10, CB2);
  A.bind(Join);
  A.callR(Reg::R10);
  A.addRI(Reg::RSP, 8, 8);
  A.ret();
  A.bind(CB1);
  A.movRI(Reg::RAX, 1, 4);
  A.ret();
  A.bind(CB2);
  A.movRI(Reg::RAX, 2, 4);
  A.ret();
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());

  {
    hg::LiftConfig Cfg; // exception on (default)
    hg::Lifter L(BB->Img, Cfg);
    hg::BinaryResult R = L.liftBinary();
    EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
    EXPECT_EQ(R.totalC(), 0u) << "both callees resolved";
    EXPECT_GE(R.totalA(), 1u);
  }
  {
    hg::LiftConfig Cfg;
    Cfg.CtrlImmediateException = false; // ablation: join kills the pointers
    hg::Lifter L(BB->Img, Cfg);
    hg::BinaryResult R = L.liftBinary();
    EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
    EXPECT_GE(R.totalC(), 1u)
        << "joined-away immediates leave the call unresolved";
  }
}


TEST(Lifter, RecursionHandledContextFree) {
  // Direct (factorial) and mutual (even/odd) recursion: the context-free
  // treatment explores each function once; the may-return fixpoint settles
  // on "returns" because base cases exist (§4.2).
  auto BB = corpus::recursionBinary();
  ASSERT_TRUE(BB.has_value());
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;

  hg::BinaryResult RL = hg::Lifter(BB->Img, hg::LiftConfig()).liftLibrary();
  EXPECT_EQ(RL.Outcome, hg::LiftOutcome::Lifted) << RL.FailReason;
  for (const hg::FunctionResult &F : RL.Functions)
    EXPECT_TRUE(F.MayReturn);
}

TEST(Lifter, RecursionConcreteAgreesWithLift) {
  auto BB = corpus::recursionBinary();
  ASSERT_TRUE(BB.has_value());
  // fact is an exported symbol: run it concretely.
  uint64_t Fact = 0;
  for (const elf::Symbol &S : BB->Img.Functions)
    if (S.Name == "fact")
      Fact = S.Addr;
  ASSERT_NE(Fact, 0u);
  sem::Machine M(BB->Img);
  M.setupCall(Fact);
  M.setReg(Reg::RDI, 6);
  ASSERT_EQ(M.run(10000), sem::Machine::Status::Returned);
  EXPECT_EQ(M.reg(Reg::RAX), 720u);
}

} // namespace
