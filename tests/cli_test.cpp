//===- cli_test.cpp - End-to-end hglift CLI integration ------------------===//
//
// Exercises the shipped tool the way a user would: write a real ELF file,
// invoke `hglift` with its flags, inspect exit codes and artifacts.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#ifndef HGLIFT_BIN
#error "HGLIFT_BIN must point at the hglift executable"
#endif

using namespace hglift;

namespace {

std::string tmpPath(const std::string &Name) {
  return std::string("/tmp/hglift_cli_") + Name;
}

void writeBinary(const corpus::BuiltBinary &BB, const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary);
  Out.write(reinterpret_cast<const char *>(BB.ElfBytes.data()),
            static_cast<std::streamsize>(BB.ElfBytes.size()));
}

struct RunResult {
  int ExitCode;
  std::string Output;
};

RunResult runCli(const std::string &Args) {
  std::string Cmd = std::string(HGLIFT_BIN) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr);
  std::string Out;
  char Buf[4096];
  while (P && fgets(Buf, sizeof(Buf), P))
    Out += Buf;
  int RC = P ? pclose(P) : -1;
  return RunResult{WEXITSTATUS(RC), Out};
}

TEST(Cli, LiftSucceedsWithCheck) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Path = tmpPath("callchain.elf");
  writeBinary(*BB, Path);

  RunResult R = runCli(Path + " --check");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("outcome: lifted"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("Hoare triples proven"), std::string::npos);
}

TEST(Cli, RejectionExitsNonzero) {
  auto BB = corpus::overflowBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Path = tmpPath("overflow.elf");
  writeBinary(*BB, Path);

  RunResult R = runCli(Path);
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("unprovable-return"), std::string::npos)
      << R.Output;
}

TEST(Cli, ExportsArtifacts) {
  auto BB = corpus::jumpTableBinary(6);
  ASSERT_TRUE(BB.has_value());
  std::string Path = tmpPath("jt.elf");
  writeBinary(*BB, Path);
  std::string Thy = tmpPath("jt.thy"), Dot = tmpPath("jt.dot");
  std::remove(Thy.c_str());
  std::remove(Dot.c_str());

  RunResult R = runCli(Path + " --export-isabelle " + Thy +
                       " --export-dot " + Dot);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;

  std::ifstream ThyIn(Thy);
  ASSERT_TRUE(ThyIn.good());
  std::stringstream ThyS;
  ThyS << ThyIn.rdbuf();
  EXPECT_NE(ThyS.str().find("theory "), std::string::npos);
  EXPECT_NE(ThyS.str().find("lemma "), std::string::npos);

  std::ifstream DotIn(Dot);
  ASSERT_TRUE(DotIn.good());
  std::stringstream DotS;
  DotS << DotIn.rdbuf();
  EXPECT_NE(DotS.str().find("digraph"), std::string::npos);
  EXPECT_NE(DotS.str().find("->"), std::string::npos);
}

TEST(Cli, WeirdEdgeVisibleInDot) {
  auto BB = corpus::weirdEdgeBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Path = tmpPath("weird.elf");
  writeBinary(*BB, Path);
  std::string Dot = tmpPath("weird.dot");

  RunResult R = runCli(Path + " --export-dot " + Dot);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  std::ifstream DotIn(Dot);
  std::stringstream DotS;
  DotS << DotIn.rdbuf();
  EXPECT_NE(DotS.str().find("weird"), std::string::npos)
      << "the §2 ROP edge must be flagged in the graph";
}

// Minimal JSON syntax checker: enough to reject unbalanced or truncated
// output from --stats-json without pulling in a parser dependency.
bool validJson(const std::string &S, size_t &I);

bool skipWs(const std::string &S, size_t &I) {
  while (I < S.size() && std::isspace(static_cast<unsigned char>(S[I])))
    ++I;
  return I < S.size();
}

bool validString(const std::string &S, size_t &I) {
  if (S[I] != '"')
    return false;
  for (++I; I < S.size(); ++I) {
    if (S[I] == '\\')
      ++I;
    else if (S[I] == '"') {
      ++I;
      return true;
    }
  }
  return false;
}

bool validJson(const std::string &S, size_t &I) {
  if (!skipWs(S, I))
    return false;
  char C = S[I];
  if (C == '{' || C == '[') {
    char Close = C == '{' ? '}' : ']';
    ++I;
    if (!skipWs(S, I))
      return false;
    if (S[I] == Close) {
      ++I;
      return true;
    }
    while (true) {
      if (C == '{') {
        if (!skipWs(S, I) || !validString(S, I) || !skipWs(S, I) ||
            S[I] != ':')
          return false;
        ++I;
      }
      if (!validJson(S, I) || !skipWs(S, I))
        return false;
      if (S[I] == ',') {
        ++I;
        continue;
      }
      if (S[I] == Close) {
        ++I;
        return true;
      }
      return false;
    }
  }
  if (C == '"')
    return validString(S, I);
  size_t J = I;
  while (J < S.size() && (std::isalnum(static_cast<unsigned char>(S[J])) ||
                          S[J] == '-' || S[J] == '+' || S[J] == '.'))
    ++J;
  if (J == I)
    return false;
  I = J;
  return true;
}

bool validJsonDoc(const std::string &S) {
  size_t I = 0;
  if (!validJson(S, I))
    return false;
  skipWs(S, I);
  return I == S.size();
}

TEST(Cli, StatsJsonEmitsValidJson) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Path = tmpPath("stats.elf");
  writeBinary(*BB, Path);
  std::string Json = tmpPath("stats.json");
  std::remove(Json.c_str());

  RunResult R = runCli(Path + " --stats-json " + Json);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("wrote lifting stats"), std::string::npos);

  std::ifstream In(Json);
  ASSERT_TRUE(In.good()) << "stats file not written";
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Doc = SS.str();

  EXPECT_TRUE(validJsonDoc(Doc)) << Doc;
  // Per-binary totals and the per-function stat fields must be present.
  for (const char *Key :
       {"\"binary\"", "\"outcome\"", "\"totals\"", "\"functions\"",
        "\"entry\"", "\"vertices\"", "\"joins\"", "\"widenings\"",
        "\"steps\"", "\"solver_queries\"", "\"seconds\""})
    EXPECT_NE(Doc.find(Key), std::string::npos) << "missing " << Key << "\n"
                                                << Doc;
  // callChainBinary has multiple functions: each gets its own record.
  size_t Entries = 0;
  for (size_t P = Doc.find("\"entry\""); P != std::string::npos;
       P = Doc.find("\"entry\"", P + 1))
    ++Entries;
  EXPECT_GE(Entries, 2u);
}

TEST(Cli, ThreadsFlagMatchesSerial) {
  auto BB = corpus::jumpTableBinary(5);
  ASSERT_TRUE(BB.has_value());
  std::string Path = tmpPath("threads.elf");
  writeBinary(*BB, Path);

  RunResult R1 = runCli(Path + " --threads 1");
  RunResult R4 = runCli(Path + " --threads 4");
  EXPECT_EQ(R1.ExitCode, 0) << R1.Output;
  EXPECT_EQ(R4.ExitCode, R1.ExitCode);
  EXPECT_NE(R4.Output.find("outcome: lifted"), std::string::npos)
      << R4.Output;
  // The reports must agree apart from wall-clock timing lines.
  auto Strip = [](const std::string &S) {
    std::stringstream In(S), Out;
    std::string Line;
    while (std::getline(In, Line))
      if (Line.find("seconds") == std::string::npos &&
          Line.find("wall") == std::string::npos)
        Out << Line << "\n";
    return Out.str();
  };
  EXPECT_EQ(Strip(R1.Output), Strip(R4.Output));
}

TEST(Cli, BadFileRejected) {
  std::string Path = tmpPath("garbage.bin");
  std::ofstream(Path) << "this is not an elf";
  RunResult R = runCli(Path);
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("cannot parse"), std::string::npos);
}

TEST(Cli, UnknownFlagUsage) {
  RunResult R = runCli("/dev/null --frobnicate");
  EXPECT_EQ(R.ExitCode, 2);
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

TEST(Cli, LiftSpellingAccepted) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Path = tmpPath("liftspelling.elf");
  writeBinary(*BB, Path);

  RunResult R = runCli("--lift " + Path);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("outcome: lifted"), std::string::npos) << R.Output;
}

TEST(Cli, ReportJsonDeterministicAcrossThreads) {
  auto BB = corpus::overflowBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Path = tmpPath("reportdet.elf");
  writeBinary(*BB, Path);

  std::string First;
  for (unsigned Threads : {1u, 2u, 4u}) {
    std::string Json = tmpPath("reportdet.json");
    std::remove(Json.c_str());
    RunResult R = runCli("--lift " + Path + " --check --threads " +
                         std::to_string(Threads) + " --report-json " + Json);
    EXPECT_NE(R.Output.find("wrote verification report"), std::string::npos)
        << R.Output;
    std::string Doc = slurp(Json);
    ASSERT_FALSE(Doc.empty());
    EXPECT_TRUE(validJsonDoc(Doc)) << Doc;
    EXPECT_NE(Doc.find("\"schema_version\""), std::string::npos);
    EXPECT_NE(Doc.find("\"provenance\""), std::string::npos)
        << "diagnostics must carry provenance:\n"
        << Doc;
    if (First.empty())
      First = Doc;
    else
      EXPECT_EQ(First, Doc)
          << "report bytes must not depend on --threads (threads="
          << Threads << ")";
  }
}

TEST(Cli, ExplainRendersRootCauseNarrative) {
  // The acceptance-criteria walkthrough: induce a verification error
  // (overflowBinary writes through the return address), produce a report,
  // and render it. The narrative must name the failing instruction and
  // show the relation-query chain.
  auto BB = corpus::overflowBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Path = tmpPath("explain.elf");
  writeBinary(*BB, Path);
  std::string Json = tmpPath("explain.json");

  RunResult Lift = runCli(Path + " --check --report-json " + Json);
  EXPECT_NE(Lift.ExitCode, 0) << "overflow must be rejected";

  RunResult R = runCli("explain " + Json);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("verification report for"), std::string::npos);
  EXPECT_NE(R.Output.find("verification-error"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("`ret`"), std::string::npos)
      << "the failing instruction's mnemonic must appear:\n"
      << R.Output;
  EXPECT_NE(R.Output.find("relation queries"), std::string::npos)
      << R.Output;

  // --function filters to one function; a bogus filter matches nothing.
  RunResult None = runCli("explain " + Json + " --function 0xdead");
  EXPECT_EQ(None.ExitCode, 0);
  EXPECT_NE(None.Output.find("no diagnostics"), std::string::npos)
      << None.Output;
}

TEST(Cli, ExplainRejectsGarbage) {
  std::string Path = tmpPath("notareport.json");
  std::ofstream(Path) << "not json";
  RunResult R = runCli("explain " + Path);
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Output.find("not a JSON report"), std::string::npos)
      << R.Output;
}

TEST(Cli, FuzzSubcommandCleanAndDeterministic) {
  std::string J1 = tmpPath("fuzz1.json"), J2 = tmpPath("fuzz2.json");
  std::remove(J1.c_str());
  std::remove(J2.c_str());

  RunResult R1 = runCli("fuzz --seed 9 --runs 4 --fuzz-json " + J1);
  EXPECT_EQ(R1.ExitCode, 0) << R1.Output;
  EXPECT_NE(R1.Output.find("campaign PASS"), std::string::npos) << R1.Output;

  std::string Doc = slurp(J1);
  ASSERT_FALSE(Doc.empty()) << "fuzz report not written";
  EXPECT_TRUE(validJsonDoc(Doc)) << Doc;
  EXPECT_NE(Doc.find("\"fuzz_schema_version\": 1"), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"oracle_violations\": 0"), std::string::npos) << Doc;

  // Same seed, second process: the report must be byte-identical.
  RunResult R2 = runCli("fuzz --seed 9 --runs 4 --fuzz-json " + J2);
  EXPECT_EQ(R2.ExitCode, 0) << R2.Output;
  EXPECT_EQ(Doc, slurp(J2)) << "fuzz report must be deterministic";
}

TEST(Cli, FuzzUnknownMutantUsage) {
  RunResult R = runCli("fuzz --seed 1 --runs 0 --mutate-semantics "
                       "--mutants no-such-mutant");
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
}

TEST(Cli, TraceEmitsValidJsonLines) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Path = tmpPath("trace.elf");
  writeBinary(*BB, Path);
  std::string Trace = tmpPath("trace.jsonl");
  std::remove(Trace.c_str());

  RunResult R = runCli(Path + " --check --threads 4 --trace " + Trace);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;

  std::ifstream In(Trace);
  ASSERT_TRUE(In.good()) << "trace file not written";
  std::string Line;
  size_t Lines = 0;
  bool SawBegin = false, SawLift = false, SawCheck = false, SawEnd = false;
  while (std::getline(In, Line)) {
    ++Lines;
    EXPECT_TRUE(validJsonDoc(Line)) << "line " << Lines << ": " << Line;
    SawBegin |= Line.find("\"trace_begin\"") != std::string::npos;
    SawLift |= Line.find("\"lift_end\"") != std::string::npos;
    SawCheck |= Line.find("\"edge_check\"") != std::string::npos;
    SawEnd |= Line.find("\"trace_end\"") != std::string::npos;
  }
  EXPECT_GT(Lines, 4u);
  EXPECT_TRUE(SawBegin && SawLift && SawCheck && SawEnd)
      << "begin=" << SawBegin << " lift=" << SawLift
      << " check=" << SawCheck << " end=" << SawEnd;
}

} // namespace
