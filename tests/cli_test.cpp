//===- cli_test.cpp - End-to-end hglift CLI integration ------------------===//
//
// Exercises the shipped tool the way a user would: write a real ELF file,
// invoke `hglift` with its flags, inspect exit codes and artifacts.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#ifndef HGLIFT_BIN
#error "HGLIFT_BIN must point at the hglift executable"
#endif

using namespace hglift;

namespace {

std::string tmpPath(const std::string &Name) {
  return std::string("/tmp/hglift_cli_") + Name;
}

void writeBinary(const corpus::BuiltBinary &BB, const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary);
  Out.write(reinterpret_cast<const char *>(BB.ElfBytes.data()),
            static_cast<std::streamsize>(BB.ElfBytes.size()));
}

struct RunResult {
  int ExitCode;
  std::string Output;
};

RunResult runCli(const std::string &Args) {
  std::string Cmd = std::string(HGLIFT_BIN) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr);
  std::string Out;
  char Buf[4096];
  while (P && fgets(Buf, sizeof(Buf), P))
    Out += Buf;
  int RC = P ? pclose(P) : -1;
  return RunResult{WEXITSTATUS(RC), Out};
}

TEST(Cli, LiftSucceedsWithCheck) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Path = tmpPath("callchain.elf");
  writeBinary(*BB, Path);

  RunResult R = runCli(Path + " --check");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("outcome: lifted"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("Hoare triples proven"), std::string::npos);
}

TEST(Cli, RejectionExitsNonzero) {
  auto BB = corpus::overflowBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Path = tmpPath("overflow.elf");
  writeBinary(*BB, Path);

  RunResult R = runCli(Path);
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("unprovable-return"), std::string::npos)
      << R.Output;
}

TEST(Cli, ExportsArtifacts) {
  auto BB = corpus::jumpTableBinary(6);
  ASSERT_TRUE(BB.has_value());
  std::string Path = tmpPath("jt.elf");
  writeBinary(*BB, Path);
  std::string Thy = tmpPath("jt.thy"), Dot = tmpPath("jt.dot");
  std::remove(Thy.c_str());
  std::remove(Dot.c_str());

  RunResult R = runCli(Path + " --export-isabelle " + Thy +
                       " --export-dot " + Dot);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;

  std::ifstream ThyIn(Thy);
  ASSERT_TRUE(ThyIn.good());
  std::stringstream ThyS;
  ThyS << ThyIn.rdbuf();
  EXPECT_NE(ThyS.str().find("theory "), std::string::npos);
  EXPECT_NE(ThyS.str().find("lemma "), std::string::npos);

  std::ifstream DotIn(Dot);
  ASSERT_TRUE(DotIn.good());
  std::stringstream DotS;
  DotS << DotIn.rdbuf();
  EXPECT_NE(DotS.str().find("digraph"), std::string::npos);
  EXPECT_NE(DotS.str().find("->"), std::string::npos);
}

TEST(Cli, WeirdEdgeVisibleInDot) {
  auto BB = corpus::weirdEdgeBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Path = tmpPath("weird.elf");
  writeBinary(*BB, Path);
  std::string Dot = tmpPath("weird.dot");

  RunResult R = runCli(Path + " --export-dot " + Dot);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  std::ifstream DotIn(Dot);
  std::stringstream DotS;
  DotS << DotIn.rdbuf();
  EXPECT_NE(DotS.str().find("weird"), std::string::npos)
      << "the §2 ROP edge must be flagged in the graph";
}

TEST(Cli, BadFileRejected) {
  std::string Path = tmpPath("garbage.bin");
  std::ofstream(Path) << "this is not an elf";
  RunResult R = runCli(Path);
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("cannot parse"), std::string::npos);
}

TEST(Cli, UnknownFlagUsage) {
  RunResult R = runCli("/dev/null --frobnicate");
  EXPECT_EQ(R.ExitCode, 2);
}

} // namespace
