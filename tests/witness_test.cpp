//===- witness_test.cpp - Incorrectness-witness synthesis ----------------===//
//
// Locks the witness subsystem's contract (src/witness/Witness.h): every
// verification failure ships a replayable counterexample, or a recorded
// reason why not.
//
//   * The two historical Pred::leq bug shapes — an unsigned-boundary
//     claim and a stale loop-join bound — planted on a clean lift must
//     yield confirmed, replayable, reduced witnesses, and the stale-bound
//     shape must be found by the clause-endpoints tier (the boundary
//     values are derived from the violated predicate, not luck).
//   * Sound binaries produce zero witnesses at full budget.
//   * Sidecar and report bytes are identical across --threads values and
//     across reruns (the fixtures route through the shipped binary).
//   * Mutation check: every mutant the fuzz oracle kills also yields a
//     confirmed witness when the search is pointed at the kill site.
//   * The sidecar and report `witnesses` schemas are golden-locked under
//     diag::WitnessSchemaVersion (regen: HGLIFT_REGEN_GOLDEN=1).
//   * WitnessSoak (tier-2, gated by HGLIFT_WITNESS_SOAK): across the full
//     mutant registry, every Step-2 error is either confirmed or carries
//     an unconfirmed reason — never silence.
//
//===----------------------------------------------------------------------===//

#include "api/Hglift.h"
#include "corpus/Programs.h"
#include "diag/Json.h"
#include "driver/Report.h"
#include "export/HoareChecker.h"
#include "fuzz/Campaign.h"
#include "fuzz/Mutants.h"
#include "witness/Witness.h"
#include "x86/Reg.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#ifndef HGLIFT_BIN
#error "HGLIFT_BIN must point at the hglift executable"
#endif
#ifndef HGLIFT_GOLDEN_DIR
#error "HGLIFT_GOLDEN_DIR must point at tests/golden"
#endif

using namespace hglift;

namespace {

std::string freshDir(const std::string &Name) {
  std::string D = std::string(::testing::TempDir()) + "/hglift_witness_" +
                  std::to_string(getpid()) + "_" + Name;
  std::filesystem::remove_all(D);
  std::filesystem::create_directories(D);
  return D;
}

std::string readFileStr(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

void writeBinary(const corpus::BuiltBinary &BB, const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary);
  Out.write(reinterpret_cast<const char *>(BB.ElfBytes.data()),
            static_cast<std::streamsize>(BB.ElfBytes.size()));
}

struct RunResult {
  int ExitCode;
  std::string Output;
};

RunResult runCli(const std::string &Args) {
  std::string Cmd = std::string(HGLIFT_BIN) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr);
  std::string Out;
  char Buf[4096];
  while (P && fgets(Buf, sizeof(Buf), P))
    Out += Buf;
  int RC = P ? pclose(P) : -1;
  return RunResult{WEXITSTATUS(RC), Out};
}

/// A clean lift of the straightline binary with one predicate clause
/// planted on every symbolic state at one instruction — the in-process
/// mirror of what an unsound Pred::leq once let slip through. The planted
/// clause makes Step 2 fail (the clean re-derivation cannot entail it)
/// and gives the witness search a concretely falsifiable target.
struct TamperedFixture {
  corpus::BuiltBinary BB;
  hg::BinaryResult R;
  exporter::CheckResult C;
  uint64_t TamperRip = 0; ///< instruction whose invariant gained the clause
};

std::optional<TamperedFixture> tamperStraightline(const std::string &RegVar,
                                                  pred::RelOp Op,
                                                  uint64_t Bound) {
  auto BB = corpus::straightlineBinary();
  if (!BB)
    return std::nullopt;
  Session S(BB->Img, Options());
  TamperedFixture T{*BB, S.lift(), {}, 0};

  // Tamper inside the called function (not _start): the last explored
  // instruction, so straight-line flow guarantees the walk reaches it and
  // the blamed predecessor is unique.
  for (hg::FunctionResult &F : T.R.Functions) {
    if (F.Outcome != hg::LiftOutcome::Lifted || F.Entry == BB->Img.Entry)
      continue;
    uint64_t Target = 0;
    for (const auto &[K, V] : F.Graph.Vertices)
      if (V.Explored && K.Rip != F.Entry && K.Rip > Target &&
          K.Rip < hg::UnresolvedTargetRip)
        Target = K.Rip;
    if (!Target)
      continue;
    const expr::Expr *Var =
        F.ctx().mkVar(expr::VarClass::InitReg, RegVar, 64);
    for (auto &[K, V] : F.Graph.Vertices)
      if (V.Explored && K.Rip == Target)
        V.State.P.addRange(Var, Op, Bound);
    T.TamperRip = Target;
    break;
  }
  if (!T.TamperRip)
    return std::nullopt;

  exporter::CheckContext CC{BB->Img, sem::SymConfig()};
  T.C = exporter::checkBinary(CC, T.R);
  return T;
}

const diag::WitnessRecord *confirmedRecord(const diag::WitnessSummary &W) {
  for (const diag::WitnessRecord &R : W.Records)
    if (R.Verdict == "confirmed")
      return &R;
  return nullptr;
}

// ------------------------------------------------- historical bug shapes

TEST(WitnessUnsignedBoundary, ConfirmedReplayableReduced) {
  // Shape of the historical unsigned-boundary Pred::leq bug: an invariant
  // asserting rdi0 >=u 2^64-256, decided by a signed comparison. Any small
  // entry value refutes it, so the very first ("base") candidate confirms.
  auto T = tamperStraightline("rdi0", pred::RelOp::UGe,
                              0xffffffffffffff00ull);
  ASSERT_TRUE(T.has_value());
  ASSERT_LT(T->C.Proven, T->C.Theorems) << "tamper must fail Step 2";

  witness::WitnessOptions WO;
  WO.Dir = freshDir("unsigned_boundary");
  diag::WitnessSummary W = witness::searchBinary(T->BB.Img, T->R, &T->C, WO,
                                                 &T->BB.ElfBytes);
  EXPECT_EQ(W.Searched, 1u);
  ASSERT_EQ(W.Confirmed, 1u);
  const diag::WitnessRecord *R = confirmedRecord(W);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->Source, "base");
  EXPECT_EQ(R->DiagKindName, "verification-error");
  EXPECT_EQ(R->Claim.Type, "range");
  EXPECT_EQ(R->Claim.RangeOp, ">=u");
  EXPECT_EQ(R->Claim.RangeBound, 0xffffffffffffff00ull);
  EXPECT_LT(R->Claim.RangeValue, R->Claim.RangeBound)
      << "the concrete value must actually violate the claim";
  EXPECT_EQ(R->Regs.size(), size_t(x86::NumGPRs));
  EXPECT_GT(R->TraceLen, 0u);

  // Replayable: probeSite already replayed the written sidecar from disk,
  // and an independent replay must agree.
  ASSERT_FALSE(R->SidecarJson.empty());
  EXPECT_TRUE(R->Replayed);
  std::ostringstream Log;
  EXPECT_EQ(witness::replayWitness(WO.Dir + "/" + R->SidecarJson, Log), 0)
      << Log.str();

  // Reduced: the sidecar ELF is a shrunk binary that still reproduces.
  EXPECT_GT(R->Instructions, 0u);
  EXPECT_LE(R->Instructions, T->R.Functions.front().numInstructions() +
                                 T->R.Functions.back().numInstructions());
  EXPECT_TRUE(
      std::filesystem::exists(WO.Dir + "/" + R->SidecarElf));
}

TEST(WitnessStaleLoopBound, ClauseEndpointsFindTheBoundary) {
  // Shape of the historical stale-loop-join-bound bug: a loop-carried
  // upper bound that survived a join it should have widened. Every small
  // entry value satisfies rsi0 <=u 2^56-1, so random small states cannot
  // refute it — only the clause-endpoints tier, which solves the violated
  // predicate for its boundary (K-1, K, K+1), lands on K+1.
  constexpr uint64_t K = 0x00ffffffffffffffull;
  auto T = tamperStraightline("rsi0", pred::RelOp::ULe, K);
  ASSERT_TRUE(T.has_value());
  ASSERT_LT(T->C.Proven, T->C.Theorems) << "tamper must fail Step 2";

  witness::WitnessOptions WO;
  WO.Dir = freshDir("stale_loop_bound");
  diag::WitnessSummary W = witness::searchBinary(T->BB.Img, T->R, &T->C, WO,
                                                 &T->BB.ElfBytes);
  ASSERT_EQ(W.Confirmed, 1u);
  const diag::WitnessRecord *R = confirmedRecord(W);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->Source, "clause-endpoints")
      << "the boundary value must come from the violated predicate, not "
         "from random search";
  EXPECT_EQ(R->Claim.Type, "range");
  EXPECT_EQ(R->Claim.RangeValue, K + 1)
      << "the endpoint tier probes Bound-1, Bound, Bound+1; only K+1 "
         "violates <=u K";
  EXPECT_TRUE(R->Replayed);
  EXPECT_FALSE(R->SidecarElf.empty());
}

// --------------------------------------------------------- sound binaries

TEST(WitnessSoundBinaries, FullBudgetZeroWitnesses) {
  struct Case {
    const char *Name;
    std::optional<corpus::BuiltBinary> BB;
  } Cases[] = {
      {"straightline", corpus::straightlineBinary()},
      {"branchloop", corpus::branchLoopBinary()},
      {"callchain", corpus::callChainBinary()},
      {"ret2win", corpus::ret2winBinary()},
  };
  for (Case &C : Cases) {
    SCOPED_TRACE(C.Name);
    ASSERT_TRUE(C.BB.has_value());
    Session S(C.BB->Img, Options());
    const hg::BinaryResult &R = S.lift();
    const exporter::CheckResult &Chk = S.check();
    EXPECT_EQ(Chk.Proven, Chk.Theorems);
    witness::WitnessOptions WO; // full default budget, no sidecar dir
    diag::WitnessSummary W =
        witness::searchBinary(C.BB->Img, R, &Chk, WO, &C.BB->ElfBytes);
    EXPECT_EQ(W.Searched, 0u) << "a sound, fully-proven binary has no "
                                 "diagnostic sites to search";
    EXPECT_EQ(W.Confirmed, 0u);
  }
}

TEST(WitnessAnnotationReach, WeirdEdgeGetsReachWitness) {
  // Unsoundness annotations are not verification errors, but they are
  // promises the lifter could not keep; their witness demonstrates the
  // annotated site is actually reachable (phase "reach" — no predicate
  // violation claimed, just a concrete trace arriving there).
  auto BB = corpus::weirdEdgeBinary();
  ASSERT_TRUE(BB.has_value());
  Session S(BB->Img, Options());
  const hg::BinaryResult &R = S.lift();
  const exporter::CheckResult &Chk = S.check();
  EXPECT_EQ(Chk.Proven, Chk.Theorems) << "weird edge is sound, annotated";

  witness::WitnessOptions WO;
  WO.Dir = freshDir("weird_reach");
  diag::WitnessSummary W =
      witness::searchBinary(BB->Img, R, &Chk, WO, &BB->ElfBytes);
  ASSERT_EQ(W.Searched, 1u);
  ASSERT_EQ(W.Confirmed, 1u);
  const diag::WitnessRecord *Rec = confirmedRecord(W);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->DiagKindName, "unsoundness-annotation");
  EXPECT_EQ(Rec->Phase, "reach");
  EXPECT_EQ(Rec->Claim.Type, "none");
  EXPECT_TRUE(Rec->Replayed);
  EXPECT_NE(Rec->SidecarJson.find("_reach"), std::string::npos);
}

// ------------------------------------------------------------ determinism

TEST(WitnessDeterminism, BytesIdenticalAcrossThreadsAndReruns) {
  // The regression-fixture path through the shipped binary: plant the
  // vacuous-unsigned mutant during Step 1, then demand byte-identical
  // sidecars and report across reruns and --threads values.
  auto BB = corpus::straightlineBinary();
  ASSERT_TRUE(BB.has_value());
  std::string Elf = freshDir("det") + "/straightline.elf";
  writeBinary(*BB, Elf);

  struct Run {
    std::string Dir, Report;
  } Runs[3];
  const char *Threads[3] = {"1", "1", "2"};
  for (int I = 0; I < 3; ++I) {
    Runs[I].Dir = freshDir("det_run" + std::to_string(I));
    Runs[I].Report = Runs[I].Dir + "/report.json";
    RunResult R = runCli("check " + Elf +
                         " --mutant range-vacuous-unsigned --threads " +
                         Threads[I] + " --witness-dir " + Runs[I].Dir +
                         " --report-json " + Runs[I].Report);
    EXPECT_EQ(R.ExitCode, 1) << R.Output; // check fails: that's the point
    EXPECT_NE(R.Output.find("witnesses: 1 confirmed"), std::string::npos)
        << R.Output;
  }

  // Same sidecar basenames everywhere, and every artifact byte-identical.
  std::set<std::string> Names;
  for (const auto &E : std::filesystem::directory_iterator(Runs[0].Dir))
    if (E.path().filename() != "report.json" &&
        E.path().filename() != "straightline.elf")
      Names.insert(E.path().filename().string());
  EXPECT_EQ(Names.size(), 2u) << "one .elf + one .json sidecar";
  for (int I = 1; I < 3; ++I) {
    SCOPED_TRACE(std::string("run ") + std::to_string(I) + " (threads " +
                 Threads[I] + ")");
    for (const std::string &N : Names)
      EXPECT_EQ(readFileStr(Runs[0].Dir + "/" + N),
                readFileStr(Runs[I].Dir + "/" + N))
          << "sidecar " << N << " differs";
    EXPECT_EQ(readFileStr(Runs[0].Report), readFileStr(Runs[I].Report));
  }

  // And the sidecar replays through the shipped binary's dispatcher.
  for (const std::string &N : Names)
    if (N.size() > 5 && N.substr(N.size() - 5) == ".json") {
      RunResult R = runCli("fuzz --replay " + Runs[0].Dir + "/" + N);
      EXPECT_EQ(R.ExitCode, 0) << R.Output;
      EXPECT_NE(R.Output.find("witness reproduced"), std::string::npos)
          << R.Output;
    }
}

// --------------------------------------------------------- mutation check

TEST(WitnessMutationCheck, KilledMutantsYieldConfirmedWitnesses) {
  // The witness search must be at least as strong as the fuzz campaign's
  // kill verdicts: re-create each killed mutant's killing subject and
  // point probeSite at the recorded kill site. Oracle kills (a concrete
  // walk found the violation) must re-confirm; Step-2 kills must confirm
  // or record a reason — never silence.
  fuzz::FuzzOptions O;
  O.Seed = 1;
  O.Runs = 0;
  O.MutateSemantics = true;
  std::ostringstream Log;
  fuzz::CampaignResult CR = fuzz::runCampaign(O, Log);
  ASSERT_TRUE(CR.Error.empty()) << CR.Error;

  size_t Confirmed = 0, Checked = 0;
  for (const fuzz::MutantOutcome &MO : CR.Mutants) {
    if (!MO.Killed || MO.KillFn == 0)
      continue;
    SCOPED_TRACE(MO.Name + " (killed by " + MO.KilledBy + ")");
    fuzz::Subject Sub = fuzz::regenerateSubject(MO.KillIndex, MO.KillSeed, O);
    ASSERT_TRUE(Sub.BB.has_value());

    // Reconstruct the killing pipeline's mutated lift (Campaign.cpp
    // runPipeline): the mutant corrupts Step 1; the witness search judges
    // with clean semantics.
    const fuzz::Mutant *M = fuzz::findMutant(MO.Name);
    ASSERT_NE(M, nullptr);
    Options SO;
    SO.Library = Sub.Library;
    Session S(Sub.BB->Img, SO);
    {
      fuzz::MutantInstall MI(*M);
      S.lift();
    }
    const hg::BinaryResult &R = S.lift();
    const hg::FunctionResult *F = nullptr;
    for (const hg::FunctionResult &Fn : R.Functions)
      if (Fn.Entry == MO.KillFn)
        F = &Fn;
    ASSERT_NE(F, nullptr) << "kill function vanished on regeneration";

    witness::WitnessOptions WO;
    WO.Budget = 128;
    diag::WitnessRecord Rec =
        witness::probeSite(Sub.BB->Img, R, *F, MO.KillAddr,
                           diag::DiagKind::VerificationError, WO,
                           &Sub.BB->ElfBytes);
    ++Checked;
    if (MO.KilledBy == "oracle")
      EXPECT_EQ(Rec.Verdict, "confirmed")
          << "the oracle found a violating state at this site; the "
             "witness search must re-find one (reason: " +
                 Rec.Reason + ")";
    else
      EXPECT_TRUE(Rec.Verdict == "confirmed" || !Rec.Reason.empty());
    if (Rec.Verdict == "confirmed")
      ++Confirmed;
  }
  EXPECT_GT(Checked, 0u) << "campaign killed no mutants — fixture rotted";
  EXPECT_GT(Confirmed, 0u);
}

// ----------------------------------------------------- golden schema lock

const char *typeName(const diag::JValue &V) {
  switch (V.K) {
  case diag::JValue::Kind::Null:
    return "null";
  case diag::JValue::Kind::Bool:
    return "bool";
  case diag::JValue::Kind::Num:
    return "num";
  case diag::JValue::Kind::Str:
    return "str";
  case diag::JValue::Kind::Arr:
    return "arr";
  case diag::JValue::Kind::Obj:
    return "obj";
  }
  return "?";
}

void collectPaths(const diag::JValue &V, const std::string &Path,
                  std::set<std::string> &Out) {
  Out.insert((Path.empty() ? "." : Path) + ": " + typeName(V));
  if (V.isObj())
    for (const auto &[K, Child] : V.Obj)
      collectPaths(Child, Path + "." + K, Out);
  if (V.isArr())
    for (const diag::JValue &Child : V.Arr)
      collectPaths(Child, Path + "[]", Out);
}

void checkGolden(const std::string &File, const std::set<std::string> &Lines) {
  std::string Path = std::string(HGLIFT_GOLDEN_DIR) + "/" + File;
  if (std::getenv("HGLIFT_REGEN_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    for (const std::string &L : Lines)
      Out << L << "\n";
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good())
      << Path << " is missing. If you changed the witness artifact shape, "
      << "bump diag::WitnessSchemaVersion, update docs/WITNESSES.md, and "
      << "regenerate with HGLIFT_REGEN_GOLDEN=1 ctest -R witness_test.";
  std::set<std::string> Golden;
  std::string L;
  while (std::getline(In, L))
    if (!L.empty())
      Golden.insert(L);
  const char *Bump =
      "Changing the shape of the witness sidecar or the report `witnesses` "
      "section requires bumping diag::WitnessSchemaVersion, updating "
      "docs/WITNESSES.md, and regenerating tests/golden "
      "(HGLIFT_REGEN_GOLDEN=1). Consumers key on witness_schema_version.";
  for (const std::string &Have : Lines)
    EXPECT_TRUE(Golden.count(Have))
        << "new key path not in " << File << ": `" << Have << "`\n" << Bump;
  for (const std::string &Want : Golden)
    EXPECT_TRUE(Lines.count(Want))
        << "key path vanished from the artifact: `" << Want << "`\n" << Bump;
}

TEST(WitnessSchema, MatchesGolden) {
  std::set<std::string> Paths;

  // Maximal report `witnesses` section: a confirmed record with sidecars
  // (tamper fixture) plus an unconfirmed one (overflow's function-level
  // error has no lifted graph to search).
  std::string Dir = freshDir("schema");
  auto T = tamperStraightline("rdi0", pred::RelOp::UGe,
                              0xffffffffffffff00ull);
  ASSERT_TRUE(T.has_value());
  witness::WitnessOptions WO;
  WO.Dir = Dir;
  diag::WitnessSummary W =
      witness::searchBinary(T->BB.Img, T->R, &T->C, WO, &T->BB.ElfBytes);
  ASSERT_EQ(W.Confirmed, 1u);
  {
    auto BB = corpus::overflowBinary();
    ASSERT_TRUE(BB.has_value());
    Session S(BB->Img, Options());
    const hg::BinaryResult &R = S.lift();
    const exporter::CheckResult &C = S.check();
    diag::WitnessSummary W2 =
        witness::searchBinary(BB->Img, R, &C, WO, &BB->ElfBytes);
    EXPECT_GT(W2.Unconfirmed, 0u);
    std::ostringstream OS;
    driver::writeReportJson(OS, R, &C, &W2);
    auto V = diag::parseJson(OS.str());
    ASSERT_TRUE(V.has_value()) << OS.str();
    ASSERT_TRUE(V->get("witnesses"));
    collectPaths(*V->get("witnesses"), ".witnesses", Paths);
  }
  {
    std::ostringstream OS;
    driver::writeReportJson(OS, T->R, &T->C, &W);
    auto V = diag::parseJson(OS.str());
    ASSERT_TRUE(V.has_value()) << OS.str();
    const diag::JValue *Wit = V->get("witnesses");
    ASSERT_TRUE(Wit);
    EXPECT_EQ(Wit->num("witness_schema_version"),
              double(diag::WitnessSchemaVersion));
    collectPaths(*Wit, ".witnesses", Paths);
  }

  // The sidecar JSON the confirmed record wrote.
  const diag::WitnessRecord *R = confirmedRecord(W);
  ASSERT_NE(R, nullptr);
  auto Side = diag::parseJson(readFileStr(Dir + "/" + R->SidecarJson));
  ASSERT_TRUE(Side.has_value());
  EXPECT_EQ(Side->num("witness_schema_version"),
            double(diag::WitnessSchemaVersion));
  collectPaths(*Side, ".sidecar", Paths);

  checkGolden("witness_schema_v" +
                  std::to_string(diag::WitnessSchemaVersion) + ".txt",
              Paths);
}

// ------------------------------------------------------------------- soak

TEST(WitnessSoak, EveryErrorConfirmedOrReasoned) {
  // Tier-2: across the full mutant registry and several corpus programs,
  // every Step-2 verification error must either gain a confirmed witness
  // or record why it could not — an empty reason on an unconfirmed record
  // is the one forbidden outcome.
  if (!std::getenv("HGLIFT_WITNESS_SOAK"))
    GTEST_SKIP() << "set HGLIFT_WITNESS_SOAK=1 (tier-2 witness_soak) to run";

  struct Case {
    std::string Name;
    std::optional<corpus::BuiltBinary> BB;
  };
  std::vector<Case> Cases = {
      {"straightline", corpus::straightlineBinary()},
      {"branchloop", corpus::branchLoopBinary()},
      {"callchain", corpus::callChainBinary()},
      {"weirdedge", corpus::weirdEdgeBinary()},
  };
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    corpus::GenOptions G;
    G.Seed = Seed;
    Cases.push_back({"random" + std::to_string(Seed),
                     corpus::randomBinary(G)});
  }
  size_t Errors = 0, Confirmed = 0;
  for (const fuzz::Mutant &M : fuzz::mutantRegistry()) {
    for (Case &C : Cases) {
      SCOPED_TRACE(M.Name + " on " + C.Name);
      ASSERT_TRUE(C.BB.has_value());
      Session S(C.BB->Img, Options());
      {
        fuzz::MutantInstall MI(M);
        S.lift();
        if (M.Scope == fuzz::MutantScope::Both)
          S.check();
      }
      const hg::BinaryResult &R = S.lift();
      const exporter::CheckResult &Chk = S.check();
      if (Chk.Proven == Chk.Theorems)
        continue; // this mutant does not fire on this program
      witness::WitnessOptions WO;
      diag::WitnessSummary W =
          witness::searchBinary(C.BB->Img, R, &Chk, WO, &C.BB->ElfBytes);
      EXPECT_GT(W.Searched, 0u);
      for (const diag::WitnessRecord &Rec : W.Records) {
        ++Errors;
        if (Rec.Verdict == "confirmed") {
          ++Confirmed;
          EXPECT_TRUE(Rec.Reason.empty());
        } else {
          EXPECT_FALSE(Rec.Reason.empty())
              << "unconfirmed witness with no recorded reason (site "
              << std::hex << Rec.Addr << ")";
        }
      }
    }
  }
  EXPECT_GT(Errors, 0u) << "no mutant produced a Step-2 error — soak rotted";
  EXPECT_GT(Confirmed, 0u);
}

} // namespace
