//===- decoder_test.cpp - Encoder/decoder round-trip + strictness --------===//
//
// The decoder implements the paper's fetch function; the assembler is its
// inverse. The round-trip property: everything the assembler emits decodes
// back to the same mnemonic/operands/length. Parameterized sweeps cover
// the full register file at every operand size.
//
//===----------------------------------------------------------------------===//

#include "x86/Asm.h"
#include "x86/Decoder.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace hglift::x86;
using hglift::Rng;

namespace {

constexpr uint64_t Base = 0x400000;

Instr decodeAll(const Asm &A, size_t ExpectedCount = 1, size_t Index = 0) {
  const auto &Code = A.code();
  size_t Off = 0, N = 0;
  Instr Last;
  while (Off < Code.size()) {
    Instr I = decodeInstr(Code.data() + Off, Code.size() - Off, Base + Off);
    EXPECT_TRUE(I.isValid()) << "byte offset " << Off;
    if (!I.isValid())
      return Instr{};
    if (N == Index)
      Last = I;
    Off += I.Length;
    ++N;
  }
  EXPECT_EQ(N, ExpectedCount);
  return Last;
}

class RegSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RegSweep, MovRoundTrip) {
  auto [DstN, SrcN] = GetParam();
  Reg Dst = regFromNum(static_cast<unsigned>(DstN));
  Reg Src = regFromNum(static_cast<unsigned>(SrcN));
  for (unsigned Sz : {1u, 2u, 4u, 8u}) {
    Asm A(Base);
    A.movRR(Dst, Src, Sz);
    ASSERT_TRUE(A.finalize());
    Instr I = decodeAll(A);
    EXPECT_EQ(I.Mn, Mnemonic::Mov);
    EXPECT_EQ(I.Ops[0].R, Dst);
    EXPECT_EQ(I.Ops[1].R, Src);
    EXPECT_EQ(I.Ops[0].Size, Sz);
    EXPECT_FALSE(I.Ops[0].HighByte);
  }
}

TEST_P(RegSweep, ArithRoundTrip) {
  auto [DstN, SrcN] = GetParam();
  Reg Dst = regFromNum(static_cast<unsigned>(DstN));
  Reg Src = regFromNum(static_cast<unsigned>(SrcN));
  for (Mnemonic Mn : {Mnemonic::Add, Mnemonic::Sub, Mnemonic::And,
                      Mnemonic::Or, Mnemonic::Xor, Mnemonic::Cmp,
                      Mnemonic::Adc, Mnemonic::Sbb}) {
    for (unsigned Sz : {1u, 4u, 8u}) {
      Asm A(Base);
      A.arithRR(Mn, Dst, Src, Sz);
      ASSERT_TRUE(A.finalize());
      Instr I = decodeAll(A);
      EXPECT_EQ(I.Mn, Mn) << I.str();
      EXPECT_EQ(I.Ops[0].R, Dst);
      EXPECT_EQ(I.Ops[1].R, Src);
    }
  }
}

TEST_P(RegSweep, MemFormsRoundTrip) {
  auto [BaseN, IdxN] = GetParam();
  Reg BR = regFromNum(static_cast<unsigned>(BaseN));
  Reg IR = regFromNum(static_cast<unsigned>(IdxN));
  if (IR == Reg::RSP)
    return; // rsp cannot be an index register
  for (uint8_t Scale : {1, 2, 4, 8}) {
    for (int32_t Disp : {0, 8, -8, 0x1234, -0x1234}) {
      MemOperand M;
      M.Base = BR;
      M.Index = IR;
      M.Scale = Scale;
      M.Disp = Disp;
      Asm A(Base);
      A.movRM(Reg::RAX, M, 8);
      A.movMR(M, Reg::RCX, 4);
      A.leaRM(Reg::RDX, M, 8);
      ASSERT_TRUE(A.finalize());
      Instr I0 = decodeAll(A, 3, 0);
      EXPECT_EQ(I0.Mn, Mnemonic::Mov);
      EXPECT_EQ(I0.Ops[1].M, M) << I0.str();
      Instr I2 = decodeAll(A, 3, 2);
      EXPECT_EQ(I2.Mn, Mnemonic::Lea);
      EXPECT_EQ(I2.Ops[1].M, M) << I2.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegPairs, RegSweep,
                         ::testing::Combine(::testing::Range(0, 16),
                                            ::testing::Values(0, 3, 4, 5, 7,
                                                              8, 12, 15)));

TEST(Decoder, ImmediateForms) {
  for (int64_t Imm :
       {int64_t(0), int64_t(1), int64_t(-1), int64_t(127), int64_t(-128),
        int64_t(0x7fffffff), int64_t(-0x80000000ll),
        int64_t(0x123456789abcdefll)}) {
    Asm A(Base);
    A.movRI(Reg::R9, Imm, 8);
    ASSERT_TRUE(A.finalize());
    const auto &Code = A.code();
    Instr I = decodeInstr(Code.data(), Code.size(), Base);
    ASSERT_TRUE(I.isValid());
    EXPECT_EQ(I.Mn, Mnemonic::Mov);
    EXPECT_EQ(I.Ops[1].Imm, Imm) << I.str();
  }
}

TEST(Decoder, BranchTargetsAreAbsolute) {
  Asm A(Base);
  auto L = A.newLabel();
  A.jccL(Cond::NE, L);
  A.nop(3);
  A.bind(L);
  A.jmpL(L);
  ASSERT_TRUE(A.finalize());
  Instr J = decodeAll(A, 5, 0);
  EXPECT_EQ(J.Mn, Mnemonic::Jcc);
  EXPECT_EQ(J.CC, Cond::NE);
  EXPECT_EQ(static_cast<uint64_t>(J.Ops[0].Imm), A.labelAddr(L));
  Instr JMP = decodeAll(A, 5, 4);
  EXPECT_EQ(JMP.Mn, Mnemonic::Jmp);
  EXPECT_EQ(static_cast<uint64_t>(JMP.Ops[0].Imm), A.labelAddr(L));
}

TEST(Decoder, ControlFlowForms) {
  Asm A(Base);
  A.callAbs(Base + 0x100);
  A.callR(Reg::RAX);
  MemOperand M;
  M.Base = Reg::RDI;
  A.callM(M);
  A.jmpR(Reg::R11);
  A.jmpM(M);
  A.ret();
  ASSERT_TRUE(A.finalize());
  EXPECT_EQ(decodeAll(A, 6, 0).Mn, Mnemonic::Call);
  Instr CR = decodeAll(A, 6, 1);
  EXPECT_EQ(CR.Mn, Mnemonic::Call);
  EXPECT_TRUE(CR.Ops[0].isReg());
  Instr CM = decodeAll(A, 6, 2);
  EXPECT_TRUE(CM.Ops[0].isMem());
  Instr JR = decodeAll(A, 6, 3);
  EXPECT_EQ(JR.Mn, Mnemonic::Jmp);
  EXPECT_EQ(JR.Ops[0].R, Reg::R11);
  EXPECT_EQ(decodeAll(A, 6, 5).Mn, Mnemonic::Ret);
}

TEST(Decoder, ShiftAndUnaryForms) {
  Asm A(Base);
  A.shiftRI(Mnemonic::Shl, Reg::RBX, 3, 8);
  A.shiftRI(Mnemonic::Sar, Reg::RBX, 63, 8);
  A.shiftRCL(Mnemonic::Shr, Reg::RDX, 4);
  A.negR(Reg::RSI, 8);
  A.notR(Reg::R8, 4);
  A.incR(Reg::RCX, 8);
  A.decR(Reg::RCX, 2);
  ASSERT_TRUE(A.finalize());
  EXPECT_EQ(decodeAll(A, 7, 0).Mn, Mnemonic::Shl);
  EXPECT_EQ(decodeAll(A, 7, 0).Ops[1].Imm, 3);
  EXPECT_EQ(decodeAll(A, 7, 1).Ops[1].Imm, 63);
  Instr SH = decodeAll(A, 7, 2);
  EXPECT_EQ(SH.Mn, Mnemonic::Shr);
  EXPECT_EQ(SH.Ops[1].R, Reg::RCX); // by cl
  EXPECT_EQ(decodeAll(A, 7, 3).Mn, Mnemonic::Neg);
  EXPECT_EQ(decodeAll(A, 7, 4).Mn, Mnemonic::Not);
  EXPECT_EQ(decodeAll(A, 7, 5).Mn, Mnemonic::Inc);
  Instr D = decodeAll(A, 7, 6);
  EXPECT_EQ(D.Mn, Mnemonic::Dec);
  EXPECT_EQ(D.Ops[0].Size, 2);
}

TEST(Decoder, ExtensionAndConditionalForms) {
  Asm A(Base);
  A.movzxRR(Reg::RAX, Reg::RBX, 1, 8);
  A.movzxRR(Reg::RAX, Reg::RBX, 2, 4);
  A.movsxdRR(Reg::RCX, Reg::RDX);
  A.cmovRR(Cond::LE, Reg::RSI, Reg::RDI, 8);
  A.setccR(Cond::A, Reg::RDX);
  A.cdqe();
  A.cqo();
  A.xchgRR(Reg::RAX, Reg::R15, 8);
  ASSERT_TRUE(A.finalize());
  EXPECT_EQ(decodeAll(A, 8, 0).Mn, Mnemonic::Movzx);
  EXPECT_EQ(decodeAll(A, 8, 0).Ops[1].Size, 1);
  EXPECT_EQ(decodeAll(A, 8, 1).Ops[1].Size, 2);
  EXPECT_EQ(decodeAll(A, 8, 2).Mn, Mnemonic::Movsxd);
  Instr CM = decodeAll(A, 8, 3);
  EXPECT_EQ(CM.Mn, Mnemonic::Cmovcc);
  EXPECT_EQ(CM.CC, Cond::LE);
  Instr SC = decodeAll(A, 8, 4);
  EXPECT_EQ(SC.Mn, Mnemonic::Setcc);
  EXPECT_EQ(SC.CC, Cond::A);
  EXPECT_EQ(decodeAll(A, 8, 5).Mn, Mnemonic::Cdqe);
  EXPECT_EQ(decodeAll(A, 8, 6).Mn, Mnemonic::Cqo);
  EXPECT_EQ(decodeAll(A, 8, 7).Mn, Mnemonic::Xchg);
}

TEST(Decoder, HighByteRegisters) {
  // 88 e0: mov al, ah (no REX: encoding 4 at 8-bit = ah).
  const uint8_t Code[] = {0x88, 0xe0};
  Instr I = decodeInstr(Code, sizeof(Code), Base);
  ASSERT_TRUE(I.isValid());
  EXPECT_EQ(I.Mn, Mnemonic::Mov);
  EXPECT_EQ(I.Ops[0].R, Reg::RAX);
  EXPECT_FALSE(I.Ops[0].HighByte);
  EXPECT_TRUE(I.Ops[1].HighByte);
  EXPECT_EQ(I.Ops[1].R, Reg::RAX);
  EXPECT_EQ(I.str(), "mov al, ah");

  // With REX, the same encoding means spl.
  const uint8_t Code2[] = {0x40, 0x88, 0xe0};
  Instr I2 = decodeInstr(Code2, sizeof(Code2), Base);
  ASSERT_TRUE(I2.isValid());
  EXPECT_FALSE(I2.Ops[1].HighByte);
  EXPECT_EQ(I2.Ops[1].R, Reg::RSP);
}

TEST(Decoder, StrictOnTruncationAndGarbage) {
  // Truncated mov imm64.
  const uint8_t Trunc[] = {0x48, 0xb8, 0x01, 0x02};
  EXPECT_FALSE(decodeInstr(Trunc, sizeof(Trunc), Base).isValid());
  // Unsupported opcodes must decode to Invalid, not garbage.
  for (uint8_t Op : {0x0e, 0x27, 0x62, 0xd7, 0xf1}) {
    const uint8_t Code[] = {Op, 0x00, 0x00, 0x00, 0x00, 0x00};
    EXPECT_FALSE(decodeInstr(Code, sizeof(Code), Base).isValid())
        << "opcode " << static_cast<int>(Op);
  }
  EXPECT_FALSE(decodeInstr(nullptr, 0, Base).isValid());
}

TEST(Decoder, RipRelative) {
  Asm A(Base);
  auto L = A.newLabel();
  A.leaRL(Reg::RDI, L);
  A.ret();
  A.bind(L);
  ASSERT_TRUE(A.finalize());
  Instr I = decodeAll(A, 2, 0);
  EXPECT_EQ(I.Mn, Mnemonic::Lea);
  ASSERT_TRUE(I.Ops[1].isMem());
  EXPECT_TRUE(I.Ops[1].M.RipRel);
  EXPECT_EQ(I.nextAddr() + static_cast<int64_t>(I.Ops[1].M.Disp),
            A.labelAddr(L));
}

TEST(Decoder, EndbrAndFences) {
  Asm A(Base);
  A.endbr64();
  A.ud2();
  A.int3();
  A.hlt();
  A.syscall();
  ASSERT_TRUE(A.finalize());
  EXPECT_EQ(decodeAll(A, 5, 0).Mn, Mnemonic::Endbr64);
  EXPECT_EQ(decodeAll(A, 5, 1).Mn, Mnemonic::Ud2);
  EXPECT_EQ(decodeAll(A, 5, 2).Mn, Mnemonic::Int3);
  EXPECT_EQ(decodeAll(A, 5, 3).Mn, Mnemonic::Hlt);
  EXPECT_EQ(decodeAll(A, 5, 4).Mn, Mnemonic::Syscall);
}

TEST(Decoder, RoundTripFuzz) {
  // Property fuzz: encode a random instruction with Asm, decode it, and
  // require the mnemonic and operands to survive the round trip exactly.
  // Picks the assembler cannot encode (finalize failure) are logged and
  // skipped, with a counter assert keeping the skip rate honest.
  Rng R(0xf422);
  static const Reg Regs[] = {Reg::RAX, Reg::RCX, Reg::RDX, Reg::RBX,
                             Reg::RBP, Reg::RSI, Reg::RDI, Reg::R8,
                             Reg::R9,  Reg::R10, Reg::R11, Reg::R12,
                             Reg::R13, Reg::R14, Reg::R15};
  static const Cond Conds[] = {Cond::O,  Cond::NO, Cond::B,  Cond::AE,
                               Cond::E,  Cond::NE, Cond::BE, Cond::A,
                               Cond::S,  Cond::NS, Cond::L,  Cond::GE,
                               Cond::LE, Cond::G};
  auto Pick = [&]() { return Regs[R.below(std::size(Regs))]; };
  auto PickMem = [&]() {
    MemOperand M;
    M.Base = Pick();
    if (R.chance(1, 2)) {
      Reg I = Pick();
      if (I != Reg::RSP) {
        M.Index = I;
        M.Scale = static_cast<uint8_t>(1u << R.below(4));
      }
    }
    M.Disp = static_cast<int32_t>(R.range(-0x2000, 0x2000));
    return M;
  };

  const int Iters = 3000;
  int Unproducible = 0;
  for (int Iter = 0; Iter < Iters; ++Iter) {
    Asm A(Base);
    Mnemonic WantMn = Mnemonic::Invalid;
    Operand Want[3];
    unsigned WantOps = 0;
    Cond WantCC = Cond::O;
    unsigned Sz = (1u << R.below(4)); // 1/2/4/8
    Reg D = Pick(), S = Pick();

    switch (R.below(16)) {
    case 0:
      WantMn = Mnemonic::Mov;
      A.movRR(D, S, Sz);
      Want[0] = Operand::reg(D, Sz);
      Want[1] = Operand::reg(S, Sz);
      WantOps = 2;
      break;
    case 1: {
      Sz = R.chance(1, 2) ? 4 : 8;
      int64_t Imm = Sz == 8 ? static_cast<int64_t>(R.next())
                            : R.range(-0x7fffffff, 0x7fffffff);
      WantMn = Mnemonic::Mov;
      A.movRI(D, Imm, Sz);
      Want[0] = Operand::reg(D, Sz);
      // mov r32, imm32 (0xb8+r) decodes its immediate zero-extended.
      Want[1] = Operand::imm(
          Sz == 4 ? static_cast<int64_t>(static_cast<uint32_t>(Imm)) : Imm, Sz);
      WantOps = 2;
      break;
    }
    case 2: {
      static const Mnemonic Arith[] = {Mnemonic::Add, Mnemonic::Sub,
                                       Mnemonic::And, Mnemonic::Or,
                                       Mnemonic::Xor, Mnemonic::Cmp,
                                       Mnemonic::Adc, Mnemonic::Sbb};
      WantMn = Arith[R.below(std::size(Arith))];
      A.arithRR(WantMn, D, S, Sz);
      Want[0] = Operand::reg(D, Sz);
      Want[1] = Operand::reg(S, Sz);
      WantOps = 2;
      break;
    }
    case 3: {
      MemOperand M = PickMem();
      WantMn = Mnemonic::Mov;
      if (R.chance(1, 2)) {
        A.movRM(D, M, Sz);
        Want[0] = Operand::reg(D, Sz);
        Want[1] = Operand::mem(M, static_cast<uint8_t>(Sz));
      } else {
        A.movMR(M, S, Sz);
        Want[0] = Operand::mem(M, static_cast<uint8_t>(Sz));
        Want[1] = Operand::reg(S, Sz);
      }
      WantOps = 2;
      break;
    }
    case 4: {
      MemOperand M = PickMem();
      WantMn = Mnemonic::Lea;
      A.leaRM(D, M, 8);
      Want[0] = Operand::reg(D, 8);
      Want[1] = Operand::mem(M, 8);
      WantOps = 2;
      break;
    }
    case 5: {
      unsigned SrcSz = R.chance(1, 2) ? 1 : 2;
      unsigned DstSz = R.chance(1, 2) ? 4 : 8;
      WantMn = Mnemonic::Movzx;
      A.movzxRR(D, S, SrcSz, DstSz);
      Want[0] = Operand::reg(D, DstSz);
      Want[1] = Operand::reg(S, SrcSz);
      WantOps = 2;
      break;
    }
    case 6: {
      Sz = R.chance(1, 2) ? 4 : 8;
      static const Mnemonic Sh[] = {Mnemonic::Shl, Mnemonic::Shr,
                                    Mnemonic::Sar};
      WantMn = Sh[R.below(std::size(Sh))];
      uint8_t Count = static_cast<uint8_t>(R.range(1, Sz * 8 - 1));
      A.shiftRI(WantMn, D, Count, Sz);
      Want[0] = Operand::reg(D, Sz);
      Want[1] = Operand::imm(Count, 1);
      WantOps = 2;
      break;
    }
    case 7:
      Sz = R.chance(1, 2) ? 4 : 8;
      WantMn = Mnemonic::Test;
      A.testRR(D, S, Sz);
      Want[0] = Operand::reg(D, Sz);
      Want[1] = Operand::reg(S, Sz);
      WantOps = 2;
      break;
    case 8: {
      static const Mnemonic Un[] = {Mnemonic::Neg, Mnemonic::Not,
                                    Mnemonic::Inc, Mnemonic::Dec};
      WantMn = Un[R.below(std::size(Un))];
      switch (WantMn) {
      case Mnemonic::Neg:
        A.negR(D, Sz);
        break;
      case Mnemonic::Not:
        A.notR(D, Sz);
        break;
      case Mnemonic::Inc:
        A.incR(D, Sz);
        break;
      default:
        A.decR(D, Sz);
        break;
      }
      Want[0] = Operand::reg(D, Sz);
      WantOps = 1;
      break;
    }
    case 9:
      WantCC = Conds[R.below(std::size(Conds))];
      Sz = R.chance(1, 2) ? 4 : 8;
      WantMn = Mnemonic::Cmovcc;
      A.cmovRR(WantCC, D, S, Sz);
      Want[0] = Operand::reg(D, Sz);
      Want[1] = Operand::reg(S, Sz);
      WantOps = 2;
      break;
    case 10:
      WantCC = Conds[R.below(std::size(Conds))];
      WantMn = Mnemonic::Setcc;
      A.setccR(WantCC, D);
      Want[0] = Operand::reg(D, 1);
      WantOps = 1;
      break;
    case 11:
      Sz = R.chance(1, 2) ? 4 : 8;
      WantMn = Mnemonic::Bswap;
      A.bswapR(D, Sz);
      Want[0] = Operand::reg(D, Sz);
      WantOps = 1;
      break;
    case 12: {
      Sz = R.chance(1, 2) ? 4 : 8;
      WantMn = R.chance(1, 2) ? Mnemonic::Bsf : Mnemonic::Bsr;
      if (WantMn == Mnemonic::Bsf)
        A.bsfRR(D, S, Sz);
      else
        A.bsrRR(D, S, Sz);
      Want[0] = Operand::reg(D, Sz);
      Want[1] = Operand::reg(S, Sz);
      WantOps = 2;
      break;
    }
    case 13: {
      Sz = R.chance(1, 2) ? 4 : 8;
      int32_t Imm = static_cast<int32_t>(R.range(-1000, 1000));
      WantMn = Mnemonic::Imul;
      if (R.chance(1, 2)) {
        A.imulRR(D, S, Sz);
        Want[0] = Operand::reg(D, Sz);
        Want[1] = Operand::reg(S, Sz);
        WantOps = 2;
      } else {
        A.imulRRI(D, S, Imm, Sz);
        Want[0] = Operand::reg(D, Sz);
        Want[1] = Operand::reg(S, Sz);
        Want[2] = Operand::imm(Imm, static_cast<uint8_t>(Sz));
        WantOps = 3;
      }
      break;
    }
    case 14:
      WantMn = R.chance(1, 2) ? Mnemonic::Push : Mnemonic::Pop;
      if (WantMn == Mnemonic::Push)
        A.pushR(D);
      else
        A.popR(D);
      Want[0] = Operand::reg(D, 8);
      WantOps = 1;
      break;
    case 15: {
      Sz = R.chance(1, 2) ? 4 : 8;
      int32_t Imm = static_cast<int32_t>(R.range(-100000, 100000));
      static const Mnemonic Arith[] = {Mnemonic::Add, Mnemonic::Sub,
                                       Mnemonic::Cmp, Mnemonic::And};
      WantMn = Arith[R.below(std::size(Arith))];
      A.arithRI(WantMn, D, Imm, Sz);
      Want[0] = Operand::reg(D, Sz);
      Want[1] = Operand::imm(Imm, Sz);
      WantOps = 2;
      break;
    }
    }

    if (!A.finalize() || A.code().empty()) {
      // The assembler refused this pick (unencodable form): log and skip.
      ++Unproducible;
      continue;
    }

    Instr I = decodeInstr(A.code().data(), A.code().size(), Base);
    ASSERT_TRUE(I.isValid())
        << "iter " << Iter << ": " << mnemonicName(WantMn)
        << " encoded but undecodable";
    EXPECT_EQ(I.Length, A.code().size())
        << "iter " << Iter << ": " << I.str() << " length mismatch";
    EXPECT_EQ(I.Mn, WantMn) << "iter " << Iter << ": decoded " << I.str();
    if (WantMn == Mnemonic::Cmovcc || WantMn == Mnemonic::Setcc)
      EXPECT_EQ(I.CC, WantCC) << "iter " << Iter << ": " << I.str();
    EXPECT_EQ(I.numOperands(), WantOps)
        << "iter " << Iter << ": " << I.str();
    for (unsigned Op = 0; Op < WantOps; ++Op)
      EXPECT_EQ(I.Ops[Op], Want[Op])
          << "iter " << Iter << ": " << I.str() << " operand " << Op
          << " (want " << operandStr(Want[Op]) << ")";
    if (::testing::Test::HasFailure())
      break; // one detailed failure beats 3000 identical ones
  }

  // The generator is tuned so nearly every pick is encodable; a rising
  // skip count means the assembler silently lost coverage.
  EXPECT_LT(Unproducible, Iters / 20)
      << Unproducible << " of " << Iters << " picks were unencodable";
  if (Unproducible)
    GTEST_LOG_(INFO) << "skipped " << Unproducible << "/" << Iters
                     << " unencodable picks";
}

TEST(Decoder, OverlappingDecodesBothWays) {
  // The §2 trick: "81 ff c3 00 00 00" is cmp edi, 0xc3 from offset 0 but a
  // ret from offset 2 — both must decode.
  const uint8_t Code[] = {0x81, 0xff, 0xc3, 0x00, 0x00, 0x00};
  Instr I = decodeInstr(Code, sizeof(Code), Base);
  ASSERT_TRUE(I.isValid());
  EXPECT_EQ(I.Mn, Mnemonic::Cmp);
  EXPECT_EQ(I.Length, 6);
  Instr R = decodeInstr(Code + 2, sizeof(Code) - 2, Base + 2);
  ASSERT_TRUE(R.isValid());
  EXPECT_EQ(R.Mn, Mnemonic::Ret);
}

} // namespace
