//===- store_test.cpp - Artifact store: round-trip + robustness ----------===//
//
// The serialization contract: serialize(deserialize(x)) is byte-identical
// to serialize(x) for every lifted corpus function (fixtures plus a
// fuzz-corpus sample), and a fully cached Session produces the exact
// --report-json bytes of a cold one. The robustness contract: every way a
// stored entry can be wrong — truncation, bit flips, a stale schema
// version, a changed config, patched instruction bytes — degrades to a
// clean miss and a fresh lift, never to a crash or a trusted bad graph.
//
//===----------------------------------------------------------------------===//

#include "api/Hglift.h"
#include "corpus/Programs.h"
#include "store/Serialize.h"
#include "store/Store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace hglift;
namespace fs = std::filesystem;

namespace {

/// Fresh scratch directory under /tmp, wiped on construction.
struct TempDir {
  fs::path Path;
  explicit TempDir(const std::string &Name)
      : Path(fs::path("/tmp") / ("hglift_store_test_" + Name)) {
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~TempDir() { fs::remove_all(Path); }
  std::string str() const { return Path.string(); }
};

std::vector<std::optional<corpus::BuiltBinary>> roundTripCorpus() {
  std::vector<std::optional<corpus::BuiltBinary>> Out;
  Out.push_back(corpus::straightlineBinary());
  Out.push_back(corpus::branchLoopBinary());
  Out.push_back(corpus::jumpTableBinary(7));
  Out.push_back(corpus::callChainBinary());
  Out.push_back(corpus::callbackBinary());
  Out.push_back(corpus::weirdEdgeBinary());
  // Fuzz-corpus sample: the same generator the fuzz campaign draws from.
  for (uint64_t Seed : {0x5eedull, 0xf00dull, 0x1234ull}) {
    corpus::GenOptions G;
    G.Seed = Seed;
    G.NumFuncs = 3;
    G.TargetInstrs = 35;
    G.JumpTablePct = 25;
    Out.push_back(corpus::randomBinary(G));
  }
  return Out;
}

/// FNV-1a over all bytes but the trailing checksum, written back into the
/// trailing checksum slot — lets tests patch a field and keep the entry
/// checksum-valid so the *semantic* gate under test is the one that fires.
void fixupChecksum(std::vector<uint8_t> &Bytes) {
  ASSERT_GE(Bytes.size(), 8u);
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I + 8 < Bytes.size(); ++I) {
    H ^= Bytes[I];
    H *= 0x100000001b3ULL;
  }
  for (int I = 0; I < 8; ++I)
    Bytes[Bytes.size() - 8 + I] = static_cast<uint8_t>(H >> (8 * I));
}

TEST(StoreRoundTrip, SerializeDeserializeByteIdentical) {
  size_t Functions = 0;
  for (auto &BB : roundTripCorpus()) {
    ASSERT_TRUE(BB.has_value());
    hg::LiftConfig Cfg;
    hg::Lifter L(BB->Img, Cfg);
    hg::BinaryResult R = L.liftBinary();
    for (const hg::FunctionResult &F : R.Functions) {
      if (F.Outcome != hg::LiftOutcome::Lifted || !F.Arena)
        continue;
      ++Functions;
      std::vector<uint8_t> Bytes = store::serializeFunction(F, BB->Img, Cfg);
      ASSERT_FALSE(Bytes.empty());

      std::optional<hg::FunctionResult> G =
          store::deserializeFunction(Bytes, BB->Img, Cfg);
      ASSERT_TRUE(G.has_value())
          << "fn " << std::hex << F.Entry << " of " << R.Name;
      EXPECT_EQ(G->Entry, F.Entry);
      EXPECT_EQ(G->MayReturn, F.MayReturn);
      EXPECT_EQ(G->Graph.Vertices.size(), F.Graph.Vertices.size());
      EXPECT_EQ(G->Graph.Edges.size(), F.Graph.Edges.size());
      EXPECT_EQ(G->Obligations, F.Obligations);
      EXPECT_EQ(G->Callees, F.Callees);
      EXPECT_EQ(G->Diags.size(), F.Diags.size());
      // The deserialized copy lives in its own arena; its fresh counter
      // resumes where the producer's left off.
      EXPECT_EQ(G->ctx().freshCounter(), F.ctx().freshCounter());

      std::vector<uint8_t> Bytes2 =
          store::serializeFunction(*G, BB->Img, Cfg);
      EXPECT_EQ(Bytes, Bytes2)
          << "re-serializing the deserialized fn " << std::hex << F.Entry
          << " of " << R.Name << " must reproduce the exact bytes";
    }
  }
  EXPECT_GE(Functions, 10u);
}

TEST(StoreRoundTrip, SerializationIsDeterministic) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  hg::LiftConfig Cfg;
  hg::Lifter L(BB->Img, Cfg);
  hg::BinaryResult R = L.liftBinary();
  ASSERT_EQ(R.Outcome, hg::LiftOutcome::Lifted);
  for (const hg::FunctionResult &F : R.Functions)
    EXPECT_EQ(store::serializeFunction(F, BB->Img, Cfg),
              store::serializeFunction(F, BB->Img, Cfg));
}

TEST(StoreRoundTrip, DeserializedGraphPassesStep2) {
  auto BB = corpus::branchLoopBinary();
  ASSERT_TRUE(BB.has_value());
  hg::LiftConfig Cfg;
  hg::Lifter L(BB->Img, Cfg);
  hg::BinaryResult R = L.liftBinary();
  ASSERT_EQ(R.Outcome, hg::LiftOutcome::Lifted);
  exporter::CheckContext CC{BB->Img, Cfg.Sym};
  for (const hg::FunctionResult &F : R.Functions) {
    std::vector<uint8_t> Bytes = store::serializeFunction(F, BB->Img, Cfg);
    auto G = store::deserializeFunction(Bytes, BB->Img, Cfg);
    ASSERT_TRUE(G.has_value());
    exporter::CheckResult C = exporter::checkFunction(CC, *G);
    EXPECT_GT(C.Theorems, 0u);
    EXPECT_EQ(C.Proven, C.Theorems)
        << (C.Failures.empty() ? "" : C.Failures[0]);
  }
}

TEST(StoreRoundTrip, ConfigDigestSeparatesVisibleKnobs) {
  hg::LiftConfig A, B;
  EXPECT_EQ(store::configDigest(A), store::configDigest(B));
  B.EnableJoin = false;
  EXPECT_NE(store::configDigest(A), store::configDigest(B));
  B = A;
  B.Sym.Policy = mem::UnknownPolicy::DestroyAlways;
  EXPECT_NE(store::configDigest(A), store::configDigest(B));
  // Bit-invisible knobs must NOT key the cache: thread count and the
  // wall-clock budget cannot change a lifted graph.
  B = A;
  B.Threads = 8;
  B.MaxSeconds = 1234.5;
  EXPECT_EQ(store::configDigest(A), store::configDigest(B));
}

// --- robustness: every malformation is a clean miss ----------------------

struct CacheHarness {
  std::optional<corpus::BuiltBinary> BB;
  hg::LiftConfig Cfg;
  TempDir Dir;
  explicit CacheHarness(const std::string &Name) : Dir(Name) {
    BB = corpus::callChainBinary();
  }
  /// Cold-populate the store, returning the per-function entry count.
  size_t populate() {
    store::CacheStore Store({Dir.str(), 0, true});
    Cfg.Cache = &Store;
    hg::Lifter L(BB->Img, Cfg);
    hg::BinaryResult R = L.liftBinary();
    Cfg.Cache = nullptr;
    EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted);
    return Store.stats().Stored;
  }
  /// Run a fresh warm lift and return its cache stats.
  store::CacheStats relift() {
    store::CacheStore Store({Dir.str(), 0, true});
    Cfg.Cache = &Store;
    hg::Lifter L(BB->Img, Cfg);
    hg::BinaryResult R = L.liftBinary();
    Cfg.Cache = nullptr;
    EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted);
    return Store.stats();
  }
  std::vector<fs::path> objects() {
    std::vector<fs::path> O;
    for (auto &E : fs::directory_iterator(Dir.Path / "objects"))
      O.push_back(E.path());
    return O;
  }
};

std::vector<uint8_t> slurp(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

void spit(const fs::path &P, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(P, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

TEST(StoreRobustness, WarmRunHitsEverything) {
  CacheHarness H("warm");
  ASSERT_TRUE(H.BB.has_value());
  size_t Stored = H.populate();
  EXPECT_GE(Stored, 2u);
  store::CacheStats S = H.relift();
  EXPECT_EQ(S.Hits, Stored);
  EXPECT_EQ(S.Misses, 0u);
  EXPECT_EQ(S.Validated, Stored) << "every hit must be Step-2 re-proven";
  EXPECT_EQ(S.ValidationFailures, 0u);
}

TEST(StoreRobustness, TruncatedEntryIsCleanMiss) {
  CacheHarness H("trunc");
  ASSERT_TRUE(H.BB.has_value());
  size_t Stored = H.populate();
  auto Objs = H.objects();
  ASSERT_EQ(Objs.size(), Stored);
  for (const fs::path &O : Objs) {
    std::vector<uint8_t> Bytes = slurp(O);
    ASSERT_GT(Bytes.size(), 16u);
    Bytes.resize(Bytes.size() / 2);
    spit(O, Bytes);
  }
  store::CacheStats S = H.relift();
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, Stored);
  EXPECT_EQ(S.Stored, Stored) << "misses must re-lift and re-populate";
}

TEST(StoreRobustness, FlippedByteIsCleanMiss) {
  CacheHarness H("flip");
  ASSERT_TRUE(H.BB.has_value());
  size_t Stored = H.populate();
  for (const fs::path &O : H.objects()) {
    std::vector<uint8_t> Bytes = slurp(O);
    Bytes[Bytes.size() / 2] ^= 0x40; // payload bit flip; checksum catches it
    spit(O, Bytes);
  }
  store::CacheStats S = H.relift();
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, Stored);
}

TEST(StoreRobustness, WrongSchemaVersionIsCleanMiss) {
  CacheHarness H("schema");
  ASSERT_TRUE(H.BB.has_value());
  size_t Stored = H.populate();
  for (const fs::path &O : H.objects()) {
    std::vector<uint8_t> Bytes = slurp(O);
    // Bytes 4..8 hold the schema version (after the 4-byte magic). Bump it
    // and repair the trailing checksum so ONLY the version gate can fire.
    Bytes[4] += 1;
    fixupChecksum(Bytes);
    spit(O, Bytes);
    store::EntryHeader EH;
    EXPECT_FALSE(store::readHeader(Bytes, EH));
  }
  store::CacheStats S = H.relift();
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, Stored);
}

TEST(StoreRobustness, GarbageRefIsCleanMiss) {
  CacheHarness H("ref");
  ASSERT_TRUE(H.BB.has_value());
  size_t Stored = H.populate();
  for (auto &E : fs::directory_iterator(H.Dir.Path / "index")) {
    std::ofstream Out(E.path(), std::ios::trunc);
    Out << "not-a-digest\n";
  }
  store::CacheStats S = H.relift();
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, Stored);
}

TEST(StoreRobustness, ChangedConfigIsCleanMiss) {
  CacheHarness H("cfg");
  ASSERT_TRUE(H.BB.has_value());
  size_t Stored = H.populate();
  ASSERT_GE(Stored, 1u);
  H.Cfg.EnableJoin = false; // result-visible knob -> different digest
  store::CacheStats S = H.relift();
  EXPECT_EQ(S.Hits, 0u);
}

TEST(StoreRobustness, PatchedInstructionBytesAreCleanMiss) {
  // Simulate an incremental rebuild: same layout, one function's bytes
  // changed. Only that function may miss; the others still hit.
  CacheHarness H("patch");
  ASSERT_TRUE(H.BB.has_value());
  size_t Stored = H.populate();
  ASSERT_GE(Stored, 2u);

  // Lift once (uncached) to find a function body to patch.
  hg::Lifter L(H.BB->Img, H.Cfg);
  hg::BinaryResult R = L.liftBinary();
  const hg::FunctionResult *Victim = nullptr;
  for (const hg::FunctionResult &F : R.Functions)
    if (F.Outcome == hg::LiftOutcome::Lifted &&
        (!Victim || F.Entry > Victim->Entry))
      Victim = &F;
  ASSERT_NE(Victim, nullptr);
  std::vector<store::Span> Spans = store::instructionSpans(*Victim);
  ASSERT_FALSE(Spans.empty());

  // Flip a byte of the victim's first instruction in a *copy* of the
  // image (BinaryImage is shared by value via its segment vectors).
  corpus::BuiltBinary Patched = *H.BB;
  bool Done = false;
  for (elf::Segment &Seg : Patched.Img.Segments) {
    uint64_t A = Spans.front().first;
    if (Seg.contains(A)) {
      Seg.Bytes[A - Seg.VAddr] ^= 0x01;
      Done = true;
      break;
    }
  }
  ASSERT_TRUE(Done);

  store::CacheStore Store({H.Dir.str(), 0, true});
  hg::LiftConfig Cfg = H.Cfg;
  Cfg.Cache = &Store;
  hg::Lifter L2(Patched.Img, Cfg);
  (void)L2.liftBinary(); // outcome may legitimately change; digests decide
  store::CacheStats S = Store.stats();
  EXPECT_GE(S.Misses, 1u) << "the patched function must not hit";
  EXPECT_GE(S.Hits, 1u) << "untouched functions must still hit";
}

TEST(StoreRobustness, EvictionKeepsBudget) {
  CacheHarness H("evict");
  ASSERT_TRUE(H.BB.has_value());
  // A 1-byte budget forces eviction after every store.
  store::CacheStore Store({H.Dir.str(), 1, true});
  hg::LiftConfig Cfg;
  Cfg.Cache = &Store;
  hg::Lifter L(H.BB->Img, Cfg);
  hg::BinaryResult R = L.liftBinary();
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted);
  EXPECT_GE(Store.stats().Evictions, 1u);
  uint64_t Left = 0;
  for (auto &E : fs::directory_iterator(H.Dir.Path / "objects"))
    Left += fs::file_size(E.path());
  EXPECT_LE(Left, 1u);
}

TEST(StoreRobustness, NoValidateSkipsStep2) {
  CacheHarness H("novalidate");
  ASSERT_TRUE(H.BB.has_value());
  size_t Stored = H.populate();
  store::CacheStore Store({H.Dir.str(), 0, /*Validate=*/false});
  hg::LiftConfig Cfg;
  Cfg.Cache = &Store;
  hg::Lifter L(H.BB->Img, Cfg);
  hg::BinaryResult R = L.liftBinary();
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted);
  EXPECT_EQ(Store.stats().Hits, Stored);
  EXPECT_EQ(Store.stats().Validated, 0u);
}

// --- facade-level byte identity ------------------------------------------

TEST(StoreSession, WarmReportJsonByteIdenticalToCold) {
  for (auto Make : {corpus::callChainBinary, corpus::branchLoopBinary,
                    corpus::weirdEdgeBinary}) {
    auto BB = Make();
    ASSERT_TRUE(BB.has_value());
    TempDir Dir("session_" + BB->Name);

    auto Render = [&](bool UseCache) {
      Options O;
      if (UseCache)
        O.Cache.Dir = Dir.str();
      Session S(BB->Img, O);
      S.lift();
      S.check();
      std::ostringstream OS;
      S.writeReportJson(OS);
      return OS.str();
    };

    std::string NoCache = Render(false);
    std::string Cold = Render(true);
    std::string Warm = Render(true);
    EXPECT_EQ(NoCache, Cold) << BB->Name
                             << ": cold cached run must not change bytes";
    EXPECT_EQ(Cold, Warm) << BB->Name
                          << ": fully-cached run must not change bytes";
  }
}

TEST(StoreSession, CacheStatsExposedThroughFacade) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  TempDir Dir("facade_stats");
  Options O;
  O.Cache.Dir = Dir.str();
  {
    Session S(BB->Img, O);
    S.lift();
    auto CS = S.cacheStats();
    ASSERT_TRUE(CS.has_value());
    EXPECT_GT(CS->Stored, 0u);
  }
  Session S(BB->Img, O);
  S.lift();
  auto CS = S.cacheStats();
  ASSERT_TRUE(CS.has_value());
  EXPECT_EQ(CS->Misses, 0u);
  EXPECT_GT(CS->Hits, 0u);

  Session NoCache(BB->Img, Options());
  NoCache.lift();
  EXPECT_FALSE(NoCache.cacheStats().has_value());
}

} // namespace
