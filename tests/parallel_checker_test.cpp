//===- parallel_checker_test.cpp - Parallel Step-2 validation ------------===//
//
// The acceptance bar for the parallel Hoare-triple checker: checkBinary()
// with N worker threads accepts and rejects exactly what the serial check
// does — same theorem count, same proven count, same failure messages in
// the same order. Each worker task re-checks one function inside that
// function's own arena, so the only thing parallelism can change is
// scheduling; these tests pin that it changes nothing else. The file name
// keeps the "parallel" stem so the TSAN configuration (-R parallel) races
// it.
//
//===----------------------------------------------------------------------===//

#include "api/Hglift.h"
#include "corpus/Programs.h"
#include "export/HoareChecker.h"

#include <gtest/gtest.h>

using namespace hglift;

namespace {

std::string checkFingerprint(const exporter::CheckResult &C) {
  std::string S = std::to_string(C.Theorems) + "/" + std::to_string(C.Proven);
  for (const std::string &F : C.Failures)
    S += "\n" + F;
  return S;
}

TEST(ParallelChecker, CorpusIdenticalAcrossThreadCounts) {
  // Some corpus binaries (e.g. the stack probe) intentionally fail to
  // lift; the checker must behave identically across thread counts on
  // those too (it skips unlifted functions), so they stay in the loop.
  size_t LiftedBinaries = 0;
  for (auto Make :
       {corpus::straightlineBinary, corpus::branchLoopBinary,
        corpus::callChainBinary, corpus::callbackBinary,
        corpus::weirdEdgeBinary, corpus::recursionBinary,
        corpus::stackProbeBinary}) {
    auto BB = Make();
    ASSERT_TRUE(BB.has_value());
    Session S(BB->Img, Options());
    const hg::BinaryResult &R = S.lift();

    exporter::CheckContext CC{BB->Img, sem::SymConfig()};
    exporter::CheckResult Serial = exporter::checkBinary(CC, R, 1);
    if (R.Outcome == hg::LiftOutcome::Lifted) {
      ++LiftedBinaries;
      EXPECT_GT(Serial.Theorems, 0u);
      EXPECT_EQ(Serial.Proven, Serial.Theorems)
          << (Serial.Failures.empty() ? "" : Serial.Failures[0]);
    }
    for (unsigned T : {2u, 4u, 8u, 0u})
      EXPECT_EQ(checkFingerprint(Serial),
                checkFingerprint(exporter::checkBinary(CC, R, T)))
          << "threads=" << T;
  }
  EXPECT_GE(LiftedBinaries, 5u);
}

TEST(ParallelChecker, MultiFunctionLibraryIdentical) {
  // Many functions is where the fan-out actually schedules: one task per
  // function, merged in function order.
  corpus::GenOptions G;
  G.Seed = 0xc4ec4;
  G.NumFuncs = 8;
  G.TargetInstrs = 40;
  auto BB = corpus::randomLibrary(G);
  ASSERT_TRUE(BB.has_value());
  Options O;
  O.Lift.Threads = 4; // parallel lift feeding the parallel check
  O.Library = true;
  Session S(BB->Img, O);
  const hg::BinaryResult &R = S.lift();

  exporter::CheckContext CC{BB->Img, sem::SymConfig()};
  std::string Serial = checkFingerprint(exporter::checkBinary(CC, R, 1));
  for (unsigned T : {2u, 4u, 8u})
    EXPECT_EQ(Serial, checkFingerprint(exporter::checkBinary(CC, R, T)))
        << "threads=" << T;
}

TEST(ParallelChecker, RejectsTamperedInvariantIdentically) {
  // Rejection paths must be schedule-independent too: corrupt one vertex
  // invariant and require the serial and parallel checks to produce the
  // exact same (non-empty) failure set.
  auto BB = corpus::branchLoopBinary();
  ASSERT_TRUE(BB.has_value());
  Session S(BB->Img, Options());
  hg::BinaryResult R = S.lift(); // mutable copy: we corrupt it below
  ASSERT_EQ(R.Outcome, hg::LiftOutcome::Lifted);

  bool Tampered = false;
  for (hg::FunctionResult &F : R.Functions) {
    for (auto &[K, V] : F.Graph.Vertices) {
      if (!V.Explored || V.Instr.isTerminator())
        continue;
      V.State.P.setReg64(x86::Reg::RBX, F.ctx().mkConst(0x1234567, 64));
      Tampered = true;
      break;
    }
    if (Tampered)
      break;
  }
  ASSERT_TRUE(Tampered);

  exporter::CheckContext CC{BB->Img, sem::SymConfig()};
  exporter::CheckResult Serial = exporter::checkBinary(CC, R, 1);
  EXPECT_LT(Serial.Proven, Serial.Theorems);
  EXPECT_FALSE(Serial.Failures.empty());
  for (unsigned T : {2u, 4u, 8u})
    EXPECT_EQ(checkFingerprint(Serial),
              checkFingerprint(exporter::checkBinary(CC, R, T)))
        << "threads=" << T;
}

TEST(ParallelChecker, RepeatedParallelRunsStable) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  Session S(BB->Img, Options());
  const hg::BinaryResult &R = S.lift();
  exporter::CheckContext CC{BB->Img, sem::SymConfig()};
  std::string First = checkFingerprint(exporter::checkBinary(CC, R, 4));
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(First, checkFingerprint(exporter::checkBinary(CC, R, 4)))
        << "run " << I;
}

} // namespace
