//===- smt_test.cpp - The necessarily-relation solver (Def. 3.6) ---------===//

#include "smt/RelationSolver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace hglift;
using expr::Expr;
using expr::ExprContext;
using expr::Opcode;
using expr::VarClass;
using pred::Pred;
using pred::RelOp;
using smt::AllocClass;
using smt::MemRel;
using smt::Region;
using smt::RelationSolver;

namespace {

struct Fixture {
  ExprContext Ctx;
  RelationSolver Solver{Ctx};
  Pred P{Pred::entry(Ctx)};
  const Expr *Rsp0 = P.reg64(x86::Reg::RSP);
  const Expr *Rdi0 = Ctx.mkVar(VarClass::InitReg, "rdi0");
  const Expr *Rsi0 = Ctx.mkVar(VarClass::InitReg, "rsi0");

  MemRel rel(const Expr *A0, uint32_t S0, const Expr *A1, uint32_t S1) {
    return Solver.relate(Region{A0, S0}, Region{A1, S1}, P);
  }
};

TEST(RelationSolver, ConstantDeltas) {
  Fixture F;
  auto At = [&](int64_t K) { return F.Ctx.mkAddK(F.Rsp0, K); };
  EXPECT_EQ(F.rel(At(0), 8, At(0), 8), MemRel::MustAlias);
  EXPECT_EQ(F.rel(At(0), 8, At(8), 8), MemRel::MustSep);
  EXPECT_EQ(F.rel(At(8), 8, At(0), 8), MemRel::MustSep);
  EXPECT_EQ(F.rel(At(0), 4, At(0), 8), MemRel::MustEnc01);
  EXPECT_EQ(F.rel(At(4), 4, At(0), 8), MemRel::MustEnc01);
  EXPECT_EQ(F.rel(At(0), 8, At(4), 4), MemRel::MustEnc10);
  EXPECT_EQ(F.rel(At(4), 8, At(0), 8), MemRel::MustPartial);
  EXPECT_EQ(F.rel(At(-4), 8, At(0), 8), MemRel::MustPartial);
}

TEST(RelationSolver, ExhaustivePartialOverlapCases) {
  // §1: "two 8 byte regions can partially overlap in 14 ways". Check the
  // classifier over every delta in [-8, 8].
  Fixture F;
  unsigned Partials = 0;
  for (int64_t D = -8; D <= 8; ++D) {
    MemRel R = F.rel(F.Ctx.mkAddK(F.Rsp0, D), 8, F.Rsp0, 8);
    if (D == 0)
      EXPECT_EQ(R, MemRel::MustAlias);
    else if (D <= -8 || D >= 8)
      EXPECT_EQ(R, MemRel::MustSep);
    else {
      EXPECT_EQ(R, MemRel::MustPartial) << "delta " << D;
      ++Partials;
    }
  }
  EXPECT_EQ(Partials, 14u);
}

TEST(RelationSolver, IntervalSeparation) {
  // [rsp0 - 0x20 + 8*i, 8] with i ≤ 2 is separate from [rsp0, 8]: the
  // bounded-stack-array case that licenses return-address integrity.
  Fixture F;
  const Expr *I32 = F.Ctx.mkTrunc(F.Rdi0, 32);
  F.P.addRange(I32, RelOp::ULe, 2);
  const Expr *Idx = F.Ctx.mkZExt(I32, 64);
  const Expr *A = F.Ctx.mkAddK(
      F.Ctx.mkAdd(F.Rsp0,
                  F.Ctx.mkBin(Opcode::Mul, Idx, F.Ctx.mkConst(8, 64))),
      -0x20);
  EXPECT_EQ(F.rel(A, 8, F.Rsp0, 8), MemRel::MustSep);
  // Without the bound the same query is unknown (or a branch point).
  Fixture G;
  const Expr *IdxU = G.Ctx.mkZExt(G.Ctx.mkTrunc(G.Rdi0, 32), 64);
  const Expr *AU = G.Ctx.mkAddK(
      G.Ctx.mkAdd(G.Rsp0,
                  G.Ctx.mkBin(Opcode::Mul, IdxU, G.Ctx.mkConst(8, 64))),
      -0x20);
  EXPECT_EQ(G.rel(AU, 8, G.Rsp0, 8), MemRel::Unknown);
}

TEST(RelationSolver, AllocationClassAssumptions) {
  Fixture F;
  // Stack vs pointer argument: assumed separate, with an obligation.
  EXPECT_EQ(F.rel(F.Rsp0, 8, F.Rdi0, 8), MemRel::MustSep);
  EXPECT_FALSE(F.Solver.assumptions().empty());
  // Stack vs global: assumed separate.
  EXPECT_EQ(F.rel(F.Ctx.mkAddK(F.Rsp0, -16), 8,
                  F.Ctx.mkConst(0x500000, 64), 8),
            MemRel::MustSep);
  // Two pointer arguments: *not* assumed; unknown.
  EXPECT_EQ(F.rel(F.Rdi0, 8, F.Rsi0, 8), MemRel::Unknown);
  // Pointer argument vs global: not assumed (args may point to globals).
  EXPECT_EQ(F.rel(F.Rdi0, 8, F.Ctx.mkConst(0x500000, 64), 8),
            MemRel::Unknown);
}

TEST(RelationSolver, AssumptionsCanBeDisabled) {
  ExprContext Ctx;
  RelationSolver::Config Cfg;
  Cfg.AllocClassAssumptions = false;
  Cfg.UseZ3 = false;
  RelationSolver Solver(Ctx, Cfg);
  Pred P = Pred::entry(Ctx);
  const Expr *Rsp0 = P.reg64(x86::Reg::RSP);
  const Expr *Rdi0 = Ctx.mkVar(VarClass::InitReg, "rdi0");
  EXPECT_EQ(Solver.relate(Region{Rsp0, 8}, Region{Rdi0, 8}, P),
            MemRel::Unknown);
  EXPECT_TRUE(Solver.assumptions().empty());
}

TEST(RelationSolver, ClassifyAddr) {
  Fixture F;
  auto Cls = [&](const Expr *E) { return smt::classifyAddr(E, F.Ctx); };
  EXPECT_EQ(Cls(F.Rsp0), AllocClass::StackFrame);
  EXPECT_EQ(Cls(F.Ctx.mkAddK(F.Rsp0, -100)), AllocClass::StackFrame);
  EXPECT_EQ(Cls(F.Ctx.mkConst(0x404000, 64)), AllocClass::Global);
  EXPECT_EQ(Cls(F.Rdi0), AllocClass::ArgPtr);
  EXPECT_EQ(Cls(F.Ctx.mkAddK(F.Rdi0, 24)), AllocClass::ArgPtr);
  const Expr *Heap = F.Ctx.mkVar(VarClass::External, "ret_malloc@0x1");
  EXPECT_EQ(Cls(Heap), AllocClass::Heap);
  // Indexed global: still global space.
  const Expr *Idx = F.Ctx.mkZExt(F.Ctx.mkTrunc(F.Rdi0, 32), 64);
  EXPECT_EQ(Cls(F.Ctx.mkAddK(
                F.Ctx.mkBin(Opcode::Mul, Idx, F.Ctx.mkConst(8, 64)),
                0x404000)),
            AllocClass::Global);
  // Mixed bases: Other.
  EXPECT_EQ(Cls(F.Ctx.mkAdd(F.Rsp0, F.Rdi0)), AllocClass::Other);
}

TEST(RelationSolver, MustEqual) {
  Fixture F;
  EXPECT_TRUE(F.Solver.mustEqual(F.Ctx.mkAddK(F.Rsp0, 8),
                                 F.Ctx.mkAddK(F.Ctx.mkAddK(F.Rsp0, 16), -8),
                                 F.P));
  EXPECT_FALSE(F.Solver.mustEqual(F.Rsp0, F.Rdi0, F.P));
}

#ifdef HGLIFT_WITH_Z3
TEST(RelationSolver, Z3ResolvesResidualQueries) {
  // An unsigned lower bound is invisible to the signed interval core (the
  // signed view wraps), so only the bit-vector backend can prove the
  // separation.
  Fixture F;
  F.P.addRange(F.Rdi0, RelOp::UGe, 0x600000);
  EXPECT_EQ(F.rel(F.Rdi0, 8, F.Ctx.mkConst(0x500000, 64), 8),
            MemRel::MustSep);
  EXPECT_GT(F.Solver.stats().Z3Queries, 0u);
  EXPECT_GT(F.Solver.stats().Z3Hits, 0u);
}

TEST(RelationSolver, Z3ProvesAlias) {
  // x ≥u c ∧ x ≤u c pins x = c, but the two clauses only meet in the
  // bit-vector theory (UGe contributes nothing to the signed interval).
  Fixture F;
  F.P.addRange(F.Rdi0, RelOp::UGe, 0x7fffffffffff0000ull);
  F.P.addRange(F.Rdi0, RelOp::ULe, 0x7fffffffffff0000ull);
  EXPECT_EQ(F.rel(F.Rdi0, 8,
                  F.Ctx.mkConst(0x7fffffffffff0000ull, 64), 8),
            MemRel::MustAlias);
}
#endif

TEST(RelationSolver, StatsAccounting) {
  Fixture F;
  auto Before = F.Solver.stats().Queries;
  F.rel(F.Rsp0, 8, F.Ctx.mkAddK(F.Rsp0, 32), 8);
  EXPECT_EQ(F.Solver.stats().Queries, Before + 1);
  EXPECT_GT(F.Solver.stats().SyntacticHits, 0u);
}

/// Property: syntactic decisions agree with concrete evaluation.
TEST(RelationSolverProperty, DecisionsSoundOnConstOffsets) {
  ExprContext Ctx;
  RelationSolver Solver(Ctx);
  Pred P = Pred::entry(Ctx);
  const Expr *Rsp0 = P.reg64(x86::Reg::RSP);
  Rng R(0x5150);
  for (int Iter = 0; Iter < 2000; ++Iter) {
    int64_t D0 = R.range(-64, 64), D1 = R.range(-64, 64);
    uint32_t S0 = R.chance(1, 2) ? 8 : 4, S1 = R.chance(1, 2) ? 8 : 4;
    MemRel Rel = Solver.relate(Region{Ctx.mkAddK(Rsp0, D0), S0},
                               Region{Ctx.mkAddK(Rsp0, D1), S1}, P);
    // Concrete check with an arbitrary base.
    uint64_t BaseV = 0x7fff0000;
    uint64_t A0 = BaseV + static_cast<uint64_t>(D0);
    uint64_t A1 = BaseV + static_cast<uint64_t>(D1);
    bool Alias = A0 == A1 && S0 == S1;
    bool Sep = A0 + S0 <= A1 || A1 + S1 <= A0;
    bool Enc01 = A0 >= A1 && A0 + S0 <= A1 + S1;
    bool Enc10 = A1 >= A0 && A1 + S1 <= A0 + S0;
    switch (Rel) {
    case MemRel::MustAlias:
      EXPECT_TRUE(Alias);
      break;
    case MemRel::MustSep:
      EXPECT_TRUE(Sep);
      break;
    case MemRel::MustEnc01:
      EXPECT_TRUE(Enc01);
      break;
    case MemRel::MustEnc10:
      EXPECT_TRUE(Enc10);
      break;
    case MemRel::MustPartial:
      EXPECT_TRUE(!Alias && !Sep && !Enc01 && !Enc10);
      break;
    case MemRel::Unknown:
      ADD_FAILURE() << "constant deltas must always be decided";
      break;
    }
  }
}

} // namespace
