//===- report_schema_test.cpp - Golden-file schema lock ------------------===//
//
// Locks the *shape* of the two machine-readable artifacts:
//
//   * --report-json: the set of key paths (with value types) that a
//     maximal report produces, in tests/golden/report_schema_v<N>.txt;
//   * --trace: the per-event-type field sets, in
//     tests/golden/trace_schema_v<N>.txt.
//
// <N> is the schema version constant, so changing the shape of either
// artifact forces BOTH a golden update AND a version bump: the goldens are
// looked up under the current version, and a shape change with an
// unchanged version fails against the committed file. Regenerate with
// HGLIFT_REGEN_GOLDEN=1 after bumping diag::ReportSchemaVersion /
// diag::TraceSchemaVersion.
//
//===----------------------------------------------------------------------===//

#include "api/Hglift.h"
#include "corpus/Programs.h"
#include "diag/Json.h"
#include "diag/Trace.h"
#include "driver/Report.h"
#include "export/HoareChecker.h"
#include "fuzz/Campaign.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#ifndef HGLIFT_GOLDEN_DIR
#error "HGLIFT_GOLDEN_DIR must point at tests/golden"
#endif

using namespace hglift;

namespace {

const char *typeName(const diag::JValue &V) {
  switch (V.K) {
  case diag::JValue::Kind::Null:
    return "null";
  case diag::JValue::Kind::Bool:
    return "bool";
  case diag::JValue::Kind::Num:
    return "num";
  case diag::JValue::Kind::Str:
    return "str";
  case diag::JValue::Kind::Arr:
    return "arr";
  case diag::JValue::Kind::Obj:
    return "obj";
  }
  return "?";
}

/// Flatten a JSON document into "path: type" lines; array elements
/// collapse to "[]" so the schema is independent of instance counts.
void collectPaths(const diag::JValue &V, const std::string &Path,
                  std::set<std::string> &Out) {
  Out.insert((Path.empty() ? "." : Path) + ": " + typeName(V));
  if (V.isObj())
    for (const auto &[K, Child] : V.Obj)
      collectPaths(Child, Path + "." + K, Out);
  if (V.isArr())
    for (const diag::JValue &Child : V.Arr)
      collectPaths(Child, Path + "[]", Out);
}

/// Compare Lines against the golden file (or rewrite it when
/// HGLIFT_REGEN_GOLDEN is set).
void checkGolden(const std::string &File, const std::set<std::string> &Lines,
                 const std::string &WhatChanged) {
  std::string Path = std::string(HGLIFT_GOLDEN_DIR) + "/" + File;
  if (std::getenv("HGLIFT_REGEN_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    for (const std::string &L : Lines)
      Out << L << "\n";
    GTEST_SKIP() << "regenerated " << Path;
  }

  std::ifstream In(Path);
  ASSERT_TRUE(In.good())
      << Path << " is missing. If you changed the artifact shape, bump the "
      << "schema version constant in src/diag/Diag.h and regenerate the "
      << "golden with HGLIFT_REGEN_GOLDEN=1 ctest -R report_schema.";
  std::set<std::string> Golden;
  std::string L;
  while (std::getline(In, L))
    if (!L.empty())
      Golden.insert(L);

  for (const std::string &Have : Lines)
    EXPECT_TRUE(Golden.count(Have))
        << "new key path not in " << File << ": `" << Have << "`\n"
        << WhatChanged;
  for (const std::string &Want : Golden)
    EXPECT_TRUE(Lines.count(Want))
        << "key path vanished from the artifact: `" << Want << "`\n"
        << WhatChanged;
}

const char *BumpMsg =
    "Changing the shape of a versioned artifact requires bumping the "
    "schema version in src/diag/Diag.h AND regenerating tests/golden "
    "(HGLIFT_REGEN_GOLDEN=1). Consumers key on schema_version.";

/// A maximal report: a failing binary (verification error + obligation), a
/// binary with unsoundness annotations, and a clean checked binary with a
/// tampered invariant so the check section carries diagnostics too.
std::set<std::string> maximalReportPaths() {
  std::set<std::string> Paths;
  auto addReport = [&](const hg::BinaryResult &R,
                       const exporter::CheckResult *C) {
    std::ostringstream OS;
    driver::writeReportJson(OS, R, C);
    auto V = diag::parseJson(OS.str());
    EXPECT_TRUE(V.has_value()) << OS.str();
    if (V)
      collectPaths(*V, "", Paths);
  };

  {
    auto BB = corpus::overflowBinary();
    EXPECT_TRUE(BB.has_value());
    Session S(BB->Img, Options());
    const hg::BinaryResult &R = S.lift();
    const exporter::CheckResult &C = S.check();
    addReport(R, &C);
  }
  {
    auto BB = corpus::callbackBinary();
    EXPECT_TRUE(BB.has_value());
    Session S(BB->Img, Options());
    addReport(S.lift(), nullptr);
  }
  {
    // Tampered invariant: the check section's diagnostics (clause ids,
    // clause text) must appear in the schema.
    auto BB = corpus::branchLoopBinary();
    EXPECT_TRUE(BB.has_value());
    Session S(BB->Img, Options());
    hg::BinaryResult R = S.lift(); // mutable copy: corrupted below
    for (hg::FunctionResult &F : R.Functions) {
      for (auto &[K, V] : F.Graph.Vertices)
        if (V.Explored && !V.Instr.isTerminator()) {
          V.State.P.setReg64(x86::Reg::RBX, F.ctx().mkConst(0xbad, 64));
          break;
        }
      break;
    }
    exporter::CheckContext CC{BB->Img, sem::SymConfig()};
    exporter::CheckResult C = exporter::checkBinary(CC, R);
    EXPECT_LT(C.Proven, C.Theorems);
    addReport(R, &C);
  }
  return Paths;
}

TEST(ReportSchema, MatchesGolden) {
  checkGolden("report_schema_v" +
                  std::to_string(diag::ReportSchemaVersion) + ".txt",
              maximalReportPaths(), BumpMsg);
}

TEST(ReportSchema, EveryDiagnosticSerializesFullProvenance) {
  // Field-presence invariant independent of the golden: every serialized
  // diagnostic carries the complete provenance object.
  auto BB = corpus::overflowBinary();
  ASSERT_TRUE(BB.has_value());
  Session S(BB->Img, Options());
  std::ostringstream OS;
  S.writeReportJson(OS);
  auto V = diag::parseJson(OS.str());
  ASSERT_TRUE(V.has_value());

  size_t Checked = 0;
  const diag::JValue *Fns = V->get("functions");
  ASSERT_TRUE(Fns && Fns->isArr());
  for (const diag::JValue &F : Fns->Arr) {
    const diag::JValue *Diags = F.get("diagnostics");
    ASSERT_TRUE(Diags && Diags->isArr());
    for (const diag::JValue &D : Diags->Arr) {
      ++Checked;
      EXPECT_FALSE(D.str("kind").empty());
      EXPECT_FALSE(D.str("message").empty());
      const diag::JValue *P = D.get("provenance");
      ASSERT_TRUE(P && P->isObj());
      for (const char *Key :
           {"origin", "function", "addr", "mnemonic", "clause"})
        EXPECT_TRUE(P->get(Key)) << "provenance field missing: " << Key;
      EXPECT_TRUE(P->get("clause_id") && P->get("clause_id")->isNum());
      EXPECT_TRUE(P->get("queries") && P->get("queries")->isArr());
      EXPECT_NE(P->str("function"), "0x0");
    }
  }
  EXPECT_GT(Checked, 0u);
}

/// Per-event-type field sets of a trace covering lifting, fixpoint
/// iteration, solver decisions, and the Step-2 check.
std::set<std::string> maximalTracePaths() {
  std::set<std::string> Fields;
  std::ostringstream OS;
  {
    diag::Tracer T(OS, "schema");
    diag::TracerScope Scope(T);
    auto BB = corpus::overflowBinary();
    EXPECT_TRUE(BB.has_value());
    Session S(BB->Img, Options());
    S.lift();
    S.check();
  }
  std::istringstream In(OS.str());
  std::string Line;
  while (std::getline(In, Line)) {
    auto V = diag::parseJson(Line);
    EXPECT_TRUE(V.has_value()) << Line;
    if (!V || !V->isObj())
      continue;
    std::string Ev = V->str("ev", "?");
    for (const auto &[K, Child] : V->Obj)
      Fields.insert(Ev + "." + K + ": " + typeName(Child));
  }
  return Fields;
}

TEST(TraceSchema, MatchesGolden) {
  checkGolden("trace_schema_v" + std::to_string(diag::TraceSchemaVersion) +
                  ".txt",
              maximalTracePaths(), BumpMsg);
}

/// A maximal --fuzz-json report: fuzzing runs, a probed-and-killed mutant
/// per layer, and a reduction record, so every section of the schema is
/// populated.
std::set<std::string> maximalFuzzPaths() {
  fuzz::FuzzOptions O;
  O.Seed = 1;
  O.Runs = 2;
  O.MutateSemantics = true;
  O.MutantFilter = {"jcc-drop-fallthrough", "add-imm-off-by-one"};
  O.ReduceMutant = "jcc-drop-fallthrough";
  O.ReproDir = ::testing::TempDir();

  std::ostringstream Log;
  fuzz::CampaignResult R = fuzz::runCampaign(O, Log);
  EXPECT_TRUE(R.Error.empty()) << R.Error;
  std::ostringstream OS;
  fuzz::writeFuzzJson(OS, O, R);
  auto V = diag::parseJson(OS.str());
  EXPECT_TRUE(V.has_value()) << OS.str();
  std::set<std::string> Paths;
  if (V) {
    EXPECT_EQ(V->num("fuzz_schema_version"), double(diag::FuzzSchemaVersion));
    collectPaths(*V, "", Paths);
  }
  return Paths;
}

TEST(FuzzSchema, MatchesGolden) {
  checkGolden("fuzz_schema_v" + std::to_string(diag::FuzzSchemaVersion) +
                  ".txt",
              maximalFuzzPaths(), BumpMsg);
}

} // namespace
