//===- symexec_test.cpp - Differential testing of τ (Lemma 4.5) ----------===//
//
// The paper assumes the instruction semantics τ is correct:
//
//   s →B s' ∧ s ⊢ P  ⟹  ∃Q ∈ τ(P, M) · s' ⊢ Q
//
// Ours is hand-written, so we check it differentially: for randomly
// generated single instructions and random concrete start states, execute
// concretely with the Machine and symbolically with SymExec from the
// matching entry predicate, then verify some symbolic successor covers the
// concrete result (register values via evaluation under the initial-state
// valuation).
//
//===----------------------------------------------------------------------===//

#include "corpus/ProgramBuilder.h"
#include "semantics/Machine.h"
#include "semantics/SymExec.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace hglift;
using namespace hglift::x86;
using corpus::ProgramBuilder;
using expr::Expr;
using expr::ExprContext;
using sem::CtrlKind;
using sem::Machine;
using sem::StepOut;
using sem::Succ;
using sem::SymExec;
using sem::SymState;

namespace {

/// Emit one random non-control instruction.
void emitRandomInstr(Asm &A, Rng &R) {
  static const Reg Regs[] = {Reg::RAX, Reg::RCX, Reg::RDX, Reg::RBX,
                             Reg::RSI, Reg::RDI, Reg::R8,  Reg::R9,
                             Reg::R12, Reg::R15};
  auto Pick = [&]() { return Regs[R.below(std::size(Regs))]; };
  unsigned Sz = R.chance(1, 3) ? 4 : 8;
  Reg D = Pick(), S = Pick();
  switch (R.below(14)) {
  case 0:
    A.movRR(D, S, Sz);
    break;
  case 1:
    A.movRI(D, R.range(-100000, 100000), Sz);
    break;
  case 2:
    A.addRR(D, S, Sz);
    break;
  case 3:
    A.subRR(D, S, Sz);
    break;
  case 4:
    A.arithRR(Mnemonic::And, D, S, Sz);
    break;
  case 5:
    A.arithRR(Mnemonic::Or, D, S, Sz);
    break;
  case 6:
    A.arithRR(Mnemonic::Xor, D, S, Sz);
    break;
  case 7:
    A.imulRRI(D, S, static_cast<int32_t>(R.range(-9, 9)), Sz == 4 ? 4 : 8);
    break;
  case 8:
    A.shiftRI(R.chance(1, 2) ? Mnemonic::Shl : Mnemonic::Shr, D,
              static_cast<uint8_t>(R.range(1, 31)), Sz);
    break;
  case 9:
    A.leaRM(D, MemOperand{S, Pick(), static_cast<uint8_t>(1u << R.below(4)),
                          static_cast<int32_t>(R.range(-64, 64)), false},
            8);
    break;
  case 10:
    A.negR(D, Sz);
    break;
  case 11:
    A.notR(D, Sz);
    break;
  case 12:
    A.movzxRR(D, S, R.chance(1, 2) ? 1 : 2, Sz);
    break;
  case 13:
    A.incR(D, Sz);
    break;
  }
}

TEST(SymExecDifferential, SingleInstructionCoverage) {
  Rng R(0xd1ff);
  for (int Iter = 0; Iter < 400; ++Iter) {
    ProgramBuilder PB("diff");
    Asm &A = PB.text();
    Asm::Label F = A.newLabel();
    A.bind(F);
    emitRandomInstr(A, R);
    A.ret();
    auto BB = PB.build(F);
    ASSERT_TRUE(BB.has_value());

    // Decode the instruction under test.
    size_t Avail;
    const uint8_t *Bytes = BB->Img.bytesAt(BB->Img.Entry, Avail);
    Instr I = decodeInstr(Bytes, Avail, BB->Img.Entry);
    ASSERT_TRUE(I.isValid());

    // Concrete: random start state.
    Machine M(BB->Img, R.next());
    M.setupCall(BB->Img.Entry);
    std::array<uint64_t, NumGPRs> Init;
    for (unsigned RI = 0; RI < NumGPRs; ++RI) {
      if (regFromNum(RI) == Reg::RSP) {
        Init[RI] = M.reg(Reg::RSP);
        continue;
      }
      Init[RI] = R.chance(1, 3) ? R.below(1000) : R.next();
      M.setReg(regFromNum(RI), Init[RI]);
    }
    uint64_t RetAddr = M.load(M.reg(Reg::RSP), 8);
    ASSERT_EQ(M.step(), Machine::Status::Running);

    // Symbolic: step τ from the entry predicate.
    ExprContext Ctx;
    smt::RelationSolver Solver(Ctx);
    SymExec Exec(Ctx, Solver, BB->Img, sem::SymConfig());
    const Expr *RetSym =
        Ctx.mkVar(expr::VarClass::RetSym, "S_f", 64, BB->Img.Entry);
    SymState S0;
    S0.P = pred::Pred::entry(Ctx, RetSym);
    S0.M.Forest.push_back(
        mem::MemTree{{smt::Region{S0.P.reg64(Reg::RSP), 8}}, {}});
    StepOut Out = Exec.step(S0, I, RetSym);
    ASSERT_FALSE(Out.VerifError) << I.str() << ": " << Out.VerifReason;
    ASSERT_FALSE(Out.Succs.empty()) << I.str();

    // Valuation of the initial-state variables.
    auto Vars = [&](uint32_t Id) -> uint64_t {
      const expr::VarInfo &VI = Ctx.varInfo(Id);
      if (VI.Cls == expr::VarClass::RetSym)
        return RetAddr;
      for (unsigned RI = 0; RI < NumGPRs; ++RI)
        if (VI.Name == regName(regFromNum(RI)) + "0")
          return Init[RI];
      return 0; // fresh variables handled below
    };
    auto InitMem = [&](uint64_t Addr, uint32_t Size) {
      return M.load(Addr, Size); // memory unchanged by these instructions
    };

    bool Covered = false;
    for (const Succ &S : Out.Succs) {
      if (S.K != CtrlKind::Fall || S.NextAddr != M.Rip)
        continue;
      bool AllMatch = true;
      for (unsigned RI = 0; RI < NumGPRs && AllMatch; ++RI) {
        const Expr *V = S.S.P.reg64(regFromNum(RI));
        if (V->hasFreshLeaf())
          continue; // havoc: covers anything
        auto EV = expr::evalExpr(V, Vars, InitMem);
        AllMatch &= EV.has_value() && *EV == M.reg(regFromNum(RI));
      }
      Covered |= AllMatch;
    }
    EXPECT_TRUE(Covered) << "iter " << Iter << ": " << I.str()
                         << " concrete result not covered";
  }
}

TEST(SymExecDifferential, ConditionalBranchesBothWays) {
  Rng R(0xbb);
  for (int Iter = 0; Iter < 300; ++Iter) {
    ProgramBuilder PB("diffjcc");
    Asm &A = PB.text();
    Asm::Label F = A.newLabel(), T = A.newLabel();
    static const Cond Conds[] = {Cond::E, Cond::NE, Cond::B,  Cond::AE,
                                 Cond::BE, Cond::A, Cond::L,  Cond::GE,
                                 Cond::LE, Cond::G};
    Cond CC = Conds[R.below(std::size(Conds))];
    int32_t K = static_cast<int32_t>(R.range(-100, 100));
    A.bind(F);
    A.cmpRI(Reg::RDI, K, 8);
    A.jccL(CC, T);
    A.movRI(Reg::RAX, 0, 8);
    A.ret();
    A.bind(T);
    A.movRI(Reg::RAX, 1, 8);
    A.ret();
    auto BB = PB.build(F);
    ASSERT_TRUE(BB.has_value());

    uint64_t Rdi = R.chance(1, 2)
                       ? static_cast<uint64_t>(R.range(-110, 110))
                       : R.next();

    Machine M(BB->Img);
    M.setupCall(BB->Img.Entry);
    M.setReg(Reg::RDI, Rdi);
    ASSERT_EQ(M.run(10), Machine::Status::Returned);
    uint64_t Taken = M.reg(Reg::RAX);

    // Symbolic: lift the cmp, then the jcc; the branch whose clause admits
    // the concrete rdi must lead the right way.
    ExprContext Ctx;
    smt::RelationSolver Solver(Ctx);
    SymExec Exec(Ctx, Solver, BB->Img, sem::SymConfig());
    const Expr *RetSym =
        Ctx.mkVar(expr::VarClass::RetSym, "S_f", 64, BB->Img.Entry);
    SymState S0;
    S0.P = pred::Pred::entry(Ctx, RetSym);
    size_t Avail;
    const uint8_t *Bytes = BB->Img.bytesAt(BB->Img.Entry, Avail);
    Instr CmpI = decodeInstr(Bytes, Avail, BB->Img.Entry);
    StepOut O1 = Exec.step(S0, CmpI, RetSym);
    ASSERT_EQ(O1.Succs.size(), 1u);
    const uint8_t *B2 = BB->Img.bytesAt(CmpI.nextAddr(), Avail);
    Instr JccI = decodeInstr(B2, Avail, CmpI.nextAddr());
    ASSERT_EQ(JccI.Mn, Mnemonic::Jcc);
    StepOut O2 = Exec.step(O1.Succs[0].S, JccI, RetSym);

    auto Vars = [&](uint32_t Id) -> uint64_t {
      return Ctx.varInfo(Id).Name == "rdi0" ? Rdi : 0;
    };
    auto Mem = [](uint64_t, uint32_t) -> uint64_t { return 0; };
    uint64_t WantRip = Taken ? static_cast<uint64_t>(JccI.Ops[0].Imm)
                             : JccI.nextAddr();
    bool Covered = false;
    for (const Succ &S : O2.Succs) {
      if (S.NextAddr != WantRip)
        continue;
      // The successor's range clauses must hold for the concrete rdi.
      bool ClausesOK = true;
      for (const pred::RangeClause &C : S.S.P.ranges()) {
        auto V = expr::evalExpr(C.E, Vars, Mem);
        if (!V) {
          ClausesOK = false;
          break;
        }
        // reuse Pred::holds by building a tiny predicate? simpler: trust
        // intervalOf? Direct check:
        int64_t SV = static_cast<int64_t>(*V);
        int64_t SB = static_cast<int64_t>(C.Bound);
        switch (C.Op) {
        case pred::RelOp::Eq:
          ClausesOK &= *V == C.Bound;
          break;
        case pred::RelOp::Ne:
          ClausesOK &= *V != C.Bound;
          break;
        case pred::RelOp::ULt:
          ClausesOK &= *V < C.Bound;
          break;
        case pred::RelOp::ULe:
          ClausesOK &= *V <= C.Bound;
          break;
        case pred::RelOp::UGe:
          ClausesOK &= *V >= C.Bound;
          break;
        case pred::RelOp::UGt:
          ClausesOK &= *V > C.Bound;
          break;
        case pred::RelOp::SLt:
          ClausesOK &= SV < SB;
          break;
        case pred::RelOp::SLe:
          ClausesOK &= SV <= SB;
          break;
        case pred::RelOp::SGe:
          ClausesOK &= SV >= SB;
          break;
        case pred::RelOp::SGt:
          ClausesOK &= SV > SB;
          break;
        }
      }
      Covered |= ClausesOK;
    }
    EXPECT_TRUE(Covered) << "cond " << condName(CC) << " K=" << K
                         << " rdi=" << Rdi << " taken=" << Taken;
  }
}

} // namespace
