//===- hoare_checker_test.cpp - Step 2 checker + Isabelle export ---------===//

#include "api/Hglift.h"
#include "corpus/Programs.h"
#include "export/HoareChecker.h"
#include "export/IsabelleExport.h"

#include <gtest/gtest.h>

using namespace hglift;

namespace {

class CorpusCheck : public ::testing::TestWithParam<int> {};

std::optional<corpus::BuiltBinary> corpusBinary(int Which) {
  switch (Which) {
  case 0:
    return corpus::straightlineBinary();
  case 1:
    return corpus::branchLoopBinary();
  case 2:
    return corpus::jumpTableBinary(9);
  case 3:
    return corpus::callChainBinary();
  case 4:
    return corpus::callbackBinary();
  case 5:
    return corpus::ret2winBinary();
  case 6:
    return corpus::weirdEdgeBinary();
  default: {
    corpus::GenOptions G;
    G.Seed = static_cast<uint64_t>(Which) * 0x9e37;
    G.NumFuncs = 4;
    G.TargetInstrs = 45;
    G.JumpTablePct = 30;
    return corpus::randomBinary(G);
  }
  }
}

/// Every edge of every lifted corpus binary proves: the full Step-2
/// validation the paper reports for Table 2 ("Without exception, all
/// Hoare triples could be proven automatically").
TEST_P(CorpusCheck, AllTriplesProve) {
  auto BB = corpusBinary(GetParam());
  ASSERT_TRUE(BB.has_value());
  Session S(BB->Img, Options());
  const hg::BinaryResult &R = S.lift();
  ASSERT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
  const exporter::CheckResult &C = S.check();
  EXPECT_GT(C.Theorems, 0u);
  EXPECT_EQ(C.Proven, C.Theorems)
      << (C.Failures.empty() ? "" : C.Failures[0]);
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusCheck, ::testing::Range(0, 14));

/// Sabotage: weakening a vertex invariant into nonsense must be caught —
/// the checker really does depend on the stored invariants.
TEST(HoareChecker, DetectsTamperedInvariant) {
  auto BB = corpus::branchLoopBinary();
  ASSERT_TRUE(BB.has_value());
  Session S(BB->Img, Options());
  hg::BinaryResult R = S.lift(); // mutable copy: we corrupt it below
  ASSERT_EQ(R.Outcome, hg::LiftOutcome::Lifted);

  // Find a function with at least two vertices and corrupt one: claim a
  // register holds a bogus constant.
  bool Tampered = false;
  for (hg::FunctionResult &F : R.Functions) {
    for (auto &[K, V] : F.Graph.Vertices) {
      if (!V.Explored || V.Instr.isTerminator())
        continue;
      V.State.P.setReg64(x86::Reg::RBX, F.ctx().mkConst(0x1234567, 64));
      Tampered = true;
      break;
    }
    if (Tampered)
      break;
  }
  ASSERT_TRUE(Tampered);
  // Hand-modified results go through the decoupled checker entry point:
  // it consumes (image, semantics config, result) with no Lifter in sight.
  exporter::CheckContext CC{BB->Img, sem::SymConfig()};
  exporter::CheckResult C = exporter::checkBinary(CC, R);
  EXPECT_LT(C.Proven, C.Theorems)
      << "a corrupted invariant must fail re-verification";
}

TEST(HoareChecker, SkipsRejectedFunctions) {
  auto BB = corpus::overflowBinary();
  ASSERT_TRUE(BB.has_value());
  Session S(BB->Img, Options());
  const hg::BinaryResult &R = S.lift();
  ASSERT_NE(R.Outcome, hg::LiftOutcome::Lifted);
  const exporter::CheckResult &C = S.check();
  // Rejected functions produce no theorems (there is no HG to validate).
  for (const hg::FunctionResult &F : R.Functions)
    if (F.Outcome != hg::LiftOutcome::Lifted)
      SUCCEED();
  EXPECT_TRUE(C.Failures.empty());
}

// --- Isabelle export ---------------------------------------------------------

TEST(IsabelleExport, WellFormedTheory) {
  auto BB = corpus::callChainBinary();
  ASSERT_TRUE(BB.has_value());
  Session S(BB->Img, Options());
  const hg::BinaryResult &R = S.lift();
  ASSERT_EQ(R.Outcome, hg::LiftOutcome::Lifted);

  exporter::IsabelleOptions Opts;
  Opts.TheoryName = "call_chain_hg";
  size_t Lemmas = 0;
  std::string Thy =
      exporter::exportBinary(S.scratchContext(), R, Opts, &Lemmas);

  EXPECT_NE(Thy.find("theory call_chain_hg"), std::string::npos);
  EXPECT_NE(Thy.find("imports"), std::string::npos);
  EXPECT_EQ(Thy.rfind("end\n"), Thy.size() - 4);

  // One lemma per edge.
  size_t TotalEdges = 0;
  for (const hg::FunctionResult &F : R.Functions)
    TotalEdges += F.Graph.Edges.size();
  EXPECT_EQ(Lemmas, TotalEdges);
  size_t Count = 0, Pos = 0;
  while ((Pos = Thy.find("\nlemma ", Pos)) != std::string::npos) {
    ++Count;
    ++Pos;
  }
  EXPECT_EQ(Count, TotalEdges);

  // One definition per vertex.
  size_t Defs = 0;
  Pos = 0;
  while ((Pos = Thy.find("\ndefinition ", Pos)) != std::string::npos) {
    ++Defs;
    ++Pos;
  }
  size_t TotalVertices = 0;
  for (const hg::FunctionResult &F : R.Functions)
    TotalVertices += F.Graph.numStates();
  EXPECT_EQ(Defs, TotalVertices);
}

TEST(IsabelleExport, ObligationsAppear) {
  auto BB = corpus::ret2winBinary();
  ASSERT_TRUE(BB.has_value());
  Session S(BB->Img, Options());
  const hg::BinaryResult &R = S.lift();
  exporter::IsabelleOptions Opts;
  std::string Thy = exporter::exportBinary(S.scratchContext(), R, Opts);
  EXPECT_NE(Thy.find("MUST PRESERVE"), std::string::npos)
      << "proof obligations are exported with the theory (§5.2)";
}

TEST(IsabelleExport, TermTranslation) {
  expr::ExprContext Ctx;
  const expr::Expr *X = Ctx.mkVar(expr::VarClass::StackBase, "rsp0");
  const expr::Expr *E = Ctx.mkAddK(X, -16);
  std::string T = exporter::isabelleTerm(Ctx, E);
  EXPECT_NE(T.find("rsp0"), std::string::npos);
  const expr::Expr *D = Ctx.mkDeref(E, 8);
  std::string TD = exporter::isabelleTerm(Ctx, D);
  EXPECT_NE(TD.find("mem_read"), std::string::npos);
}

} // namespace
