//===- isa_ext_test.cpp - rotate / bswap / bit-scan coverage -------------===//

#include "corpus/ProgramBuilder.h"
#include "hg/Lifter.h"
#include "semantics/Machine.h"
#include "x86/Decoder.h"

#include <gtest/gtest.h>

using namespace hglift;
using namespace hglift::x86;
using corpus::ProgramBuilder;
using sem::Machine;

namespace {

TEST(IsaExt, DecodeRoundTrip) {
  Asm A(0x400000);
  A.rotRI(Mnemonic::Rol, Reg::RAX, 9, 8);
  A.rotRI(Mnemonic::Ror, Reg::R11, 3, 4);
  A.bswapR(Reg::RDX, 8);
  A.bswapR(Reg::R9, 4);
  A.bsfRR(Reg::RCX, Reg::RDI, 8);
  A.bsrRR(Reg::R8, Reg::RSI, 4);
  ASSERT_TRUE(A.finalize());
  const auto &Code = A.code();
  size_t Off = 0;
  std::vector<Instr> Is;
  while (Off < Code.size()) {
    Instr I = decodeInstr(Code.data() + Off, Code.size() - Off,
                          0x400000 + Off);
    ASSERT_TRUE(I.isValid()) << "offset " << Off;
    Is.push_back(I);
    Off += I.Length;
  }
  ASSERT_EQ(Is.size(), 6u);
  EXPECT_EQ(Is[0].Mn, Mnemonic::Rol);
  EXPECT_EQ(Is[0].Ops[1].Imm, 9);
  EXPECT_EQ(Is[1].Mn, Mnemonic::Ror);
  EXPECT_EQ(Is[1].Ops[0].R, Reg::R11);
  EXPECT_EQ(Is[1].Ops[0].Size, 4);
  EXPECT_EQ(Is[2].Mn, Mnemonic::Bswap);
  EXPECT_EQ(Is[2].Ops[0].Size, 8);
  EXPECT_EQ(Is[3].Mn, Mnemonic::Bswap);
  EXPECT_EQ(Is[3].Ops[0].R, Reg::R9);
  EXPECT_EQ(Is[4].Mn, Mnemonic::Bsf);
  EXPECT_EQ(Is[4].Ops[1].R, Reg::RDI);
  EXPECT_EQ(Is[5].Mn, Mnemonic::Bsr);
  EXPECT_EQ(Is[5].Ops[0].R, Reg::R8);
}

struct Runner {
  ProgramBuilder PB{"isa_ext"};
  Asm::Label F;
  Runner() : F(PB.text().newLabel()) { PB.text().bind(F); }
  uint64_t run(uint64_t Rdi) {
    auto BB = PB.build(F);
    EXPECT_TRUE(BB.has_value());
    Machine M(BB->Img);
    M.setupCall(BB->Img.Entry);
    M.setReg(Reg::RDI, Rdi);
    EXPECT_EQ(M.run(100), Machine::Status::Returned);
    return M.reg(Reg::RAX);
  }
};

TEST(IsaExt, MachineRotates) {
  {
    Runner R;
    R.PB.text().movRR(Reg::RAX, Reg::RDI, 8);
    R.PB.text().rotRI(Mnemonic::Rol, Reg::RAX, 8, 8);
    R.PB.text().ret();
    EXPECT_EQ(R.run(0x0123456789abcdefull), 0x23456789abcdef01ull);
  }
  {
    Runner R;
    R.PB.text().movRR(Reg::RAX, Reg::RDI, 8);
    R.PB.text().rotRI(Mnemonic::Ror, Reg::RAX, 4, 8);
    R.PB.text().ret();
    EXPECT_EQ(R.run(0x0123456789abcdefull), 0xf0123456789abcdeull);
  }
  {
    // 32-bit rotate zero-extends like any 32-bit write.
    Runner R;
    R.PB.text().movRR(Reg::RAX, Reg::RDI, 8);
    R.PB.text().rotRI(Mnemonic::Rol, Reg::RAX, 16, 4);
    R.PB.text().ret();
    EXPECT_EQ(R.run(0xffffffff12345678ull), 0x56781234ull);
  }
}

TEST(IsaExt, MachineBswap) {
  Runner R;
  R.PB.text().movRR(Reg::RAX, Reg::RDI, 8);
  R.PB.text().bswapR(Reg::RAX, 8);
  R.PB.text().ret();
  EXPECT_EQ(R.run(0x0102030405060708ull), 0x0807060504030201ull);
}

TEST(IsaExt, MachineBitScan) {
  {
    Runner R;
    R.PB.text().bsfRR(Reg::RAX, Reg::RDI, 8);
    R.PB.text().ret();
    EXPECT_EQ(R.run(0x40), 6u);
  }
  {
    Runner R;
    R.PB.text().bsrRR(Reg::RAX, Reg::RDI, 8);
    R.PB.text().ret();
    EXPECT_EQ(R.run(0x40), 6u);
    Runner R2;
    R2.PB.text().bsrRR(Reg::RAX, Reg::RDI, 8);
    R2.PB.text().ret();
    EXPECT_EQ(R2.run(0x8000000000000001ull), 63u);
  }
  {
    // Zero source: ZF set, destination untouched.
    Runner R;
    R.PB.text().movRI(Reg::RAX, 0x55, 8);
    R.PB.text().bsfRR(Reg::RAX, Reg::RDI, 8);
    R.PB.text().setccR(Cond::E, Reg::RCX);
    R.PB.text().ret();
    auto BB = R.PB.build(R.F);
    ASSERT_TRUE(BB.has_value());
    Machine M(BB->Img);
    M.setupCall(BB->Img.Entry);
    M.setReg(Reg::RDI, 0);
    ASSERT_EQ(M.run(100), Machine::Status::Returned);
    EXPECT_EQ(M.reg(Reg::RAX), 0x55u);
    EXPECT_EQ(M.reg(Reg::RCX) & 0xff, 1u);
  }
}

/// The whole pipeline on a function using the extended instructions: lift,
/// verify, and check the bsf ZF refinement reaches the branch.
TEST(IsaExt, LiftsAndVerifies) {
  ProgramBuilder PB("isa_ext_lift");
  Asm &A = PB.text();
  Asm::Label F = A.newLabel(), Z = A.newLabel();
  A.bind(F);
  A.movRR(Reg::RAX, Reg::RDI, 8);
  A.rotRI(Mnemonic::Rol, Reg::RAX, 13, 8);
  A.bswapR(Reg::RAX, 8);
  A.bsfRR(Reg::RCX, Reg::RAX, 8);
  A.jccL(Cond::E, Z); // src == 0
  A.addRR(Reg::RAX, Reg::RCX, 8);
  A.ret();
  A.bind(Z);
  A.xorRR(Reg::RAX, Reg::RAX, 4);
  A.ret();
  auto BB = PB.build(F);
  ASSERT_TRUE(BB.has_value());
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  EXPECT_EQ(R.Outcome, hg::LiftOutcome::Lifted) << R.FailReason;
}

} // namespace
