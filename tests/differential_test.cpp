//===- differential_test.cpp - Concrete runs vs. lifted Hoare Graphs -----===//
//
// Property-based differential check of the whole-function theorem behind
// the lifter (Theorem 4.3 / Definition 4.4): every state reached by a
// concrete execution s0 → s1 → ... of a lifted function satisfies some
// vertex invariant at its rip, and every concrete step is admitted by a
// symbolic successor of an admitting vertex (computed with the function's
// own arena executor — the same τ Algorithm 1 ran).
//
// Concrete runs start from random register files seeded via support/Rng
// (fixed seeds, no wall clock). Expressions with Fresh leaves are havoc
// (existentially quantified, Definition 4.4) and admit any value; clauses
// mentioning them are skipped rather than decided.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "expr/Eval.h"
#include "hg/Lifter.h"
#include "semantics/Machine.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace hglift;
using namespace hglift::x86;
using corpus::BuiltBinary;
using expr::Expr;
using sem::CtrlKind;
using sem::Machine;
using sem::StepOut;
using sem::Succ;
using sem::SymState;

namespace {

struct ConcreteCtx {
  std::array<uint64_t, NumGPRs> Init; ///< entry register file
  uint64_t RetAddr = 0;               ///< concrete value of S_entry
  const expr::ExprContext *Ctx = nullptr;
  Machine EntryM; ///< machine snapshot at function entry (initial memory)

  explicit ConcreteCtx(const elf::BinaryImage &Img) : EntryM(Img) {}

  expr::VarValuation vars() const {
    return [this](uint32_t Id) -> uint64_t {
      const expr::VarInfo &VI = Ctx->varInfo(Id);
      if (VI.Cls == expr::VarClass::RetSym ||
          VI.Cls == expr::VarClass::RetAddr)
        return RetAddr;
      for (unsigned RI = 0; RI < NumGPRs; ++RI)
        if (VI.Name == regName(regFromNum(RI)) + "0")
          return Init[RI];
      return 0; // Fresh/External: callers skip clauses with fresh leaves
    };
  }
  expr::MemOracle initMem() const {
    return [this](uint64_t A, uint32_t Sz) { return EntryM.load(A, Sz); };
  }
};

/// Does the concrete state (Regs, M's memory) satisfy P, treating clauses
/// with Fresh leaves as existentially quantified (skipped)?
bool admits(const pred::Pred &P, const ConcreteCtx &CC,
            const std::array<uint64_t, NumGPRs> &Regs, const Machine &M) {
  if (P.isBottom())
    return false;
  auto Vars = CC.vars();
  auto InitMem = CC.initMem();
  for (unsigned RI = 0; RI < NumGPRs; ++RI) {
    const Expr *V = P.reg64(regFromNum(RI));
    if (!V || V->hasFreshLeaf())
      continue;
    auto EV = expr::evalExpr(V, Vars, InitMem);
    if (!EV || *EV != Regs[RI])
      return false;
  }
  for (const pred::MemCell &C : P.cells()) {
    if (C.Addr->hasFreshLeaf() || C.Val->hasFreshLeaf())
      continue;
    auto A = expr::evalExpr(C.Addr, Vars, InitMem);
    auto V = expr::evalExpr(C.Val, Vars, InitMem);
    if (!A || !V)
      return false;
    if (M.load(*A, C.Size) != expr::maskToWidth(*V, C.Size * 8))
      return false;
  }
  for (const pred::RangeClause &C : P.ranges()) {
    if (C.E->hasFreshLeaf())
      continue;
    auto EV = expr::evalExpr(C.E, Vars, InitMem);
    if (!EV)
      return false;
    uint64_t U = *EV, B = C.Bound;
    int64_t S = static_cast<int64_t>(U), SB = static_cast<int64_t>(B);
    bool OK = true;
    switch (C.Op) {
    case pred::RelOp::Eq:
      OK = U == B;
      break;
    case pred::RelOp::Ne:
      OK = U != B;
      break;
    case pred::RelOp::ULt:
      OK = U < B;
      break;
    case pred::RelOp::ULe:
      OK = U <= B;
      break;
    case pred::RelOp::UGe:
      OK = U >= B;
      break;
    case pred::RelOp::UGt:
      OK = U > B;
      break;
    case pred::RelOp::SLt:
      OK = S < SB;
      break;
    case pred::RelOp::SLe:
      OK = S <= SB;
      break;
    case pred::RelOp::SGe:
      OK = S >= SB;
      break;
    case pred::RelOp::SGt:
      OK = S > SB;
      break;
    }
    if (!OK)
      return false;
  }
  return true;
}

/// Explored vertices of F at the given rip.
std::vector<const hg::Vertex *> verticesAt(const hg::FunctionResult &F,
                                           uint64_t Rip) {
  std::vector<const hg::Vertex *> Out;
  for (auto It = F.Graph.Vertices.lower_bound(hg::VertexKey{Rip, 0});
       It != F.Graph.Vertices.end() && It->first.Rip == Rip; ++It)
    if (It->second.Explored)
      Out.push_back(&It->second);
  return Out;
}

/// Walk one concrete run through F's Hoare Graph, checking vertex coverage
/// and per-edge admission at every step until control leaves the function.
void walkOne(const BuiltBinary &BB, const hg::FunctionResult &F, Rng &R) {
  Machine M(BB.Img, R.next());
  M.setupCall(F.Entry);

  ConcreteCtx CC(BB.Img);
  CC.Ctx = &F.ctx();
  for (unsigned RI = 0; RI < NumGPRs; ++RI) {
    if (regFromNum(RI) == Reg::RSP) {
      CC.Init[RI] = M.reg(Reg::RSP);
      continue;
    }
    CC.Init[RI] = R.chance(1, 3) ? R.below(1000) : R.next();
    M.setReg(regFromNum(RI), CC.Init[RI]);
  }
  CC.RetAddr = M.load(M.reg(Reg::RSP), 8);
  CC.EntryM = M;

  sem::SymExec &Exec = F.Arena->exec();

  for (int Step = 0; Step < 300; ++Step) {
    uint64_t Rip = M.Rip;
    auto Vs = verticesAt(F, Rip);
    if (Vs.empty())
      return; // control left this function (callee frame, external stub)

    // Property 1: some invariant at this rip covers the concrete state.
    std::vector<const hg::Vertex *> Admitting;
    for (const hg::Vertex *V : Vs)
      if (admits(V->State.P, CC, M.Regs, M))
        Admitting.push_back(V);
    ASSERT_FALSE(Admitting.empty())
        << "no vertex at " << hexStr(Rip) << " admits the concrete state ("
        << Vs.size() << " vertices, fn " << hexStr(F.Entry) << ")";

    bool WasCall = Admitting[0]->Instr.isCall();
    Machine::Status St = M.step();
    if (St == Machine::Status::Returned || St == Machine::Status::Halted) {
      if (St == Machine::Status::Returned) {
        // Property 2 (return): an admitting vertex must have a Ret edge.
        bool HasRet = false;
        for (const hg::Vertex *V : Admitting)
          for (const hg::Edge &E : F.Graph.Edges)
            HasRet |= E.From == V->Key && E.To.Rip == hg::RetTargetRip;
        EXPECT_TRUE(HasRet) << "concrete return at " << hexStr(Rip)
                            << " has no Ret edge (fn " << hexStr(F.Entry)
                            << ")";
      }
      return;
    }
    if (St != Machine::Status::Running)
      return; // fault/limit on a random register file: out of scope
    if (WasCall && M.Rip != Admitting[0]->Instr.nextAddr())
      return; // internal call: execution descended into the callee frame;
              // the symbolic successor models the return site instead

    // Property 2: some symbolic successor of an admitting vertex admits
    // the concrete post-state (or the step hit an annotated indirection).
    bool Covered = false, Annotated = false;
    for (const hg::Vertex *V : Admitting) {
      StepOut Out = Exec.step(V->State, V->Instr, F.RetSym);
      if (Out.VerifError)
        continue;
      for (const Succ &S : Out.Succs) {
        if (S.K == CtrlKind::UnresJump) {
          Annotated = true; // annotation B overapproximates any target
          continue;
        }
        if (S.NextAddr != M.Rip)
          continue;
        if (admits(S.S.P, CC, M.Regs, M)) {
          Covered = true;
          break;
        }
      }
      if (Covered)
        break;
    }
    EXPECT_TRUE(Covered || Annotated)
        << "concrete step " << hexStr(Rip) << " -> " << hexStr(M.Rip)
        << " not admitted by any symbolic successor (fn " << hexStr(F.Entry)
        << ")";
    if (Annotated && !Covered)
      return; // symbolic exploration stopped at the annotation
  }
}

void runDifferential(const std::optional<BuiltBinary> &BB, uint64_t Seed,
                     int RunsPerFunction, bool Library = false) {
  ASSERT_TRUE(BB.has_value());
  hg::LiftConfig Cfg;
  hg::Lifter L(BB->Img, Cfg);
  hg::BinaryResult R = Library ? L.liftLibrary() : L.liftBinary();
  Rng Rand(Seed);
  for (const hg::FunctionResult &F : R.Functions) {
    if (F.Outcome != hg::LiftOutcome::Lifted)
      continue;
    for (int I = 0; I < RunsPerFunction; ++I)
      walkOne(*BB, F, Rand);
  }
}

TEST(Differential, Straightline) {
  runDifferential(corpus::straightlineBinary(), 0xd1f1, 12);
}

TEST(Differential, BranchLoop) {
  runDifferential(corpus::branchLoopBinary(), 0xd1f2, 12);
}

TEST(Differential, JumpTable) {
  runDifferential(corpus::jumpTableBinary(), 0xd1f3, 16);
}

TEST(Differential, CallChain) {
  runDifferential(corpus::callChainBinary(), 0xd1f4, 12);
}

TEST(Differential, Recursion) {
  runDifferential(corpus::recursionBinary(), 0xd1f5, 8, /*Library=*/true);
}

TEST(Differential, Callback) {
  runDifferential(corpus::callbackBinary(), 0xd1f6, 8);
}

TEST(Differential, RandomLibraries) {
  for (uint64_t Seed : {0x201ull, 0x202ull, 0x203ull}) {
    corpus::GenOptions G;
    G.Seed = Seed;
    G.NumFuncs = 3;
    G.TargetInstrs = 30;
    runDifferential(corpus::randomLibrary(G), 0xd1f7 + Seed, 6,
                    /*Library=*/true);
  }
}

} // namespace
