//===- differential_test.cpp - Concrete runs vs. lifted Hoare Graphs -----===//
//
// Property-based differential check of the whole-function theorem behind
// the lifter (Theorem 4.3 / Definition 4.4): every state reached by a
// concrete execution s0 → s1 → ... of a lifted function satisfies some
// vertex invariant at its rip, and every concrete step is admitted by a
// symbolic successor of an admitting vertex.
//
// The walking logic lives in src/fuzz/Oracle (it doubles as the fuzzing
// campaign's concrete-execution oracle); this suite drives it over the
// handwritten corpus programs and asserts zero violations. The oracle
// also decides the flag abstraction (Cmp/Test/Res/ZeroOf FlagStates with
// evaluable operands must agree with the machine's ZF/SF/CF/OF), which
// the original in-test walker did not.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "fuzz/Oracle.h"
#include "hg/Lifter.h"
#include "support/Format.h"

#include <gtest/gtest.h>

using namespace hglift;
using corpus::BuiltBinary;

namespace {

void runDifferential(const std::optional<BuiltBinary> &BB, uint64_t Seed,
                     int RunsPerFunction, bool Library = false) {
  ASSERT_TRUE(BB.has_value());
  hg::LiftConfig Cfg;
  hg::Lifter L(BB->Img, Cfg);
  hg::BinaryResult R = Library ? L.liftLibrary() : L.liftBinary();

  fuzz::OracleResult O = fuzz::runOracle(BB->Img, R, Seed, RunsPerFunction);
  EXPECT_GT(O.States, 0u);
  for (const fuzz::OracleViolation &V : O.Violations)
    ADD_FAILURE() << "fn " << hexStr(V.Function) << " at " << hexStr(V.Addr)
                  << ": " << V.Message;
}

TEST(Differential, Straightline) {
  runDifferential(corpus::straightlineBinary(), 0xd1f1, 12);
}

TEST(Differential, BranchLoop) {
  runDifferential(corpus::branchLoopBinary(), 0xd1f2, 12);
}

TEST(Differential, JumpTable) {
  runDifferential(corpus::jumpTableBinary(), 0xd1f3, 16);
}

TEST(Differential, CallChain) {
  runDifferential(corpus::callChainBinary(), 0xd1f4, 12);
}

TEST(Differential, Recursion) {
  runDifferential(corpus::recursionBinary(), 0xd1f5, 8, /*Library=*/true);
}

TEST(Differential, Callback) {
  runDifferential(corpus::callbackBinary(), 0xd1f6, 8);
}

TEST(Differential, RandomLibraries) {
  for (uint64_t Seed : {0x201ull, 0x202ull, 0x203ull}) {
    corpus::GenOptions G;
    G.Seed = Seed;
    G.NumFuncs = 3;
    G.TargetInstrs = 30;
    runDifferential(corpus::randomLibrary(G), 0xd1f7 + Seed, 6,
                    /*Library=*/true);
  }
}

} // namespace
