//===- fuzz_oracle_test.cpp - Unit tests for the oracle's admission check -===//
//
// stateSatisfies(Pred, OracleCtx, Machine) is the judge the whole fuzzing
// campaign rests on: a wrong "satisfied" hides soundness bugs, a wrong
// "violated" makes every campaign red. These tests pin its behavior on
// handcrafted predicates against handcrafted machine states — register
// clauses, the four flag-abstraction kinds, memory cells, range clauses,
// fresh-leaf havoc, and bottom — including negative cases for each.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include <gtest/gtest.h>

using namespace hglift;
using expr::Expr;
using expr::ExprContext;
using expr::Opcode;
using expr::VarClass;
using fuzz::OracleCtx;
using fuzz::stateSatisfies;
using pred::FlagState;
using pred::Pred;
using pred::RelOp;
using sem::Machine;
using x86::Reg;
using x86::regFromNum;
using x86::regNum;

namespace {

/// Shared fixture: an empty image (all loads fall back to zero), an
/// expression context with the usual init-register variables, and an
/// OracleCtx whose Init file is a recognizable pattern.
class StateSatisfiesTest : public ::testing::Test {
protected:
  StateSatisfiesTest() : CC(Img), M(Img) {
    CC.Ctx = &Ctx;
    for (unsigned RI = 0; RI < x86::NumGPRs; ++RI) {
      CC.Init[RI] = 0x1000 + RI;
      InitVar[RI] = Ctx.mkVar(VarClass::InitReg,
                              x86::regName(regFromNum(RI)) + "0");
      M.Regs[RI] = CC.Init[RI]; // machine starts agreeing with Init
    }
    CC.RetAddr = kRetAddr;
  }
  static constexpr uint64_t kRetAddr = 0x7fffbeef;

  elf::BinaryImage Img;
  ExprContext Ctx;
  OracleCtx CC;
  Machine M;
  std::array<const Expr *, x86::NumGPRs> InitVar;
};

TEST_F(StateSatisfiesTest, EmptyPredAdmitsAnything) {
  Pred P;
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  M.Regs[0] = 0xdead;
  EXPECT_TRUE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, BottomAdmitsNothing) {
  Pred P;
  P.setBottom();
  EXPECT_FALSE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, RegClauseConst) {
  Pred P;
  P.setReg64(Reg::RAX, Ctx.mkConst(42));
  M.setReg(Reg::RAX, 42);
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  M.setReg(Reg::RAX, 43);
  EXPECT_FALSE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, RegClauseInitVar) {
  // rbx == rdi0 + 5
  Pred P;
  P.setReg64(Reg::RBX, Ctx.mkAddK(InitVar[regNum(Reg::RDI)], 5));
  M.setReg(Reg::RBX, CC.Init[regNum(Reg::RDI)] + 5);
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  M.setReg(Reg::RBX, CC.Init[regNum(Reg::RDI)] + 6);
  EXPECT_FALSE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, RegClauseFreshIsHavoc) {
  // A claim mentioning a Fresh variable admits any machine value; the
  // same goes for External-class variables (results of external calls).
  Pred P;
  P.setReg64(Reg::RCX, Ctx.mkFresh("join"));
  M.setReg(Reg::RCX, 0x1234567812345678ull);
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  P.setReg64(Reg::RCX, Ctx.mkAddK(Ctx.mkVar(VarClass::External, "malloc_ret"),
                                  8));
  EXPECT_TRUE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, RetAddrVariableGrounded) {
  Pred P;
  P.setReg64(Reg::R8, Ctx.mkVar(VarClass::RetAddr, "a_r"));
  M.setReg(Reg::R8, kRetAddr);
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  M.setReg(Reg::R8, kRetAddr + 1);
  EXPECT_FALSE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, FlagsCmp) {
  // Flags claimed as cmp(7, 5): ZF=0 SF=0 CF=0 OF=0.
  Pred P;
  P.setFlagsCmp(Ctx.mkConst(7), Ctx.mkConst(5), 64);
  M.ZF = false, M.SF = false, M.CF = false, M.OF = false;
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  M.CF = true; // cmp pins all four flags
  EXPECT_FALSE(stateSatisfies(P, CC, M));
  M.CF = false, M.ZF = true;
  EXPECT_FALSE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, FlagsCmpBorrow) {
  // cmp(5, 7): borrow sets CF, result is negative in 64-bit.
  Pred P;
  P.setFlagsCmp(Ctx.mkConst(5), Ctx.mkConst(7), 64);
  M.ZF = false, M.SF = true, M.CF = true, M.OF = false;
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  M.SF = false;
  EXPECT_FALSE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, FlagsCmpWidth32) {
  // cmp32(0x80000000, 1): 0x80000000 - 1 = 0x7fffffff → SF=0, OF=1.
  Pred P;
  P.setFlagsCmp(Ctx.mkConst(0x80000000ull), Ctx.mkConst(1), 32);
  M.ZF = false, M.SF = false, M.CF = false, M.OF = true;
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  M.OF = false;
  EXPECT_FALSE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, FlagsTest) {
  // test(6, 2): result 2 → ZF=0 SF=0, and test always clears CF/OF.
  Pred P;
  P.setFlagsTest(Ctx.mkConst(6), Ctx.mkConst(2), 64);
  M.ZF = false, M.SF = false, M.CF = false, M.OF = false;
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  M.OF = true; // test pins CF=OF=0
  EXPECT_FALSE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, FlagsResPinsOnlyZfSf) {
  // Res claims only ZF/SF of the result; CF/OF are unconstrained.
  Pred P;
  P.setFlagsRes(Ctx.mkConst(0), 64);
  M.ZF = true, M.SF = false, M.CF = true, M.OF = true; // CF/OF: don't care
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  M.ZF = false;
  EXPECT_FALSE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, FlagsZeroOfPinsOnlyZf) {
  Pred P;
  P.setFlagsZeroOf(Ctx.mkConst(3), 64);
  M.ZF = false, M.SF = true, M.CF = true, M.OF = true;
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  M.ZF = true;
  EXPECT_FALSE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, FlagsFreshOperandSkipped) {
  Pred P;
  P.setFlagsCmp(Ctx.mkFresh("f"), Ctx.mkConst(5), 64);
  M.ZF = true, M.SF = true, M.CF = true, M.OF = true;
  EXPECT_TRUE(stateSatisfies(P, CC, M)); // havoc operand: skip the clause
}

TEST_F(StateSatisfiesTest, MemCell) {
  Pred P;
  P.setCell(Ctx.mkConst(0x5000), 8, Ctx.mkConst(0xabcdef));
  M.store(0x5000, 8, 0xabcdef);
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  M.store(0x5000, 8, 0xabcdee);
  EXPECT_FALSE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, MemCellNarrowIsMasked) {
  // A 4-byte cell only constrains 4 bytes; the claimed value is compared
  // after masking to the cell width.
  Pred P;
  P.setCell(Ctx.mkConst(0x6000), 4, Ctx.mkConst(0xffffffff11223344ull));
  M.store(0x6000, 4, 0x11223344);
  M.store(0x6004, 4, 0x55667788); // adjacent bytes are unconstrained
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  M.store(0x6000, 1, 0x45);
  EXPECT_FALSE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, MemCellVarAddress) {
  // *[rdi0 + 0x10] == rsi0 — both sides grounded through the Init file.
  Pred P;
  unsigned RDI = regNum(Reg::RDI), RSI = regNum(Reg::RSI);
  P.setCell(Ctx.mkAddK(InitVar[RDI], 0x10), 8, InitVar[RSI]);
  M.store(CC.Init[RDI] + 0x10, 8, CC.Init[RSI]);
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  M.store(CC.Init[RDI] + 0x10, 8, CC.Init[RSI] ^ 1);
  EXPECT_FALSE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, MemCellFreshSkipped) {
  Pred P;
  P.setCell(Ctx.mkConst(0x7000), 8, Ctx.mkFresh("havoc"));
  M.store(0x7000, 8, 0x1234);
  EXPECT_TRUE(stateSatisfies(P, CC, M));
}

TEST_F(StateSatisfiesTest, RangeClauses) {
  unsigned RDX = regNum(Reg::RDX);
  {
    Pred P;
    P.addRange(InitVar[RDX], RelOp::ULt, 0x2000);
    EXPECT_TRUE(stateSatisfies(P, CC, M)); // Init[RDX] = 0x1000 + rdx
  }
  {
    Pred P;
    P.addRange(InitVar[RDX], RelOp::UGt, 0x2000);
    EXPECT_FALSE(stateSatisfies(P, CC, M));
  }
  {
    // Signed comparison: -1 < 0 signed but not unsigned. (Constant
    // expressions are dropped by addRange, so ground through an init
    // variable instead.)
    unsigned R9 = regNum(Reg::R9);
    CC.Init[R9] = 0xffffffffffffffffull;
    Pred P;
    P.addRange(InitVar[R9], RelOp::SLt, 0);
    EXPECT_TRUE(stateSatisfies(P, CC, M));
    Pred Q;
    Q.addRange(InitVar[R9], RelOp::ULt, 0);
    EXPECT_FALSE(stateSatisfies(Q, CC, M));
  }
}

TEST_F(StateSatisfiesTest, ConjunctionFailsOnAnyClause) {
  Pred P;
  P.setReg64(Reg::RAX, Ctx.mkConst(1));
  P.setCell(Ctx.mkConst(0x8000), 8, Ctx.mkConst(2));
  M.setReg(Reg::RAX, 1);
  M.store(0x8000, 8, 2);
  EXPECT_TRUE(stateSatisfies(P, CC, M));
  M.store(0x8000, 8, 3); // one violated clause sinks the conjunction
  EXPECT_FALSE(stateSatisfies(P, CC, M));
}

} // namespace
