//===- pred_test.cpp - Predicates: clauses, flags, join, order -----------===//
//
// Property tests for the §3.1 machinery:
//   * join soundness (Definition 3.3):  s ⊢ P ∨ Q  ⟹  s ⊢ P ⊔ Q
//   * ⊑ laws: reflexivity, and P ⊑ P⊔Q / Q ⊑ P⊔Q (upper bound)
//   * Example 3.4: equality clauses widen to ranges
//   * condition-code derivation against concrete flag semantics
//
//===----------------------------------------------------------------------===//

#include "pred/Pred.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace hglift;
using expr::Expr;
using expr::ExprContext;
using expr::Opcode;
using expr::VarClass;
using pred::Pred;
using pred::RelOp;
using x86::Cond;
using x86::Reg;

namespace {

TEST(Pred, EntryState) {
  ExprContext Ctx;
  Pred P = Pred::entry(Ctx);
  const Expr *Rsp = P.reg64(Reg::RSP);
  ASSERT_TRUE(Rsp->isVar());
  EXPECT_EQ(Ctx.varInfo(Rsp->varId()).Cls, VarClass::StackBase);
  const pred::MemCell *C = P.findCell(Rsp, 8);
  ASSERT_NE(C, nullptr) << "*[rsp0,8] == a_r must be present";
  EXPECT_EQ(Ctx.varInfo(C->Val->varId()).Cls, VarClass::RetAddr);
}

TEST(Pred, SubRegisterReadWrite) {
  ExprContext Ctx;
  Pred P = Pred::entry(Ctx);
  // 32-bit write zero-extends.
  P.writeReg(Ctx, Reg::RAX, 4, false, Ctx.mkConst(0xdeadbeef, 32));
  EXPECT_EQ(P.reg64(Reg::RAX), Ctx.mkConst(0xdeadbeef, 64));
  // 16-bit write merges.
  P.writeReg(Ctx, Reg::RAX, 2, false, Ctx.mkConst(0x1234, 16));
  EXPECT_EQ(P.reg64(Reg::RAX), Ctx.mkConst(0xdead1234, 64));
  // 8-bit high write merges into bits 8..15.
  P.writeReg(Ctx, Reg::RAX, 1, true, Ctx.mkConst(0xcc, 8));
  EXPECT_EQ(P.reg64(Reg::RAX), Ctx.mkConst(0xdeadcc34, 64));
  // Reads extract.
  EXPECT_EQ(P.readReg(Ctx, Reg::RAX, 1, false), Ctx.mkConst(0x34, 8));
  EXPECT_EQ(P.readReg(Ctx, Reg::RAX, 1, true), Ctx.mkConst(0xcc, 8));
  EXPECT_EQ(P.readReg(Ctx, Reg::RAX, 2), Ctx.mkConst(0xcc34, 16));
  EXPECT_EQ(P.readReg(Ctx, Reg::RAX, 4), Ctx.mkConst(0xdeadcc34, 32));
}

TEST(Pred, Example34_RangeAbstraction) {
  // P = {a = 3}, Q = {a = 4}  ⟹  P ⊔ Q = {a ≥ 3, a ≤ 4} (Example 3.4).
  ExprContext Ctx;
  Pred P = Pred::entry(Ctx), Q = Pred::entry(Ctx);
  P.setReg64(Reg::RAX, Ctx.mkConst(3, 64));
  Q.setReg64(Reg::RAX, Ctx.mkConst(4, 64));
  Pred J = Pred::join(Ctx, P, Q);
  const Expr *A = J.reg64(Reg::RAX);
  EXPECT_TRUE(A->isVar()) << "joined value is a fresh variable";
  Interval I = J.intervalOf(A);
  EXPECT_EQ(I, Interval(3, 4));
}

TEST(Pred, JoinKeepsAgreementDropsDisagreement) {
  ExprContext Ctx;
  Pred P = Pred::entry(Ctx), Q = Pred::entry(Ctx);
  const Expr *Rdi0 = P.reg64(Reg::RDI);
  P.setReg64(Reg::RAX, Ctx.mkAddK(Rdi0, 8));
  Q.setReg64(Reg::RAX, Ctx.mkAddK(Rdi0, 8)); // agree
  P.setReg64(Reg::RBX, Ctx.mkAddK(Rdi0, 1));
  Q.setReg64(Reg::RBX, Ctx.mkAddK(Rdi0, 2)); // disagree, non-const
  Pred J = Pred::join(Ctx, P, Q);
  EXPECT_EQ(J.reg64(Reg::RAX), Ctx.mkAddK(Rdi0, 8));
  EXPECT_TRUE(J.reg64(Reg::RBX)->isVar());
  EXPECT_TRUE(J.reg64(Reg::RBX)->hasFreshLeaf());
}

TEST(Pred, JoinWidening) {
  ExprContext Ctx;
  Pred P = Pred::entry(Ctx), Q = Pred::entry(Ctx);
  P.setReg64(Reg::RAX, Ctx.mkConst(3, 64));
  Q.setReg64(Reg::RAX, Ctx.mkConst(4, 64));
  Pred J = Pred::join(Ctx, P, Q, /*Widen=*/true);
  EXPECT_TRUE(J.intervalOf(J.reg64(Reg::RAX)).isTop())
      << "widening drops the range";
}

TEST(Pred, LeqReflexiveAndBottom) {
  ExprContext Ctx;
  Pred P = Pred::entry(Ctx);
  P.setReg64(Reg::RAX, Ctx.mkConst(7, 64));
  P.addRange(P.reg64(Reg::RDI), RelOp::ULe, 100);
  EXPECT_TRUE(Pred::leq(P, P));
  Pred Bot;
  Bot.setBottom();
  EXPECT_TRUE(Pred::leq(Bot, P));
  EXPECT_FALSE(Pred::leq(P, Bot));
}

TEST(Pred, LeqRangeEntailment) {
  ExprContext Ctx;
  Pred A = Pred::entry(Ctx), B = Pred::entry(Ctx);
  const Expr *X = A.reg64(Reg::RDI);
  A.addRange(X, RelOp::ULe, 10);
  B.addRange(X, RelOp::ULe, 20);
  EXPECT_TRUE(Pred::leq(A, B)) << "x<=10 implies x<=20";
  EXPECT_FALSE(Pred::leq(B, A)) << "x<=20 does not imply x<=10";
}

TEST(Pred, LeqMatchesFreshVariables) {
  ExprContext Ctx;
  Pred A = Pred::entry(Ctx), B = Pred::entry(Ctx);
  const Expr *Rdi0 = A.reg64(Reg::RDI);
  A.setReg64(Reg::RAX, Ctx.mkAddK(Rdi0, 42));
  const Expr *F = Ctx.mkFresh("j");
  B.setReg64(Reg::RAX, F);
  EXPECT_TRUE(Pred::leq(A, B)) << "fresh var matches any value";
  // But the same fresh var must match consistently.
  Pred B2 = B;
  B2.setReg64(Reg::RBX, F);
  Pred A2 = A; // rbx == rbx0 != rax's value
  EXPECT_FALSE(Pred::leq(A2, B2))
      << "one variable cannot stand for two different values";
}

TEST(Pred, IntervalFromClauses) {
  ExprContext Ctx;
  Pred P = Pred::entry(Ctx);
  const Expr *X = Ctx.mkTrunc(P.reg64(Reg::RDI), 32);
  P.addRange(X, RelOp::ULe, 0xc3);
  EXPECT_EQ(P.intervalOf(X), Interval(0, 0xc3));
  auto B = P.unsignedUpperBound(X);
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(*B, 0xc3u);
  // Through a zext (the jump-table index shape).
  const Expr *Z = Ctx.mkZExt(X, 64);
  auto BZ = P.unsignedUpperBound(Z);
  ASSERT_TRUE(BZ.has_value());
  EXPECT_EQ(*BZ, 0xc3u);
  // Linear combination: 0x4000 + 8*zext(x) in [0x4000, 0x4000+8*0xc3].
  const Expr *Addr = Ctx.mkAddK(
      Ctx.mkBin(Opcode::Mul, Z, Ctx.mkConst(8, 64)), 0x4000);
  EXPECT_EQ(P.intervalOf(Addr), Interval(0x4000, 0x4000 + 8 * 0xc3));
}

TEST(Pred, BottomByContradiction) {
  ExprContext Ctx;
  Pred P = Pred::entry(Ctx);
  const Expr *X = P.reg64(Reg::RDI);
  P.addRange(X, RelOp::ULe, 5);
  P.addRange(X, RelOp::SGe, 10);
  EXPECT_TRUE(P.intervalOf(X).isEmpty());
}

// --- condition codes against concrete flag semantics ----------------------

TEST(PredProperty, CondExprMatchesConcreteCmp) {
  ExprContext Ctx;
  Rng R(0xcc);
  const Cond Conds[] = {Cond::E,  Cond::NE, Cond::B, Cond::AE, Cond::BE,
                        Cond::A,  Cond::L,  Cond::GE, Cond::LE, Cond::G,
                        Cond::S,  Cond::NS};
  for (int Iter = 0; Iter < 4000; ++Iter) {
    unsigned W = R.chance(1, 2) ? 64 : 32;
    uint64_t LV = R.next(), RV = R.chance(1, 3) ? LV : R.next();
    LV = expr::maskToWidth(LV, W);
    RV = expr::maskToWidth(RV, W);

    Pred P = Pred::entry(Ctx);
    P.setFlagsCmp(Ctx.mkConst(LV, W), Ctx.mkConst(RV, W), W);

    // Concrete flags of L - R.
    uint64_t Res = expr::maskToWidth(LV - RV, W);
    bool ZF = Res == 0;
    bool SF = expr::signExtend(Res, W) < 0;
    bool CF = LV < RV;
    bool SL = expr::signExtend(LV, W) < expr::signExtend(RV, W);
    bool OF = SL != SF;

    for (Cond CC : Conds) {
      const Expr *E = P.condExpr(Ctx, CC);
      ASSERT_NE(E, nullptr);
      ASSERT_TRUE(E->isConst()) << "constant operands must fold";
      bool Expected;
      switch (CC) {
      case Cond::E:
        Expected = ZF;
        break;
      case Cond::NE:
        Expected = !ZF;
        break;
      case Cond::B:
        Expected = CF;
        break;
      case Cond::AE:
        Expected = !CF;
        break;
      case Cond::BE:
        Expected = CF || ZF;
        break;
      case Cond::A:
        Expected = !CF && !ZF;
        break;
      case Cond::L:
        Expected = SF != OF;
        break;
      case Cond::GE:
        Expected = SF == OF;
        break;
      case Cond::LE:
        Expected = ZF || (SF != OF);
        break;
      case Cond::G:
        Expected = !ZF && (SF == OF);
        break;
      case Cond::S:
        Expected = SF;
        break;
      case Cond::NS:
        Expected = !SF;
        break;
      default:
        Expected = false;
      }
      EXPECT_EQ(E->constVal() != 0, Expected)
          << condName(CC) << " L=" << LV << " R=" << RV << " W=" << W;
    }
  }
}

// --- join soundness property (Definition 3.3) ------------------------------

struct Scenario {
  ExprContext &Ctx;
  Rng &R;
  std::array<uint64_t, x86::NumGPRs> InitVals;
  uint64_t RetAddrVal = 0xdead0000;

  uint64_t valueOfVar(uint32_t Id) const {
    const expr::VarInfo &VI = Ctx.varInfo(Id);
    if (VI.Cls == VarClass::RetAddr)
      return RetAddrVal;
    for (unsigned I = 0; I < x86::NumGPRs; ++I)
      if (VI.Name == x86::regName(x86::regFromNum(I)) + "0")
        return InitVals[I];
    // Fresh variables: a fixed arbitrary value derived from the id.
    return 0x1111111111111111ull * (Id + 1);
  }

  /// Apply a random sequence of register updates to P; return the concrete
  /// register state they produce under this scenario.
  std::array<uint64_t, x86::NumGPRs> randomize(Pred &P) {
    auto Vars = [this](uint32_t Id) { return valueOfVar(Id); };
    for (int I = 0; I < 6; ++I) {
      Reg D = x86::regFromNum(static_cast<unsigned>(R.below(14)));
      if (D == Reg::RSP)
        continue;
      const Expr *Src = P.reg64(x86::regFromNum(
          static_cast<unsigned>(R.below(x86::NumGPRs))));
      const Expr *V;
      switch (R.below(3)) {
      case 0:
        V = Ctx.mkConst(R.next() & 0xffff, 64);
        break;
      case 1:
        V = Ctx.mkAddK(Src, R.range(-64, 64));
        break;
      default:
        V = Ctx.mkBin(Opcode::Xor, Src, Ctx.mkConst(R.next() & 0xff, 64));
        break;
      }
      P.setReg64(D, V);
    }
    std::array<uint64_t, x86::NumGPRs> Out;
    for (unsigned I = 0; I < x86::NumGPRs; ++I)
      Out[I] = *expr::evalExpr(P.reg64(x86::regFromNum(I)), Vars);
    return Out;
  }
};

TEST(PredProperty, JoinSoundnessAndUpperBound) {
  ExprContext Ctx;
  Rng R(0x10f);
  for (int Iter = 0; Iter < 400; ++Iter) {
    Scenario Sc{Ctx, R, {}, 0xdead0000};
    for (auto &V : Sc.InitVals)
      V = R.next();

    Pred P = Pred::entry(Ctx), Q = Pred::entry(Ctx);
    auto SP = Sc.randomize(P);
    auto SQ = Sc.randomize(Q);

    // Add a satisfied range clause to each.
    auto AddTrueClause = [&](Pred &X) {
      const Expr *E = X.reg64(x86::regFromNum(
          static_cast<unsigned>(R.below(x86::NumGPRs))));
      auto Vars = [&](uint32_t Id) { return Sc.valueOfVar(Id); };
      uint64_t V = *expr::evalExpr(E, Vars);
      if (static_cast<int64_t>(V) >= 0)
        X.addRange(E, RelOp::ULe, V + R.below(100));
      else
        X.addRange(E, RelOp::SLe, V + R.below(100));
    };
    AddTrueClause(P);
    AddTrueClause(Q);

    auto Vars = [&](uint32_t Id) { return Sc.valueOfVar(Id); };
    auto InitMem = [&](uint64_t, uint32_t) -> uint64_t { return 0; };
    auto CurMem = [&](uint64_t Addr, uint32_t) -> uint64_t {
      return Addr == Sc.InitVals[x86::regNum(Reg::RSP)] ? Sc.RetAddrVal : 0;
    };

    ASSERT_TRUE(P.holds(Vars, InitMem, SP, CurMem));
    ASSERT_TRUE(Q.holds(Vars, InitMem, SQ, CurMem));

    Pred J = Pred::join(Ctx, P, Q);
    // Soundness: both concrete states satisfy the join. Fresh variables
    // introduced by the join are unconstrained; instantiate them with the
    // state's own values by re-deriving a valuation per side.
    auto HoldsWithFresh =
        [&](const std::array<uint64_t, x86::NumGPRs> &S) {
          auto VarsJ = [&](uint32_t Id) -> uint64_t {
            const expr::VarInfo &VI = Ctx.varInfo(Id);
            if (VI.Cls == VarClass::Fresh) {
              // Join variables are named j_<reg>#n: bind to the concrete
              // register value of this side.
              for (unsigned I = 0; I < x86::NumGPRs; ++I) {
                std::string Prefix =
                    "j_" + x86::regName(x86::regFromNum(I)) + "#";
                if (VI.Name.rfind(Prefix, 0) == 0)
                  return S[I];
              }
            }
            return Sc.valueOfVar(Id);
          };
          return J.holds(VarsJ, InitMem, S, CurMem);
        };
    EXPECT_TRUE(HoldsWithFresh(SP)) << "s ⊢ P ⟹ s ⊢ P⊔Q";
    EXPECT_TRUE(HoldsWithFresh(SQ)) << "s ⊢ Q ⟹ s ⊢ P⊔Q";

    // Order-theoretic upper bound.
    EXPECT_TRUE(Pred::leq(P, J)) << "P ⊑ P⊔Q";
    EXPECT_TRUE(Pred::leq(Q, J)) << "Q ⊑ P⊔Q";
    // Idempotence via the order.
    EXPECT_TRUE(Pred::leq(Pred::join(Ctx, P, P), P));
  }
}

} // namespace
