//===- bench_table1_xen.cpp - Reproduce Table 1 ---------------------------===//
//
// Regenerates the paper's Table 1 ("Xen Case Study Statistics Summary") on
// the synthetic Xen-shaped corpus (DESIGN.md §4): the same eight directory
// rows, the same outcome mix per row (scaled for the library rows), and
// the same columns:
//
//   row | N = w + x + y + z | Instrs | Symbolic States | A | B | C | Time
//
// where w = lifted, x = unprovable return address, y = concurrency,
// z = timeout; A = resolved indirections, B = unresolved jumps,
// C = unresolved calls. The paper's own numbers are printed beneath each
// row for shape comparison: who lifts, what drives each annotation
// column, and states ≈ instructions.
//
//===----------------------------------------------------------------------===//

#include "api/Hglift.h"
#include "corpus/Programs.h"
#include "corpus/Suites.h"
#include "hg/Lifter.h"
#include "support/Format.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

using namespace hglift;

namespace {

struct RowStats {
  unsigned Lifted = 0, Unprovable = 0, Concurrency = 0, Timeout = 0;
  size_t Instrs = 0, States = 0;
  unsigned A = 0, B = 0, C = 0;
  double Seconds = 0;

  void add(const hg::BinaryResult &R) {
    switch (R.Outcome) {
    case hg::LiftOutcome::Lifted:
      ++Lifted;
      break;
    case hg::LiftOutcome::UnprovableReturn:
      ++Unprovable;
      break;
    case hg::LiftOutcome::Concurrency:
      ++Concurrency;
      break;
    case hg::LiftOutcome::Timeout:
      ++Timeout;
      break;
    }
    // Only successfully lifted units contribute instruction/state counts
    // (a rejected binary produces no HG).
    if (R.Outcome == hg::LiftOutcome::Lifted) {
      Instrs += R.totalInstructions();
      States += R.totalStates();
      A += R.totalA();
      B += R.totalB();
      C += R.totalC();
    }
    Seconds += R.Seconds;
  }
  /// Per-function accounting for library rows.
  void addFunction(const hg::FunctionResult &F) {
    switch (F.Outcome) {
    case hg::LiftOutcome::Lifted:
      ++Lifted;
      break;
    case hg::LiftOutcome::UnprovableReturn:
      ++Unprovable;
      break;
    case hg::LiftOutcome::Concurrency:
      ++Concurrency;
      break;
    case hg::LiftOutcome::Timeout:
      ++Timeout;
      break;
    }
    if (F.Outcome == hg::LiftOutcome::Lifted) {
      Instrs += F.numInstructions();
      States += F.Graph.numStates();
      A += F.ResolvedIndirections;
      B += F.UnresolvedJumps;
      C += F.UnresolvedCalls;
    }
    Seconds += F.Seconds;
  }
};

void printRow(const char *Tag, const char *Dir, unsigned W, unsigned X,
              unsigned Y, unsigned Z, size_t Instrs, size_t States,
              unsigned A, unsigned B, unsigned C, double Secs) {
  std::printf("%-7s %-20s %4u = %4u +%3u +%3u +%2u  %9s %9s %6u %5u %5u  %s\n",
              Tag, Dir, W + X + Y + Z, W, X, Y, Z,
              groupedStr(Instrs).c_str(), groupedStr(States).c_str(), A, B,
              C, hmsStr(Secs).c_str());
}

} // namespace

int main(int argc, char **argv) {
  corpus::SuiteOptions Opts;
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--scale") && I + 1 < argc)
      Opts.LibraryScale = static_cast<unsigned>(std::atoi(argv[++I]));

  std::printf("Table 1: Xen Case Study Statistics Summary (synthetic corpus, "
              "library rows scaled 1/%u)\n\n",
              Opts.LibraryScale);
  std::printf("%-7s %-20s %27s  %9s %9s %6s %5s %5s  %s\n", "", "Directory",
              "N = w + x + y + z", "Instrs", "States", "A", "B", "C",
              "Time");

  auto Rows = corpus::buildXenSuite(Opts);

  hg::LiftConfig Cfg;
  Cfg.MaxVertices = 4000;
  Cfg.MaxSeconds = 15.0;

  RowStats BinTotal, LibTotal;
  corpus::SuiteRow::Mix BinPaper, LibPaper;
  size_t PaperBinInstrs[4] = {6751, 2433, 82, 8858};
  size_t PaperBinStates[4] = {6829, 2468, 87, 9178};
  size_t PaperLibInstrs[4] = {353433, 17184, 379, 10651};
  size_t PaperLibStates[4] = {362635, 17683, 407, 10799};
  unsigned PaperA[8] = {21, 8, 1, 26, 1, 0, 0, 0};
  unsigned PaperB[8] = {19, 3, 0, 4, 244, 0, 0, 0};
  unsigned PaperC[8] = {0, 3, 0, 8, 600, 27, 3, 90};
  const char *PaperTime[8] = {"0:15:54", "0:01:17", "0:00:10", "0:18:39",
                              "15:28:17", "1:58:36", "0:00:06", "0:08:43"};

  unsigned RowIdx = 0;
  for (corpus::SuiteRow &Row : Rows) {
    RowStats S;
    for (const corpus::BuiltBinary &BB : Row.Binaries) {
      hg::Lifter L(BB.Img, Cfg);
      if (Row.IsLibrary && !BB.Img.Functions.empty()) {
        hg::BinaryResult R = L.liftLibrary();
        for (const hg::FunctionResult &F : R.Functions) {
          // Only exported roots count as units; internal callees fold in.
          bool IsRoot = false;
          for (const elf::Symbol &Sym : BB.Img.Functions)
            IsRoot |= Sym.Addr == F.Entry;
          if (IsRoot)
            S.addFunction(F);
        }
      } else {
        S.add(L.liftBinary());
      }
    }

    printRow("ours", Row.Directory.c_str(), S.Lifted, S.Unprovable,
             S.Concurrency, S.Timeout, S.Instrs, S.States, S.A, S.B, S.C,
             S.Seconds);
    size_t PI = Row.IsLibrary ? PaperLibInstrs[RowIdx - 4]
                              : PaperBinInstrs[RowIdx];
    size_t PS = Row.IsLibrary ? PaperLibStates[RowIdx - 4]
                              : PaperBinStates[RowIdx];
    printRow("paper", Row.Directory.c_str(), Row.Paper.Lifted,
             Row.Paper.Unprovable, Row.Paper.Concurrency, Row.Paper.Timeout,
             PI, PS, PaperA[RowIdx], PaperB[RowIdx], PaperC[RowIdx], 0);
    std::printf("%-7s %79s paper time %s\n\n", "", "", PaperTime[RowIdx]);

    (Row.IsLibrary ? LibTotal : BinTotal).Lifted += S.Lifted;
    (Row.IsLibrary ? LibTotal : BinTotal).Unprovable += S.Unprovable;
    (Row.IsLibrary ? LibTotal : BinTotal).Concurrency += S.Concurrency;
    (Row.IsLibrary ? LibTotal : BinTotal).Timeout += S.Timeout;
    (Row.IsLibrary ? LibTotal : BinTotal).Instrs += S.Instrs;
    (Row.IsLibrary ? LibTotal : BinTotal).States += S.States;
    (Row.IsLibrary ? LibTotal : BinTotal).A += S.A;
    (Row.IsLibrary ? LibTotal : BinTotal).B += S.B;
    (Row.IsLibrary ? LibTotal : BinTotal).C += S.C;
    (Row.IsLibrary ? LibTotal : BinTotal).Seconds += S.Seconds;
    (Row.IsLibrary ? LibPaper : BinPaper).Lifted += Row.Paper.Lifted;
    ++RowIdx;
  }

  std::printf("--- totals ---\n");
  printRow("ours", "binaries", BinTotal.Lifted, BinTotal.Unprovable,
           BinTotal.Concurrency, BinTotal.Timeout, BinTotal.Instrs,
           BinTotal.States, BinTotal.A, BinTotal.B, BinTotal.C,
           BinTotal.Seconds);
  std::printf("%-7s %-20s paper: 63 = 45 + 3 + 13 + 1, 18 124 instrs, "
              "18 562 states, A=56 B=26 C=11, 0:35:59\n",
              "paper", "binaries");
  printRow("ours", "library functions", LibTotal.Lifted, LibTotal.Unprovable,
           LibTotal.Concurrency, LibTotal.Timeout, LibTotal.Instrs,
           LibTotal.States, LibTotal.A, LibTotal.B, LibTotal.C,
           LibTotal.Seconds);
  std::printf("%-7s %-20s paper: 2151 = 2115 + 32 + 0 + 4, 381 647 instrs, "
              "391 524 states, A=1 B=244 C=720, 17:35:42\n",
              "paper", "library functions");

  // Shape checks the harness asserts (who wins / what drives columns).
  bool ShapeOK = true;
  ShapeOK &= BinTotal.Lifted > 0 && LibTotal.Lifted > 0;
  ShapeOK &= LibTotal.States >= LibTotal.Instrs; // states ≈ instrs, ≥
  double StateRatio =
      static_cast<double>(LibTotal.States) /
      static_cast<double>(LibTotal.Instrs ? LibTotal.Instrs : 1);
  ShapeOK &= StateRatio < 1.5; // "close to the number of instructions"
  double LiftRate = static_cast<double>(LibTotal.Lifted) /
                    (LibTotal.Lifted + LibTotal.Unprovable +
                     LibTotal.Concurrency + LibTotal.Timeout);
  ShapeOK &= LiftRate > 0.9; // paper: 98%
  std::printf("\nshape: states/instrs = %.3f (paper 1.026), library lift "
              "rate = %.1f%% (paper 98%%) -> %s\n",
              StateRatio, 100.0 * LiftRate, ShapeOK ? "OK" : "MISMATCH");

  // --- VSA gate: on the jump-table corpus, the value-set analysis must
  // strictly move mass out of the unresolved columns (B+C, vs --no-vsa)
  // into column A, and its reports must stay byte-identical across
  // thread counts (docs/VSA.md).
  unsigned OnA = 0, OnBC = 0, OffA = 0, OffBC = 0;
  bool VsaOK = true;
  for (auto *Builder : {corpus::offsetTableBinary, corpus::callbackTableBinary,
                        corpus::maskedTableBinary,
                        corpus::widenedGuardTableBinary}) {
    auto BB = Builder();
    if (!BB) {
      VsaOK = false;
      continue;
    }
    for (bool Vsa : {true, false}) {
      hglift::Options O;
      O.Vsa.Enable = Vsa;
      hglift::Session S(BB->Img, O);
      const hg::BinaryResult &R = S.lift();
      (Vsa ? OnA : OffA) += R.totalA();
      (Vsa ? OnBC : OffBC) += R.totalB() + R.totalC();
    }
    std::string Rep[2];
    for (unsigned T = 1; T <= 2; ++T) {
      hglift::Options O;
      O.Lift.Threads = T;
      hglift::Session S(BB->Img, O);
      S.lift();
      std::ostringstream OS;
      S.writeReportJson(OS);
      Rep[T - 1] = OS.str();
    }
    VsaOK &= !Rep[0].empty() && Rep[0] == Rep[1];
  }
  VsaOK &= OnA > OffA;   // column A strictly up with VSA on
  VsaOK &= OnBC < OffBC; // B+C strictly down with VSA on
  std::printf("vsa: A %u -> %u, B+C %u -> %u (--no-vsa -> default), "
              "reports thread-identical -> %s\n",
              OffA, OnA, OffBC, OnBC, VsaOK ? "OK" : "MISMATCH");
  return (ShapeOK && VsaOK) ? 0 : 1;
}
