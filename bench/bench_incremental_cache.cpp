//===- bench_incremental_cache.cpp - Artifact-store incremental relift ----===//
//
// Measures what the content-addressed artifact store (src/store) buys for
// the edit-compile-verify loop: lift a corpus cold into a fresh cache
// directory, lift it again warm (every function served from the store and
// re-proven through Step-2), then simulate an incremental rebuild by
// patching one function's instruction bytes and re-lifting — only the
// patched function may miss. Gates:
//
//   * warm soundness: the warm run misses nothing, and every hit is
//     re-validated through the Step-2 checker (Validated == Hits) — a hit
//     is never trusted;
//   * report identity: the warm run's --report-json bytes are identical to
//     the cold run's, per corpus binary;
//   * incremental precision: after patching one function, the re-lift
//     misses at least once (the patched body) and still hits at least once
//     (everything else);
//   * speedup (full mode only): the warm run is >= 3x faster than cold —
//     Step-1's fixpoint must dominate deserialize + Step-2 re-proof.
//
// Results go to BENCH_incremental.json (override with --out PATH). --smoke
// runs a tiny corpus and skips the timing gate — that mode is wired into
// ctest as tier-1; the full run is registered as tier-2.
//
//===----------------------------------------------------------------------===//

#include "api/Hglift.h"
#include "corpus/Programs.h"
#include "store/Serialize.h"
#include "store/Store.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace hglift;
namespace fs = std::filesystem;

namespace {

struct CorpusItem {
  std::string Name;
  corpus::BuiltBinary BB;
  bool Library;
};

std::vector<CorpusItem> buildCorpus(bool Smoke) {
  std::vector<CorpusItem> Items;
  auto Add = [&](const char *Name, std::optional<corpus::BuiltBinary> BB,
                 bool Library) {
    if (BB)
      Items.push_back({Name, std::move(*BB), Library});
    else
      std::fprintf(stderr, "warning: corpus item %s failed to build\n", Name);
  };

  Add("branch_loop", corpus::branchLoopBinary(), false);
  Add("call_chain", corpus::callChainBinary(), false);
  if (Smoke)
    return Items;

  Add("jump_table", corpus::jumpTableBinary(), false);
  Add("recursion", corpus::recursionBinary(), false);
  Add("ret2win", corpus::ret2winBinary(), false);

  // Generated libraries: loop- and join-heavy code is where Step-1's
  // fixpoint (the cost the store amortizes away) dominates Step-2's
  // single-pass re-proof.
  struct LibDef {
    uint64_t Seed;
    unsigned Funcs, Instrs, JumpTablePct;
  };
  for (LibDef D : {LibDef{0xcace01, 6, 140, 30}, LibDef{0xcace02, 4, 220, 20},
                   LibDef{0xcace03, 8, 80, 35}}) {
    corpus::GenOptions G;
    G.Seed = D.Seed;
    G.NumFuncs = D.Funcs;
    G.TargetInstrs = D.Instrs;
    G.JumpTablePct = D.JumpTablePct;
    G.Name = "cache_lib_" + std::to_string(D.Seed & 0xf);
    Add(G.Name.c_str(), corpus::randomLibrary(G), true);
  }
  return Items;
}

struct PassResult {
  double Seconds = 0;
  store::CacheStats Stats; ///< summed across the corpus sessions
  std::vector<std::string> Reports;
};

void accumulate(store::CacheStats &Into, const store::CacheStats &S) {
  Into.Hits += S.Hits;
  Into.Misses += S.Misses;
  Into.Stored += S.Stored;
  Into.Validated += S.Validated;
  Into.ValidationFailures += S.ValidationFailures;
  Into.Evictions += S.Evictions;
}

/// One full pass over the corpus — lift, check, render the report — the
/// whole edit-loop turnaround the store is meant to shorten. Each binary
/// gets its own cache subdirectory: index refs are keyed by (function
/// entry, config digest), so distinct binaries with overlapping layouts
/// sharing one directory would evict each other's refs (sound — the byte
/// digest degrades that to a miss — but it defeats the warm path).
PassResult runPass(const std::vector<CorpusItem> &Items,
                   const fs::path &CacheDir) {
  PassResult P;
  auto T0 = std::chrono::steady_clock::now();
  for (const CorpusItem &I : Items) {
    Options O;
    O.Library = I.Library;
    O.Cache.Dir = (CacheDir / I.Name).string();
    Session S(I.BB.Img, O);
    S.lift();
    S.check();
    std::ostringstream OS;
    S.writeReportJson(OS);
    P.Reports.push_back(OS.str());
    if (auto CS = S.cacheStats())
      accumulate(P.Stats, *CS);
  }
  P.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  return P;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_incremental.json";
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--smoke")
      Smoke = true;
    else if (A == "--out" && I + 1 < argc)
      OutPath = argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: bench_incremental_cache [--smoke] [--out F]\n");
      return 2;
    }
  }

  std::vector<CorpusItem> Corpus = buildCorpus(Smoke);
  const int Reps = Smoke ? 1 : 3;
  fs::path Dir = fs::temp_directory_path() / "hglift_bench_incremental";

  std::printf("incremental cache: %zu corpus binaries, %d timing rep%s\n\n",
              Corpus.size(), Reps, Reps == 1 ? "" : "s");

  // Cold: every rep starts from an empty directory; the last rep leaves it
  // populated for the warm phase.
  PassResult Cold;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    fs::remove_all(Dir);
    fs::create_directories(Dir);
    PassResult P = runPass(Corpus, Dir);
    if (Rep == 0 || P.Seconds < Cold.Seconds) {
      double Best = P.Seconds;
      Cold = std::move(P);
      Cold.Seconds = Best;
    }
  }

  // Warm: everything should be served from the store and re-proven.
  PassResult Warm;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    PassResult P = runPass(Corpus, Dir);
    if (Rep == 0 || P.Seconds < Warm.Seconds) {
      double Best = P.Seconds;
      Warm = std::move(P);
      Warm.Seconds = Best;
    }
  }

  bool WarmAllHit = Warm.Stats.Hits > 0 && Warm.Stats.Misses == 0 &&
                    Warm.Stats.Validated == Warm.Stats.Hits;
  bool WarmIdentical = Warm.Reports == Cold.Reports;
  if (!WarmIdentical)
    for (size_t I = 0; I < Corpus.size(); ++I)
      if (Warm.Reports[I] != Cold.Reports[I])
        std::fprintf(stderr, "REPORT DIVERGED: %s warm != cold\n",
                     Corpus[I].Name.c_str());

  // Incremental rebuild: patch one instruction byte in one function of the
  // last corpus item (the heaviest library in full mode) and re-lift it.
  // Untimed prelude: find a patchable span via a cached lookup.
  const CorpusItem &VictimItem = Corpus.back();
  const hg::FunctionResult *Victim = nullptr;
  hg::BinaryResult VictimR;
  {
    Options O;
    O.Library = VictimItem.Library;
    O.Cache.Dir = (Dir / VictimItem.Name).string();
    Session S(VictimItem.BB.Img, O);
    VictimR = S.lift(); // copy — outlives the session
  }
  for (const hg::FunctionResult &F : VictimR.Functions)
    if (F.Outcome == hg::LiftOutcome::Lifted &&
        (!Victim || F.Entry > Victim->Entry))
      Victim = &F;

  double IncSeconds = 0;
  store::CacheStats IncStats;
  bool IncOK = false;
  if (Victim) {
    std::vector<store::Span> Spans = store::instructionSpans(*Victim);
    corpus::BuiltBinary Patched = VictimItem.BB;
    bool Done = false;
    for (elf::Segment &Seg : Patched.Img.Segments) {
      uint64_t A = Spans.empty() ? 0 : Spans.front().first;
      if (!Spans.empty() && Seg.contains(A)) {
        Seg.Bytes[A - Seg.VAddr] ^= 0x01;
        Done = true;
        break;
      }
    }
    if (Done) {
      std::vector<CorpusItem> One;
      One.push_back({VictimItem.Name, Patched, VictimItem.Library});
      PassResult Inc = runPass(One, Dir);
      IncSeconds = Inc.Seconds;
      IncStats = Inc.Stats;
      // Only the patched body may miss; its siblings must still hit.
      IncOK = IncStats.Misses >= 1 && IncStats.Hits >= 1;
    }
  }
  if (!IncOK)
    std::fprintf(stderr, "INCREMENTAL VIOLATION: patching one function must "
                         "miss it and hit the rest\n");

  double Speedup = Warm.Seconds > 0 ? Cold.Seconds / Warm.Seconds : 0;
  bool SpeedOK = Smoke || Speedup >= 3.0;

  std::printf("%-12s %9s %8s %8s %8s %10s\n", "phase", "seconds", "hits",
              "misses", "stored", "validated");
  auto Row = [](const char *Name, double Secs, const store::CacheStats &S) {
    std::printf("%-12s %9.3f %8llu %8llu %8llu %10llu\n", Name, Secs,
                static_cast<unsigned long long>(S.Hits),
                static_cast<unsigned long long>(S.Misses),
                static_cast<unsigned long long>(S.Stored),
                static_cast<unsigned long long>(S.Validated));
  };
  Row("cold", Cold.Seconds, Cold.Stats);
  Row("warm", Warm.Seconds, Warm.Stats);
  Row("incremental", IncSeconds, IncStats);

  std::printf("\nwarm all-hit + revalidated -> %s\n",
              WarmAllHit ? "OK" : "VIOLATED");
  std::printf("warm report bytes == cold -> %s\n",
              WarmIdentical ? "OK" : "VIOLATED");
  std::printf("incremental single-function miss -> %s\n",
              IncOK ? "OK" : "VIOLATED");
  std::printf("speedup warm vs cold: %.2fx%s\n", Speedup,
              Smoke ? " (not gated in smoke mode)" : "");
  if (!SpeedOK)
    std::printf("speedup -> VIOLATED (gate: >= 3.00x)\n");

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "cannot open %s for writing\n", OutPath.c_str());
    fs::remove_all(Dir);
    return 2;
  }
  char Buf[64];
  Out << "{\n  \"bench\": \"incremental_cache\",\n";
  Out << "  \"smoke\": " << (Smoke ? "true" : "false") << ",\n";
  Out << "  \"corpus_binaries\": " << Corpus.size() << ",\n";
  Out << "  \"functions_stored\": " << Cold.Stats.Stored << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.4f", Cold.Seconds);
  Out << "  \"cold_seconds\": " << Buf << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.4f", Warm.Seconds);
  Out << "  \"warm_seconds\": " << Buf << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.4f", IncSeconds);
  Out << "  \"incremental_seconds\": " << Buf << ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.3f", Speedup);
  Out << "  \"speedup_warm_vs_cold\": " << Buf << ",\n";
  Out << "  \"warm_hits\": " << Warm.Stats.Hits << ",\n";
  Out << "  \"warm_validated\": " << Warm.Stats.Validated << ",\n";
  Out << "  \"warm_report_identical\": " << (WarmIdentical ? "true" : "false")
      << ",\n";
  Out << "  \"incremental_hits\": " << IncStats.Hits << ",\n";
  Out << "  \"incremental_misses\": " << IncStats.Misses << "\n}\n";
  std::printf("wrote %s\n", OutPath.c_str());

  fs::remove_all(Dir);
  return WarmAllHit && WarmIdentical && IncOK && SpeedOK ? 0 : 1;
}
