//===- bench_fig3_scaling.cpp - Reproduce Figure 3 ------------------------===//
//
// Figure 3 plots per-function verification time against instruction count
// for the Xen library functions (up to 3925 instructions) and observes
// "very little correlation between verification times and instruction
// count": time is driven by joins and indirection resolution, not size.
//
// We regenerate the scatter on generated functions across the size
// spectrum (including a libxl_domain_suspend-sized outlier), printing the
// (instruction count, seconds) series sorted by size plus the Pearson
// correlation coefficient. The shape claims: a wide spread of times at
// every size band and a modest correlation.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "hg/Lifter.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

using namespace hglift;

int main(int argc, char **argv) {
  unsigned NumFuncs = 40;
  for (int I = 1; I < argc; ++I)
    if (std::string(argv[I]) == "--funcs" && I + 1 < argc)
      NumFuncs = static_cast<unsigned>(std::atoi(argv[++I]));

  std::printf("Figure 3: verification time vs instruction count\n");
  std::printf("(%u generated functions; paper: 1907 Xen library functions, "
              "largest 3925 instrs in 49m10s)\n\n",
              NumFuncs);

  Rng R(0xf16);
  hg::LiftConfig Cfg;
  Cfg.MaxVertices = 20000;
  Cfg.MaxSeconds = 60.0;

  struct Point {
    size_t Instrs;
    double Seconds;
  };
  std::vector<Point> Points;

  for (unsigned I = 0; I < NumFuncs; ++I) {
    corpus::GenOptions G;
    G.Seed = R.next();
    G.NumFuncs = 1;
    // Log-uniform sizes from ~20 to ~2000 instructions, echoing the
    // paper's distribution; a couple of large outliers.
    double T = static_cast<double>(I) / NumFuncs;
    G.TargetInstrs = static_cast<unsigned>(20.0 * std::pow(100.0, T));
    if (I == NumFuncs - 1)
      G.TargetInstrs = 3000; // the libxl_domain_suspend-shaped outlier
    G.JumpTablePct = 25;
    G.ExternalPct = 30;
    // Vary the pointer-write density: memory-model branching, not size, is
    // what drives verification cost (the paper's low-correlation point).
    G.ArgWritePct = static_cast<unsigned>(R.below(30));
    G.Name = "fig3_fn_" + std::to_string(I);

    auto BB = corpus::randomLibrary(G);
    if (!BB)
      continue;
    hg::Lifter L(BB->Img, Cfg);
    hg::BinaryResult BR = L.liftLibrary();
    for (const hg::FunctionResult &F : BR.Functions) {
      if (F.Outcome != hg::LiftOutcome::Lifted)
        continue;
      bool IsRoot = false;
      for (const elf::Symbol &Sym : BB->Img.Functions)
        IsRoot |= Sym.Addr == F.Entry;
      if (IsRoot)
        Points.push_back({F.numInstructions(), F.Seconds});
    }
  }

  std::sort(Points.begin(), Points.end(),
            [](const Point &A, const Point &B) { return A.Instrs < B.Instrs; });

  std::printf("%10s %12s\n", "instrs", "seconds");
  for (const Point &P : Points)
    std::printf("%10zu %12.4f\n", P.Instrs, P.Seconds);

  // Pearson correlation.
  double N = static_cast<double>(Points.size());
  double SX = 0, SY = 0, SXX = 0, SYY = 0, SXY = 0;
  for (const Point &P : Points) {
    double X = static_cast<double>(P.Instrs), Y = P.Seconds;
    SX += X;
    SY += Y;
    SXX += X * X;
    SYY += Y * Y;
    SXY += X * Y;
  }
  double Num = N * SXY - SX * SY;
  double Den = std::sqrt((N * SXX - SX * SX) * (N * SYY - SY * SY));
  double Corr = Den > 0 ? Num / Den : 0;

  std::printf("\n%zu functions, Pearson correlation(instrs, time) = %.3f\n",
              Points.size(), Corr);
  std::printf("paper's observation: \"very little correlation between "
              "verification times and instruction count\"\n");
  // Shape check: times must not be a clean function of size.
  bool ShapeOK = Points.size() >= 10 && Corr < 0.95;
  std::printf("shape -> %s\n", ShapeOK ? "OK" : "MISMATCH");

  // --- Threads axis: parallel lifting speedup on the largest suite. ---
  // The per-function engine (src/hg/Lifter.cpp) distributes entries over a
  // work queue; this measures end-to-end wall time at 1/2/4/8 threads on
  // one many-function library. The speedup gate only applies on machines
  // with >= 4 hardware threads — on smaller containers the table is
  // informational (a 1-CPU box cannot show parallel speedup).
  std::printf("\nThreads axis: parallel lifting of one %u-function library\n",
              32u);
  corpus::GenOptions TG;
  TG.Seed = 0xf16a;
  TG.NumFuncs = 32;
  TG.TargetInstrs = 120;
  TG.JumpTablePct = 20;
  TG.ExternalPct = 25;
  TG.Name = "fig3_threads";
  auto TB = corpus::randomLibrary(TG);
  bool ThreadsOK = true;
  if (TB) {
    unsigned HW = std::thread::hardware_concurrency();
    double Base = 0;
    std::printf("%8s %12s %10s\n", "threads", "seconds", "speedup");
    for (unsigned NT : {1u, 2u, 4u, 8u}) {
      hg::LiftConfig TCfg = Cfg;
      TCfg.Threads = NT;
      hg::Lifter TL(TB->Img, TCfg);
      auto T0 = std::chrono::steady_clock::now();
      hg::BinaryResult TR = TL.liftLibrary();
      double Secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - T0)
                        .count();
      if (NT == 1)
        Base = Secs;
      std::printf("%8u %12.3f %9.2fx\n", NT, Secs,
                  Base > 0 ? Base / Secs : 0.0);
      if (NT == 4 && HW >= 4 && Base / Secs < 1.5) {
        std::printf("threads -> MISMATCH (expected >1.5x at 4 threads on "
                    "%u-way hardware)\n",
                    HW);
        ThreadsOK = false;
      }
      (void)TR;
    }
    if (HW < 4)
      std::printf("(only %u hardware thread%s: speedup gate skipped)\n", HW,
                  HW == 1 ? "" : "s");
  }

  return ShapeOK && ThreadsOK ? 0 : 1;
}
