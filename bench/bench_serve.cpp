//===- bench_serve.cpp - hglift serve daemon gates -----------------------===//
//
// Measures what the serve daemon is for — not lifting faster, but not
// paying twice — against the real shipped binary over its Unix socket:
//
//   * warm-identity gate (always on): for every corpus binary, the warm
//     (store-hit) response's report payload is byte-identical to the cold
//     response's — serving from the warm store must be invisible in the
//     bytes, exactly like the CLI's warm-vs-cold --cache-dir contract;
//   * dedup gate (always on): a second client submitting the same corpus
//     is served from the store (hit ratio > 0) and writes nothing new —
//     two clients submitting identical instruction bytes pay for one lift;
//   * warm-latency gate (full mode only): the warm pass is >= 2x faster
//     than the cold pass end-to-end;
//   * saturation phase (full mode, >= 4 hardware threads — auto-skipped
//     with the reason recorded, matching BENCH_shard.json convention):
//     more concurrent clients than workers; reports p50/p99 request
//     latency and gates on zero protocol errors under overload.
//
// Results go to BENCH_serve.json (--out PATH to override). --smoke runs a
// tiny corpus and only the identity/dedup gates; that mode is wired into
// ctest tier 1, the full run into tier 2.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "diag/Json.h"
#include "serve/Serve.h"
#include "shard/LineProto.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace hglift;

namespace {

std::string jsonNum(double D) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", D);
  return Buf;
}

// --- corpus ---------------------------------------------------------------

struct CorpusItem {
  std::string Name;
  corpus::BuiltBinary BB;
};

std::vector<CorpusItem> buildCorpus(bool Smoke) {
  std::vector<CorpusItem> Items;
  auto Add = [&](const char *Name, std::optional<corpus::BuiltBinary> BB) {
    if (BB)
      Items.push_back({Name, std::move(*BB)});
    else
      std::fprintf(stderr, "warning: corpus item %s failed to build\n", Name);
  };
  Add("straightline", corpus::straightlineBinary());
  Add("branch_loop", corpus::branchLoopBinary());
  if (Smoke)
    return Items;
  Add("call_chain", corpus::callChainBinary());
  Add("jump_table", corpus::jumpTableBinary());
  Add("callback", corpus::callbackBinary());
  Add("recursion", corpus::recursionBinary());
  Add("stack_probe", corpus::stackProbeBinary());
  return Items;
}

std::vector<std::string> corpusToDisk(const std::vector<CorpusItem> &Corpus,
                                      const std::string &Dir) {
  std::filesystem::create_directories(Dir);
  std::vector<std::string> Paths;
  for (const CorpusItem &It : Corpus) {
    std::string P = Dir + "/" + It.Name + ".elf";
    std::ofstream Out(P, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(It.BB.ElfBytes.data()),
              static_cast<std::streamsize>(It.BB.ElfBytes.size()));
    Paths.push_back(P);
  }
  return Paths;
}

// --- daemon + client plumbing ---------------------------------------------

int connectSock(const std::string &Path) {
  sockaddr_un SU{};
  SU.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(SU.sun_path))
    return -1;
  std::memcpy(SU.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&SU), sizeof(SU)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

struct Daemon {
  pid_t Pid = -1;
  std::string Sock;
  bool Ready = false;

  Daemon(const std::string &Sock, const std::vector<std::string> &Extra)
      : Sock(Sock) {
    ::unlink(Sock.c_str());
    std::vector<std::string> Args = {HGLIFT_BIN, "serve", "--socket", Sock};
    Args.insert(Args.end(), Extra.begin(), Extra.end());
    std::fflush(stdout);
    std::fflush(stderr);
    Pid = fork();
    if (Pid == 0) {
      std::vector<char *> Argv;
      for (std::string &A : Args)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      FILE *Null = freopen("/dev/null", "w", stdout);
      (void)Null;
      execv(HGLIFT_BIN, Argv.data());
      _exit(127);
    }
    for (int I = 0; Pid > 0 && I < 400; ++I) {
      int Fd = connectSock(Sock);
      if (Fd >= 0) {
        ::close(Fd);
        Ready = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }

  ~Daemon() {
    if (Pid > 0) {
      kill(Pid, SIGTERM);
      int St;
      waitpid(Pid, &St, 0);
    }
    ::unlink(Sock.c_str());
  }
};

struct RequestResult {
  bool Ok = false; ///< got a result and a clean done (no protocol error)
  int Exit = -1;   ///< the result's exit field (may legitimately be 1 for
                   ///< corpus binaries with annotated/unproven outcomes)
  double Ms = 0;
  std::string Report;
};

/// Submit one check request over Fd and drain it through its terminal
/// event, timing send-to-done.
RequestResult submitCheck(int Fd, std::string &Buf, const std::string &Id,
                          const std::string &File) {
  RequestResult R;
  std::string Req = "{\"op\":\"check\",\"id\":\"" + Id + "\",\"file\":\"" +
                    File + "\"}\n";
  bool GotResult = false;
  auto T0 = std::chrono::steady_clock::now();
  if (!shard::writeAll(Fd, Req))
    return R;
  for (;;) {
    std::optional<std::string> L = shard::readLineBlocking(Fd, Buf);
    if (!L)
      return R;
    std::optional<diag::JValue> V = diag::parseJson(*L);
    if (!V || !V->isObj())
      return R;
    std::string Ev = V->str("event");
    if (Ev == "result") {
      R.Report = V->str("report");
      R.Exit = static_cast<int>(V->num("exit", -1));
      GotResult = true;
    } else if (Ev == "done") {
      R.Ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
      R.Ok = GotResult;
      return R;
    } else if (Ev == "error" || Ev == "rejected") {
      return R;
    }
  }
}

/// Fetch the daemon's store counters through a metrics request.
bool fetchCache(const std::string &Sock, uint64_t &Hits, uint64_t &Misses,
                uint64_t &Stored) {
  int Fd = connectSock(Sock);
  if (Fd < 0)
    return false;
  std::string Buf;
  bool Ok = false;
  if (shard::writeAll(Fd, "{\"op\":\"metrics\",\"id\":\"m\"}\n")) {
    std::optional<std::string> L = shard::readLineBlocking(Fd, Buf);
    if (L) {
      std::optional<diag::JValue> V = diag::parseJson(*L);
      if (V && V->isObj()) {
        if (const diag::JValue *Cache = V->get("cache")) {
          Hits = static_cast<uint64_t>(Cache->num("hits", 0));
          Misses = static_cast<uint64_t>(Cache->num("misses", 0));
          Stored = static_cast<uint64_t>(Cache->num("stored", 0));
          Ok = true;
        }
      }
    }
  }
  ::close(Fd);
  return Ok;
}

double pct(std::vector<double> V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t I = static_cast<size_t>(P * double(V.size() - 1) + 0.5);
  return V[std::min(I, V.size() - 1)];
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_serve.json";
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--smoke")
      Smoke = true;
    else if (A == "--out" && I + 1 < argc)
      OutPath = argv[++I];
    else {
      std::fprintf(stderr, "usage: bench_serve [--smoke] [--out F]\n");
      return 2;
    }
  }
  ::signal(SIGPIPE, SIG_IGN);

  std::vector<CorpusItem> Corpus = buildCorpus(Smoke);
  std::string WorkRoot = "/tmp/hglift_bench_serve";
  std::filesystem::remove_all(WorkRoot);
  std::vector<std::string> Paths = corpusToDisk(Corpus, WorkRoot + "/elfs");
  std::printf("serve bench: %zu corpus binaries%s\n\n", Paths.size(),
              Smoke ? " (smoke)" : "");

  // Phase 1+2: for every binary, client A submits first (cold), then
  // client B submits the identical bytes (warm) — the ISSUE's dedup
  // contract, measured per binary. Interleaving DIFFERENT binaries would
  // instead exercise the store's entry-address ref thrash (two corpus
  // binaries share a TextBase), which is a store property, not a serve
  // one. Memo off so warmth is the artifact store (the soundness-carrying
  // path), not the whole-file memo.
  std::string Sock = WorkRoot + "/bench.sock";
  Daemon D(Sock, {"--threads", "1", "--cache-dir", WorkRoot + "/cache",
                  "--memo-max", "0"});
  if (!D.Ready) {
    std::fprintf(stderr, "daemon never came up on %s\n", Sock.c_str());
    return 3;
  }

  bool AllOk = true, WarmIdentical = true, DedupHit = true,
       DedupNoNewWrites = true;
  double ColdMs = 0, WarmMs = 0;
  uint64_t WarmHitTotal = 0, WarmLookupTotal = 0;
  int ClientA = connectSock(Sock), ClientB = connectSock(Sock);
  std::string BufA, BufB;
  for (size_t I = 0; I < Paths.size(); ++I) {
    RequestResult Cold =
        submitCheck(ClientA, BufA, "cold" + std::to_string(I), Paths[I]);
    AllOk = AllOk && Cold.Ok;
    ColdMs += Cold.Ms;
    uint64_t H0 = 0, M0 = 0, S0 = 0, H1 = 0, M1 = 0, S1 = 0;
    fetchCache(Sock, H0, M0, S0);
    RequestResult Warm =
        submitCheck(ClientB, BufB, "warm" + std::to_string(I), Paths[I]);
    AllOk = AllOk && Warm.Ok;
    WarmMs += Warm.Ms;
    WarmIdentical = WarmIdentical && Warm.Report == Cold.Report &&
                    Warm.Exit == Cold.Exit;
    fetchCache(Sock, H1, M1, S1);
    DedupHit = DedupHit && H1 > H0;
    DedupNoNewWrites = DedupNoNewWrites && S1 == S0;
    WarmHitTotal += H1 - H0;
    WarmLookupTotal += (H1 - H0) + (M1 - M0);
  }
  ::close(ClientA);
  ::close(ClientB);

  double DedupRatio =
      WarmLookupTotal > 0 ? double(WarmHitTotal) / double(WarmLookupTotal)
                          : 0;
  double WarmSpeedup = WarmMs > 0 ? ColdMs / WarmMs : 0;
  std::printf("cold %7.1fms  warm %7.1fms  (%.2fx)  reports %s\n",
              ColdMs, WarmMs, WarmSpeedup,
              WarmIdentical ? "identical" : "DIFFER");
  std::printf("dedup: second client hit %llu/%llu lookups, %s new store "
              "writes\n\n",
              (unsigned long long)WarmHitTotal,
              (unsigned long long)WarmLookupTotal,
              DedupNoNewWrites ? "no" : "UNEXPECTED");

  // Wall-clock gates are meaningless without real parallelism (and quiet
  // cores) underneath, so every timing gate auto-skips below 4 hardware
  // threads and in smoke mode, recording the reason.
  unsigned HwThreads = std::thread::hardware_concurrency();
  bool TimingSkipped = Smoke || HwThreads < 4;
  std::string TimingSkipReason = !TimingSkipped ? ""
                                 : Smoke        ? "smoke mode"
                                          : "fewer than 4 hardware threads";

  // Phase 3: saturation — more clients than workers.
  bool SatSkipped = TimingSkipped;
  const std::string &SatSkipReason = TimingSkipReason;
  double SatP50 = 0, SatP99 = 0;
  uint64_t SatRequests = 0, SatErrors = 0;
  bool SatPass = true;
  if (!SatSkipped) {
    const unsigned Clients = 8;
    std::atomic<uint64_t> Errors{0};
    std::mutex LatMu;
    std::vector<double> Lat;
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < Clients; ++T)
      Threads.emplace_back([&, T] {
        int Fd = connectSock(Sock);
        if (Fd < 0) {
          ++Errors;
          return;
        }
        std::string Buf;
        for (unsigned I = 0; I < 4; ++I) {
          RequestResult R = submitCheck(
              Fd, Buf, std::to_string(T) + "-" + std::to_string(I),
              Paths[(T + I) % Paths.size()]);
          if (!R.Ok)
            ++Errors;
          std::lock_guard<std::mutex> G(LatMu);
          Lat.push_back(R.Ms);
        }
        ::close(Fd);
      });
    for (std::thread &T : Threads)
      T.join();
    SatRequests = Lat.size();
    SatErrors = Errors.load();
    SatP50 = pct(Lat, 0.50);
    SatP99 = pct(Lat, 0.99);
    SatPass = SatErrors == 0;
    std::printf("saturation: %llu requests over %u clients, p50 %.1fms "
                "p99 %.1fms, %llu errors\n\n",
                (unsigned long long)SatRequests, Clients, SatP50, SatP99,
                (unsigned long long)SatErrors);
  } else {
    std::printf("saturation: skipped (%s)\n\n", SatSkipReason.c_str());
  }

  // Gates. The warm-latency ratio is a timing gate; it is deliberately
  // modest (1.2x) because a store hit still pays the Step-2 re-proof —
  // validate-don't-trust means warmth only ever removes Step-1.
  bool GateOk = AllOk;
  bool GateIdentity = WarmIdentical;
  bool GateDedup = DedupHit && DedupNoNewWrites;
  bool GateWarm = TimingSkipped || WarmSpeedup >= 1.2;
  bool Pass = GateOk && GateIdentity && GateDedup && GateWarm && SatPass;

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    return 3;
  }
  Out << "{\n"
      << "  \"bench\": \"serve\",\n"
      << "  \"smoke\": " << (Smoke ? "true" : "false") << ",\n"
      << "  \"corpus_binaries\": " << Paths.size() << ",\n"
      << "  \"warm_cold\": {\n"
      << "    \"cold_wall_ms\": " << jsonNum(ColdMs) << ",\n"
      << "    \"warm_wall_ms\": " << jsonNum(WarmMs) << ",\n"
      << "    \"warm_speedup\": " << jsonNum(WarmSpeedup) << ",\n"
      << "    \"timing_gate_skipped\": "
      << (TimingSkipped ? "true" : "false") << ",\n"
      << "    \"skip_reason\": \"" << TimingSkipReason << "\",\n"
      << "    \"reports_identical\": " << (WarmIdentical ? "true" : "false")
      << "\n"
      << "  },\n"
      << "  \"dedup\": {\n"
      << "    \"warm_hits\": " << WarmHitTotal << ",\n"
      << "    \"warm_lookups\": " << WarmLookupTotal << ",\n"
      << "    \"no_new_writes\": " << (DedupNoNewWrites ? "true" : "false")
      << ",\n"
      << "    \"warm_hit_ratio\": " << jsonNum(DedupRatio) << "\n"
      << "  },\n"
      << "  \"saturation\": {\n"
      << "    \"hardware_threads\": " << HwThreads << ",\n"
      << "    \"skipped\": " << (SatSkipped ? "true" : "false") << ",\n"
      << "    \"skip_reason\": \"" << SatSkipReason << "\",\n"
      << "    \"requests\": " << SatRequests << ",\n"
      << "    \"protocol_errors\": " << SatErrors << ",\n"
      << "    \"p50_ms\": " << jsonNum(SatP50) << ",\n"
      << "    \"p99_ms\": " << jsonNum(SatP99) << "\n"
      << "  },\n"
      << "  \"gates\": {\n"
      << "    \"all_requests_completed\": " << (GateOk ? "true" : "false")
      << ",\n"
      << "    \"warm_report_identity\": "
      << (GateIdentity ? "true" : "false") << ",\n"
      << "    \"cross_client_dedup\": " << (GateDedup ? "true" : "false")
      << ",\n"
      << "    \"warm_speedup_1_2x\": "
      << (TimingSkipped ? "\"skipped\"" : (GateWarm ? "true" : "false"))
      << ",\n"
      << "    \"saturation_zero_errors\": "
      << (SatSkipped ? "\"skipped\"" : (SatPass ? "true" : "false")) << "\n"
      << "  },\n"
      << "  \"pass\": " << (Pass ? "true" : "false") << "\n"
      << "}\n";
  std::printf("%s -> %s\n", Pass ? "PASS" : "FAIL", OutPath.c_str());
  return Pass ? 0 : 1;
}
