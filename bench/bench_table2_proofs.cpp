//===- bench_table2_proofs.cpp - Reproduce Table 2 ------------------------===//
//
// Regenerates Table 2 ("Overview of binaries exported to Isabelle/HOL"):
// six CoreUtils-shaped binaries are lifted, every Hoare triple is
// re-verified by the independent Step-2 checker (the stand-in for the
// Isabelle proofs, DESIGN.md §4), and the Isabelle theory is emitted. The
// paper's claim to reproduce: *all* Hoare triples prove automatically, and
// there are no unresolved indirections.
//
//===----------------------------------------------------------------------===//

#include "api/Hglift.h"
#include "corpus/Suites.h"
#include "export/HoareChecker.h"
#include "export/IsabelleExport.h"
#include "support/Format.h"

#include <cstdio>

using namespace hglift;

int main() {
  std::printf("Table 2: Binaries exported to Isabelle/HOL (synthetic "
              "CoreUtils corpus, sizes scaled 1/10)\n\n");
  std::printf("%-10s %12s %14s %14s %10s %10s %8s\n", "Binary", "#Instrs",
              "paper #Instrs", "#Indirections", "paper #Ind", "#Triples",
              "proven");

  auto Suite = corpus::buildCoreutilsSuite();

  hg::LiftConfig Cfg;
  Cfg.MaxVertices = 4000;
  Cfg.MaxSeconds = 30.0;

  size_t TotInstrs = 0, TotInd = 0, TotTriples = 0, TotProven = 0;
  bool AllLifted = true;
  for (corpus::Table2Entry &E : Suite) {
    Options O;
    O.Lift = Cfg;
    Session S(E.Binary.Img, O);
    const hg::BinaryResult &R = S.lift();
    AllLifted &= R.Outcome == hg::LiftOutcome::Lifted;

    const exporter::CheckResult &C = S.check();

    exporter::IsabelleOptions IOpts;
    IOpts.TheoryName = E.Name + "_hg";
    size_t Lemmas = 0;
    std::string Thy =
        exporter::exportBinary(S.scratchContext(), R, IOpts, &Lemmas);
    static_cast<void>(Thy);

    std::printf("%-10s %12s %14s %14u %10u %10zu %7zu%s\n", E.Name.c_str(),
                groupedStr(R.totalInstructions()).c_str(),
                groupedStr(E.PaperInstrs).c_str(), R.totalA(),
                E.PaperIndirections, C.Theorems, C.Proven,
                C.allProven() ? "" : " *INCOMPLETE*");

    TotInstrs += R.totalInstructions();
    TotInd += R.totalA();
    TotTriples += C.Theorems;
    TotProven += C.Proven;
  }

  std::printf("%-10s %12s %14s %14s %10s %10zu %7zu\n", "Total",
              groupedStr(TotInstrs).c_str(), "16 078",
              groupedStr(TotInd).c_str(), "37", TotTriples, TotProven);

  bool ShapeOK = AllLifted && TotTriples > 0 && TotProven == TotTriples;
  std::printf("\nshape: all binaries lifted, %zu/%zu Hoare triples proven "
              "automatically (paper: all) -> %s\n",
              TotProven, TotTriples, ShapeOK ? "OK" : "MISMATCH");
  return ShapeOK ? 0 : 1;
}
