//===- bench_shard.cpp - Sharded lifting + solver-portfolio gates ---------===//
//
// The harness that proves the two subsystems this bench is named for are
// pure speed, no drift:
//
//   * portfolio gates: lifting the hotpath corpus with the tiered solver
//     portfolio must (a) leave every Hoare graph, obligation and outcome
//     identical to the legacy single-tier path, (b) cut the number of
//     Z3-tier round trips by >= 1.5x, and (c) cut uncached query time
//     (LiftStats::SolverSeconds) by >= 1.5x — all on a single CPU, no
//     parallelism involved;
//   * differential gate: every recorded query replayed through each tier
//     in isolation, zero tiers contradicting the forced-Z3 oracle and
//     zero definite answers forfeited by the tier-2 admission filter
//     (queries under unsatisfiable predicates are vacuous and excluded —
//     see tests/solver_portfolio_test.cpp);
//   * shard gate: the merged report of a 2- and 4-worker `hglift shard`
//     run is byte-identical to the serial run;
//   * scaling gate (full mode, >= 4 hardware threads only — auto-skipped
//     and reported as such on smaller machines): 4 workers beat the
//     serial run by >= 1.3x wall clock;
//   * skew gate (same auto-skip rule, with the reason recorded in the
//     JSON): on a corpus with one dominant binary parked behind a static
//     round-robin slice-mate, the work-stealing scheduler beats the
//     --no-work-stealing ablation by >= 1.3x wall clock with identical
//     merged bytes; a ledger-warm rerun (observed seconds driving claim
//     order, artifact store dropped) is timed alongside.
//
// Results go to BENCH_shard.json (--out PATH to override). --smoke runs a
// tiny corpus and only the identity/consistency gates; that mode is wired
// into ctest tier 1, the full run into tier 2.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "hg/Lifter.h"
#include "shard/Shard.h"
#include "smt/RelationSolver.h"
#include "support/Format.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

using namespace hglift;

namespace {

// --- corpus (same shape as bench_step1_hotpath) --------------------------

struct CorpusItem {
  std::string Name;
  corpus::BuiltBinary BB;
  bool Library;
};

std::vector<CorpusItem> buildCorpus(bool Smoke) {
  std::vector<CorpusItem> Items;
  auto Add = [&](const char *Name, std::optional<corpus::BuiltBinary> BB,
                 bool Library) {
    if (BB)
      Items.push_back({Name, std::move(*BB), Library});
    else
      std::fprintf(stderr, "warning: corpus item %s failed to build\n", Name);
  };
  Add("branch_loop", corpus::branchLoopBinary(), false);
  Add("jump_table", corpus::jumpTableBinary(), false);
  if (Smoke) {
    Add("call_chain", corpus::callChainBinary(), false);
    return Items;
  }
  Add("weird_edge", corpus::weirdEdgeBinary(), false);
  Add("straightline", corpus::straightlineBinary(), false);
  Add("call_chain", corpus::callChainBinary(), false);
  Add("callback", corpus::callbackBinary(), false);
  Add("recursion", corpus::recursionBinary(), false);
  Add("ret2win", corpus::ret2winBinary(), false);
  Add("overflow", corpus::overflowBinary(), false);
  Add("stack_probe", corpus::stackProbeBinary(), false);
  struct LibDef {
    uint64_t Seed;
    unsigned Funcs, Instrs, JumpTablePct;
  };
  for (LibDef D : {LibDef{0x40710a, 6, 120, 30}, LibDef{0x40710b, 4, 250, 20},
                   LibDef{0x40710c, 8, 60, 40}}) {
    corpus::GenOptions G;
    G.Seed = D.Seed;
    G.NumFuncs = D.Funcs;
    G.TargetInstrs = D.Instrs;
    G.JumpTablePct = D.JumpTablePct;
    G.Name = "hotpath_lib_" + std::to_string(D.Seed & 0xf);
    Add(G.Name.c_str(), corpus::randomLibrary(G), true);
  }
  return Items;
}

// --- structural fingerprint (fresh numbering stripped, order-insensitive
// parts sorted; same convention as bench_step1_hotpath) -------------------

std::string stripFreshNumbers(const std::string &S) {
  std::string Out;
  for (size_t I = 0; I < S.size(); ++I) {
    Out += S[I];
    if (S[I] == '#')
      while (I + 1 < S.size() && isdigit(static_cast<unsigned char>(S[I + 1])))
        ++I;
  }
  return Out;
}

std::string fingerprint(const hg::BinaryResult &R) {
  std::string S;
  S += "outcome " + std::string(hg::liftOutcomeName(R.Outcome)) + " " +
       R.FailReason + "\n";
  for (const hg::FunctionResult &F : R.Functions) {
    S += "fn " + hexStr(F.Entry) + " " +
         std::string(hg::liftOutcomeName(F.Outcome)) + " " + F.FailReason;
    if (F.Outcome != hg::LiftOutcome::Lifted) {
      S += "\n";
      continue;
    }
    S += " ret " + std::to_string(F.MayReturn) + "\n";
    std::vector<std::string> Lines, Edges;
    for (const auto &[Key, V] : F.Graph.Vertices) {
      std::string L = "  v " + hexStr(Key.Rip);
      if (F.Arena) {
        L += " P=" + stripFreshNumbers(V.State.P.str(F.Arena->ctx()));
        L += " M=" + stripFreshNumbers(V.State.M.str(F.Arena->ctx()));
      }
      Lines.push_back(std::move(L));
    }
    for (const hg::Edge &E : F.Graph.Edges)
      Edges.push_back("  e " + hexStr(E.From.Rip) + " -> " +
                      hexStr(E.To.Rip));
    std::sort(Lines.begin(), Lines.end());
    std::sort(Edges.begin(), Edges.end());
    for (auto &L : Lines)
      S += L + "\n";
    for (auto &E : Edges)
      S += E + "\n";
  }
  std::vector<std::string> Obls = R.allObligations();
  for (auto &O : Obls)
    O = stripFreshNumbers(O);
  std::sort(Obls.begin(), Obls.end());
  for (auto &O : Obls)
    S += "obl " + O + "\n";
  return S;
}

// --- phase 1: portfolio vs legacy ----------------------------------------

struct ModeTotals {
  double Wall = 0;
  LiftStats Stats;
  std::vector<std::string> Fingerprints;
};

ModeTotals runMode(const std::vector<CorpusItem> &Corpus, bool Portfolio,
                   int Reps) {
  ModeTotals T;
  hg::LiftConfig Cfg;
  Cfg.Solver.Portfolio = Portfolio;
  double BestWall = -1;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    LiftStats Run;
    auto T0 = std::chrono::steady_clock::now();
    for (const CorpusItem &It : Corpus) {
      hg::Lifter L(It.BB.Img, Cfg);
      hg::BinaryResult R = It.Library ? L.liftLibrary() : L.liftBinary();
      Run.merge(R.Total);
      if (Rep == 0)
        T.Fingerprints.push_back(fingerprint(R));
    }
    double Secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    // Best-of-N for both wall time and the solver-seconds counter (they
    // co-vary; a noisy rep inflates both).
    if (BestWall < 0 || Secs < BestWall) {
      BestWall = Secs;
      T.Stats = Run;
    }
  }
  T.Wall = BestWall;
  return T;
}

// --- phase 2: differential replay ----------------------------------------

struct DiffTotals {
  uint64_t Replayed = 0;
  uint64_t UnsatSkipped = 0;
  uint64_t Disagreements = 0;
};

void replayOne(smt::RelationSolver &S, DiffTotals &D) {
  using smt::MemRel;
  using smt::Tier;
  for (const smt::RelationSolver::LoggedQuery &Q : S.queryLog()) {
    smt::Region R0{Q.A0, Q.S0}, R1{Q.A1, Q.S1};
    // Vacuous under an unsatisfiable predicate: every relation "holds".
    if (S.decideWithTierOnly(R0, R0, Q.P, Tier::Z3).Rel == MemRel::MustSep) {
      ++D.UnsatSkipped;
      continue;
    }
    ++D.Replayed;
    MemRel T0 = S.decideWithTierOnly(R0, R1, Q.P, Tier::Syntactic).Rel;
    MemRel T1 = S.decideWithTierOnly(R0, R1, Q.P, Tier::Interval).Rel;
    MemRel Z = S.decideWithTierOnly(R0, R1, Q.P, Tier::Z3).Rel;
    auto Def = [](MemRel R) { return R != MemRel::Unknown; };
    if (Def(T0) && Def(Z) && T0 != Z)
      ++D.Disagreements;
    if (Def(T1) && Def(Z) && T1 != Z)
      ++D.Disagreements;
    if (Def(T0) && Def(T1) && T0 != T1)
      ++D.Disagreements;
    // The admission filter (and any fallthrough) may only drop answers
    // the oracle cannot produce either.
    if (Q.DecidedBy == Tier::None && Def(Z))
      ++D.Disagreements;
  }
}

DiffTotals runDifferential(const std::vector<CorpusItem> &Corpus) {
  DiffTotals D;
  hg::LiftConfig Cfg;
  Cfg.Solver.LogQueries = true;
  for (const CorpusItem &It : Corpus) {
    hg::Lifter L(It.BB.Img, Cfg);
    hg::BinaryResult R = It.Library ? L.liftLibrary() : L.liftBinary();
    for (hg::FunctionResult &F : R.Functions)
      if (F.Arena)
        replayOne(F.Arena->solver(), D);
  }
  return D;
}

// --- phase 3/4: shard byte identity and scaling --------------------------

std::vector<std::string> corpusToDisk(const std::vector<CorpusItem> &Corpus,
                                      const std::string &Dir) {
  std::filesystem::create_directories(Dir);
  std::vector<std::string> Paths;
  for (const CorpusItem &It : Corpus) {
    std::string P = Dir + "/" + It.Name + ".elf";
    std::ofstream Out(P, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(It.BB.ElfBytes.data()),
              static_cast<std::streamsize>(It.BB.ElfBytes.size()));
    Paths.push_back(P);
  }
  return Paths;
}

struct ShardRun {
  bool Ok = false;
  double Wall = 0;
  std::string Report;
};

ShardRun runShardMode(const std::vector<std::string> &Paths,
                      const std::string &CacheDir, unsigned Shards) {
  std::filesystem::remove_all(CacheDir);
  shard::ShardOptions O;
  O.Binaries = Paths;
  O.Shards = Shards;
  O.CacheDir = CacheDir;
  O.WorkerExe = HGLIFT_BIN;
  auto T0 = std::chrono::steady_clock::now();
  shard::ShardResult R = shard::runShards(O);
  ShardRun Out;
  Out.Wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  Out.Ok = R.Ok;
  Out.Report = std::move(R.MergedReport);
  if (!R.Ok)
    std::fprintf(stderr, "shard run (%u): %s\n", Shards, R.Error.c_str());
  return Out;
}

// --- phase 5: skewed corpus, work stealing vs static round-robin ----------

/// Twelve small shared objects and one dominant one (~4x a small one's
/// cost), the dominant placed at an index the round-robin plan maps to a
/// worker that also owns small binaries. Static assignment serializes the
/// dominant binary behind its slice-mates; the pull scheduler starts it
/// first (longest-job-first via the cost heuristic) and spreads the small
/// ones over the remaining workers.
std::vector<std::string> skewCorpusToDisk(const std::string &Dir) {
  std::filesystem::create_directories(Dir);
  std::vector<std::string> Paths;
  auto Emit = [&](const corpus::GenOptions &G) {
    auto BB = corpus::randomLibrary(G);
    if (!BB) {
      std::fprintf(stderr, "warning: skew item %s failed to build\n",
                   G.Name.c_str());
      return;
    }
    std::string P = Dir + "/" + G.Name + ".elf";
    std::ofstream Out(P, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(BB->ElfBytes.data()),
              static_cast<std::streamsize>(BB->ElfBytes.size()));
    Paths.push_back(P);
  };
  for (unsigned I = 0; I < 12; ++I) {
    corpus::GenOptions G;
    G.Seed = 0x5e3d00 + I;
    G.NumFuncs = 3;
    G.TargetInstrs = 40;
    G.JumpTablePct = 10;
    G.Name = "skew_small_" + std::to_string(I);
    Emit(G);
    if (I == 3) {
      // Index 4: worker 0's slice under a 4-worker round-robin, behind
      // its index-0 small binary.
      corpus::GenOptions D;
      D.Seed = 0x5e3dff;
      D.NumFuncs = 10;
      D.TargetInstrs = 160;
      D.JumpTablePct = 20;
      D.Name = "skew_dominant";
      Emit(D);
    }
  }
  return Paths;
}

struct SkewRun {
  bool Ok = false;
  double Wall = 0;
  uint64_t Steals = 0;
  std::string Report;
};

SkewRun runSkewMode(const std::vector<std::string> &Paths,
                    const std::string &CacheDir, bool Stealing, bool Fresh) {
  if (Fresh)
    std::filesystem::remove_all(CacheDir);
  shard::ShardOptions O;
  O.Binaries = Paths;
  O.Shards = 4;
  O.WorkStealing = Stealing;
  O.Library = true;
  O.CacheDir = CacheDir;
  O.WorkerExe = HGLIFT_BIN;
  auto T0 = std::chrono::steady_clock::now();
  shard::ShardResult R = shard::runShards(O);
  SkewRun Out;
  Out.Wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  Out.Ok = R.Ok;
  Out.Steals = R.Sched.Steals;
  Out.Report = std::move(R.MergedReport);
  if (!R.Ok)
    std::fprintf(stderr, "skew run (%s): %s\n",
                 Stealing ? "stealing" : "static", R.Error.c_str());
  return Out;
}

std::string jsonNum(double D) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", D);
  return Buf;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  bool ForceSkew = false;
  std::string OutPath = "BENCH_shard.json";
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--smoke")
      Smoke = true;
    else if (A == "--force-skew")
      // Maintainer knob: run the skew phase even where it would auto-skip
      // (smoke mode, few hardware threads). The speedup gate still
      // applies, so expect a FAIL on machines without real parallelism —
      // this is for exercising the phase, not for passing it.
      ForceSkew = true;
    else if (A == "--out" && I + 1 < argc)
      OutPath = argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: bench_shard [--smoke] [--force-skew] [--out F]\n");
      return 2;
    }
  }

  std::vector<CorpusItem> Corpus = buildCorpus(Smoke);
  const int Reps = Smoke ? 1 : 3;
  std::printf("shard/portfolio bench: %zu corpus binaries, %d rep%s%s\n\n",
              Corpus.size(), Reps, Reps == 1 ? "" : "s",
              Smoke ? " (smoke)" : "");

  // Phase 1: portfolio vs legacy, single CPU.
  ModeTotals Legacy = runMode(Corpus, /*Portfolio=*/false, Reps);
  ModeTotals Port = runMode(Corpus, /*Portfolio=*/true, Reps);
  bool StructIdentical = Legacy.Fingerprints == Port.Fingerprints;
  double Z3Reduction =
      Port.Stats.Z3Queries
          ? double(Legacy.Stats.Z3Queries) / double(Port.Stats.Z3Queries)
          : (Legacy.Stats.Z3Queries ? 1e9 : 1.0);
  double TimeReduction = Port.Stats.SolverSeconds > 0
                             ? Legacy.Stats.SolverSeconds /
                                   Port.Stats.SolverSeconds
                             : 1.0;
  std::printf("%-10s wall %7.3fs solver %7.4fs z3 %6llu tier2skip %llu\n",
              "legacy", Legacy.Wall, Legacy.Stats.SolverSeconds,
              (unsigned long long)Legacy.Stats.Z3Queries,
              (unsigned long long)Legacy.Stats.SolverTier2Skipped);
  std::printf("%-10s wall %7.3fs solver %7.4fs z3 %6llu tier2skip %llu\n",
              "portfolio", Port.Wall, Port.Stats.SolverSeconds,
              (unsigned long long)Port.Stats.Z3Queries,
              (unsigned long long)Port.Stats.SolverTier2Skipped);
  std::printf("z3 reduction %.2fx, query-time reduction %.2fx, structures "
              "%s\n\n",
              Z3Reduction, TimeReduction,
              StructIdentical ? "identical" : "DIFFER");

  // Phase 2: differential tier replay.
  DiffTotals Diff = runDifferential(Corpus);
  std::printf("differential: %llu replayed, %llu vacuous (unsat pred), "
              "%llu disagreements\n\n",
              (unsigned long long)Diff.Replayed,
              (unsigned long long)Diff.UnsatSkipped,
              (unsigned long long)Diff.Disagreements);

  // Phase 3: shard byte identity (2 and 4 workers vs serial).
  std::string WorkRoot = "/tmp/hglift_bench_shard";
  std::vector<std::string> Paths = corpusToDisk(Corpus, WorkRoot + "/elfs");
  ShardRun Serial = runShardMode(Paths, WorkRoot + "/cache_serial", 1);
  ShardRun Two = runShardMode(Paths, WorkRoot + "/cache_2", 2);
  ShardRun Four = runShardMode(Paths, WorkRoot + "/cache_4", 4);
  bool ShardOk = Serial.Ok && Two.Ok && Four.Ok;
  bool Identical2 = ShardOk && Two.Report == Serial.Report;
  bool Identical4 = ShardOk && Four.Report == Serial.Report;
  std::printf("shard: serial %.3fs, 2w %.3fs, 4w %.3fs; bytes %s/%s\n\n",
              Serial.Wall, Two.Wall, Four.Wall,
              Identical2 ? "identical" : "DIFFER",
              Identical4 ? "identical" : "DIFFER");

  // Phase 4: process scaling — only meaningful with real parallelism
  // underneath, so auto-skip below 4 hardware threads.
  unsigned HwThreads = std::thread::hardware_concurrency();
  bool ScalingSkipped = Smoke || HwThreads < 4;
  double ScalingSpeedup = 0;
  bool ScalingPass = true;
  if (!ScalingSkipped) {
    // Re-run (cold caches) to time without first-run artifacts.
    ShardRun S1 = runShardMode(Paths, WorkRoot + "/cache_scale1", 1);
    ShardRun S4 = runShardMode(Paths, WorkRoot + "/cache_scale4", 4);
    ScalingSpeedup = S4.Wall > 0 ? S1.Wall / S4.Wall : 0;
    ScalingPass = S1.Ok && S4.Ok && ScalingSpeedup >= 1.3;
    std::printf("scaling: serial %.3fs vs 4 workers %.3fs = %.2fx "
                "(%u hw threads)\n\n",
                S1.Wall, S4.Wall, ScalingSpeedup, HwThreads);
  } else {
    std::printf("scaling: skipped (%s)\n\n",
                Smoke ? "smoke mode"
                      : "fewer than 4 hardware threads");
  }

  // Phase 5: skewed corpus — one dominant binary behind a static
  // round-robin slice-mate. The pull scheduler must recover the idle
  // time: >= 1.3x wall clock over the --no-work-stealing ablation, same
  // bytes. Needs real parallelism underneath, so auto-skipped (and the
  // reason recorded) below 4 hardware threads and in smoke mode.
  bool SkewSkipped = (Smoke || HwThreads < 4) && !ForceSkew;
  std::string SkewSkipReason =
      !SkewSkipped ? ""
      : Smoke      ? "smoke mode"
                   : "fewer than 4 hardware threads";
  double SkewSpeedup = 0, SkewRRWall = 0, SkewWSWall = 0, SkewWarmWall = 0;
  uint64_t SkewSteals = 0;
  bool SkewPass = true, SkewIdentical = true;
  if (!SkewSkipped) {
    std::vector<std::string> SkewPaths =
        skewCorpusToDisk(WorkRoot + "/skew_elfs");
    std::string SkewCacheRR = WorkRoot + "/cache_skew_rr";
    std::string SkewCacheWS = WorkRoot + "/cache_skew_ws";
    SkewRun RR = runSkewMode(SkewPaths, SkewCacheRR, /*Stealing=*/false,
                             /*Fresh=*/true);
    SkewRun WS = runSkewMode(SkewPaths, SkewCacheWS, /*Stealing=*/true,
                             /*Fresh=*/true);
    // Ledger-warm: keep the cost ledger from the stealing run but drop
    // the lifted-artifact store, so the rerun re-lifts everything with
    // observed seconds (not the static heuristic) driving claim order.
    std::filesystem::remove_all(SkewCacheWS + "/objects");
    std::filesystem::remove_all(SkewCacheWS + "/shard");
    SkewRun Warm = runSkewMode(SkewPaths, SkewCacheWS, /*Stealing=*/true,
                               /*Fresh=*/false);
    SkewRRWall = RR.Wall;
    SkewWSWall = WS.Wall;
    SkewWarmWall = Warm.Wall;
    SkewSteals = WS.Steals;
    SkewSpeedup = WS.Wall > 0 ? RR.Wall / WS.Wall : 0;
    SkewIdentical = RR.Ok && WS.Ok && Warm.Ok && WS.Report == RR.Report &&
                    Warm.Report == RR.Report;
    SkewPass = SkewIdentical && SkewSpeedup >= 1.3;
    std::printf("skew: round-robin %.3fs vs stealing %.3fs = %.2fx "
                "(ledger-warm %.3fs, %llu steals); bytes %s\n\n",
                RR.Wall, WS.Wall, SkewSpeedup, Warm.Wall,
                (unsigned long long)WS.Steals,
                SkewIdentical ? "identical" : "DIFFER");
  } else {
    std::printf("skew: skipped (%s)\n\n", SkewSkipReason.c_str());
  }

  // Gates. Timing/count reductions only gate the full run (smoke corpora
  // are too small for stable ratios).
  bool GateStruct = StructIdentical;
  bool GateDiff = Diff.Disagreements == 0;
  bool GateShard = Identical2 && Identical4;
  bool GateZ3 = Smoke || Z3Reduction >= 1.5;
  bool GateTime = Smoke || TimeReduction >= 1.5;
  bool Pass = GateStruct && GateDiff && GateShard && GateZ3 && GateTime &&
              ScalingPass && SkewPass;

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    return 3;
  }
  Out << "{\n"
      << "  \"bench\": \"shard\",\n"
      << "  \"smoke\": " << (Smoke ? "true" : "false") << ",\n"
      << "  \"corpus_binaries\": " << Corpus.size() << ",\n"
      << "  \"portfolio\": {\n"
      << "    \"legacy_z3_queries\": " << Legacy.Stats.Z3Queries << ",\n"
      << "    \"portfolio_z3_queries\": " << Port.Stats.Z3Queries << ",\n"
      << "    \"z3_reduction\": " << jsonNum(Z3Reduction) << ",\n"
      << "    \"legacy_solver_seconds\": "
      << jsonNum(Legacy.Stats.SolverSeconds) << ",\n"
      << "    \"portfolio_solver_seconds\": "
      << jsonNum(Port.Stats.SolverSeconds) << ",\n"
      << "    \"query_time_reduction\": " << jsonNum(TimeReduction) << ",\n"
      << "    \"tier0_hits\": " << Port.Stats.SolverTier0Hits << ",\n"
      << "    \"tier1_hits\": " << Port.Stats.SolverTier1Hits << ",\n"
      << "    \"class_hits\": " << Port.Stats.SolverClassHits << ",\n"
      << "    \"tier2_hits\": " << Port.Stats.SolverTier2Hits << ",\n"
      << "    \"tier2_skipped\": " << Port.Stats.SolverTier2Skipped << ",\n"
      << "    \"fallthroughs\": " << Port.Stats.SolverFallthroughs << ",\n"
      << "    \"structures_identical\": "
      << (StructIdentical ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"differential\": {\n"
      << "    \"replayed\": " << Diff.Replayed << ",\n"
      << "    \"vacuous_unsat\": " << Diff.UnsatSkipped << ",\n"
      << "    \"disagreements\": " << Diff.Disagreements << "\n"
      << "  },\n"
      << "  \"shard\": {\n"
      << "    \"serial_report_bytes\": " << Serial.Report.size() << ",\n"
      << "    \"identical_2_workers\": " << (Identical2 ? "true" : "false")
      << ",\n"
      << "    \"identical_4_workers\": " << (Identical4 ? "true" : "false")
      << "\n"
      << "  },\n"
      << "  \"scaling\": {\n"
      << "    \"hardware_threads\": " << HwThreads << ",\n"
      << "    \"skipped\": " << (ScalingSkipped ? "true" : "false") << ",\n"
      << "    \"speedup_4_workers\": " << jsonNum(ScalingSpeedup) << "\n"
      << "  },\n"
      << "  \"skew\": {\n"
      << "    \"skipped\": " << (SkewSkipped ? "true" : "false") << ",\n"
      << "    \"skip_reason\": \"" << SkewSkipReason << "\",\n"
      << "    \"round_robin_wall_seconds\": " << jsonNum(SkewRRWall) << ",\n"
      << "    \"work_stealing_wall_seconds\": " << jsonNum(SkewWSWall)
      << ",\n"
      << "    \"ledger_warm_wall_seconds\": " << jsonNum(SkewWarmWall)
      << ",\n"
      << "    \"speedup\": " << jsonNum(SkewSpeedup) << ",\n"
      << "    \"steals\": " << SkewSteals << ",\n"
      << "    \"bytes_identical\": " << (SkewIdentical ? "true" : "false")
      << "\n"
      << "  },\n"
      << "  \"gates\": {\n"
      << "    \"structural_identity\": " << (GateStruct ? "true" : "false")
      << ",\n"
      << "    \"zero_tier_disagreements\": " << (GateDiff ? "true" : "false")
      << ",\n"
      << "    \"shard_byte_identity\": " << (GateShard ? "true" : "false")
      << ",\n"
      << "    \"z3_reduction_1_5x\": " << (GateZ3 ? "true" : "false") << ",\n"
      << "    \"query_time_reduction_1_5x\": "
      << (GateTime ? "true" : "false") << ",\n"
      << "    \"process_scaling\": "
      << (ScalingSkipped ? "\"skipped\"" : (ScalingPass ? "true" : "false"))
      << ",\n"
      << "    \"skew_speedup_1_3x\": "
      << (SkewSkipped ? "\"skipped\"" : (SkewPass ? "true" : "false")) << "\n"
      << "  },\n"
      << "  \"pass\": " << (Pass ? "true" : "false") << "\n"
      << "}\n";
  std::printf("%s -> %s\n", Pass ? "PASS" : "FAIL", OutPath.c_str());
  return Pass ? 0 : 1;
}
