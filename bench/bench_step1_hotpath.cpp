//===- bench_step1_hotpath.cpp - Hot-path caching/scheduling ablation -----===//
//
// Measures what the Step-1 hot-path work buys — the version-keyed relation
// cache (smt/RelationSolver), the leq memo (hg/StateMemo.h) and the
// address-ordered worklist (hg/Lifter) — by lifting one corpus under the
// four configurations
//
//     {caches off, caches on} x {LIFO bag, ordered worklist}
//
// and reporting wall time, solver queries, cache hit rates, joins and
// widenings for each. Three gates:
//
//   * cache invisibility: within each worklist order, caches on and off
//     produce bit-identical Hoare graphs, verification errors and proof
//     obligations (modulo fresh-variable numbering; edge lists and
//     obligation sets compared as sets) — the caches are pure memoization;
//   * structural identity: all four configurations agree on per-function
//     outcomes and on the set of instructions explored. (Full identity
//     across *orders* is not a sound expectation: Algorithm 1's join is
//     order-sensitive in this non-distributive domain, so LIFO and
//     ordered exploration may stabilize on different — equally sound —
//     invariants, obligations, edges, and failure messages.)
//   * speedup (full mode only): caches+ordered is >= 1.3x faster than the
//     unoptimized baseline.
//
// Results go to BENCH_hotpath.json (override with --out PATH). --smoke
// runs a tiny corpus and only the identity gate — that mode is wired into
// ctest so CI exercises this harness on every change.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "hg/Lifter.h"
#include "support/Format.h"

#include <algorithm>
#include <chrono>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace hglift;

namespace {

struct ConfigDef {
  const char *Name;
  bool Caches;
  bool Ordered;
};

const ConfigDef Configs[] = {
    {"nocache_lifo", false, false},
    {"nocache_ordered", false, true},
    {"cache_lifo", true, false},
    {"cache_ordered", true, true},
};

struct ConfigTotals {
  double Seconds = 0;
  LiftStats Stats;
};

/// Strip fresh-variable numbering ("clob_rcx#12" -> "clob_rcx#"): the
/// fresh counter advances in exploration order, so identity comparisons
/// must ignore the suffix while keeping the hint.
std::string stripFreshNumbers(const std::string &S) {
  std::string Out;
  for (size_t I = 0; I < S.size(); ++I) {
    Out += S[I];
    if (S[I] == '#')
      while (I + 1 < S.size() && isdigit(static_cast<unsigned char>(S[I + 1])))
        ++I;
  }
  return Out;
}

/// Everything observable of one lift — outcomes, failure reasons, vertex
/// invariants, edges, obligations — with fresh numbering normalized and
/// order-insensitive parts (edge lists, obligation lists) sorted. Two
/// configurations with equal full fingerprints are observably identical.
std::string fullFingerprint(const hg::BinaryResult &R) {
  std::string S;
  S += std::string(hg::liftOutcomeName(R.Outcome)) + " '" + R.FailReason +
       "'\n";
  for (const hg::FunctionResult &F : R.Functions) {
    S += "fn " + hexStr(F.Entry) + " " + hg::liftOutcomeName(F.Outcome) +
         " '" + F.FailReason + "' ret " + std::to_string(F.MayReturn) +
         " A " + std::to_string(F.ResolvedIndirections) + " B " +
         std::to_string(F.UnresolvedJumps) + " C " +
         std::to_string(F.UnresolvedCalls) + "\n";
    for (const auto &[Key, V] : F.Graph.Vertices)
      S += "  v " + hexStr(Key.Rip) + "/" + hexStr(Key.CtrlHash) + " P " +
           V.State.P.str(F.ctx()) + " M " + V.State.M.str(F.ctx()) + "\n";
    std::vector<std::string> Lines;
    for (const hg::Edge &E : F.Graph.Edges)
      Lines.push_back("  e " + hexStr(E.From.Rip) + "/" +
                      hexStr(E.From.CtrlHash) + " -> " + hexStr(E.To.Rip) +
                      "/" + hexStr(E.To.CtrlHash));
    for (const std::string &O : F.Obligations)
      Lines.push_back("  o " + O);
    std::sort(Lines.begin(), Lines.end());
    for (const std::string &L : Lines)
      S += L + "\n";
  }
  return stripFreshNumbers(S);
}

/// The order-independent core: per-function outcome classes and, for
/// lifted functions, the set of explored instruction addresses. Edge sets
/// and control hashes are deliberately excluded — edges derive from the
/// invariants (indirect-target and return resolution), so a less precise
/// join can add pseudo-edges that a more precise one proves away.
std::string shapeFingerprint(const hg::BinaryResult &R) {
  std::string S = std::string(hg::liftOutcomeName(R.Outcome)) + "\n";
  for (const hg::FunctionResult &F : R.Functions) {
    S += "fn " + hexStr(F.Entry) + " " + hg::liftOutcomeName(F.Outcome);
    if (F.Outcome != hg::LiftOutcome::Lifted) {
      // Everything else about a failed lift — the partial graph, how far
      // exploration got, even MayReturn — is order-dependent state.
      S += "\n";
      continue;
    }
    S += " ret " + std::to_string(F.MayReturn) + "\n";
    std::vector<uint64_t> Rips;
    for (const auto &[Key, V] : F.Graph.Vertices)
      if (Key.Rip < 0xfffffffffffffff0ull) // skip synthetic sinks
        Rips.push_back(Key.Rip);
    std::sort(Rips.begin(), Rips.end());
    Rips.erase(std::unique(Rips.begin(), Rips.end()), Rips.end());
    for (uint64_t Rip : Rips)
      S += "  i " + hexStr(Rip) + "\n";
  }
  return S;
}

struct CorpusItem {
  std::string Name;
  corpus::BuiltBinary BB;
  bool Library;
};

std::vector<CorpusItem> buildCorpus(bool Smoke) {
  std::vector<CorpusItem> Items;
  auto Add = [&](const char *Name, std::optional<corpus::BuiltBinary> BB,
                 bool Library) {
    if (BB)
      Items.push_back({Name, std::move(*BB), Library});
    else
      std::fprintf(stderr, "warning: corpus item %s failed to build\n", Name);
  };

  Add("branch_loop", corpus::branchLoopBinary(), false);
  Add("weird_edge", corpus::weirdEdgeBinary(), false);
  if (Smoke) {
    Add("call_chain", corpus::callChainBinary(), false);
    return Items;
  }

  Add("straightline", corpus::straightlineBinary(), false);
  Add("call_chain", corpus::callChainBinary(), false);
  Add("jump_table", corpus::jumpTableBinary(), false);
  Add("callback", corpus::callbackBinary(), false);
  Add("recursion", corpus::recursionBinary(), false);
  Add("ret2win", corpus::ret2winBinary(), false);
  Add("overflow", corpus::overflowBinary(), false);
  Add("stack_probe", corpus::stackProbeBinary(), false);

  // Generated libraries: loop- and join-heavy code is where repeated
  // relation queries and leq probes dominate, i.e. where the caches earn
  // their keep.
  struct LibDef {
    uint64_t Seed;
    unsigned Funcs, Instrs, JumpTablePct;
  };
  for (LibDef D : {LibDef{0x40710a, 6, 120, 30}, LibDef{0x40710b, 4, 250, 20},
                   LibDef{0x40710c, 8, 60, 40}}) {
    corpus::GenOptions G;
    G.Seed = D.Seed;
    G.NumFuncs = D.Funcs;
    G.TargetInstrs = D.Instrs;
    G.JumpTablePct = D.JumpTablePct;
    G.Name = "hotpath_lib_" + std::to_string(D.Seed & 0xf);
    Add(G.Name.c_str(), corpus::randomLibrary(G), true);
  }
  return Items;
}

hg::LiftConfig makeConfig(const ConfigDef &C) {
  hg::LiftConfig Cfg;
  Cfg.Solver.EnableCache = C.Caches;
  Cfg.LeqMemo = C.Caches;
  Cfg.OrderedWorklist = C.Ordered;
  return Cfg;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_hotpath.json";
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--smoke")
      Smoke = true;
    else if (A == "--out" && I + 1 < argc)
      OutPath = argv[++I];
    else {
      std::fprintf(stderr, "usage: bench_step1_hotpath [--smoke] [--out F]\n");
      return 2;
    }
  }

  std::vector<CorpusItem> Corpus = buildCorpus(Smoke);
  const int Reps = Smoke ? 1 : 3;

  std::printf("Step-1 hot path: %zu corpus binaries, %d timing rep%s\n\n",
              Corpus.size(), Reps, Reps == 1 ? "" : "s");

  ConfigTotals Totals[4];
  // Two identity gates (see the header comment): the full fingerprint must
  // match between cache-off and cache-on *at the same worklist order*, and
  // the structural fingerprint must match across all four configurations.
  std::vector<std::string> FullRef[2];   // indexed by Ordered flag
  FullRef[0].resize(Corpus.size());
  FullRef[1].resize(Corpus.size());
  std::vector<std::string> ShapeRef(Corpus.size());
  bool CacheInvisible = true, ShapeIdentical = true;

  for (size_t CI = 0; CI < 4; ++CI) {
    const ConfigDef &C = Configs[CI];
    hg::LiftConfig Cfg = makeConfig(C);
    double Best = -1;
    for (int Rep = 0; Rep < Reps; ++Rep) {
      LiftStats RunStats;
      auto T0 = std::chrono::steady_clock::now();
      for (size_t I = 0; I < Corpus.size(); ++I) {
        hg::Lifter L(Corpus[I].BB.Img, Cfg);
        hg::BinaryResult R =
            Corpus[I].Library ? L.liftLibrary() : L.liftBinary();
        RunStats.merge(R.Total);
        if (Rep == 0) {
          std::string Full = fullFingerprint(R);
          if (!C.Caches) // configs 0,1 set the per-order reference
            FullRef[C.Ordered][I] = std::move(Full);
          else if (Full != FullRef[C.Ordered][I]) {
            CacheInvisible = false;
            std::fprintf(stderr,
                         "CACHE VISIBLE: %s differs between %s and %s\n",
                         Corpus[I].Name.c_str(),
                         Configs[C.Ordered ? 1 : 0].Name, C.Name);
          }
          std::string Shape = shapeFingerprint(R);
          if (CI == 0)
            ShapeRef[I] = std::move(Shape);
          else if (Shape != ShapeRef[I]) {
            ShapeIdentical = false;
            std::fprintf(stderr,
                         "SHAPE VIOLATION: %s differs between %s and %s\n"
                         "--- %s ---\n%s--- %s ---\n%s",
                         Corpus[I].Name.c_str(), Configs[0].Name, C.Name,
                         Configs[0].Name, ShapeRef[I].c_str(), C.Name,
                         Shape.c_str());
          }
        }
      }
      double Secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - T0)
                        .count();
      if (Best < 0 || Secs < Best) {
        Best = Secs;
        Totals[CI].Stats = RunStats;
      }
    }
    Totals[CI].Seconds = Best;
  }

  auto HitRate = [](const LiftStats &S) {
    uint64_t Total = S.RelCacheHits + S.RelCacheMisses;
    return Total ? 100.0 * static_cast<double>(S.RelCacheHits) /
                       static_cast<double>(Total)
                 : 0.0;
  };
  auto LeqRate = [](const LiftStats &S) {
    uint64_t Total = S.LeqHits + S.LeqMisses;
    return Total ? 100.0 * static_cast<double>(S.LeqHits) /
                       static_cast<double>(Total)
                 : 0.0;
  };

  std::printf("%-16s %9s %12s %8s %9s %9s %8s\n", "config", "seconds",
              "solver_q", "hit%", "joins", "widen", "leq%");
  for (size_t CI = 0; CI < 4; ++CI) {
    const LiftStats &S = Totals[CI].Stats;
    std::printf("%-16s %9.3f %12llu %7.1f%% %9llu %9llu %7.1f%%\n",
                Configs[CI].Name, Totals[CI].Seconds,
                static_cast<unsigned long long>(S.SolverQueries), HitRate(S),
                static_cast<unsigned long long>(S.Joins),
                static_cast<unsigned long long>(S.Widenings), LeqRate(S));
  }

  double Speedup =
      Totals[3].Seconds > 0 ? Totals[0].Seconds / Totals[3].Seconds : 0;
  bool Identical = CacheInvisible && ShapeIdentical;
  std::printf("\ncache invisibility (per order) -> %s\n",
              CacheInvisible ? "OK" : "VIOLATED");
  std::printf("structural identity (all configs) -> %s\n",
              ShapeIdentical ? "OK" : "VIOLATED");
  std::printf("speedup cache_ordered vs nocache_lifo: %.2fx%s\n", Speedup,
              Smoke ? " (not gated in smoke mode)" : "");

  bool SpeedOK = Smoke || Speedup >= 1.3;
  if (!SpeedOK)
    std::printf("speedup -> MISMATCH (gate: >= 1.30x)\n");

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "cannot open %s for writing\n", OutPath.c_str());
    return 2;
  }
  Out << "{\n  \"bench\": \"step1_hotpath\",\n";
  Out << "  \"smoke\": " << (Smoke ? "true" : "false") << ",\n";
  Out << "  \"corpus_binaries\": " << Corpus.size() << ",\n";
  Out << "  \"cache_invisible\": " << (CacheInvisible ? "true" : "false")
      << ",\n";
  Out << "  \"structure_identical\": " << (ShapeIdentical ? "true" : "false")
      << ",\n";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Speedup);
  Out << "  \"speedup_cache_ordered_vs_nocache_lifo\": " << Buf << ",\n";
  Out << "  \"configs\": [\n";
  for (size_t CI = 0; CI < 4; ++CI) {
    const LiftStats &S = Totals[CI].Stats;
    std::snprintf(Buf, sizeof(Buf), "%.4f", Totals[CI].Seconds);
    Out << "    {\"name\": \"" << Configs[CI].Name
        << "\", \"seconds\": " << Buf
        << ", \"solver_queries\": " << S.SolverQueries
        << ", \"rel_cache_hits\": " << S.RelCacheHits
        << ", \"rel_cache_misses\": " << S.RelCacheMisses
        << ", \"rel_cache_invalidated\": " << S.RelCacheInvalidated
        << ", \"leq_hits\": " << S.LeqHits
        << ", \"leq_misses\": " << S.LeqMisses << ", \"joins\": " << S.Joins
        << ", \"widenings\": " << S.Widenings
        << ", \"steps\": " << S.Steps << ", \"vertices\": " << S.Vertices
        << "}" << (CI + 1 < 4 ? "," : "") << "\n";
  }
  Out << "  ]\n}\n";
  std::printf("wrote %s\n", OutPath.c_str());

  return Identical && SpeedOK ? 0 : 1;
}
