//===- bench_fuzz_campaign.cpp - Fuzzing-campaign throughput --------------===//
//
// Google-benchmark harness for the soundness fuzzing campaign: how many
// synthesized binaries per second the generate → lift → check → oracle
// pipeline sustains, and what a full mutation-testing probe costs. The
// counters surface oracle coverage (concrete states judged per second) so
// a regression in walk depth is visible next to the time.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace hglift;

namespace {

void BM_CampaignRuns(benchmark::State &State) {
  size_t Runs = 0, States = 0, Edges = 0;
  uint64_t Seed = 0xbe9c;
  for (auto _ : State) {
    fuzz::FuzzOptions O;
    O.Seed = Seed++; // fresh binaries every iteration, deterministic order
    O.Runs = static_cast<unsigned>(State.range(0));
    std::ostringstream Log;
    fuzz::CampaignResult R = fuzz::runCampaign(O, Log);
    benchmark::DoNotOptimize(R.Runs.data());
    Runs += R.Runs.size();
    for (const fuzz::RunRecord &Run : R.Runs) {
      States += Run.OracleStates;
      Edges += Run.Theorems;
    }
  }
  State.counters["runs/s"] =
      benchmark::Counter(static_cast<double>(Runs), benchmark::Counter::kIsRate);
  State.counters["oracle_states/s"] = benchmark::Counter(
      static_cast<double>(States), benchmark::Counter::kIsRate);
  State.counters["edges/s"] = benchmark::Counter(static_cast<double>(Edges),
                                                 benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignRuns)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_MutantProbe(benchmark::State &State) {
  // One lift-only and one both-scope mutant: the former exercises the
  // Step-2 kill path, the latter the oracle kill path.
  for (auto _ : State) {
    fuzz::FuzzOptions O;
    O.Seed = 1;
    O.Runs = 0;
    O.MutateSemantics = true;
    O.MutantFilter = {"jcc-drop-fallthrough", "add-imm-off-by-one"};
    std::ostringstream Log;
    fuzz::CampaignResult R = fuzz::runCampaign(O, Log);
    benchmark::DoNotOptimize(R.Mutants.data());
  }
}
BENCHMARK(BM_MutantProbe)->Unit(benchmark::kMillisecond);

void BM_Reduction(benchmark::State &State) {
  for (auto _ : State) {
    fuzz::FuzzOptions O;
    O.Seed = 1;
    O.Runs = 0;
    O.MutateSemantics = true;
    O.MutantFilter = {"add-imm-off-by-one"};
    O.ReduceMutant = "add-imm-off-by-one";
    O.ReproDir = "/tmp";
    std::ostringstream Log;
    fuzz::CampaignResult R = fuzz::runCampaign(O, Log);
    benchmark::DoNotOptimize(R.Reductions.data());
  }
}
BENCHMARK(BM_Reduction)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
