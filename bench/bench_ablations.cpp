//===- bench_ablations.cpp - Ablations over the design choices ------------===//
//
// Google-benchmark microbenchmarks for the design decisions DESIGN.md
// calls out:
//
//   * Join        — joining on (Algorithm 1) vs off: without joining, loop
//                   states multiply until fuel runs out;
//   * Policy      — alias/separation branching (§1) vs destroy-always: the
//                   ablation loses the §2 weird edge and memory precision;
//   * Z3          — syntactic+interval core alone vs with the Z3 backend;
//   * AllocAssume — the stack/global/heap separation assumptions on/off:
//                   without them nearly every stack frame fails to verify.
//
// Counters report states, annotations and lift success so the precision
// effect is visible next to the time.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "hg/Lifter.h"

#include <benchmark/benchmark.h>

using namespace hglift;

namespace {

corpus::BuiltBinary &workload() {
  static corpus::BuiltBinary BB = [] {
    corpus::GenOptions G;
    G.Seed = 0xab1a;
    G.NumFuncs = 5;
    G.TargetInstrs = 80;
    G.JumpTablePct = 30;
    G.Name = "ablation_workload";
    return *corpus::randomBinary(G);
  }();
  return BB;
}

corpus::BuiltBinary &weird() {
  static corpus::BuiltBinary BB = *corpus::weirdEdgeBinary();
  return BB;
}

void report(benchmark::State &State, const hg::BinaryResult &R) {
  State.counters["states"] = static_cast<double>(R.totalStates());
  State.counters["instrs"] = static_cast<double>(R.totalInstructions());
  State.counters["A"] = R.totalA();
  State.counters["B"] = R.totalB();
  State.counters["C"] = R.totalC();
  State.counters["lifted"] = R.Outcome == hg::LiftOutcome::Lifted ? 1 : 0;
}

void runWith(benchmark::State &State, const corpus::BuiltBinary &BB,
             hg::LiftConfig Cfg) {
  hg::BinaryResult Last;
  for (auto _ : State) {
    hg::Lifter L(BB.Img, Cfg);
    Last = L.liftBinary();
    benchmark::DoNotOptimize(&Last);
  }
  report(State, Last);
}

void BM_Lift_Default(benchmark::State &State) {
  hg::LiftConfig Cfg;
  Cfg.MaxVertices = 4000;
  Cfg.MaxSeconds = 10;
  runWith(State, workload(), Cfg);
}
BENCHMARK(BM_Lift_Default)->Unit(benchmark::kMillisecond);

void BM_Lift_NoJoin(benchmark::State &State) {
  hg::LiftConfig Cfg;
  Cfg.EnableJoin = false;
  Cfg.MaxVertices = 4000;
  Cfg.MaxSeconds = 10;
  runWith(State, workload(), Cfg);
}
BENCHMARK(BM_Lift_NoJoin)->Unit(benchmark::kMillisecond);

void BM_Lift_DestroyAlways(benchmark::State &State) {
  hg::LiftConfig Cfg;
  Cfg.Sym.Policy = mem::UnknownPolicy::DestroyAlways;
  Cfg.MaxVertices = 4000;
  Cfg.MaxSeconds = 10;
  runWith(State, workload(), Cfg);
}
BENCHMARK(BM_Lift_DestroyAlways)->Unit(benchmark::kMillisecond);

void BM_Lift_NoZ3(benchmark::State &State) {
  hg::LiftConfig Cfg;
  Cfg.Solver.UseZ3 = false;
  Cfg.MaxVertices = 4000;
  Cfg.MaxSeconds = 10;
  runWith(State, workload(), Cfg);
}
BENCHMARK(BM_Lift_NoZ3)->Unit(benchmark::kMillisecond);

void BM_Lift_NoAllocAssumptions(benchmark::State &State) {
  hg::LiftConfig Cfg;
  Cfg.Solver.AllocClassAssumptions = false;
  Cfg.MaxVertices = 4000;
  Cfg.MaxSeconds = 10;
  runWith(State, workload(), Cfg);
}
BENCHMARK(BM_Lift_NoAllocAssumptions)->Unit(benchmark::kMillisecond);

// The §2 example under both unknown-relation policies: branching keeps the
// weird edge; destroying loses it (counter weird_edges).
void weirdEdgeUnder(benchmark::State &State, mem::UnknownPolicy Policy) {
  hg::LiftConfig Cfg;
  Cfg.Sym.Policy = Policy;
  size_t Weird = 0;
  hg::BinaryResult Last;
  for (auto _ : State) {
    hg::Lifter L(weird().Img, Cfg);
    Last = L.liftBinary();
    Weird = 0;
    for (const hg::FunctionResult &F : Last.Functions)
      Weird += F.Graph.weirdEdges().size();
  }
  report(State, Last);
  State.counters["weird_edges"] = static_cast<double>(Weird);
}

void BM_WeirdEdge_Branching(benchmark::State &State) {
  weirdEdgeUnder(State, mem::UnknownPolicy::BranchAliasOrSep);
}
BENCHMARK(BM_WeirdEdge_Branching)->Unit(benchmark::kMillisecond);

void BM_WeirdEdge_DestroyAlways(benchmark::State &State) {
  weirdEdgeUnder(State, mem::UnknownPolicy::DestroyAlways);
}
BENCHMARK(BM_WeirdEdge_DestroyAlways)->Unit(benchmark::kMillisecond);

// Decoder throughput over the workload's text bytes.
void BM_Decoder(benchmark::State &State) {
  const corpus::BuiltBinary &BB = workload();
  size_t Avail;
  const uint8_t *Bytes = BB.Img.bytesAt(BB.Img.Entry, Avail);
  size_t Decoded = 0;
  for (auto _ : State) {
    size_t Off = 0;
    while (Off < Avail) {
      x86::Instr I = x86::decodeInstr(Bytes + Off, Avail - Off,
                                      BB.Img.Entry + Off);
      if (!I.isValid())
        break;
      Off += I.Length;
      ++Decoded;
    }
  }
  State.counters["instrs_per_pass"] = static_cast<double>(Decoded);
}
BENCHMARK(BM_Decoder);

} // namespace

BENCHMARK_MAIN();
