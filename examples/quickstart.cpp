//===- quickstart.cpp - Minimal end-to-end use of the public API ---------===//
//
// Builds a small ELF binary, writes it to disk (so you can inspect it with
// readelf/objdump), lifts it to a Hoare Graph, and prints the graph: the
// smallest complete tour of the library.
//
//   $ ./examples/quickstart [output.elf]
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "driver/Report.h"
#include "elf/ElfReader.h"
#include "hg/Lifter.h"

#include <fstream>
#include <iostream>

using namespace hglift;

int main(int argc, char **argv) {
  // 1. Synthesize a binary (or bring your own ELF64 file).
  auto BB = corpus::straightlineBinary();
  if (!BB) {
    std::cerr << "corpus build failed\n";
    return 1;
  }

  std::string Path = argc > 1 ? argv[1] : "/tmp/hglift_quickstart.elf";
  {
    std::ofstream Out(Path, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(BB->ElfBytes.data()),
              static_cast<std::streamsize>(BB->ElfBytes.size()));
  }
  std::cout << "wrote " << Path << " (" << BB->ElfBytes.size()
            << " bytes)\n\n";

  // 2. Parse it back and lift it: Algorithm 1 from the entry point,
  //    following internal calls, each function context-free.
  auto Img = elf::readElfFile(Path);
  if (!Img) {
    std::cerr << "ELF parse failed\n";
    return 1;
  }
  hg::Lifter L(*Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();

  // 3. Inspect the result: outcome, statistics, and the Hoare Graph with
  //    one invariant per symbolic state.
  driver::printBinaryReport(std::cout, R, L.exprContext());
  std::cout << "\n";
  for (const hg::FunctionResult &F : R.Functions)
    driver::printHoareGraph(std::cout, F, L.exprContext());

  return R.Outcome == hg::LiftOutcome::Lifted ? 0 : 1;
}
