//===- export_isabelle.cpp - Step 2: check + export -------------------------===//
//
// Lifts a multi-function binary, re-verifies every Hoare triple with the
// independent Step-2 checker (one theorem per edge, as in the paper's
// Isabelle/HOL validation), and writes the Isabelle theory file.
//
//   $ ./examples/export_isabelle [output.thy]
//
//===----------------------------------------------------------------------===//

#include "api/Hglift.h"
#include "corpus/Programs.h"
#include "export/HoareChecker.h"
#include "export/IsabelleExport.h"

#include <fstream>
#include <iostream>

using namespace hglift;

int main(int argc, char **argv) {
  auto BB = corpus::callChainBinary();
  if (!BB)
    return 1;

  Session S(BB->Img, Options());
  const hg::BinaryResult &R = S.lift();
  std::cout << "lifted " << R.Name << ": " << R.totalInstructions()
            << " instructions, " << R.totalStates() << " symbolic states\n";

  // Step 2: every edge is one independently provable theorem.
  const exporter::CheckResult &C = S.check();
  std::cout << "step 2: " << C.Proven << "/" << C.Theorems
            << " Hoare triples proven independently\n";
  for (const std::string &F : C.Failures)
    std::cout << "  FAILED: " << F << "\n";
  if (!C.allProven())
    return 1;

  exporter::IsabelleOptions Opts;
  Opts.TheoryName = "call_chain_hg";
  size_t Lemmas = 0;
  std::string Thy =
      exporter::exportBinary(S.scratchContext(), R, Opts, &Lemmas);

  std::string Path = argc > 1 ? argv[1] : "/tmp/call_chain_hg.thy";
  std::ofstream(Path) << Thy;
  std::cout << "wrote " << Lemmas << " lemmas to " << Path << "\n\n";

  // Show the first ~30 lines of the theory.
  size_t Pos = 0;
  for (int Line = 0; Line < 30 && Pos != std::string::npos; ++Line) {
    size_t E = Thy.find('\n', Pos);
    std::cout << Thy.substr(Pos, E - Pos) << "\n";
    Pos = E == std::string::npos ? E : E + 1;
  }
  std::cout << "...\n";
  return 0;
}
