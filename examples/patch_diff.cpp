//===- patch_diff.cpp - §7 Patching: comparing lifted HGs ------------------===//
//
// The paper's §7 proposes lifting both an original binary and its patched
// version and comparing the HGs and their assumptions to "expose
// unexpected effects of the patch". This example does exactly that: the
// "patch" loosens a switch's bounds check by one — a classic off-by-one —
// and the HG diff immediately shows the indirection degrading from a
// proven bounded jump into an annotated (unsound) one.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "export/Summary.h"
#include "hg/Lifter.h"

#include <iostream>

using namespace hglift;

namespace {

exporter::HgSummary liftAndSummarize(const corpus::BuiltBinary &BB) {
  hg::Lifter L(BB.Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  return exporter::summarize(R);
}

} // namespace

int main() {
  auto V1 = corpus::jumpTableBinary(8, /*GuardSlack=*/0);
  auto V2 = corpus::jumpTableBinary(8, /*GuardSlack=*/1); // the "patch"
  if (!V1 || !V2) {
    std::cerr << "corpus build failed\n";
    return 1;
  }

  std::cout << "lifting original (guard: index <= 7, table has 8 entries)"
            << "\n";
  exporter::HgSummary S1 = liftAndSummarize(*V1);
  std::cout << "lifting patched  (guard: index <= 8 -- off by one)\n\n";
  exporter::HgSummary S2 = liftAndSummarize(*V2);

  // Persist + reload, as a patch-review workflow would.
  std::string Text = exporter::writeSummary(S1);
  auto Reloaded = exporter::parseSummary(Text);
  if (!Reloaded) {
    std::cerr << "summary round-trip failed\n";
    return 1;
  }

  exporter::SummaryDiff D = exporter::diffSummaries(*Reloaded, S2);
  std::cout << "--- HG diff (original vs patched) ---\n";
  if (D.identical())
    std::cout << "(identical)\n";
  for (const std::string &L : D.Lines)
    std::cout << "  " << L << "\n";

  bool FoundDegradation = false;
  for (const std::string &L : D.Lines)
    FoundDegradation |= L.find("unresolved") != std::string::npos;
  std::cout << "\n"
            << (FoundDegradation
                    ? "the off-by-one turned a proven bounded indirection "
                      "into an annotated one: the patch is suspicious."
                    : "no degradation detected (unexpected)")
            << "\n";
  return FoundDegradation ? 0 : 1;
}
