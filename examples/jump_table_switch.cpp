//===- jump_table_switch.cpp - Bounded indirect control flow --------------===//
//
// Shows the "bounded control flow" sanity property on a compiler-style
// switch: the lifter proves the jump-table index is bounded (from the
// cmp/ja guard), enumerates every table entry, and emits one edge per
// distinct target. Then contrasts it with a binary where the bound cannot
// be established (an unbounded stack write): lifting is refused.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "driver/Report.h"
#include "hg/Lifter.h"
#include "support/Format.h"

#include <iostream>
#include <set>

using namespace hglift;

int main() {
  std::cout << "=== switch over a jump table (12 cases) ===\n";
  auto BB = corpus::jumpTableBinary(12);
  if (!BB)
    return 1;
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  driver::printBinaryReport(std::cout, R, L.exprContext());

  // The indirect jmp's outgoing edges: one per read table value (§2).
  for (const hg::FunctionResult &F : R.Functions)
    for (const auto &[Key, V] : F.Graph.Vertices) {
      if (!V.Instr.isValid() || !V.Instr.isJump() || V.Instr.Ops[0].isImm())
        continue;
      std::set<uint64_t> Targets;
      for (const hg::Edge &E : F.Graph.Edges)
        if (E.From == Key && E.To.Rip != hg::UnresolvedTargetRip)
          Targets.insert(E.To.Rip);
      std::cout << "\nindirect jump at " << hexStr(Key.Rip) << " ("
                << V.Instr.str() << ") has " << Targets.size()
                << " proven targets:\n  ";
      for (uint64_t T : Targets)
        std::cout << hexStr(T) << " ";
      std::cout << "\n";
    }

  std::cout << "\n=== the same property failing: unbounded stack index ===\n";
  auto Bad = corpus::overflowBinary();
  if (!Bad)
    return 1;
  hg::Lifter L2(Bad->Img, hg::LiftConfig());
  hg::BinaryResult R2 = L2.liftBinary();
  driver::printBinaryReport(std::cout, R2, L2.exprContext());
  std::cout << "\n(lifting refused: the write may clobber the return "
               "address, so no sound HG exists without annotations)\n";

  return R.Outcome == hg::LiftOutcome::Lifted &&
                 R2.Outcome != hg::LiftOutcome::Lifted
             ? 0
             : 1;
}
