//===- failures.cpp - The §5.3 failure gallery -----------------------------===//
//
// Reproduces the paper's three "Examples of Failures":
//
//   1. ret2win:   a memset receives a pointer into the caller's frame; the
//                 lifter emits a MUST-PRESERVE proof obligation whose
//                 violation is exactly the ROP-emporium exploit;
//   2. stack probing: rax flows through an internal call and then moves
//                 rsp; the lifter cannot prove rsp restoration;
//   3. non-standard rsp restoration (the ssh shape): rsp is reloaded from
//                 memory; the report prints the offending symbolic value.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "driver/Report.h"
#include "hg/Lifter.h"

#include <iostream>

using namespace hglift;

namespace {

int show(const char *Title, std::optional<corpus::BuiltBinary> BB,
         bool ExpectLifted) {
  std::cout << "=== " << Title << " ===\n";
  if (!BB) {
    std::cerr << "corpus build failed\n";
    return 1;
  }
  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  driver::printBinaryReport(std::cout, R, L.exprContext());
  std::cout << "\n";
  return (R.Outcome == hg::LiftOutcome::Lifted) == ExpectLifted ? 0 : 1;
}

} // namespace

int main() {
  int RC = 0;
  // ret2win lifts *successfully* — but only under an explicit obligation
  // that memset preserves the frame; the exploit is its negation.
  RC |= show("ret2win (ROP emporium): obligation generated",
             corpus::ret2winBinary(), /*ExpectLifted=*/true);
  RC |= show("stack probing (macOS zip shape): verification error",
             corpus::stackProbeBinary(), /*ExpectLifted=*/false);
  RC |= show("non-standard rsp restoration (macOS ssh shape)",
             corpus::nonstandardRspBinary(), /*ExpectLifted=*/false);
  return RC;
}
