//===- weird_edge.cpp - The §2 / Figure 1 example -------------------------===//
//
// Reproduces the paper's running example: a function that reads a jump
// table and then branches through a pointer that may alias a second
// pointer. Under aliasing, an immediate planted by the second store sends
// control *into the middle* of the first instruction, whose 0xc3 byte is a
// hidden ret — a ROP gadget. An overapproximative lifting must contain
// that edge; this example shows that ours does, and then runs the concrete
// emulator to prove the path is real.
//
//===----------------------------------------------------------------------===//

#include "corpus/Programs.h"
#include "driver/Report.h"
#include "hg/Lifter.h"
#include "semantics/Machine.h"
#include "support/Format.h"

#include <iostream>

using namespace hglift;

int main() {
  auto BB = corpus::weirdEdgeBinary();
  if (!BB) {
    std::cerr << "corpus build failed\n";
    return 1;
  }

  hg::Lifter L(BB->Img, hg::LiftConfig());
  hg::BinaryResult R = L.liftBinary();
  driver::printBinaryReport(std::cout, R, L.exprContext());

  std::cout << "\n--- weird edges in the Hoare Graph ---\n";
  uint64_t WeirdTarget = 0;
  for (const hg::FunctionResult &F : R.Functions)
    for (const hg::Edge &E : F.Graph.weirdEdges()) {
      std::cout << "  " << hexStr(E.From.Rip) << " --(" << E.Instr.str()
                << ")--> " << hexStr(E.To.Rip)
                << "   <- lands inside another instruction\n";
      WeirdTarget = E.To.Rip;
    }
  if (!WeirdTarget) {
    std::cerr << "expected a weird edge!\n";
    return 1;
  }

  // Find f (the call target of _start) and run it concretely, twice.
  sem::Machine Probe(BB->Img);
  Probe.setupCall(BB->Img.Entry);
  uint64_t F = 0;
  for (int I = 0; I < 10 && F == 0; ++I) {
    size_t Avail;
    const uint8_t *Bytes = BB->Img.bytesAt(Probe.Rip, Avail);
    x86::Instr In = x86::decodeInstr(Bytes, Avail, Probe.Rip);
    bool WasCall = In.isCall();
    if (Probe.step() != sem::Machine::Status::Running)
      break;
    if (WasCall)
      F = Probe.Rip;
  }

  std::cout << "\n--- concrete run, pointers separate (rsi != rdx) ---\n";
  {
    sem::Machine M(BB->Img);
    M.setupCall(F);
    M.setReg(x86::Reg::RDI, 3);
    M.setReg(x86::Reg::RSI, 0x700000);
    M.setReg(x86::Reg::RDX, 0x700100);
    auto St = M.run(1000);
    std::cout << "  status: " << (St == sem::Machine::Status::Returned
                                      ? "returned normally"
                                      : "?")
              << ", " << M.trace().size() << " instructions\n";
  }

  std::cout << "--- concrete run, pointers aliasing (rsi == rdx) ---\n";
  {
    sem::Machine M(BB->Img);
    M.setupCall(F);
    M.setReg(x86::Reg::RDI, 3);
    M.setReg(x86::Reg::RSI, 0x700000);
    M.setReg(x86::Reg::RDX, 0x700000);
    auto St = M.run(1000);
    bool SawRop = false;
    for (uint64_t A : M.trace())
      SawRop |= A == WeirdTarget;
    std::cout << "  status: "
              << (St == sem::Machine::Status::Returned ? "returned" : "?")
              << ", hidden ret at " << hexStr(WeirdTarget)
              << (SawRop ? " WAS EXECUTED (ROP gadget is real)"
                         : " was not executed")
              << "\n";
    if (!SawRop)
      return 1;
  }

  return 0;
}
