#include "x86/Decoder.h"

namespace hglift::x86 {

namespace {

/// Cursor over the instruction bytes with bounds checking. All read*
/// methods set Fail on exhaustion; callers check once at the end.
struct Cursor {
  const uint8_t *Bytes;
  size_t Avail;
  size_t Pos = 0;
  bool Fail = false;

  uint8_t peek() {
    if (Pos >= Avail) {
      Fail = true;
      return 0;
    }
    return Bytes[Pos];
  }
  uint8_t u8() {
    if (Pos >= Avail) {
      Fail = true;
      return 0;
    }
    return Bytes[Pos++];
  }
  int8_t s8() { return static_cast<int8_t>(u8()); }
  uint16_t u16() {
    uint16_t V = u8();
    V |= static_cast<uint16_t>(u8()) << 8;
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(u8()) << (8 * I);
    return V;
  }
  int32_t s32() { return static_cast<int32_t>(u32()); }
  uint64_t u64() {
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(u8()) << (8 * I);
    return V;
  }
};

struct Rex {
  bool Present = false;
  bool W = false, R = false, X = false, B = false;
};

/// Decoded ModRM + SIB + displacement.
struct ModRM {
  uint8_t Mod = 0;
  uint8_t RegField = 0; // already REX.R extended
  bool IsRegRM = false; // mod == 3
  Reg RMReg = Reg::None;
  MemOperand Mem;
};

bool parseModRM(Cursor &C, const Rex &RX, ModRM &Out) {
  uint8_t B = C.u8();
  Out.Mod = B >> 6;
  Out.RegField = ((B >> 3) & 7) | (RX.R ? 8 : 0);
  uint8_t RM = B & 7;

  if (Out.Mod == 3) {
    Out.IsRegRM = true;
    Out.RMReg = regFromNum(RM | (RX.B ? 8 : 0));
    return !C.Fail;
  }

  MemOperand M;
  if (RM == 4) {
    // SIB byte.
    uint8_t SIB = C.u8();
    uint8_t ScaleBits = SIB >> 6;
    uint8_t IdxBits = ((SIB >> 3) & 7) | (RX.X ? 8 : 0);
    uint8_t BaseBits = (SIB & 7) | (RX.B ? 8 : 0);
    M.Scale = static_cast<uint8_t>(1u << ScaleBits);
    if (IdxBits != 4) // rsp cannot be an index
      M.Index = regFromNum(IdxBits);
    if ((BaseBits & 7) == 5 && Out.Mod == 0) {
      M.Base = Reg::None; // disp32 only
      M.Disp = C.s32();
      Out.Mem = M;
      return !C.Fail;
    }
    M.Base = regFromNum(BaseBits);
  } else if (RM == 5 && Out.Mod == 0) {
    // RIP-relative disp32.
    M.RipRel = true;
    M.Disp = C.s32();
    Out.Mem = M;
    return !C.Fail;
  } else {
    M.Base = regFromNum(RM | (RX.B ? 8 : 0));
  }

  if (Out.Mod == 1)
    M.Disp = C.s8();
  else if (Out.Mod == 2)
    M.Disp = C.s32();
  Out.Mem = M;
  return !C.Fail;
}

/// Build a register operand honoring the 8-bit high-byte encodings: without
/// a REX prefix, encodings 4..7 at 8-bit size mean ah/ch/dh/bh.
Operand gpr(unsigned Num, unsigned Size, const Rex &RX) {
  if (Size == 1 && !RX.Present && Num >= 4 && Num < 8)
    return Operand::reg(regFromNum(Num - 4), 1, /*High=*/true);
  return Operand::reg(regFromNum(Num), static_cast<uint8_t>(Size));
}

Operand rmOperand(const ModRM &MR, unsigned Size, const Rex &RX) {
  if (MR.IsRegRM)
    return gpr(regNum(MR.RMReg), Size, RX);
  return Operand::mem(MR.Mem, static_cast<uint8_t>(Size));
}

/// Group-1 arithmetic mnemonics indexed by the ModRM reg field.
const Mnemonic Group1[] = {Mnemonic::Add, Mnemonic::Or,  Mnemonic::Adc,
                           Mnemonic::Sbb, Mnemonic::And, Mnemonic::Sub,
                           Mnemonic::Xor, Mnemonic::Cmp};

/// The 00..3D "op r/m,r / op r,r/m / op acc,imm" family base opcodes: each
/// of the eight group-1 operations occupies a block of eight opcodes of
/// which the first six are the operand forms.
bool isArithFamily(uint8_t Op) { return Op < 0x40 && (Op & 7) <= 5; }

} // namespace

Instr decodeInstr(const uint8_t *Bytes, size_t Avail, uint64_t Addr) {
  Instr I;
  I.Addr = Addr;

  Cursor C{Bytes, Avail};
  bool OpSize16 = false;
  bool RepF3 = false;
  Rex RX;

  // Legacy prefixes then an optional REX.
  for (;;) {
    uint8_t P = C.peek();
    if (C.Fail)
      return Instr{};
    if (P == 0x66) {
      OpSize16 = true;
      C.u8();
      continue;
    }
    if (P == 0xf3) {
      RepF3 = true;
      C.u8();
      continue;
    }
    if (P == 0xf2) {
      C.u8();
      continue;
    }
    break;
  }
  if ((C.peek() & 0xf0) == 0x40) {
    uint8_t R = C.u8();
    RX.Present = true;
    RX.W = R & 8;
    RX.R = R & 4;
    RX.X = R & 2;
    RX.B = R & 1;
  }

  unsigned OpSz = RX.W ? 8 : (OpSize16 ? 2 : 4);
  uint8_t Op = C.u8();
  if (C.Fail)
    return Instr{};

  auto finish = [&]() -> Instr {
    if (C.Fail || C.Pos > 15)
      return Instr{};
    I.Length = static_cast<uint8_t>(C.Pos);
    I.OpSize = static_cast<uint8_t>(OpSz);
    return I;
  };
  auto invalid = []() -> Instr { return Instr{}; };

  // ---- Two-byte opcodes ----
  if (Op == 0x0f) {
    uint8_t Op2 = C.u8();
    if (C.Fail)
      return invalid();

    if (Op2 == 0x05) {
      I.Mn = Mnemonic::Syscall;
      return finish();
    }
    if (Op2 == 0x0b) {
      I.Mn = Mnemonic::Ud2;
      return finish();
    }
    if (Op2 == 0x1e && RepF3) {
      // endbr64: f3 0f 1e fa
      if (C.u8() != 0xfa)
        return invalid();
      I.Mn = Mnemonic::Endbr64;
      return finish();
    }
    if (Op2 == 0x1f) {
      // Multi-byte NOP.
      ModRM MR;
      if (!parseModRM(C, RX, MR))
        return invalid();
      I.Mn = Mnemonic::Nop;
      return finish();
    }
    if (Op2 >= 0x40 && Op2 <= 0x4f) {
      // CMOVcc r, r/m
      ModRM MR;
      if (!parseModRM(C, RX, MR))
        return invalid();
      I.Mn = Mnemonic::Cmovcc;
      I.CC = static_cast<Cond>(Op2 & 0xf);
      I.Ops[0] = gpr(MR.RegField, OpSz, RX);
      I.Ops[1] = rmOperand(MR, OpSz, RX);
      return finish();
    }
    if (Op2 >= 0x80 && Op2 <= 0x8f) {
      int32_t Rel = C.s32();
      I.Mn = Mnemonic::Jcc;
      I.CC = static_cast<Cond>(Op2 & 0xf);
      I.Ops[0] = Operand::imm(
          static_cast<int64_t>(Addr + C.Pos + static_cast<int64_t>(Rel)), 8);
      return finish();
    }
    if (Op2 >= 0x90 && Op2 <= 0x9f) {
      ModRM MR;
      if (!parseModRM(C, RX, MR))
        return invalid();
      I.Mn = Mnemonic::Setcc;
      I.CC = static_cast<Cond>(Op2 & 0xf);
      I.Ops[0] = rmOperand(MR, 1, RX);
      return finish();
    }
    if (Op2 >= 0xc8 && Op2 <= 0xcf) {
      // BSWAP r32/r64.
      I.Mn = Mnemonic::Bswap;
      I.Ops[0] = gpr((Op2 - 0xc8) | (RX.B ? 8 : 0), RX.W ? 8 : 4, RX);
      return finish();
    }
    if (Op2 == 0xbc || Op2 == 0xbd) {
      // BSF / BSR r, r/m.
      ModRM MR;
      if (!parseModRM(C, RX, MR))
        return invalid();
      I.Mn = Op2 == 0xbc ? Mnemonic::Bsf : Mnemonic::Bsr;
      I.Ops[0] = gpr(MR.RegField, OpSz, RX);
      I.Ops[1] = rmOperand(MR, OpSz, RX);
      return finish();
    }
    if (Op2 == 0xaf) {
      ModRM MR;
      if (!parseModRM(C, RX, MR))
        return invalid();
      I.Mn = Mnemonic::Imul;
      I.Ops[0] = gpr(MR.RegField, OpSz, RX);
      I.Ops[1] = rmOperand(MR, OpSz, RX);
      return finish();
    }
    if (Op2 == 0xb6 || Op2 == 0xb7 || Op2 == 0xbe || Op2 == 0xbf) {
      // MOVZX / MOVSX r, r/m8 or r/m16
      ModRM MR;
      if (!parseModRM(C, RX, MR))
        return invalid();
      unsigned SrcSz = (Op2 & 1) ? 2 : 1;
      I.Mn = (Op2 >= 0xbe) ? Mnemonic::Movsx : Mnemonic::Movzx;
      I.Ops[0] = gpr(MR.RegField, OpSz, RX);
      I.Ops[1] = rmOperand(MR, SrcSz, RX);
      return finish();
    }
    return invalid();
  }

  // ---- One-byte opcodes ----

  // Arithmetic family 00..3D: add/or/adc/sbb/and/sub/xor/cmp.
  if (isArithFamily(Op)) {
    Mnemonic Mn = Group1[Op >> 3];
    uint8_t Form = Op & 7;
    I.Mn = Mn;
    switch (Form) {
    case 0: // r/m8, r8
    case 1: { // r/m, r
      unsigned Sz = (Form == 0) ? 1 : OpSz;
      ModRM MR;
      if (!parseModRM(C, RX, MR))
        return invalid();
      I.Ops[0] = rmOperand(MR, Sz, RX);
      I.Ops[1] = gpr(MR.RegField, Sz, RX);
      return finish();
    }
    case 2: // r8, r/m8
    case 3: { // r, r/m
      unsigned Sz = (Form == 2) ? 1 : OpSz;
      ModRM MR;
      if (!parseModRM(C, RX, MR))
        return invalid();
      I.Ops[0] = gpr(MR.RegField, Sz, RX);
      I.Ops[1] = rmOperand(MR, Sz, RX);
      return finish();
    }
    case 4: // al, imm8
      I.Ops[0] = gpr(0, 1, RX);
      I.Ops[1] = Operand::imm(C.s8(), 1);
      return finish();
    case 5: { // eAX, imm
      I.Ops[0] = gpr(0, OpSz, RX);
      int64_t Imm = (OpSz == 2) ? static_cast<int16_t>(C.u16()) : C.s32();
      I.Ops[1] = Operand::imm(Imm, static_cast<uint8_t>(OpSz));
      return finish();
    }
    }
    return invalid();
  }

  // push/pop r64.
  if (Op >= 0x50 && Op <= 0x57) {
    I.Mn = Mnemonic::Push;
    I.Ops[0] = Operand::reg(regFromNum((Op - 0x50) | (RX.B ? 8 : 0)), 8);
    return finish();
  }
  if (Op >= 0x58 && Op <= 0x5f) {
    I.Mn = Mnemonic::Pop;
    I.Ops[0] = Operand::reg(regFromNum((Op - 0x58) | (RX.B ? 8 : 0)), 8);
    return finish();
  }

  switch (Op) {
  case 0x63: { // movsxd r64, r/m32
    ModRM MR;
    if (!parseModRM(C, RX, MR))
      return invalid();
    I.Mn = Mnemonic::Movsxd;
    I.Ops[0] = gpr(MR.RegField, RX.W ? 8 : 4, RX);
    I.Ops[1] = rmOperand(MR, 4, RX);
    return finish();
  }
  case 0x68:
    I.Mn = Mnemonic::Push;
    I.Ops[0] = Operand::imm(C.s32(), 8);
    return finish();
  case 0x6a:
    I.Mn = Mnemonic::Push;
    I.Ops[0] = Operand::imm(C.s8(), 8);
    return finish();
  case 0x69:
  case 0x6b: { // imul r, r/m, imm
    ModRM MR;
    if (!parseModRM(C, RX, MR))
      return invalid();
    I.Mn = Mnemonic::Imul;
    I.Ops[0] = gpr(MR.RegField, OpSz, RX);
    I.Ops[1] = rmOperand(MR, OpSz, RX);
    int64_t Imm = (Op == 0x6b) ? C.s8()
                  : (OpSz == 2 ? static_cast<int16_t>(C.u16()) : C.s32());
    I.Ops[2] = Operand::imm(Imm, static_cast<uint8_t>(OpSz));
    return finish();
  }
  default:
    break;
  }

  // Jcc rel8.
  if (Op >= 0x70 && Op <= 0x7f) {
    int8_t Rel = C.s8();
    I.Mn = Mnemonic::Jcc;
    I.CC = static_cast<Cond>(Op & 0xf);
    I.Ops[0] = Operand::imm(
        static_cast<int64_t>(Addr + C.Pos + static_cast<int64_t>(Rel)), 8);
    return finish();
  }

  switch (Op) {
  case 0x80:
  case 0x81:
  case 0x83: { // group1 r/m, imm
    ModRM MR;
    if (!parseModRM(C, RX, MR))
      return invalid();
    unsigned Sz = (Op == 0x80) ? 1 : OpSz;
    I.Mn = Group1[MR.RegField & 7];
    I.Ops[0] = rmOperand(MR, Sz, RX);
    int64_t Imm;
    if (Op == 0x81)
      Imm = (OpSz == 2) ? static_cast<int16_t>(C.u16()) : C.s32();
    else
      Imm = C.s8();
    I.Ops[1] = Operand::imm(Imm, static_cast<uint8_t>(Sz));
    return finish();
  }
  case 0x84:
  case 0x85: { // test r/m, r
    ModRM MR;
    if (!parseModRM(C, RX, MR))
      return invalid();
    unsigned Sz = (Op == 0x84) ? 1 : OpSz;
    I.Mn = Mnemonic::Test;
    I.Ops[0] = rmOperand(MR, Sz, RX);
    I.Ops[1] = gpr(MR.RegField, Sz, RX);
    return finish();
  }
  case 0x86:
  case 0x87: { // xchg r/m, r
    ModRM MR;
    if (!parseModRM(C, RX, MR))
      return invalid();
    unsigned Sz = (Op == 0x86) ? 1 : OpSz;
    I.Mn = Mnemonic::Xchg;
    I.Ops[0] = rmOperand(MR, Sz, RX);
    I.Ops[1] = gpr(MR.RegField, Sz, RX);
    return finish();
  }
  case 0x88:
  case 0x89: { // mov r/m, r
    ModRM MR;
    if (!parseModRM(C, RX, MR))
      return invalid();
    unsigned Sz = (Op == 0x88) ? 1 : OpSz;
    I.Mn = Mnemonic::Mov;
    I.Ops[0] = rmOperand(MR, Sz, RX);
    I.Ops[1] = gpr(MR.RegField, Sz, RX);
    return finish();
  }
  case 0x8a:
  case 0x8b: { // mov r, r/m
    ModRM MR;
    if (!parseModRM(C, RX, MR))
      return invalid();
    unsigned Sz = (Op == 0x8a) ? 1 : OpSz;
    I.Mn = Mnemonic::Mov;
    I.Ops[0] = gpr(MR.RegField, Sz, RX);
    I.Ops[1] = rmOperand(MR, Sz, RX);
    return finish();
  }
  case 0x8d: { // lea
    ModRM MR;
    if (!parseModRM(C, RX, MR) || MR.IsRegRM)
      return invalid();
    I.Mn = Mnemonic::Lea;
    I.Ops[0] = gpr(MR.RegField, OpSz, RX);
    I.Ops[1] = Operand::mem(MR.Mem, static_cast<uint8_t>(OpSz));
    return finish();
  }
  case 0x8f: { // pop r/m64
    ModRM MR;
    if (!parseModRM(C, RX, MR))
      return invalid();
    if (MR.RegField & 7)
      return invalid();
    I.Mn = Mnemonic::Pop;
    I.Ops[0] = rmOperand(MR, 8, RX);
    return finish();
  }
  case 0x90:
    I.Mn = Mnemonic::Nop;
    return finish();
  case 0x98:
    I.Mn = Mnemonic::Cdqe; // cdqe with REX.W, cwde otherwise
    return finish();
  case 0x99:
    I.Mn = Mnemonic::Cqo;
    return finish();
  case 0xa8:
    I.Mn = Mnemonic::Test;
    I.Ops[0] = gpr(0, 1, RX);
    I.Ops[1] = Operand::imm(C.s8(), 1);
    return finish();
  case 0xa9: {
    I.Mn = Mnemonic::Test;
    I.Ops[0] = gpr(0, OpSz, RX);
    int64_t Imm = (OpSz == 2) ? static_cast<int16_t>(C.u16()) : C.s32();
    I.Ops[1] = Operand::imm(Imm, static_cast<uint8_t>(OpSz));
    return finish();
  }
  default:
    break;
  }

  // mov r8, imm8 / mov r, imm32/imm64.
  if (Op >= 0xb0 && Op <= 0xb7) {
    I.Mn = Mnemonic::Mov;
    I.Ops[0] = gpr((Op - 0xb0) | (RX.B ? 8 : 0), 1, RX);
    I.Ops[1] = Operand::imm(C.s8(), 1);
    return finish();
  }
  if (Op >= 0xb8 && Op <= 0xbf) {
    I.Mn = Mnemonic::Mov;
    unsigned N = (Op - 0xb8) | (RX.B ? 8 : 0);
    I.Ops[0] = gpr(N, OpSz, RX);
    int64_t Imm;
    if (OpSz == 8)
      Imm = static_cast<int64_t>(C.u64());
    else if (OpSz == 2)
      Imm = static_cast<int16_t>(C.u16());
    else
      Imm = static_cast<int64_t>(static_cast<uint32_t>(C.u32()));
    I.Ops[1] = Operand::imm(Imm, static_cast<uint8_t>(OpSz));
    return finish();
  }

  switch (Op) {
  case 0xc0:
  case 0xc1:
  case 0xd0:
  case 0xd1:
  case 0xd2:
  case 0xd3: { // shift group 2
    ModRM MR;
    if (!parseModRM(C, RX, MR))
      return invalid();
    unsigned Sz = (Op == 0xc0 || Op == 0xd0 || Op == 0xd2) ? 1 : OpSz;
    static const Mnemonic ShiftMn[] = {
        Mnemonic::Rol,     Mnemonic::Ror,     Mnemonic::Invalid,
        Mnemonic::Invalid, Mnemonic::Shl,     Mnemonic::Shr,
        Mnemonic::Shl,     Mnemonic::Sar};
    Mnemonic Mn = ShiftMn[MR.RegField & 7];
    if (Mn == Mnemonic::Invalid)
      return invalid();
    I.Mn = Mn;
    I.Ops[0] = rmOperand(MR, Sz, RX);
    if (Op == 0xc0 || Op == 0xc1)
      I.Ops[1] = Operand::imm(static_cast<int64_t>(C.u8()), 1);
    else if (Op == 0xd0 || Op == 0xd1)
      I.Ops[1] = Operand::imm(1, 1);
    else
      I.Ops[1] = Operand::reg(Reg::RCX, 1); // shift by cl
    return finish();
  }
  case 0xc2:
    I.Mn = Mnemonic::Ret;
    I.Ops[0] = Operand::imm(static_cast<int64_t>(C.u16()), 2);
    return finish();
  case 0xc3:
    I.Mn = Mnemonic::Ret;
    return finish();
  case 0xc6:
  case 0xc7: { // mov r/m, imm
    ModRM MR;
    if (!parseModRM(C, RX, MR))
      return invalid();
    if (MR.RegField & 7)
      return invalid();
    unsigned Sz = (Op == 0xc6) ? 1 : OpSz;
    I.Mn = Mnemonic::Mov;
    I.Ops[0] = rmOperand(MR, Sz, RX);
    int64_t Imm;
    if (Op == 0xc6)
      Imm = C.s8();
    else
      Imm = (OpSz == 2) ? static_cast<int16_t>(C.u16()) : C.s32();
    I.Ops[1] = Operand::imm(Imm, static_cast<uint8_t>(Sz));
    return finish();
  }
  case 0xc9:
    I.Mn = Mnemonic::Leave;
    return finish();
  case 0xcc:
    I.Mn = Mnemonic::Int3;
    return finish();
  case 0xe8: {
    int32_t Rel = C.s32();
    I.Mn = Mnemonic::Call;
    I.Ops[0] = Operand::imm(
        static_cast<int64_t>(Addr + C.Pos + static_cast<int64_t>(Rel)), 8);
    return finish();
  }
  case 0xe9: {
    int32_t Rel = C.s32();
    I.Mn = Mnemonic::Jmp;
    I.Ops[0] = Operand::imm(
        static_cast<int64_t>(Addr + C.Pos + static_cast<int64_t>(Rel)), 8);
    return finish();
  }
  case 0xeb: {
    int8_t Rel = C.s8();
    I.Mn = Mnemonic::Jmp;
    I.Ops[0] = Operand::imm(
        static_cast<int64_t>(Addr + C.Pos + static_cast<int64_t>(Rel)), 8);
    return finish();
  }
  case 0xf4:
    I.Mn = Mnemonic::Hlt;
    return finish();
  case 0xf6:
  case 0xf7: { // group 3
    ModRM MR;
    if (!parseModRM(C, RX, MR))
      return invalid();
    unsigned Sz = (Op == 0xf6) ? 1 : OpSz;
    switch (MR.RegField & 7) {
    case 0:
    case 1: { // test r/m, imm
      I.Mn = Mnemonic::Test;
      I.Ops[0] = rmOperand(MR, Sz, RX);
      int64_t Imm;
      if (Op == 0xf6)
        Imm = C.s8();
      else
        Imm = (OpSz == 2) ? static_cast<int16_t>(C.u16()) : C.s32();
      I.Ops[1] = Operand::imm(Imm, static_cast<uint8_t>(Sz));
      return finish();
    }
    case 2:
      I.Mn = Mnemonic::Not;
      I.Ops[0] = rmOperand(MR, Sz, RX);
      return finish();
    case 3:
      I.Mn = Mnemonic::Neg;
      I.Ops[0] = rmOperand(MR, Sz, RX);
      return finish();
    case 4:
      I.Mn = Mnemonic::Mul;
      I.Ops[0] = rmOperand(MR, Sz, RX);
      return finish();
    case 5:
      I.Mn = Mnemonic::Imul;
      I.Ops[0] = rmOperand(MR, Sz, RX);
      return finish();
    case 6:
      I.Mn = Mnemonic::Div;
      I.Ops[0] = rmOperand(MR, Sz, RX);
      return finish();
    case 7:
      I.Mn = Mnemonic::Idiv;
      I.Ops[0] = rmOperand(MR, Sz, RX);
      return finish();
    }
    return invalid();
  }
  case 0xfe: {
    ModRM MR;
    if (!parseModRM(C, RX, MR))
      return invalid();
    uint8_t Ext = MR.RegField & 7;
    if (Ext > 1)
      return invalid();
    I.Mn = Ext == 0 ? Mnemonic::Inc : Mnemonic::Dec;
    I.Ops[0] = rmOperand(MR, 1, RX);
    return finish();
  }
  case 0xff: { // group 5
    ModRM MR;
    if (!parseModRM(C, RX, MR))
      return invalid();
    switch (MR.RegField & 7) {
    case 0:
      I.Mn = Mnemonic::Inc;
      I.Ops[0] = rmOperand(MR, OpSz, RX);
      return finish();
    case 1:
      I.Mn = Mnemonic::Dec;
      I.Ops[0] = rmOperand(MR, OpSz, RX);
      return finish();
    case 2: // call r/m64 (indirect)
      I.Mn = Mnemonic::Call;
      I.Ops[0] = rmOperand(MR, 8, RX);
      return finish();
    case 4: // jmp r/m64 (indirect)
      I.Mn = Mnemonic::Jmp;
      I.Ops[0] = rmOperand(MR, 8, RX);
      return finish();
    case 6: // push r/m64
      I.Mn = Mnemonic::Push;
      I.Ops[0] = rmOperand(MR, 8, RX);
      return finish();
    default:
      return invalid();
    }
  }
  default:
    break;
  }

  return invalid();
}

} // namespace hglift::x86
