//===- Decoder.h - x86-64 instruction decoder ------------------*- C++ -*-===//
//
// A from-scratch table-free decoder for the x86-64 instruction subset
// emitted by C compilers that the paper's case studies exercise: data moves,
// integer/bitwise arithmetic, shifts, comparisons, conditional operations,
// stack manipulation, and all control flow. 64-bit mode only.
//
// This implements the paper's `fetch : W64 -> I` (Definition 3.1). Decoding
// is deliberately strict: any byte sequence outside the supported subset
// decodes to an Invalid instruction, which the lifter reports as a
// verification error rather than guessing (the paper's "may fail" stance).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_X86_DECODER_H
#define HGLIFT_X86_DECODER_H

#include "x86/Instr.h"

#include <cstddef>

namespace hglift::x86 {

/// Decode a single instruction from Bytes (at most Avail bytes available)
/// located at virtual address Addr. On failure the returned Instr has
/// Mn == Mnemonic::Invalid and Length == 0.
Instr decodeInstr(const uint8_t *Bytes, size_t Avail, uint64_t Addr);

} // namespace hglift::x86

#endif // HGLIFT_X86_DECODER_H
