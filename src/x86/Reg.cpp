#include "x86/Reg.h"

namespace hglift::x86 {

namespace {
const char *Names64[] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                         "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                         "r12", "r13", "r14", "r15"};
const char *Names32[] = {"eax",  "ecx",  "edx",  "ebx",  "esp",  "ebp",
                         "esi",  "edi",  "r8d",  "r9d",  "r10d", "r11d",
                         "r12d", "r13d", "r14d", "r15d"};
const char *Names16[] = {"ax",   "cx",   "dx",   "bx",   "sp",   "bp",
                         "si",   "di",   "r8w",  "r9w",  "r10w", "r11w",
                         "r12w", "r13w", "r14w", "r15w"};
const char *Names8[] = {"al",   "cl",   "dl",   "bl",   "spl",  "bpl",
                        "sil",  "dil",  "r8b",  "r9b",  "r10b", "r11b",
                        "r12b", "r13b", "r14b", "r15b"};
const char *Names8H[] = {"ah", "ch", "dh", "bh"};
} // namespace

std::string regName(Reg R, unsigned SizeBytes, bool HighByte) {
  if (R == Reg::RIP)
    return "rip";
  if (R == Reg::None)
    return "<none>";
  unsigned N = regNum(R);
  switch (SizeBytes) {
  case 8:
    return Names64[N];
  case 4:
    return Names32[N];
  case 2:
    return Names16[N];
  case 1:
    if (HighByte && N < 4)
      return Names8H[N];
    return Names8[N];
  default:
    return Names64[N];
  }
}

bool isCalleeSaved(Reg R) {
  switch (R) {
  case Reg::RBX:
  case Reg::RBP:
  case Reg::R12:
  case Reg::R13:
  case Reg::R14:
  case Reg::R15:
    return true;
  default:
    return false;
  }
}

Reg argReg(unsigned Index) {
  static const Reg Args[] = {Reg::RDI, Reg::RSI, Reg::RDX,
                             Reg::RCX, Reg::R8,  Reg::R9};
  return Index < 6 ? Args[Index] : Reg::None;
}

const char *condName(Cond C) {
  static const char *N[] = {"o",  "no", "b",  "ae", "e",  "ne", "be", "a",
                            "s",  "ns", "p",  "np", "l",  "ge", "le", "g"};
  return N[static_cast<uint8_t>(C)];
}

} // namespace hglift::x86
