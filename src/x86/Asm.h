//===- Asm.h - x86-64 assembler / encoder ----------------------*- C++ -*-===//
//
// A small assembler used by the synthetic-corpus generator (the stand-in
// for the paper's Xen/CoreUtils binaries, see DESIGN.md §4). It emits real
// machine code for the same instruction subset the decoder understands; a
// property test round-trips every emitted form through the decoder.
//
// Labels support forward references; code is position-dependent (we emit
// rel32 branches and absolute or RIP-relative data references).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_X86_ASM_H
#define HGLIFT_X86_ASM_H

#include "x86/Instr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hglift::x86 {

class Asm {
public:
  using Label = uint32_t;

  explicit Asm(uint64_t BaseAddr) : Base(BaseAddr) {}

  uint64_t baseAddr() const { return Base; }
  uint64_t currentAddr() const { return Base + Code.size(); }
  size_t size() const { return Code.size(); }

  Label newLabel();
  void bind(Label L);
  /// Address of a bound label (call after finalize() for forward labels).
  uint64_t labelAddr(Label L) const;

  /// Resolve all fixups. Must be called exactly once, after all labels are
  /// bound. Returns false if an unbound label was referenced.
  bool finalize();
  const std::vector<uint8_t> &code() const { return Code; }

  // --- raw emission -------------------------------------------------------
  void byte(uint8_t B) { Code.push_back(B); }
  void bytes(std::initializer_list<uint8_t> Bs) {
    Code.insert(Code.end(), Bs);
  }
  void u32(uint32_t V);
  void u64(uint64_t V);
  /// Emit an 8-byte little-endian pointer to a label (jump-table entry).
  void ptrTo(Label L);

  // --- moves --------------------------------------------------------------
  void movRR(Reg Dst, Reg Src, unsigned Sz = 8);
  void movRI(Reg Dst, int64_t Imm, unsigned Sz = 8);
  void movRM(Reg Dst, const MemOperand &M, unsigned Sz = 8);
  void movMR(const MemOperand &M, Reg Src, unsigned Sz = 8);
  void movMI(const MemOperand &M, int32_t Imm, unsigned Sz = 8);
  void movzxRM(Reg Dst, const MemOperand &M, unsigned SrcSz,
               unsigned DstSz = 8);
  void movzxRR(Reg Dst, Reg Src, unsigned SrcSz, unsigned DstSz = 8);
  void movsxRM(Reg Dst, const MemOperand &M, unsigned SrcSz,
               unsigned DstSz = 8);
  void movsxdRR(Reg Dst, Reg Src);
  /// movsxd Dst, dword ptr [M] — the gcc offset-jump-table load.
  void movsxdRM(Reg Dst, const MemOperand &M);
  void leaRM(Reg Dst, const MemOperand &M, unsigned Sz = 8);
  /// lea Dst, [rip + <label>]
  void leaRL(Reg Dst, Label L);
  void cmovRR(Cond CC, Reg Dst, Reg Src, unsigned Sz = 8);
  void setccR(Cond CC, Reg Dst);
  void xchgRR(Reg A, Reg B, unsigned Sz = 8);

  // --- arithmetic (group-1 style: add/sub/and/or/xor/cmp/adc/sbb) ---------
  void arithRR(Mnemonic Mn, Reg Dst, Reg Src, unsigned Sz = 8);
  void arithRI(Mnemonic Mn, Reg Dst, int32_t Imm, unsigned Sz = 8);
  void arithRM(Mnemonic Mn, Reg Dst, const MemOperand &M, unsigned Sz = 8);
  void arithMR(Mnemonic Mn, const MemOperand &M, Reg Src, unsigned Sz = 8);
  void arithMI(Mnemonic Mn, const MemOperand &M, int32_t Imm,
               unsigned Sz = 8);
  void addRR(Reg D, Reg S, unsigned Sz = 8) { arithRR(Mnemonic::Add, D, S, Sz); }
  void subRR(Reg D, Reg S, unsigned Sz = 8) { arithRR(Mnemonic::Sub, D, S, Sz); }
  void addRI(Reg D, int32_t I, unsigned Sz = 8) { arithRI(Mnemonic::Add, D, I, Sz); }
  void subRI(Reg D, int32_t I, unsigned Sz = 8) { arithRI(Mnemonic::Sub, D, I, Sz); }
  void cmpRI(Reg D, int32_t I, unsigned Sz = 8) { arithRI(Mnemonic::Cmp, D, I, Sz); }
  void cmpRR(Reg D, Reg S, unsigned Sz = 8) { arithRR(Mnemonic::Cmp, D, S, Sz); }
  void xorRR(Reg D, Reg S, unsigned Sz = 8) { arithRR(Mnemonic::Xor, D, S, Sz); }

  void testRR(Reg A, Reg B, unsigned Sz = 8);
  void shiftRI(Mnemonic Mn, Reg Dst, uint8_t Count, unsigned Sz = 8);
  void shiftRCL(Mnemonic Mn, Reg Dst, unsigned Sz = 8);
  void rotRI(Mnemonic Mn, Reg Dst, uint8_t Count, unsigned Sz = 8);
  void bswapR(Reg R, unsigned Sz = 8);
  void bsfRR(Reg Dst, Reg Src, unsigned Sz = 8);
  void bsrRR(Reg Dst, Reg Src, unsigned Sz = 8);
  void imulRR(Reg Dst, Reg Src, unsigned Sz = 8);
  void imulRRI(Reg Dst, Reg Src, int32_t Imm, unsigned Sz = 8);
  void negR(Reg R, unsigned Sz = 8);
  void notR(Reg R, unsigned Sz = 8);
  void incR(Reg R, unsigned Sz = 8);
  void decR(Reg R, unsigned Sz = 8);
  void divR(Reg R, unsigned Sz = 8);
  void cdqe();
  void cqo();

  // --- stack --------------------------------------------------------------
  void pushR(Reg R);
  void popR(Reg R);
  void leave();

  // --- control flow -------------------------------------------------------
  void jmpL(Label L);
  void jccL(Cond CC, Label L);
  void jmpM(const MemOperand &M); ///< jmp qword ptr [mem]  (indirect)
  void jmpR(Reg R);               ///< jmp reg              (indirect)
  void callL(Label L);
  void callAbs(uint64_t Target); ///< call rel32 to a known absolute address
  void callR(Reg R);             ///< call reg  (indirect)
  void callM(const MemOperand &M);
  void ret();
  void nop(unsigned Len = 1);
  void endbr64();
  void ud2();
  void int3();
  void hlt();
  void syscall();

private:
  enum class FixKind : uint8_t { Rel32, Abs64 };
  struct Fixup {
    size_t Pos;
    Label L;
    FixKind Kind;
  };

  void emitRex(unsigned Sz, unsigned RegField, const MemOperand &M,
               bool Force8Rex);
  void emitRexRR(unsigned Sz, unsigned RegField, unsigned RMField,
                 bool Force8Rex);
  void emitModRMMem(unsigned RegField, const MemOperand &M);
  void emitModRMReg(unsigned RegField, unsigned RMField);
  void opSizePrefix(unsigned Sz);
  uint8_t group1Ext(Mnemonic Mn) const;

  uint64_t Base;
  std::vector<uint8_t> Code;
  std::vector<int64_t> Labels; // -1 = unbound, else offset from Base
  std::vector<Fixup> Fixups;
  bool Finalized = false;
};

} // namespace hglift::x86

#endif // HGLIFT_X86_ASM_H
