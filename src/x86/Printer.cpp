#include "support/Format.h"
#include "x86/Instr.h"

namespace hglift::x86 {

const char *mnemonicName(Mnemonic M) {
  switch (M) {
  case Mnemonic::Invalid:
    return "(bad)";
  case Mnemonic::Mov:
    return "mov";
  case Mnemonic::Movzx:
    return "movzx";
  case Mnemonic::Movsx:
    return "movsx";
  case Mnemonic::Movsxd:
    return "movsxd";
  case Mnemonic::Lea:
    return "lea";
  case Mnemonic::Add:
    return "add";
  case Mnemonic::Adc:
    return "adc";
  case Mnemonic::Sub:
    return "sub";
  case Mnemonic::Sbb:
    return "sbb";
  case Mnemonic::And:
    return "and";
  case Mnemonic::Or:
    return "or";
  case Mnemonic::Xor:
    return "xor";
  case Mnemonic::Cmp:
    return "cmp";
  case Mnemonic::Test:
    return "test";
  case Mnemonic::Shl:
    return "shl";
  case Mnemonic::Shr:
    return "shr";
  case Mnemonic::Sar:
    return "sar";
  case Mnemonic::Rol:
    return "rol";
  case Mnemonic::Ror:
    return "ror";
  case Mnemonic::Inc:
    return "inc";
  case Mnemonic::Dec:
    return "dec";
  case Mnemonic::Neg:
    return "neg";
  case Mnemonic::Not:
    return "not";
  case Mnemonic::Imul:
    return "imul";
  case Mnemonic::Mul:
    return "mul";
  case Mnemonic::Div:
    return "div";
  case Mnemonic::Idiv:
    return "idiv";
  case Mnemonic::Push:
    return "push";
  case Mnemonic::Pop:
    return "pop";
  case Mnemonic::Call:
    return "call";
  case Mnemonic::Ret:
    return "ret";
  case Mnemonic::Leave:
    return "leave";
  case Mnemonic::Jmp:
    return "jmp";
  case Mnemonic::Jcc:
    return "j";
  case Mnemonic::Setcc:
    return "set";
  case Mnemonic::Cmovcc:
    return "cmov";
  case Mnemonic::Nop:
    return "nop";
  case Mnemonic::Endbr64:
    return "endbr64";
  case Mnemonic::Xchg:
    return "xchg";
  case Mnemonic::Bswap:
    return "bswap";
  case Mnemonic::Bsf:
    return "bsf";
  case Mnemonic::Bsr:
    return "bsr";
  case Mnemonic::Cdqe:
    return "cdqe";
  case Mnemonic::Cqo:
    return "cqo";
  case Mnemonic::Int3:
    return "int3";
  case Mnemonic::Ud2:
    return "ud2";
  case Mnemonic::Syscall:
    return "syscall";
  case Mnemonic::Hlt:
    return "hlt";
  }
  return "?";
}

namespace {
const char *sizePtrName(unsigned Size) {
  switch (Size) {
  case 1:
    return "byte ptr ";
  case 2:
    return "word ptr ";
  case 4:
    return "dword ptr ";
  case 8:
    return "qword ptr ";
  default:
    return "";
  }
}
} // namespace

std::string memOperandStr(const MemOperand &M) {
  std::string S = "[";
  bool First = true;
  if (M.RipRel) {
    S += "rip";
    First = false;
  } else if (M.Base != Reg::None) {
    S += regName(M.Base);
    First = false;
  }
  if (M.Index != Reg::None) {
    if (!First)
      S += "+";
    S += regName(M.Index);
    if (M.Scale != 1)
      S += "*" + std::to_string(M.Scale);
    First = false;
  }
  if (M.Disp != 0 || First) {
    if (First)
      S += hexStr(static_cast<uint64_t>(static_cast<int64_t>(M.Disp)));
    else
      S += dispStr(M.Disp);
  }
  S += "]";
  return S;
}

std::string operandStr(const Operand &O) {
  switch (O.K) {
  case Operand::Kind::None:
    return "";
  case Operand::Kind::Reg:
    return regName(O.R, O.Size, O.HighByte);
  case Operand::Kind::Mem:
    return std::string(sizePtrName(O.Size)) + memOperandStr(O.M);
  case Operand::Kind::Imm:
    if (O.Imm < 0)
      return "-" + hexStr(static_cast<uint64_t>(-O.Imm));
    return hexStr(static_cast<uint64_t>(O.Imm));
  }
  return "";
}

std::string Instr::str() const {
  std::string S = mnemonicName(Mn);
  if (Mn == Mnemonic::Jcc || Mn == Mnemonic::Setcc || Mn == Mnemonic::Cmovcc)
    S += condName(CC);
  bool First = true;
  for (const Operand &O : Ops) {
    if (O.isNone())
      break;
    S += First ? " " : ", ";
    // Relative branch targets were already resolved to absolute immediates.
    if ((Mn == Mnemonic::Jmp || Mn == Mnemonic::Jcc || Mn == Mnemonic::Call) &&
        O.isImm()) {
      S += hexStr(static_cast<uint64_t>(O.Imm));
    } else {
      S += operandStr(O);
    }
    First = false;
  }
  return S;
}

} // namespace hglift::x86
