//===- Instr.h - Decoded x86-64 instruction representation -----*- C++ -*-===//
//
// The paper assumes "a fetch function that, given an address, soundly
// retrieves a single instruction from the binary". Instr is that
// instruction: mnemonic + up to three operands + condition code + length.
// The decoder (Decoder.h) implements fetch; the assembler (Asm.h) is its
// inverse and is used by the corpus generator.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_X86_INSTR_H
#define HGLIFT_X86_INSTR_H

#include "x86/Reg.h"

#include <cstdint>
#include <string>

namespace hglift::x86 {

enum class Mnemonic : uint8_t {
  Invalid = 0,
  Mov,
  Movzx,
  Movsx,
  Movsxd,
  Lea,
  Add,
  Adc,
  Sub,
  Sbb,
  And,
  Or,
  Xor,
  Cmp,
  Test,
  Shl,
  Shr,
  Sar,
  Rol,
  Ror,
  Inc,
  Dec,
  Neg,
  Not,
  Imul, // 1-, 2- and 3-operand forms
  Mul,
  Div,
  Idiv,
  Push,
  Pop,
  Call,
  Ret,
  Leave,
  Jmp,
  Jcc,
  Setcc,
  Cmovcc,
  Nop,
  Endbr64,
  Xchg,
  Bswap,
  Bsf,
  Bsr,
  Cdqe, // sign-extend eax->rax (98 with REX.W) / cwde
  Cqo,  // sign-extend rax->rdx:rax (99 with REX.W) / cdq
  Int3,
  Ud2,
  Syscall,
  Hlt,
};

const char *mnemonicName(Mnemonic M);

/// A memory operand: [base + index*scale + disp], possibly RIP-relative.
struct MemOperand {
  Reg Base = Reg::None;
  Reg Index = Reg::None;
  uint8_t Scale = 1; // 1, 2, 4, 8
  int32_t Disp = 0;
  bool RipRel = false;

  bool operator==(const MemOperand &O) const = default;
};

struct Operand {
  enum class Kind : uint8_t { None, Reg, Mem, Imm } K = Kind::None;

  // Kind::Reg
  x86::Reg R = x86::Reg::None;
  bool HighByte = false; // ah/ch/dh/bh access

  // Kind::Mem
  MemOperand M;

  // Kind::Imm (sign-extended to 64 bits at decode time)
  int64_t Imm = 0;

  /// Operand access size in bytes (1, 2, 4, 8). For Lea this is the
  /// register size; the memory operand is not accessed.
  uint8_t Size = 8;

  static Operand none() { return Operand{}; }
  static Operand reg(x86::Reg R, uint8_t Size = 8, bool High = false) {
    Operand O;
    O.K = Kind::Reg;
    O.R = R;
    O.Size = Size;
    O.HighByte = High;
    return O;
  }
  static Operand mem(MemOperand M, uint8_t Size) {
    Operand O;
    O.K = Kind::Mem;
    O.M = M;
    O.Size = Size;
    return O;
  }
  static Operand imm(int64_t V, uint8_t Size) {
    Operand O;
    O.K = Kind::Imm;
    O.Imm = V;
    O.Size = Size;
    return O;
  }

  bool isNone() const { return K == Kind::None; }
  bool isReg() const { return K == Kind::Reg; }
  bool isMem() const { return K == Kind::Mem; }
  bool isImm() const { return K == Kind::Imm; }

  bool operator==(const Operand &O) const = default;
};

struct Instr {
  uint64_t Addr = 0;  ///< Address this instruction was fetched from.
  uint8_t Length = 0; ///< Encoded length in bytes.
  Mnemonic Mn = Mnemonic::Invalid;
  Cond CC = Cond::O;  ///< For Jcc / Setcc / Cmovcc.
  uint8_t OpSize = 8; ///< Effective operand size (for cdqe/cqo and friends).
  Operand Ops[3];

  unsigned numOperands() const {
    unsigned N = 0;
    while (N < 3 && !Ops[N].isNone())
      ++N;
    return N;
  }

  uint64_t nextAddr() const { return Addr + Length; }

  bool isValid() const { return Mn != Mnemonic::Invalid; }

  /// Control-flow classification used by Algorithm 1.
  bool isCall() const { return Mn == Mnemonic::Call; }
  bool isRet() const { return Mn == Mnemonic::Ret; }
  bool isJump() const { return Mn == Mnemonic::Jmp; }
  bool isCondJump() const { return Mn == Mnemonic::Jcc; }
  bool isTerminator() const {
    return isCall() || isRet() || isJump() || isCondJump() ||
           Mn == Mnemonic::Ud2 || Mn == Mnemonic::Hlt || Mn == Mnemonic::Int3;
  }

  /// Intel-syntax rendering, e.g. "mov qword ptr [rsp+0x8], rax".
  std::string str() const;
};

std::string memOperandStr(const MemOperand &M);
std::string operandStr(const Operand &O);

} // namespace hglift::x86

#endif // HGLIFT_X86_INSTR_H
