//===- Reg.h - x86-64 register model ---------------------------*- C++ -*-===//

#ifndef HGLIFT_X86_REG_H
#define HGLIFT_X86_REG_H

#include <cstdint>
#include <string>

namespace hglift::x86 {

/// The sixteen 64-bit general-purpose registers, in hardware encoding
/// order, plus RIP. Sub-registers (eax, ax, al, ah) are a full register
/// plus an access size / high-byte flag on the operand.
enum class Reg : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
  RIP = 16,
  None = 17,
};

constexpr unsigned NumGPRs = 16;

inline unsigned regNum(Reg R) { return static_cast<unsigned>(R); }
inline Reg regFromNum(unsigned N) { return static_cast<Reg>(N & 15); }

/// Name of R when accessed with the given size in bytes (8/4/2/1) and
/// high-byte flag ("rax", "eax", "ax", "al", "ah").
std::string regName(Reg R, unsigned SizeBytes = 8, bool HighByte = false);

/// 64-bit System V AMD64 ABI callee-saved (non-volatile) registers:
/// rbx, rbp, r12, r13, r14, r15 (rsp handled separately).
bool isCalleeSaved(Reg R);

/// Argument registers in ABI order: rdi, rsi, rdx, rcx, r8, r9.
Reg argReg(unsigned Index);

/// Condition codes in hardware encoding order (the low nibble of
/// Jcc/SETcc/CMOVcc opcodes).
enum class Cond : uint8_t {
  O = 0x0,
  NO = 0x1,
  B = 0x2,  // unsigned <   (CF)
  AE = 0x3, // unsigned >=
  E = 0x4,  // ==           (ZF)
  NE = 0x5,
  BE = 0x6, // unsigned <=
  A = 0x7,  // unsigned >
  S = 0x8,
  NS = 0x9,
  P = 0xa,
  NP = 0xb,
  L = 0xc,  // signed <
  GE = 0xd, // signed >=
  LE = 0xe, // signed <=
  G = 0xf,  // signed >
};

const char *condName(Cond C);
inline Cond negateCond(Cond C) {
  return static_cast<Cond>(static_cast<uint8_t>(C) ^ 1);
}

} // namespace hglift::x86

#endif // HGLIFT_X86_REG_H
