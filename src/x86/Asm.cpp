#include "x86/Asm.h"

#include <cassert>

namespace hglift::x86 {

Asm::Label Asm::newLabel() {
  Labels.push_back(-1);
  return static_cast<Label>(Labels.size() - 1);
}

void Asm::bind(Label L) {
  assert(Labels[L] == -1 && "label bound twice");
  Labels[L] = static_cast<int64_t>(Code.size());
}

uint64_t Asm::labelAddr(Label L) const {
  assert(Labels[L] >= 0 && "label not bound");
  return Base + static_cast<uint64_t>(Labels[L]);
}

bool Asm::finalize() {
  assert(!Finalized);
  Finalized = true;
  for (const Fixup &F : Fixups) {
    if (Labels[F.L] < 0)
      return false;
    uint64_t Target = Base + static_cast<uint64_t>(Labels[F.L]);
    if (F.Kind == FixKind::Rel32) {
      int64_t Rel = static_cast<int64_t>(Target) -
                    static_cast<int64_t>(Base + F.Pos + 4);
      uint32_t V = static_cast<uint32_t>(Rel);
      for (int I = 0; I < 4; ++I)
        Code[F.Pos + I] = static_cast<uint8_t>(V >> (8 * I));
    } else {
      for (int I = 0; I < 8; ++I)
        Code[F.Pos + I] = static_cast<uint8_t>(Target >> (8 * I));
    }
  }
  return true;
}

void Asm::u32(uint32_t V) {
  for (int I = 0; I < 4; ++I)
    byte(static_cast<uint8_t>(V >> (8 * I)));
}

void Asm::u64(uint64_t V) {
  for (int I = 0; I < 8; ++I)
    byte(static_cast<uint8_t>(V >> (8 * I)));
}

void Asm::ptrTo(Label L) {
  Fixups.push_back({Code.size(), L, FixKind::Abs64});
  u64(0);
}

void Asm::opSizePrefix(unsigned Sz) {
  if (Sz == 2)
    byte(0x66);
}

namespace {
/// Whether an 8-bit access to register N requires a REX prefix to select
/// the low byte (spl/bpl/sil/dil) rather than ah/ch/dh/bh.
bool needsRexFor8(unsigned N) { return N >= 4 && N < 8; }
} // namespace

void Asm::emitRex(unsigned Sz, unsigned RegField, const MemOperand &M,
                  bool Force8Rex) {
  uint8_t R = 0x40;
  if (Sz == 8)
    R |= 8;
  if (RegField >= 8)
    R |= 4;
  if (M.Index != Reg::None && regNum(M.Index) >= 8)
    R |= 2;
  if (M.Base != Reg::None && regNum(M.Base) >= 8)
    R |= 1;
  bool Need = (R != 0x40) || (Sz == 1 && Force8Rex && needsRexFor8(RegField));
  if (Need)
    byte(R);
}

void Asm::emitRexRR(unsigned Sz, unsigned RegField, unsigned RMField,
                    bool Force8Rex) {
  uint8_t R = 0x40;
  if (Sz == 8)
    R |= 8;
  if (RegField >= 8)
    R |= 4;
  if (RMField >= 8)
    R |= 1;
  bool Need = (R != 0x40) ||
              (Sz == 1 && Force8Rex &&
               (needsRexFor8(RegField) || needsRexFor8(RMField)));
  if (Need)
    byte(R);
}

void Asm::emitModRMMem(unsigned RegField, const MemOperand &M) {
  unsigned RegBits = RegField & 7;

  if (M.RipRel) {
    byte(static_cast<uint8_t>((RegBits << 3) | 5));
    u32(static_cast<uint32_t>(M.Disp));
    return;
  }

  if (M.Base == Reg::None) {
    // Absolute [disp32] (optionally with index): SIB with base = none.
    byte(static_cast<uint8_t>((RegBits << 3) | 4)); // mod=00, rm=100
    unsigned ScaleBits = M.Scale == 8 ? 3 : M.Scale == 4 ? 2 : M.Scale == 2 ? 1 : 0;
    unsigned IdxBits = M.Index == Reg::None ? 4 : (regNum(M.Index) & 7);
    byte(static_cast<uint8_t>((ScaleBits << 6) | (IdxBits << 3) | 5));
    u32(static_cast<uint32_t>(M.Disp));
    return;
  }

  unsigned BaseNum = regNum(M.Base);
  bool NeedSIB = M.Index != Reg::None || (BaseNum & 7) == 4;
  // rbp/r13 base cannot use mod=00.
  unsigned Mod;
  if (M.Disp == 0 && (BaseNum & 7) != 5)
    Mod = 0;
  else if (M.Disp >= -128 && M.Disp <= 127)
    Mod = 1;
  else
    Mod = 2;

  if (!NeedSIB) {
    byte(static_cast<uint8_t>((Mod << 6) | (RegBits << 3) | (BaseNum & 7)));
  } else {
    byte(static_cast<uint8_t>((Mod << 6) | (RegBits << 3) | 4));
    unsigned ScaleBits = M.Scale == 8 ? 3 : M.Scale == 4 ? 2 : M.Scale == 2 ? 1 : 0;
    unsigned IdxBits = M.Index == Reg::None ? 4 : (regNum(M.Index) & 7);
    byte(static_cast<uint8_t>((ScaleBits << 6) | (IdxBits << 3) |
                              (BaseNum & 7)));
  }
  if (Mod == 1)
    byte(static_cast<uint8_t>(static_cast<int8_t>(M.Disp)));
  else if (Mod == 2)
    u32(static_cast<uint32_t>(M.Disp));
}

void Asm::emitModRMReg(unsigned RegField, unsigned RMField) {
  byte(static_cast<uint8_t>(0xc0 | ((RegField & 7) << 3) | (RMField & 7)));
}

uint8_t Asm::group1Ext(Mnemonic Mn) const {
  switch (Mn) {
  case Mnemonic::Add:
    return 0;
  case Mnemonic::Or:
    return 1;
  case Mnemonic::Adc:
    return 2;
  case Mnemonic::Sbb:
    return 3;
  case Mnemonic::And:
    return 4;
  case Mnemonic::Sub:
    return 5;
  case Mnemonic::Xor:
    return 6;
  case Mnemonic::Cmp:
    return 7;
  default:
    assert(false && "not a group-1 mnemonic");
    return 0;
  }
}

// --- moves ----------------------------------------------------------------

void Asm::movRR(Reg Dst, Reg Src, unsigned Sz) {
  opSizePrefix(Sz);
  emitRexRR(Sz, regNum(Src), regNum(Dst), true);
  byte(Sz == 1 ? 0x88 : 0x89);
  emitModRMReg(regNum(Src), regNum(Dst));
}

void Asm::movRI(Reg Dst, int64_t Imm, unsigned Sz) {
  unsigned N = regNum(Dst);
  if (Sz == 8) {
    if (Imm >= INT32_MIN && Imm <= INT32_MAX) {
      emitRexRR(8, 0, N, false);
      byte(0xc7);
      emitModRMReg(0, N);
      u32(static_cast<uint32_t>(static_cast<int32_t>(Imm)));
    } else {
      byte(static_cast<uint8_t>(0x48 | (N >= 8 ? 1 : 0)));
      byte(static_cast<uint8_t>(0xb8 | (N & 7)));
      u64(static_cast<uint64_t>(Imm));
    }
    return;
  }
  opSizePrefix(Sz);
  if (Sz == 1) {
    emitRexRR(1, 0, N, true);
    byte(static_cast<uint8_t>(0xb0 | (N & 7)));
    byte(static_cast<uint8_t>(Imm));
    return;
  }
  emitRexRR(Sz, 0, N, false);
  byte(static_cast<uint8_t>(0xb8 | (N & 7)));
  if (Sz == 2) {
    byte(static_cast<uint8_t>(Imm));
    byte(static_cast<uint8_t>(Imm >> 8));
  } else {
    u32(static_cast<uint32_t>(Imm));
  }
}

void Asm::movRM(Reg Dst, const MemOperand &M, unsigned Sz) {
  opSizePrefix(Sz);
  emitRex(Sz, regNum(Dst), M, true);
  byte(Sz == 1 ? 0x8a : 0x8b);
  emitModRMMem(regNum(Dst), M);
}

void Asm::movMR(const MemOperand &M, Reg Src, unsigned Sz) {
  opSizePrefix(Sz);
  emitRex(Sz, regNum(Src), M, true);
  byte(Sz == 1 ? 0x88 : 0x89);
  emitModRMMem(regNum(Src), M);
}

void Asm::movMI(const MemOperand &M, int32_t Imm, unsigned Sz) {
  opSizePrefix(Sz);
  emitRex(Sz, 0, M, false);
  byte(Sz == 1 ? 0xc6 : 0xc7);
  emitModRMMem(0, M);
  if (Sz == 1)
    byte(static_cast<uint8_t>(Imm));
  else if (Sz == 2) {
    byte(static_cast<uint8_t>(Imm));
    byte(static_cast<uint8_t>(Imm >> 8));
  } else
    u32(static_cast<uint32_t>(Imm));
}

void Asm::movzxRM(Reg Dst, const MemOperand &M, unsigned SrcSz,
                  unsigned DstSz) {
  assert(SrcSz == 1 || SrcSz == 2);
  opSizePrefix(DstSz);
  emitRex(DstSz, regNum(Dst), M, false);
  byte(0x0f);
  byte(SrcSz == 1 ? 0xb6 : 0xb7);
  emitModRMMem(regNum(Dst), M);
}

void Asm::movzxRR(Reg Dst, Reg Src, unsigned SrcSz, unsigned DstSz) {
  assert(SrcSz == 1 || SrcSz == 2);
  opSizePrefix(DstSz);
  // The byte-sized operand is the r/m field, so emitRexRR's Sz==1 gate
  // does not apply: force a REX prefix for spl/bpl/sil/dil explicitly.
  uint8_t R = 0x40;
  if (DstSz == 8)
    R |= 8;
  if (regNum(Dst) >= 8)
    R |= 4;
  if (regNum(Src) >= 8)
    R |= 1;
  if (R != 0x40 || (SrcSz == 1 && needsRexFor8(regNum(Src))))
    byte(R);
  byte(0x0f);
  byte(SrcSz == 1 ? 0xb6 : 0xb7);
  emitModRMReg(regNum(Dst), regNum(Src));
}

void Asm::movsxRM(Reg Dst, const MemOperand &M, unsigned SrcSz,
                  unsigned DstSz) {
  assert(SrcSz == 1 || SrcSz == 2);
  opSizePrefix(DstSz);
  emitRex(DstSz, regNum(Dst), M, false);
  byte(0x0f);
  byte(SrcSz == 1 ? 0xbe : 0xbf);
  emitModRMMem(regNum(Dst), M);
}

void Asm::movsxdRR(Reg Dst, Reg Src) {
  emitRexRR(8, regNum(Dst), regNum(Src), false);
  byte(0x63);
  emitModRMReg(regNum(Dst), regNum(Src));
}

void Asm::movsxdRM(Reg Dst, const MemOperand &M) {
  emitRex(8, regNum(Dst), M, false);
  byte(0x63);
  emitModRMMem(regNum(Dst), M);
}

void Asm::leaRM(Reg Dst, const MemOperand &M, unsigned Sz) {
  opSizePrefix(Sz);
  emitRex(Sz, regNum(Dst), M, false);
  byte(0x8d);
  emitModRMMem(regNum(Dst), M);
}

void Asm::leaRL(Reg Dst, Label L) {
  MemOperand M;
  M.RipRel = true;
  emitRex(8, regNum(Dst), M, false);
  byte(0x8d);
  unsigned RegBits = regNum(Dst) & 7;
  byte(static_cast<uint8_t>((RegBits << 3) | 5));
  Fixups.push_back({Code.size(), L, FixKind::Rel32});
  u32(0);
}

void Asm::cmovRR(Cond CC, Reg Dst, Reg Src, unsigned Sz) {
  opSizePrefix(Sz);
  emitRexRR(Sz, regNum(Dst), regNum(Src), false);
  byte(0x0f);
  byte(static_cast<uint8_t>(0x40 | static_cast<uint8_t>(CC)));
  emitModRMReg(regNum(Dst), regNum(Src));
}

void Asm::setccR(Cond CC, Reg Dst) {
  emitRexRR(1, 0, regNum(Dst), true);
  byte(0x0f);
  byte(static_cast<uint8_t>(0x90 | static_cast<uint8_t>(CC)));
  emitModRMReg(0, regNum(Dst));
}

void Asm::xchgRR(Reg A, Reg B, unsigned Sz) {
  opSizePrefix(Sz);
  emitRexRR(Sz, regNum(B), regNum(A), true);
  byte(Sz == 1 ? 0x86 : 0x87);
  emitModRMReg(regNum(B), regNum(A));
}

// --- arithmetic -------------------------------------------------------------

void Asm::arithRR(Mnemonic Mn, Reg Dst, Reg Src, unsigned Sz) {
  uint8_t Basis = static_cast<uint8_t>(group1Ext(Mn) << 3);
  opSizePrefix(Sz);
  emitRexRR(Sz, regNum(Src), regNum(Dst), true);
  byte(static_cast<uint8_t>(Basis | (Sz == 1 ? 0x00 : 0x01)));
  emitModRMReg(regNum(Src), regNum(Dst));
}

void Asm::arithRI(Mnemonic Mn, Reg Dst, int32_t Imm, unsigned Sz) {
  uint8_t Ext = group1Ext(Mn);
  opSizePrefix(Sz);
  emitRexRR(Sz, 0, regNum(Dst), true);
  if (Sz == 1) {
    byte(0x80);
    emitModRMReg(Ext, regNum(Dst));
    byte(static_cast<uint8_t>(Imm));
    return;
  }
  if (Imm >= -128 && Imm <= 127) {
    byte(0x83);
    emitModRMReg(Ext, regNum(Dst));
    byte(static_cast<uint8_t>(static_cast<int8_t>(Imm)));
    return;
  }
  byte(0x81);
  emitModRMReg(Ext, regNum(Dst));
  if (Sz == 2) {
    byte(static_cast<uint8_t>(Imm));
    byte(static_cast<uint8_t>(Imm >> 8));
  } else
    u32(static_cast<uint32_t>(Imm));
}

void Asm::arithRM(Mnemonic Mn, Reg Dst, const MemOperand &M, unsigned Sz) {
  uint8_t Basis = static_cast<uint8_t>(group1Ext(Mn) << 3);
  opSizePrefix(Sz);
  emitRex(Sz, regNum(Dst), M, true);
  byte(static_cast<uint8_t>(Basis | (Sz == 1 ? 0x02 : 0x03)));
  emitModRMMem(regNum(Dst), M);
}

void Asm::arithMR(Mnemonic Mn, const MemOperand &M, Reg Src, unsigned Sz) {
  uint8_t Basis = static_cast<uint8_t>(group1Ext(Mn) << 3);
  opSizePrefix(Sz);
  emitRex(Sz, regNum(Src), M, true);
  byte(static_cast<uint8_t>(Basis | (Sz == 1 ? 0x00 : 0x01)));
  emitModRMMem(regNum(Src), M);
}

void Asm::arithMI(Mnemonic Mn, const MemOperand &M, int32_t Imm,
                  unsigned Sz) {
  uint8_t Ext = group1Ext(Mn);
  opSizePrefix(Sz);
  emitRex(Sz, 0, M, false);
  if (Sz == 1) {
    byte(0x80);
    emitModRMMem(Ext, M);
    byte(static_cast<uint8_t>(Imm));
    return;
  }
  if (Imm >= -128 && Imm <= 127) {
    byte(0x83);
    emitModRMMem(Ext, M);
    byte(static_cast<uint8_t>(static_cast<int8_t>(Imm)));
    return;
  }
  byte(0x81);
  emitModRMMem(Ext, M);
  if (Sz == 2) {
    byte(static_cast<uint8_t>(Imm));
    byte(static_cast<uint8_t>(Imm >> 8));
  } else
    u32(static_cast<uint32_t>(Imm));
}

void Asm::testRR(Reg A, Reg B, unsigned Sz) {
  opSizePrefix(Sz);
  emitRexRR(Sz, regNum(B), regNum(A), true);
  byte(Sz == 1 ? 0x84 : 0x85);
  emitModRMReg(regNum(B), regNum(A));
}

void Asm::shiftRI(Mnemonic Mn, Reg Dst, uint8_t Count, unsigned Sz) {
  uint8_t Ext = Mn == Mnemonic::Shl ? 4 : Mn == Mnemonic::Shr ? 5 : 7;
  opSizePrefix(Sz);
  emitRexRR(Sz, 0, regNum(Dst), true);
  byte(Sz == 1 ? 0xc0 : 0xc1);
  emitModRMReg(Ext, regNum(Dst));
  byte(Count);
}

void Asm::shiftRCL(Mnemonic Mn, Reg Dst, unsigned Sz) {
  uint8_t Ext = Mn == Mnemonic::Shl ? 4 : Mn == Mnemonic::Shr ? 5 : 7;
  opSizePrefix(Sz);
  emitRexRR(Sz, 0, regNum(Dst), true);
  byte(Sz == 1 ? 0xd2 : 0xd3);
  emitModRMReg(Ext, regNum(Dst));
}

void Asm::rotRI(Mnemonic Mn, Reg Dst, uint8_t Count, unsigned Sz) {
  uint8_t Ext = Mn == Mnemonic::Rol ? 0 : 1;
  opSizePrefix(Sz);
  emitRexRR(Sz, 0, regNum(Dst), true);
  byte(Sz == 1 ? 0xc0 : 0xc1);
  emitModRMReg(Ext, regNum(Dst));
  byte(Count);
}

void Asm::bswapR(Reg R, unsigned Sz) {
  emitRexRR(Sz, 0, regNum(R), false);
  byte(0x0f);
  byte(static_cast<uint8_t>(0xc8 | (regNum(R) & 7)));
}

void Asm::bsfRR(Reg Dst, Reg Src, unsigned Sz) {
  opSizePrefix(Sz);
  emitRexRR(Sz, regNum(Dst), regNum(Src), false);
  byte(0x0f);
  byte(0xbc);
  emitModRMReg(regNum(Dst), regNum(Src));
}

void Asm::bsrRR(Reg Dst, Reg Src, unsigned Sz) {
  opSizePrefix(Sz);
  emitRexRR(Sz, regNum(Dst), regNum(Src), false);
  byte(0x0f);
  byte(0xbd);
  emitModRMReg(regNum(Dst), regNum(Src));
}

void Asm::imulRR(Reg Dst, Reg Src, unsigned Sz) {
  opSizePrefix(Sz);
  emitRexRR(Sz, regNum(Dst), regNum(Src), false);
  byte(0x0f);
  byte(0xaf);
  emitModRMReg(regNum(Dst), regNum(Src));
}

void Asm::imulRRI(Reg Dst, Reg Src, int32_t Imm, unsigned Sz) {
  opSizePrefix(Sz);
  emitRexRR(Sz, regNum(Dst), regNum(Src), false);
  if (Imm >= -128 && Imm <= 127) {
    byte(0x6b);
    emitModRMReg(regNum(Dst), regNum(Src));
    byte(static_cast<uint8_t>(static_cast<int8_t>(Imm)));
  } else {
    byte(0x69);
    emitModRMReg(regNum(Dst), regNum(Src));
    if (Sz == 2) {
      byte(static_cast<uint8_t>(Imm));
      byte(static_cast<uint8_t>(Imm >> 8));
    } else
      u32(static_cast<uint32_t>(Imm));
  }
}

void Asm::negR(Reg R, unsigned Sz) {
  opSizePrefix(Sz);
  emitRexRR(Sz, 0, regNum(R), true);
  byte(Sz == 1 ? 0xf6 : 0xf7);
  emitModRMReg(3, regNum(R));
}

void Asm::notR(Reg R, unsigned Sz) {
  opSizePrefix(Sz);
  emitRexRR(Sz, 0, regNum(R), true);
  byte(Sz == 1 ? 0xf6 : 0xf7);
  emitModRMReg(2, regNum(R));
}

void Asm::incR(Reg R, unsigned Sz) {
  opSizePrefix(Sz);
  emitRexRR(Sz, 0, regNum(R), true);
  byte(Sz == 1 ? 0xfe : 0xff);
  emitModRMReg(0, regNum(R));
}

void Asm::decR(Reg R, unsigned Sz) {
  opSizePrefix(Sz);
  emitRexRR(Sz, 0, regNum(R), true);
  byte(Sz == 1 ? 0xfe : 0xff);
  emitModRMReg(1, regNum(R));
}

void Asm::divR(Reg R, unsigned Sz) {
  opSizePrefix(Sz);
  emitRexRR(Sz, 0, regNum(R), true);
  byte(Sz == 1 ? 0xf6 : 0xf7);
  emitModRMReg(6, regNum(R));
}

void Asm::cdqe() {
  byte(0x48);
  byte(0x98);
}

void Asm::cqo() {
  byte(0x48);
  byte(0x99);
}

// --- stack ------------------------------------------------------------------

void Asm::pushR(Reg R) {
  unsigned N = regNum(R);
  if (N >= 8)
    byte(0x41);
  byte(static_cast<uint8_t>(0x50 | (N & 7)));
}

void Asm::popR(Reg R) {
  unsigned N = regNum(R);
  if (N >= 8)
    byte(0x41);
  byte(static_cast<uint8_t>(0x58 | (N & 7)));
}

void Asm::leave() { byte(0xc9); }

// --- control flow -----------------------------------------------------------

void Asm::jmpL(Label L) {
  byte(0xe9);
  Fixups.push_back({Code.size(), L, FixKind::Rel32});
  u32(0);
}

void Asm::jccL(Cond CC, Label L) {
  byte(0x0f);
  byte(static_cast<uint8_t>(0x80 | static_cast<uint8_t>(CC)));
  Fixups.push_back({Code.size(), L, FixKind::Rel32});
  u32(0);
}

void Asm::jmpM(const MemOperand &M) {
  emitRex(4, 4, M, false); // no REX.W needed; default 64-bit
  byte(0xff);
  emitModRMMem(4, M);
}

void Asm::jmpR(Reg R) {
  if (regNum(R) >= 8)
    byte(0x41);
  byte(0xff);
  emitModRMReg(4, regNum(R));
}

void Asm::callL(Label L) {
  byte(0xe8);
  Fixups.push_back({Code.size(), L, FixKind::Rel32});
  u32(0);
}

void Asm::callAbs(uint64_t Target) {
  byte(0xe8);
  int64_t Rel = static_cast<int64_t>(Target) -
                static_cast<int64_t>(currentAddr() + 4);
  u32(static_cast<uint32_t>(static_cast<int32_t>(Rel)));
}

void Asm::callR(Reg R) {
  if (regNum(R) >= 8)
    byte(0x41);
  byte(0xff);
  emitModRMReg(2, regNum(R));
}

void Asm::callM(const MemOperand &M) {
  emitRex(4, 2, M, false);
  byte(0xff);
  emitModRMMem(2, M);
}

void Asm::ret() { byte(0xc3); }

void Asm::nop(unsigned Len) {
  for (unsigned I = 0; I < Len; ++I)
    byte(0x90);
}

void Asm::endbr64() { bytes({0xf3, 0x0f, 0x1e, 0xfa}); }
void Asm::ud2() { bytes({0x0f, 0x0b}); }
void Asm::int3() { byte(0xcc); }
void Asm::hlt() { byte(0xf4); }
void Asm::syscall() { bytes({0x0f, 0x05}); }

} // namespace hglift::x86
