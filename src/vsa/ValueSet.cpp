//===- ValueSet.cpp - Binary-level value-set analysis ---------------------===//

#include "vsa/ValueSet.h"

#include <algorithm>

namespace hglift::vsa {

using expr::Expr;
using expr::LinearForm;
using expr::Opcode;

namespace {

/// Inclusive unsigned upper bound on a table index under P. The legacy
/// queries (direct unsigned clauses, one look-through-zext) run first so
/// programs resolvable today keep the exact same bound; the linear-form
/// interval (and-mask / shift structural bounds) is Extended-only and
/// marks the resolution as needing a provenance obligation.
std::optional<uint64_t> indexBound(const pred::Pred &P, const Expr *Index,
                                   bool Extended, bool &UsedExtended) {
  std::optional<uint64_t> Bound = P.unsignedUpperBound(Index);
  if (!Bound && Index->isOp() && Index->opcode() == Opcode::ZExt)
    Bound = P.unsignedUpperBound(Index->operand(0));
  if (Extended) {
    auto IV = P.intervalOfForm(expr::linearize(Index));
    // A widened-then-protected guard leaves its interval on the 32-bit
    // sub-register expression under the zext (the cmp compares the
    // sub-register). Zero-extension preserves unsigned values, so a
    // non-negative inner interval bounds the index more tightly than the
    // zext's structural width — which the legacy fallback may already have
    // returned as Bound, so the refinement applies whenever it is strictly
    // tighter, not only when the legacy queries found nothing.
    for (const Expr *X = Index; X->isOp() && X->opcode() == Opcode::ZExt;) {
      X = X->operand(0);
      auto II = P.intervalOf(X);
      if (!II.isEmpty() && !II.isTop() && II.lo() >= 0)
        IV = IV.meet(II);
    }
    if (!IV.isEmpty() && !IV.isTop() && IV.lo() >= 0 &&
        (!Bound || static_cast<uint64_t>(IV.hi()) < *Bound)) {
      Bound = static_cast<uint64_t>(IV.hi());
      UsedExtended = true;
    }
  }
  return Bound;
}

/// Scan `Bound + 1` entries of a table at Base with the given stride,
/// mapping each raw entry to a target via `ToTarget` (identity for
/// absolute tables, base+displacement for offset tables). Every entry must
/// lie in read-only memory and map to an executable address.
bool scanTable(const elf::BinaryImage &Img, uint64_t Base, uint64_t Stride,
               unsigned EntrySize, uint64_t Bound, const VsaConfig &Cfg,
               uint64_t (*ToTarget)(uint64_t Entry, uint64_t Ctx),
               uint64_t ToTargetCtx, std::vector<uint64_t> &Targets) {
  for (uint64_t I = 0; I <= Bound; ++I) {
    uint64_t EntryAddr = Base + I * Stride;
    if (!Img.isReadOnly(EntryAddr, EntrySize))
      return false;
    auto E = Img.read(EntryAddr, EntrySize);
    if (!E)
      return false;
    uint64_t T = ToTarget(*E, ToTargetCtx);
    if (!Img.isExec(T))
      return false;
    if (std::find(Targets.begin(), Targets.end(), T) == Targets.end()) {
      // The legacy resolver has no target cap (the entry cap bounds it);
      // keep that exact behavior when Extended is off.
      if (Cfg.Extended && Targets.size() >= Cfg.MaxTargets)
        return false;
      Targets.push_back(T);
    }
  }
  return !Targets.empty();
}

/// The expression to protect across widening when a table index lost its
/// bound: a 32-bit cmp guard's range clause lives on the sub-register
/// expression, which indexBound reaches by looking through the zext — so
/// that inner atom, not the zext wrapper, is what Pred::join must keep an
/// interval for.
const Expr *protectAtom(const Expr *Index) {
  if (Index->isOp() && Index->opcode() == Opcode::ZExt)
    return Index->operand(0);
  return Index;
}

uint64_t identityEntry(uint64_t Entry, uint64_t) { return Entry; }

uint64_t signedDisp(uint64_t Entry, uint64_t Base) {
  return Base + static_cast<uint64_t>(
                    static_cast<int64_t>(static_cast<int32_t>(Entry)));
}

uint64_t unsignedDisp(uint64_t Entry, uint64_t Base) { return Base + Entry; }

} // namespace

Resolution resolveValueSet(const elf::BinaryImage &Img, const pred::Pred &P,
                           const Expr *Val, const VsaConfig &Cfg) {
  Resolution R;

  // --- absolute table: (zext of) a read from base + stride*index with a
  // bounded index, where the table lives in read-only memory. This is the
  // legacy resolver shape, byte-exact when Cfg.Extended is off.
  const Expr *D = Val;
  if (D->isOp() && D->opcode() == Opcode::ZExt)
    D = D->operand(0);
  if (D->isDeref()) {
    unsigned EntrySize = D->derefSize();
    LinearForm LF = expr::linearize(D->derefAddr());
    if ((EntrySize == 4 || EntrySize == 8) && LF.Terms.size() == 1 &&
        LF.Terms[0].first > 0) {
      uint64_t Stride = static_cast<uint64_t>(LF.Terms[0].first);
      const Expr *Index = LF.Terms[0].second;
      uint64_t Base = static_cast<uint64_t>(LF.Constant);

      std::optional<uint64_t> Bound =
          indexBound(P, Index, Cfg.Extended, R.UsedExtended);
      bool Usable = Bound && *Bound + 1 <= Cfg.MaxJumpTableEntries;
      if (!Usable)
        // Table-shaped but unbounded — including a structural bound past
        // the entry cap (e.g. the bare zext width once a guard clause was
        // widened away): the one failure a protected-interval restart can
        // repair. (A failed scan cannot: reads past the table stay
        // unreadable however the index is bounded.)
        R.Index = protectAtom(Index);
      if (Usable) {
        std::vector<uint64_t> Targets;
        if (scanTable(Img, Base, Stride, EntrySize, *Bound, Cfg,
                      identityEntry, 0, Targets)) {
          R.K = Resolution::Kind::Table;
          R.Targets = std::move(Targets);
          R.TableAddr = Base;
          R.EntrySize = EntrySize;
          R.Stride = Stride;
          R.Bound = *Bound;
          return R;
        }
      }
      R.UsedExtended = false; // nothing resolved, nothing to annotate
      return R;
    }
  }

  // --- offset table (Extended only): base + {s,z}ext32([tbl + idx*4]),
  // the -fPIC relative-jump-table idiom. The linear form of the whole
  // value is base (constant) plus a unit-coefficient extended 32-bit read.
  if (Cfg.Extended) {
    LinearForm VF = expr::linearize(Val);
    if (VF.Terms.size() == 1 && VF.Terms[0].first == 1 && VF.Constant != 0) {
      const Expr *A = VF.Terms[0].second;
      if (A->isOp() &&
          (A->opcode() == Opcode::SExt || A->opcode() == Opcode::ZExt) &&
          A->operand(0)->isDeref() && A->operand(0)->derefSize() == 4) {
        bool Signed = A->opcode() == Opcode::SExt;
        const Expr *Dv = A->operand(0);
        uint64_t Base = static_cast<uint64_t>(VF.Constant);
        LinearForm TF = expr::linearize(Dv->derefAddr());
        if (TF.Terms.size() == 1 && TF.Terms[0].first > 0) {
          uint64_t Stride = static_cast<uint64_t>(TF.Terms[0].first);
          const Expr *Index = TF.Terms[0].second;
          uint64_t TblBase = static_cast<uint64_t>(TF.Constant);

          std::optional<uint64_t> Bound =
              indexBound(P, Index, /*Extended=*/true, R.UsedExtended);
          bool Usable = Bound && *Bound + 1 <= Cfg.MaxJumpTableEntries;
          if (!Usable)
            R.Index = protectAtom(Index);
          if (Usable) {
            std::vector<uint64_t> Targets;
            if (scanTable(Img, TblBase, Stride, 4, *Bound, Cfg,
                          Signed ? signedDisp : unsignedDisp, Base,
                          Targets)) {
              R.K = Resolution::Kind::OffsetTable;
              R.Targets = std::move(Targets);
              R.TableAddr = TblBase;
              R.EntrySize = 4;
              R.Stride = Stride;
              R.Bound = *Bound;
              R.UsedExtended = true; // offset tables are extended-only
              return R;
            }
          }
          R.UsedExtended = false;
          return R;
        }
      }
    }
  }

  return R;
}

} // namespace hglift::vsa
