//===- ValueSet.h - Binary-level value-set analysis -------------*- C++ -*-===//
//
// Resolves indirect control transfers by computing the concrete value set of
// the target expression under the current vertex invariant P. The analysis
// recognizes the jump-table idioms gcc/clang (and the corpus generator)
// emit and reads the table through the read-only image:
//
//   absolute table:  jmp/call [table + idx*stride]      (stride 4 or 8)
//   offset table:    lea base; movsxd off,[tbl+idx*4]; jmp base+off
//
// The index bound comes from `Pred` interval queries only — the same
// strided-interval clauses Algorithm 1 already tracks — so a resolution is
// a pure function of (invariant, image). That purity is the validate-
// don't-trust contract: the Step-2 checker re-runs the identical
// resolution from the re-checked invariant, and every resolved edge must
// be re-derived and covered. A wrong resolution can therefore only fail
// checking (degrading to today's unsoundness annotation), never introduce
// a silently missing edge. See docs/VSA.md.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_VSA_VALUESET_H
#define HGLIFT_VSA_VALUESET_H

#include "elf/Binary.h"
#include "expr/ExprContext.h"
#include "pred/Pred.h"

#include <cstdint>
#include <vector>

namespace hglift::vsa {

struct VsaConfig {
  /// Extended resolution: linear-form interval bounds (masked indices),
  /// offset tables, and indirect-call tables. When false the analysis is
  /// exactly the legacy absolute-table resolver.
  bool Extended = true;
  /// Cap on distinct concrete targets a single site may resolve to.
  unsigned MaxTargets = 64;
  /// Cap on table entries scanned (index bound + 1 must not exceed this).
  unsigned MaxJumpTableEntries = 1024;
};

/// Result of resolving one target expression.
struct Resolution {
  enum class Kind : uint8_t {
    None,        ///< not resolved (Index non-null => table-shaped, unbounded)
    Table,       ///< absolute table of code pointers
    OffsetTable, ///< base + sign/zero-extended 32-bit displacement table
  };
  Kind K = Kind::None;
  std::vector<uint64_t> Targets; ///< deduplicated, discovery order
  uint64_t TableAddr = 0;        ///< first entry address (provenance)
  unsigned EntrySize = 0;        ///< bytes per entry (4 or 8)
  uint64_t Stride = 0;           ///< byte distance between entries
  uint64_t Bound = 0;            ///< inclusive index upper bound
  /// The index expression of a recognized table shape. Set even when
  /// K == None if the shape matched but the index had no usable bound —
  /// the lifter uses this to protect the index across widening and retry.
  const expr::Expr *Index = nullptr;
  /// True when the resolution needed Extended machinery (linear-form
  /// bounds, offset table, call-through-table). Drives provenance
  /// obligations: legacy-resolvable sites stay byte-identical in reports.
  bool UsedExtended = false;

  bool resolved() const { return K != Kind::None; }
};

/// Resolve the value set of `Val` (a 64-bit rip candidate) under invariant
/// `P`, reading tables through the read-only segments of `Img`. Pure:
/// depends only on the arguments, so Step-1 and Step-2 agree by
/// construction.
Resolution resolveValueSet(const elf::BinaryImage &Img, const pred::Pred &P,
                           const expr::Expr *Val, const VsaConfig &Cfg);

} // namespace hglift::vsa

#endif // HGLIFT_VSA_VALUESET_H
