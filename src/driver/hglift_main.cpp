//===- hglift_main.cpp - The hglift command-line tool --------------------===//
//
// Usage:
//   hglift <binary.elf> [options]        lift (and optionally check) a binary
//   hglift lift <binary.elf> [options]   same, explicit subcommand
//   hglift --lift <binary.elf> [options] same, historical spelling
//   hglift check <binary.elf> [options]  lift and always run the Step-2
//                                        checker (equivalent to --check)
//   hglift explain <report.json> [--function F] [--addr A]
//                                        render root-cause narratives from a
//                                        --report-json file
//
// Lifting options:
//     --library            lift every exported function symbol instead of
//                          the entry point (shared-object mode, §5.1)
//     --check              run the Step-2 Hoare-triple checker
//     --cache-dir DIR      content-addressed artifact store: cached
//                          functions skip Step 1 and are re-proven through
//                          the Step-2 checker instead of being trusted
//     --cache-max-mb N     byte budget for the store (MiB); exceeding it
//                          evicts least-recently-used entries (0 = no
//                          limit, the default)
//     --no-cache-validate  trust cache hits without Step-2 re-validation
//                          (faster, but forfeits the soundness story;
//                          see docs/CLI.md)
//     --export-isabelle F  write the Isabelle/HOL theory to F
//     --export-dot F       write the Hoare Graphs as Graphviz dot to F
//     --dump-hg            print the full Hoare Graph
//     --no-join            ablation: disable state joining
//     --destroy-always     ablation: no alias/separation branching
//     --no-hotpath-cache   ablation: disable the relation-query cache and
//                          the leq memo
//     --lifo-worklist      ablation: historical LIFO exploration order
//                          instead of the address-ordered worklist
//     --no-solver-portfolio ablation: single-tier relation solving (fresh
//                          Z3 solver per residual query) instead of the
//                          tiered portfolio (smt/RelationSolver.h)
//     --no-vsa             ablation: disable the value-set analysis for
//                          indirect jumps/calls (docs/VSA.md); unresolved
//                          sites keep the legacy unsoundness annotations
//     --vsa-max-targets N  cap on distinct targets one VSA-resolved site
//                          may fan out to (default 64)
//     --max-seconds N      per-function wall budget (default 60)
//     --threads N          worker threads for lifting and the Step-2 check
//                          (0 = hardware, default 1); results are identical
//                          for every value
//     --stats-json F       write lifting statistics (per-function vertices,
//                          joins, solver calls, cache hit/miss counts, leq
//                          memo counts, wall time) as JSON to F
//     --report-json F      write the machine-readable verification report
//                          (structured diagnostics with provenance; bytes
//                          identical for every --threads value and for
//                          warm vs cold --cache-dir runs) to F
//     --trace F            stream structured trace events (lift spans,
//                          fixpoint iterations, solver calls, Step-2 edge
//                          checks) as JSON Lines to F
//     --witness-dir DIR    incorrectness witnesses (docs/WITNESSES.md):
//                          search every VerificationError and unsoundness
//                          annotation for a concrete counterexample state,
//                          write confirmed witnesses to DIR as replayable
//                          fuzz_repro_witness_* sidecars, and add the
//                          `witnesses` section to --report-json
//     --witness-budget N   candidate initial states per diagnostic site
//                          for the witness search (default 64)
//     --mutant NAME        plant the named fuzz-registry semantics mutant
//                          during lifting (and during --check when its
//                          scope is Both); regression fixture for the
//                          witness pipeline — see docs/WITNESSES.md
//
// Sharded corpus lifting (see docs/SHARDING.md):
//   hglift shard <bin1.elf> <bin2.elf> ... --cache-dir DIR [--shards N|auto]
//               [--no-work-stealing] [--steal-granularity binary|function]
//               [--progress] [--check] [--library] [--no-solver-portfolio]
//               [--cache-max-mb N] [--no-cache-validate] [--max-seconds N]
//               [--report-json FILE] [--stats-json FILE]
//   (--shard-worker-fds G,R is the internal worker mode the parent spawns:
//   the worker claims units over the grant/request pipes. The merged
//   report is byte-identical to a --shards 1 serial run under any worker
//   count and steal order.)
//
// Persistent lifting service (see docs/SERVE.md):
//   hglift serve --socket PATH [--tcp-port N] [--threads N] [--max-queue N]
//               [--memo-max N] [--retry-after-ms N] [--cache-dir DIR]
//               [--cache-max-mb N] [--no-cache-validate] [--max-seconds N]
//               [--max-insns N]
//   (daemon: JSONL lift/check/explain/metrics/shutdown requests over the
//   socket, warm per-worker artifact stores, bounded-queue admission
//   control, SIGTERM drain. --client submits one request and streams the
//   response; the report payload is byte-identical to --report-json.)
//
// Fuzzing (see docs/FUZZING.md):
//   hglift fuzz [--seed S] [--runs N] [--max-insns K] [--mutate-semantics]
//               [--mutants a,b] [--fuzz-json FILE] [--repro-dir DIR]
//               [--reduce-mutant NAME] [--replay FILE] [--budget-seconds N]
//               [--oracle-runs N]
//   (--replay dispatches on the sidecar's "kind" field: campaign
//   reproducers and incorrectness witnesses replay through the same flag.)
//
// Exit codes follow one table for every subcommand (driver/ExitCode.h):
// 0 = claim holds, 1 = analysis rejected the input, 2 = bad invocation,
// 3 = artifact not writable. All JSON payloads are documented field by
// field in docs/CLI.md.
//
//===----------------------------------------------------------------------===//

#include "api/Hglift.h"
#include "diag/Trace.h"
#include "serve/Serve.h"
#include "shard/Shard.h"
#include "driver/Explain.h"
#include "driver/ExitCode.h"
#include "elf/ElfReader.h"
#include "export/DotExport.h"
#include "export/IsabelleExport.h"
#include "fuzz/Campaign.h"
#include "fuzz/Mutants.h"
#include "support/Format.h"
#include "witness/Witness.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

using namespace hglift;
using driver::ExitCode;
using driver::toExit;

namespace {

void printUsage(std::ostream &OS) {
  OS << "usage: hglift [lift] <binary.elf> [--library] [--check] "
        "[--cache-dir DIR] [--cache-max-mb N] [--no-cache-validate] "
        "[--export-isabelle FILE] [--export-dot FILE] [--dump-hg] "
        "[--no-join] [--destroy-always] [--no-hotpath-cache] "
        "[--lifo-worklist] [--max-seconds N] [--threads N] "
        "[--stats-json FILE] [--report-json FILE] [--trace FILE] "
        "[--witness-dir DIR] [--witness-budget N] [--no-vsa] "
        "[--vsa-max-targets N] [--mutant NAME]\n"
        "       hglift check <binary.elf> [options]   (implies --check)\n"
        "       hglift shard <bin1.elf> <bin2.elf> ... --cache-dir DIR "
        "[--shards N|auto] [--no-work-stealing] "
        "[--steal-granularity binary|function] [--progress] [--check] "
        "[--library] [--no-solver-portfolio] [--cache-max-mb N] "
        "[--no-cache-validate] [--max-seconds N] [--report-json FILE] "
        "[--stats-json FILE]\n"
        "       hglift explain <report.json> [--function F] [--addr A]\n"
        "       hglift serve --socket PATH [--tcp-port N] [--threads N] "
        "[--max-queue N] [--memo-max N] [--retry-after-ms N] "
        "[--cache-dir DIR] [--cache-max-mb N] [--no-cache-validate] "
        "[--max-seconds N] [--max-insns N]   (daemon; see docs/SERVE.md)\n"
        "       hglift serve --socket PATH --client [--op "
        "lift|check|explain|metrics|shutdown] [FILE] [--library] "
        "[--max-seconds N] [--max-insns N] [--function F] [--addr A] "
        "[--report-out FILE]\n"
        "       hglift fuzz [--seed S] [--runs N] [--max-insns K] "
        "[--mutate-semantics] [--mutants a,b] [--fuzz-json FILE] "
        "[--repro-dir DIR] [--reduce-mutant NAME] [--replay FILE] "
        "[--budget-seconds N] [--oracle-runs N]\n";
}

int fuzzMain(int argc, char **argv) {
  fuzz::FuzzOptions Opts;
  std::string Replay;
  for (int I = 2; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--seed" && I + 1 < argc)
      Opts.Seed = std::strtoull(argv[++I], nullptr, 0);
    else if (A == "--runs" && I + 1 < argc)
      Opts.Runs = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (A == "--max-insns" && I + 1 < argc)
      Opts.MaxInsns = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (A == "--mutate-semantics")
      Opts.MutateSemantics = true;
    else if (A == "--mutants" && I + 1 < argc) {
      std::string List = argv[++I];
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        if (Comma > Pos)
          Opts.MutantFilter.push_back(List.substr(Pos, Comma - Pos));
        Pos = Comma + 1;
      }
    } else if (A == "--fuzz-json" && I + 1 < argc)
      Opts.JsonPath = argv[++I];
    else if (A == "--repro-dir" && I + 1 < argc)
      Opts.ReproDir = argv[++I];
    else if (A == "--reduce-mutant" && I + 1 < argc)
      Opts.ReduceMutant = argv[++I];
    else if (A == "--budget-seconds" && I + 1 < argc)
      Opts.BudgetSeconds = std::atof(argv[++I]);
    else if (A == "--oracle-runs" && I + 1 < argc)
      Opts.OracleRuns = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (A == "--replay" && I + 1 < argc)
      Replay = argv[++I];
    else {
      std::cerr << "fuzz: unknown option: " << A << "\n";
      printUsage(std::cerr);
      return toExit(ExitCode::Usage);
    }
  }

  if (!Replay.empty())
    return witness::replayAny(Replay, std::cout);

  fuzz::CampaignResult R = fuzz::runCampaign(Opts, std::cout);
  if (!R.Error.empty()) {
    std::cerr << "fuzz: " << R.Error << "\n";
    return toExit(ExitCode::Usage);
  }
  if (!Opts.JsonPath.empty()) {
    std::ofstream Out(Opts.JsonPath);
    if (!Out) {
      std::cerr << "cannot open " << Opts.JsonPath << " for writing\n";
      return toExit(ExitCode::Io);
    }
    fuzz::writeFuzzJson(Out, Opts, R);
    std::cout << "wrote fuzz report to " << Opts.JsonPath << "\n";
  }
  return toExit(R.success() ? ExitCode::Ok : ExitCode::Fail);
}

int explainMain(int argc, char **argv) {
  driver::ExplainOptions Opts;
  for (int I = 2; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--function" && I + 1 < argc)
      Opts.FunctionFilter = argv[++I];
    else if (A == "--addr" && I + 1 < argc)
      Opts.AddrFilter = argv[++I];
    else if (Opts.ReportPath.empty() && !A.empty() && A[0] != '-')
      Opts.ReportPath = A;
    else {
      std::cerr << "explain: unknown option: " << A << "\n";
      printUsage(std::cerr);
      return toExit(ExitCode::Usage);
    }
  }
  if (Opts.ReportPath.empty()) {
    std::cerr << "explain: no report file given\n";
    printUsage(std::cerr);
    return toExit(ExitCode::Usage);
  }
  return driver::runExplain(Opts, std::cout, std::cerr);
}

/// `hglift shard`: multi-process corpus lifting (shard/Shard.h). The same
/// entry also hosts the internal worker mode — `--shard-worker-fds G,R`
/// claims work units over the grant/request pipe pair until told BYE.
int shardMain(int argc, char **argv) {
  shard::ShardOptions Opt;
  std::string WorkerFds, ReportJsonOut, StatsJsonOut;
  for (int I = 2; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--shards" && I + 1 < argc) {
      std::string V = argv[++I];
      if (V == "auto") {
        Opt.AutoShards = true;
      } else {
        Opt.Shards = static_cast<unsigned>(std::atoi(V.c_str()));
        Opt.AutoShards = false;
      }
    } else if (A == "--shard-worker-fds" && I + 1 < argc)
      WorkerFds = argv[++I];
    else if (A == "--no-work-stealing")
      Opt.WorkStealing = false;
    else if (A == "--steal-granularity" && I + 1 < argc) {
      std::string V = argv[++I];
      if (V == "binary")
        Opt.Granularity = shard::StealGranularity::Binary;
      else if (V == "function")
        Opt.Granularity = shard::StealGranularity::Function;
      else {
        std::cerr << "shard: bad --steal-granularity (binary|function): " << V
                  << "\n";
        return toExit(ExitCode::Usage);
      }
    } else if (A == "--progress")
      Opt.Progress = true;
    else if (A == "--cache-dir" && I + 1 < argc)
      Opt.CacheDir = argv[++I];
    else if (A == "--cache-max-mb" && I + 1 < argc)
      Opt.CacheMaxMB = std::strtoull(argv[++I], nullptr, 0);
    else if (A == "--no-cache-validate")
      Opt.CacheValidate = false;
    else if (A == "--check")
      Opt.Check = true;
    else if (A == "--library")
      Opt.Library = true;
    else if (A == "--no-solver-portfolio")
      Opt.Portfolio = false;
    else if (A == "--max-seconds" && I + 1 < argc)
      Opt.MaxSeconds = std::atof(argv[++I]);
    else if (A == "--report-json" && I + 1 < argc)
      ReportJsonOut = argv[++I];
    else if (A == "--stats-json" && I + 1 < argc)
      StatsJsonOut = argv[++I];
    else if (!A.empty() && A[0] != '-')
      Opt.Binaries.push_back(A);
    else {
      std::cerr << "shard: unknown option: " << A << "\n";
      printUsage(std::cerr);
      return toExit(ExitCode::Usage);
    }
  }

  if (!WorkerFds.empty()) {
    int GrantFd = -1, RequestFd = -1;
    if (std::sscanf(WorkerFds.c_str(), "%d,%d", &GrantFd, &RequestFd) != 2 ||
        GrantFd < 0 || RequestFd < 0) {
      std::cerr << "shard: bad --shard-worker-fds: " << WorkerFds << "\n";
      return toExit(ExitCode::Usage);
    }
    return shard::runWorkerLoop(Opt, GrantFd, RequestFd);
  }

  shard::ShardResult R = shard::runShards(Opt);
  if (!StatsJsonOut.empty()) {
    std::ofstream Out(StatsJsonOut, std::ios::binary);
    if (!Out) {
      std::cerr << "cannot open " << StatsJsonOut << " for writing\n";
      return toExit(ExitCode::Io);
    }
    shard::writeShardStatsJson(Out, Opt, R);
  }
  if (!R.Ok) {
    std::cerr << "shard: " << R.Error << "\n";
    return R.Exit;
  }
  std::cout << "shard: " << Opt.Binaries.size() << " binaries across "
            << R.ShardsResolved << " shard(s), " << R.WorkersSpawned
            << " worker(s) spawned, " << R.WorkersCrashed << " crashed, "
            << R.WorkersRetried << " retried, " << R.Sched.Steals
            << " stolen unit(s)\n";
  if (!ReportJsonOut.empty()) {
    std::ofstream Out(ReportJsonOut, std::ios::binary);
    if (!Out) {
      std::cerr << "cannot open " << ReportJsonOut << " for writing\n";
      return toExit(ExitCode::Io);
    }
    Out << R.MergedReport;
    std::cout << "wrote merged report to " << ReportJsonOut << "\n";
  } else {
    std::cout << R.MergedReport;
  }
  return R.Exit;
}

int liftMain(int argc, char **argv, int ArgStart, bool Check) {
  std::string Path = argv[ArgStart];
  bool DumpHG = false;
  std::string IsabelleOut, DotOut, StatsJsonOut, ReportJsonOut, TraceOut;
  const fuzz::Mutant *Mut = nullptr;
  Options Opt;
  for (int I = ArgStart + 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--library")
      Opt.Library = true;
    else if (A == "--check")
      Check = true;
    else if (A == "--dump-hg")
      DumpHG = true;
    else if (A == "--no-join")
      Opt.Lift.EnableJoin = false;
    else if (A == "--destroy-always")
      Opt.Lift.Sym.Policy = mem::UnknownPolicy::DestroyAlways;
    else if (A == "--no-hotpath-cache") {
      Opt.Lift.Solver.EnableCache = false;
      Opt.Lift.LeqMemo = false;
    } else if (A == "--lifo-worklist")
      Opt.Lift.OrderedWorklist = false;
    else if (A == "--no-solver-portfolio")
      Opt.Lift.Solver.Portfolio = false;
    else if (A == "--no-vsa")
      Opt.Vsa.Enable = false;
    else if (A == "--vsa-max-targets" && I + 1 < argc)
      Opt.Vsa.MaxTargets = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (A == "--cache-dir" && I + 1 < argc)
      Opt.Cache.Dir = argv[++I];
    else if (A == "--cache-max-mb" && I + 1 < argc)
      Opt.Cache.MaxMB = std::strtoull(argv[++I], nullptr, 0);
    else if (A == "--no-cache-validate")
      Opt.Cache.Validate = false;
    else if (A == "--export-isabelle" && I + 1 < argc)
      IsabelleOut = argv[++I];
    else if (A == "--export-dot" && I + 1 < argc)
      DotOut = argv[++I];
    else if (A == "--max-seconds" && I + 1 < argc)
      Opt.Lift.MaxSeconds = std::atof(argv[++I]);
    else if (A == "--threads" && I + 1 < argc)
      Opt.Lift.Threads = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (A == "--stats-json" && I + 1 < argc)
      StatsJsonOut = argv[++I];
    else if (A == "--report-json" && I + 1 < argc)
      ReportJsonOut = argv[++I];
    else if (A == "--trace" && I + 1 < argc)
      TraceOut = argv[++I];
    else if (A == "--witness-dir" && I + 1 < argc)
      Opt.Witness.Dir = argv[++I];
    else if (A == "--witness-budget" && I + 1 < argc)
      Opt.Witness.Budget = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (A == "--mutant" && I + 1 < argc) {
      Mut = fuzz::findMutant(argv[++I]);
      if (!Mut) {
        std::cerr << "unknown mutant: " << argv[I] << "\n";
        return toExit(ExitCode::Usage);
      }
    } else {
      std::cerr << "unknown option: " << A << "\n";
      return toExit(ExitCode::Usage);
    }
  }

  // The tracer must outlive lifting AND checking; installing it before the
  // session is created also captures arena setup. Scope ends before the
  // report/export writers run (their output is not traced).
  std::unique_ptr<std::ofstream> TraceFile;
  std::unique_ptr<diag::Tracer> Tracer;
  std::unique_ptr<diag::TracerScope> TracerInstall;
  if (!TraceOut.empty()) {
    TraceFile = std::make_unique<std::ofstream>(TraceOut);
    if (!*TraceFile) {
      std::cerr << "cannot open " << TraceOut << " for writing\n";
      return toExit(ExitCode::Io);
    }
    Tracer = std::make_unique<diag::Tracer>(*TraceFile, Path);
    TracerInstall = std::make_unique<diag::TracerScope>(*Tracer);
  }

  auto Img = elf::readElfFile(Path);
  if (!Img) {
    std::cerr << "error: cannot parse ELF file " << Path << "\n";
    return toExit(ExitCode::Fail);
  }

  Session S(*Img, Opt);
  if (Mut) {
    // Plant the deliberately-wrong semantics during lifting (and during
    // the Step-2 check too when the mutant corrupts both layers), then
    // restore clean semantics: the witness search and the oracle are the
    // judges and must run the true machine.
    fuzz::MutantInstall MI(*Mut);
    S.lift();
    if (Mut->Scope == fuzz::MutantScope::Both && Check)
      S.check();
  }
  const hg::BinaryResult &R = S.lift();
  S.printReport(std::cout, DumpHG);
  if (std::optional<store::CacheStats> CS = S.cacheStats())
    std::cout << "cache: " << CS->Hits << " hits, " << CS->Misses
              << " misses, " << CS->Stored << " stored, " << CS->Validated
              << " revalidated, " << CS->Evictions << " evicted\n";

  if (!StatsJsonOut.empty()) {
    std::ofstream Out(StatsJsonOut);
    if (!Out) {
      std::cerr << "cannot open " << StatsJsonOut << " for writing\n";
      return toExit(ExitCode::Io);
    }
    S.writeStatsJson(Out);
    std::cout << "wrote lifting stats to " << StatsJsonOut << "\n";
  }

  if (Check) {
    const exporter::CheckResult &C = S.check();
    std::cout << "step 2: " << C.Proven << "/" << C.Theorems
              << " Hoare triples proven\n";
    for (const std::string &F : C.Failures)
      std::cout << "  FAILED: " << F << "\n";
  }

  if (!Opt.Witness.Dir.empty()) {
    std::ifstream ElfIn(Path, std::ios::binary);
    std::vector<uint8_t> ElfBytes(std::istreambuf_iterator<char>(ElfIn), {});
    const diag::WitnessSummary &W = witness::attachWitnesses(
        S, ElfBytes.empty() ? nullptr : &ElfBytes);
    std::cout << "witnesses: " << W.Confirmed << " confirmed, "
              << W.Unconfirmed << " unconfirmed of " << W.Searched
              << " site(s) (budget " << W.Budget << ")\n";
    for (const diag::WitnessRecord &Rec : W.Records)
      if (!Rec.SidecarJson.empty())
        std::cout << "  witness " << hexStr(Rec.Function) << "/"
                  << hexStr(Rec.Addr) << " -> " << Opt.Witness.Dir << "/"
                  << Rec.SidecarJson
                  << (Rec.Replayed ? " (replayed)" : "") << "\n";
  }

  if (!ReportJsonOut.empty()) {
    std::ofstream Out(ReportJsonOut);
    if (!Out) {
      std::cerr << "cannot open " << ReportJsonOut << " for writing\n";
      return toExit(ExitCode::Io);
    }
    S.writeReportJson(Out);
    std::cout << "wrote verification report to " << ReportJsonOut << "\n";
  }

  // Flush the trace before the exporters (they are untraced anyway) so a
  // crash in them still leaves a complete, well-formed trace file.
  TracerInstall.reset();
  Tracer.reset();
  TraceFile.reset();

  if (!IsabelleOut.empty()) {
    exporter::IsabelleOptions Opts;
    Opts.TheoryName = R.Name.empty() ? "lifted_binary" : R.Name;
    size_t Lemmas = 0;
    std::string Thy =
        exporter::exportBinary(S.scratchContext(), R, Opts, &Lemmas);
    std::ofstream Out(IsabelleOut);
    Out << Thy;
    std::cout << "wrote " << Lemmas << " Hoare-triple lemmas to "
              << IsabelleOut << "\n";
  }

  if (!DotOut.empty()) {
    std::ofstream Out(DotOut);
    Out << exporter::exportDotBinary(S.scratchContext(), R);
    std::cout << "wrote Graphviz graph to " << DotOut << "\n";
  }

  if (Check && !S.check().allProven())
    return toExit(ExitCode::Fail);
  return toExit(R.Outcome == hg::LiftOutcome::Lifted ? ExitCode::Ok
                                                     : ExitCode::Fail);
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    printUsage(std::cerr);
    return toExit(ExitCode::Usage);
  }

  std::string First = argv[1];
  if (First == "explain")
    return explainMain(argc, argv);
  if (First == "fuzz")
    return fuzzMain(argc, argv);
  if (First == "shard")
    return shardMain(argc, argv);
  if (First == "serve") {
    serve::ServeOptions SO;
    if (!serve::parseServeArgs(argc, argv, SO, std::cerr)) {
      printUsage(std::cerr);
      return toExit(ExitCode::Usage);
    }
    return SO.Client ? serve::runServeClient(SO, std::cout, std::cerr)
                     : serve::runServe(SO, std::cout, std::cerr);
  }
  if (First == "lift" || First == "check" || First == "--lift") {
    if (argc < 3) {
      printUsage(std::cerr);
      return toExit(ExitCode::Usage);
    }
    return liftMain(argc, argv, 2, /*Check=*/First == "check");
  }
  return liftMain(argc, argv, 1, /*Check=*/false);
}
