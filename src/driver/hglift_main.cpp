//===- hglift_main.cpp - The hglift command-line tool --------------------===//
//
// Usage:
//   hglift <binary.elf> [options]
//     --library            lift every exported function symbol instead of
//                          the entry point (shared-object mode, §5.1)
//     --check              run the Step-2 Hoare-triple checker
//     --export-isabelle F  write the Isabelle/HOL theory to F
//     --export-dot F       write the Hoare Graphs as Graphviz dot to F
//     --dump-hg            print the full Hoare Graph
//     --no-join            ablation: disable state joining
//     --destroy-always     ablation: no alias/separation branching
//     --no-hotpath-cache   ablation: disable the relation-query cache and
//                          the leq memo
//     --lifo-worklist      ablation: historical LIFO exploration order
//                          instead of the address-ordered worklist
//     --max-seconds N      per-function wall budget (default 60)
//     --threads N          worker threads for lifting and the Step-2 check
//                          (0 = hardware, default 1); results are identical
//                          for every value
//     --stats-json F       write lifting statistics (per-function vertices,
//                          joins, solver calls, cache hit/miss counts, leq
//                          memo counts, wall time) as JSON to F
//
//===----------------------------------------------------------------------===//

#include "driver/Report.h"
#include "elf/ElfReader.h"
#include "export/HoareChecker.h"
#include "export/DotExport.h"
#include "export/IsabelleExport.h"

#include <cstring>
#include <fstream>
#include <iostream>

using namespace hglift;

int main(int argc, char **argv) {
  if (argc < 2) {
    std::cerr << "usage: hglift <binary.elf> [--library] [--check] "
                 "[--export-isabelle FILE] [--dump-hg] [--no-join] "
                 "[--destroy-always] [--no-hotpath-cache] [--lifo-worklist] "
                 "[--max-seconds N] [--threads N] [--stats-json FILE]\n";
    return 2;
  }

  std::string Path = argv[1];
  bool Library = false, Check = false, DumpHG = false;
  std::string IsabelleOut, DotOut, StatsJsonOut;
  hg::LiftConfig Cfg;
  for (int I = 2; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--library")
      Library = true;
    else if (A == "--check")
      Check = true;
    else if (A == "--dump-hg")
      DumpHG = true;
    else if (A == "--no-join")
      Cfg.EnableJoin = false;
    else if (A == "--destroy-always")
      Cfg.Sym.Policy = mem::UnknownPolicy::DestroyAlways;
    else if (A == "--no-hotpath-cache") {
      Cfg.Solver.EnableCache = false;
      Cfg.LeqMemo = false;
    } else if (A == "--lifo-worklist")
      Cfg.OrderedWorklist = false;
    else if (A == "--export-isabelle" && I + 1 < argc)
      IsabelleOut = argv[++I];
    else if (A == "--export-dot" && I + 1 < argc)
      DotOut = argv[++I];
    else if (A == "--max-seconds" && I + 1 < argc)
      Cfg.MaxSeconds = std::atof(argv[++I]);
    else if (A == "--threads" && I + 1 < argc)
      Cfg.Threads = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (A == "--stats-json" && I + 1 < argc)
      StatsJsonOut = argv[++I];
    else {
      std::cerr << "unknown option: " << A << "\n";
      return 2;
    }
  }

  auto Img = elf::readElfFile(Path);
  if (!Img) {
    std::cerr << "error: cannot parse ELF file " << Path << "\n";
    return 1;
  }

  hg::Lifter L(*Img, Cfg);
  hg::BinaryResult R = Library ? L.liftLibrary() : L.liftBinary();
  driver::printBinaryReport(std::cout, R, L.exprContext(), DumpHG);

  if (!StatsJsonOut.empty()) {
    std::ofstream Out(StatsJsonOut);
    if (!Out) {
      std::cerr << "cannot open " << StatsJsonOut << " for writing\n";
      return 2;
    }
    driver::writeStatsJson(Out, R);
    std::cout << "wrote lifting stats to " << StatsJsonOut << "\n";
  }

  if (Check) {
    exporter::CheckResult C = exporter::checkBinary(L, R, Cfg.Threads);
    std::cout << "step 2: " << C.Proven << "/" << C.Theorems
              << " Hoare triples proven\n";
    for (const std::string &F : C.Failures)
      std::cout << "  FAILED: " << F << "\n";
    if (!C.allProven())
      return 1;
  }

  if (!IsabelleOut.empty()) {
    exporter::IsabelleOptions Opts;
    Opts.TheoryName = R.Name.empty() ? "lifted_binary" : R.Name;
    size_t Lemmas = 0;
    std::string Thy = exporter::exportBinary(L.exprContext(), R, Opts, &Lemmas);
    std::ofstream Out(IsabelleOut);
    Out << Thy;
    std::cout << "wrote " << Lemmas << " Hoare-triple lemmas to "
              << IsabelleOut << "\n";
  }

  if (!DotOut.empty()) {
    std::ofstream Out(DotOut);
    Out << exporter::exportDotBinary(L.exprContext(), R);
    std::cout << "wrote Graphviz graph to " << DotOut << "\n";
  }

  return R.Outcome == hg::LiftOutcome::Lifted ? 0 : 1;
}
