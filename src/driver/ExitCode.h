//===- ExitCode.h - One exit-code convention for every subcommand -*- C++ -*-===//
//
// Every hglift subcommand (lift, check, explain, fuzz) maps its outcomes
// onto this table — scripts can branch on the code without parsing output.
// Documented in docs/CLI.md; pinned by tests/cli_test.cpp.
//
//   Ok    0  the analysis ran and its claim holds: binary lifted (and,
//            when checking, every Hoare triple proven); explain rendered;
//            fuzz campaign PASS
//   Fail  1  the analysis ran and rejected its input: lift outcome not
//            "lifted", a Step-2 proof failure, a fuzz oracle violation,
//            or an input file that is not a parseable ELF
//   Usage 2  the invocation was malformed: unknown flag or subcommand,
//            missing argument, a file that is not a JSON report (explain),
//            an unknown mutant name (fuzz)
//   Io    3  the analysis succeeded but a requested artifact could not be
//            written (--stats-json / --report-json / --trace / --fuzz-json
//            destination not openable)
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_DRIVER_EXITCODE_H
#define HGLIFT_DRIVER_EXITCODE_H

namespace hglift::driver {

enum class ExitCode : int {
  Ok = 0,
  Fail = 1,
  Usage = 2,
  Io = 3,
};

inline int toExit(ExitCode C) { return static_cast<int>(C); }

} // namespace hglift::driver

#endif // HGLIFT_DRIVER_EXITCODE_H
