#include "driver/Report.h"

#include "support/Format.h"

namespace hglift::driver {

using hg::BinaryResult;
using hg::Edge;
using hg::FunctionResult;

void printHoareGraph(std::ostream &OS, const FunctionResult &F,
                     const expr::ExprContext &Ctx) {
  OS << "function " << hexStr(F.Entry) << " ("
     << hg::liftOutcomeName(F.Outcome) << "), " << F.Graph.numStates()
     << " states, " << F.Graph.Edges.size() << " edges\n";
  for (const auto &[Key, V] : F.Graph.Vertices) {
    OS << "  [" << hexStr(Key.Rip) << "] ";
    if (V.Instr.isValid())
      OS << V.Instr.str();
    OS << "\n";
    std::string P = V.State.P.str(Ctx);
    if (!P.empty())
      OS << "      P: " << P << "\n";
    std::string M = V.State.M.str(Ctx);
    if (!M.empty()) {
      // Indent the forest dump.
      OS << "      M: ";
      for (char C : M) {
        OS << C;
        if (C == '\n')
          OS << "         ";
      }
      OS << "\n";
    }
  }
  for (const Edge &E : F.Graph.Edges) {
    OS << "  " << hexStr(E.From.Rip) << " -> ";
    if (E.To.Rip == hg::RetTargetRip)
      OS << "RET";
    else if (E.To.Rip == hg::UnresolvedTargetRip)
      OS << "UNRESOLVED";
    else
      OS << hexStr(E.To.Rip);
    OS << "   (" << E.Instr.str() << ")\n";
  }
}

void printBinaryReport(std::ostream &OS, const BinaryResult &R,
                       const expr::ExprContext &Ctx, bool Verbose) {
  OS << "binary: " << R.Name << "\n";
  OS << "outcome: " << hg::liftOutcomeName(R.Outcome);
  if (!R.FailReason.empty())
    OS << "  (" << R.FailReason << ")";
  OS << "\n";
  OS << "functions: " << R.Functions.size()
     << "  instructions: " << R.totalInstructions()
     << "  symbolic states: " << R.totalStates() << "\n";
  OS << "resolved indirections (A): " << R.totalA()
     << "  unresolved jumps (B): " << R.totalB()
     << "  unresolved calls (C): " << R.totalC() << "\n";

  size_t Weird = 0;
  for (const FunctionResult &F : R.Functions)
    Weird += F.Graph.weirdEdges().size();
  if (Weird)
    OS << "WEIRD edges (overlapping instructions): " << Weird << "\n";

  auto Obls = R.allObligations();
  if (!Obls.empty()) {
    OS << "proof obligations / assumptions (" << Obls.size() << "):\n";
    for (const std::string &O : Obls)
      OS << "  " << O << "\n";
  }

  if (Verbose)
    for (const FunctionResult &F : R.Functions)
      printHoareGraph(OS, F, Ctx);
}

} // namespace hglift::driver
