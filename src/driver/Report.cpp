#include "driver/Report.h"

#include "diag/Json.h"
#include "support/Format.h"

#include <cstdio>

namespace hglift::driver {

using hg::BinaryResult;
using hg::Edge;
using hg::FunctionResult;
using hglift::LiftStats;

void printHoareGraph(std::ostream &OS, const FunctionResult &F,
                     const expr::ExprContext &FallbackCtx) {
  const expr::ExprContext &Ctx = F.ctxOr(FallbackCtx);
  OS << "function " << hexStr(F.Entry) << " ("
     << hg::liftOutcomeName(F.Outcome) << "), " << F.Graph.numStates()
     << " states, " << F.Graph.Edges.size() << " edges\n";
  for (const auto &[Key, V] : F.Graph.Vertices) {
    OS << "  [" << hexStr(Key.Rip) << "] ";
    if (V.Instr.isValid())
      OS << V.Instr.str();
    OS << "\n";
    std::string P = V.State.P.str(Ctx);
    if (!P.empty())
      OS << "      P: " << P << "\n";
    std::string M = V.State.M.str(Ctx);
    if (!M.empty()) {
      // Indent the forest dump.
      OS << "      M: ";
      for (char C : M) {
        OS << C;
        if (C == '\n')
          OS << "         ";
      }
      OS << "\n";
    }
  }
  for (const Edge &E : F.Graph.Edges) {
    OS << "  " << hexStr(E.From.Rip) << " -> ";
    if (E.To.Rip == hg::RetTargetRip)
      OS << "RET";
    else if (E.To.Rip == hg::UnresolvedTargetRip)
      OS << "UNRESOLVED";
    else
      OS << hexStr(E.To.Rip);
    OS << "   (" << E.Instr.str() << ")\n";
  }
}

void printBinaryReport(std::ostream &OS, const BinaryResult &R,
                       const expr::ExprContext &Ctx, bool Verbose) {
  OS << "binary: " << R.Name << "\n";
  OS << "outcome: " << hg::liftOutcomeName(R.Outcome);
  if (!R.FailReason.empty())
    OS << "  (" << R.FailReason << ")";
  OS << "\n";
  OS << "functions: " << R.Functions.size()
     << "  instructions: " << R.totalInstructions()
     << "  symbolic states: " << R.totalStates() << "\n";
  OS << "resolved indirections (A): " << R.totalA()
     << "  unresolved jumps (B): " << R.totalB()
     << "  unresolved calls (C): " << R.totalC() << "\n";
  OS << "lift stats: vertices " << R.Total.Vertices << "  joins "
     << R.Total.Joins << "  widenings " << R.Total.Widenings << "  steps "
     << R.Total.Steps << "  forks " << R.Total.Forks << "  solver queries "
     << R.Total.SolverQueries << "  z3 queries " << R.Total.Z3Queries
     << "\n";

  size_t Weird = 0;
  for (const FunctionResult &F : R.Functions)
    Weird += F.Graph.weirdEdges().size();
  if (Weird)
    OS << "WEIRD edges (overlapping instructions): " << Weird << "\n";

  auto Obls = R.allObligations();
  if (!Obls.empty()) {
    OS << "proof obligations / assumptions (" << Obls.size() << "):\n";
    for (const std::string &O : Obls)
      OS << "  " << O << "\n";
  }

  if (Verbose)
    for (const FunctionResult &F : R.Functions)
      printHoareGraph(OS, F, Ctx);
}

namespace {

using diag::jsonEscape;

std::string jsonNum(double D) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", D);
  return Buf;
}

void writeStatsFields(std::ostream &OS, const LiftStats &S) {
  OS << "\"vertices\": " << S.Vertices << ", \"joins\": " << S.Joins
     << ", \"widenings\": " << S.Widenings << ", \"steps\": " << S.Steps
     << ", \"forks\": " << S.Forks
     << ", \"solver_queries\": " << S.SolverQueries
     << ", \"z3_queries\": " << S.Z3Queries
     << ", \"solver_tier0_hits\": " << S.SolverTier0Hits
     << ", \"solver_tier1_hits\": " << S.SolverTier1Hits
     << ", \"solver_class_hits\": " << S.SolverClassHits
     << ", \"solver_tier2_hits\": " << S.SolverTier2Hits
     << ", \"solver_tier2_skipped\": " << S.SolverTier2Skipped
     << ", \"solver_fallthroughs\": " << S.SolverFallthroughs
     << ", \"solver_seconds\": " << jsonNum(S.SolverSeconds)
     << ", \"rel_cache_hits\": " << S.RelCacheHits
     << ", \"rel_cache_misses\": " << S.RelCacheMisses
     << ", \"rel_cache_invalidated\": " << S.RelCacheInvalidated
     << ", \"rel_cache_evicted\": " << S.RelCacheEvicted
     << ", \"leq_hits\": " << S.LeqHits
     << ", \"leq_misses\": " << S.LeqMisses
     << ", \"vsa_queries\": " << S.VsaQueries
     << ", \"vsa_resolved\": " << S.VsaResolved
     << ", \"vsa_targets\": " << S.VsaTargets
     << ", \"vsa_restarts\": " << S.VsaRestarts
     << ", \"seconds\": " << jsonNum(S.Seconds);
}

/// One structured diagnostic as a report-JSON object. Provenance worker
/// ordinals are deliberately omitted: they depend on scheduling, and the
/// report must be byte-identical for every thread count (they do appear in
/// the trace, which is schedule-dependent anyway).
void writeDiagJson(std::ostream &OS, const diag::Diagnostic &D,
                   const char *Indent) {
  OS << Indent << "{\"kind\": \"" << diag::diagKindName(D.Kind)
     << "\", \"message\": \"" << jsonEscape(D.Message) << "\",\n"
     << Indent << " \"provenance\": {\"origin\": \""
     << diag::componentName(D.Prov.Origin) << "\", \"function\": \""
     << hexStr(D.Prov.FunctionEntry) << "\", \"addr\": \""
     << hexStr(D.Prov.Addr) << "\", \"mnemonic\": \""
     << jsonEscape(D.Prov.Mnemonic) << "\", \"clause_id\": "
     << D.Prov.ClauseId << ", \"clause\": \"" << jsonEscape(D.Prov.ClauseText)
     << "\", \"queries\": [";
  for (size_t I = 0; I < D.Prov.QueryChain.size(); ++I)
    OS << (I ? ", " : "") << "\"" << jsonEscape(D.Prov.QueryChain[I]) << "\"";
  OS << "]}}";
}

/// One witness-search record as a report-JSON object. 64-bit values are
/// hex strings (diag::JValue numbers are doubles); the claim object always
/// carries the full field set so consumers never branch on presence.
void writeWitnessRecordJson(std::ostream &OS, const diag::WitnessRecord &W,
                            const char *Indent) {
  OS << Indent << "{\"function\": \"" << hexStr(W.Function) << "\", \"addr\": \""
     << hexStr(W.Addr) << "\", \"diag_kind\": \"" << jsonEscape(W.DiagKindName)
     << "\",\n"
     << Indent << " \"verdict\": \"" << jsonEscape(W.Verdict)
     << "\", \"reason\": \"" << jsonEscape(W.Reason) << "\", \"source\": \""
     << jsonEscape(W.Source) << "\", \"candidates\": " << W.Candidates << ",\n"
     << Indent << " \"machine_seed\": \"" << hexStr(W.MachineSeed)
     << "\", \"regs\": [";
  for (size_t I = 0; I < W.Regs.size(); ++I)
    OS << (I ? ", " : "") << "\"" << hexStr(W.Regs[I]) << "\"";
  OS << "],\n"
     << Indent << " \"phase\": \"" << jsonEscape(W.Phase)
     << "\", \"next_rip\": \"" << hexStr(W.NextRip) << "\",\n"
     << Indent << " \"claim\": {\"type\": \"" << jsonEscape(W.Claim.Type)
     << "\", \"reg\": " << W.Claim.RegNum << ", \"expect\": \""
     << hexStr(W.Claim.Expect) << "\", \"mem_addr\": \""
     << hexStr(W.Claim.MemAddr) << "\", \"mem_size\": " << W.Claim.MemSize
     << ",\n"
     << Indent << "           \"range_op\": \"" << jsonEscape(W.Claim.RangeOp)
     << "\", \"range_bound\": \"" << hexStr(W.Claim.RangeBound)
     << "\", \"range_value\": \"" << hexStr(W.Claim.RangeValue)
     << "\", \"flags_pinned\": \"" << jsonEscape(W.Claim.FlagsPinned)
     << "\", \"zf\": " << (W.Claim.ExpZF ? "true" : "false")
     << ", \"sf\": " << (W.Claim.ExpSF ? "true" : "false")
     << ", \"cf\": " << (W.Claim.ExpCF ? "true" : "false")
     << ", \"of\": " << (W.Claim.ExpOF ? "true" : "false") << "},\n"
     << Indent << " \"clause\": \"" << jsonEscape(W.Clause)
     << "\", \"violation\": \"" << jsonEscape(W.Violation)
     << "\", \"trace_len\": " << W.TraceLen << ",\n"
     << Indent << " \"functions\": " << W.Functions
     << ", \"instructions\": " << W.Instructions << ", \"sidecar_elf\": \""
     << jsonEscape(W.SidecarElf) << "\", \"sidecar_json\": \""
     << jsonEscape(W.SidecarJson)
     << "\", \"replayed\": " << (W.Replayed ? "true" : "false") << "}";
}

} // namespace

void writeStatsJson(std::ostream &OS, const BinaryResult &R) {
  OS << "{\n";
  OS << "  \"binary\": \"" << jsonEscape(R.Name) << "\",\n";
  OS << "  \"outcome\": \"" << hg::liftOutcomeName(R.Outcome) << "\",\n";
  OS << "  \"seconds\": " << jsonNum(R.Seconds) << ",\n";
  OS << "  \"totals\": {";
  writeStatsFields(OS, R.Total);
  OS << "},\n";
  OS << "  \"functions\": [\n";
  for (size_t I = 0; I < R.Functions.size(); ++I) {
    const FunctionResult &F = R.Functions[I];
    OS << "    {\"entry\": \"" << hexStr(F.Entry) << "\", \"outcome\": \""
       << hg::liftOutcomeName(F.Outcome) << "\", \"instructions\": "
       << F.numInstructions() << ", \"states\": " << F.Graph.numStates()
       << ", \"resolved_indirections\": " << F.ResolvedIndirections
       << ", \"unresolved_jumps\": " << F.UnresolvedJumps
       << ", \"unresolved_calls\": " << F.UnresolvedCalls
       << ", \"may_return\": " << (F.MayReturn ? "true" : "false") << ", ";
    writeStatsFields(OS, F.Stats);
    OS << "}" << (I + 1 < R.Functions.size() ? "," : "") << "\n";
  }
  OS << "  ]\n";
  OS << "}\n";
}

void writeReportJson(std::ostream &OS, const BinaryResult &R,
                     const exporter::CheckResult *Check,
                     const diag::WitnessSummary *Witnesses) {
  OS << "{\n";
  OS << "  \"schema_version\": " << diag::ReportSchemaVersion << ",\n";
  OS << "  \"binary\": \"" << jsonEscape(R.Name) << "\",\n";
  OS << "  \"outcome\": \"" << hg::liftOutcomeName(R.Outcome) << "\",\n";
  OS << "  \"fail_reason\": \"" << jsonEscape(R.FailReason) << "\",\n";
  OS << "  \"functions\": [\n";
  for (size_t I = 0; I < R.Functions.size(); ++I) {
    const FunctionResult &F = R.Functions[I];
    OS << "    {\"entry\": \"" << hexStr(F.Entry) << "\", \"outcome\": \""
       << hg::liftOutcomeName(F.Outcome) << "\", \"fail_reason\": \""
       << jsonEscape(F.FailReason) << "\",\n";
    OS << "     \"may_return\": " << (F.MayReturn ? "true" : "false")
       << ", \"instructions\": " << F.numInstructions()
       << ", \"states\": " << F.Graph.numStates()
       << ", \"resolved_indirections\": " << F.ResolvedIndirections
       << ", \"unresolved_jumps\": " << F.UnresolvedJumps
       << ", \"unresolved_calls\": " << F.UnresolvedCalls << ",\n";
    OS << "     \"diagnostics\": [";
    for (size_t J = 0; J < F.Diags.size(); ++J) {
      OS << (J ? ",\n" : "\n");
      writeDiagJson(OS, F.Diags[J], "      ");
    }
    OS << (F.Diags.empty() ? "" : "\n     ") << "]}"
       << (I + 1 < R.Functions.size() ? "," : "") << "\n";
  }
  OS << "  ]";
  if (Check) {
    OS << ",\n  \"check\": {\"theorems\": " << Check->Theorems
       << ", \"proven\": " << Check->Proven << ",\n   \"diagnostics\": [";
    for (size_t J = 0; J < Check->Diags.size(); ++J) {
      OS << (J ? ",\n" : "\n");
      writeDiagJson(OS, Check->Diags[J], "    ");
    }
    OS << (Check->Diags.empty() ? "" : "\n   ") << "]}";
  }
  if (Witnesses) {
    OS << ",\n  \"witnesses\": {\"witness_schema_version\": "
       << diag::WitnessSchemaVersion << ", \"budget\": " << Witnesses->Budget
       << ", \"searched\": " << Witnesses->Searched
       << ", \"confirmed\": " << Witnesses->Confirmed
       << ", \"unconfirmed\": " << Witnesses->Unconfirmed
       << ",\n   \"records\": [";
    for (size_t J = 0; J < Witnesses->Records.size(); ++J) {
      OS << (J ? ",\n" : "\n");
      writeWitnessRecordJson(OS, Witnesses->Records[J], "    ");
    }
    OS << (Witnesses->Records.empty() ? "" : "\n   ") << "]}";
  }
  OS << "\n}\n";
}

} // namespace hglift::driver
