#include "driver/Explain.h"

#include "diag/Diag.h"
#include "diag/Json.h"
#include "x86/Reg.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hglift::driver {

using diag::JValue;

namespace {

/// Parse "0x401000" / "401000h-style-free" / decimal into an address.
/// Returns false on garbage (the filter then matches nothing, loudly).
bool parseAddr(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(S.c_str(), &End, 0);
  return End && *End == '\0';
}

uint64_t hexField(const JValue &Obj, const std::string &Key) {
  uint64_t V = 0;
  parseAddr(Obj.str(Key), V);
  return V;
}

/// The witness record seeded by diagnostic D, or nullptr: records are
/// matched on the (function, addr) pair of D's provenance. Witnesses is
/// the report's `witnesses` section (null for reports written without a
/// witness search).
const JValue *witnessFor(const JValue &D, const JValue *Witnesses) {
  if (!Witnesses || !Witnesses->isObj())
    return nullptr;
  const JValue *Prov = D.get("provenance");
  if (!Prov)
    return nullptr;
  const JValue *Recs = Witnesses->get("records");
  if (!Recs || !Recs->isArr())
    return nullptr;
  for (const JValue &R : Recs->Arr)
    if (R.str("function") == Prov->str("function") &&
        R.str("addr") == Prov->str("addr") &&
        R.str("diag_kind") == D.str("kind"))
      return &R;
  return nullptr;
}

/// The "witnessed:" narrative line under a diagnostic: yes (with the
/// concrete entry register file inline), unconfirmed (with the recorded
/// reason), or no (the search ran but found no record for this site —
/// e.g. the diagnostic is a proof obligation, which gets no witness).
void renderWitness(std::ostream &OS, const JValue &D, const JValue *Witnesses) {
  if (!Witnesses || !Witnesses->isObj())
    return;
  std::string Kind = D.str("kind");
  if (Kind != "verification-error" && Kind != "unsoundness-annotation")
    return;
  const JValue *W = witnessFor(D, Witnesses);
  if (!W) {
    OS << "    witnessed: no\n";
    return;
  }
  if (W->str("verdict") != "confirmed") {
    OS << "    witnessed: unconfirmed (" << W->str("reason", "unknown")
       << ")\n";
    return;
  }
  OS << "    witnessed: yes — " << W->str("source") << " candidate, phase "
     << W->str("phase") << " after "
     << static_cast<uint64_t>(W->num("candidates")) << " state(s)";
  if (std::string SJ = W->str("sidecar_json"); !SJ.empty())
    OS << ", sidecar " << SJ
       << (W->get("replayed") && W->get("replayed")->B ? " (replayed)" : "");
  OS << "\n";
  if (const JValue *Regs = W->get("regs"); Regs && Regs->isArr()) {
    OS << "      entry registers:";
    for (size_t RI = 0; RI < Regs->Arr.size() && RI < x86::NumGPRs; ++RI)
      OS << " " << x86::regName(x86::regFromNum(static_cast<unsigned>(RI)))
         << "=" << Regs->Arr[RI].Str;
    OS << "\n";
  }
  if (std::string C = W->str("clause"); !C.empty())
    OS << "      violated clause: `" << C << "`\n";
}

/// One diagnostic, rendered as an indented narrative block.
void renderDiag(std::ostream &OS, const JValue &D) {
  const JValue *Prov = D.get("provenance");
  std::string Kind = D.str("kind", "diagnostic");
  std::string Addr = Prov ? Prov->str("addr") : std::string();
  std::string Mnem = Prov ? Prov->str("mnemonic") : std::string();
  std::string Origin = Prov ? Prov->str("origin") : std::string();

  OS << "  " << Kind;
  if (!Addr.empty() && Addr != "0x0")
    OS << " at " << Addr;
  if (!Mnem.empty())
    OS << " `" << Mnem << "`";
  if (!Origin.empty())
    OS << "  [" << Origin << "]";
  OS << "\n";
  OS << "    " << D.str("message", "(no message)") << "\n";

  if (Prov) {
    double ClauseId = Prov->num("clause_id", -1);
    std::string Clause = Prov->str("clause");
    if (ClauseId >= 0 && !Clause.empty())
      OS << "    failing clause: #" << static_cast<int>(ClauseId) << " `"
         << Clause << "`\n";
    if (const JValue *Q = Prov->get("queries"); Q && Q->isArr() &&
                                                !Q->Arr.empty()) {
      OS << "    recent relation queries (newest first):\n";
      for (const JValue &E : Q->Arr)
        OS << "      " << E.Str << "\n";
    }
  }
}

/// Does diagnostic D survive the --addr filter?
bool diagMatches(const JValue &D, bool HaveAddr, uint64_t Addr) {
  if (!HaveAddr)
    return true;
  const JValue *Prov = D.get("provenance");
  return Prov && hexField(*Prov, "addr") == Addr;
}

} // namespace

int runExplain(const ExplainOptions &Opts, std::ostream &OS,
               std::ostream &ES) {
  std::ifstream In(Opts.ReportPath);
  if (!In) {
    ES << "explain: cannot open " << Opts.ReportPath << "\n";
    return 2;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  return runExplainText(Buf.str(), Opts, OS, ES, Opts.ReportPath);
}

int runExplainText(const std::string &Text, const ExplainOptions &Opts,
                   std::ostream &OS, std::ostream &ES,
                   const std::string &SourceName) {
  std::optional<JValue> Doc = diag::parseJson(Text);
  if (!Doc || !Doc->isObj()) {
    ES << "explain: " << SourceName << " is not a JSON report\n";
    return 2;
  }
  double Schema = Doc->num("schema_version", -1);
  if (Schema != diag::ReportSchemaVersion) {
    ES << "explain: unsupported report schema version " << Schema
       << " (this build reads version " << diag::ReportSchemaVersion
       << ")\n";
    return 2;
  }

  uint64_t FnFilter = 0, AddrFilter = 0;
  bool HaveFn = parseAddr(Opts.FunctionFilter, FnFilter);
  bool HaveAddr = parseAddr(Opts.AddrFilter, AddrFilter);
  if (!Opts.FunctionFilter.empty() && !HaveFn) {
    ES << "explain: bad --function address `" << Opts.FunctionFilter
       << "`\n";
    return 2;
  }
  if (!Opts.AddrFilter.empty() && !HaveAddr) {
    ES << "explain: bad --addr address `" << Opts.AddrFilter << "`\n";
    return 2;
  }

  OS << "verification report for " << Doc->str("binary", "(unnamed)")
     << " — outcome: " << Doc->str("outcome", "?") << "\n";
  if (std::string FR = Doc->str("fail_reason"); !FR.empty())
    OS << "binary-level failure: " << FR << "\n";

  size_t Shown = 0, Total = 0;
  const JValue *Fns = Doc->get("functions");
  if (Fns && Fns->isArr())
    for (const JValue &F : Fns->Arr) {
      if (HaveFn && hexField(F, "entry") != FnFilter)
        continue;
      const JValue *Diags = F.get("diagnostics");
      size_t NDiags = Diags && Diags->isArr() ? Diags->Arr.size() : 0;
      Total += NDiags;
      std::string Outcome = F.str("outcome", "?");
      // Clean functions are noise unless explicitly selected.
      if (!HaveFn && NDiags == 0 && Outcome == "lifted")
        continue;
      OS << "\nfunction " << F.str("entry", "?") << " — " << Outcome;
      if (std::string FR = F.str("fail_reason"); !FR.empty())
        OS << " (" << FR << ")";
      OS << "\n";
      if (NDiags == 0) {
        OS << "  no diagnostics\n";
        continue;
      }
      for (const JValue &D : Diags->Arr)
        if (diagMatches(D, HaveAddr, AddrFilter)) {
          renderDiag(OS, D);
          renderWitness(OS, D, Doc->get("witnesses"));
          ++Shown;
        }
    }

  if (const JValue *Check = Doc->get("check"); Check && Check->isObj()) {
    OS << "\nstep-2 check: " << static_cast<uint64_t>(Check->num("proven"))
       << "/" << static_cast<uint64_t>(Check->num("theorems"))
       << " Hoare triples proven\n";
    if (const JValue *Diags = Check->get("diagnostics");
        Diags && Diags->isArr())
      for (const JValue &D : Diags->Arr) {
        const JValue *Prov = D.get("provenance");
        if (HaveFn && (!Prov || hexField(*Prov, "function") != FnFilter))
          continue;
        if (!diagMatches(D, HaveAddr, AddrFilter))
          continue;
        renderDiag(OS, D);
        renderWitness(OS, D, Doc->get("witnesses"));
        ++Shown;
      }
  }

  if (const JValue *Wit = Doc->get("witnesses"); Wit && Wit->isObj())
    OS << "\nwitness search: "
       << static_cast<uint64_t>(Wit->num("confirmed")) << " confirmed, "
       << static_cast<uint64_t>(Wit->num("unconfirmed"))
       << " unconfirmed of " << static_cast<uint64_t>(Wit->num("searched"))
       << " site(s), budget "
       << static_cast<uint64_t>(Wit->num("budget")) << "\n";

  if (Shown == 0)
    OS << "\nno diagnostics"
       << (HaveFn || HaveAddr ? " matched the filter" : " in the report")
       << (Total ? " (try without --function/--addr)" : "") << "\n";
  return 0;
}

} // namespace hglift::driver
