//===- Explain.h - Root-cause narratives from --report-json ----*- C++ -*-===//
//
// `hglift explain <report.json>` re-reads a machine-readable verification
// report (written by --report-json) and renders the structured diagnostics
// as root-cause narratives: which function, which instruction, which
// postcondition clause, and the relation-query chain that led there.
// It is a pure viewer — it never touches the binary.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_DRIVER_EXPLAIN_H
#define HGLIFT_DRIVER_EXPLAIN_H

#include <ostream>
#include <string>

namespace hglift::driver {

struct ExplainOptions {
  std::string ReportPath;
  /// Only explain the function with this entry address ("0x401000" or
  /// decimal). Empty = all functions.
  std::string FunctionFilter;
  /// Only explain diagnostics at this instruction address. Empty = all.
  std::string AddrFilter;
};

/// Render the report at Opts.ReportPath to OS; errors go to ES. Returns a
/// process exit code (0 = rendered, 2 = unreadable / malformed /
/// unsupported schema version).
int runExplain(const ExplainOptions &Opts, std::ostream &OS,
               std::ostream &ES);

/// Same rendering, but over an in-memory report document instead of a file
/// — the entry point `hglift serve` uses for `explain` requests, where the
/// report text arrives over the wire. SourceName is only used in error
/// messages. Opts.ReportPath is ignored.
int runExplainText(const std::string &Text, const ExplainOptions &Opts,
                   std::ostream &OS, std::ostream &ES,
                   const std::string &SourceName = "(inline report)");

} // namespace hglift::driver

#endif // HGLIFT_DRIVER_EXPLAIN_H
