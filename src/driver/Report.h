//===- Report.h - Human-readable lifting reports ---------------*- C++ -*-===//

#ifndef HGLIFT_DRIVER_REPORT_H
#define HGLIFT_DRIVER_REPORT_H

#include "export/HoareChecker.h"
#include "hg/Lifter.h"

#include <ostream>

namespace hglift::driver {

/// Print the per-binary report: outcome, statistics (the Table 1 columns),
/// lift-stats totals, annotations, obligations, weird edges.
void printBinaryReport(std::ostream &OS, const hg::BinaryResult &R,
                       const expr::ExprContext &Ctx, bool Verbose = false);

/// Print a function's Hoare Graph: vertices with invariants, edges with
/// instructions (the Figure 1 view). Ctx is only a fallback for hand-built
/// results; lifter-produced functions print in their own arena context.
void printHoareGraph(std::ostream &OS, const hg::FunctionResult &F,
                     const expr::ExprContext &Ctx);

/// Emit the lifting statistics as JSON (the --stats-json payload): binary
/// outcome, aggregate totals, and one record per function with vertices,
/// joins, widenings, steps, forks, solver/Z3 queries and wall time.
void writeStatsJson(std::ostream &OS, const hg::BinaryResult &R);

/// Emit the machine-readable verification report (the --report-json
/// payload, schema version diag::ReportSchemaVersion): outcome and
/// structured diagnostics with provenance for every function, plus the
/// Step-2 summary when Check is non-null and the `witnesses` section
/// (schema diag::WitnessSchemaVersion) when Witnesses is non-null.
/// Deliberately excludes wall times and worker ordinals so the bytes are
/// identical for every --threads value (see docs/CLI.md).
void writeReportJson(std::ostream &OS, const hg::BinaryResult &R,
                     const exporter::CheckResult *Check = nullptr,
                     const diag::WitnessSummary *Witnesses = nullptr);

} // namespace hglift::driver

#endif // HGLIFT_DRIVER_REPORT_H
