//===- Report.h - Human-readable lifting reports ---------------*- C++ -*-===//

#ifndef HGLIFT_DRIVER_REPORT_H
#define HGLIFT_DRIVER_REPORT_H

#include "hg/Lifter.h"

#include <ostream>

namespace hglift::driver {

/// Print the per-binary report: outcome, statistics (the Table 1 columns),
/// annotations, obligations, weird edges.
void printBinaryReport(std::ostream &OS, const hg::BinaryResult &R,
                       const expr::ExprContext &Ctx, bool Verbose = false);

/// Print a function's Hoare Graph: vertices with invariants, edges with
/// instructions (the Figure 1 view).
void printHoareGraph(std::ostream &OS, const hg::FunctionResult &F,
                     const expr::ExprContext &Ctx);

} // namespace hglift::driver

#endif // HGLIFT_DRIVER_REPORT_H
