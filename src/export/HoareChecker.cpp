#include "export/HoareChecker.h"

#include "support/Format.h"

namespace hglift::exporter {

using hg::Edge;
using hg::FunctionResult;
using hg::HoareGraph;
using hg::Vertex;
using hg::VertexKey;
using sem::CtrlKind;
using sem::StepOut;
using sem::Succ;
using sem::SymExec;

namespace {

/// Does some vertex at address Rip entail the post-state S, with an edge
/// From -> that address present?
bool covered(const HoareGraph &G, const VertexKey &From, uint64_t Rip,
             const sem::SymState &S) {
  bool EdgeExists = false;
  for (const Edge &E : G.Edges)
    if (E.From == From && E.To.Rip == Rip) {
      EdgeExists = true;
      break;
    }
  if (!EdgeExists)
    return false;
  for (auto It = G.Vertices.lower_bound(VertexKey{Rip, 0});
       It != G.Vertices.end() && It->first.Rip == Rip; ++It) {
    if (pred::Pred::leq(S.P, It->second.State.P) &&
        mem::MemModel::leq(S.M, It->second.State.M))
      return true;
  }
  return false;
}

bool edgeTo(const HoareGraph &G, const VertexKey &From, uint64_t SpecialRip) {
  for (const Edge &E : G.Edges)
    if (E.From == From && E.To.Rip == SpecialRip)
      return true;
  return false;
}

} // namespace

CheckResult checkFunction(hg::Lifter &L, const FunctionResult &F) {
  CheckResult R;
  if (F.Outcome != hg::LiftOutcome::Lifted)
    return R;

  // Check inside the function's own arena: every expression in F.Graph is
  // interned there, and the re-derived successors must live in the same
  // context for entailment to be meaningful. The arena's executor shares
  // the semantics but none of Algorithm 1's state. (Hand-built results
  // without an arena fall back to the lifter's scratch context.)
  SymExec Fallback(L.exprContext(), L.solver(), L.image(), L.config().Sym);
  SymExec &Exec = F.Arena ? F.Arena->exec() : Fallback;

  for (const auto &[Key, V] : F.Graph.Vertices) {
    if (!V.Explored || !V.Instr.isValid())
      continue;

    StepOut Out = Exec.step(V.State, V.Instr, F.RetSym);
    if (Out.VerifError) {
      ++R.Theorems;
      R.Failures.push_back("vertex " + hexStr(Key.Rip) +
                           ": semantics rejected: " + Out.VerifReason);
      continue;
    }

    for (const Succ &S : Out.Succs) {
      ++R.Theorems;
      bool OK = false;
      switch (S.K) {
      case CtrlKind::Fall:
      case CtrlKind::CallInternal:
      case CtrlKind::CallExternal:
      case CtrlKind::UnresCall:
        OK = covered(F.Graph, Key, S.NextAddr, S.S);
        break;
      case CtrlKind::Ret:
        OK = edgeTo(F.Graph, Key, hg::RetTargetRip);
        break;
      case CtrlKind::UnresJump:
        OK = edgeTo(F.Graph, Key, hg::UnresolvedTargetRip);
        break;
      case CtrlKind::Terminal:
        OK = true; // no proof obligation: execution stops
        break;
      }
      if (OK)
        ++R.Proven;
      else
        R.Failures.push_back(
            "vertex " + hexStr(Key.Rip) + " (" + V.Instr.str() +
            "): post-state at " + hexStr(S.NextAddr) +
            " not entailed by any target invariant");
    }
  }
  return R;
}

CheckResult checkBinary(hg::Lifter &L, const hg::BinaryResult &B) {
  CheckResult R;
  for (const FunctionResult &F : B.Functions)
    R.merge(checkFunction(L, F));
  return R;
}

} // namespace hglift::exporter
