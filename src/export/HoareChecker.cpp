#include "export/HoareChecker.h"

#include "diag/Trace.h"
#include "hg/StateMemo.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <mutex>

namespace hglift::exporter {

using hg::Edge;
using hg::FunctionResult;
using hg::HoareGraph;
using hg::Vertex;
using hg::VertexKey;
using sem::CtrlKind;
using sem::StepOut;
using sem::Succ;
using sem::SymExec;

namespace {

/// Does some vertex at address Rip entail the post-state S, with an edge
/// From -> that address present? The entailment probes go through the
/// function-local leq memo (re-derived post-states repeat whenever several
/// predecessors reach the same invariant).
bool covered(const HoareGraph &G, const VertexKey &From, uint64_t Rip,
             const sem::SymState &S, hg::StateLeqMemo &Memo) {
  bool EdgeExists = false;
  for (const Edge &E : G.Edges)
    if (E.From == From && E.To.Rip == Rip) {
      EdgeExists = true;
      break;
    }
  if (!EdgeExists)
    return false;
  for (auto It = G.Vertices.lower_bound(VertexKey{Rip, 0});
       It != G.Vertices.end() && It->first.Rip == Rip; ++It) {
    if (Memo.predLeq(S.P, It->second.State.P) &&
        Memo.memLeq(S.M, It->second.State.M))
      return true;
  }
  return false;
}

bool edgeTo(const HoareGraph &G, const VertexKey &From, uint64_t SpecialRip) {
  for (const Edge &E : G.Edges)
    if (E.From == From && E.To.Rip == SpecialRip)
      return true;
  return false;
}

/// Root-cause detail for an uncovered post-state: which part of covered()
/// failed, and — when it was entailment — the first postcondition clause
/// the first candidate invariant does not entail (Pred::leqExplain's
/// clause numbering).
struct UncoveredWhy {
  int ClauseId = -1;
  std::string Clause;
  std::string Detail;
};

UncoveredWhy explainUncovered(const HoareGraph &G, const VertexKey &From,
                              uint64_t Rip, const sem::SymState &S,
                              const expr::ExprContext &Ctx) {
  UncoveredWhy W;
  bool EdgeExists = false;
  for (const Edge &E : G.Edges)
    if (E.From == From && E.To.Rip == Rip) {
      EdgeExists = true;
      break;
    }
  if (!EdgeExists) {
    W.Detail = "no edge to " + hexStr(Rip) + " in the Hoare graph";
    return W;
  }
  auto It = G.Vertices.lower_bound(VertexKey{Rip, 0});
  if (It == G.Vertices.end() || It->first.Rip != Rip) {
    W.Detail = "no invariant vertex at " + hexStr(Rip);
    return W;
  }
  // Several invariants may exist at Rip (one per control context); explain
  // against the first candidate — enough to show what kind of clause broke.
  const sem::SymState &Target = It->second.State;
  if (auto F = pred::Pred::leqExplain(Ctx, S.P, Target.P)) {
    W.ClauseId = F->ClauseId;
    W.Clause = F->Clause;
    W.Detail = "postcondition clause #" + std::to_string(F->ClauseId) +
               " `" + F->Clause + "` not entailed (" + F->Why + ")";
    return W;
  }
  std::string MemWhy = mem::MemModel::leqExplain(Ctx, S.M, Target.M);
  W.Detail = MemWhy.empty()
                 ? std::string("a later candidate invariant at this address "
                               "rejected the post-state")
                 : "memory model not entailed: " + MemWhy;
  return W;
}

/// The per-function check body, over a caller-chosen executor and its
/// solver. Everything it touches — Exec, F's arena, the memo — is private
/// to one task, which is what licenses the parallel fan-out in
/// checkBinary().
CheckResult checkFunctionWith(SymExec &Exec, smt::RelationSolver &Solver,
                              const FunctionResult &F) {
  CheckResult R;
  hg::StateLeqMemo Memo;
  const expr::ExprContext &Ctx = Exec.exprContext();
  diag::TraceContext::FunctionScope TraceFn(F.Entry);

  if (diag::Tracer *T = diag::Tracer::active()) {
    diag::TraceEvent E("check_begin");
    E.hex("fn", F.Entry);
    E.field("vertices", static_cast<uint64_t>(F.Graph.Vertices.size()));
    T->emit(std::move(E));
  }

  // Checker failures carry the failing edge in their provenance; ClauseId
  // is filled when entailment (not edge existence) was the root cause.
  auto addFailure = [&](const VertexKey &Key, const hg::Vertex &V,
                        const std::string &Legacy, const UncoveredWhy &W) {
    R.Failures.push_back(Legacy);
    diag::Diagnostic D;
    D.Kind = diag::DiagKind::VerificationError;
    D.Message = W.Detail.empty() ? Legacy : Legacy + ": " + W.Detail;
    D.Prov.Origin = diag::Component::HoareChecker;
    D.Prov.FunctionEntry = F.Entry;
    D.Prov.Addr = Key.Rip;
    D.Prov.Mnemonic = V.Instr.str();
    D.Prov.ClauseId = W.ClauseId;
    D.Prov.ClauseText = W.Clause;
    D.Prov.QueryChain = Solver.recentQueries();
    D.Prov.Worker = diag::workerOrdinal();
    R.Diags.push_back(std::move(D));
  };

  for (const auto &[Key, V] : F.Graph.Vertices) {
    if (!V.Explored || !V.Instr.isValid())
      continue;

    StepOut Out = Exec.step(V.State, V.Instr, F.RetSym);
    if (Out.VerifError) {
      ++R.Theorems;
      addFailure(Key, V,
                 "vertex " + hexStr(Key.Rip) +
                     ": semantics rejected: " + Out.VerifReason,
                 UncoveredWhy{});
      continue;
    }

    for (const Succ &S : Out.Succs) {
      ++R.Theorems;
      bool OK = false;
      bool Entail = false; // coverage (vs. special-edge existence) theorem
      switch (S.K) {
      case CtrlKind::Fall:
      case CtrlKind::CallInternal:
      case CtrlKind::CallExternal:
      case CtrlKind::UnresCall:
        Entail = true;
        OK = covered(F.Graph, Key, S.NextAddr, S.S, Memo);
        break;
      case CtrlKind::Ret:
        OK = edgeTo(F.Graph, Key, hg::RetTargetRip);
        break;
      case CtrlKind::UnresJump:
        OK = edgeTo(F.Graph, Key, hg::UnresolvedTargetRip);
        break;
      case CtrlKind::Terminal:
        OK = true; // no proof obligation: execution stops
        break;
      }

      if (diag::Tracer *T = diag::Tracer::active()) {
        diag::TraceEvent E("edge_check");
        E.hex("fn", F.Entry);
        E.hex("from", Key.Rip);
        E.hex("to", S.K == CtrlKind::Ret          ? hg::RetTargetRip
                    : S.K == CtrlKind::UnresJump ? hg::UnresolvedTargetRip
                                                 : S.NextAddr);
        E.field("ok", OK);
        T->emit(std::move(E));
      }

      if (OK) {
        ++R.Proven;
        continue;
      }
      UncoveredWhy W;
      if (Entail)
        W = explainUncovered(F.Graph, Key, S.NextAddr, S.S, Ctx);
      else
        W.Detail = S.K == CtrlKind::Ret
                       ? "no return edge in the Hoare graph"
                       : "no unresolved-jump edge in the Hoare graph";
      addFailure(Key, V,
                 "vertex " + hexStr(Key.Rip) + " (" + V.Instr.str() +
                     "): post-state at " + hexStr(S.NextAddr) +
                     " not entailed by any target invariant",
                 W);
    }
  }

  if (diag::Tracer *T = diag::Tracer::active()) {
    diag::TraceEvent E("check_end");
    E.hex("fn", F.Entry);
    E.field("theorems", static_cast<uint64_t>(R.Theorems));
    E.field("proven", static_cast<uint64_t>(R.Proven));
    T->emit(std::move(E));
  }
  return R;
}

} // namespace

CheckResult checkFunction(const CheckContext &C, const FunctionResult &F) {
  if (F.Outcome != hg::LiftOutcome::Lifted)
    return CheckResult();

  // Check inside the function's own arena: every expression in F.Graph is
  // interned there, and the re-derived successors must live in the same
  // context for entailment to be meaningful. A task-local executor shares
  // the semantics but none of Algorithm 1's state. (Hand-built results
  // without an arena fall back to the caller-provided fallback arena —
  // their expressions live in its context.)
  if (F.Arena) {
    SymExec Exec(F.Arena->ctx(), F.Arena->solver(), C.Img, C.Sym);
    return checkFunctionWith(Exec, F.Arena->solver(), F);
  }
  if (!C.Fallback)
    return CheckResult();
  SymExec Fallback(C.Fallback->ctx(), C.Fallback->solver(), C.Img, C.Sym);
  return checkFunctionWith(Fallback, C.Fallback->solver(), F);
}

CheckResult checkBinary(const CheckContext &C, const hg::BinaryResult &B,
                        unsigned Threads) {
  unsigned NThreads =
      Threads == 0 ? ThreadPool::defaultThreads() : Threads;
  if (NThreads <= 1 || B.Functions.size() <= 1) {
    CheckResult R;
    for (const FunctionResult &F : B.Functions)
      R.merge(checkFunction(C, F));
    return R;
  }

  // One task per arena-ful function: each re-checks entirely inside that
  // function's own arena, so nothing is shared between workers. Arena-less
  // functions (hand-built in tests) would all share the fallback arena's
  // context and are kept on this thread. Per-function results land in a
  // slot vector and merge in function order, so the outcome — including
  // the order of Failures — is identical to the serial check.
  std::vector<CheckResult> Slots(B.Functions.size());
  {
    ThreadPool Pool(NThreads);
    for (size_t I = 0; I < B.Functions.size(); ++I) {
      const FunctionResult &F = B.Functions[I];
      if (!F.Arena || F.Outcome != hg::LiftOutcome::Lifted)
        continue;
      CheckResult *Slot = &Slots[I];
      Pool.submit([&C, &F, Slot] {
        SymExec Exec(F.Arena->ctx(), F.Arena->solver(), C.Img, C.Sym);
        *Slot = checkFunctionWith(Exec, F.Arena->solver(), F);
      });
    }
    Pool.waitIdle();
  }
  for (size_t I = 0; I < B.Functions.size(); ++I) {
    const FunctionResult &F = B.Functions[I];
    if (!F.Arena && F.Outcome == hg::LiftOutcome::Lifted)
      Slots[I] = checkFunction(C, B.Functions[I]);
  }

  CheckResult R;
  for (CheckResult &S : Slots)
    R.merge(S);
  return R;
}

} // namespace hglift::exporter
