//===- DotExport.h - Hoare Graphs as Graphviz dot ---------------*- C++ -*-===//
//
// Renders a function's Hoare Graph in Graphviz format (the Figure 1 view):
// one node per symbolic state, labelled with its instruction and —
// optionally — its invariant; weird edges (targets inside another
// instruction) are highlighted in red, annotated stops in orange.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_EXPORT_DOTEXPORT_H
#define HGLIFT_EXPORT_DOTEXPORT_H

#include "hg/Lifter.h"

#include <string>

namespace hglift::exporter {

struct DotOptions {
  /// Include the predicate text on each node (big graphs get unwieldy).
  bool ShowInvariants = false;
};

std::string exportDot(const expr::ExprContext &Ctx,
                      const hg::FunctionResult &F,
                      const DotOptions &Opts = DotOptions());

/// All functions of a binary in one digraph (clustered per function).
std::string exportDotBinary(const expr::ExprContext &Ctx,
                            const hg::BinaryResult &B,
                            const DotOptions &Opts = DotOptions());

} // namespace hglift::exporter

#endif // HGLIFT_EXPORT_DOTEXPORT_H
