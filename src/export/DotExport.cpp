#include "export/DotExport.h"

#include "support/Format.h"

#include <algorithm>
#include <map>

namespace hglift::exporter {

using hg::Edge;
using hg::FunctionResult;
using hg::VertexKey;

namespace {

std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\l";
      continue;
    }
    Out += C;
  }
  return Out;
}

void emitFunction(std::string &Out, const expr::ExprContext &Ctx,
                  const FunctionResult &F, const DotOptions &Opts,
                  const std::string &Prefix) {
  std::map<VertexKey, std::string> Name;
  unsigned N = 0;
  for (const auto &[Key, V] : F.Graph.Vertices)
    Name[Key] = Prefix + "n" + std::to_string(N++);

  // Weird targets for highlighting.
  std::vector<Edge> Weird = F.Graph.weirdEdges();
  auto IsWeird = [&](const Edge &E) {
    return std::find(Weird.begin(), Weird.end(), E) != Weird.end();
  };

  for (const auto &[Key, V] : F.Graph.Vertices) {
    std::string Label = hexStr(Key.Rip);
    if (V.Instr.isValid())
      Label += ": " + V.Instr.str();
    if (Opts.ShowInvariants) {
      std::string P = V.State.P.str(Ctx);
      if (!P.empty())
        Label += "\n" + P;
    }
    Out += "  " + Name[Key] + " [shape=box,label=\"" + escape(Label) +
           "\"];\n";
  }
  Out += "  " + Prefix + "ret [shape=doublecircle,label=\"" +
         escape("S_" + hexStr(F.Entry)) + "\"];\n";
  bool HasUnres = false;
  for (const Edge &E : F.Graph.Edges)
    HasUnres |= E.To.Rip == hg::UnresolvedTargetRip;
  if (HasUnres)
    Out += "  " + Prefix +
           "unres [shape=octagon,color=orange,label=\"unresolved\"];\n";

  for (const Edge &E : F.Graph.Edges) {
    std::string From =
        Name.count(E.From) ? Name[E.From] : Prefix + "missing";
    std::string To;
    if (E.To.Rip == hg::RetTargetRip)
      To = Prefix + "ret";
    else if (E.To.Rip == hg::UnresolvedTargetRip)
      To = Prefix + "unres";
    else if (Name.count(E.To))
      To = Name[E.To];
    else {
      // Joined-away target: point at any vertex with that address.
      for (const auto &[Key, V] : F.Graph.Vertices)
        if (Key.Rip == E.To.Rip) {
          To = Name[Key];
          break;
        }
      if (To.empty())
        continue;
    }
    Out += "  " + From + " -> " + To;
    if (IsWeird(E))
      Out += " [color=red,penwidth=2,label=\"weird\"]";
    else if (E.Kind == sem::CtrlKind::CallInternal) {
      // VSA-resolved call edges carry the table provenance in the label.
      std::string L = "call " + hexStr(E.CalleeAddr);
      if (E.ViaTable)
        L += " via jump-table@" + hexStr(E.ViaTable);
      Out += " [style=dashed,label=\"" + L + "\"]";
    } else if (E.Kind == sem::CtrlKind::CallExternal)
      Out += " [style=dashed,label=\"ext\"]";
    else if (E.ViaTable)
      Out += " [label=\"via jump-table@" + hexStr(E.ViaTable) + "\"]";
    Out += ";\n";
  }
}

} // namespace

std::string exportDot(const expr::ExprContext &Ctx, const FunctionResult &F,
                      const DotOptions &Opts) {
  std::string Out = "digraph hg_" + hexStr(F.Entry).substr(2) + " {\n";
  Out += "  rankdir=TB;\n  fontname=monospace;\n";
  emitFunction(Out, F.ctxOr(Ctx), F, Opts, "");
  Out += "}\n";
  return Out;
}

std::string exportDotBinary(const expr::ExprContext &Ctx,
                            const hg::BinaryResult &B,
                            const DotOptions &Opts) {
  std::string Out = "digraph hg {\n  rankdir=TB;\n  fontname=monospace;\n";
  unsigned N = 0;
  for (const FunctionResult &F : B.Functions) {
    if (F.Outcome != hg::LiftOutcome::Lifted)
      continue;
    std::string Prefix = "f" + std::to_string(N++) + "_";
    Out += "  subgraph cluster_" + Prefix + " {\n";
    Out += "    label=\"" + hexStr(F.Entry) + "\";\n";
    emitFunction(Out, F.ctxOr(Ctx), F, Opts, Prefix);
    Out += "  }\n";
  }
  Out += "}\n";
  return Out;
}

} // namespace hglift::exporter
