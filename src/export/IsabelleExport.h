//===- IsabelleExport.h - Emit Isabelle/HOL theories -----------*- C++ -*-===//
//
// Renders a lifted function's Hoare Graph as an Isabelle/HOL theory file,
// the artifact format of the paper's Step 2: one definition per vertex
// invariant, one lemma (Hoare triple) per edge, discharged by the
// `htriple` proof method of the paper's symbolic-execution proof scripts.
// The theories reference the X86_Semantics session of the original
// artifact; they are emitted for export and inspection (Isabelle itself is
// not available in this environment — see DESIGN.md §4).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_EXPORT_ISABELLEEXPORT_H
#define HGLIFT_EXPORT_ISABELLEEXPORT_H

#include "hg/Lifter.h"

#include <string>

namespace hglift::exporter {

struct IsabelleOptions {
  std::string TheoryName = "lifted_binary";
  /// Name of the proof method invoked per lemma.
  std::string ProofMethod = "htriple_solver";
};

/// Render one function's HG as a theory.
std::string exportFunction(const expr::ExprContext &Ctx,
                           const hg::FunctionResult &F,
                           const IsabelleOptions &Opts);

/// Render a whole binary (one theory; sections per function). Returns the
/// theory text and fills NumLemmas with the number of emitted Hoare-triple
/// lemmas.
std::string exportBinary(const expr::ExprContext &Ctx,
                         const hg::BinaryResult &B,
                         const IsabelleOptions &Opts,
                         size_t *NumLemmas = nullptr);

/// Translate a symbolic expression to an Isabelle/HOL term (64-bit word
/// operations from HOL-Library.Word).
std::string isabelleTerm(const expr::ExprContext &Ctx, const expr::Expr *E);

/// Render a predicate as a HOL state assertion.
std::string isabellePred(const expr::ExprContext &Ctx, const pred::Pred &P);

} // namespace hglift::exporter

#endif // HGLIFT_EXPORT_ISABELLEEXPORT_H
