//===- Summary.h - Persistable HG summaries + patch diffing ----*- C++ -*-===//
//
// §7 ("Patching"): "lifting both an original binary and its patched
// version to HGs would increase the trustworthiness of the patch effort.
// Both the HGs — but also the assumptions required for lifting the
// binaries — could be mutually compared, and this comparison may expose
// unexpected effects of the patch."
//
// HgSummary is the comparable artifact: the graph structure (instruction
// text per vertex, edges, annotations), the generated proof obligations,
// and the per-function outcome, with a stable text serialization and a
// structural diff. Invariants are captured as rendered text (they are
// re-derivable by re-lifting; the summary is for comparison and archival).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_EXPORT_SUMMARY_H
#define HGLIFT_EXPORT_SUMMARY_H

#include "hg/Lifter.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace hglift::exporter {

struct FunctionSummary {
  uint64_t Entry = 0;
  std::string Outcome;
  bool MayReturn = false;
  unsigned A = 0, B = 0, C = 0;
  /// addr -> disassembled instruction text.
  std::map<uint64_t, std::string> Instrs;
  /// "from -> to" edges; special targets render as "ret"/"unresolved".
  std::set<std::string> Edges;
  std::set<std::string> Obligations;
};

struct HgSummary {
  std::string Name;
  std::string Outcome;
  std::map<uint64_t, FunctionSummary> Functions;
};

/// Build a summary from a lifting result.
HgSummary summarize(const hg::BinaryResult &R);

/// Stable text serialization (one line per fact; diff-friendly).
std::string writeSummary(const HgSummary &S);
/// Parse writeSummary's output. nullopt on malformed input.
std::optional<HgSummary> parseSummary(const std::string &Text);

/// Structural comparison of two summaries (original vs patched).
struct SummaryDiff {
  std::vector<std::string> Lines; ///< human-readable findings
  bool identical() const { return Lines.empty(); }
};
SummaryDiff diffSummaries(const HgSummary &Old, const HgSummary &New);

} // namespace hglift::exporter

#endif // HGLIFT_EXPORT_SUMMARY_H
