//===- HoareChecker.h - Step 2: re-verify every Hoare triple ---*- C++ -*-===//
//
// The paper's Step 2 validates every inference of Step 1 in Isabelle/HOL:
// "each edge individually forms a Hoare triple, and thus the formal
// verification effort consists of proofs of thousands of mutually
// independent theorems (generally, one per disassembled instruction)".
//
// Isabelle is not available offline, so this checker is the executable
// substitute (DESIGN.md §4): for every explored vertex it re-runs the
// instruction semantics on the stored precondition — independently of
// Algorithm 1's worklist, joining and bookkeeping — and proves that each
// produced post-state is entailed by some target vertex's invariant
// (predicate entailment via Pred::leq, memory-model abstraction via
// MemModel::leq) with a corresponding edge present in the graph. What
// remains trusted is the instruction semantics and the entailment checker,
// exactly the trusted base of the paper's Isabelle step.
//
// Like the paper's "thousands of mutually independent theorems", the
// re-validation parallelizes: checkBinary() can fan functions out over a
// thread pool. Each task re-checks one function entirely inside that
// function's own LiftArena (its ExprContext, RelationSolver, and a
// task-local SymExec), so no interning table or solver cache is ever
// shared between concurrent tasks; results merge in function order, making
// the parallel check observably identical to the serial one.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_EXPORT_HOARECHECKER_H
#define HGLIFT_EXPORT_HOARECHECKER_H

#include "hg/Lifter.h"

namespace hglift::exporter {

struct CheckResult {
  size_t Theorems = 0; ///< one per (vertex, successor) proof obligation
  size_t Proven = 0;
  std::vector<std::string> Failures;
  /// One structured diagnostic per failure, with provenance: the edge, the
  /// instruction, and — when entailment failed — which postcondition
  /// clause was not entailed (ClauseId/ClauseText from Pred::leqExplain).
  /// Ordered like Failures: vertex order within a function, function order
  /// across the binary, for every thread count.
  std::vector<diag::Diagnostic> Diags;

  bool allProven() const { return Proven == Theorems; }
  void merge(const CheckResult &O) {
    Theorems += O.Theorems;
    Proven += O.Proven;
    Failures.insert(Failures.end(), O.Failures.begin(), O.Failures.end());
    Diags.insert(Diags.end(), O.Diags.begin(), O.Diags.end());
  }
};

/// Everything Step-2 needs from the outside world: the binary image the
/// instruction semantics reads (rodata for jump tables, PLT stubs) and the
/// semantics configuration. Deliberately NOT a Lifter — a cached
/// BinaryResult deserialized from the artifact store has no Lifter behind
/// it, and the checker must be able to validate it anyway.
struct CheckContext {
  const elf::BinaryImage &Img;
  sem::SymConfig Sym;
  /// Context + solver for functions without their own arena (hand-built
  /// results in tests whose expressions live in a caller-owned context).
  /// Arena-less functions are skipped when this is null.
  hg::LiftArena *Fallback = nullptr;
};

/// Re-verify every edge of one lifted function.
CheckResult checkFunction(const CheckContext &C, const hg::FunctionResult &F);

/// Re-verify every function of a lifted binary. Threads: 1 = serial in the
/// calling thread, 0 = hardware concurrency, N = N workers. Functions
/// without an arena (hand-built in tests) are always checked serially;
/// results are identical for every thread count.
CheckResult checkBinary(const CheckContext &C, const hg::BinaryResult &B,
                        unsigned Threads = 1);

} // namespace hglift::exporter

#endif // HGLIFT_EXPORT_HOARECHECKER_H
