#include "export/IsabelleExport.h"

#include "support/Format.h"

#include <map>

namespace hglift::exporter {

using expr::Expr;
using expr::ExprContext;
using expr::ExprKind;
using expr::Opcode;
using hg::Edge;
using hg::FunctionResult;
using hg::VertexKey;
using pred::MemCell;
using pred::RangeClause;
using pred::RelOp;

namespace {

std::string sanitize(std::string S) {
  for (char &C : S)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return S;
}

} // namespace

std::string isabelleTerm(const ExprContext &Ctx, const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Const: {
    return "(" + std::to_string(E->constVal()) + " :: " +
           std::to_string(E->width()) + " word)";
  }
  case ExprKind::Var:
    return sanitize(Ctx.varInfo(E->varId()).Name);
  case ExprKind::Deref:
    return "(mem_read \\<sigma>\\<^sub>0 " +
           isabelleTerm(Ctx, E->derefAddr()) + " " +
           std::to_string(E->derefSize()) + ")";
  case ExprKind::Op:
    break;
  }

  auto A = [&](unsigned I) { return isabelleTerm(Ctx, E->operand(I)); };
  auto Bin = [&](const char *Op) {
    return "(" + A(0) + " " + Op + " " + A(1) + ")";
  };
  auto Fn = [&](const char *F) {
    std::string S = "(" + std::string(F);
    for (const Expr *Op : E->operands()) {
      S += " ";
      S += isabelleTerm(Ctx, Op);
    }
    return S + ")";
  };

  switch (E->opcode()) {
  case Opcode::Add:
    return Bin("+");
  case Opcode::Sub:
    return Bin("-");
  case Opcode::Mul:
    return Bin("*");
  case Opcode::UDiv:
    return Bin("div");
  case Opcode::URem:
    return Bin("mod");
  case Opcode::SDiv:
    return Fn("sdiv");
  case Opcode::SRem:
    return Fn("smod");
  case Opcode::And:
    return Bin("AND");
  case Opcode::Or:
    return Bin("OR");
  case Opcode::Xor:
    return Bin("XOR");
  case Opcode::Shl:
    return "(push_bit (unat " + A(1) + ") " + A(0) + ")";
  case Opcode::LShr:
    return "(drop_bit (unat " + A(1) + ") " + A(0) + ")";
  case Opcode::AShr:
    return "(signed_drop_bit (unat " + A(1) + ") " + A(0) + ")";
  case Opcode::Not:
    return Fn("NOT");
  case Opcode::Neg:
    return "(- " + A(0) + ")";
  case Opcode::ZExt:
    return "(ucast " + A(0) + " :: " + std::to_string(E->width()) + " word)";
  case Opcode::SExt:
    return "(scast " + A(0) + " :: " + std::to_string(E->width()) + " word)";
  case Opcode::Trunc:
    return "(ucast " + A(0) + " :: " + std::to_string(E->width()) + " word)";
  case Opcode::Eq:
    return "(if " + A(0) + " = " + A(1) + " then 1 else 0 :: 1 word)";
  case Opcode::Ne:
    return "(if " + A(0) + " \\<noteq> " + A(1) + " then 1 else 0 :: 1 word)";
  case Opcode::ULt:
    return "(if " + A(0) + " < " + A(1) + " then 1 else 0 :: 1 word)";
  case Opcode::ULe:
    return "(if " + A(0) + " \\<le> " + A(1) + " then 1 else 0 :: 1 word)";
  case Opcode::SLt:
    return "(if " + A(0) + " <s " + A(1) + " then 1 else 0 :: 1 word)";
  case Opcode::SLe:
    return "(if " + A(0) + " \\<le>s " + A(1) + " then 1 else 0 :: 1 word)";
  case Opcode::Ite:
    return "(if " + A(0) + " = 1 then " + A(1) + " else " + A(2) + ")";
  }
  return "undefined";
}

std::string isabellePred(const ExprContext &Ctx, const pred::Pred &P) {
  if (P.isBottom())
    return "False";
  std::vector<std::string> Conjuncts;
  for (unsigned I = 0; I < x86::NumGPRs; ++I) {
    const Expr *V = P.reg64(x86::regFromNum(I));
    if (!V)
      continue;
    Conjuncts.push_back("regs \\<sigma> ''" +
                        x86::regName(x86::regFromNum(I)) +
                        "'' = " + isabelleTerm(Ctx, V));
  }
  for (const MemCell &C : P.cells())
    Conjuncts.push_back("mem_read \\<sigma> " + isabelleTerm(Ctx, C.Addr) +
                        " " + std::to_string(C.Size) + " = " +
                        isabelleTerm(Ctx, C.Val));
  for (const RangeClause &C : P.ranges()) {
    std::string Rel;
    bool Signed = false;
    switch (C.Op) {
    case RelOp::Eq:
      Rel = "=";
      break;
    case RelOp::Ne:
      Rel = "\\<noteq>";
      break;
    case RelOp::ULt:
      Rel = "<";
      break;
    case RelOp::ULe:
      Rel = "\\<le>";
      break;
    case RelOp::UGe:
      Rel = "\\<ge>";
      break;
    case RelOp::UGt:
      Rel = ">";
      break;
    case RelOp::SLt:
      Rel = "<s";
      Signed = true;
      break;
    case RelOp::SLe:
      Rel = "\\<le>s";
      Signed = true;
      break;
    case RelOp::SGe:
      Rel = "\\<ge>s";
      Signed = true;
      break;
    case RelOp::SGt:
      Rel = ">s";
      Signed = true;
      break;
    }
    static_cast<void>(Signed);
    Conjuncts.push_back(isabelleTerm(Ctx, C.E) + " " + Rel + " " +
                        std::to_string(C.Bound));
  }
  if (Conjuncts.empty())
    return "True";
  std::string S;
  for (size_t I = 0; I < Conjuncts.size(); ++I) {
    if (I)
      S += " \\<and>\n     ";
    S += Conjuncts[I];
  }
  return S;
}

std::string exportFunction(const ExprContext &Ctx, const FunctionResult &F,
                           const IsabelleOptions &Opts) {
  // Lifted results carry their own arena; the parameter is only a fallback
  // for hand-built graphs.
  const ExprContext &FCtx = F.ctxOr(Ctx);
  std::string Out;
  std::string FName = "f_" + hexStr(F.Entry).substr(2);

  // Vertex invariant definitions.
  std::map<VertexKey, std::string> VName;
  unsigned N = 0;
  for (const auto &[Key, V] : F.Graph.Vertices) {
    std::string Name =
        "P_" + FName + "_" + hexStr(Key.Rip).substr(2) + "_" +
        std::to_string(N++);
    VName[Key] = Name;
    Out += "definition " + Name + " :: \"state \\<Rightarrow> bool\" where\n";
    Out += "  \"" + Name + " \\<sigma> \\<equiv>\n     " +
           isabellePred(FCtx, V.State.P) + "\"\n\n";
  }

  // One lemma per edge: {P_from} instr {P_to}.
  unsigned L = 0;
  for (const Edge &E : F.Graph.Edges) {
    std::string From = VName.count(E.From) ? VName[E.From] : "\\<top>";
    std::string To;
    if (E.To.Rip == hg::RetTargetRip)
      To = "(\\<lambda>\\<sigma>. RIP \\<sigma> = " +
           sanitize("S_" + hexStr(F.Entry)) + ")";
    else if (E.To.Rip == hg::UnresolvedTargetRip)
      To = "\\<top>  (* unresolved indirection: annotated *)";
    else if (VName.count(E.To))
      To = VName[E.To];
    else {
      // The target vertex was joined away; the postcondition is the
      // disjunction of all invariants at the target address.
      To = "(\\<lambda>\\<sigma>. ";
      bool First = true;
      for (const auto &[Key, V] : F.Graph.Vertices)
        if (Key.Rip == E.To.Rip) {
          if (!First)
            To += " \\<or> ";
          To += VName[Key] + " \\<sigma>";
          First = false;
        }
      To += First ? "True)" : ")";
    }
    Out += "lemma " + FName + "_edge_" + std::to_string(L++) + ":\n";
    Out += "  \"\\<lbrace>" + From + "\\<rbrace>\n";
    Out += "     " + hexStr(E.Instr.Addr) + ": " + E.Instr.str() + "\n";
    Out += "   \\<lbrace>" + To + "\\<rbrace>\"\n";
    Out += "  by " + Opts.ProofMethod + "\n\n";
  }
  return Out;
}

std::string exportBinary(const ExprContext &Ctx, const hg::BinaryResult &B,
                         const IsabelleOptions &Opts, size_t *NumLemmas) {
  std::string Out;
  Out += "theory " + sanitize(Opts.TheoryName) + "\n";
  Out += "  imports X86_Semantics.X86_Parse X86_Semantics.SymbolicExecution\n";
  Out += "begin\n\n";
  Out += "(* Generated by hglift: one invariant definition per symbolic\n";
  Out += "   state, one Hoare-triple lemma per edge of the Hoare Graph.\n";
  Out += "   Binary: " + B.Name + " *)\n\n";

  size_t Lemmas = 0;
  for (const FunctionResult &F : B.Functions) {
    if (F.Outcome != hg::LiftOutcome::Lifted)
      continue;
    Out += "section \\<open>function at " + hexStr(F.Entry) + "\\<close>\n\n";
    Out += exportFunction(Ctx, F, Opts);
    Lemmas += F.Graph.Edges.size();
  }

  // Proof obligations become explicit assumptions (§5.2: "each and any
  // implicit assumption made during HG generation is formalized").
  auto Obls = B.allObligations();
  if (!Obls.empty()) {
    Out += "section \\<open>assumptions / proof obligations\\<close>\n\n";
    unsigned N = 0;
    for (const std::string &O : Obls) {
      Out += "(* obligation " + std::to_string(N++) + ": " + O + " *)\n";
    }
    Out += "\n";
  }

  Out += "end\n";
  if (NumLemmas)
    *NumLemmas = Lemmas;
  return Out;
}

} // namespace hglift::exporter
