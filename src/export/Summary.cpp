#include "export/Summary.h"

#include "support/Format.h"

#include <sstream>

namespace hglift::exporter {

using hg::Edge;
using hg::FunctionResult;

namespace {

std::string edgeStr(const Edge &E) {
  std::string To;
  if (E.To.Rip == hg::RetTargetRip)
    To = "ret";
  else if (E.To.Rip == hg::UnresolvedTargetRip)
    // Distinguish the two annotation kinds (Table 1 columns B and C):
    // an unresolved jump abandons the path, an unresolved call continues
    // as an unknown external call.
    To = E.Kind == sem::CtrlKind::UnresCall ? "unresolved-call"
                                            : "unresolved-jump";
  else
    To = hexStr(E.To.Rip);
  return hexStr(E.From.Rip) + " -> " + To;
}

} // namespace

HgSummary summarize(const hg::BinaryResult &R) {
  HgSummary S;
  S.Name = R.Name;
  S.Outcome = hg::liftOutcomeName(R.Outcome);
  for (const FunctionResult &F : R.Functions) {
    FunctionSummary FS;
    FS.Entry = F.Entry;
    FS.Outcome = hg::liftOutcomeName(F.Outcome);
    FS.MayReturn = F.MayReturn;
    FS.A = F.ResolvedIndirections;
    FS.B = F.UnresolvedJumps;
    FS.C = F.UnresolvedCalls;
    for (const auto &[Key, V] : F.Graph.Vertices)
      if (V.Explored && V.Instr.isValid())
        FS.Instrs[Key.Rip] = V.Instr.str();
    for (const Edge &E : F.Graph.Edges)
      FS.Edges.insert(edgeStr(E));
    for (const std::string &O : F.Obligations)
      FS.Obligations.insert(O);
    S.Functions[F.Entry] = std::move(FS);
  }
  return S;
}

std::string writeSummary(const HgSummary &S) {
  std::string Out;
  Out += "hg-summary 1\n";
  Out += "binary " + (S.Name.empty() ? std::string("?") : S.Name) + "\n";
  Out += "outcome " + S.Outcome + "\n";
  for (const auto &[Entry, F] : S.Functions) {
    Out += "function " + hexStr(Entry) + " " + F.Outcome +
           " mayreturn " + (F.MayReturn ? "1" : "0") + " A " +
           std::to_string(F.A) + " B " + std::to_string(F.B) + " C " +
           std::to_string(F.C) + "\n";
    for (const auto &[Addr, Text] : F.Instrs)
      Out += "  instr " + hexStr(Addr) + " | " + Text + "\n";
    for (const std::string &E : F.Edges)
      Out += "  edge " + E + "\n";
    for (const std::string &O : F.Obligations)
      Out += "  obligation " + O + "\n";
  }
  Out += "end\n";
  return Out;
}

std::optional<HgSummary> parseSummary(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  if (!std::getline(In, Line) || Line != "hg-summary 1")
    return std::nullopt;

  HgSummary S;
  FunctionSummary *Cur = nullptr;
  bool SawEnd = false;
  while (std::getline(In, Line)) {
    if (Line == "end") {
      SawEnd = true;
      break;
    }
    std::istringstream LS(Line);
    std::string Tag;
    LS >> Tag;
    if (Tag == "binary") {
      LS >> S.Name;
    } else if (Tag == "outcome") {
      LS >> S.Outcome;
    } else if (Tag == "function") {
      std::string Addr, Outcome, Kw;
      unsigned A, B, C;
      int MayRet;
      LS >> Addr >> Outcome >> Kw >> MayRet;
      std::string KA, KB, KC;
      LS >> KA >> A >> KB >> B >> KC >> C;
      if (!LS || Kw != "mayreturn")
        return std::nullopt;
      FunctionSummary FS;
      FS.Entry = std::stoull(Addr, nullptr, 16);
      FS.Outcome = Outcome;
      FS.MayReturn = MayRet != 0;
      FS.A = A;
      FS.B = B;
      FS.C = C;
      Cur = &(S.Functions[FS.Entry] = std::move(FS));
    } else if (Tag == "instr") {
      if (!Cur)
        return std::nullopt;
      std::string Addr, Pipe;
      LS >> Addr >> Pipe;
      if (Pipe != "|")
        return std::nullopt;
      std::string Rest;
      std::getline(LS, Rest);
      if (!Rest.empty() && Rest[0] == ' ')
        Rest.erase(0, 1);
      Cur->Instrs[std::stoull(Addr, nullptr, 16)] = Rest;
    } else if (Tag == "edge") {
      if (!Cur)
        return std::nullopt;
      std::string Rest;
      std::getline(LS, Rest);
      if (!Rest.empty() && Rest[0] == ' ')
        Rest.erase(0, 1);
      Cur->Edges.insert(Rest);
    } else if (Tag == "obligation") {
      if (!Cur)
        return std::nullopt;
      std::string Rest;
      std::getline(LS, Rest);
      if (!Rest.empty() && Rest[0] == ' ')
        Rest.erase(0, 1);
      Cur->Obligations.insert(Rest);
    } else if (!Tag.empty()) {
      return std::nullopt;
    }
  }
  if (!SawEnd)
    return std::nullopt;
  return S;
}

namespace {

template <typename T, typename Fn>
void diffSets(const std::set<T> &Old, const std::set<T> &New,
              const Fn &Emit) {
  for (const T &X : New)
    if (!Old.count(X))
      Emit("+", X);
  for (const T &X : Old)
    if (!New.count(X))
      Emit("-", X);
}

} // namespace

SummaryDiff diffSummaries(const HgSummary &Old, const HgSummary &New) {
  SummaryDiff D;
  if (Old.Outcome != New.Outcome)
    D.Lines.push_back("outcome: " + Old.Outcome + " -> " + New.Outcome);

  std::set<uint64_t> Entries;
  for (const auto &[E, F] : Old.Functions)
    Entries.insert(E);
  for (const auto &[E, F] : New.Functions)
    Entries.insert(E);

  for (uint64_t E : Entries) {
    auto OI = Old.Functions.find(E);
    auto NI = New.Functions.find(E);
    std::string Tag = "function " + hexStr(E) + ": ";
    if (OI == Old.Functions.end()) {
      D.Lines.push_back(Tag + "added");
      continue;
    }
    if (NI == New.Functions.end()) {
      D.Lines.push_back(Tag + "removed");
      continue;
    }
    const FunctionSummary &OF = OI->second, &NF = NI->second;
    if (OF.Outcome != NF.Outcome)
      D.Lines.push_back(Tag + "outcome " + OF.Outcome + " -> " + NF.Outcome);
    diffSets(OF.Edges, NF.Edges, [&](const char *Sign, const std::string &X) {
      D.Lines.push_back(Tag + Sign + " edge " + X);
    });
    diffSets(OF.Obligations, NF.Obligations,
             [&](const char *Sign, const std::string &X) {
               D.Lines.push_back(Tag + Sign + " obligation " + X);
             });
    // Changed instructions at shared addresses.
    for (const auto &[Addr, Text] : NF.Instrs) {
      auto It = OF.Instrs.find(Addr);
      if (It != OF.Instrs.end() && It->second != Text)
        D.Lines.push_back(Tag + "instr @" + hexStr(Addr) + ": \"" +
                          It->second + "\" -> \"" + Text + "\"");
    }
  }
  return D;
}

} // namespace hglift::exporter
