//===- Expr.h - Hash-consed symbolic expressions ---------------*- C++ -*-===//
//
// Symbolic expressions as in §3.1 of the paper:
//
//   E ::= R | F | W | V | E × N | Op × [E]
//
// We represent the *constant-expression* fragment C (no registers or flags)
// directly: predicates map every register to a C-expression, so register and
// flag leaves never appear inside stored expressions. The leaves are:
//
//   Const   -- a word W (with a bit width)
//   Var     -- a variable V: the initial value of a register at function
//              entry (rdi0), a fresh unconstrained value introduced by
//              joining or havoc, a return-address symbol S_f (§4.2.2), or
//              the value of a malloc-style external call result
//   Deref   -- E × N: the value read from a memory region whose content is
//              the *initial* memory of the function (never written since
//              entry); this is how the paper renders values such as
//              "∗[RSP0 - 48 ...]" in §5.3
//
// Expressions are immutable and interned in an ExprContext: equal trees are
// the same pointer, so syntactic equality is pointer equality.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_EXPR_EXPR_H
#define HGLIFT_EXPR_EXPR_H

#include <cstdint>
#include <string>
#include <vector>

namespace hglift::expr {

class ExprContext;

enum class ExprKind : uint8_t {
  Const,
  Var,
  Op,
  Deref,
};

/// Operators. All operate on the node's width except the width-changing
/// casts and the comparisons (which produce width 1).
enum class Opcode : uint8_t {
  // Binary arithmetic / bitwise.
  Add,
  Sub,
  Mul,
  UDiv,
  URem,
  SDiv,
  SRem,
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  // Unary.
  Not,
  Neg,
  // Width changing: one operand, node width is the target width.
  ZExt,
  SExt,
  Trunc,
  // Comparisons: two operands of equal width, node width 1.
  Eq,
  Ne,
  ULt,
  ULe,
  SLt,
  SLe,
  // Ternary select: cond (width 1), then, else.
  Ite,
};

const char *opcodeName(Opcode Opc);
bool isCommutative(Opcode Opc);
bool isComparison(Opcode Opc);

/// What kind of variable a Var leaf is. The distinction matters to the
/// relation solver (e.g. StackBase supports the separation assumptions of
/// §1) and to the join (fresh variables are unconstrained by construction).
enum class VarClass : uint8_t {
  InitReg,   ///< Initial value of a register at function entry, e.g. rdi0.
  StackBase, ///< rsp0 specifically: the base of the local stack frame.
  RetSym,    ///< Return-address symbol S_f for a context-free call (§4.2.2).
  RetAddr,   ///< The a_r symbol: the caller's return address on the stack.
  Fresh,     ///< Unconstrained value from joining, havoc, or external calls.
  External,  ///< Result of an external function call (e.g. rax after malloc).
};

struct VarInfo {
  VarClass Cls;
  std::string Name;
  /// For RetSym: the address of the called function.
  uint64_t Aux = 0;
};

class Expr {
public:
  ExprKind kind() const { return Kind; }
  uint8_t width() const { return Width; }

  bool isConst() const { return Kind == ExprKind::Const; }
  bool isVar() const { return Kind == ExprKind::Var; }
  bool isOp() const { return Kind == ExprKind::Op; }
  bool isDeref() const { return Kind == ExprKind::Deref; }

  /// Const payload, masked to the node width.
  uint64_t constVal() const { return ConstVal; }

  /// Var payload.
  uint32_t varId() const { return VarId; }

  /// Op payload.
  Opcode opcode() const { return Opc; }
  const std::vector<const Expr *> &operands() const { return Ops; }
  const Expr *operand(unsigned I) const { return Ops[I]; }

  /// Deref payload: address expression and region size in bytes.
  const Expr *derefAddr() const { return Ops[0]; }
  uint32_t derefSize() const { return DerefSize; }

  uint64_t hashValue() const { return Hash; }

  /// True if any Var leaf of class Fresh/External occurs (i.e. the value is
  /// not a function of the initial state alone).
  bool hasFreshLeaf() const { return HasFresh; }

  /// Number of nodes in this DAG counted as a tree (bounded; used to cap
  /// expression growth like the paper's implementation does).
  uint32_t treeSize() const { return Size; }

  std::string str(const ExprContext &Ctx) const;

private:
  friend class ExprContext;
  Expr() = default;

  ExprKind Kind = ExprKind::Const;
  uint8_t Width = 64;
  Opcode Opc = Opcode::Add;
  uint64_t ConstVal = 0;
  uint32_t VarId = 0;
  uint32_t DerefSize = 0;
  uint64_t Hash = 0;
  uint32_t Size = 1;
  bool HasFresh = false;
  std::vector<const Expr *> Ops;
};

/// Mask V to W bits (W in 1..64).
inline uint64_t maskToWidth(uint64_t V, unsigned W) {
  return W >= 64 ? V : (V & ((uint64_t(1) << W) - 1));
}

/// Sign-extend the low W bits of V to 64 bits.
inline int64_t signExtend(uint64_t V, unsigned W) {
  if (W >= 64)
    return static_cast<int64_t>(V);
  uint64_t M = uint64_t(1) << (W - 1);
  V = maskToWidth(V, W);
  return static_cast<int64_t>((V ^ M) - M);
}

} // namespace hglift::expr

#endif // HGLIFT_EXPR_EXPR_H
