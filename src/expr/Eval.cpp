#include "expr/Eval.h"

#include <cassert>

namespace hglift::expr {

namespace {

std::optional<uint64_t> evalRec(const Expr *E, const VarValuation &Vars,
                                const MemOracle &Mem) {
  switch (E->kind()) {
  case ExprKind::Const:
    return E->constVal();
  case ExprKind::Var:
    return maskToWidth(Vars(E->varId()), E->width());
  case ExprKind::Deref: {
    auto A = evalRec(E->derefAddr(), Vars, Mem);
    if (!A || !Mem)
      return std::nullopt;
    return maskToWidth(Mem(*A, E->derefSize()), E->width());
  }
  case ExprKind::Op:
    break;
  }

  unsigned W = E->width();
  const auto &Ops = E->operands();
  std::vector<uint64_t> V;
  V.reserve(Ops.size());
  for (const Expr *Op : Ops) {
    auto R = evalRec(Op, Vars, Mem);
    if (!R)
      return std::nullopt;
    V.push_back(*R);
  }
  unsigned OW = Ops[0]->width(); // operand width for comparisons/casts
  int64_t S0 = V.size() >= 1 ? signExtend(V[0], OW) : 0;
  int64_t S1 = V.size() >= 2 ? signExtend(V[1], OW) : 0;

  auto Ret = [&](uint64_t X) -> std::optional<uint64_t> {
    return maskToWidth(X, W);
  };

  switch (E->opcode()) {
  case Opcode::Add:
    return Ret(V[0] + V[1]);
  case Opcode::Sub:
    return Ret(V[0] - V[1]);
  case Opcode::Mul:
    return Ret(V[0] * V[1]);
  case Opcode::UDiv:
    if (V[1] == 0)
      return std::nullopt;
    return Ret(V[0] / V[1]);
  case Opcode::URem:
    if (V[1] == 0)
      return std::nullopt;
    return Ret(V[0] % V[1]);
  case Opcode::SDiv:
    if (S1 == 0 || (S0 == INT64_MIN && S1 == -1))
      return std::nullopt;
    return Ret(static_cast<uint64_t>(S0 / S1));
  case Opcode::SRem:
    if (S1 == 0 || (S0 == INT64_MIN && S1 == -1))
      return std::nullopt;
    return Ret(static_cast<uint64_t>(S0 % S1));
  case Opcode::And:
    return Ret(V[0] & V[1]);
  case Opcode::Or:
    return Ret(V[0] | V[1]);
  case Opcode::Xor:
    return Ret(V[0] ^ V[1]);
  case Opcode::Shl:
    return Ret(V[0] << (V[1] % W));
  case Opcode::LShr:
    return Ret(V[0] >> (V[1] % W));
  case Opcode::AShr:
    return Ret(static_cast<uint64_t>(signExtend(V[0], W) >>
                                     (V[1] % W)));
  case Opcode::Not:
    return Ret(~V[0]);
  case Opcode::Neg:
    return Ret(0 - V[0]);
  case Opcode::ZExt:
    return Ret(V[0]);
  case Opcode::SExt:
    return Ret(static_cast<uint64_t>(signExtend(V[0], OW)));
  case Opcode::Trunc:
    return Ret(V[0]);
  case Opcode::Eq:
    return Ret(V[0] == V[1]);
  case Opcode::Ne:
    return Ret(V[0] != V[1]);
  case Opcode::ULt:
    return Ret(V[0] < V[1]);
  case Opcode::ULe:
    return Ret(V[0] <= V[1]);
  case Opcode::SLt:
    return Ret(S0 < S1);
  case Opcode::SLe:
    return Ret(S0 <= S1);
  case Opcode::Ite:
    return Ret(V[0] ? V[1] : V[2]);
  }
  return std::nullopt;
}

} // namespace

std::optional<uint64_t> evalExpr(const Expr *E, const VarValuation &Vars,
                                 const MemOracle &Mem) {
  return evalRec(E, Vars, Mem);
}

std::optional<uint64_t> evalExpr(const Expr *E, const VarValuation &Vars) {
  return evalRec(E, Vars, MemOracle());
}

} // namespace hglift::expr
