#include "expr/ExprContext.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>

namespace hglift::expr {

const char *opcodeName(Opcode Opc) {
  switch (Opc) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::UDiv:
    return "udiv";
  case Opcode::URem:
    return "urem";
  case Opcode::SDiv:
    return "sdiv";
  case Opcode::SRem:
    return "srem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::LShr:
    return "lshr";
  case Opcode::AShr:
    return "ashr";
  case Opcode::Not:
    return "not";
  case Opcode::Neg:
    return "neg";
  case Opcode::ZExt:
    return "zext";
  case Opcode::SExt:
    return "sext";
  case Opcode::Trunc:
    return "trunc";
  case Opcode::Eq:
    return "eq";
  case Opcode::Ne:
    return "ne";
  case Opcode::ULt:
    return "ult";
  case Opcode::ULe:
    return "ule";
  case Opcode::SLt:
    return "slt";
  case Opcode::SLe:
    return "sle";
  case Opcode::Ite:
    return "ite";
  }
  return "?";
}

bool isCommutative(Opcode Opc) {
  switch (Opc) {
  case Opcode::Add:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Eq:
  case Opcode::Ne:
    return true;
  default:
    return false;
  }
}

bool isComparison(Opcode Opc) {
  switch (Opc) {
  case Opcode::Eq:
  case Opcode::Ne:
  case Opcode::ULt:
  case Opcode::ULe:
  case Opcode::SLt:
  case Opcode::SLe:
    return true;
  default:
    return false;
  }
}

bool ExprContext::KeyEq::operator()(const Expr *A, const Expr *B) const {
  if (A->kind() != B->kind() || A->width() != B->width())
    return false;
  switch (A->kind()) {
  case ExprKind::Const:
    return A->constVal() == B->constVal();
  case ExprKind::Var:
    return A->varId() == B->varId();
  case ExprKind::Op:
    return A->opcode() == B->opcode() && A->operands() == B->operands();
  case ExprKind::Deref:
    return A->derefAddr() == B->derefAddr() &&
           A->derefSize() == B->derefSize();
  }
  return false;
}

namespace {

uint64_t hashCombine(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 12) + (H >> 4);
  return H;
}

uint64_t computeHash(const Expr &E, ExprKind K, uint8_t W, Opcode Opc,
                     uint64_t CV, uint32_t VId, uint32_t DSz,
                     const std::vector<const Expr *> &Ops) {
  uint64_t H = hashCombine(static_cast<uint64_t>(K) * 0x100 + W, CV);
  H = hashCombine(H, static_cast<uint64_t>(Opc));
  H = hashCombine(H, VId);
  H = hashCombine(H, DSz);
  for (const Expr *Op : Ops)
    H = hashCombine(H, Op->hashValue());
  return H;
}

} // namespace

ExprContext::ExprContext() = default;

const Expr *ExprContext::intern(Expr &&Proto) {
  Proto.Hash = computeHash(Proto, Proto.Kind, Proto.Width, Proto.Opc,
                           Proto.ConstVal, Proto.VarId, Proto.DerefSize,
                           Proto.Ops);
  auto It = Interned.find(&Proto);
  if (It != Interned.end())
    return It->second;
  Nodes.push_back(std::move(Proto));
  const Expr *Stored = &Nodes.back();
  Interned.emplace(Stored, Stored);
  return Stored;
}

const Expr *ExprContext::mkConst(uint64_t V, unsigned Width) {
  assert(Width >= 1 && Width <= 64 && "bad width");
  Expr E;
  E.Kind = ExprKind::Const;
  E.Width = static_cast<uint8_t>(Width);
  E.ConstVal = maskToWidth(V, Width);
  E.Size = 1;
  E.HasFresh = false;
  return intern(std::move(E));
}

const Expr *ExprContext::mkVar(VarClass Cls, const std::string &Name,
                               unsigned Width, uint64_t Aux) {
  uint32_t Id;
  auto It = VarByName.find(Name);
  if (It != VarByName.end()) {
    Id = It->second;
  } else {
    Id = static_cast<uint32_t>(Vars.size());
    Vars.push_back(VarInfo{Cls, Name, Aux});
    VarByName.emplace(Name, Id);
  }
  Expr E;
  E.Kind = ExprKind::Var;
  E.Width = static_cast<uint8_t>(Width);
  E.VarId = Id;
  E.Size = 1;
  E.HasFresh = (Cls == VarClass::Fresh || Cls == VarClass::External);
  return intern(std::move(E));
}

const Expr *ExprContext::mkFresh(const std::string &Hint, unsigned Width) {
  // Skip names that already exist: a deserialized context carries the
  // producer's variables, and reusing one of them would silently break the
  // freshness guarantee the caller relies on.
  std::string Name;
  do {
    Name = Hint + "#" + std::to_string(FreshCounter++);
  } while (VarByName.count(Name));
  return mkVar(VarClass::Fresh, Name, Width);
}

const Expr *ExprContext::mkDeref(const Expr *Addr, uint32_t SizeBytes) {
  Expr E;
  E.Kind = ExprKind::Deref;
  E.Width = static_cast<uint8_t>(SizeBytes >= 8 ? 64 : SizeBytes * 8);
  E.Ops = {Addr};
  E.DerefSize = SizeBytes;
  E.Size = Addr->treeSize() + 1;
  E.HasFresh = Addr->hasFreshLeaf();
  return intern(std::move(E));
}

namespace {

/// Concrete fold of a binary opcode on width-W constants; returns false if
/// the operation is undefined (division by zero).
bool foldBinConst(Opcode Opc, uint64_t A, uint64_t B, unsigned W,
                  uint64_t &Out) {
  uint64_t MA = maskToWidth(A, W), MB = maskToWidth(B, W);
  int64_t SA = signExtend(MA, W), SB = signExtend(MB, W);
  switch (Opc) {
  case Opcode::Add:
    Out = MA + MB;
    return true;
  case Opcode::Sub:
    Out = MA - MB;
    return true;
  case Opcode::Mul:
    Out = MA * MB;
    return true;
  case Opcode::UDiv:
    if (MB == 0)
      return false;
    Out = MA / MB;
    return true;
  case Opcode::URem:
    if (MB == 0)
      return false;
    Out = MA % MB;
    return true;
  case Opcode::SDiv:
    if (SB == 0 || (SA == INT64_MIN && SB == -1))
      return false;
    Out = static_cast<uint64_t>(SA / SB);
    return true;
  case Opcode::SRem:
    if (SB == 0 || (SA == INT64_MIN && SB == -1))
      return false;
    Out = static_cast<uint64_t>(SA % SB);
    return true;
  case Opcode::And:
    Out = MA & MB;
    return true;
  case Opcode::Or:
    Out = MA | MB;
    return true;
  case Opcode::Xor:
    Out = MA ^ MB;
    return true;
  case Opcode::Shl:
    Out = (MB % W) >= 64 ? 0 : MA << (MB % W);
    return true;
  case Opcode::LShr:
    Out = MA >> (MB % W);
    return true;
  case Opcode::AShr:
    Out = static_cast<uint64_t>(SA >> (MB % W));
    return true;
  case Opcode::Eq:
    Out = MA == MB;
    return true;
  case Opcode::Ne:
    Out = MA != MB;
    return true;
  case Opcode::ULt:
    Out = MA < MB;
    return true;
  case Opcode::ULe:
    Out = MA <= MB;
    return true;
  case Opcode::SLt:
    Out = SA < SB;
    return true;
  case Opcode::SLe:
    Out = SA <= SB;
    return true;
  default:
    return false;
  }
}

bool isConstZero(const Expr *E) { return E->isConst() && E->constVal() == 0; }
bool isConstOnes(const Expr *E) {
  return E->isConst() && E->constVal() == maskToWidth(~uint64_t(0), E->width());
}
bool isConstOne(const Expr *E) { return E->isConst() && E->constVal() == 1; }

} // namespace

const Expr *ExprContext::foldOp(Opcode Opc,
                                const std::vector<const Expr *> &Ops,
                                unsigned Width) {
  // Full constant folding.
  if (Ops.size() == 2 && Ops[0]->isConst() && Ops[1]->isConst()) {
    uint64_t Out;
    unsigned OperandW = Ops[0]->width();
    if (foldBinConst(Opc, Ops[0]->constVal(), Ops[1]->constVal(), OperandW,
                     Out))
      return mkConst(Out, Width);
  }
  if (Ops.size() == 1 && Ops[0]->isConst()) {
    uint64_t V = Ops[0]->constVal();
    unsigned SrcW = Ops[0]->width();
    switch (Opc) {
    case Opcode::Not:
      return mkConst(~V, Width);
    case Opcode::Neg:
      return mkConst(0 - V, Width);
    case Opcode::ZExt:
      return mkConst(maskToWidth(V, SrcW), Width);
    case Opcode::SExt:
      return mkConst(static_cast<uint64_t>(signExtend(V, SrcW)), Width);
    case Opcode::Trunc:
      return mkConst(V, Width);
    default:
      break;
    }
  }

  const Expr *A = Ops.size() >= 1 ? Ops[0] : nullptr;
  const Expr *B = Ops.size() >= 2 ? Ops[1] : nullptr;

  switch (Opc) {
  case Opcode::Add:
    if (isConstZero(A))
      return B;
    if (isConstZero(B))
      return A;
    // (x + c1) + c2 -> x + (c1+c2)
    if (B->isConst() && A->isOp() && A->opcode() == Opcode::Add &&
        A->operand(1)->isConst())
      return mkOp(Opcode::Add,
                  {A->operand(0), mkConst(A->operand(1)->constVal() +
                                              B->constVal(),
                                          Width)},
                  Width);
    // c + x -> x + c (canonical: constant on the right)
    if (A->isConst() && !B->isConst())
      return mkOp(Opcode::Add, {B, A}, Width);
    break;
  case Opcode::Sub:
    if (isConstZero(B))
      return A;
    if (A == B)
      return mkConst(0, Width);
    // x - c -> x + (-c): canonical additive form.
    if (B->isConst())
      return mkOp(Opcode::Add, {A, mkConst(0 - B->constVal(), Width)}, Width);
    // (x + c) - y stays; x - (y + c) -> (x - y) + (-c)
    if (B->isOp() && B->opcode() == Opcode::Add && B->operand(1)->isConst())
      return mkOp(Opcode::Add,
                  {mkOp(Opcode::Sub, {A, B->operand(0)}, Width),
                   mkConst(0 - B->operand(1)->constVal(), Width)},
                  Width);
    // (x + c) - y -> (x - y) + c
    if (A->isOp() && A->opcode() == Opcode::Add && A->operand(1)->isConst())
      return mkOp(Opcode::Add,
                  {mkOp(Opcode::Sub, {A->operand(0), B}, Width),
                   A->operand(1)},
                  Width);
    break;
  case Opcode::Mul:
    if (isConstZero(A) || isConstZero(B))
      return mkConst(0, Width);
    if (isConstOne(A))
      return B;
    if (isConstOne(B))
      return A;
    if (A->isConst() && !B->isConst())
      return mkOp(Opcode::Mul, {B, A}, Width);
    break;
  case Opcode::And:
    if (isConstZero(A) || isConstZero(B))
      return mkConst(0, Width);
    if (isConstOnes(A))
      return B;
    if (isConstOnes(B))
      return A;
    if (A == B)
      return A;
    break;
  case Opcode::Or:
    if (isConstZero(A))
      return B;
    if (isConstZero(B))
      return A;
    if (A == B)
      return A;
    if (isConstOnes(A) || isConstOnes(B))
      return mkConst(~uint64_t(0), Width);
    break;
  case Opcode::Xor:
    if (isConstZero(A))
      return B;
    if (isConstZero(B))
      return A;
    if (A == B)
      return mkConst(0, Width);
    break;
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
    if (isConstZero(B))
      return A;
    // x << c -> x * 2^c: canonical multiplicative form for address math.
    if (Opc == Opcode::Shl && B->isConst() && B->constVal() < Width)
      return mkOp(Opcode::Mul,
                  {A, mkConst(uint64_t(1) << B->constVal(), Width)}, Width);
    break;
  case Opcode::ZExt:
  case Opcode::SExt:
    if (A->width() == Width)
      return A;
    // zext(zext(x)) -> zext(x); zext of a const handled above.
    if (A->isOp() && A->opcode() == Opc)
      return mkOp(Opc, {A->operand(0)}, Width);
    break;
  case Opcode::Trunc:
    if (A->width() == Width)
      return A;
    // trunc(zext/sext(x)) where x has the target width -> x.
    if (A->isOp() &&
        (A->opcode() == Opcode::ZExt || A->opcode() == Opcode::SExt) &&
        A->operand(0)->width() == Width)
      return A->operand(0);
    break;
  case Opcode::Eq:
    if (A == B && !A->hasFreshLeaf())
      return mkTrue();
    break;
  case Opcode::ULe:
  case Opcode::SLe:
    if (A == B && !A->hasFreshLeaf())
      return mkTrue();
    break;
  case Opcode::Ite:
    if (Ops[0]->isConst())
      return Ops[0]->constVal() ? Ops[1] : Ops[2];
    if (Ops[1] == Ops[2])
      return Ops[1];
    break;
  default:
    break;
  }
  return nullptr;
}

const Expr *ExprContext::mkOp(Opcode Opc, std::vector<const Expr *> Ops,
                              unsigned Width) {
  assert(!Ops.empty());
  if (const Expr *Simplified = foldOp(Opc, Ops, Width))
    return Simplified;

  Expr E;
  E.Kind = ExprKind::Op;
  E.Width = static_cast<uint8_t>(Width);
  E.Opc = Opc;
  uint32_t Size = 1;
  bool Fresh = false;
  for (const Expr *Op : Ops) {
    Size += Op->treeSize();
    Fresh |= Op->hasFreshLeaf();
  }
  E.Size = Size;
  E.HasFresh = Fresh;
  E.Ops = std::move(Ops);
  return intern(std::move(E));
}

const Expr *ExprContext::internOp(Opcode Opc, std::vector<const Expr *> Ops,
                                  unsigned Width) {
  assert(!Ops.empty());
  Expr E;
  E.Kind = ExprKind::Op;
  E.Width = static_cast<uint8_t>(Width);
  E.Opc = Opc;
  uint32_t Size = 1;
  bool Fresh = false;
  for (const Expr *Op : Ops) {
    Size += Op->treeSize();
    Fresh |= Op->hasFreshLeaf();
  }
  E.Size = Size;
  E.HasFresh = Fresh;
  E.Ops = std::move(Ops);
  return intern(std::move(E));
}

std::string Expr::str(const ExprContext &Ctx) const {
  switch (Kind) {
  case ExprKind::Const: {
    if (Width == 1)
      return ConstVal ? "true" : "false";
    int64_t S = signExtend(ConstVal, Width);
    if (S < 0 && S > -4096)
      return "-" + hexStr(static_cast<uint64_t>(-S));
    return hexStr(ConstVal);
  }
  case ExprKind::Var:
    return Ctx.varInfo(VarId).Name;
  case ExprKind::Deref:
    return "*[" + Ops[0]->str(Ctx) + "," + std::to_string(DerefSize) + "]";
  case ExprKind::Op: {
    // Infix for the common address forms, prefix otherwise.
    if (Opc == Opcode::Add && Ops.size() == 2 && Ops[1]->isConst()) {
      int64_t K = signExtend(Ops[1]->constVal(), Width);
      return "(" + Ops[0]->str(Ctx) + " " + dispStr(K).substr(0, 1) + " " +
             hexStr(static_cast<uint64_t>(K < 0 ? -K : K)) + ")";
    }
    std::string S = "(";
    S += opcodeName(Opc);
    for (const Expr *Op : Ops) {
      S += " ";
      S += Op->str(Ctx);
    }
    S += ")";
    return S;
  }
  }
  return "?";
}

LinearForm linearize(const Expr *E) {
  LinearForm LF;
  // Worklist of (coefficient, expr) pairs.
  std::vector<std::pair<int64_t, const Expr *>> Work{{1, E}};
  while (!Work.empty()) {
    auto [C, X] = Work.back();
    Work.pop_back();
    if (X->isConst()) {
      LF.Constant += C * static_cast<int64_t>(
                             signExtend(X->constVal(), X->width()));
      continue;
    }
    if (X->isOp()) {
      switch (X->opcode()) {
      case Opcode::Add:
        Work.push_back({C, X->operand(0)});
        Work.push_back({C, X->operand(1)});
        continue;
      case Opcode::Sub:
        Work.push_back({C, X->operand(0)});
        Work.push_back({-C, X->operand(1)});
        continue;
      case Opcode::Neg:
        Work.push_back({-C, X->operand(0)});
        continue;
      case Opcode::Mul:
        if (X->operand(1)->isConst()) {
          Work.push_back(
              {C * static_cast<int64_t>(signExtend(X->operand(1)->constVal(),
                                                   X->width())),
               X->operand(0)});
          continue;
        }
        break;
      default:
        break;
      }
    }
    LF.Terms.push_back({C, X});
  }
  // Canonical order + coefficient merging.
  std::sort(LF.Terms.begin(), LF.Terms.end(),
            [](const auto &A, const auto &B) { return A.second < B.second; });
  std::vector<std::pair<int64_t, const Expr *>> Merged;
  for (auto &[C, X] : LF.Terms) {
    if (!Merged.empty() && Merged.back().second == X)
      Merged.back().first += C;
    else
      Merged.push_back({C, X});
  }
  Merged.erase(std::remove_if(Merged.begin(), Merged.end(),
                              [](const auto &T) { return T.first == 0; }),
               Merged.end());
  LF.Terms = std::move(Merged);
  return LF;
}

} // namespace hglift::expr
