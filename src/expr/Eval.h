//===- Eval.h - Concrete evaluation of symbolic expressions ----*- C++ -*-===//
//
// Evaluates an Expr under a concrete valuation of its Var leaves and a
// concrete initial-memory oracle for Deref leaves. This is the semantic
// ground truth for `s ⊢ P` (Definition 4.4): the property tests use it to
// check the simplifier, the predicate join, and the simulation relation
// against real 64-bit arithmetic.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_EXPR_EVAL_H
#define HGLIFT_EXPR_EVAL_H

#include "expr/Expr.h"

#include <functional>
#include <optional>

namespace hglift::expr {

/// Maps a variable id to its concrete 64-bit value.
using VarValuation = std::function<uint64_t(uint32_t VarId)>;

/// Maps (address, size-in-bytes) to the little-endian value of the *initial*
/// memory of the function under analysis.
using MemOracle = std::function<uint64_t(uint64_t Addr, uint32_t Size)>;

/// Evaluate E. Returns nullopt when the expression's value is undefined
/// (division by zero). The result is masked to E->width().
std::optional<uint64_t> evalExpr(const Expr *E, const VarValuation &Vars,
                                 const MemOracle &Mem);

/// Convenience overload for expressions without Deref leaves.
std::optional<uint64_t> evalExpr(const Expr *E, const VarValuation &Vars);

} // namespace hglift::expr

#endif // HGLIFT_EXPR_EVAL_H
