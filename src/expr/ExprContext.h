//===- ExprContext.h - Interning and smart constructors --------*- C++ -*-===//
//
// Owns all Expr nodes. The mk* factories canonicalize and simplify eagerly:
// constant folding, arithmetic identities, and a linear normal form for
// addresses (nested Add/Sub with constants are flattened so that the
// relation solver sees `base + k` shapes). All simplifications are equations
// valid for two's-complement bit-vectors; the property tests check each one
// against concrete 64-bit evaluation on random valuations.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_EXPR_EXPRCONTEXT_H
#define HGLIFT_EXPR_EXPRCONTEXT_H

#include "expr/Expr.h"

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

namespace hglift::expr {

class ExprContext {
public:
  ExprContext();
  ExprContext(const ExprContext &) = delete;
  ExprContext &operator=(const ExprContext &) = delete;

  /// Cap on treeSize() beyond which mkOp gives up simplifying and the
  /// semantics layer will substitute a fresh variable (the paper's
  /// implementation similarly bounds expression growth).
  static constexpr uint32_t MaxTreeSize = 512;

  const Expr *mkConst(uint64_t V, unsigned Width = 64);
  const Expr *mkTrue() { return mkConst(1, 1); }
  const Expr *mkFalse() { return mkConst(0, 1); }

  const Expr *mkVar(VarClass Cls, const std::string &Name, unsigned Width = 64,
                    uint64_t Aux = 0);
  /// A brand-new Fresh variable with a unique name derived from Hint.
  const Expr *mkFresh(const std::string &Hint, unsigned Width = 64);

  const Expr *mkOp(Opcode Opc, std::vector<const Expr *> Ops, unsigned Width);
  const Expr *mkBin(Opcode Opc, const Expr *A, const Expr *B) {
    return mkOp(Opc, {A, B}, A->width());
  }
  const Expr *mkAdd(const Expr *A, const Expr *B) {
    return mkBin(Opcode::Add, A, B);
  }
  const Expr *mkSub(const Expr *A, const Expr *B) {
    return mkBin(Opcode::Sub, A, B);
  }
  const Expr *mkAddK(const Expr *A, int64_t K) {
    return mkAdd(A, mkConst(static_cast<uint64_t>(K), A->width()));
  }
  const Expr *mkZExt(const Expr *A, unsigned Width) {
    return mkOp(Opcode::ZExt, {A}, Width);
  }
  const Expr *mkSExt(const Expr *A, unsigned Width) {
    return mkOp(Opcode::SExt, {A}, Width);
  }
  const Expr *mkTrunc(const Expr *A, unsigned Width) {
    return mkOp(Opcode::Trunc, {A}, Width);
  }
  const Expr *mkIte(const Expr *C, const Expr *T, const Expr *E) {
    return mkOp(Opcode::Ite, {C, T, E}, T->width());
  }

  const Expr *mkDeref(const Expr *Addr, uint32_t SizeBytes);

  /// Intern an Op node exactly as given, bypassing foldOp. Deserialization
  /// uses this to rebuild stored expressions byte-for-byte: stored nodes are
  /// already fixed points of folding, but re-running the simplifier would
  /// make round-trip identity depend on it, and raw interning does not.
  const Expr *internOp(Opcode Opc, std::vector<const Expr *> Ops,
                       unsigned Width);

  /// Fresh-name counter access, so a deserialized context can resume the
  /// fresh-variable sequence where the producing context left off (warm
  /// Step-2 then allocates the same names a cold run would).
  uint64_t freshCounter() const { return FreshCounter; }
  void setFreshCounter(uint64_t C) { FreshCounter = C; }

  const VarInfo &varInfo(uint32_t Id) const { return Vars[Id]; }
  size_t numVars() const { return Vars.size(); }

  /// Number of interned nodes (for statistics / leak checks in tests).
  size_t numExprs() const { return Nodes.size(); }

private:
  const Expr *intern(Expr &&Proto);
  const Expr *foldOp(Opcode Opc, const std::vector<const Expr *> &Ops,
                     unsigned Width);

  struct KeyHash {
    size_t operator()(const Expr *E) const { return E->hashValue(); }
  };
  struct KeyEq {
    bool operator()(const Expr *A, const Expr *B) const;
  };

  std::deque<Expr> Nodes;
  std::unordered_map<const Expr *, const Expr *, KeyHash, KeyEq> Interned;
  std::vector<VarInfo> Vars;
  std::unordered_map<std::string, uint32_t> VarByName;
  uint64_t FreshCounter = 0;
};

/// Decompose E into a linear form: sum of (coefficient, atom) terms plus a
/// constant, where atoms are non-Add/Sub/Mul-by-const subexpressions. Used
/// pervasively by the relation solver: [rsp0 - 24 + 4*i] linearizes to
/// {(1, rsp0), (4, i)} + (-24).
struct LinearForm {
  std::vector<std::pair<int64_t, const Expr *>> Terms; // sorted by atom ptr
  int64_t Constant = 0;

  bool isConstant() const { return Terms.empty(); }
  /// True if both forms have identical term lists (difference is constant).
  bool sameBase(const LinearForm &O) const { return Terms == O.Terms; }
};

/// Linearize a 64-bit expression. Always succeeds (worst case: a single
/// term (1, E)).
LinearForm linearize(const Expr *E);

} // namespace hglift::expr

#endif // HGLIFT_EXPR_EXPRCONTEXT_H
