//===- Serve.h - hglift serve: a persistent lifting service ----*- C++ -*-===//
//
// `hglift serve` keeps the lifter warm between invocations. A long-lived
// daemon listens on a Unix-domain socket (optionally also 127.0.0.1 TCP)
// and answers lift / check / explain / metrics / shutdown requests framed
// as JSON Lines — one JSON object per '\n'-terminated line in each
// direction, the same byte-level framing the shard claim protocol uses
// (shard/LineProto.h). The full wire contract — every request and response
// field, the error taxonomy, backpressure and dedup semantics — is
// specified in docs/SERVE.md and versioned by ServeSchemaVersion below;
// every response line carries that number.
//
// What stays warm across requests:
//   - one content-addressed artifact store instance per worker thread
//     (store/Store.h) over the shared --cache-dir: two clients submitting
//     identical instruction bytes pay for one lift, and the second gets a
//     Step-2-re-proven hit, never a trusted one;
//   - an in-memory LRU memo of whole-file responses (--memo-max), so a
//     byte-identical resubmission skips even the ELF parse.
// The report payload inside a `result` event is produced by the same
// Session::writeReportJson the CLI's --report-json uses, so a warm serve
// response is byte-identical to a cold CLI run's report file.
//
// Admission control: requests past a bounded queue depth (--max-queue) are
// rejected immediately with a structured `rejected` event carrying
// retry_after_ms — a 429, not a hang. SIGTERM/SIGINT (or a `shutdown`
// request) drain: stop accepting, finish queued work, then exit 0.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SERVE_SERVE_H
#define HGLIFT_SERVE_SERVE_H

#include <cstdint>
#include <iosfwd>
#include <string>

namespace hglift::serve {

/// Protocol revision stamped on every response line as
/// "serve_schema_version". Bump on any incompatible change to the JSONL
/// schemas in docs/SERVE.md; golden tests lock the rendered bytes per
/// version.
inline constexpr int ServeSchemaVersion = 1;

/// Everything `hglift serve` (daemon and client mode) can be configured
/// with. Plain data, filled by parseServeArgs.
struct ServeOptions {
  std::string SocketPath; ///< --socket PATH (required, both modes)
  unsigned TcpPort = 0;   ///< --tcp-port N: also listen on 127.0.0.1:N
  unsigned Workers = 1;   ///< --threads N: lifting worker threads
  unsigned MaxQueue = 64; ///< --max-queue N: admission-control bound
  unsigned MemoMax = 128; ///< --memo-max N: LRU response memo (0 = off)
  unsigned RetryAfterMs = 100; ///< --retry-after-ms N: advertised backoff

  std::string CacheDir;      ///< --cache-dir DIR: shared artifact store
  uint64_t CacheMaxMB = 0;   ///< --cache-max-mb N
  bool CacheValidate = true; ///< cleared by --no-cache-validate

  /// --max-seconds N. Daemon: server-side cap a request's max_seconds can
  /// lower but never raise. Client: the request budget (sent iff given).
  double MaxSeconds = 60.0;
  bool MaxSecondsGiven = false;
  /// --max-insns N. Same cap/request duality; maps onto the lifter's
  /// vertex fuel (LiftConfig::MaxVertices), which bounds explored
  /// instructions and retains the partial graph on exhaustion.
  uint64_t MaxInsns = 0;
  bool MaxInsnsGiven = false;

  /// --witness-dir DIR (daemon only): after every `check` request whose
  /// binary has verification errors, synthesise replayable counterexample
  /// sidecars into DIR (witness/Witness.h) and embed the same `witnesses`
  /// report section a CLI `check --witness-dir DIR` run writes — the
  /// report payload stays byte-identical to the CLI's. Empty = off.
  std::string WitnessDir;
  unsigned WitnessBudget = 64; ///< --witness-budget N: candidates per site

  // Client mode (--client): connect, submit one request, stream the
  // response lines to stdout, exit with the result's exit code.
  bool Client = false;
  std::string Op = "lift"; ///< --op lift|check|explain|metrics|shutdown
  std::string File;        ///< positional: binary (lift/check), report (explain)
  bool Library = false;    ///< --library
  std::string FunctionFilter; ///< --function F (explain)
  std::string AddrFilter;     ///< --addr A (explain)
  std::string ReportOut;      ///< --report-out F: unescaped report payload
};

/// Parse `hglift serve ...` argv (argv[1] == "serve"). False on bad usage,
/// with a message on ES.
bool parseServeArgs(int argc, char **argv, ServeOptions &Opt,
                    std::ostream &ES);

/// Run the daemon: listen on Opt.SocketPath (and TcpPort), serve requests
/// until SIGTERM/SIGINT or a `shutdown` request, drain, return a process
/// exit code (driver/ExitCode.h).
int runServe(const ServeOptions &Opt, std::ostream &OS, std::ostream &ES);

/// Client mode: submit one request to a running daemon and stream every
/// response line to OS. Returns the result's exit code (rejection maps to
/// Fail, transport loss to Io).
int runServeClient(const ServeOptions &Opt, std::ostream &OS,
                   std::ostream &ES);

} // namespace hglift::serve

#endif // HGLIFT_SERVE_SERVE_H
