//===- Serve.cpp - The hglift serve daemon and client --------------------===//
//
// Thread shape: the main thread owns the accept loop (poll over the
// listeners and a self-pipe the signal handlers and `shutdown` requests
// write to). Each accepted connection gets a reader thread that parses
// request lines, answers metrics/shutdown inline, and pushes heavy ops
// (lift/check/explain) through admission control into one bounded queue. A
// fixed pool of worker threads drains the queue; worker I owns warm store
// instance I for its whole life, which is what makes cross-request reuse
// safe (store sharing is sequential per instance, see api/Hglift.h).
//
// Event ordering per request: `accepted` is written while the queue lock
// is held, so a worker cannot pop the job — let alone write its `result` —
// before admission is on the wire. Terminal events are `done`, `rejected`,
// and `error`; exactly one ends every request.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"

#include "api/Hglift.h"
#include "diag/Json.h"
#include "driver/ExitCode.h"
#include "driver/Explain.h"
#include "elf/ElfReader.h"
#include "shard/LineProto.h"
#include "witness/Witness.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace hglift::serve {

using driver::ExitCode;
using driver::toExit;

namespace {

// ---------------------------------------------------------------- helpers

uint64_t fnv64(const std::vector<uint8_t> &Bytes) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (uint8_t B : Bytes) {
    H ^= B;
    H *= 0x100000001b3ULL;
  }
  return H;
}

std::optional<std::vector<uint8_t>> readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  if (!In.good() && !In.eof())
    return std::nullopt;
  return Bytes;
}

std::string baseName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  return Slash == std::string::npos ? Path : Path.substr(Slash + 1);
}

/// Fixed-precision rate so identical counters always render identical
/// bytes (the metrics determinism contract, docs/SERVE.md).
std::string fmtRate(uint64_t Num, uint64_t Den) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%.4f", Den ? double(Num) / double(Den) : 0.0);
  return Buf;
}

std::string fmtMs(double Ms) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%.3f", Ms);
  return Buf;
}

// ---------------------------------------------------------- wire building

/// Common prefix of every response line: schema version first, then the
/// event, then the echoed request id.
std::string lineHead(const char *Event, const std::string &Id) {
  std::string S = "{\"serve_schema_version\":";
  S += std::to_string(ServeSchemaVersion);
  S += ",\"event\":\"";
  S += Event;
  S += "\",\"id\":\"";
  S += diag::jsonEscape(Id);
  S += "\"";
  return S;
}

std::string doneLine(const std::string &Id) {
  return lineHead("done", Id) + "}\n";
}

std::string errorLine(const std::string &Id, int Exit,
                      const std::string &Reason) {
  return lineHead("error", Id) + ",\"exit\":" + std::to_string(Exit) +
         ",\"reason\":\"" + diag::jsonEscape(Reason) + "\"}\n";
}

std::string rejectLine(const std::string &Id, const char *Reason,
                       unsigned RetryAfterMs) {
  return lineHead("rejected", Id) + ",\"reason\":\"" + Reason +
         "\",\"retry_after_ms\":" + std::to_string(RetryAfterMs) + "}\n";
}

std::string acceptLine(const std::string &Id, size_t QueueDepth) {
  return lineHead("accepted", Id) +
         ",\"queue_depth\":" + std::to_string(QueueDepth) + "}\n";
}

// ------------------------------------------------------------ server state

/// One client connection. The write mutex serializes response lines from
/// the reader thread (admission events, metrics) and workers (results):
/// lines interleave, bytes within a line never do.
struct Conn {
  int Fd;
  std::mutex WMu;
  explicit Conn(int Fd) : Fd(Fd) {}
  ~Conn() {
    if (Fd >= 0)
      ::close(Fd);
  }
  Conn(const Conn &) = delete;
  Conn &operator=(const Conn &) = delete;
  /// Best-effort: a false return means the client is gone, which cancels
  /// nothing — the work was already paid for and feeds the warm caches.
  bool writeLine(const std::string &L) {
    std::lock_guard<std::mutex> G(WMu);
    return shard::writeAll(Fd, L);
  }
};

/// One admitted request, parsed off the wire.
struct Request {
  std::string Id;
  std::string Op; // lift | check | explain
  std::string File;
  std::string ReportText; // explain: inline report document
  bool Library = false;
  double MaxSeconds = 0;  // 0 = server default
  uint64_t MaxInsns = 0;  // 0 = server default
  std::string FunctionFilter, AddrFilter;
};

struct Job {
  std::shared_ptr<Conn> C;
  Request R;
};

struct MemoEntry {
  std::string Key;
  std::string Payload; // result-line suffix after the id field
};

struct Server {
  const ServeOptions &Opt;
  explicit Server(const ServeOptions &O) : Opt(O) {}

  // Admission control + lifecycle, all under QMu.
  std::mutex QMu;
  std::condition_variable QCv;     // wakes workers
  std::condition_variable DrainCv; // wakes the drain waiter
  std::deque<Job> Queue;
  unsigned InFlight = 0;
  bool Draining = false; // reject new work, finish queued work
  bool Stopping = false; // workers exit when the queue is empty
  uint64_t Total = 0, Accepted = 0, Rejected = 0, MemoHits = 0;

  // Whole-file response memo, front = most recently used.
  std::mutex MemoMu;
  std::list<MemoEntry> Memo;

  // Completed lift/check wall times (ms), for the metrics percentiles.
  std::mutex LatMu;
  std::vector<double> LiftMs;

  // Warm store instances, one per worker, created before the pool starts.
  std::vector<std::unique_ptr<store::CacheStore>> Stores;

  // Live connections (to shutdown() at drain) and their reader threads.
  std::mutex ConnMu;
  std::vector<std::weak_ptr<Conn>> Conns;
  std::vector<std::thread> ConnThreads;

  int WakeR = -1, WakeW = -1; // self-pipe: signals + `shutdown` requests
};

/// Written by signal handlers; async-signal-safe (one write syscall).
int GWakeW = -1;

void onSignal(int) {
  char B = 1;
  if (GWakeW >= 0)
    (void)!::write(GWakeW, &B, 1);
}

void requestDrain(Server &S) {
  {
    std::lock_guard<std::mutex> G(S.QMu);
    if (S.Draining)
      return;
    S.Draining = true;
  }
  char B = 1;
  (void)!::write(S.WakeW, &B, 1);
}

// ----------------------------------------------------------------- metrics

std::string metricsLine(Server &S, const std::string &Id) {
  size_t QueueDepth, MemoEntries;
  unsigned InFlight;
  uint64_t Total, Accepted, Rejected, MemoHits;
  {
    std::lock_guard<std::mutex> G(S.QMu);
    QueueDepth = S.Queue.size();
    InFlight = S.InFlight;
    Total = S.Total;
    Accepted = S.Accepted;
    Rejected = S.Rejected;
    MemoHits = S.MemoHits;
  }
  {
    std::lock_guard<std::mutex> G(S.MemoMu);
    MemoEntries = S.Memo.size();
  }
  store::CacheStats CS;
  for (const std::unique_ptr<store::CacheStore> &St : S.Stores)
    CS += St->stats();
  std::vector<double> Lat;
  {
    std::lock_guard<std::mutex> G(S.LatMu);
    Lat = S.LiftMs;
  }
  std::sort(Lat.begin(), Lat.end());
  auto Pct = [&Lat](double P) {
    if (Lat.empty())
      return 0.0;
    size_t I = static_cast<size_t>(P * double(Lat.size() - 1) + 0.5);
    return Lat[std::min(I, Lat.size() - 1)];
  };

  // Every field before "wall" is a deterministic function of the request
  // history; wall-clock quantities are isolated in the trailing "wall"
  // object so consumers can strip one suffix to compare bytes.
  std::string L = lineHead("metrics", Id);
  L += ",\"queue_depth\":" + std::to_string(QueueDepth);
  L += ",\"in_flight\":" + std::to_string(InFlight);
  L += ",\"requests_total\":" + std::to_string(Total);
  L += ",\"accepted\":" + std::to_string(Accepted);
  L += ",\"rejected\":" + std::to_string(Rejected);
  L += ",\"memo_hits\":" + std::to_string(MemoHits);
  L += ",\"memo_entries\":" + std::to_string(MemoEntries);
  L += ",\"lift_samples\":" + std::to_string(Lat.size());
  L += ",\"cache\":{\"hits\":" + std::to_string(CS.Hits);
  L += ",\"misses\":" + std::to_string(CS.Misses);
  L += ",\"stored\":" + std::to_string(CS.Stored);
  L += ",\"validated\":" + std::to_string(CS.Validated);
  L += ",\"validation_failures\":" + std::to_string(CS.ValidationFailures);
  L += ",\"evictions\":" + std::to_string(CS.Evictions);
  L += ",\"hit_rate\":\"" + fmtRate(CS.Hits, CS.Hits + CS.Misses) + "\"}";
  L += ",\"wall\":{\"lift_p50_ms\":" + fmtMs(Pct(0.50));
  L += ",\"lift_p99_ms\":" + fmtMs(Pct(0.99)) + "}}\n";
  return L;
}

// ------------------------------------------------------------- processing

void processJob(Server &S, store::CacheStore *Store, Job &J) {
  const Request &R = J.R;

  if (R.Op == "explain") {
    driver::ExplainOptions EO;
    EO.FunctionFilter = R.FunctionFilter;
    EO.AddrFilter = R.AddrFilter;
    std::ostringstream Out, Err;
    int Exit = driver::runExplainText(R.ReportText, EO, Out, Err,
                                      "request `" + R.Id + "`");
    if (Exit != 0) {
      std::string E = Err.str();
      while (!E.empty() && E.back() == '\n')
        E.pop_back();
      J.C->writeLine(errorLine(R.Id, Exit, E));
      return;
    }
    J.C->writeLine(lineHead("result", R.Id) + ",\"op\":\"explain\"" +
                   ",\"exit\":0,\"text\":\"" + diag::jsonEscape(Out.str()) +
                   "\"}\n");
    J.C->writeLine(doneLine(R.Id));
    return;
  }

  // lift / check. The server reads the file; paths are resolved in the
  // daemon's filesystem view (clients on the same host, see docs/SERVE.md).
  std::optional<std::vector<uint8_t>> Bytes = readFileBytes(R.File);
  if (!Bytes) {
    J.C->writeLine(
        errorLine(R.Id, toExit(ExitCode::Io), "cannot read " + R.File));
    return;
  }

  // Request budgets may lower the server caps, never raise them.
  double MaxSec = S.Opt.MaxSeconds;
  if (R.MaxSeconds > 0)
    MaxSec = std::min(MaxSec, R.MaxSeconds);
  uint64_t MaxInsns = S.Opt.MaxInsns;
  if (R.MaxInsns > 0)
    MaxInsns = MaxInsns ? std::min(MaxInsns, R.MaxInsns) : R.MaxInsns;

  // Whole-file dedup: keyed by content digest plus everything that can
  // change the payload. A hit replays the memoized result under this
  // request's id — no ELF parse, no store lookup, no lift.
  std::string Key;
  {
    std::ostringstream K;
    K << std::hex << fnv64(*Bytes) << '|' << R.Op << '|' << R.Library << '|'
      << MaxSec << '|' << MaxInsns;
    Key = K.str();
  }
  if (S.Opt.MemoMax > 0) {
    std::lock_guard<std::mutex> G(S.MemoMu);
    for (std::list<MemoEntry>::iterator It = S.Memo.begin();
         It != S.Memo.end(); ++It)
      if (It->Key == Key) {
        S.Memo.splice(S.Memo.begin(), S.Memo, It);
        {
          std::lock_guard<std::mutex> Q(S.QMu);
          ++S.MemoHits;
        }
        J.C->writeLine(lineHead("result", R.Id) + It->Payload);
        J.C->writeLine(doneLine(R.Id));
        return;
      }
  }

  std::optional<elf::BinaryImage> Img = elf::readElf(*Bytes, baseName(R.File));
  if (!Img) {
    J.C->writeLine(errorLine(R.Id, toExit(ExitCode::Fail),
                             "cannot parse ELF file " + R.File));
    return;
  }

  Options SO;
  SO.Library = R.Library;
  SO.Lift.MaxSeconds = MaxSec;
  if (MaxInsns > 0)
    SO.Lift.MaxVertices = MaxInsns;
  SO.Cache.Shared = Store; // null when no --cache-dir
  SO.Witness.Dir = S.Opt.WitnessDir;
  SO.Witness.Budget = S.Opt.WitnessBudget;

  std::chrono::steady_clock::time_point T0 = std::chrono::steady_clock::now();
  Session Sess(*Img, SO);
  const hg::BinaryResult &LR = Sess.lift();
  bool Proven = true;
  if (R.Op == "check")
    Proven = Sess.check().allProven();
  // Same witness search a CLI `check --witness-dir` run performs, so the
  // report payload below stays byte-identical to the CLI's report file.
  const diag::WitnessSummary *Wit = nullptr;
  if (R.Op == "check" && !S.Opt.WitnessDir.empty())
    Wit = &witness::attachWitnesses(Sess, &*Bytes);
  std::ostringstream Rep;
  Sess.writeReportJson(Rep);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  {
    std::lock_guard<std::mutex> G(S.LatMu);
    S.LiftMs.push_back(Ms);
  }

  // Same exit-code table as the CLI (driver/ExitCode.h): Ok iff the binary
  // lifted and (for check) every Hoare triple proved.
  int Exit = toExit(LR.Outcome == hg::LiftOutcome::Lifted && Proven
                        ? ExitCode::Ok
                        : ExitCode::Fail);
  std::string Payload = ",\"op\":\"" + R.Op + "\"";
  Payload += ",\"exit\":" + std::to_string(Exit);
  Payload += ",\"outcome\":\"";
  Payload += hg::liftOutcomeName(LR.Outcome);
  Payload += "\"";
  if (Wit) {
    Payload += ",\"witnesses_confirmed\":" + std::to_string(Wit->Confirmed);
    Payload +=
        ",\"witnesses_unconfirmed\":" + std::to_string(Wit->Unconfirmed);
  }
  Payload += ",\"report\":\"" + diag::jsonEscape(Rep.str()) + "\"}\n";

  if (S.Opt.MemoMax > 0) {
    std::lock_guard<std::mutex> G(S.MemoMu);
    S.Memo.push_front(MemoEntry{Key, Payload});
    while (S.Memo.size() > S.Opt.MemoMax)
      S.Memo.pop_back();
  }
  J.C->writeLine(lineHead("result", R.Id) + Payload);
  J.C->writeLine(doneLine(R.Id));
}

void workerLoop(Server &S, unsigned Idx) {
  store::CacheStore *Store =
      Idx < S.Stores.size() ? S.Stores[Idx].get() : nullptr;
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> L(S.QMu);
      S.QCv.wait(L, [&S] { return S.Stopping || !S.Queue.empty(); });
      if (S.Queue.empty())
        return; // Stopping, and drain already emptied the queue
      J = std::move(S.Queue.front());
      S.Queue.pop_front();
      ++S.InFlight;
    }
    // Test hook: hold the slot so admission-control tests can fill the
    // queue deterministically (the job is in_flight while it sleeps).
    if (const char *E = std::getenv("HGLIFT_SERVE_TEST_SLEEP_MS"))
      std::this_thread::sleep_for(std::chrono::milliseconds(std::atoi(E)));
    processJob(S, Store, J);
    {
      std::lock_guard<std::mutex> L(S.QMu);
      --S.InFlight;
    }
    S.DrainCv.notify_all();
  }
}

// ----------------------------------------------------------- reader thread

void connLoop(Server &S, std::shared_ptr<Conn> C) {
  std::string Buf;
  for (;;) {
    std::optional<std::string> Line = shard::readLineBlocking(C->Fd, Buf);
    if (!Line)
      return; // client hung up, or the drain shut the socket down
    if (Line->find_first_not_of(" \t\r") == std::string::npos)
      continue;
    std::optional<diag::JValue> D = diag::parseJson(*Line);
    if (!D || !D->isObj()) {
      C->writeLine(errorLine(D && D->isObj() ? D->str("id") : "",
                             toExit(ExitCode::Usage),
                             "malformed request: not a JSON object"));
      continue;
    }
    Request R;
    R.Id = D->str("id");
    R.Op = D->str("op");
    R.File = D->str("file");
    R.ReportText = D->str("report");
    if (const diag::JValue *B = D->get("library"))
      R.Library = B->K == diag::JValue::Kind::Bool && B->B;
    R.MaxSeconds = D->num("max_seconds", 0);
    R.MaxInsns = static_cast<uint64_t>(D->num("max_insns", 0));
    R.FunctionFilter = D->str("function");
    R.AddrFilter = D->str("addr");

    // Control ops are answered inline by this thread — metrics must work
    // even when every worker slot and queue slot is occupied.
    if (R.Op == "metrics") {
      C->writeLine(metricsLine(S, R.Id));
      continue;
    }
    if (R.Op == "shutdown") {
      C->writeLine(doneLine(R.Id));
      requestDrain(S);
      continue;
    }
    if (R.Op != "lift" && R.Op != "check" && R.Op != "explain") {
      C->writeLine(errorLine(R.Id, toExit(ExitCode::Usage),
                             "unknown op `" + R.Op + "`"));
      continue;
    }
    if (R.Op == "explain" ? R.ReportText.empty() : R.File.empty()) {
      C->writeLine(errorLine(R.Id, toExit(ExitCode::Usage),
                             R.Op == "explain"
                                 ? "explain request needs `report`"
                                 : "request needs `file`"));
      continue;
    }

    // Admission. The accepted line is written under QMu so no worker can
    // pop this job (QCv waiters need the lock) before the client has been
    // told it was admitted.
    {
      std::lock_guard<std::mutex> G(S.QMu);
      ++S.Total;
      if (S.Draining) {
        ++S.Rejected;
        C->writeLine(rejectLine(R.Id, "shutting_down", S.Opt.RetryAfterMs));
        continue;
      }
      if (S.Queue.size() >= S.Opt.MaxQueue) {
        ++S.Rejected;
        C->writeLine(rejectLine(R.Id, "queue_full", S.Opt.RetryAfterMs));
        continue;
      }
      ++S.Accepted;
      S.Queue.push_back(Job{C, std::move(R)});
      C->writeLine(acceptLine(S.Queue.back().R.Id, S.Queue.size()));
    }
    S.QCv.notify_one();
  }
}

// -------------------------------------------------------------- listeners

int listenUnix(const std::string &Path, std::ostream &ES) {
  sockaddr_un SU{};
  SU.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(SU.sun_path)) {
    ES << "serve: socket path too long: " << Path << "\n";
    return -1;
  }
  std::memcpy(SU.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    ES << "serve: socket: " << std::strerror(errno) << "\n";
    return -1;
  }
  ::unlink(Path.c_str()); // stale socket from a previous run
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&SU), sizeof(SU)) != 0 ||
      ::listen(Fd, 64) != 0) {
    ES << "serve: cannot listen on " << Path << ": " << std::strerror(errno)
       << "\n";
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int listenTcp(unsigned Port, std::ostream &ES) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    ES << "serve: socket: " << std::strerror(errno) << "\n";
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in SA{};
  SA.sin_family = AF_INET;
  SA.sin_port = htons(static_cast<uint16_t>(Port));
  SA.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // loopback only, by design
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) != 0 ||
      ::listen(Fd, 64) != 0) {
    ES << "serve: cannot listen on 127.0.0.1:" << Port << ": "
       << std::strerror(errno) << "\n";
    ::close(Fd);
    return -1;
  }
  return Fd;
}

} // namespace

// ------------------------------------------------------------------ daemon

int runServe(const ServeOptions &Opt, std::ostream &OS, std::ostream &ES) {
  ::signal(SIGPIPE, SIG_IGN); // client disconnects surface as write errors

  Server S(Opt);
  int P[2];
  if (::pipe(P) != 0) {
    ES << "serve: pipe: " << std::strerror(errno) << "\n";
    return toExit(ExitCode::Io);
  }
  S.WakeR = P[0];
  S.WakeW = P[1];
  GWakeW = S.WakeW;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);

  int LFd = listenUnix(Opt.SocketPath, ES);
  if (LFd < 0)
    return toExit(ExitCode::Io);
  int TFd = -1;
  if (Opt.TcpPort) {
    TFd = listenTcp(Opt.TcpPort, ES);
    if (TFd < 0) {
      ::close(LFd);
      ::unlink(Opt.SocketPath.c_str());
      return toExit(ExitCode::Io);
    }
  }

  // One warm store per worker, opened before the pool starts so worker I
  // can hold instance I for its whole life (sequential reuse per instance;
  // the on-disk format makes concurrent instances over one DIR safe).
  if (!Opt.CacheDir.empty())
    for (unsigned I = 0; I < Opt.Workers; ++I) {
      store::CacheStore::Options CO;
      CO.Dir = Opt.CacheDir;
      CO.MaxBytes = Opt.CacheMaxMB * 1024 * 1024;
      CO.Validate = Opt.CacheValidate;
      S.Stores.push_back(std::make_unique<store::CacheStore>(std::move(CO)));
    }

  std::vector<std::thread> Workers;
  Workers.reserve(Opt.Workers);
  for (unsigned I = 0; I < Opt.Workers; ++I)
    Workers.emplace_back([&S, I] { workerLoop(S, I); });

  OS << "serve: listening on " << Opt.SocketPath;
  if (Opt.TcpPort)
    OS << " and 127.0.0.1:" << Opt.TcpPort;
  OS << " (" << Opt.Workers << " worker(s), queue " << Opt.MaxQueue << ")\n";
  OS.flush();

  for (;;) {
    struct pollfd PF[3];
    int N = 0;
    PF[N++] = {S.WakeR, POLLIN, 0};
    PF[N++] = {LFd, POLLIN, 0};
    if (TFd >= 0)
      PF[N++] = {TFd, POLLIN, 0};
    int RC = ::poll(PF, static_cast<nfds_t>(N), -1);
    if (RC < 0) {
      if (errno == EINTR)
        continue; // the handler's pipe byte shows up on the next poll
      ES << "serve: poll: " << std::strerror(errno) << "\n";
      break;
    }
    if (PF[0].revents)
      break; // signal or `shutdown` request: drain
    for (int I = 1; I < N; ++I) {
      if (!(PF[I].revents & POLLIN))
        continue;
      int CFd = ::accept(PF[I].fd, nullptr, nullptr);
      if (CFd < 0)
        continue;
      std::shared_ptr<Conn> C = std::make_shared<Conn>(CFd);
      {
        std::lock_guard<std::mutex> G(S.ConnMu);
        S.Conns.push_back(C);
      }
      S.ConnThreads.emplace_back([&S, C] { connLoop(S, C); });
    }
  }

  // Drain: stop admitting, finish everything already accepted, then cut
  // the readers loose and exit cleanly. In-flight work is never killed.
  {
    std::lock_guard<std::mutex> G(S.QMu);
    S.Draining = true;
  }
  ::close(LFd);
  ::unlink(Opt.SocketPath.c_str());
  if (TFd >= 0)
    ::close(TFd);
  {
    std::unique_lock<std::mutex> L(S.QMu);
    S.DrainCv.wait(L, [&S] { return S.Queue.empty() && S.InFlight == 0; });
    S.Stopping = true;
  }
  S.QCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  {
    std::lock_guard<std::mutex> G(S.ConnMu);
    for (std::weak_ptr<Conn> &WP : S.Conns)
      if (std::shared_ptr<Conn> C = WP.lock())
        ::shutdown(C->Fd, SHUT_RDWR); // unparks readLineBlocking with EOF
  }
  for (std::thread &T : S.ConnThreads)
    T.join();
  GWakeW = -1;
  ::close(S.WakeR);
  ::close(S.WakeW);
  OS << "serve: drained, exiting\n";
  return toExit(ExitCode::Ok);
}

// ------------------------------------------------------------------ client

int runServeClient(const ServeOptions &Opt, std::ostream &OS,
                   std::ostream &ES) {
  std::string Req = "{\"op\":\"" + Opt.Op + "\",\"id\":\"cli\"";
  if (Opt.Op == "lift" || Opt.Op == "check") {
    if (Opt.File.empty()) {
      ES << "serve: --client " << Opt.Op << " needs a binary path\n";
      return toExit(ExitCode::Usage);
    }
    // The daemon resolves the path, so send it absolute: the client's cwd
    // is not the daemon's.
    std::error_code EC;
    std::filesystem::path Abs = std::filesystem::absolute(Opt.File, EC);
    Req += ",\"file\":\"" +
           diag::jsonEscape(EC ? Opt.File : Abs.string()) + "\"";
    if (Opt.Library)
      Req += ",\"library\":true";
    if (Opt.MaxSecondsGiven)
      Req += ",\"max_seconds\":" + std::to_string(Opt.MaxSeconds);
    if (Opt.MaxInsnsGiven)
      Req += ",\"max_insns\":" + std::to_string(Opt.MaxInsns);
  } else if (Opt.Op == "explain") {
    if (Opt.File.empty()) {
      ES << "serve: --client explain needs a report path\n";
      return toExit(ExitCode::Usage);
    }
    std::optional<std::vector<uint8_t>> Bytes = readFileBytes(Opt.File);
    if (!Bytes) {
      ES << "serve: cannot read " << Opt.File << "\n";
      return toExit(ExitCode::Io);
    }
    Req += ",\"report\":\"" +
           diag::jsonEscape(std::string(Bytes->begin(), Bytes->end())) + "\"";
    if (!Opt.FunctionFilter.empty())
      Req += ",\"function\":\"" + diag::jsonEscape(Opt.FunctionFilter) + "\"";
    if (!Opt.AddrFilter.empty())
      Req += ",\"addr\":\"" + diag::jsonEscape(Opt.AddrFilter) + "\"";
  } else if (Opt.Op != "metrics" && Opt.Op != "shutdown") {
    ES << "serve: unknown --op " << Opt.Op << "\n";
    return toExit(ExitCode::Usage);
  }
  Req += "}\n";

  sockaddr_un SU{};
  SU.sun_family = AF_UNIX;
  if (Opt.SocketPath.size() >= sizeof(SU.sun_path)) {
    ES << "serve: socket path too long: " << Opt.SocketPath << "\n";
    return toExit(ExitCode::Usage);
  }
  std::memcpy(SU.sun_path, Opt.SocketPath.c_str(), Opt.SocketPath.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0 ||
      ::connect(Fd, reinterpret_cast<sockaddr *>(&SU), sizeof(SU)) != 0) {
    ES << "serve: cannot connect to " << Opt.SocketPath << ": "
       << std::strerror(errno) << "\n";
    if (Fd >= 0)
      ::close(Fd);
    return toExit(ExitCode::Io);
  }
  ::signal(SIGPIPE, SIG_IGN);
  if (!shard::writeAll(Fd, Req)) {
    ES << "serve: cannot send request\n";
    ::close(Fd);
    return toExit(ExitCode::Io);
  }

  std::string Buf;
  int Exit = toExit(ExitCode::Ok);
  bool Terminal = false;
  while (!Terminal) {
    std::optional<std::string> Line = shard::readLineBlocking(Fd, Buf);
    if (!Line) {
      ES << "serve: connection closed mid-request\n";
      Exit = toExit(ExitCode::Io);
      break;
    }
    OS << *Line << "\n";
    std::optional<diag::JValue> D = diag::parseJson(*Line);
    if (!D || !D->isObj())
      continue;
    std::string Ev = D->str("event");
    if (Ev == "result") {
      Exit = static_cast<int>(D->num("exit", 0));
      if (!Opt.ReportOut.empty()) {
        // The unescaped payload — for explain the narrative text, else the
        // report JSON, byte-identical to a CLI --report-json file.
        std::string Payload =
            Opt.Op == "explain" ? D->str("text") : D->str("report");
        std::ofstream Out(Opt.ReportOut, std::ios::binary);
        if (!Out) {
          ES << "serve: cannot open " << Opt.ReportOut << " for writing\n";
          Exit = toExit(ExitCode::Io);
        } else {
          Out << Payload;
        }
      }
    } else if (Ev == "error") {
      Exit = static_cast<int>(D->num("exit", toExit(ExitCode::Fail)));
      Terminal = true;
    } else if (Ev == "rejected") {
      Exit = toExit(ExitCode::Fail);
      Terminal = true;
    } else if (Ev == "done" || Ev == "metrics") {
      Terminal = true;
    }
  }
  ::close(Fd);
  return Exit;
}

// ------------------------------------------------------------------- flags

bool parseServeArgs(int argc, char **argv, ServeOptions &Opt,
                    std::ostream &ES) {
  for (int I = 2; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--socket" && I + 1 < argc)
      Opt.SocketPath = argv[++I];
    else if (A == "--tcp-port" && I + 1 < argc)
      Opt.TcpPort = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (A == "--threads" && I + 1 < argc)
      Opt.Workers = std::max(1, std::atoi(argv[++I]));
    else if (A == "--max-queue" && I + 1 < argc)
      Opt.MaxQueue = std::max(1, std::atoi(argv[++I]));
    else if (A == "--memo-max" && I + 1 < argc)
      Opt.MemoMax = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (A == "--retry-after-ms" && I + 1 < argc)
      Opt.RetryAfterMs = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (A == "--cache-dir" && I + 1 < argc)
      Opt.CacheDir = argv[++I];
    else if (A == "--cache-max-mb" && I + 1 < argc)
      Opt.CacheMaxMB = std::strtoull(argv[++I], nullptr, 0);
    else if (A == "--no-cache-validate")
      Opt.CacheValidate = false;
    else if (A == "--max-seconds" && I + 1 < argc) {
      Opt.MaxSeconds = std::atof(argv[++I]);
      Opt.MaxSecondsGiven = true;
    } else if (A == "--max-insns" && I + 1 < argc) {
      Opt.MaxInsns = std::strtoull(argv[++I], nullptr, 0);
      Opt.MaxInsnsGiven = true;
    } else if (A == "--witness-dir" && I + 1 < argc)
      Opt.WitnessDir = argv[++I];
    else if (A == "--witness-budget" && I + 1 < argc)
      Opt.WitnessBudget =
          static_cast<unsigned>(std::max(1, std::atoi(argv[++I])));
    else if (A == "--client")
      Opt.Client = true;
    else if (A == "--op" && I + 1 < argc)
      Opt.Op = argv[++I];
    else if (A == "--library")
      Opt.Library = true;
    else if (A == "--function" && I + 1 < argc)
      Opt.FunctionFilter = argv[++I];
    else if (A == "--addr" && I + 1 < argc)
      Opt.AddrFilter = argv[++I];
    else if (A == "--report-out" && I + 1 < argc)
      Opt.ReportOut = argv[++I];
    else if (!A.empty() && A[0] != '-' && Opt.File.empty())
      Opt.File = A;
    else {
      ES << "serve: unknown option: " << A << "\n";
      return false;
    }
  }
  if (Opt.SocketPath.empty()) {
    ES << "serve: --socket PATH is required\n";
    return false;
  }
  return true;
}

} // namespace hglift::serve
