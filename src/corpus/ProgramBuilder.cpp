#include "corpus/ProgramBuilder.h"

#include "elf/ElfReader.h"

namespace hglift::corpus {

using x86::Asm;

uint64_t ProgramBuilder::plt(const std::string &FuncName) {
  auto It = PltStubs.find(FuncName);
  if (It != PltStubs.end())
    return It->second;
  // 16-byte stubs; content is never analyzed (calls into the PLT are
  // classified external by symbol before decoding), but keep it a real
  // endbr64+ud2 so the file disassembles sanely.
  uint64_t Addr = PltBase + PltStubs.size() * 16;
  PltStubs.emplace(FuncName, Addr);
  return Addr;
}

uint64_t ProgramBuilder::rodataAlloc(size_t N, size_t Align) {
  while (Rodata.size() % Align != 0)
    Rodata.push_back(0);
  uint64_t Addr = RodataBase + Rodata.size();
  Rodata.resize(Rodata.size() + N, 0);
  return Addr;
}

void ProgramBuilder::rodataBytes(uint64_t Addr,
                                 const std::vector<uint8_t> &Bytes) {
  size_t Off = Addr - RodataBase;
  for (size_t I = 0; I < Bytes.size(); ++I)
    Rodata[Off + I] = Bytes[I];
}

void ProgramBuilder::rodataU64(uint64_t Addr, uint64_t V) {
  size_t Off = Addr - RodataBase;
  for (int I = 0; I < 8; ++I)
    Rodata[Off + I] = static_cast<uint8_t>(V >> (8 * I));
}

uint64_t ProgramBuilder::dataAlloc(size_t N, size_t Align) {
  while (Data.size() % Align != 0)
    Data.push_back(0);
  uint64_t Addr = DataBase + Data.size();
  Data.resize(Data.size() + N, 0);
  return Addr;
}

void ProgramBuilder::dataU64(uint64_t Addr, uint64_t V) {
  size_t Off = Addr - DataBase;
  for (int I = 0; I < 8; ++I)
    Data[Off + I] = static_cast<uint8_t>(V >> (8 * I));
}

uint64_t ProgramBuilder::jumpTable(const std::vector<Asm::Label> &Entries) {
  uint64_t Addr = rodataAlloc(Entries.size() * 8, 8);
  Tables.push_back({Addr, Entries});
  return Addr;
}

void ProgramBuilder::exportFunc(const std::string &FuncName, Asm::Label L) {
  Exports.push_back({FuncName, L});
}

std::optional<BuiltBinary> ProgramBuilder::build(
    std::optional<Asm::Label> Entry, bool SharedObject) {
  if (!Text.finalize())
    return std::nullopt;

  for (auto &[Addr, Entries] : Tables)
    for (size_t I = 0; I < Entries.size(); ++I)
      rodataU64(Addr + I * 8, Text.labelAddr(Entries[I]));

  elf::ElfSpec Spec;
  Spec.Entry = Entry ? Text.labelAddr(*Entry) : TextBase;
  Spec.SharedObject = SharedObject;

  elf::OutSection TextSec;
  TextSec.Name = ".text";
  TextSec.VAddr = TextBase;
  TextSec.Bytes = Text.code();
  TextSec.Exec = true;
  Spec.Sections.push_back(std::move(TextSec));

  if (!PltStubs.empty()) {
    elf::OutSection Plt;
    Plt.Name = ".plt";
    Plt.VAddr = PltBase;
    Plt.Bytes.resize(PltStubs.size() * 16, 0);
    for (auto &[FuncName, Addr] : PltStubs) {
      size_t Off = Addr - PltBase;
      // endbr64; ud2; padding.
      const uint8_t Stub[] = {0xf3, 0x0f, 0x1e, 0xfa, 0x0f, 0x0b};
      for (size_t I = 0; I < sizeof(Stub); ++I)
        Plt.Bytes[Off + I] = Stub[I];
      elf::OutSymbol Sym;
      Sym.Name = FuncName;
      Sym.Addr = Addr;
      Sym.Size = 16;
      Sym.IsPltStub = true;
      Spec.Symbols.push_back(Sym);
    }
    Plt.Exec = true;
    Spec.Sections.push_back(std::move(Plt));
  }

  if (!Rodata.empty()) {
    elf::OutSection Ro;
    Ro.Name = ".rodata";
    Ro.VAddr = RodataBase;
    Ro.Bytes = Rodata;
    Spec.Sections.push_back(std::move(Ro));
  }

  if (!Data.empty()) {
    elf::OutSection D;
    D.Name = ".data";
    D.VAddr = DataBase;
    D.Bytes = Data;
    D.Write = true;
    Spec.Sections.push_back(std::move(D));
  }

  for (auto &[FuncName, L] : Exports) {
    elf::OutSymbol Sym;
    Sym.Name = FuncName;
    Sym.Addr = Text.labelAddr(L);
    Sym.IsFunc = true;
    Spec.Symbols.push_back(Sym);
  }

  BuiltBinary BB;
  BB.Name = Name;
  BB.ElfBytes = elf::writeElf(Spec);
  auto Img = elf::readElf(BB.ElfBytes, Name);
  if (!Img)
    return std::nullopt;
  BB.Img = std::move(*Img);
  return BB;
}

} // namespace hglift::corpus
