//===- ProgramBuilder.h - Synthesize evaluation binaries -------*- C++ -*-===//
//
// Builds complete ELF binaries through the assembler and ELF writer. This
// is the substitute substrate for the paper's Xen / CoreUtils / MacOS
// case-study binaries (DESIGN.md §4): every control-flow and memory idiom
// the paper's evaluation exercises is synthesized here, and the produced
// files are real ELF64 objects inspectable with standard tools.
//
// Section layout (fixed virtual bases):
//   .text   0x401000  RX   code + (read-only) jump tables
//   .plt    0x4a0000  RX   external-function stubs (name@plt symbols)
//   .rodata 0x4b0000  R    constant data, jump tables
//   .data   0x4d0000  RW   globals
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_CORPUS_PROGRAMBUILDER_H
#define HGLIFT_CORPUS_PROGRAMBUILDER_H

#include "elf/Binary.h"
#include "elf/ElfWriter.h"
#include "x86/Asm.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hglift::corpus {

struct BuiltBinary {
  std::string Name;
  std::vector<uint8_t> ElfBytes;
  elf::BinaryImage Img; ///< parsed back through the ELF reader
};

class ProgramBuilder {
public:
  static constexpr uint64_t TextBase = 0x401000;
  static constexpr uint64_t PltBase = 0x4a0000;
  static constexpr uint64_t RodataBase = 0x4b0000;
  static constexpr uint64_t DataBase = 0x4d0000;

  explicit ProgramBuilder(std::string Name)
      : Name(std::move(Name)), Text(TextBase) {}

  x86::Asm &text() { return Text; }

  /// Register a PLT stub for an external function; returns its address.
  /// Calling it repeatedly with the same name returns the same stub.
  uint64_t plt(const std::string &FuncName);

  /// Reserve N bytes of .rodata; returns the virtual address.
  uint64_t rodataAlloc(size_t N, size_t Align = 8);
  void rodataBytes(uint64_t Addr, const std::vector<uint8_t> &Bytes);
  void rodataU64(uint64_t Addr, uint64_t V);

  /// Reserve N bytes of .data (read-write globals).
  uint64_t dataAlloc(size_t N, size_t Align = 8);
  void dataU64(uint64_t Addr, uint64_t V);

  /// Reserve a jump table of Count 8-byte entries in .rodata; the entries
  /// are filled with the label addresses at build() time.
  uint64_t jumpTable(const std::vector<x86::Asm::Label> &Entries);

  /// Export a function symbol (library-lifting roots; `nm` equivalent).
  void exportFunc(const std::string &FuncName, x86::Asm::Label L);

  /// Finalize: resolve labels, fill jump tables, emit the ELF, parse it
  /// back. Entry defaults to TextBase. Returns nullopt if a label was
  /// never bound or the ELF fails to re-parse (a builder bug).
  std::optional<BuiltBinary> build(std::optional<x86::Asm::Label> Entry = {},
                                   bool SharedObject = false);

private:
  std::string Name;
  x86::Asm Text;
  std::vector<uint8_t> Rodata, Data;
  std::map<std::string, uint64_t> PltStubs;
  std::vector<std::pair<uint64_t, std::vector<x86::Asm::Label>>> Tables;
  std::vector<std::pair<std::string, x86::Asm::Label>> Exports;
};

} // namespace hglift::corpus

#endif // HGLIFT_CORPUS_PROGRAMBUILDER_H
