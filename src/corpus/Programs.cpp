#include "corpus/Programs.h"

namespace hglift::corpus {

using x86::Asm;
using x86::Cond;
using x86::MemOperand;
using x86::Mnemonic;
using x86::Reg;

namespace {

MemOperand memB(Reg Base, int32_t Disp = 0) {
  MemOperand M;
  M.Base = Base;
  M.Disp = Disp;
  return M;
}

MemOperand memBIS(Reg Base, Reg Index, uint8_t Scale, int32_t Disp = 0) {
  MemOperand M;
  M.Base = Base;
  M.Index = Index;
  M.Scale = Scale;
  M.Disp = Disp;
  return M;
}

MemOperand memAbs(uint64_t Addr) {
  MemOperand M;
  M.Disp = static_cast<int32_t>(Addr);
  return M;
}

/// _start: set up arguments, call Func, exit(0) via syscall.
void emitStart(ProgramBuilder &PB, Asm::Label Func) {
  Asm &A = PB.text();
  A.endbr64();
  A.movRI(Reg::RDI, 5, 4);
  A.movRI(Reg::RSI, 0x1000, 4);
  A.movRI(Reg::RDX, 0x2000, 4);
  A.callL(Func);
  A.movRI(Reg::RAX, 60, 4); // exit(0)
  A.xorRR(Reg::RDI, Reg::RDI, 4);
  A.syscall();
}

} // namespace

std::optional<BuiltBinary> weirdEdgeBinary() {
  ProgramBuilder PB("weird_edge");
  Asm &A = PB.text();

  Asm::Label Start = A.newLabel(), F = A.newLabel(), End = A.newLabel();
  Asm::Label CaseA = A.newLabel(), CaseB = A.newLabel();

  A.bind(Start);
  emitStart(PB, F);

  // The §2 example, 64-bit. The cmp immediate plants the 0xc3 (ret) byte;
  // under rsi==rdx aliasing the final jmp lands on it: a ROP gadget.
  A.bind(F);
  uint64_t CmpAddr = A.currentAddr();
  A.cmpRI(Reg::RDI, 0xc3, 4); // 81 ff c3 00 00 00 : ret byte at +2
  uint64_t RetByteAddr = CmpAddr + 2;
  A.jccL(Cond::A, End);
  A.movRR(Reg::RAX, Reg::RDI, 4); // rax = zext(edi)

  std::vector<Asm::Label> Entries;
  for (unsigned I = 0; I <= 0xc3; ++I)
    Entries.push_back(I % 3 == 0 ? CaseA : (I % 3 == 1 ? CaseB : End));
  uint64_t Table = PB.jumpTable(Entries);

  A.movRM(Reg::RAX, memBIS(Reg::None, Reg::RAX, 8,
                           static_cast<int32_t>(Table)),
          8);                          // rax = a_jt
  A.movMR(memB(Reg::RSI), Reg::RAX, 8); // *[rsi] = a_jt
  A.movMI(memB(Reg::RDX), static_cast<int32_t>(RetByteAddr), 8);
  A.jmpM(memB(Reg::RSI)); // jmp *[rsi]

  A.bind(CaseA);
  A.movRI(Reg::RAX, 1, 4);
  A.ret();
  A.bind(CaseB);
  A.movRI(Reg::RAX, 2, 4);
  A.ret();
  A.bind(End);
  A.xorRR(Reg::RAX, Reg::RAX, 4);
  A.ret();

  return PB.build(Start);
}

std::optional<BuiltBinary> jumpTableBinary(unsigned Cases,
                                           unsigned GuardSlack) {
  ProgramBuilder PB("jump_table");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel(), Default = A.newLabel();
  Asm::Label Done = A.newLabel();

  A.bind(Start);
  emitStart(PB, F);

  std::vector<Asm::Label> CaseLabels;
  for (unsigned I = 0; I < Cases; ++I)
    CaseLabels.push_back(A.newLabel());
  uint64_t Table = PB.jumpTable(CaseLabels);

  // int f(unsigned x) { switch (x) { case 0..N-1: ...; default: -1; } }
  A.bind(F);
  A.endbr64();
  A.cmpRI(Reg::RDI, static_cast<int32_t>(Cases - 1 + GuardSlack), 4);
  A.jccL(Cond::A, Default);
  A.movRR(Reg::RAX, Reg::RDI, 4); // zero-extend the index
  A.jmpM(memBIS(Reg::None, Reg::RAX, 8, static_cast<int32_t>(Table)));
  for (unsigned I = 0; I < Cases; ++I) {
    A.bind(CaseLabels[I]);
    A.movRI(Reg::RAX, static_cast<int64_t>(I * I + 1), 4);
    A.jmpL(Done);
  }
  A.bind(Default);
  A.movRI(Reg::RAX, -1, 4);
  A.bind(Done);
  A.ret();

  return PB.build(Start);
}

std::optional<BuiltBinary> straightlineBinary() {
  ProgramBuilder PB("straightline");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel();

  A.bind(Start);
  emitStart(PB, F);

  // long f(long a, long b, long c) { return (a + 3*b) ^ (c >> 2); }
  A.bind(F);
  A.endbr64();
  A.leaRM(Reg::RAX, memBIS(Reg::RDI, Reg::RSI, 2), 8); // a + 2b
  A.addRR(Reg::RAX, Reg::RSI, 8);                      // a + 3b
  A.movRR(Reg::RCX, Reg::RDX, 8);
  A.shiftRI(Mnemonic::Sar, Reg::RCX, 2, 8);
  A.arithRR(Mnemonic::Xor, Reg::RAX, Reg::RCX, 8);
  A.ret();

  return PB.build(Start);
}

std::optional<BuiltBinary> branchLoopBinary() {
  ProgramBuilder PB("branch_loop");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel();
  Asm::Label Loop = A.newLabel(), LoopEnd = A.newLabel();
  Asm::Label Else = A.newLabel(), Join = A.newLabel();

  A.bind(Start);
  emitStart(PB, F);

  // long f(long n) { long s = 0; for (int i = 8; i != 0; --i) s += n;
  //                  if (n > 3) s += 1; else s -= 1; return s; }
  A.bind(F);
  A.endbr64();
  A.pushR(Reg::RBP);
  A.movRR(Reg::RBP, Reg::RSP, 8);
  A.xorRR(Reg::RAX, Reg::RAX, 8); // s = 0
  A.movRI(Reg::RCX, 8, 4);        // i = 8
  A.bind(Loop);
  A.addRR(Reg::RAX, Reg::RDI, 8);
  A.decR(Reg::RCX, 4);
  A.jccL(Cond::NE, Loop);
  A.bind(LoopEnd);
  A.cmpRI(Reg::RDI, 3, 8);
  A.jccL(Cond::LE, Else);
  A.addRI(Reg::RAX, 1, 8);
  A.jmpL(Join);
  A.bind(Else);
  A.subRI(Reg::RAX, 1, 8);
  A.bind(Join);
  A.popR(Reg::RBP);
  A.ret();

  return PB.build(Start);
}

std::optional<BuiltBinary> callChainBinary() {
  ProgramBuilder PB("call_chain");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel(), G = A.newLabel(),
             H = A.newLabel();
  uint64_t Puts = PB.plt("puts");
  uint64_t Msg = PB.rodataAlloc(16);
  PB.rodataBytes(Msg, {'h', 'i', 0});

  A.bind(Start);
  emitStart(PB, F);

  // f: spills a callee-saved register, calls puts and g.
  A.bind(F);
  A.endbr64();
  A.pushR(Reg::RBX);
  A.movRR(Reg::RBX, Reg::RDI, 8);
  A.movRI(Reg::RDI, static_cast<int64_t>(Msg), 8);
  A.callAbs(Puts);
  A.movRR(Reg::RDI, Reg::RBX, 8);
  A.callL(G);
  A.addRR(Reg::RAX, Reg::RBX, 8);
  A.popR(Reg::RBX);
  A.ret();

  // g: stack frame with locals, calls h.
  A.bind(G);
  A.endbr64();
  A.subRI(Reg::RSP, 0x18, 8);
  A.movMR(memB(Reg::RSP, 0x8), Reg::RDI, 8);
  A.callL(H);
  A.arithRM(Mnemonic::Add, Reg::RAX, memB(Reg::RSP, 0x8), 8);
  A.addRI(Reg::RSP, 0x18, 8);
  A.ret();

  // h: leaf.
  A.bind(H);
  A.endbr64();
  A.leaRM(Reg::RAX, memBIS(Reg::RDI, Reg::RDI, 4), 8); // 5*x
  A.ret();

  return PB.build(Start);
}

namespace {

/// The callback program, parameterized by the callback's address (0 on the
/// first pass). The layout is deterministic, so building twice — once to
/// learn cb's address, once with the pointers filled in — is exact.
std::optional<BuiltBinary> buildCallback(uint64_t CbAddr, uint64_t &CbOut) {
  ProgramBuilder PB("callback");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel(), CB = A.newLabel();

  uint64_t MutableFptr = PB.dataAlloc(8);
  uint64_t RoFptr = PB.rodataAlloc(8);
  PB.dataU64(MutableFptr, CbAddr);
  PB.rodataU64(RoFptr, CbAddr);

  A.bind(Start);
  emitStart(PB, F);

  // f: calls through a mutable global (unresolved, column C), then
  // through a read-only global (resolved, column A).
  A.bind(F);
  A.endbr64();
  A.subRI(Reg::RSP, 8, 8);
  A.movRM(Reg::RAX, memAbs(MutableFptr), 8);
  A.callR(Reg::RAX); // unresolvable: the global may have been rewritten
  A.movRM(Reg::RAX, memAbs(RoFptr), 8);
  A.callR(Reg::RAX); // resolvable: .rodata content is a known constant
  A.addRI(Reg::RSP, 8, 8);
  A.ret();

  A.bind(CB);
  A.endbr64();
  A.movRI(Reg::RAX, 42, 4);
  A.ret();

  auto Built = PB.build(Start);
  if (Built)
    CbOut = PB.text().labelAddr(CB);
  return Built;
}

} // namespace

std::optional<BuiltBinary> callbackBinary() {
  uint64_t CbAddr = 0;
  if (!buildCallback(0, CbAddr))
    return std::nullopt;
  uint64_t Unused = 0;
  return buildCallback(CbAddr, Unused);
}

namespace {

/// The offset-table program, parameterized by the case addresses (empty on
/// the first pass). As with buildCallback, the layout is deterministic, so
/// two passes fill the 32-bit offsets exactly.
std::optional<BuiltBinary> buildOffsetTable(const std::vector<uint64_t> &Cases,
                                            std::vector<uint64_t> &CasesOut) {
  constexpr unsigned NumCases = 6;
  ProgramBuilder PB("offset_table");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel(), Default = A.newLabel();
  Asm::Label Done = A.newLabel();
  std::vector<Asm::Label> CaseLabels;
  for (unsigned I = 0; I < NumCases; ++I)
    CaseLabels.push_back(A.newLabel());

  uint64_t Table = PB.rodataAlloc(4 * NumCases, 8);
  for (unsigned I = 0; I < NumCases; ++I) {
    uint32_t Off =
        Cases.empty() ? 0 : static_cast<uint32_t>(Cases[I] - Table);
    PB.rodataBytes(Table + 4 * I,
                   {static_cast<uint8_t>(Off), static_cast<uint8_t>(Off >> 8),
                    static_cast<uint8_t>(Off >> 16),
                    static_cast<uint8_t>(Off >> 24)});
  }

  A.bind(Start);
  emitStart(PB, F);

  // int f(unsigned x): the gcc -fPIC switch. The table holds 32-bit
  // offsets relative to its own base; the dispatch sign-extends an entry
  // and adds the base back.
  A.bind(F);
  A.endbr64();
  A.cmpRI(Reg::RDI, NumCases - 1, 4);
  A.jccL(Cond::A, Default);
  A.movRR(Reg::RAX, Reg::RDI, 4); // zero-extend the index
  A.movRI(Reg::RCX, static_cast<int64_t>(Table), 8);
  A.movsxdRM(Reg::RDX, memBIS(Reg::RCX, Reg::RAX, 4));
  A.addRR(Reg::RDX, Reg::RCX, 8);
  A.jmpR(Reg::RDX);
  for (unsigned I = 0; I < NumCases; ++I) {
    A.bind(CaseLabels[I]);
    A.movRI(Reg::RAX, static_cast<int64_t>(2 * I + 1), 4);
    A.jmpL(Done);
  }
  A.bind(Default);
  A.movRI(Reg::RAX, -1, 4);
  A.bind(Done);
  A.ret();

  auto Built = PB.build(Start);
  if (Built) {
    CasesOut.clear();
    for (Asm::Label L : CaseLabels)
      CasesOut.push_back(A.labelAddr(L));
  }
  return Built;
}

} // namespace

std::optional<BuiltBinary> offsetTableBinary() {
  std::vector<uint64_t> Cases;
  if (!buildOffsetTable({}, Cases))
    return std::nullopt;
  std::vector<uint64_t> Unused;
  return buildOffsetTable(Cases, Unused);
}

std::optional<BuiltBinary> callbackTableBinary() {
  constexpr unsigned Handlers = 4;
  ProgramBuilder PB("callback_table");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel(), Skip = A.newLabel();
  std::vector<Asm::Label> Fns;
  for (unsigned I = 0; I < Handlers; ++I)
    Fns.push_back(A.newLabel());
  // jumpTable entries are filled with label addresses at build() time, so
  // a function-pointer array needs no double build.
  uint64_t Table = PB.jumpTable(Fns);

  A.bind(Start);
  emitStart(PB, F);

  // long f(unsigned idx): bounded dispatch through a read-only handler
  // array — an indirect *call* the VSA resolves (column A).
  A.bind(F);
  A.endbr64();
  A.cmpRI(Reg::RDI, Handlers - 1, 4);
  A.jccL(Cond::A, Skip);
  A.subRI(Reg::RSP, 8, 8);
  A.movRR(Reg::RAX, Reg::RDI, 4); // zero-extend the index
  A.callM(memBIS(Reg::None, Reg::RAX, 8, static_cast<int32_t>(Table)));
  A.addRI(Reg::RSP, 8, 8);
  A.bind(Skip);
  A.ret();

  for (unsigned I = 0; I < Handlers; ++I) {
    A.bind(Fns[I]);
    A.endbr64();
    A.movRI(Reg::RAX, static_cast<int64_t>(10 + I), 4);
    A.ret();
  }

  return PB.build(Start);
}

std::optional<BuiltBinary> maskedTableBinary() {
  constexpr unsigned NumCases = 8; // mask 7
  ProgramBuilder PB("masked_table");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel(), Done = A.newLabel();
  std::vector<Asm::Label> CaseLabels;
  for (unsigned I = 0; I < NumCases; ++I)
    CaseLabels.push_back(A.newLabel());
  uint64_t Table = PB.jumpTable(CaseLabels);

  A.bind(Start);
  emitStart(PB, F);

  // int f(unsigned long x) { switch (x & 7) ... } — no cmp/ja guard; the
  // bound is the and-mask, visible only to the extended interval queries.
  A.bind(F);
  A.endbr64();
  A.movRR(Reg::RAX, Reg::RDI, 8);
  A.arithRI(Mnemonic::And, Reg::RAX, NumCases - 1, 8);
  A.jmpM(memBIS(Reg::None, Reg::RAX, 8, static_cast<int32_t>(Table)));
  for (unsigned I = 0; I < NumCases; ++I) {
    A.bind(CaseLabels[I]);
    A.movRI(Reg::RAX, static_cast<int64_t>(3 * I + 1), 4);
    A.jmpL(Done);
  }
  A.bind(Done);
  A.ret();

  return PB.build(Start);
}

std::optional<BuiltBinary> widenedGuardTableBinary() {
  constexpr unsigned NumCases = 4;
  ProgramBuilder PB("widened_guard_table");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel(), Loop = A.newLabel();
  Asm::Label Default = A.newLabel(), Done = A.newLabel();
  std::vector<Asm::Label> CaseLabels;
  for (unsigned I = 0; I < NumCases; ++I)
    CaseLabels.push_back(A.newLabel());
  uint64_t Table = PB.jumpTable(CaseLabels);

  A.bind(Start);
  emitStart(PB, F);

  // int f(unsigned x, long n): the cmp/ja guard dominates a counted loop.
  // The loop's widening joins drop the range clause on x before the
  // dispatch is reached, so the first lifting attempt cannot bound the
  // table; the VSA restart re-runs the function protecting the interval
  // of the index expression across widening and resolves it.
  A.bind(F);
  A.endbr64();
  A.cmpRI(Reg::RDI, NumCases - 1, 4);
  A.jccL(Cond::A, Default);
  A.movRR(Reg::RAX, Reg::RDI, 4); // index: untouched by the loop
  A.movRI(Reg::RCX, 8, 4);
  A.xorRR(Reg::RDX, Reg::RDX, 8);
  A.bind(Loop);
  A.addRI(Reg::RDX, 3, 8);
  A.decR(Reg::RCX, 4);
  A.jccL(Cond::NE, Loop);
  A.jmpM(memBIS(Reg::None, Reg::RAX, 8, static_cast<int32_t>(Table)));
  for (unsigned I = 0; I < NumCases; ++I) {
    A.bind(CaseLabels[I]);
    A.movRI(Reg::RAX, static_cast<int64_t>(I + 1), 4);
    A.jmpL(Done);
  }
  A.bind(Default);
  A.movRI(Reg::RAX, -1, 4);
  A.bind(Done);
  A.ret();

  return PB.build(Start);
}

std::optional<BuiltBinary> ret2winBinary() {
  ProgramBuilder PB("ret2win");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel();
  uint64_t Memset = PB.plt("memset");

  A.bind(Start);
  emitStart(PB, F);

  // f: char buf[32]; memset(buf, 0, 48);   // 48 > 32: obligation violated
  A.bind(F);
  A.endbr64();
  A.subRI(Reg::RSP, 0x28, 8);
  A.leaRM(Reg::RDI, memB(Reg::RSP, 0), 8);
  A.xorRR(Reg::RSI, Reg::RSI, 4);
  A.movRI(Reg::RDX, 48, 4);
  A.callAbs(Memset);
  A.addRI(Reg::RSP, 0x28, 8);
  A.ret();

  return PB.build(Start);
}

std::optional<BuiltBinary> overflowBinary() {
  ProgramBuilder PB("overflow");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel();

  A.bind(Start);
  emitStart(PB, F);

  // f: long buf[4]; buf[x] = 7;   // unbounded index: may hit the return
  // address; lifting must reject the function.
  A.bind(F);
  A.endbr64();
  A.subRI(Reg::RSP, 0x20, 8);
  A.movMI(memBIS(Reg::RSP, Reg::RDI, 8, 0), 7, 8);
  A.addRI(Reg::RSP, 0x20, 8);
  A.ret();

  return PB.build(Start);
}

std::optional<BuiltBinary> stackProbeBinary() {
  ProgramBuilder PB("stack_probe");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel(), Probe = A.newLabel();

  A.bind(Start);
  emitStart(PB, F);

  // The §5.3 zip shape: rax is set, an internal call happens (the probe),
  // then rax is used to move rsp. The lifter cannot establish that the
  // call preserved rax, so the stack pointer is no longer rsp0-linear.
  A.bind(F);
  A.endbr64();
  A.movRI(Reg::RAX, 0x1400, 4);
  A.callL(Probe);
  A.subRR(Reg::RSP, Reg::RAX, 8);
  A.movMI(memB(Reg::RSP, 0), 0, 8);
  A.addRI(Reg::RSP, 0x1400, 8);
  A.ret();

  A.bind(Probe);
  A.endbr64();
  A.ret();

  return PB.build(Start);
}

std::optional<BuiltBinary> nonstandardRspBinary() {
  ProgramBuilder PB("nonstandard_rsp");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel();

  A.bind(Start);
  emitStart(PB, F);

  // The §5.3 ssh shape: rsp is reloaded from memory.
  A.bind(F);
  A.endbr64();
  A.subRI(Reg::RSP, 0x190, 8);
  A.movMR(memB(Reg::RSP, 0x40), Reg::RSP, 8);
  A.movRM(Reg::RSP, memB(Reg::RSP, 0x40), 8);
  A.addRI(Reg::RSP, 0x190 + 56, 8);
  A.ret();

  return PB.build(Start);
}

std::optional<BuiltBinary> concurrencyBinary() {
  ProgramBuilder PB("spawns_thread");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel();
  uint64_t PthreadCreate = PB.plt("pthread_create");

  A.bind(Start);
  emitStart(PB, F);

  A.bind(F);
  A.endbr64();
  A.subRI(Reg::RSP, 0x18, 8);
  A.leaRM(Reg::RDI, memB(Reg::RSP, 8), 8);
  A.xorRR(Reg::RSI, Reg::RSI, 4);
  A.callAbs(PthreadCreate);
  A.addRI(Reg::RSP, 0x18, 8);
  A.ret();

  return PB.build(Start);
}

std::optional<BuiltBinary> explodingBinary(unsigned Stages) {
  ProgramBuilder PB("exploding");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel();

  A.bind(Start);
  emitStart(PB, F);

  // K stages; each stores one of two distinct function pointers into its
  // own stack slot. States holding different text pointers are never
  // joined (§4's exception), so the state count doubles per stage: the
  // paper's "large number of states that could not be joined".
  std::vector<Asm::Label> Dummies;
  for (unsigned I = 0; I < 2 * Stages; ++I)
    Dummies.push_back(A.newLabel());

  A.bind(F);
  A.endbr64();
  int32_t Frame = static_cast<int32_t>(8 * Stages + 8);
  A.subRI(Reg::RSP, Frame, 8);
  for (unsigned I = 0; I < Stages; ++I) {
    Asm::Label Else = A.newLabel(), Join = A.newLabel();
    A.testRR(Reg::RDI, Reg::RDI, 4);
    A.jccL(Cond::E, Else);
    A.leaRL(Reg::RAX, Dummies[2 * I]);
    A.jmpL(Join);
    A.bind(Else);
    A.leaRL(Reg::RAX, Dummies[2 * I + 1]);
    A.bind(Join);
    A.movMR(memB(Reg::RSP, static_cast<int32_t>(8 * I)), Reg::RAX, 8);
    A.shiftRI(Mnemonic::Shr, Reg::RDI, 1, 4);
  }
  A.addRI(Reg::RSP, Frame, 8);
  A.ret();

  for (Asm::Label D : Dummies) {
    A.bind(D);
    A.ret();
  }

  return PB.build(Start);
}

std::optional<BuiltBinary> recursionBinary() {
  ProgramBuilder PB("recursion");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), Fact = A.newLabel(), Base = A.newLabel();
  Asm::Label IsEven = A.newLabel(), IsOdd = A.newLabel();
  Asm::Label EvenT = A.newLabel(), OddF = A.newLabel();

  A.bind(Start);
  emitStart(PB, Fact);

  // long fact(long n) { return n <= 1 ? 1 : n * fact(n - 1); }
  A.bind(Fact);
  A.endbr64();
  A.cmpRI(Reg::RDI, 1, 8);
  A.jccL(Cond::LE, Base);
  A.pushR(Reg::RBX);
  A.movRR(Reg::RBX, Reg::RDI, 8);
  A.leaRM(Reg::RDI, memB(Reg::RDI, -1), 8);
  A.callL(Fact);
  A.imulRR(Reg::RAX, Reg::RBX, 8);
  A.popR(Reg::RBX);
  A.ret();
  A.bind(Base);
  A.movRI(Reg::RAX, 1, 4);
  A.ret();

  // Mutual recursion: is_even(n) = n ? is_odd(n-1) : 1.
  A.bind(IsEven);
  A.endbr64();
  A.testRR(Reg::RDI, Reg::RDI, 8);
  A.jccL(Cond::E, EvenT);
  A.subRI(Reg::RDI, 1, 8);
  A.subRI(Reg::RSP, 8, 8);
  A.callL(IsOdd);
  A.addRI(Reg::RSP, 8, 8);
  A.ret();
  A.bind(EvenT);
  A.movRI(Reg::RAX, 1, 4);
  A.ret();

  A.bind(IsOdd);
  A.endbr64();
  A.testRR(Reg::RDI, Reg::RDI, 8);
  A.jccL(Cond::E, OddF);
  A.subRI(Reg::RDI, 1, 8);
  A.subRI(Reg::RSP, 8, 8);
  A.callL(IsEven);
  A.addRI(Reg::RSP, 8, 8);
  A.ret();
  A.bind(OddF);
  A.xorRR(Reg::RAX, Reg::RAX, 4);
  A.ret();

  PB.exportFunc("fact", Fact);
  PB.exportFunc("is_even", IsEven);
  PB.exportFunc("is_odd", IsOdd);
  return PB.build(Start);
}

std::optional<BuiltBinary> overlappingBinary() {
  ProgramBuilder PB("overlapping");
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel(), F = A.newLabel(), Dispatch = A.newLabel();
  Asm::Label Container = A.newLabel();

  A.bind(Start);
  emitStart(PB, F);

  A.bind(F);
  A.endbr64();
  A.jmpL(Dispatch);

  // movabs rax, imm64 whose immediate starts with "31 c0 c3": decoded from
  // offset +2 this is `xor eax, eax; ret` -- two valid decodings of the
  // same bytes, the hand-obfuscated shape the paper's abstract alludes to.
  A.bind(Container);
  uint64_t ContainerAddr = A.currentAddr();
  A.bytes({0x48, 0xb8, 0x31, 0xc0, 0xc3, 0x90, 0x90, 0x90, 0x90, 0x90});
  A.movRI(Reg::RAX, 1, 4);
  A.ret();

  A.bind(Dispatch);
  A.testRR(Reg::RDI, Reg::RDI, 4);
  A.jccL(Cond::NE, Container); // rdi != 0: execute the movabs, return 1
  // rdi == 0: jump *into* the movabs immediate: xor eax,eax; ret.
  uint64_t GadgetAddr = ContainerAddr + 2;
  A.byte(0xe9);
  A.u32(static_cast<uint32_t>(
      static_cast<int32_t>(static_cast<int64_t>(GadgetAddr) -
                           static_cast<int64_t>(A.currentAddr() + 4))));

  return PB.build(Start);
}

// --- random program generation ---------------------------------------------

namespace {

const Reg Scratch[] = {Reg::RAX, Reg::RCX, Reg::RDX, Reg::RSI,
                       Reg::R8,  Reg::R9,  Reg::R10, Reg::R11};

Reg pickReg(Rng &R) { return Scratch[R.below(std::size(Scratch))]; }

} // namespace

Asm::Label emitRandomFunction(ProgramBuilder &PB, Rng &R,
                              const GenOptions &Opts,
                              const std::vector<Asm::Label> &Callees) {
  Asm &A = PB.text();
  Asm::Label Entry = A.newLabel();
  A.bind(Entry);
  A.endbr64();

  bool SaveRbx = R.chance(1, 2);
  int32_t Frame = static_cast<int32_t>(16 * R.range(1, 6));
  A.pushR(Reg::RBP);
  A.movRR(Reg::RBP, Reg::RSP, 8);
  if (SaveRbx)
    A.pushR(Reg::RBX);
  A.subRI(Reg::RSP, Frame, 8);
  if (SaveRbx)
    A.movRR(Reg::RBX, Reg::RDI, 8);

  // Valid spill slots: [rbp - k] for k in the frame (below the saved rbx).
  auto Slot = [&]() {
    int32_t Lo = SaveRbx ? 16 : 8;
    return -static_cast<int32_t>(
        Lo + 8 * R.range(0, Frame / 8 - 1));
  };

  int64_t Budget = static_cast<int64_t>(Opts.TargetInstrs);
  bool DidTable = false, DidExternal = false, DidCallback = false;
  while (Budget > 0) {
    unsigned Kind = static_cast<unsigned>(R.below(100));
    if (Kind < 35) {
      // Arithmetic / data-movement run over the whole supported subset.
      unsigned N = static_cast<unsigned>(R.range(2, 6));
      for (unsigned I = 0; I < N; ++I) {
        Reg D = pickReg(R), S = pickReg(R);
        switch (R.below(12)) {
        case 0:
          A.movRI(D, R.range(-1000, 1000), 8);
          break;
        case 1:
          A.addRR(D, S, 8);
          break;
        case 2:
          A.arithRR(Mnemonic::Xor, D, S, 8);
          break;
        case 3:
          A.imulRRI(D, S, static_cast<int32_t>(R.range(2, 9)), 8);
          break;
        case 4:
          A.leaRM(D, memBIS(S, pickReg(R), 4, static_cast<int32_t>(R.range(0, 64))), 8);
          break;
        case 5:
          A.shiftRI(R.chance(1, 2) ? Mnemonic::Shl : Mnemonic::Sar, D,
                    static_cast<uint8_t>(R.range(1, 7)), 8);
          break;
        case 6:
          A.rotRI(R.chance(1, 2) ? Mnemonic::Rol : Mnemonic::Ror, D,
                  static_cast<uint8_t>(R.range(1, 31)), 8);
          break;
        case 7:
          A.bswapR(D, 8);
          break;
        case 8: { // conditional move on a fresh comparison
          A.cmpRI(S, static_cast<int32_t>(R.range(-4, 4)), 8);
          static const Cond CC[] = {Cond::E, Cond::NE, Cond::L, Cond::GE};
          A.cmovRR(CC[R.below(4)], D, pickReg(R), 8);
          break;
        }
        case 9: { // boolean materialization
          A.cmpRI(S, static_cast<int32_t>(R.range(-4, 4)), 8);
          A.setccR(Cond::A, Reg::RAX);
          A.movzxRR(Reg::RAX, Reg::RAX, 1, 8);
          break;
        }
        case 10: { // unsigned division by a nonzero constant
          A.movRR(Reg::RAX, S, 8);
          A.xorRR(Reg::RDX, Reg::RDX, 4);
          A.movRI(Reg::RCX, R.range(1, 100), 8);
          A.divR(Reg::RCX, 8);
          break;
        }
        case 11:
          A.bsfRR(D, S, 8);
          break;
        }
      }
      Budget -= N;
    } else if (Kind < 55) {
      // Spill / reload, occasionally sub-word.
      Reg D = pickReg(R);
      switch (R.below(4)) {
      case 0:
        A.movMR(memB(Reg::RBP, Slot()), D, 8);
        break;
      case 1:
        A.movRM(D, memB(Reg::RBP, Slot()), 8);
        break;
      case 2: { // byte store + zero-extending reload
        int32_t S8 = Slot();
        A.movMR(memB(Reg::RBP, S8), D, 1);
        A.movzxRM(D, memB(Reg::RBP, S8), 1, 8);
        break;
      }
      case 3: { // word store + sign-extending reload
        int32_t S16 = Slot();
        A.movMR(memB(Reg::RBP, S16), D, 2);
        A.movsxRM(D, memB(Reg::RBP, S16), 2, 8);
        break;
      }
      }
      Budget -= 1;
    } else if (Kind < 75) {
      // Diamond.
      Asm::Label Else = A.newLabel(), Join = A.newLabel();
      Reg C = pickReg(R);
      A.cmpRI(C, static_cast<int32_t>(R.range(-8, 8)), 8);
      static const Cond Conds[] = {Cond::E,  Cond::NE, Cond::L,
                                   Cond::GE, Cond::B,  Cond::A};
      A.jccL(Conds[R.below(std::size(Conds))], Else);
      A.addRI(pickReg(R), static_cast<int32_t>(R.range(1, 9)), 8);
      A.jmpL(Join);
      A.bind(Else);
      A.subRI(pickReg(R), static_cast<int32_t>(R.range(1, 9)), 8);
      A.bind(Join);
      Budget -= 5;
    } else if (SaveRbx && R.chance(Opts.ArgWritePct, 100)) {
      // Writes and reads through the saved pointer argument (rbx == rdi0):
      // relations against the stack frame are assumption-based, relations
      // against other pointer derivatives branch the memory model.
      Reg V = pickReg(R);
      int32_t Off = static_cast<int32_t>(8 * R.range(0, 3));
      if (R.chance(2, 3))
        A.movMR(memB(Reg::RBX, Off), V, 8);
      else
        A.movRM(V, memB(Reg::RBX, Off), 8);
      Budget -= 1;
    } else if (Kind < 85) {
      // Bounded loop.
      Asm::Label Loop = A.newLabel();
      A.movRI(Reg::RCX, R.range(2, 9), 4);
      A.bind(Loop);
      A.addRI(Reg::RAX, 3, 8);
      A.decR(Reg::RCX, 4);
      A.jccL(Cond::NE, Loop);
      Budget -= 4;
    } else if (Kind < 90 && !Callees.empty()) {
      A.callL(R.pick(Callees));
      Budget -= 1;
    } else if (Kind < 95 && !DidExternal &&
               R.chance(Opts.ExternalPct, 100)) {
      DidExternal = true;
      uint64_t Ext = PB.plt("lib_fn_" + std::to_string(R.below(6)));
      A.callAbs(Ext);
      Budget -= 1;
    } else if (!DidTable && R.chance(Opts.JumpTablePct, 100)) {
      // switch (x & bounded) via jump table.
      DidTable = true;
      unsigned Cases = static_cast<unsigned>(R.range(3, 9));
      std::vector<Asm::Label> CaseL;
      for (unsigned I = 0; I < Cases; ++I)
        CaseL.push_back(A.newLabel());
      Asm::Label Default = A.newLabel(), Done = A.newLabel();
      uint64_t Table = PB.jumpTable(CaseL);
      Reg X = pickReg(R);
      A.movRR(Reg::RAX, X, 4);
      A.cmpRI(Reg::RAX, static_cast<int32_t>(Cases - 1), 4);
      A.jccL(Cond::A, Default);
      A.movRR(Reg::RAX, Reg::RAX, 4); // re-zero-extend
      A.jmpM(memBIS(Reg::None, Reg::RAX, 8, static_cast<int32_t>(Table)));
      for (unsigned I = 0; I < Cases; ++I) {
        A.bind(CaseL[I]);
        A.movRI(Reg::RDX, static_cast<int64_t>(I + 1), 8);
        A.jmpL(Done);
      }
      A.bind(Default);
      A.xorRR(Reg::RDX, Reg::RDX, 8);
      A.bind(Done);
      Budget -= Cases + 5;
    } else if (!DidCallback && R.chance(Opts.CallbackPct, 100)) {
      // Unresolvable callback through a mutable global.
      DidCallback = true;
      uint64_t Fptr = PB.dataAlloc(8);
      A.movRM(Reg::RAX, memAbs(Fptr), 8);
      A.callR(Reg::RAX);
      Budget -= 2;
    } else if (R.chance(Opts.UnresJumpPct, 100)) {
      // Unresolvable computed goto through a mutable global (annotation B);
      // the taken path cannot be explored, the guard keeps the function
      // otherwise verifiable.
      Asm::Label Skip = A.newLabel();
      uint64_t Gptr = PB.dataAlloc(8);
      Reg C = pickReg(R);
      A.cmpRI(C, 0, 8);
      A.jccL(Cond::NE, Skip);
      A.movRM(Reg::RAX, memAbs(Gptr), 8);
      A.jmpR(Reg::RAX);
      A.bind(Skip);
      Budget -= 4;
      // Only one per function: the annotation stops that path anyway.
      Budget = Budget > 0 ? Budget : 0;
      break;
    } else {
      A.nop();
      Budget -= 1;
    }
  }

  A.addRI(Reg::RSP, Frame, 8);
  if (SaveRbx)
    A.popR(Reg::RBX);
  A.popR(Reg::RBP);
  A.ret();
  return Entry;
}

std::optional<BuiltBinary> randomBinary(const GenOptions &Opts) {
  ProgramBuilder PB(Opts.Name);
  Rng R(Opts.Seed);
  Asm &A = PB.text();
  Asm::Label Start = A.newLabel();
  Asm::Label Main = A.newLabel();

  A.bind(Start);
  emitStart(PB, Main);

  // Leaf-first so earlier functions can be callees of later ones.
  std::vector<Asm::Label> Funcs;
  for (unsigned I = 0; I + 1 < Opts.NumFuncs; ++I)
    Funcs.push_back(emitRandomFunction(PB, R, Opts, Funcs));

  A.bind(Main);
  A.endbr64();
  A.subRI(Reg::RSP, 8, 8);
  for (Asm::Label F : Funcs)
    A.callL(F);
  if (Funcs.empty()) {
    Rng R2(Opts.Seed + 1);
    static_cast<void>(R2);
    A.movRI(Reg::RAX, 0, 4);
  }
  A.addRI(Reg::RSP, 8, 8);
  A.ret();

  return PB.build(Start);
}

std::optional<BuiltBinary> randomLibrary(const GenOptions &Opts) {
  ProgramBuilder PB(Opts.Name);
  Rng R(Opts.Seed);
  std::vector<Asm::Label> Funcs;
  for (unsigned I = 0; I < Opts.NumFuncs; ++I) {
    Asm::Label F = emitRandomFunction(PB, R, Opts, Funcs);
    Funcs.push_back(F);
    PB.exportFunc("fn_" + std::to_string(I), F);
  }
  return PB.build(Funcs.empty() ? std::optional<Asm::Label>{} : Funcs[0],
                  /*SharedObject=*/true);
}

} // namespace hglift::corpus
