//===- Suites.h - The synthetic Xen-shaped evaluation suite ----*- C++ -*-===//
//
// Builds the full Table 1 population: the same eight directory rows as the
// paper's Xen 4.12 case study, with the same *mix of outcomes* per row
// (lifted / unprovable return address / concurrency / timeout), scaled by
// a configurable factor so the bench fits a workstation budget. Binaries
// are lifted from their entry points; "shared objects" expose function
// symbols lifted individually, like the paper's use of nm (§5.1).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_CORPUS_SUITES_H
#define HGLIFT_CORPUS_SUITES_H

#include "corpus/Programs.h"

namespace hglift::corpus {

/// One row of Table 1.
struct SuiteRow {
  std::string Directory; ///< e.g. ".../bin"
  bool IsLibrary = false;

  /// Paper's counts for this row (printed alongside ours).
  struct Mix {
    unsigned Lifted = 0;
    unsigned Unprovable = 0;
    unsigned Concurrency = 0;
    unsigned Timeout = 0;
    unsigned total() const {
      return Lifted + Unprovable + Concurrency + Timeout;
    }
  };
  Mix Paper;
  Mix Ours; ///< scaled target mix

  /// The binaries (or, for library rows, shared objects whose exported
  /// functions are the units).
  std::vector<BuiltBinary> Binaries;
};

struct SuiteOptions {
  /// Divisor applied to the paper's library-row counts (the binary rows
  /// are kept at full count; they are small).
  unsigned LibraryScale = 20;
  /// Target instructions per generated function (paper: ~185 instrs per
  /// library function).
  unsigned MeanFuncSize = 110;
  uint64_t Seed = 0xce5;
};

/// Build all eight rows of the Table 1 suite.
std::vector<SuiteRow> buildXenSuite(const SuiteOptions &Opts);

/// The six CoreUtils-shaped binaries of Table 2 (hexdump, od, wc, tar, du,
/// gzip), sized proportionally to the paper's instruction counts.
struct Table2Entry {
  std::string Name;
  unsigned PaperInstrs;
  unsigned PaperIndirections;
  BuiltBinary Binary;
};
std::vector<Table2Entry> buildCoreutilsSuite(uint64_t Seed = 0xc0de,
                                             unsigned Scale = 10);

} // namespace hglift::corpus

#endif // HGLIFT_CORPUS_SUITES_H
