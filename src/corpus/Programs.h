//===- Programs.h - Handcrafted and generated corpus programs --*- C++ -*-===//
//
// The concrete programs of the evaluation corpus:
//
//   * weirdEdgeBinary       — the §2 / Figure 1 example (64-bit port) with
//                             overlapping instructions and a reachable ROP
//                             gadget under pointer aliasing;
//   * jumpTableBinary       — a compiler-style switch (bounded indirect jmp);
//   * straightlineBinary    — quickstart arithmetic;
//   * branchLoopBinary      — diamonds and bounded loops (join/widening);
//   * callChainBinary       — internal call chain + an external call;
//   * callbackBinary        — function pointer through mutable global
//                             (unresolved call, column C) and through
//                             .rodata (resolved, column A);
//   * ret2winBinary         — §5.3 stack overflow via memset obligation;
//   * overflowBinary        — return address clobbered: lifting must fail;
//   * stackProbeBinary      — §5.3 stack probing: verification error;
//   * nonstandardRspBinary  — §5.3 ssh-style rsp restoration: error;
//   * concurrencyBinary     — pthread_create: out of scope;
//   * explodingBinary       — unjoinable text-pointer states: timeout;
//   * randomBinary/Library  — seeded generators for the Table 1 / Figure 3
//                             population.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_CORPUS_PROGRAMS_H
#define HGLIFT_CORPUS_PROGRAMS_H

#include "corpus/ProgramBuilder.h"
#include "support/Rng.h"

namespace hglift::corpus {

std::optional<BuiltBinary> weirdEdgeBinary();
/// Switch over a jump table. GuardSlack loosens the bounds check by that
/// many indices (a buggy "patch"): the lifter then reads past the table
/// and must annotate the indirection instead of resolving it.
std::optional<BuiltBinary> jumpTableBinary(unsigned Cases = 8,
                                           unsigned GuardSlack = 0);
std::optional<BuiltBinary> straightlineBinary();
std::optional<BuiltBinary> branchLoopBinary();
std::optional<BuiltBinary> callChainBinary();
std::optional<BuiltBinary> callbackBinary();
/// A gcc -fPIC style switch: 32-bit offsets relative to the table base,
/// sign-extended and added back (`movsxd` + `add`). Resolvable only by the
/// extended VSA offset-table idiom; annotation B under --no-vsa.
std::optional<BuiltBinary> offsetTableBinary();
/// Bounded dispatch through a .rodata function-pointer array
/// (`call [tbl + idx*8]` under a cmp/ja guard): a VSA-resolved indirect
/// call (column A) whose edges carry jump-table provenance.
std::optional<BuiltBinary> callbackTableBinary();
/// A switch whose index is bounded by an `and` mask instead of a cmp/ja
/// guard. Only the extended (VSA) interval queries understand the mask;
/// annotation B under --no-vsa.
std::optional<BuiltBinary> maskedTableBinary();
/// The bounding guard dominates a counted loop whose widening joins erase
/// the index interval before the dispatch is reached: resolving the table
/// requires the VSA restart with protected intervals (vsa_restarts > 0).
std::optional<BuiltBinary> widenedGuardTableBinary();
std::optional<BuiltBinary> ret2winBinary();
std::optional<BuiltBinary> overflowBinary();
std::optional<BuiltBinary> stackProbeBinary();
std::optional<BuiltBinary> nonstandardRspBinary();
std::optional<BuiltBinary> concurrencyBinary();
std::optional<BuiltBinary> explodingBinary(unsigned Stages = 14);
/// Direct recursion (factorial) and mutual recursion (even/odd): the
/// context-free call treatment (§4.2) handles cycles in the call graph.
std::optional<BuiltBinary> recursionBinary();
/// Obfuscated overlapping instructions: a *direct* jump into the middle of
/// a movabs whose immediate bytes encode a hidden `xor eax,eax; ret`
/// gadget. Both decodings coexist in the HG (weird edge on a direct jmp).
std::optional<BuiltBinary> overlappingBinary();

/// Options for the random program generators.
struct GenOptions {
  uint64_t Seed = 1;
  /// Number of functions to generate.
  unsigned NumFuncs = 4;
  /// Rough size of each function in instructions (pre-noise).
  unsigned TargetInstrs = 60;
  /// Fraction (percent) of functions that contain a jump table.
  unsigned JumpTablePct = 20;
  /// Fraction (percent) of functions that call an external function.
  unsigned ExternalPct = 30;
  /// Fraction (percent) of functions containing an unresolved callback.
  unsigned CallbackPct = 0;
  /// Fraction (percent) of functions containing an unresolvable indirect
  /// jump (annotation B): a jump through a mutable global.
  unsigned UnresJumpPct = 0;
  /// Weight (percent points out of 100 block picks) of writes through the
  /// first pointer argument — these exercise the nondeterministic memory
  /// model (alias/separation branching) and the stack-frame separation
  /// obligations; they are the dominant verification cost.
  unsigned ArgWritePct = 8;
  std::string Name = "random";
};

/// An executable whose _start calls the first generated function.
std::optional<BuiltBinary> randomBinary(const GenOptions &Opts);
/// A shared object exporting every generated function (fn_0, fn_1, ...).
std::optional<BuiltBinary> randomLibrary(const GenOptions &Opts);

/// Emit one random function body into PB; returns its entry label.
/// Callees may be called (context-free) from the generated body.
x86::Asm::Label emitRandomFunction(ProgramBuilder &PB, Rng &R,
                                   const GenOptions &Opts,
                                   const std::vector<x86::Asm::Label> &Callees);

} // namespace hglift::corpus

#endif // HGLIFT_CORPUS_PROGRAMS_H
