#include "corpus/Suites.h"

namespace hglift::corpus {

namespace {

/// Scale a paper count down, keeping at least One if the original was
/// nonzero.
unsigned scaleCount(unsigned Paper, unsigned Div) {
  if (Paper == 0)
    return 0;
  unsigned S = Paper / Div;
  return S == 0 ? 1 : S;
}

BuiltBinary mustBuild(std::optional<BuiltBinary> BB) {
  // Corpus construction is deterministic; a failure here is a programming
  // error surfaced immediately by the suite tests.
  return BB ? std::move(*BB) : BuiltBinary{};
}

/// A binary designed to fail return-address verification (§5.1's
/// "unprovable return address" column); variants keep the row diverse.
BuiltBinary unprovableVariant(Rng &R) {
  switch (R.below(3)) {
  case 0:
    return mustBuild(overflowBinary());
  case 1:
    return mustBuild(stackProbeBinary());
  default:
    return mustBuild(nonstandardRspBinary());
  }
}

} // namespace

std::vector<SuiteRow> buildXenSuite(const SuiteOptions &Opts) {
  Rng R(Opts.Seed);
  std::vector<SuiteRow> Rows;

  struct RowSpec {
    const char *Dir;
    bool Lib;
    SuiteRow::Mix Paper;
    unsigned PaperInstrs; // for sizing
  };
  // Table 1 of the paper (w + x + y + z per row).
  const RowSpec Specs[] = {
      {".../bin", false, {12, 2, 1, 0}, 6751},
      {".../xen/bin", false, {7, 1, 8, 1}, 2433},
      {".../libexec", false, {1, 0, 0, 0}, 82},
      {".../sbin", false, {25, 1, 4, 0}, 8858},
      {".../lib", true, {1874, 29, 0, 4}, 353433},
      {".../xenfsimage", true, {106, 3, 0, 0}, 17184},
      {".../dist-packages", true, {16, 0, 0, 0}, 379},
      {".../lowlevel", true, {119, 0, 0, 0}, 10651},
  };

  for (const RowSpec &Spec : Specs) {
    SuiteRow Row;
    Row.Directory = Spec.Dir;
    Row.IsLibrary = Spec.Lib;
    Row.Paper = Spec.Paper;

    unsigned Div = Spec.Lib ? Opts.LibraryScale : 1;
    Row.Ours.Lifted = scaleCount(Spec.Paper.Lifted, Div);
    Row.Ours.Unprovable = scaleCount(Spec.Paper.Unprovable, Div);
    Row.Ours.Concurrency = scaleCount(Spec.Paper.Concurrency, Div);
    Row.Ours.Timeout = scaleCount(Spec.Paper.Timeout, Div);

    if (!Spec.Lib) {
      // Binary rows: one ELF per unit, mix of handcrafted + random.
      unsigned MeanSize =
          Spec.Paper.total() ? Spec.PaperInstrs / Spec.Paper.total() : 60;
      for (unsigned I = 0; I < Row.Ours.Lifted; ++I) {
        switch (I % 6) {
        case 0:
          Row.Binaries.push_back(mustBuild(jumpTableBinary(
              static_cast<unsigned>(R.range(4, 12)))));
          break;
        case 1:
          Row.Binaries.push_back(mustBuild(callChainBinary()));
          break;
        case 2:
          Row.Binaries.push_back(mustBuild(callbackBinary()));
          break;
        case 3:
          Row.Binaries.push_back(mustBuild(
              I % 2 ? recursionBinary() : overlappingBinary()));
          break;
        default: {
          GenOptions G;
          G.Seed = R.next();
          G.NumFuncs = static_cast<unsigned>(R.range(2, 6));
          G.TargetInstrs =
              static_cast<unsigned>(MeanSize / G.NumFuncs + R.below(40));
          G.Name = std::string(Spec.Dir) + "/prog_" + std::to_string(I);
          Row.Binaries.push_back(mustBuild(randomBinary(G)));
        }
        }
      }
      for (unsigned I = 0; I < Row.Ours.Unprovable; ++I)
        Row.Binaries.push_back(unprovableVariant(R));
      for (unsigned I = 0; I < Row.Ours.Concurrency; ++I)
        Row.Binaries.push_back(mustBuild(concurrencyBinary()));
      for (unsigned I = 0; I < Row.Ours.Timeout; ++I)
        Row.Binaries.push_back(mustBuild(explodingBinary(14)));
    } else {
      // Library rows: shared objects exporting the functions. One .so per
      // outcome category keeps the bookkeeping simple: the lifted row is a
      // single library with Ours.Lifted exported functions.
      if (Row.Ours.Lifted) {
        GenOptions G;
        G.Seed = R.next();
        G.NumFuncs = Row.Ours.Lifted;
        G.TargetInstrs = Opts.MeanFuncSize;
        G.JumpTablePct = 8;
        G.ExternalPct = 30;
        // The paper's library columns are dominated by callbacks (C) and
        // unresolvable computed jumps (B) in .../lib and xenfsimage.
        if (std::string(Spec.Dir).find("lib") != std::string::npos ||
            std::string(Spec.Dir).find("fsimage") != std::string::npos) {
          G.CallbackPct = 25;
          G.UnresJumpPct = 12;
        }
        G.Name = std::string(Spec.Dir) + "/libgen.so";
        Row.Binaries.push_back(mustBuild(randomLibrary(G)));
      }
      for (unsigned I = 0; I < Row.Ours.Unprovable; ++I)
        Row.Binaries.push_back(unprovableVariant(R));
      for (unsigned I = 0; I < Row.Ours.Timeout; ++I)
        Row.Binaries.push_back(mustBuild(explodingBinary(14)));
    }
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

std::vector<Table2Entry> buildCoreutilsSuite(uint64_t Seed, unsigned Scale) {
  // Table 2 of the paper: binaries, instruction counts, indirections.
  struct Spec {
    const char *Name;
    unsigned Instrs;
    unsigned Indirections;
  };
  const Spec Specs[] = {{"hexdump", 2515, 11}, {"od", 3040, 11},
                        {"wc", 445, 0},        {"tar", 5730, 5},
                        {"du", 883, 3},        {"gzip", 3465, 7}};

  Rng R(Seed);
  std::vector<Table2Entry> Out;
  for (const Spec &S : Specs) {
    Table2Entry E;
    E.Name = S.Name;
    E.PaperInstrs = S.Instrs;
    E.PaperIndirections = S.Indirections;

    GenOptions G;
    G.Seed = R.next();
    unsigned Target = S.Instrs / Scale;
    G.NumFuncs = std::max(2u, Target / 60);
    G.TargetInstrs = std::max(20u, Target / G.NumFuncs);
    // Indirections come from jump tables; wc has none.
    G.JumpTablePct = S.Indirections == 0 ? 0 : 40;
    G.ExternalPct = 30;
    G.Name = S.Name;
    E.Binary = mustBuild(randomBinary(G));
    Out.push_back(std::move(E));
  }
  return Out;
}

} // namespace hglift::corpus
