#include "hg/Lifter.h"

#include "diag/Trace.h"
#include "hg/StateMemo.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <mutex>

namespace hglift::hg {

using expr::Expr;
using expr::VarClass;
using pred::Pred;
using sem::CtrlKind;
using sem::StepOut;
using sem::Succ;
using sem::SymState;
using x86::Instr;
using x86::Mnemonic;

const char *liftOutcomeName(LiftOutcome O) {
  switch (O) {
  case LiftOutcome::Lifted:
    return "lifted";
  case LiftOutcome::UnprovableReturn:
    return "unprovable-return";
  case LiftOutcome::Concurrency:
    return "concurrency";
  case LiftOutcome::Timeout:
    return "timeout";
  }
  return "?";
}

size_t BinaryResult::totalInstructions() const {
  std::set<uint64_t> All;
  for (const FunctionResult &F : Functions) {
    auto A = F.Graph.instructionAddrs();
    All.insert(A.begin(), A.end());
  }
  return All.size();
}

size_t BinaryResult::totalStates() const {
  size_t N = 0;
  for (const FunctionResult &F : Functions)
    N += F.Graph.numStates();
  return N;
}

unsigned BinaryResult::totalA() const {
  unsigned N = 0;
  for (const FunctionResult &F : Functions)
    N += F.ResolvedIndirections;
  return N;
}
unsigned BinaryResult::totalB() const {
  unsigned N = 0;
  for (const FunctionResult &F : Functions)
    N += F.UnresolvedJumps;
  return N;
}
unsigned BinaryResult::totalC() const {
  unsigned N = 0;
  for (const FunctionResult &F : Functions)
    N += F.UnresolvedCalls;
  return N;
}

std::vector<std::string> BinaryResult::allObligations() const {
  std::vector<std::string> Out;
  for (const FunctionResult &F : Functions)
    for (const std::string &O : F.Obligations)
      if (std::find(Out.begin(), Out.end(), O) == Out.end())
        Out.push_back(O);
  return Out;
}

std::vector<diag::Diagnostic> BinaryResult::allDiagnostics() const {
  std::vector<diag::Diagnostic> Out;
  for (const FunctionResult &F : Functions)
    Out.insert(Out.end(), F.Diags.begin(), F.Diags.end());
  return Out;
}

LiftArena::LiftArena(const elf::BinaryImage &Img, const LiftConfig &Cfg)
    : Ctx(std::make_unique<expr::ExprContext>()),
      Solver(std::make_unique<smt::RelationSolver>(*Ctx, Cfg.Solver)),
      Exec(std::make_unique<sem::SymExec>(*Ctx, *Solver, Img, Cfg.Sym)) {}

LiftArena::~LiftArena() = default;

Lifter::Lifter(const elf::BinaryImage &Img, LiftConfig Cfg)
    : Img(Img), Cfg(Cfg) {}

Lifter::~Lifter() = default;

expr::ExprContext &Lifter::exprContext() {
  if (!Scratch)
    Scratch = std::make_shared<LiftArena>(Img, Cfg);
  return Scratch->ctx();
}

smt::RelationSolver &Lifter::solver() {
  if (!Scratch)
    Scratch = std::make_shared<LiftArena>(Img, Cfg);
  return Scratch->solver();
}

uint64_t Lifter::ctrlHash(const SymState &S) const {
  if (!Cfg.CtrlImmediateException)
    return 0;
  // §4: states holding *different* immediate pointers into the text
  // section (in registers or in memory clauses) are not joined — those
  // immediates will very likely decide future control flow. Jump-table
  // reads (Deref values) are fingerprinted the same way. Only structural
  // expression hashes are mixed in (never interned-pointer identities):
  // vertex keys must be reproducible across runs, contexts, and thread
  // schedules for the parallel engine's determinism guarantee.
  uint64_t H = 0;
  auto Mix = [&H](uint64_t A, uint64_t B) {
    uint64_t V = A * 0x9e3779b97f4a7c15ULL + B;
    V ^= V >> 29;
    H ^= V * 0xbf58476d1ce4e5b9ULL;
  };
  for (unsigned I = 0; I < x86::NumGPRs; ++I) {
    const Expr *V = S.P.reg64(x86::regFromNum(I));
    if (V && V->isConst() && Img.isTextPointer(V->constVal()))
      Mix(I + 1, V->constVal());
  }
  for (const pred::MemCell &C : S.P.cells()) {
    if (C.Val->isConst() && Img.isTextPointer(C.Val->constVal())) {
      Mix(C.Addr->hashValue(), C.Val->constVal());
    } else if (C.Val->isDeref()) {
      // Only jump-table-shaped reads (constant read-only base) are
      // control-relevant; fingerprinting stack-slot reads would defeat
      // joining across ordinary diamonds.
      expr::LinearForm LF = expr::linearize(C.Val->derefAddr());
      if (LF.Constant != 0 &&
          Img.isReadOnly(static_cast<uint64_t>(LF.Constant)))
        Mix(C.Addr->hashValue(), C.Val->hashValue());
    }
  }
  return H;
}

FunctionCache::~FunctionCache() = default;

FunctionResult Lifter::liftFunction(uint64_t Entry) {
  // Single chokepoint for both the serial and the parallel engine: a
  // cache hit skips the Step-1 fixpoint entirely (the cache re-validated
  // it through Step-2); a miss lifts and populates the store. Only fully
  // lifted results are offered — failures are cheap to reproduce.
  if (Cfg.Cache)
    if (std::optional<FunctionResult> Hit = Cfg.Cache->lookup(Img, Cfg, Entry))
      return std::move(*Hit);
  auto Arena = std::make_shared<LiftArena>(Img, Cfg);
  FunctionResult FR = liftFunctionIn(*Arena, Entry);
  FR.Arena = std::move(Arena);
  if (Cfg.Cache && FR.Outcome == LiftOutcome::Lifted)
    Cfg.Cache->store(Img, Cfg, FR);
  return FR;
}

FunctionResult Lifter::liftFunctionIn(LiftArena &A, uint64_t Entry) {
  auto Start = std::chrono::steady_clock::now();
  auto Elapsed = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  };

  expr::ExprContext &Ctx = A.ctx();
  sem::SymExec &Exec = A.exec();

  // Attribute this worker's trace events (including the solver's) to the
  // function being lifted, and open the lift span.
  diag::TraceContext::FunctionScope TraceFn(Entry);
  if (diag::Tracer *T = diag::Tracer::active()) {
    diag::TraceEvent E("lift_begin");
    E.hex("fn", Entry);
    T->emit(std::move(E));
  }

  FunctionResult FR;
  FR.Entry = Entry;
  FR.RetSym = Ctx.mkVar(VarClass::RetSym, "S_" + hexStr(Entry), 64, Entry);

  Exec.setStats(&FR.Stats);
  A.solver().setLiftStats(&FR.Stats);

  auto mkInit = [&]() {
    SymState Init;
    Init.P = Pred::entry(Ctx, FR.RetSym);
    // Seed the memory model with the return-address region.
    const Expr *Rsp0 = Init.P.reg64(x86::Reg::RSP);
    Init.M.Forest.push_back(mem::MemTree{{smt::Region{Rsp0, 8}}, {}});
    return Init;
  };
  SymState Init = mkInit();

  HoareGraph &G = FR.Graph;
  G.Initial = VertexKey{Entry, ctrlHash(Init)};

  // Abstraction-order memo for the covered/subsumption probes below.
  StateLeqMemo Memo;
  Memo.setEnabled(Cfg.LeqMemo);
  Memo.setLiftStats(&FR.Stats);

  // The worklist. Ordered mode keeps states keyed by instruction address
  // and always pops the lowest address (FIFO among states at one address),
  // approximating reverse post-order; LIFO mode is the historical bag,
  // kept for the ablation bench. Both modes are exhaustive — only the
  // exploration *order* (and hence join batching) differs.
  std::map<uint64_t, std::deque<SymState>> Ordered;
  std::deque<std::pair<SymState, uint64_t>> Lifo;
  size_t Pending = 0;
  auto push = [&](SymState S, uint64_t Rip) {
    ++Pending;
    if (Cfg.OrderedWorklist)
      Ordered[Rip].push_back(std::move(S));
    else
      Lifo.emplace_back(std::move(S), Rip);
  };
  auto pop = [&]() -> std::pair<SymState, uint64_t> {
    --Pending;
    if (Cfg.OrderedWorklist) {
      auto It = Ordered.begin();
      uint64_t Rip = It->first;
      SymState S = std::move(It->second.front());
      It->second.pop_front();
      if (It->second.empty())
        Ordered.erase(It);
      return {std::move(S), Rip};
    }
    auto P = std::move(Lifo.back());
    Lifo.pop_back();
    return P;
  };

  push(std::move(Init), Entry);
  uint64_t Serial = 0;
  // Annotation/resolution sites (re-exploration of a vertex after joins
  // must not double-count).
  std::set<uint64_t> ResolvedSites, UnresJumpSites, UnresCallSites;
  // VSA retry (docs/VSA.md): indices of table-shaped indirections that
  // lost their bound — usually to a widening join — are protected across
  // subsequent joins and the function is re-explored from scratch in the
  // same arena (expressions intern identically across attempts, so the
  // protected pointers stay valid and recognizable). The attempt cap and
  // the join-count cutoff below keep termination.
  std::vector<const Expr *> Protected;
  constexpr unsigned MaxVsaRestarts = 2;
  unsigned Attempt = 0;
  bool NewProtected = false;
  auto restart = [&]() {
    ++Attempt;
    ++FR.Stats.VsaRestarts;
    NewProtected = false;
    G.Vertices.clear();
    G.Edges.clear();
    FR.Diags.clear();
    FR.Obligations.clear();
    FR.Callees.clear();
    FR.MayReturn = false;
    ResolvedSites.clear();
    UnresJumpSites.clear();
    UnresCallSites.clear();
    Ordered.clear();
    Lifo.clear();
    Pending = 0;
    Serial = 0;
    push(mkInit(), Entry);
  };
  auto finish = [&]() {
    FR.ResolvedIndirections = static_cast<unsigned>(ResolvedSites.size());
    FR.UnresolvedJumps = static_cast<unsigned>(UnresJumpSites.size());
    FR.UnresolvedCalls = static_cast<unsigned>(UnresCallSites.size());
    FR.Seconds = Elapsed();
    FR.Stats.Seconds = FR.Seconds;
    // Overlapping-instruction edges are residual overapproximations too:
    // surface each as an annotation with the edge in its provenance.
    for (const Edge &W : G.weirdEdges()) {
      diag::Diagnostic D;
      D.Kind = diag::DiagKind::UnsoundnessAnnotation;
      D.Message = "edge " + hexStr(W.From.Rip) + " -> " + hexStr(W.To.Rip) +
                  " jumps into the middle of another decoded instruction "
                  "(weird edge)";
      D.Prov.Origin = diag::Component::Lifter;
      D.Prov.Addr = W.From.Rip;
      D.Prov.Mnemonic = W.Instr.str();
      D.Prov.Worker = diag::workerOrdinal();
      FR.Diags.push_back(std::move(D));
    }
    // Deterministic diagnostic order, independent of exploration history:
    // (address, kind, message), stable for equal keys.
    std::stable_sort(FR.Diags.begin(), FR.Diags.end(),
                     [](const diag::Diagnostic &X, const diag::Diagnostic &Y) {
                       if (X.Prov.Addr != Y.Prov.Addr)
                         return X.Prov.Addr < Y.Prov.Addr;
                       if (X.Kind != Y.Kind)
                         return X.Kind < Y.Kind;
                       return X.Message < Y.Message;
                     });
    for (diag::Diagnostic &D : FR.Diags)
      D.Prov.FunctionEntry = Entry;
    // FR is about to move out of this frame; the arena must not keep sinks
    // into it (consumers may re-run the arena's executor, e.g. HoareChecker).
    Exec.setStats(nullptr);
    A.solver().setLiftStats(nullptr);
    if (diag::Tracer *T = diag::Tracer::active()) {
      diag::TraceEvent E("lift_end");
      E.hex("fn", Entry);
      E.field("outcome", liftOutcomeName(FR.Outcome));
      E.field("vertices", FR.Stats.Vertices);
      E.field("joins", FR.Stats.Joins);
      E.field("widenings", FR.Stats.Widenings);
      E.field("steps", FR.Stats.Steps);
      E.field("forks", FR.Stats.Forks);
      E.field("solver_queries", FR.Stats.SolverQueries);
      E.field("z3_queries", FR.Stats.Z3Queries);
      E.field("rel_cache_hits", FR.Stats.RelCacheHits);
      E.field("rel_cache_misses", FR.Stats.RelCacheMisses);
      E.field("leq_hits", FR.Stats.LeqHits);
      E.field("leq_misses", FR.Stats.LeqMisses);
      E.field("diags", static_cast<uint64_t>(FR.Diags.size()));
      E.field("seconds", FR.Seconds);
      T->emit(std::move(E));
    }
  };
  // FailAddr: the instruction the failure is attached to (0 when none is
  // in scope, e.g. budget exhaustion). Rejections whose diagnostic the
  // semantics already produced (Out.VerifError) pass AddDiag = false.
  auto fail = [&](LiftOutcome O, const std::string &Why, uint64_t FailAddr = 0,
                  bool AddDiag = true) {
    FR.Outcome = O;
    FR.FailReason = Why;
    if (AddDiag) {
      diag::Diagnostic D;
      D.Kind = diag::DiagKind::VerificationError;
      D.Message = Why;
      D.Prov.Origin = diag::Component::Lifter;
      D.Prov.Addr = FailAddr;
      D.Prov.QueryChain = A.solver().recentQueries();
      D.Prov.Worker = diag::workerOrdinal();
      FR.Diags.push_back(std::move(D));
    }
    finish();
    return FR;
  };
  // Unsoundness annotations for unresolved indirections (columns B/C).
  auto unresDiag = [&](const Instr &I, std::string Msg) {
    diag::Diagnostic D;
    D.Kind = diag::DiagKind::UnsoundnessAnnotation;
    D.Message = std::move(Msg);
    D.Prov.Origin = diag::Component::Lifter;
    D.Prov.Addr = I.Addr;
    D.Prov.Mnemonic = I.str();
    D.Prov.QueryChain = A.solver().recentQueries();
    D.Prov.Worker = diag::workerOrdinal();
    return D;
  };

  for (;;) {
    if (!Pending) {
      // Fixpoint reached. If this attempt discovered table-shaped
      // indirections whose index lost its bound, protect those indices
      // and re-explore; otherwise we are done.
      if (Cfg.Sym.Vsa && NewProtected && Attempt < MaxVsaRestarts) {
        restart();
        continue;
      }
      break;
    }
    if (G.Vertices.size() > Cfg.MaxVertices)
      return fail(LiftOutcome::Timeout,
                  "vertex fuel exhausted (partial graph retained)");
    // The progress guard (!empty) guarantees even a microscopic budget
    // leaves at least one explored vertex in the partial graph.
    if (Cfg.MaxSeconds > 0 && Elapsed() > Cfg.MaxSeconds &&
        !G.Vertices.empty())
      return fail(LiftOutcome::Timeout,
                  "wall-clock budget exhausted (partial graph retained)");

    auto [Sigma, Rip] = pop();

    if (diag::Tracer *T = diag::Tracer::active()) {
      diag::TraceEvent E("fixpoint_iter");
      E.hex("fn", Entry);
      E.hex("rip", Rip);
      E.field("pending", static_cast<uint64_t>(Pending));
      E.field("vertices", static_cast<uint64_t>(G.Vertices.size()));
      T->emit(std::move(E));
    }

#ifdef HGLIFT_TRACE_LIFT
    fprintf(stderr,
            "pop rip=%llx bag=%zu verts=%zu cells=%zu ranges=%zu clob=%zu "
            "forest=%zu exprs=%zu\n",
            (unsigned long long)Rip, Pending, G.Vertices.size(),
            Sigma.P.cells().size(), Sigma.P.ranges().size(),
            Sigma.M.Clobbered.size(), Sigma.M.allRegions().size(),
            Ctx.numExprs());
#endif

    // --- Algorithm 1 lines 3-9: find a compatible vertex, join -----------
    VertexKey Key{Rip, ctrlHash(Sigma)};
    Vertex *V = nullptr;
    if (Cfg.EnableJoin) {
      V = G.find(Key);
    } else {
      // Ablation: no joining — only exact subsumption stops exploration.
      for (auto It = G.Vertices.lower_bound(VertexKey{Rip, 0});
           It != G.Vertices.end() && It->first.Rip == Rip; ++It)
        if (Memo.predLeq(Sigma.P, It->second.State.P) &&
            Memo.memLeq(Sigma.M, It->second.State.M)) {
          V = &It->second;
          break;
        }
      if (!V)
        Key.CtrlHash = ++Serial; // force a fresh vertex
    }

    SymState Cur;
    if (V && V->Explored) {
      if (Memo.predLeq(Sigma.P, V->State.P) &&
          Memo.memLeq(Sigma.M, V->State.M))
        continue; // line 4: already covered
      bool Widen = V->JoinCount >= Cfg.WidenAfterJoins;
      // Protected table indices keep their interval bound through a
      // bounded number of widened joins (then full widening resumes, so
      // termination is unaffected).
      const std::vector<const Expr *> *Prot =
          (Widen && !Protected.empty() &&
           V->JoinCount < Cfg.WidenAfterJoins + 8)
              ? &Protected
              : nullptr;
      Cur.P = Pred::join(Ctx, V->State.P, Sigma.P, Widen, Prot);
      Cur.M = mem::MemModel::join(V->State.M, Sigma.M);
      V->JoinCount++;
      ++FR.Stats.Joins;
      if (Widen)
        ++FR.Stats.Widenings;
      V->State = Cur;
    } else {
      Cur = Sigma;
      Vertex NV;
      NV.Key = Key;
      NV.State = Cur;
      auto [It, Inserted] = G.Vertices.emplace(Key, std::move(NV));
      static_cast<void>(Inserted);
      V = &It->second;
      ++FR.Stats.Vertices;
    }

    // --- fetch + decode ----------------------------------------------------
    size_t Avail;
    const uint8_t *Bytes = Img.bytesAt(Rip, Avail);
    if (!Bytes || !Img.isExec(Rip))
      return fail(LiftOutcome::UnprovableReturn,
                  "control flow reaches unmapped/non-executable address " +
                      hexStr(Rip),
                  Rip);
    Instr I = x86::decodeInstr(Bytes, Avail, Rip);
    if (!I.isValid())
      return fail(LiftOutcome::UnprovableReturn,
                  "undecodable instruction at " + hexStr(Rip), Rip);
    V->Instr = I;
    V->Explored = true;

    // --- Algorithm 1 lines 10-17: explore ----------------------------------
    StepOut Out = Exec.step(Cur, I, FR.RetSym);
    for (std::string &O : Out.Obligations)
      if (std::find(FR.Obligations.begin(), FR.Obligations.end(), O) ==
          FR.Obligations.end())
        FR.Obligations.push_back(std::move(O));
    // Adopt the step's structured diagnostics. Obligation diags dedup in
    // lockstep with the strings above (re-visits of a vertex regenerate
    // the same assumption text); error diags always land.
    for (diag::Diagnostic &D : Out.Diags) {
      if (D.Kind == diag::DiagKind::ProofObligation) {
        bool Dup = false;
        for (const diag::Diagnostic &Seen : FR.Diags)
          if (Seen.Kind == D.Kind && Seen.Message == D.Message) {
            Dup = true;
            break;
          }
        if (Dup)
          continue;
      }
      FR.Diags.push_back(std::move(D));
    }
    if (Out.UnboundedIndex &&
        std::find(Protected.begin(), Protected.end(), Out.UnboundedIndex) ==
            Protected.end()) {
      Protected.push_back(Out.UnboundedIndex);
      NewProtected = true;
    }
    if (Out.SawConcurrency)
      return fail(LiftOutcome::Concurrency,
                  "call to concurrency primitive " + Out.ExtName, I.Addr);
    if (Out.VerifError)
      // The semantics already attached the structured diagnostic.
      return fail(LiftOutcome::UnprovableReturn, Out.VerifReason, I.Addr,
                  /*AddDiag=*/false);

    // Column A counts resolved indirection *sites*: an indirect jmp/call
    // whose targets were all overapproximatively established. Re-visits of
    // the same vertex do not re-count (the set tracks sites).
    bool Indirect = (I.Mn == Mnemonic::Jmp || I.Mn == Mnemonic::Call) &&
                    I.numOperands() >= 1 && !I.Ops[0].isImm();
    bool AnyUnres = false;
    for (const Succ &S : Out.Succs)
      AnyUnres |= S.K == CtrlKind::UnresJump || S.K == CtrlKind::UnresCall;
    if (Indirect && !AnyUnres && !Out.Succs.empty())
      ResolvedSites.insert(I.Addr);

    for (Succ &S : Out.Succs) {
      Edge E;
      E.From = Key;
      E.Instr = I;
      E.Kind = S.K;
      E.ViaTable = S.ViaTable;
      switch (S.K) {
      case CtrlKind::Fall:
      case CtrlKind::CallExternal: {
        E.To = VertexKey{S.NextAddr, ctrlHash(S.S)};
        G.addEdge(E);
        push(std::move(S.S), S.NextAddr);
        break;
      }
      case CtrlKind::CallInternal: {
        E.To = VertexKey{S.NextAddr, ctrlHash(S.S)};
        // Per-successor callee: a VSA-resolved indirect call fans out to
        // one CallInternal successor per table entry.
        E.CalleeAddr = S.CalleeAddr ? S.CalleeAddr : Out.CalleeAddr;
        FR.Callees.insert(E.CalleeAddr);
        G.addEdge(E);
        push(std::move(S.S), S.NextAddr);
        break;
      }
      case CtrlKind::Ret: {
        E.To = VertexKey{RetTargetRip, 0};
        G.addEdge(E);
        FR.MayReturn = true;
        break;
      }
      case CtrlKind::UnresJump: {
        E.To = VertexKey{UnresolvedTargetRip, 0};
        G.addEdge(E);
        if (UnresJumpSites.insert(I.Addr).second)
          FR.Diags.push_back(unresDiag(
              I, "indirect jump target could not be bounded (rip = " +
                     (S.RipVal ? S.RipVal->str(Ctx) : std::string("?")) +
                     "); path abandoned"));
        // Annotation: stop exploration along this path (Algorithm 1 l.13).
        break;
      }
      case CtrlKind::UnresCall: {
        E.To = VertexKey{S.NextAddr, ctrlHash(S.S)};
        G.addEdge(E);
        if (UnresCallSites.insert(I.Addr).second)
          FR.Diags.push_back(unresDiag(
              I, "indirect call " +
                     (Out.ExtName.empty()
                          ? "(rip = " + (S.RipVal ? S.RipVal->str(Ctx)
                                                  : std::string("?")) +
                                ")"
                          : "to " + Out.ExtName) +
                     " could not be resolved; treated as unknown external "
                     "call"));
        // Treated as an unknown external function: continue (§5.1).
        push(std::move(S.S), S.NextAddr);
        break;
      }
      case CtrlKind::Terminal:
        break;
      }
    }
  }

  finish();
  return FR;
}

BinaryResult Lifter::liftFrom(std::vector<uint64_t> Roots) {
  auto Start = std::chrono::steady_clock::now();
  BinaryResult BR;
  BR.Name = Img.Name;

  // Each function is lifted exactly once, in its own arena; the seen-set
  // tracks both the roots and callees discovered while lifting. Because
  // every lift is isolated, the result set — and after the sort below, the
  // result *order* — does not depend on thread count or scheduling.
  std::set<uint64_t> Queued(Roots.begin(), Roots.end());
  std::vector<FunctionResult> Results;

  unsigned NThreads =
      Cfg.Threads == 0 ? ThreadPool::defaultThreads() : Cfg.Threads;

  if (NThreads <= 1) {
    std::deque<uint64_t> Work(Queued.begin(), Queued.end());
    while (!Work.empty()) {
      uint64_t Entry = Work.front();
      Work.pop_front();
      FunctionResult FR = liftFunction(Entry);
      for (uint64_t Callee : FR.Callees)
        if (Queued.insert(Callee).second)
          Work.push_back(Callee);
      Results.push_back(std::move(FR));
    }
  } else {
    std::mutex Mu; // guards Queued and Results
    ThreadPool Pool(NThreads);
    std::function<void(uint64_t)> LiftTask = [&](uint64_t Entry) {
      FunctionResult FR = liftFunction(Entry);
      std::lock_guard<std::mutex> G(Mu);
      for (uint64_t Callee : FR.Callees)
        if (Queued.insert(Callee).second)
          Pool.submit([&LiftTask, Callee] { LiftTask(Callee); });
      Results.push_back(std::move(FR));
    };
    {
      std::lock_guard<std::mutex> G(Mu);
      for (uint64_t Entry : Queued)
        Pool.submit([&LiftTask, Entry] { LiftTask(Entry); });
    }
    Pool.waitIdle();
  }

  // Deterministic merge: order by entry address (also fixes which failure
  // becomes the binary-level outcome, independent of discovery order).
  std::sort(Results.begin(), Results.end(),
            [](const FunctionResult &A, const FunctionResult &B) {
              return A.Entry < B.Entry;
            });
  for (FunctionResult &FR : Results) {
    if (FR.Outcome != LiftOutcome::Lifted &&
        BR.Outcome == LiftOutcome::Lifted) {
      BR.Outcome = FR.Outcome;
      BR.FailReason = "function " + hexStr(FR.Entry) + ": " + FR.FailReason;
    }
    BR.Total.merge(FR.Stats);
    BR.Functions.push_back(std::move(FR));
  }

  // §4.2.2 reachability: a call's return site is only truly reachable if
  // the callee may return. Compute the may-return fixpoint over the call
  // graph (monotone decreasing), then drop unreachable vertices/edges.
  std::map<uint64_t, FunctionResult *> ByEntry;
  for (FunctionResult &F : BR.Functions)
    ByEntry[F.Entry] = &F;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (FunctionResult &F : BR.Functions) {
      if (!F.MayReturn)
        continue;
      // Recompute: is a Ret edge reachable from the entry, given callees'
      // current may-return state?
      std::set<VertexKey> Seen{F.Graph.Initial};
      std::deque<VertexKey> Q{F.Graph.Initial};
      bool RetReachable = false;
      while (!Q.empty()) {
        VertexKey K = Q.front();
        Q.pop_front();
        for (const Edge &E : F.Graph.Edges) {
          if (!(E.From == K))
            continue;
          if (E.To.Rip == RetTargetRip) {
            RetReachable = true;
            continue;
          }
          if (E.Kind == CtrlKind::CallInternal) {
            auto It = ByEntry.find(E.CalleeAddr);
            if (It != ByEntry.end() && !It->second->MayReturn)
              continue; // return site unreachable
          }
          if (Seen.insert(E.To).second)
            Q.push_back(E.To);
        }
      }
      if (!RetReachable) {
        F.MayReturn = false;
        Changed = true;
      }
    }
  }

  BR.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return BR;
}

BinaryResult Lifter::liftBinary() { return liftFrom({Img.Entry}); }

BinaryResult Lifter::liftLibrary() {
  std::vector<uint64_t> Roots;
  for (const elf::Symbol &S : Img.Functions)
    Roots.push_back(S.Addr);
  return liftFrom(Roots);
}

} // namespace hglift::hg
