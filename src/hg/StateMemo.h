//===- StateMemo.h - Memoized abstraction-order probes ---------*- C++ -*-===//
//
// Algorithm 1 probes the abstraction order (Pred::leq / MemModel::leq) at
// every join point: each new symbolic state is compared against every
// existing vertex state at the same address, and most probes repeat —
// loops keep presenting the same (state, invariant) pair until the vertex
// stabilizes. This memo caches those probes per lifting arena.
//
// The key is a mix of the two sides' structural digests (Pred::digest /
// MemModel::digest). Digests can collide, so an entry stores full copies
// of both sides and is only trusted after operator== confirms them — a
// collision is a miss, never a wrong answer. Entries are overwritten on
// key collision and the maps are cleared at a fixed cap, which keeps the
// memo O(1) per probe and bounded per function.
//
// Not synchronized: one memo per lifting arena, used by one thread at a
// time (the same discipline as ExprContext).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_HG_STATEMEMO_H
#define HGLIFT_HG_STATEMEMO_H

#include "memmodel/MemModel.h"
#include "pred/Pred.h"
#include "support/LiftStats.h"

#include <unordered_map>

namespace hglift::hg {

class StateLeqMemo {
public:
  /// Stats is optional; when attached, LeqHits/LeqMisses are counted there.
  void setLiftStats(LiftStats *Sink) { LS = Sink; }

  /// When disabled, probes forward straight to the underlying leq.
  void setEnabled(bool E) { Enabled = E; }

  bool predLeq(const pred::Pred &A, const pred::Pred &B) {
    if (!Enabled)
      return pred::Pred::leq(A, B);
    uint64_t Key = mixKey(A.digest(), B.digest());
    if (auto It = Preds.find(Key);
        It != Preds.end() && It->second.A == A && It->second.B == B) {
      hit();
      return It->second.Result;
    }
    miss();
    bool R = pred::Pred::leq(A, B);
    bound(Preds);
    Preds.insert_or_assign(Key, PredEntry{A, B, R});
    return R;
  }

  bool memLeq(const mem::MemModel &A, const mem::MemModel &B) {
    if (!Enabled)
      return mem::MemModel::leq(A, B);
    uint64_t Key = mixKey(A.digest(), B.digest());
    if (auto It = Mems.find(Key);
        It != Mems.end() && It->second.A == A && It->second.B == B) {
      hit();
      return It->second.Result;
    }
    miss();
    bool R = mem::MemModel::leq(A, B);
    bound(Mems);
    Mems.insert_or_assign(Key, MemEntry{A, B, R});
    return R;
  }

private:
  struct PredEntry {
    pred::Pred A, B;
    bool Result;
  };
  struct MemEntry {
    mem::MemModel A, B;
    bool Result;
  };

  static uint64_t mixKey(uint64_t DA, uint64_t DB) {
    DB *= 0x9e3779b97f4a7c15ULL;
    DB ^= DB >> 29;
    return (DA ^ DB) * 0xbf58476d1ce4e5b9ULL + 1;
  }

  template <class Map> static void bound(Map &M) {
    if (M.size() >= Cap)
      M.clear();
  }

  void hit() {
    if (LS)
      ++LS->LeqHits;
  }
  void miss() {
    if (LS)
      ++LS->LeqMisses;
  }

  static constexpr size_t Cap = 1u << 13;
  std::unordered_map<uint64_t, PredEntry> Preds;
  std::unordered_map<uint64_t, MemEntry> Mems;
  LiftStats *LS = nullptr;
  bool Enabled = true;
};

} // namespace hglift::hg

#endif // HGLIFT_HG_STATEMEMO_H
