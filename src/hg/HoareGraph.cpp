#include "hg/HoareGraph.h"

namespace hglift::hg {

std::vector<Edge> HoareGraph::weirdEdges() const {
  // An edge is "weird" when its target address lies strictly inside the
  // byte range of some explored instruction: overlapping instructions,
  // the §2 jump-into-the-middle ROP shape.
  std::vector<Edge> Out;
  for (const Edge &E : Edges) {
    uint64_t T = E.To.Rip;
    if (T == RetTargetRip || T == UnresolvedTargetRip)
      continue;
    for (const auto &[K, V] : Vertices) {
      if (!V.Explored || !V.Instr.isValid())
        continue;
      if (T > V.Instr.Addr && T < V.Instr.Addr + V.Instr.Length) {
        Out.push_back(E);
        break;
      }
    }
  }
  return Out;
}

} // namespace hglift::hg
