//===- Lifter.h - Algorithm 1 + the §4.2 call extension --------*- C++ -*-===//
//
// The public lifting API:
//
//   * liftFunction(entry) runs Algorithm 1 from one entry point in a fresh
//     context-free state (the return address is the symbol S_entry), until
//     the bag is empty, a sanity property fails, or fuel runs out;
//   * liftBinary() starts at the ELF entry point and lifts every internal
//     function reachable through (resolved) calls, each exactly once;
//   * liftLibrary() lifts every exported function symbol, the way the
//     paper handles Xen's shared objects (§5.1, "as reported by nm").
//
// Outcomes mirror Table 1's columns: lifted / unprovable-return-address /
// concurrency / timeout, with counts of resolved indirections (A),
// unresolved jumps (B) and unresolved calls (C).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_HG_LIFTER_H
#define HGLIFT_HG_LIFTER_H

#include "hg/HoareGraph.h"

#include <memory>

namespace hglift::hg {

enum class LiftOutcome : uint8_t {
  Lifted,
  UnprovableReturn, ///< any sanity-property verification error
  Concurrency,
  Timeout,
};

const char *liftOutcomeName(LiftOutcome O);

struct LiftConfig {
  sem::SymConfig Sym;
  smt::RelationSolver::Config Solver;
  /// Joins at one vertex before widening kicks in.
  unsigned WidenAfterJoins = 3;
  /// Fuel: maximum vertices per function before declaring a timeout.
  size_t MaxVertices = 50000;
  /// Wall-clock budget per function, seconds (paper: 4h; our corpus is
  /// smaller). 0 = unlimited.
  double MaxSeconds = 60.0;
  /// Disable joining entirely (ablation: state explosion).
  bool EnableJoin = true;
  /// Disable the control-immediates compatibility exception (ablation).
  bool CtrlImmediateException = true;
};

struct FunctionResult {
  uint64_t Entry = 0;
  LiftOutcome Outcome = LiftOutcome::Lifted;
  std::string FailReason;
  HoareGraph Graph;
  /// The function's return-address symbol S_entry.
  const expr::Expr *RetSym = nullptr;

  bool MayReturn = false;
  unsigned ResolvedIndirections = 0; ///< column A
  unsigned UnresolvedJumps = 0;      ///< column B
  unsigned UnresolvedCalls = 0;      ///< column C
  std::vector<std::string> Obligations;
  std::set<uint64_t> Callees;
  double Seconds = 0;

  size_t numInstructions() const { return Graph.instructionAddrs().size(); }
};

struct BinaryResult {
  std::string Name;
  LiftOutcome Outcome = LiftOutcome::Lifted;
  std::string FailReason;
  std::vector<FunctionResult> Functions;

  size_t totalInstructions() const;
  size_t totalStates() const;
  unsigned totalA() const, totalB() const, totalC() const;
  std::vector<std::string> allObligations() const;
  double Seconds = 0;
};

class Lifter {
public:
  Lifter(const elf::BinaryImage &Img, LiftConfig Cfg);
  ~Lifter();

  FunctionResult liftFunction(uint64_t Entry);
  /// Lift from the ELF entry point, following internal calls.
  BinaryResult liftBinary();
  /// Lift every exported function symbol (shared-object mode).
  BinaryResult liftLibrary();

  expr::ExprContext &exprContext() { return *Ctx; }
  smt::RelationSolver &solver() { return *Solver; }
  const elf::BinaryImage &image() const { return Img; }
  const LiftConfig &config() const { return Cfg; }

private:
  BinaryResult liftFrom(std::vector<uint64_t> Roots);
  uint64_t ctrlHash(const sem::SymState &S) const;

  const elf::BinaryImage &Img;
  LiftConfig Cfg;
  std::unique_ptr<expr::ExprContext> Ctx;
  std::unique_ptr<smt::RelationSolver> Solver;
  std::unique_ptr<sem::SymExec> Exec;
};

} // namespace hglift::hg

#endif // HGLIFT_HG_LIFTER_H
