//===- Lifter.h - Algorithm 1 + the §4.2 call extension --------*- C++ -*-===//
//
// The public lifting API:
//
//   * liftFunction(entry) runs Algorithm 1 from one entry point in a fresh
//     context-free state (the return address is the symbol S_entry), until
//     the bag is empty, a sanity property fails, or fuel runs out;
//   * liftBinary() starts at the ELF entry point and lifts every internal
//     function reachable through (resolved) calls, each exactly once;
//   * liftLibrary() lifts every exported function symbol, the way the
//     paper handles Xen's shared objects (§5.1, "as reported by nm").
//
// Outcomes mirror Table 1's columns: lifted / unprovable-return-address /
// concurrency / timeout, with counts of resolved indirections (A),
// unresolved jumps (B) and unresolved calls (C).
//
// Functions are lifted in isolation: each lift runs in its own LiftArena
// (a fresh expression context, relation solver, and symbolic executor),
// which the FunctionResult keeps alive. Isolation is what makes the
// work-queue parallel engine (LiftConfig::Threads > 1) deterministic —
// hash-consing tables, fresh-variable counters, and solver caches are
// never shared between concurrently lifted functions, so every function's
// result is a pure function of (image, config, entry) and independent of
// scheduling. Results are merged sorted by entry address, so an N-thread
// lift is observably identical to the serial one.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_HG_LIFTER_H
#define HGLIFT_HG_LIFTER_H

#include "diag/Diag.h"
#include "hg/HoareGraph.h"
#include "support/LiftStats.h"

#include <memory>
#include <optional>

namespace hglift::hg {

enum class LiftOutcome : uint8_t {
  Lifted,
  UnprovableReturn, ///< any sanity-property verification error
  Concurrency,
  Timeout,
};

const char *liftOutcomeName(LiftOutcome O);

class FunctionCache;

struct LiftConfig {
  sem::SymConfig Sym;
  smt::RelationSolver::Config Solver;
  /// Joins at one vertex before widening kicks in.
  unsigned WidenAfterJoins = 3;
  /// Fuel: maximum vertices per function before declaring a timeout.
  size_t MaxVertices = 50000;
  /// Wall-clock budget per function, seconds (paper: 4h; our corpus is
  /// smaller). 0 = unlimited.
  double MaxSeconds = 60.0;
  /// Worker threads for liftBinary()/liftLibrary(). 1 = serial (in the
  /// calling thread); 0 = hardware concurrency. Results are identical for
  /// every value (see the determinism note above).
  unsigned Threads = 1;
  /// Disable joining entirely (ablation: state explosion).
  bool EnableJoin = true;
  /// Disable the control-immediates compatibility exception (ablation).
  bool CtrlImmediateException = true;
  /// Explore the per-function worklist in ascending instruction-address
  /// order (FIFO among states at the same address) instead of LIFO. The
  /// ordering approximates reverse post-order for compiler-laid-out code:
  /// states arriving at a join point are batched before the vertex is
  /// re-explored, which reduces join/re-exploration churn on diamonds and
  /// loops. Off = the historical LIFO bag (ablation mode of
  /// bench_step1_hotpath).
  bool OrderedWorklist = true;
  /// Memoize Pred::leq / MemModel::leq probes at join points (hg/StateMemo.h).
  bool LeqMemo = true;
  /// Optional per-function artifact cache (store/Store.h), consulted by
  /// liftFunction() before running Algorithm 1 and populated after every
  /// successful lift. Non-owning; must be thread-safe when Threads > 1.
  /// Not part of the result semantics: a correct cache is observably
  /// invisible (hits are Step-2-revalidated by the implementation).
  FunctionCache *Cache = nullptr;
};

/// Everything one function lift allocates from: the hash-consing expression
/// context, the relation solver (with its cache and Z3 backend), and the
/// symbolic executor. Expressions are interned pointers — comparable only
/// within one context — so any consumer reading a FunctionResult's
/// predicates must use that result's arena context, not another lifter's.
class LiftArena {
public:
  LiftArena(const elf::BinaryImage &Img, const LiftConfig &Cfg);
  ~LiftArena();

  LiftArena(const LiftArena &) = delete;
  LiftArena &operator=(const LiftArena &) = delete;

  expr::ExprContext &ctx() { return *Ctx; }
  smt::RelationSolver &solver() { return *Solver; }
  sem::SymExec &exec() { return *Exec; }

private:
  std::unique_ptr<expr::ExprContext> Ctx;
  std::unique_ptr<smt::RelationSolver> Solver;
  std::unique_ptr<sem::SymExec> Exec;
};

struct FunctionResult {
  uint64_t Entry = 0;
  LiftOutcome Outcome = LiftOutcome::Lifted;
  std::string FailReason;
  HoareGraph Graph;
  /// The function's return-address symbol S_entry.
  const expr::Expr *RetSym = nullptr;

  bool MayReturn = false;
  unsigned ResolvedIndirections = 0; ///< column A
  unsigned UnresolvedJumps = 0;      ///< column B
  unsigned UnresolvedCalls = 0;      ///< column C
  std::vector<std::string> Obligations;
  /// Every diagnostic this lift produced — the obligations above plus
  /// verification errors and unsoundness annotations — as structured
  /// records with provenance (diag::Diagnostic). Sorted by (address,
  /// kind, message); with functions merged in entry order this yields the
  /// report's deterministic (function-entry, address) diagnostic order at
  /// any thread count.
  std::vector<diag::Diagnostic> Diags;
  std::set<uint64_t> Callees;
  double Seconds = 0;
  /// What Algorithm 1 did here (vertices, joins, solver calls, ...).
  LiftStats Stats;

  /// The arena every expression in Graph/RetSym was interned in. Shared so
  /// FunctionResult stays copyable; never null for lifter-produced results.
  std::shared_ptr<LiftArena> Arena;

  /// The expression context this result's predicates live in.
  expr::ExprContext &ctx() const { return Arena->ctx(); }
  /// Arena context if present, else the caller-supplied fallback (for
  /// hand-built results in tests).
  const expr::ExprContext &ctxOr(const expr::ExprContext &Fallback) const {
    return Arena ? Arena->ctx() : Fallback;
  }

  size_t numInstructions() const { return Graph.instructionAddrs().size(); }
};

struct BinaryResult {
  std::string Name;
  LiftOutcome Outcome = LiftOutcome::Lifted;
  std::string FailReason;
  std::vector<FunctionResult> Functions;

  size_t totalInstructions() const;
  size_t totalStates() const;
  unsigned totalA() const, totalB() const, totalC() const;
  std::vector<std::string> allObligations() const;
  /// Every function's diagnostics, concatenated in entry-address order
  /// (functions are merged sorted, so this is deterministic for every
  /// thread count).
  std::vector<diag::Diagnostic> allDiagnostics() const;
  double Seconds = 0;
  /// Sum of the per-function stats (exact regardless of thread count).
  LiftStats Total;
};

/// Abstract per-function artifact cache. Implemented by store::CacheStore
/// (content-addressed on-disk store); declared here so the Lifter can
/// consult it without depending on the store layer. Both members may be
/// called concurrently from the parallel lifting engine's workers.
class FunctionCache {
public:
  virtual ~FunctionCache();

  /// A previously stored result for (Img, Cfg, Entry), or nullopt. A hit
  /// must be exactly what liftFunction() would produce: implementations
  /// key on content digests and re-validate through Step-2, never trusting
  /// stored bytes.
  virtual std::optional<FunctionResult> lookup(const elf::BinaryImage &Img,
                                               const LiftConfig &Cfg,
                                               uint64_t Entry) = 0;

  /// Offer a freshly lifted result for storage. Only called with
  /// Outcome == Lifted (failed lifts are cheap to reproduce and carry
  /// image-wide failure causes the per-function digests cannot key).
  virtual void store(const elf::BinaryImage &Img, const LiftConfig &Cfg,
                     const FunctionResult &F) = 0;
};

class Lifter {
public:
  Lifter(const elf::BinaryImage &Img, LiftConfig Cfg);
  ~Lifter();

  FunctionResult liftFunction(uint64_t Entry);
  /// Lift from the ELF entry point, following internal calls.
  BinaryResult liftBinary();
  /// Lift every exported function symbol (shared-object mode).
  BinaryResult liftLibrary();

  /// Scratch context for callers that need to build expressions outside
  /// any particular function (NOT the context lifted results live in —
  /// use FunctionResult::ctx() for those).
  expr::ExprContext &exprContext();
  smt::RelationSolver &solver();
  const elf::BinaryImage &image() const { return Img; }
  const LiftConfig &config() const { return Cfg; }

private:
  BinaryResult liftFrom(std::vector<uint64_t> Roots);
  FunctionResult liftFunctionIn(LiftArena &A, uint64_t Entry);
  uint64_t ctrlHash(const sem::SymState &S) const;

  const elf::BinaryImage &Img;
  LiftConfig Cfg;
  /// Lazily created scratch arena backing exprContext()/solver().
  std::shared_ptr<LiftArena> Scratch;
};

} // namespace hglift::hg

#endif // HGLIFT_HG_LIFTER_H
