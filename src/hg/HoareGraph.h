//===- HoareGraph.h - Hoare Graphs (Definition 3.2) ------------*- C++ -*-===//
//
// A Hoare Graph ⟨Σ, σI, →Σ⟩: vertices are symbolic states ⟨P, M⟩ keyed by
// instruction address (plus the §4 control-immediates exception), edges are
// labeled with disassembled instructions. Every edge is one-step inductive:
// the source vertex's state is strong enough to prove the edge's targets —
// which is exactly what the Step-2 checker (export/HoareChecker.h)
// re-verifies independently.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_HG_HOAREGRAPH_H
#define HGLIFT_HG_HOAREGRAPH_H

#include "semantics/SymExec.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace hglift::hg {

/// Compatibility key (Definition 4.3 plus the §4 exception): states are
/// only joinable when their instruction pointers agree *and* their
/// control-relevant immediates (text pointers in registers or memory
/// clauses, jump-table reads) agree.
struct VertexKey {
  uint64_t Rip = 0;
  uint64_t CtrlHash = 0;

  auto operator<=>(const VertexKey &O) const = default;
};

/// Synthetic target addresses for non-address edge targets.
constexpr uint64_t RetTargetRip = ~uint64_t(0);       ///< function returned
constexpr uint64_t UnresolvedTargetRip = ~uint64_t(1); ///< annotated stop

struct Vertex {
  VertexKey Key;
  sem::SymState State;
  x86::Instr Instr;      ///< decoded instruction at Key.Rip (once explored)
  bool Explored = false;
  unsigned JoinCount = 0;
};

struct Edge {
  VertexKey From;
  VertexKey To; ///< Rip == RetTargetRip / UnresolvedTargetRip for specials
  x86::Instr Instr;
  sem::CtrlKind Kind = sem::CtrlKind::Fall;
  uint64_t CalleeAddr = 0; ///< for CallInternal edges
  /// Non-zero when the edge came from a VSA table resolution: the table's
  /// first-entry address (DotExport provenance, docs/VSA.md).
  uint64_t ViaTable = 0;

  auto operator<=>(const Edge &O) const {
    if (auto C = From <=> O.From; C != 0)
      return C;
    if (auto C = To <=> O.To; C != 0)
      return C;
    if (auto C = Kind <=> O.Kind; C != 0)
      return C;
    if (auto C = CalleeAddr <=> O.CalleeAddr; C != 0)
      return C;
    return ViaTable <=> O.ViaTable;
  }
  bool operator==(const Edge &O) const {
    return From == O.From && To == O.To && Kind == O.Kind &&
           CalleeAddr == O.CalleeAddr && ViaTable == O.ViaTable;
  }
};

class HoareGraph {
public:
  std::map<VertexKey, Vertex> Vertices;
  std::vector<Edge> Edges;
  VertexKey Initial;

  Vertex *find(const VertexKey &K) {
    auto It = Vertices.find(K);
    return It == Vertices.end() ? nullptr : &It->second;
  }
  const Vertex *find(const VertexKey &K) const {
    auto It = Vertices.find(K);
    return It == Vertices.end() ? nullptr : &It->second;
  }

  void addEdge(const Edge &E) {
    for (const Edge &X : Edges)
      if (X == E)
        return;
    Edges.push_back(E);
  }

  /// Distinct instruction addresses with an explored vertex.
  std::set<uint64_t> instructionAddrs() const {
    std::set<uint64_t> S;
    for (const auto &[K, V] : Vertices)
      if (V.Explored)
        S.insert(K.Rip);
    return S;
  }

  size_t numStates() const { return Vertices.size(); }

  /// Edges whose target lands strictly inside another decoded instruction
  /// (overlapping instructions — the §2 "weird" edges).
  std::vector<Edge> weirdEdges() const;
};

} // namespace hglift::hg

#endif // HGLIFT_HG_HOAREGRAPH_H
