//===- Shard.cpp - Multi-process sharded lifting --------------------------===//

#include "shard/Shard.h"

#include "api/Hglift.h"
#include "shard/LineProto.h"
#include "diag/Diag.h"
#include "diag/Json.h"
#include "driver/ExitCode.h"
#include "elf/ElfReader.h"
#include "store/CostLedger.h"
#include "store/Store.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

namespace hglift::shard {

using driver::ExitCode;
using driver::toExit;

std::vector<std::vector<size_t>> planShards(size_t NumBinaries,
                                            unsigned Shards) {
  if (Shards == 0)
    Shards = 1;
  std::vector<std::vector<size_t>> Plan(Shards);
  for (size_t I = 0; I < NumBinaries; ++I)
    Plan[I % Shards].push_back(I);
  return Plan;
}

unsigned resolveAutoShards(size_t NumUnits) {
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    Hw = 1;
  uint64_t Cap = Hw;
  // A worker holds one Session plus solver state; budget 256 MiB each and
  // never probe past what the machine can actually back.
  std::ifstream In("/proc/meminfo");
  std::string Line;
  while (std::getline(In, Line)) {
    unsigned long long Kb = 0;
    if (std::sscanf(Line.c_str(), "MemAvailable: %llu kB", &Kb) == 1) {
      uint64_t MemCap = Kb / (256 * 1024);
      if (MemCap < 1)
        MemCap = 1;
      Cap = std::min(Cap, MemCap);
      break;
    }
  }
  if (NumUnits)
    Cap = std::min<uint64_t>(Cap, NumUnits);
  return static_cast<unsigned>(std::max<uint64_t>(1, Cap));
}

std::string fragPath(const std::string &CacheDir, size_t Idx) {
  return CacheDir + "/shard/frag-" + std::to_string(Idx) + ".report.json";
}

namespace {

/// Static cost heuristic when the ledger has nothing: executable bytes
/// dominate, with a per-function constant for symbol-rich libraries. The
/// absolute scale only matters until the first observed completion — the
/// progress reporter calibrates ETA against real seconds as they arrive,
/// and the ledger replaces the estimate entirely on the next run.
double heuristicCost(const elf::BinaryImage &Img) {
  size_t TextBytes = 0;
  for (const elf::Segment &S : Img.Segments)
    if (S.Exec)
      TextBytes += S.Bytes.size();
  return 1e-3 * static_cast<double>(TextBytes) +
         0.02 * static_cast<double>(Img.Functions.size());
}

/// Render one binary's report fragment — the exact bytes `hglift
/// [check] --report-json` would write for it. Unreadable ELFs get a
/// fixed synthetic fragment (same schema envelope, outcome "unreadable")
/// so the merge stays total; its exit contribution is Fail, like the
/// plain CLI's.
std::string liftOneFragment(const ShardOptions &Opt, size_t Idx,
                            int &ExitAccum) {
  const std::string &Path = Opt.Binaries[Idx];
  auto Img = elf::readElfFile(Path);
  if (!Img) {
    ExitAccum = std::max(ExitAccum, toExit(ExitCode::Fail));
    std::ostringstream OS;
    OS << "{\n"
       << "  \"schema_version\": " << diag::ReportSchemaVersion << ",\n"
       << "  \"binary\": \"" << diag::jsonEscape(Path) << "\",\n"
       << "  \"outcome\": \"unreadable\",\n"
       << "  \"fail_reason\": \"cannot parse ELF file\",\n"
       << "  \"functions\": [\n  ]\n}\n";
    return OS.str();
  }

  Options O;
  O.Library = Opt.Library;
  O.Cache.Dir = Opt.CacheDir;
  O.Cache.MaxMB = Opt.CacheMaxMB;
  O.Cache.Validate = Opt.CacheValidate;
  O.Lift.Solver.Portfolio = Opt.Portfolio;
  if (Opt.MaxSeconds > 0)
    O.Lift.MaxSeconds = Opt.MaxSeconds;

  Session S(*Img, O);
  const hg::BinaryResult &R = S.lift();
  bool Good = R.Outcome == hg::LiftOutcome::Lifted;
  if (Opt.Check)
    Good = S.check().allProven() && Good;
  if (!Good)
    ExitAccum = std::max(ExitAccum, toExit(ExitCode::Fail));

  std::ostringstream OS;
  S.writeReportJson(OS);
  return OS.str();
}

/// Tempfile-then-rename so a concurrently crashing or retried worker can
/// never leave a torn fragment: readers see the old bytes or the new
/// bytes, nothing in between.
bool writeAtomically(const std::string &Path, const std::string &Bytes) {
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!Out)
      return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

bool ensureFragDir(const std::string &CacheDir, std::string &Err) {
  std::error_code EC;
  std::filesystem::create_directories(CacheDir + "/shard", EC);
  if (EC) {
    Err = "cannot create " + CacheDir + "/shard: " + EC.message();
    return false;
  }
  return true;
}

// --- claim-protocol plumbing ---------------------------------------------
//
// Line-based, newline-terminated, every message far below PIPE_BUF so
// writes are atomic. Parent-to-worker: "RUN <id> L <bin>", "RUN <id> P
// <bin> <e1>,<e2>,...", "BYE". Worker-to-parent: "REQ", "FIN <id> <exit>
// <seconds>". The byte-level framing (writeAll/readLineBlocking) lives in
// shard/LineProto.h because this seam is deliberately transport-shaped:
// `hglift serve` speaks its JSONL request/response protocol over a socket
// with the very same plumbing.

std::string makeRunLine(size_t Id, const WorkUnit &U) {
  std::ostringstream OS;
  OS << "RUN " << Id << " " << (U.K == WorkUnit::Kind::Lift ? "L" : "P")
     << " " << U.Bin;
  if (U.K == WorkUnit::Kind::Prewarm) {
    OS << " ";
    for (size_t I = 0; I < U.Entries.size(); ++I) {
      if (I)
        OS << ",";
      OS << std::hex << U.Entries[I] << std::dec;
    }
  }
  OS << "\n";
  return OS.str();
}

bool parseRunLine(const std::string &Line, size_t &Id, WorkUnit &U) {
  std::istringstream IS(Line);
  std::string Tag, Kind;
  size_t Bin = 0;
  if (!(IS >> Tag >> Id >> Kind >> Bin) || Tag != "RUN")
    return false;
  U.Bin = Bin;
  if (Kind == "L") {
    U.K = WorkUnit::Kind::Lift;
    return true;
  }
  if (Kind != "P")
    return false;
  U.K = WorkUnit::Kind::Prewarm;
  std::string List;
  if (!(IS >> List))
    return false;
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = List.size();
    if (Comma > Pos)
      U.Entries.push_back(
          std::strtoull(List.substr(Pos, Comma - Pos).c_str(), nullptr, 16));
    Pos = Comma + 1;
  }
  return !U.Entries.empty();
}

/// Build the worker argv. No slice — workers pull over the claim pipes —
/// but every CLI-serializable option is still forwarded so the worker
/// reconstructs an identical per-unit ShardOptions.
std::vector<std::string> workerArgs(const ShardOptions &Opt, int GrantR,
                                    int ReqW, const std::string &Exe) {
  std::vector<std::string> A{Exe, "shard", "--shard-worker-fds",
                             std::to_string(GrantR) + "," +
                                 std::to_string(ReqW),
                             "--cache-dir", Opt.CacheDir};
  if (Opt.CacheMaxMB) {
    A.push_back("--cache-max-mb");
    A.push_back(std::to_string(Opt.CacheMaxMB));
  }
  if (!Opt.CacheValidate)
    A.push_back("--no-cache-validate");
  if (Opt.Check)
    A.push_back("--check");
  if (Opt.Library)
    A.push_back("--library");
  if (!Opt.Portfolio)
    A.push_back("--no-solver-portfolio");
  if (Opt.MaxSeconds > 0) {
    A.push_back("--max-seconds");
    A.push_back(std::to_string(Opt.MaxSeconds));
  }
  for (const std::string &B : Opt.Binaries)
    A.push_back(B);
  return A;
}

/// One worker slot in the parent: its process, its pipe ends, and its
/// protocol state.
struct WorkerSlot {
  pid_t Pid = -1;
  int ReqR = -1;   ///< parent reads REQ/FIN here
  int GrantW = -1; ///< parent writes RUN/BYE here
  unsigned SpawnCount = 0;
  long Claimed = -1; ///< unit id currently claimed, -1 when idle
  bool Parked = false;
  bool ByeSent = false;
  bool Alive = false;
  std::string Buf;
};

/// fork/exec one worker on fresh pipes. The crash hooks are planted in
/// the child's environment only — the parent's environment is never
/// touched, so sibling workers and the retry are unaffected. All other
/// slots' pipe ends are closed in the child: a crashed sibling's request
/// pipe must reach EOF in the parent, not stay open here.
bool spawnWorker(const ShardOptions &Opt, const std::string &Exe,
                 std::vector<WorkerSlot> &Slots, size_t SlotIdx,
                 bool InjectCrashNow, bool InjectCrashMidClaim) {
  int Req[2], Grant[2];
  if (::pipe(Req) != 0)
    return false;
  if (::pipe(Grant) != 0) {
    ::close(Req[0]);
    ::close(Req[1]);
    return false;
  }

  std::vector<std::string> Args = workerArgs(Opt, Grant[0], Req[1], Exe);
  std::vector<char *> Argv;
  Argv.reserve(Args.size() + 1);
  for (const std::string &A : Args)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);

  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Req[0]);
    ::close(Req[1]);
    ::close(Grant[0]);
    ::close(Grant[1]);
    return false;
  }
  if (Pid == 0) {
    for (const WorkerSlot &S : Slots) {
      if (S.ReqR >= 0)
        ::close(S.ReqR);
      if (S.GrantW >= 0)
        ::close(S.GrantW);
    }
    ::close(Req[0]);
    ::close(Grant[1]);
    if (InjectCrashNow)
      ::setenv("HGLIFT_SHARD_CRASH_NOW", "1", 1);
    else
      ::unsetenv("HGLIFT_SHARD_CRASH_NOW");
    if (InjectCrashMidClaim)
      ::setenv("HGLIFT_SHARD_CRASH_AFTER_CLAIM", "1", 1);
    else
      ::unsetenv("HGLIFT_SHARD_CRASH_AFTER_CLAIM");
    ::execv(Argv[0], Argv.data());
    // exec failed: exit with the Usage code so the parent treats it as a
    // crash-class failure and reports it after the retry also fails.
    std::fprintf(stderr, "shard: cannot exec %s: %s\n", Argv[0],
                 std::strerror(errno));
    ::_exit(toExit(ExitCode::Usage));
  }

  ::close(Req[1]);
  ::close(Grant[0]);
  WorkerSlot &S = Slots[SlotIdx];
  S.Pid = Pid;
  S.ReqR = Req[0];
  S.GrantW = Grant[1];
  ++S.SpawnCount;
  S.Claimed = -1;
  S.Parked = false;
  S.ByeSent = false;
  S.Alive = true;
  S.Buf.clear();
  return true;
}

/// Live progress/ETA line on stderr. Carriage-return refreshed, final
/// newline on finish; never touches stdout or the merged report.
struct ProgressLine {
  bool Enabled = false;
  bool Printed = false;
  std::chrono::steady_clock::time_point Last{};

  void tick(size_t Done, size_t Total, unsigned Running, size_t Queued,
            const ShardSchedStats &Sched, double EstDone, double EstRemain,
            unsigned Workers, bool Force) {
    if (!Enabled)
      return;
    auto Now = std::chrono::steady_clock::now();
    if (!Force && Printed &&
        std::chrono::duration<double>(Now - Last).count() < 0.2)
      return;
    Last = Now;
    Printed = true;
    // Calibrate the heuristic scale against observed completions; until
    // one lands, trust the estimates at face value.
    double Calib = (EstDone > 1e-9 && Sched.ObservedSeconds > 0)
                       ? Sched.ObservedSeconds / EstDone
                       : 1.0;
    double Eta = Workers ? EstRemain * Calib / Workers : EstRemain * Calib;
    std::fprintf(stderr,
                 "\rshard: %zu/%zu units done, %u running, %zu queued | "
                 "steals %llu requeues %llu | eta %.1fs   ",
                 Done, Total, Running, Queued,
                 static_cast<unsigned long long>(Sched.Steals),
                 static_cast<unsigned long long>(Sched.Requeues), Eta);
  }

  void finish() {
    if (Enabled && Printed)
      std::fprintf(stderr, "\n");
  }
};

} // namespace

std::vector<WorkUnit> planUnits(const ShardOptions &Opt, unsigned Shards,
                                ShardSchedStats &Sched) {
  std::vector<WorkUnit> Units;
  store::CostLedger Ledger(Opt.CacheDir + "/ledger");
  for (size_t I = 0; I < Opt.Binaries.size(); ++I) {
    unsigned Owner = Shards ? static_cast<unsigned>(I % Shards) : 0;
    WorkUnit Lift;
    Lift.K = WorkUnit::Kind::Lift;
    Lift.Bin = I;
    Lift.RROwner = Owner;

    auto Img = elf::readElfFile(Opt.Binaries[I]);
    if (!Img) {
      // Cost 0: the synthetic "unreadable" fragment is the cheapest unit
      // in any queue. No ledger key to look up or record.
      Units.push_back(std::move(Lift));
      ++Sched.UnitsLift;
      continue;
    }

    Lift.CostKey = store::costKey(*Img);
    if (std::optional<store::CostRecord> R = Ledger.lookup(Lift.CostKey)) {
      Lift.Est = R->Seconds;
      Lift.FromLedger = true;
      ++Sched.LedgerHits;
    } else {
      Lift.Est = heuristicCost(*Img);
      ++Sched.LedgerMisses;
    }

    // Function granularity: split symbol-rich library binaries into
    // advisory prewarm chunks. The lift unit runs after them (DepsLeft)
    // and assembles its fragment from store hits, so the fragment bytes
    // are exactly a warm run's — which are gated byte-identical to cold.
    if (Opt.Granularity == StealGranularity::Function && Opt.Library &&
        Opt.PrewarmChunk > 0) {
      std::vector<uint64_t> Entries;
      for (const elf::Symbol &F : Img->Functions)
        if (F.IsFunc)
          Entries.push_back(F.Addr);
      std::sort(Entries.begin(), Entries.end());
      Entries.erase(std::unique(Entries.begin(), Entries.end()),
                    Entries.end());
      if (Entries.size() > Opt.PrewarmChunk) {
        size_t NumChunks =
            (Entries.size() + Opt.PrewarmChunk - 1) / Opt.PrewarmChunk;
        size_t LiftId = Units.size() + NumChunks;
        double FullEst = Lift.Est;
        for (size_t C = 0; C < NumChunks; ++C) {
          WorkUnit P;
          P.K = WorkUnit::Kind::Prewarm;
          P.Bin = I;
          P.RROwner = Owner;
          P.CostKey = Lift.CostKey;
          P.FromLedger = Lift.FromLedger;
          size_t Begin = C * Opt.PrewarmChunk;
          size_t End = std::min(Entries.size(), Begin + Opt.PrewarmChunk);
          P.Entries.assign(Entries.begin() + Begin, Entries.begin() + End);
          P.Est = FullEst * static_cast<double>(End - Begin) /
                  static_cast<double>(Entries.size());
          P.Dependents.push_back(LiftId);
          Units.push_back(std::move(P));
          ++Sched.UnitsPrewarm;
        }
        Lift.DepsLeft = static_cast<unsigned>(NumChunks);
        // The lift unit itself then runs at warm-cache speed: every hit
        // is still Step-2 re-proven, so it is cheaper, not free.
        Lift.Est = 0.25 * FullEst;
      }
    }

    Units.push_back(std::move(Lift));
    ++Sched.UnitsLift;
  }
  Sched.UnitsTotal = Units.size();
  for (const WorkUnit &U : Units)
    Sched.EstimatedSeconds += U.Est;
  return Units;
}

int execUnit(const ShardOptions &Opt, const WorkUnit &U, double *SecondsOut) {
  auto T0 = std::chrono::steady_clock::now();
  int Exit = toExit(ExitCode::Ok);
  if (U.K == WorkUnit::Kind::Lift) {
    if (U.Bin >= Opt.Binaries.size())
      return toExit(ExitCode::Usage);
    int Accum = toExit(ExitCode::Ok);
    std::string Frag = liftOneFragment(Opt, U.Bin, Accum);
    if (!writeAtomically(fragPath(Opt.CacheDir, U.Bin), Frag)) {
      std::fprintf(stderr, "shard: cannot write %s\n",
                   fragPath(Opt.CacheDir, U.Bin).c_str());
      Exit = toExit(ExitCode::Io);
    } else {
      Exit = Accum;
    }
  } else {
    // Prewarm: lift the chunk's functions into the shared store through
    // the ordinary cache hook. The LiftConfig must match the lift unit's
    // result-visible knobs exactly or the store's config digest would
    // miss; the digest ignores cache/thread/budget knobs by design.
    if (U.Bin < Opt.Binaries.size()) {
      if (auto Img = elf::readElfFile(Opt.Binaries[U.Bin])) {
        store::CacheStore::Options SO;
        SO.Dir = Opt.CacheDir;
        SO.MaxBytes = Opt.CacheMaxMB * 1024 * 1024;
        SO.Validate = Opt.CacheValidate;
        store::CacheStore CS(std::move(SO));
        hg::LiftConfig Cfg;
        Cfg.Solver.Portfolio = Opt.Portfolio;
        if (Opt.MaxSeconds > 0)
          Cfg.MaxSeconds = Opt.MaxSeconds;
        Cfg.Cache = &CS;
        hg::Lifter L(*Img, Cfg);
        for (uint64_t E : U.Entries)
          L.liftFunction(E);
      }
    }
    // Advisory by contract: a prewarm that could not run leaves the
    // cache cold and the lift unit does the work instead.
  }
  if (SecondsOut)
    *SecondsOut =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
  return Exit;
}

int runWorkerLoop(const ShardOptions &Opt, int GrantFd, int RequestFd) {
  // Deterministic crash hooks for the retry tests: planted by the parent
  // in this process's environment, never set outside the harness.
  if (std::getenv("HGLIFT_SHARD_CRASH_NOW"))
    ::raise(SIGKILL);
  bool CrashAfterClaim = std::getenv("HGLIFT_SHARD_CRASH_AFTER_CLAIM");

  ::signal(SIGPIPE, SIG_IGN);
  std::string Err;
  if (!ensureFragDir(Opt.CacheDir, Err)) {
    std::fprintf(stderr, "shard: %s\n", Err.c_str());
    return toExit(ExitCode::Io);
  }

  if (!writeAll(RequestFd, "REQ\n"))
    return toExit(ExitCode::Io);
  std::string Buf;
  for (;;) {
    std::optional<std::string> Line = readLineBlocking(GrantFd, Buf);
    if (!Line)
      return toExit(ExitCode::Io); // parent vanished
    if (*Line == "BYE")
      return toExit(ExitCode::Ok);
    size_t Id = 0;
    WorkUnit U;
    if (!parseRunLine(*Line, Id, U)) {
      std::fprintf(stderr, "shard: malformed grant: %s\n", Line->c_str());
      return toExit(ExitCode::Usage);
    }
    if (CrashAfterClaim)
      ::raise(SIGKILL); // mid-claim: unit granted, nothing executed
    double Secs = 0;
    int E = execUnit(Opt, U, &Secs);
    char Msg[128];
    std::snprintf(Msg, sizeof(Msg), "FIN %zu %d %.6f\nREQ\n", Id, E, Secs);
    if (!writeAll(RequestFd, Msg))
      return toExit(ExitCode::Io);
  }
}

ShardResult runShards(const ShardOptions &Opt) {
  ShardResult R;
  if (Opt.Binaries.empty()) {
    R.Error = "no input binaries";
    R.Exit = toExit(ExitCode::Usage);
    return R;
  }
  if (Opt.CacheDir.empty()) {
    R.Error = "shard requires --cache-dir (workers coordinate through it)";
    R.Exit = toExit(ExitCode::Usage);
    return R;
  }
  if (!ensureFragDir(Opt.CacheDir, R.Error)) {
    R.Exit = toExit(ExitCode::Io);
    return R;
  }
  // Stale fragments from a previous run must not satisfy this one's
  // completion checks (they could mask a crashed worker).
  for (size_t I = 0; I < Opt.Binaries.size(); ++I)
    std::remove(fragPath(Opt.CacheDir, I).c_str());

  unsigned Shards =
      Opt.AutoShards ? resolveAutoShards(Opt.Binaries.size())
                     : (Opt.Shards == 0 ? 1u : Opt.Shards);
  // More workers than binaries only ever idle: with function granularity
  // the extra units still funnel into per-binary fragments.
  unsigned W = static_cast<unsigned>(
      std::min<size_t>(Shards, Opt.Binaries.size()));
  if (W == 0)
    W = 1;
  R.ShardsResolved = W;

  std::vector<WorkUnit> Units = planUnits(Opt, W, R.Sched);
  store::CostLedger Ledger(Opt.CacheDir + "/ledger");

  // Shared scheduler state (parent side; the serial path drains the same
  // structures in-process).
  const size_t N = Units.size();
  std::vector<uint8_t> Done(N, 0), ClaimedFlag(N, 0), AnyOwner(N, 0);
  std::vector<unsigned> UnitAttempts(N, 0);
  std::vector<size_t> Ready;
  for (size_t I = 0; I < N; ++I)
    if (Units[I].DepsLeft == 0)
      Ready.push_back(I);
  size_t DoneCount = 0;
  int ExitAccum = toExit(ExitCode::Ok);
  double EstDone = 0;
  std::vector<double> BinSecs(Opt.Binaries.size(), 0);
  std::vector<unsigned> BinOutstanding(Opt.Binaries.size(), 0);
  for (const WorkUnit &U : Units)
    ++BinOutstanding[U.Bin];

  ProgressLine Progress;
  Progress.Enabled = Opt.Progress;

  // Steal-order priority: longest estimated job first, then unit id for
  // determinism. The static ablation instead serves each worker its
  // round-robin slice in plan order.
  auto Better = [&](size_t A, size_t B) {
    if (!Opt.WorkStealing)
      return A < B;
    if (Units[A].Est != Units[B].Est)
      return Units[A].Est > Units[B].Est;
    return A < B;
  };
  auto PickUnit = [&](unsigned WorkerId) -> long {
    long Best = -1;
    for (size_t Id : Ready) {
      if (!Opt.WorkStealing && !AnyOwner[Id] &&
          Units[Id].RROwner != WorkerId)
        continue;
      if (Best < 0 || Better(Id, static_cast<size_t>(Best)))
        Best = static_cast<long>(Id);
    }
    return Best;
  };
  auto MarkDone = [&](size_t Id, int Exit, double Secs) {
    Done[Id] = 1;
    ++DoneCount;
    EstDone += Units[Id].Est;
    if (Units[Id].K == WorkUnit::Kind::Lift)
      ExitAccum = std::max(ExitAccum, Exit);
    R.Sched.ObservedSeconds += Secs;
    size_t Bin = Units[Id].Bin;
    BinSecs[Bin] += Secs;
    if (--BinOutstanding[Bin] == 0 && Units[Id].CostKey) {
      if (Ledger.record(Units[Id].CostKey, BinSecs[Bin]))
        ++R.Sched.LedgerRecords;
    }
    for (size_t Dep : Units[Id].Dependents)
      if (--Units[Dep].DepsLeft == 0)
        Ready.push_back(Dep);
  };

  if (W <= 1) {
    // Serial reference: drain the very same queue in-process, in the
    // same cost-model order the scheduler would grant it.
    while (DoneCount < N) {
      long Id = PickUnit(0);
      if (Id < 0) {
        R.Error = "internal: scheduler stalled with units remaining";
        R.Exit = toExit(ExitCode::Io);
        return R;
      }
      Ready.erase(std::find(Ready.begin(), Ready.end(),
                            static_cast<size_t>(Id)));
      ++R.Sched.Claims;
      double Secs = 0;
      int E = execUnit(Opt, Units[Id], &Secs);
      if (E >= toExit(ExitCode::Usage)) {
        Progress.finish();
        R.Error = "serial lift failed";
        R.Exit = E;
        return R;
      }
      MarkDone(static_cast<size_t>(Id), E, Secs);
      Progress.tick(DoneCount, N, 0, Ready.size(), R.Sched, EstDone,
                    R.Sched.EstimatedSeconds - EstDone, 1, true);
    }
    R.Exit = ExitAccum;
  } else {
    std::string Exe = Opt.WorkerExe.empty() ? "/proc/self/exe" : Opt.WorkerExe;
    long CrashSlot = -1, MidClaimSlot = -1;
    if (const char *TC = std::getenv("HGLIFT_SHARD_TEST_CRASH"))
      CrashSlot = std::strtol(TC, nullptr, 10);
    if (const char *TC = std::getenv("HGLIFT_SHARD_TEST_CRASH_MIDCLAIM"))
      MidClaimSlot = std::strtol(TC, nullptr, 10);

    // Dead workers must surface as EPIPE on the grant pipe, not kill the
    // parent (which may be a test harness) with SIGPIPE.
    void (*OldPipe)(int) = ::signal(SIGPIPE, SIG_IGN);

    std::vector<WorkerSlot> Slots(W);
    std::string FatalError;
    int FatalExit = 0;

    auto CleanupAll = [&]() {
      for (WorkerSlot &S : Slots) {
        if (!S.Alive)
          continue;
        ::close(S.ReqR);
        ::close(S.GrantW);
        S.ReqR = -1;
        S.GrantW = -1;
        ::kill(S.Pid, SIGKILL);
        int St = 0;
        ::waitpid(S.Pid, &St, 0);
        S.Alive = false;
      }
      ::signal(SIGPIPE, OldPipe);
    };

    // Serve a worker's pending request: grant the best eligible unit,
    // send BYE when the queue is drained, park it otherwise.
    auto TryServe = [&](size_t SlotIdx) {
      WorkerSlot &S = Slots[SlotIdx];
      if (!S.Alive || S.ByeSent || S.Claimed >= 0 || !S.Parked)
        return;
      if (DoneCount == N) {
        S.Parked = false;
        S.ByeSent = true;
        writeAll(S.GrantW, "BYE\n"); // failure surfaces as EOF next poll
        return;
      }
      long Id = PickUnit(static_cast<unsigned>(SlotIdx));
      if (Id < 0)
        return; // stay parked; a FIN or requeue will unblock it
      if (!writeAll(S.GrantW, makeRunLine(static_cast<size_t>(Id),
                                          Units[Id])))
        return; // worker died mid-grant; EOF handling requeues nothing
                // (the unit was never committed to it)
      Ready.erase(
          std::find(Ready.begin(), Ready.end(), static_cast<size_t>(Id)));
      ClaimedFlag[Id] = 1;
      S.Claimed = Id;
      S.Parked = false;
      ++R.Sched.Claims;
      if (Opt.WorkStealing && Units[Id].RROwner != SlotIdx)
        ++R.Sched.Steals;
    };

    auto Requeue = [&](size_t Id) -> bool {
      ClaimedFlag[Id] = 0;
      AnyOwner[Id] = 1; // its owner may be gone; anyone may rescue it
      ++R.Sched.Requeues;
      if (++UnitAttempts[Id] > Opt.MaxRetries) {
        FatalError = "unit for " + Opt.Binaries[Units[Id].Bin] +
                     " failed repeatedly";
        FatalExit = toExit(ExitCode::Io);
        return false;
      }
      Ready.push_back(Id);
      return true;
    };

    auto HandleExit = [&](size_t SlotIdx) {
      WorkerSlot &S = Slots[SlotIdx];
      int Status = 0;
      ::waitpid(S.Pid, &Status, 0);
      ::close(S.ReqR);
      ::close(S.GrantW);
      // Scrub the fd numbers: a respawn's fresh pipes may reuse them, and
      // the child closes every fd still recorded in the slot table.
      S.ReqR = -1;
      S.GrantW = -1;
      S.Alive = false;
      bool Clean = S.ByeSent && S.Claimed < 0 && WIFEXITED(Status) &&
                   WEXITSTATUS(Status) == toExit(ExitCode::Ok);
      if (Clean)
        return;
      ++R.WorkersCrashed;
      if (S.Claimed >= 0) {
        size_t Id = static_cast<size_t>(S.Claimed);
        S.Claimed = -1;
        if (!Requeue(Id))
          return;
      }
      if (S.SpawnCount <= Opt.MaxRetries) {
        if (!spawnWorker(Opt, Exe, Slots, SlotIdx, false, false)) {
          FatalError = "fork failed";
          FatalExit = toExit(ExitCode::Io);
          return;
        }
        ++R.WorkersSpawned;
        ++R.WorkersRetried;
      } else {
        FatalError = "shard worker " + std::to_string(SlotIdx) +
                     " failed twice (status " + std::to_string(Status) + ")";
        FatalExit = WIFEXITED(Status) ? WEXITSTATUS(Status)
                                      : toExit(ExitCode::Io);
      }
    };

    auto ProcessLines = [&](size_t SlotIdx) {
      WorkerSlot &S = Slots[SlotIdx];
      size_t NL;
      while (S.Alive && (NL = S.Buf.find('\n')) != std::string::npos) {
        std::string Line = S.Buf.substr(0, NL);
        S.Buf.erase(0, NL + 1);
        if (Line == "REQ") {
          S.Parked = true;
          TryServe(SlotIdx);
        } else if (Line.rfind("FIN ", 0) == 0) {
          size_t Id = 0;
          int UnitExit = 0;
          double Secs = 0;
          if (std::sscanf(Line.c_str(), "FIN %zu %d %lf", &Id, &UnitExit,
                          &Secs) != 3 ||
              Id >= N || S.Claimed != static_cast<long>(Id) ||
              !ClaimedFlag[Id]) {
            FatalError = "malformed completion from worker " +
                         std::to_string(SlotIdx) + ": " + Line;
            FatalExit = toExit(ExitCode::Io);
            return;
          }
          S.Claimed = -1;
          ClaimedFlag[Id] = 0;
          if (UnitExit >= toExit(ExitCode::Usage)) {
            // Unit-level IO/usage failure with a live worker: requeue the
            // unit (someone else may have a healthier view of the disk),
            // fail the run if it keeps failing.
            if (!Requeue(Id))
              return;
          } else {
            MarkDone(Id, UnitExit, Secs);
            if (DoneCount == N)
              for (size_t K = 0; K < Slots.size(); ++K)
                TryServe(K);
          }
        } else {
          FatalError = "malformed message from worker " +
                       std::to_string(SlotIdx) + ": " + Line;
          FatalExit = toExit(ExitCode::Io);
          return;
        }
      }
    };

    for (size_t K = 0; K < Slots.size() && FatalError.empty(); ++K) {
      if (!spawnWorker(Opt, Exe, Slots, K,
                       static_cast<long>(K) == CrashSlot,
                       static_cast<long>(K) == MidClaimSlot)) {
        FatalError = "fork failed";
        FatalExit = toExit(ExitCode::Io);
        break;
      }
      ++R.WorkersSpawned;
    }

    while (FatalError.empty()) {
      bool AnyAlive = false;
      std::vector<struct pollfd> Fds;
      std::vector<size_t> FdSlot;
      for (size_t K = 0; K < Slots.size(); ++K) {
        if (!Slots[K].Alive)
          continue;
        AnyAlive = true;
        Fds.push_back({Slots[K].ReqR, POLLIN, 0});
        FdSlot.push_back(K);
      }
      if (!AnyAlive) {
        if (DoneCount == N)
          break;
        FatalError = "all workers exited with units remaining";
        FatalExit = toExit(ExitCode::Io);
        break;
      }
      int PR = ::poll(Fds.data(), static_cast<nfds_t>(Fds.size()), 200);
      if (PR < 0 && errno != EINTR) {
        FatalError = "poll failed";
        FatalExit = toExit(ExitCode::Io);
        break;
      }
      for (size_t F = 0; F < Fds.size() && FatalError.empty(); ++F) {
        if (!(Fds[F].revents & (POLLIN | POLLHUP | POLLERR)))
          continue;
        WorkerSlot &S = Slots[FdSlot[F]];
        if (!S.Alive)
          continue;
        char Tmp[512];
        ssize_t Rd = ::read(S.ReqR, Tmp, sizeof(Tmp));
        if (Rd > 0) {
          S.Buf.append(Tmp, static_cast<size_t>(Rd));
          ProcessLines(FdSlot[F]);
        } else if (Rd == 0) {
          HandleExit(FdSlot[F]);
        } else if (errno != EINTR && errno != EAGAIN) {
          HandleExit(FdSlot[F]);
        }
      }
      // Requeues and freshly unblocked units may satisfy parked workers.
      for (size_t K = 0; K < Slots.size() && FatalError.empty(); ++K)
        TryServe(K);

      unsigned Running = 0;
      for (const WorkerSlot &S : Slots)
        if (S.Alive && S.Claimed >= 0)
          ++Running;
      Progress.tick(DoneCount, N, Running, Ready.size(), R.Sched, EstDone,
                    R.Sched.EstimatedSeconds - EstDone, W, false);
    }

    if (!FatalError.empty()) {
      Progress.finish();
      CleanupAll();
      R.Error = FatalError;
      R.Exit = FatalExit;
      return R;
    }
    ::signal(SIGPIPE, OldPipe);
    R.Exit = ExitAccum;
  }
  Progress.finish();

  // Entry-ordered merge: each fragment spliced in verbatim. No timing, no
  // worker identity, no schedule-dependent bytes — this is what the
  // byte-identity gate compares against the serial run, under any steal
  // order.
  std::string Merged;
  Merged += "{\"shard_schema_version\": 1, \"binaries\": [\n";
  for (size_t I = 0; I < Opt.Binaries.size(); ++I) {
    std::ifstream In(fragPath(Opt.CacheDir, I), std::ios::binary);
    if (!In) {
      R.Error = "missing fragment for " + Opt.Binaries[I];
      R.Exit = toExit(ExitCode::Io);
      return R;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    std::string Frag = SS.str();
    while (!Frag.empty() && Frag.back() == '\n')
      Frag.pop_back();
    Merged += Frag;
    Merged += I + 1 < Opt.Binaries.size() ? ",\n" : "\n";
  }
  Merged += "]}\n";
  R.MergedReport = std::move(Merged);
  R.Ok = true;
  return R;
}

void writeShardStatsJson(std::ostream &OS, const ShardOptions &Opt,
                         const ShardResult &R) {
  auto Num = [](double D) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.6f", D);
    return std::string(Buf);
  };
  OS << "{\n"
     << "  \"shard_stats_schema_version\": 1,\n"
     << "  \"binaries\": " << Opt.Binaries.size() << ",\n"
     << "  \"shards\": " << R.ShardsResolved << ",\n"
     << "  \"auto_shards\": " << (Opt.AutoShards ? "true" : "false") << ",\n"
     << "  \"work_stealing\": " << (Opt.WorkStealing ? "true" : "false")
     << ",\n"
     << "  \"granularity\": \""
     << (Opt.Granularity == StealGranularity::Function ? "function"
                                                       : "binary")
     << "\",\n"
     << "  \"units\": {\n"
     << "    \"total\": " << R.Sched.UnitsTotal << ",\n"
     << "    \"lift\": " << R.Sched.UnitsLift << ",\n"
     << "    \"prewarm\": " << R.Sched.UnitsPrewarm << "\n"
     << "  },\n"
     << "  \"scheduler\": {\n"
     << "    \"claims\": " << R.Sched.Claims << ",\n"
     << "    \"steals\": " << R.Sched.Steals << ",\n"
     << "    \"requeues\": " << R.Sched.Requeues << ",\n"
     << "    \"workers_spawned\": " << R.WorkersSpawned << ",\n"
     << "    \"workers_crashed\": " << R.WorkersCrashed << ",\n"
     << "    \"workers_retried\": " << R.WorkersRetried << "\n"
     << "  },\n"
     << "  \"ledger\": {\n"
     << "    \"hits\": " << R.Sched.LedgerHits << ",\n"
     << "    \"misses\": " << R.Sched.LedgerMisses << ",\n"
     << "    \"records\": " << R.Sched.LedgerRecords << "\n"
     << "  },\n"
     << "  \"cost\": {\n"
     << "    \"estimated_seconds\": " << Num(R.Sched.EstimatedSeconds)
     << ",\n"
     << "    \"observed_seconds\": " << Num(R.Sched.ObservedSeconds) << "\n"
     << "  },\n"
     << "  \"exit\": " << R.Exit << "\n"
     << "}\n";
}

} // namespace hglift::shard
