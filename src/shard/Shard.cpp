//===- Shard.cpp - Multi-process sharded lifting --------------------------===//

#include "shard/Shard.h"

#include "api/Hglift.h"
#include "diag/Diag.h"
#include "diag/Json.h"
#include "driver/ExitCode.h"
#include "elf/ElfReader.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <sys/wait.h>
#include <unistd.h>

namespace hglift::shard {

using driver::ExitCode;
using driver::toExit;

std::vector<std::vector<size_t>> planShards(size_t NumBinaries,
                                            unsigned Shards) {
  if (Shards == 0)
    Shards = 1;
  std::vector<std::vector<size_t>> Plan(Shards);
  for (size_t I = 0; I < NumBinaries; ++I)
    Plan[I % Shards].push_back(I);
  return Plan;
}

std::string fragPath(const std::string &CacheDir, size_t Idx) {
  return CacheDir + "/shard/frag-" + std::to_string(Idx) + ".report.json";
}

namespace {

/// Render one binary's report fragment — the exact bytes `hglift
/// [check] --report-json` would write for it. Unreadable ELFs get a
/// fixed synthetic fragment (same schema envelope, outcome "unreadable")
/// so the merge stays total; its exit contribution is Fail, like the
/// plain CLI's.
std::string liftOneFragment(const ShardOptions &Opt, size_t Idx,
                            int &ExitAccum) {
  const std::string &Path = Opt.Binaries[Idx];
  auto Img = elf::readElfFile(Path);
  if (!Img) {
    ExitAccum = std::max(ExitAccum, toExit(ExitCode::Fail));
    std::ostringstream OS;
    OS << "{\n"
       << "  \"schema_version\": " << diag::ReportSchemaVersion << ",\n"
       << "  \"binary\": \"" << diag::jsonEscape(Path) << "\",\n"
       << "  \"outcome\": \"unreadable\",\n"
       << "  \"fail_reason\": \"cannot parse ELF file\",\n"
       << "  \"functions\": [\n  ]\n}\n";
    return OS.str();
  }

  Options O;
  O.Library = Opt.Library;
  O.CacheDir = Opt.CacheDir;
  O.CacheMaxMB = Opt.CacheMaxMB;
  O.CacheValidate = Opt.CacheValidate;
  O.Lift.Solver.Portfolio = Opt.Portfolio;
  if (Opt.MaxSeconds > 0)
    O.Lift.MaxSeconds = Opt.MaxSeconds;

  Session S(*Img, O);
  const hg::BinaryResult &R = S.lift();
  bool Good = R.Outcome == hg::LiftOutcome::Lifted;
  if (Opt.Check)
    Good = S.check().allProven() && Good;
  if (!Good)
    ExitAccum = std::max(ExitAccum, toExit(ExitCode::Fail));

  std::ostringstream OS;
  S.writeReportJson(OS);
  return OS.str();
}

/// Tempfile-then-rename so a concurrently crashing or retried worker can
/// never leave a torn fragment: readers see the old bytes or the new
/// bytes, nothing in between.
bool writeAtomically(const std::string &Path, const std::string &Bytes) {
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!Out)
      return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

bool ensureFragDir(const std::string &CacheDir, std::string &Err) {
  std::error_code EC;
  std::filesystem::create_directories(CacheDir + "/shard", EC);
  if (EC) {
    Err = "cannot create " + CacheDir + "/shard: " + EC.message();
    return false;
  }
  return true;
}

/// Build the worker argv for one shard. The slice is passed as a
/// comma-separated list of global indices; every CLI-serializable option
/// is forwarded so the worker reconstructs an identical ShardOptions.
std::vector<std::string> workerArgs(const ShardOptions &Opt,
                                    const std::vector<size_t> &Indices,
                                    const std::string &Exe) {
  std::string Spec;
  for (size_t I : Indices) {
    if (!Spec.empty())
      Spec += ",";
    Spec += std::to_string(I);
  }
  std::vector<std::string> A{Exe,          "shard", "--shard-worker",
                             Spec,         "--cache-dir", Opt.CacheDir,
                             "--shards",   std::to_string(Opt.Shards)};
  if (Opt.CacheMaxMB) {
    A.push_back("--cache-max-mb");
    A.push_back(std::to_string(Opt.CacheMaxMB));
  }
  if (!Opt.CacheValidate)
    A.push_back("--no-cache-validate");
  if (Opt.Check)
    A.push_back("--check");
  if (Opt.Library)
    A.push_back("--library");
  if (!Opt.Portfolio)
    A.push_back("--no-solver-portfolio");
  if (Opt.MaxSeconds > 0) {
    A.push_back("--max-seconds");
    A.push_back(std::to_string(Opt.MaxSeconds));
  }
  for (const std::string &B : Opt.Binaries)
    A.push_back(B);
  return A;
}

struct WorkerProc {
  pid_t Pid = -1;
  size_t ShardIdx = 0;
  unsigned Attempt = 0;
};

/// fork/exec one worker. InjectCrash plants the crash-now variable in the
/// child's environment only — the parent's environment is never touched,
/// so concurrent shards and the retry are unaffected.
pid_t spawnWorker(const std::vector<std::string> &Args, bool InjectCrash) {
  std::vector<char *> Argv;
  Argv.reserve(Args.size() + 1);
  for (const std::string &A : Args)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);

  pid_t Pid = ::fork();
  if (Pid != 0)
    return Pid; // parent (or fork failure, -1)
  if (InjectCrash)
    ::setenv("HGLIFT_SHARD_CRASH_NOW", "1", 1);
  else
    ::unsetenv("HGLIFT_SHARD_CRASH_NOW");
  ::execv(Argv[0], Argv.data());
  // exec failed: exit with the Usage code so the parent treats it as a
  // crash-class failure and reports it after the retry also fails.
  std::fprintf(stderr, "shard: cannot exec %s: %s\n", Argv[0],
               std::strerror(errno));
  ::_exit(toExit(ExitCode::Usage));
}

bool fragsPresent(const ShardOptions &Opt, const std::vector<size_t> &Indices) {
  for (size_t I : Indices)
    if (!std::filesystem::exists(fragPath(Opt.CacheDir, I)))
      return false;
  return true;
}

} // namespace

int runWorker(const ShardOptions &Opt, const std::vector<size_t> &Indices) {
  // Deterministic crash hook for the retry test: planted by the parent in
  // this process's environment, never set outside the harness.
  if (std::getenv("HGLIFT_SHARD_CRASH_NOW"))
    ::raise(SIGKILL);

  std::string Err;
  if (!ensureFragDir(Opt.CacheDir, Err)) {
    std::fprintf(stderr, "shard: %s\n", Err.c_str());
    return toExit(ExitCode::Io);
  }

  int Exit = toExit(ExitCode::Ok);
  for (size_t Idx : Indices) {
    if (Idx >= Opt.Binaries.size()) {
      std::fprintf(stderr, "shard: binary index %zu out of range\n", Idx);
      return toExit(ExitCode::Usage);
    }
    std::string Frag = liftOneFragment(Opt, Idx, Exit);
    if (!writeAtomically(fragPath(Opt.CacheDir, Idx), Frag)) {
      std::fprintf(stderr, "shard: cannot write %s\n",
                   fragPath(Opt.CacheDir, Idx).c_str());
      return toExit(ExitCode::Io);
    }
  }
  return Exit;
}

ShardResult runShards(const ShardOptions &Opt) {
  ShardResult R;
  if (Opt.Binaries.empty()) {
    R.Error = "no input binaries";
    R.Exit = toExit(ExitCode::Usage);
    return R;
  }
  if (Opt.CacheDir.empty()) {
    R.Error = "shard requires --cache-dir (workers coordinate through it)";
    R.Exit = toExit(ExitCode::Usage);
    return R;
  }
  if (!ensureFragDir(Opt.CacheDir, R.Error)) {
    R.Exit = toExit(ExitCode::Io);
    return R;
  }
  // Stale fragments from a previous run must not satisfy this one's
  // missing-fragment check (they could mask a crashed worker).
  for (size_t I = 0; I < Opt.Binaries.size(); ++I)
    std::remove(fragPath(Opt.CacheDir, I).c_str());

  auto Plan = planShards(Opt.Binaries.size(), Opt.Shards);

  if (Opt.Shards <= 1) {
    // Serial reference: the same per-binary code path, in-process.
    R.Exit = runWorker(Opt, Plan[0]);
    if (R.Exit >= toExit(ExitCode::Usage)) {
      R.Error = "serial lift failed";
      return R;
    }
  } else {
    std::string Exe = Opt.WorkerExe.empty() ? "/proc/self/exe" : Opt.WorkerExe;
    long CrashShard = -1;
    if (const char *TC = std::getenv("HGLIFT_SHARD_TEST_CRASH"))
      CrashShard = std::strtol(TC, nullptr, 10);

    // Per-shard exit codes; retried shards overwrite their first attempt.
    std::vector<int> ShardExit(Plan.size(), toExit(ExitCode::Ok));
    for (unsigned Attempt = 0; Attempt <= Opt.MaxRetries; ++Attempt) {
      std::vector<WorkerProc> Live;
      for (size_t SI = 0; SI < Plan.size(); ++SI) {
        if (Plan[SI].empty())
          continue;
        if (Attempt > 0 && ShardExit[SI] < toExit(ExitCode::Usage) &&
            fragsPresent(Opt, Plan[SI]))
          continue; // first attempt succeeded
        bool Inject = Attempt == 0 && static_cast<long>(SI) == CrashShard;
        pid_t Pid = spawnWorker(workerArgs(Opt, Plan[SI], Exe), Inject);
        if (Pid < 0) {
          R.Error = "fork failed";
          R.Exit = toExit(ExitCode::Io);
          return R;
        }
        ++R.WorkersSpawned;
        Live.push_back({Pid, SI, Attempt});
      }
      if (Live.empty())
        break;
      for (WorkerProc &W : Live) {
        int Status = 0;
        if (::waitpid(W.Pid, &Status, 0) < 0) {
          R.Error = "waitpid failed";
          R.Exit = toExit(ExitCode::Io);
          return R;
        }
        bool Crashed = WIFSIGNALED(Status) ||
                       (WIFEXITED(Status) &&
                        WEXITSTATUS(Status) >= toExit(ExitCode::Usage)) ||
                       !fragsPresent(Opt, Plan[W.ShardIdx]);
        if (Crashed) {
          ShardExit[W.ShardIdx] = toExit(ExitCode::Usage); // retry marker
          if (Attempt == 0) {
            ++R.WorkersCrashed;
          } else {
            R.Error = "shard " + std::to_string(W.ShardIdx) +
                      " failed twice (status " + std::to_string(Status) + ")";
            R.Exit = WIFEXITED(Status) ? WEXITSTATUS(Status)
                                       : toExit(ExitCode::Io);
            return R;
          }
        } else {
          ShardExit[W.ShardIdx] =
              WIFEXITED(Status) ? WEXITSTATUS(Status) : toExit(ExitCode::Ok);
        }
        if (W.Attempt > 0)
          ++R.WorkersRetried;
      }
      bool AnyCrashed = false;
      for (size_t SI = 0; SI < Plan.size(); ++SI)
        AnyCrashed |= ShardExit[SI] >= toExit(ExitCode::Usage);
      if (!AnyCrashed)
        break;
    }
    for (int E : ShardExit)
      R.Exit = std::max(R.Exit, E);
  }

  // Entry-ordered merge: each fragment spliced in verbatim. No timing, no
  // worker identity, no schedule-dependent bytes — this is what the
  // byte-identity gate compares against the serial run.
  std::string Merged;
  Merged += "{\"shard_schema_version\": 1, \"binaries\": [\n";
  for (size_t I = 0; I < Opt.Binaries.size(); ++I) {
    std::ifstream In(fragPath(Opt.CacheDir, I), std::ios::binary);
    if (!In) {
      R.Error = "missing fragment for " + Opt.Binaries[I];
      R.Exit = toExit(ExitCode::Io);
      return R;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    std::string Frag = SS.str();
    while (!Frag.empty() && Frag.back() == '\n')
      Frag.pop_back();
    Merged += Frag;
    Merged += I + 1 < Opt.Binaries.size() ? ",\n" : "\n";
  }
  Merged += "]}\n";
  R.MergedReport = std::move(Merged);
  R.Ok = true;
  return R;
}

} // namespace hglift::shard
