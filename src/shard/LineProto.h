//===- LineProto.h - Newline-framed message plumbing -----------*- C++ -*-===//
//
// The byte-level half of the shard claim protocol (REQ/RUN/FIN/BYE over a
// pipe pair), factored out so `hglift serve` speaks the same dialect over
// a socket: one message per '\n'-terminated line, every line far below
// PIPE_BUF, writes retried across EINTR until complete, reads buffered so
// a message split across read() calls reassembles transparently.
//
// Nothing here knows what the lines mean. Shard.cpp layers the grant
// protocol on top; serve/Serve.cpp layers the JSONL request/response
// protocol (docs/SERVE.md) on top. Both ends treat EOF and hard errors
// identically — the peer is gone — which is what makes crash handling
// (shard) and client-disconnect handling (serve) the same code shape.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SHARD_LINEPROTO_H
#define HGLIFT_SHARD_LINEPROTO_H

#include <cerrno>
#include <optional>
#include <string>

#include <unistd.h>

namespace hglift::shard {

/// Write all of S to Fd, retrying partial writes and EINTR. False when the
/// peer is gone (EPIPE with SIGPIPE ignored) or the fd is broken.
inline bool writeAll(int Fd, const std::string &S) {
  size_t Off = 0;
  while (Off < S.size()) {
    ssize_t N = ::write(Fd, S.data() + Off, S.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Blocking read of one '\n'-terminated line from Fd; Buf carries bytes
/// past the newline for the next call (callers keep one Buf per fd).
/// Returns the line without its newline; nullopt on EOF or a hard error
/// (the peer is gone).
inline std::optional<std::string> readLineBlocking(int Fd, std::string &Buf) {
  for (;;) {
    size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      std::string L = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      return L;
    }
    char Tmp[512];
    ssize_t N = ::read(Fd, Tmp, sizeof(Tmp));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return std::nullopt;
    }
    if (N == 0)
      return std::nullopt;
    Buf.append(Tmp, static_cast<size_t>(N));
  }
}

} // namespace hglift::shard

#endif // HGLIFT_SHARD_LINEPROTO_H
