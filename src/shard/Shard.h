//===- Shard.h - Multi-process sharded lifting ----------------*- C++ -*-===//
//
// Corpus-level parallelism by process, not by thread: a planner splits a
// list of binaries across N worker processes (fork/exec of this very
// binary with `--shard-worker`), each worker lifts its slice through the
// ordinary hglift::Session path, and the parent splices the per-binary
// report fragments back together in entry order. Coordination happens
// exclusively through the filesystem under --cache-dir: workers share the
// content-addressed artifact store (which is already safe for concurrent
// processes) and deposit fragments in <cache-dir>/shard/.
//
// The contract that makes this testable: the merged report is
// byte-identical to a serial run. That falls out of construction rather
// than luck — the serial path (Shards <= 1) IS runWorker() called
// in-process on every index, so both modes execute the same per-binary
// code and the merge reads the same fragment bytes. Report JSON contains
// no timing and no schedule-dependent fields, so fragment content depends
// only on (binary, options), never on which process produced it.
//
// Crash handling: a worker that dies on a signal (or exits with a
// malformed-invocation/IO code, or leaves fragments missing) is re-spawned
// once for its whole slice. Fragments are written tempfile-then-rename, so
// a retry never observes a torn file; a clean exit-1 worker (its slice
// contained a binary the analysis rejected) is a legitimate result and is
// NOT retried.
//
// Test hooks (no effect outside the harness):
//   HGLIFT_SHARD_TEST_CRASH=<k>  the parent arranges for shard k's FIRST
//                                attempt to kill itself before lifting;
//                                the retry runs clean. Exercised by
//                                tests/shard_test.cpp.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SHARD_SHARD_H
#define HGLIFT_SHARD_SHARD_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hglift::shard {

/// Everything a sharded run can be configured with. A deliberately small,
/// CLI-serializable subset of hglift::Options: whatever is set here must
/// survive the trip through a worker's argv, so only flat flags live here.
struct ShardOptions {
  /// Input ELF paths. Entry order is merge order, regardless of which
  /// shard lifts which binary.
  std::vector<std::string> Binaries;
  /// Worker process count. <= 1 runs the whole list in-process (the
  /// serial reference the byte-identity gate compares against).
  unsigned Shards = 1;
  /// Coordination root (required): shared artifact store plus the
  /// fragment directory <CacheDir>/shard/.
  std::string CacheDir;
  uint64_t CacheMaxMB = 0;
  bool CacheValidate = true;
  /// Run the Step-2 checker per binary (fragment then carries the proof
  /// summary, exactly as `hglift check --report-json` would emit it).
  bool Check = false;
  /// Lift exported symbols instead of the entry point.
  bool Library = false;
  /// Tiered relation-solver portfolio (--no-solver-portfolio turns the
  /// ablation legacy path back on, in every worker).
  bool Portfolio = true;
  /// Per-function wall budget, forwarded to workers (0 = library default).
  double MaxSeconds = 0;
  /// Executable to spawn as the worker. Empty = /proc/self/exe, which is
  /// correct when the caller is hglift itself; tests point this at the
  /// built hglift binary.
  std::string WorkerExe;
  /// Re-spawns granted to a crashed worker before the run is declared
  /// failed.
  unsigned MaxRetries = 1;
};

/// Round-robin partition of [0, NumBinaries) into Shards slices: binary i
/// goes to shard i % Shards. Deterministic, order-preserving within each
/// slice, and balanced to within one item. Slices can be empty when
/// Shards > NumBinaries.
std::vector<std::vector<size_t>> planShards(size_t NumBinaries,
                                            unsigned Shards);

/// Fragment path for global binary index Idx under CacheDir.
std::string fragPath(const std::string &CacheDir, size_t Idx);

struct ShardResult {
  /// Every fragment produced and merged (individual binaries may still
  /// have been *rejected* by the analysis — see Exit).
  bool Ok = false;
  /// Human-readable failure description when !Ok.
  std::string Error;
  /// Aggregate exit code per driver/ExitCode.h: 0 = every binary lifted
  /// (and proved, under Check), 1 = at least one rejected, 3 = artifact
  /// IO failure.
  int Exit = 0;
  unsigned WorkersSpawned = 0;
  /// Workers whose first attempt died on a signal / bad exit / missing
  /// fragments.
  unsigned WorkersCrashed = 0;
  unsigned WorkersRetried = 0;
  /// The merged report: {"shard_schema_version": 1, "binaries": [f0, f1,
  /// ...]} with each fragment spliced in verbatim, entry order.
  std::string MergedReport;
};

/// Worker entry: lift (and optionally check) the given global indices of
/// Opt.Binaries, writing one report fragment per index. Returns an exit
/// code: max of the per-binary codes (0/1), or 3 if a fragment could not
/// be written. Runs in-process — this is also the serial path.
int runWorker(const ShardOptions &Opt, const std::vector<size_t> &Indices);

/// Orchestrate the full run: plan, spawn (or run serially), collect,
/// retry crashes once, merge.
ShardResult runShards(const ShardOptions &Opt);

} // namespace hglift::shard

#endif // HGLIFT_SHARD_SHARD_H
