//===- Shard.h - Multi-process sharded lifting ----------------*- C++ -*-===//
//
// Corpus-level parallelism by process, not by thread — and since the
// work-stealing rework, *pull-based*: the parent owns one queue of work
// units and workers claim the next unit over a pipe protocol instead of
// receiving a fixed slice at fork time. A worker that finishes early
// simply pulls again, so a corpus with one dominant binary no longer
// leaves N-1 processes idle behind a straggler.
//
//   parent                           worker k (fork/exec of hglift with
//     planUnits(): cost-model         `--shard-worker-fds G,R`)
//     ordered queue                     |
//     |  <-- "REQ"  -------------------+   claim the next unit
//     |  --- "RUN <id> ..." -->        |   lift it, write its fragment
//     |  <-- "FIN <id> <exit> <s>" ----+   report outcome + seconds
//     |  <-- "REQ" ... "BYE" -->       |   drain until the queue is dry
//
// Claim order comes from a cost model: a static heuristic (executable
// bytes, function count) refined by the persisted cost ledger
// (store/CostLedger.h) under --cache-dir, so warm corpora schedule
// longest-job-first from observed lift seconds. Units are whole binaries
// by default; with function granularity, large library binaries are
// additionally split into advisory *prewarm* units that populate the
// shared artifact store so the fragment-producing lift unit finishes in
// cache-hit time.
//
// The contract that makes all of this testable is unchanged: the merged
// report is byte-identical to a serial run under any worker count and any
// steal order. That falls out of construction — the serial path (one
// shard) executes the very same unit code in-process, fragment content
// depends only on (binary, options), and prewarm units only ever touch
// the store, whose warm-vs-cold report identity is already gated.
//
// Crash handling: a worker that dies on a signal (or exits without
// draining cleanly) has its claimed-but-unfinished unit returned to the
// queue and is re-spawned once; fragments are written tempfile-then-
// rename, so a retry never observes a torn file. A clean per-unit exit 1
// (the analysis rejected that binary) is a result, not a crash.
//
// Test hooks (no effect outside the harness):
//   HGLIFT_SHARD_TEST_CRASH=<k>           worker k's FIRST spawn kills
//                                         itself before claiming anything.
//   HGLIFT_SHARD_TEST_CRASH_MIDCLAIM=<k>  worker k's FIRST spawn kills
//                                         itself after claiming its first
//                                         unit and before executing it —
//                                         the mid-claim requeue path.
// Both are planted by the parent in that child's environment only;
// retries run clean. Exercised by tests/shard_test.cpp.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SHARD_SHARD_H
#define HGLIFT_SHARD_SHARD_H

#include "support/LiftStats.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hglift::shard {

/// How finely the queue splits the corpus into claimable units.
enum class StealGranularity : uint8_t {
  /// One lift unit per input binary (the default).
  Binary,
  /// Additionally split large library binaries into store-prewarm units
  /// of PrewarmChunk exported functions each; the binary's lift unit runs
  /// after them and assembles its fragment from cache hits.
  Function,
};

/// Everything a sharded run can be configured with. A deliberately small,
/// CLI-serializable subset of hglift::Options: whatever is set here must
/// survive the trip through a worker's argv, so only flat flags live here.
struct ShardOptions {
  /// Input ELF paths. Entry order is merge order, regardless of which
  /// worker lifts which binary.
  std::vector<std::string> Binaries;
  /// Worker process count. <= 1 runs the whole queue in-process (the
  /// serial reference the byte-identity gate compares against). Ignored
  /// when AutoShards is set.
  unsigned Shards = 1;
  /// `--shards auto`: probe hardware threads, cap by corpus size and
  /// available memory (resolveAutoShards).
  bool AutoShards = false;
  /// Pull-based claim order (the default). False restores the static
  /// round-robin assignment as an ablation: each worker may only claim
  /// units the round-robin plan owns, in plan order. The protocol and the
  /// merged bytes are identical either way; only idle time differs.
  bool WorkStealing = true;
  StealGranularity Granularity = StealGranularity::Binary;
  /// Exported functions per prewarm unit (function granularity). A
  /// library binary is split only when it has more than this many.
  unsigned PrewarmChunk = 4;
  /// Render a live progress/ETA line to stderr (claimed/completed units,
  /// per-worker state, steal count, ledger-calibrated ETA).
  bool Progress = false;
  /// Coordination root (required): shared artifact store, the fragment
  /// directory <CacheDir>/shard/, and the cost ledger <CacheDir>/ledger/.
  std::string CacheDir;
  uint64_t CacheMaxMB = 0;
  bool CacheValidate = true;
  /// Run the Step-2 checker per binary (fragment then carries the proof
  /// summary, exactly as `hglift check --report-json` would emit it).
  bool Check = false;
  /// Lift exported symbols instead of the entry point.
  bool Library = false;
  /// Tiered relation-solver portfolio (--no-solver-portfolio turns the
  /// ablation legacy path back on, in every worker).
  bool Portfolio = true;
  /// Per-function wall budget, forwarded to workers (0 = library default).
  double MaxSeconds = 0;
  /// Executable to spawn as the worker. Empty = /proc/self/exe, which is
  /// correct when the caller is hglift itself; tests point this at the
  /// built hglift binary.
  std::string WorkerExe;
  /// Re-spawns granted to a crashed worker before the run is declared
  /// failed.
  unsigned MaxRetries = 1;
};

/// One claimable unit of the queue.
struct WorkUnit {
  enum class Kind : uint8_t {
    Lift,    ///< lift (and optionally check) one binary, write its fragment
    Prewarm, ///< lift a chunk of one library binary's functions into the
             ///< shared store; advisory — failure degrades to a cold cache
  };
  Kind K = Kind::Lift;
  /// Global index into ShardOptions::Binaries.
  size_t Bin = 0;
  /// Function entry addresses (Prewarm only).
  std::vector<uint64_t> Entries;
  /// The worker the static round-robin plan would give this unit to; a
  /// claim by any other worker counts as a steal.
  unsigned RROwner = 0;
  /// Cost estimate in (pseudo-)seconds: ledger seconds when FromLedger,
  /// otherwise the static executable-bytes heuristic.
  double Est = 0;
  bool FromLedger = false;
  /// Cost-ledger key of the binary (0 when the ELF is unreadable).
  uint64_t CostKey = 0;
  /// Prewarm units of the same binary that must complete (or be given up
  /// on) before this Lift unit is granted — avoids two workers lifting
  /// the same functions concurrently.
  unsigned DepsLeft = 0;
  /// Unit ids whose DepsLeft this unit's completion decrements.
  std::vector<size_t> Dependents;
};

/// Round-robin partition of [0, NumBinaries) into Shards slices: binary i
/// goes to shard i % Shards. Deterministic, order-preserving within each
/// slice, and balanced to within one item. Slices can be empty when
/// Shards > NumBinaries. This is the *reference* assignment: the
/// --no-work-stealing ablation grants exactly these slices, and the steal
/// counter measures departures from it.
std::vector<std::vector<size_t>> planShards(size_t NumBinaries,
                                            unsigned Shards);

/// `--shards auto`: hardware threads, capped by the unit count and by
/// available memory (MemAvailable / 256 MiB per worker, when
/// /proc/meminfo is readable). Never less than 1.
unsigned resolveAutoShards(size_t NumUnits);

/// Build the cost-model-ordered unit queue: read each ELF (unreadable
/// ones become cost-0 lift units that emit the synthetic "unreadable"
/// fragment), consult the ledger, split large library binaries into
/// prewarm chunks under function granularity. Sched gets the plan-time
/// counters (units, ledger hits/misses, estimated seconds).
std::vector<WorkUnit> planUnits(const ShardOptions &Opt, unsigned Shards,
                                ShardSchedStats &Sched);

/// Fragment path for global binary index Idx under CacheDir.
std::string fragPath(const std::string &CacheDir, size_t Idx);

/// Execute one unit in this process — the code path both the serial
/// reference and every worker run. Lift units write their fragment and
/// return the per-binary exit code (0/1, or 3 when the fragment cannot be
/// written); Prewarm units populate the store and always return 0.
/// SecondsOut (optional) receives the unit's wall time.
int execUnit(const ShardOptions &Opt, const WorkUnit &U,
             double *SecondsOut = nullptr);

/// Worker entry for `--shard-worker-fds`: claim units over the pipe
/// protocol (GrantFd: parent-to-worker RUN/BYE lines; RequestFd:
/// worker-to-parent REQ/FIN lines) until BYE. Returns 0 after a clean
/// drain; per-unit outcomes travel in FIN messages, not the exit code.
int runWorkerLoop(const ShardOptions &Opt, int GrantFd, int RequestFd);

struct ShardResult {
  /// Every fragment produced and merged (individual binaries may still
  /// have been *rejected* by the analysis — see Exit).
  bool Ok = false;
  /// Human-readable failure description when !Ok.
  std::string Error;
  /// Aggregate exit code per driver/ExitCode.h: 0 = every binary lifted
  /// (and proved, under Check), 1 = at least one rejected, 3 = artifact
  /// IO failure.
  int Exit = 0;
  /// Worker count the run actually used (after `--shards auto` probing
  /// and capping by the unit count).
  unsigned ShardsResolved = 1;
  unsigned WorkersSpawned = 0;
  /// Workers that died on a signal or exited without draining cleanly.
  unsigned WorkersCrashed = 0;
  unsigned WorkersRetried = 0;
  /// Scheduler counters (units, claims, steals, requeues, ledger usage).
  ShardSchedStats Sched;
  /// The merged report: {"shard_schema_version": 1, "binaries": [f0, f1,
  /// ...]} with each fragment spliced in verbatim, entry order.
  std::string MergedReport;
};

/// Orchestrate the full run: plan the queue, spawn workers (or drain the
/// queue in-process), feed claims, requeue crashed units, retry crashed
/// workers once, merge fragments, persist ledger observations.
ShardResult runShards(const ShardOptions &Opt);

/// The `hglift shard --stats-json` payload: resolved worker count, unit
/// and claim counters, steal/requeue counts, ledger usage, and cost-model
/// totals. Schema documented in docs/CLI.md.
void writeShardStatsJson(std::ostream &OS, const ShardOptions &Opt,
                         const ShardResult &R);

} // namespace hglift::shard

#endif // HGLIFT_SHARD_SHARD_H
