#include "api/Hglift.h"

#include "driver/Report.h"

namespace hglift {

Session::Session(const elf::BinaryImage &Img, Options O)
    : Img(Img), Opt(std::move(O)) {
  // The facade's VSA group is authoritative over the low-level SymConfig:
  // check() builds its CheckContext from the same stored copy, so Step-1
  // and Step-2 always resolve with identical configuration.
  Opt.Lift.Sym.Vsa = Opt.Vsa.Enable;
  Opt.Lift.Sym.VsaMaxTargets = Opt.Vsa.MaxTargets;
  if (Opt.Cache.Shared) {
    // A host-owned store reused across Sessions: adopt it, and drop any
    // hit-time validations a previous binary left behind — they are keyed
    // by entry address only and must never leak into this report.
    CacheRef = Opt.Cache.Shared;
    CacheRef->resetValidations();
    Opt.Lift.Cache = CacheRef;
  } else if (!Opt.Cache.Dir.empty()) {
    store::CacheStore::Options SO;
    SO.Dir = Opt.Cache.Dir;
    SO.MaxBytes = Opt.Cache.MaxMB * 1024 * 1024;
    SO.Validate = Opt.Cache.Validate;
    Cache = std::make_unique<store::CacheStore>(std::move(SO));
    CacheRef = Cache.get();
    Opt.Lift.Cache = CacheRef;
  }
  Lifter = std::make_unique<hg::Lifter>(Img, Opt.Lift);
}

Session::~Session() = default;

const hg::BinaryResult &Session::lift() {
  if (!Lifted) {
    Result = Opt.Library ? Lifter->liftLibrary() : Lifter->liftBinary();
    Lifted = true;
  }
  return Result;
}

const exporter::CheckResult &Session::check() {
  if (Checked)
    return Check;
  const hg::BinaryResult &R = lift();
  exporter::CheckContext CC{Img, Opt.Lift.Sym, nullptr};
  if (CacheRef) {
    // Merge in function-entry order — the same order checkBinary merges —
    // reusing the hit-time Step-2 proofs where the cache has them (every
    // reused result is fully proven; failed validations became misses).
    // Re-proving a hit here would also advance its arena's fresh-variable
    // counter past what a cold run's would be, so reuse is what keeps warm
    // and cold output byte-identical, not just what makes warm runs fast.
    exporter::CheckResult Sum;
    for (const hg::FunctionResult &F : R.Functions) {
      if (std::optional<exporter::CheckResult> V =
              CacheRef->takeValidation(F.Entry))
        Sum.merge(*V);
      else
        Sum.merge(exporter::checkFunction(CC, F));
    }
    Check = std::move(Sum);
  } else {
    Check = exporter::checkBinary(CC, R, Opt.Lift.Threads);
  }
  Checked = true;
  return Check;
}

void Session::printReport(std::ostream &OS, bool Verbose) {
  driver::printBinaryReport(OS, lift(), Lifter->exprContext(), Verbose);
}

void Session::writeStatsJson(std::ostream &OS) {
  driver::writeStatsJson(OS, lift());
}

void Session::writeReportJson(std::ostream &OS) {
  driver::writeReportJson(OS, lift(), Checked ? &Check : nullptr, witnesses());
}

expr::ExprContext &Session::scratchContext() { return Lifter->exprContext(); }

std::optional<store::CacheStats> Session::cacheStats() const {
  if (!CacheRef)
    return std::nullopt;
  return CacheRef->stats();
}

} // namespace hglift
