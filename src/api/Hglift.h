//===- Hglift.h - The libhglift public facade ------------------*- C++ -*-===//
//
// One entry point for every consumer of the lifter — the CLI, the fuzz
// campaign, the benchmarks, and the tests all drive lifting through this
// header instead of wiring Lifter/CacheStore/checkBinary together by hand:
//
//   hglift::Options O;
//   O.Lift.Threads = 4;
//   O.Cache.Dir = "/var/cache/hglift";      // optional incremental store
//   hglift::Session S(Img, O);
//   const hg::BinaryResult &R = S.lift();    // Step 1 (cache-aware)
//   const exporter::CheckResult &C = S.check(); // Step 2
//   S.writeReportJson(Out);                  // includes C iff check() ran
//
// Cache semantics: when Cache.Dir is set, lifts consult the content-
// addressed store (store/Store.h). Hits skip Algorithm 1 but are re-proven
// through the Step-2 checker before being returned (unless Cache.Validate
// is explicitly turned off), so a warm run makes exactly the same
// soundness claim as a cold one. check() reuses those hit-time proofs
// instead of proving the same edges twice; because every reused result was
// fully proven, a warm check() is byte-for-byte identical to a cold one in
// the report, and substantially faster.
//
// A Session is single-owner and not thread-safe; internal lifting/checking
// parallelism is controlled by Options::Lift.Threads as usual.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_API_HGLIFT_H
#define HGLIFT_API_HGLIFT_H

#include "export/HoareChecker.h"
#include "hg/Lifter.h"
#include "store/Store.h"

#include <memory>
#include <optional>
#include <ostream>
#include <string>

namespace hglift {

/// Everything a lift-and-check run can be configured with. Plain data;
/// copy, fill in, hand to a Session. Related knobs live in nested plain-
/// data sub-structs (Cache, Witness, Vsa) so call sites read as
/// `O.Cache.Dir = ...` and new knobs have an obvious home.
struct Options {
  /// Step-1 configuration (threads, fuel, ablations, ...). Options::Lift
  /// .Cache is managed by the Session when Cache.Dir is set; leave it
  /// null. Lift.Sym's VSA fields are overwritten from Options::Vsa at
  /// Session construction — configure VSA through Options::Vsa only.
  hg::LiftConfig Lift;
  /// Lift every exported function symbol instead of following calls from
  /// the ELF entry point (shared-object mode, paper §5.1).
  bool Library = false;

  /// The incremental artifact store (store/Store.h).
  struct CacheOptions {
    /// Directory of the content-addressed store. Empty = no cache.
    /// Created on first use; safe to share between concurrent processes.
    std::string Dir;
    /// Byte budget for the store's objects/ directory in MiB (0 = no
    /// limit). Exceeding it after a store evicts least-recently-used
    /// entries.
    uint64_t MaxMB = 0;
    /// Re-prove every cache hit through the Step-2 checker before using
    /// it (the default, and the soundness story). Turning this off trusts
    /// the stored graphs and is only defensible for throwaway exploration.
    bool Validate = true;
    /// Use this already-open store instead of constructing one from Dir
    /// (which is then ignored). Non-owning; must outlive the Session.
    /// This is how a long-lived host — the `hglift serve` daemon — keeps
    /// one warm store per worker thread across many Sessions: the
    /// counters accumulate a cross-request picture and the directory
    /// handle stays hot. Sharing is *sequential* per instance (one
    /// Session at a time); concurrent Sessions should each use their own
    /// instance over the same directory, which the on-disk format makes
    /// safe. The Session clears pending hit-time validations at
    /// construction (CacheStore::resetValidations) so a previous binary's
    /// proofs can never be merged into this one's report.
    store::CacheStore *Shared = nullptr;
  };
  CacheOptions Cache;

  /// Incorrectness witnesses: when Witness.Dir is non-empty, a check run
  /// is followed by a witness search (src/witness) over every VerifError
  /// and unsoundness annotation; confirmed witnesses land in Witness.Dir
  /// as replayable fuzz_repro_witness_* sidecar pairs and the report gains
  /// a `witnesses` section. The Session only stores the summary (see
  /// setWitnesses); the search itself is driven by
  /// witness::attachWitnesses so the api layer does not depend on the
  /// searcher.
  struct WitnessOptions {
    std::string Dir;
    /// Max candidate initial states executed per diagnostic site.
    unsigned Budget = 64;
  };
  WitnessOptions Witness;

  /// Value-set analysis for indirect jumps/calls (docs/VSA.md).
  struct VsaOptions {
    /// Off (`--no-vsa`) reproduces the legacy absolute-jump-table-only
    /// resolver exactly: unresolvable sites keep today's annotations.
    bool Enable = true;
    /// Cap on distinct targets one resolved site may fan out to
    /// (`--vsa-max-targets`).
    unsigned MaxTargets = 64;
  };
  VsaOptions Vsa;
};

/// One lift-and-check run over one binary image. Owns the Lifter, the
/// optional cache store, and the results; lift() and check() are memoized
/// so report writers can be called in any order afterwards.
class Session {
public:
  /// Img must outlive the Session (results hold pointers into it).
  Session(const elf::BinaryImage &Img, Options Opt);
  ~Session();

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Run Step 1 (or replay it from the cache). Memoized.
  const hg::BinaryResult &lift();

  /// Run Step 2 over the lifted result (lifting first if needed): one
  /// theorem per Hoare Graph edge. Cache hits that were already re-proven
  /// at lookup time are not proven again — their hit-time CheckResults are
  /// merged in, in function-entry order, which keeps warm output identical
  /// to cold. Memoized.
  const exporter::CheckResult &check();

  /// Whether check() has run (writeReportJson includes its summary iff so).
  bool checked() const { return Checked; }
  /// The memoized Step-2 result, or null before check().
  const exporter::CheckResult *checkResult() const {
    return Checked ? &Check : nullptr;
  }

  /// Human-readable per-binary report (outcome, Table 1 columns, stats,
  /// diagnostics); Verbose additionally dumps every Hoare Graph.
  void printReport(std::ostream &OS, bool Verbose = false);
  /// The --stats-json payload.
  void writeStatsJson(std::ostream &OS);
  /// The --report-json payload; includes the Step-2 summary iff check()
  /// has run and the `witnesses` section iff a witness summary was
  /// attached. Bytes are identical for every thread count and for warm vs
  /// cold cache runs.
  void writeReportJson(std::ostream &OS);

  /// Attach the result of a witness search (witness::attachWitnesses does
  /// this); writeReportJson renders it as the `witnesses` section.
  void setWitnesses(diag::WitnessSummary W) {
    Witnesses = std::move(W);
    HasWitnesses = true;
  }
  /// The attached witness summary, or null when no search ran.
  const diag::WitnessSummary *witnesses() const {
    return HasWitnesses ? &Witnesses : nullptr;
  }

  /// Scratch expression context for exporters that render results (NOT
  /// the context lifted expressions live in — each FunctionResult carries
  /// its own arena).
  expr::ExprContext &scratchContext();

  const elf::BinaryImage &image() const { return Img; }
  const Options &options() const { return Opt; }
  /// Store counters (hits, misses, validations, evictions), or nullopt
  /// when no CacheDir was configured.
  std::optional<store::CacheStats> cacheStats() const;

private:
  const elf::BinaryImage &Img;
  Options Opt;
  std::unique_ptr<store::CacheStore> Cache; ///< owned; null when none or shared
  store::CacheStore *CacheRef = nullptr;    ///< owned or Options::SharedCache
  std::unique_ptr<hg::Lifter> Lifter;

  bool Lifted = false;
  hg::BinaryResult Result;
  bool Checked = false;
  exporter::CheckResult Check;
  bool HasWitnesses = false;
  diag::WitnessSummary Witnesses;
};

} // namespace hglift

#endif // HGLIFT_API_HGLIFT_H
