//===- Store.h - Content-addressed on-disk HG artifact store ---*- C++ -*-===//
//
// A git-like object store for serialized function lifts:
//
//   DIR/objects/<digest>.hgfn   immutable content blobs, named by the FNV
//                               digest of their bytes; written via
//                               tempfile + rename (atomic on POSIX)
//   DIR/index/<entry>-<cfg>.ref mutable pointers: the object digest
//                               currently cached for (function entry,
//                               config digest); same atomic write
//
// Soundness story: a hit is NEVER trusted. The entry header's digests
// (instruction bytes re-read from the current image, config, semantics
// revision, schema version) gate deserialization, and the deserialized
// graph is then re-validated through the Step-2 checker — one theorem per
// edge, exactly what the paper's Isabelle step would re-prove. Anything
// short of a fully proven graph degrades to a clean miss and a fresh lift.
// Validation is skippable only by explicit opt-out (--no-cache-validate),
// which trades the soundness story for speed and says so in the docs.
//
// Concurrency: lookup/store may be called from many lifting workers (and
// many processes sharing one DIR). All writes are tempfile+rename; a torn
// or half-written entry can never be observed, only a missing or a
// complete one. Readers treat every failure mode — missing ref, missing
// object, checksum mismatch, malformed payload — as a miss.
//
// Eviction: when the configured byte budget is exceeded after a store,
// oldest-mtime objects are removed first (hits refresh mtime, making this
// LRU); refs pointing at evicted objects simply miss later.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_STORE_STORE_H
#define HGLIFT_STORE_STORE_H

#include "export/HoareChecker.h"
#include "store/Serialize.h"

#include <map>
#include <mutex>
#include <string>

namespace hglift::store {

struct CacheStats {
  uint64_t Hits = 0;      ///< lookups served from the store
  uint64_t Misses = 0;    ///< lookups that fell through to a fresh lift
  uint64_t Stored = 0;    ///< entries written
  uint64_t Validated = 0; ///< hits that passed Step-2 re-validation
  uint64_t ValidationFailures = 0; ///< hits rejected by Step-2 (degraded to miss)
  uint64_t Evictions = 0; ///< objects removed by the byte-budget sweep

  /// Fold another counter snapshot in — consumers that own several store
  /// instances over one directory (one per serve worker thread) aggregate
  /// a fleet-wide picture this way.
  CacheStats &operator+=(const CacheStats &O) {
    Hits += O.Hits;
    Misses += O.Misses;
    Stored += O.Stored;
    Validated += O.Validated;
    ValidationFailures += O.ValidationFailures;
    Evictions += O.Evictions;
    return *this;
  }
};

class CacheStore : public hg::FunctionCache {
public:
  struct Options {
    std::string Dir;
    /// Byte budget for objects/ (0 = unlimited). Checked after stores.
    uint64_t MaxBytes = 0;
    /// Re-validate every hit through the Step-2 checker before returning
    /// it. Leave on unless you accept trusting stored graphs.
    bool Validate = true;
  };

  explicit CacheStore(Options O);

  std::optional<hg::FunctionResult> lookup(const elf::BinaryImage &Img,
                                           const hg::LiftConfig &Cfg,
                                           uint64_t Entry) override;
  void store(const elf::BinaryImage &Img, const hg::LiftConfig &Cfg,
             const hg::FunctionResult &F) override;

  CacheStats stats() const;

  /// The Step-2 result of a hit's re-validation, by function entry —
  /// always fully proven (failed validations become misses). Consumers
  /// running their own binary-wide check (hglift --check) reuse these
  /// instead of re-checking, which both avoids double work and keeps the
  /// fresh-variable sequence identical to a cold run's.
  std::optional<exporter::CheckResult> takeValidation(uint64_t Entry);

  /// Drop every pending hit-time validation. A store instance reused
  /// across *sequential* Sessions (the serve daemon keeps one per worker
  /// thread warm across requests) must call this between binaries:
  /// validations are keyed by function entry address, and a stale entry
  /// from the previous binary could otherwise be merged into an unrelated
  /// function's Step-2 summary when entry addresses collide. Counters are
  /// untouched — they are cumulative by design.
  void resetValidations();

private:
  std::optional<hg::FunctionResult> lookupImpl(const elf::BinaryImage &Img,
                                               const hg::LiftConfig &Cfg,
                                               uint64_t Entry);
  void evictOverBudget();

  Options Opt;
  mutable std::mutex Mu; ///< guards Stats and Validations (files are
                         ///< atomic-rename safe on their own)
  CacheStats Stats;
  std::map<uint64_t, exporter::CheckResult> Validations;
};

} // namespace hglift::store

#endif // HGLIFT_STORE_STORE_H
