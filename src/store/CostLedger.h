//===- CostLedger.h - Persisted per-binary lift-cost ledger ----*- C++ -*-===//
//
// The shard scheduler's memory of how expensive a binary actually was:
// one tiny record per binary, keyed by an FNV digest of its executable
// bytes, holding an exponentially-weighted average of observed lift
// seconds. Warm corpora therefore schedule longest-job-first from real
// data instead of the static text-size heuristic.
//
// The ledger lives inside the artifact store directory
// (<cache-dir>/ledger/<key>.cost) and follows the store's posture
// exactly:
//
//   * writes are tempfile+rename — concurrent shard runs can race a
//     ledger entry and readers still only ever see a complete record;
//   * reads validate, never trust: a record must re-serialize to the
//     exact bytes on disk (canonical form) and carry sane values, or the
//     lookup degrades to a miss and the scheduler falls back to the
//     static heuristic;
//   * the ledger is advisory only. It orders work; it can never change
//     what any unit computes, so a corrupt, stale, or adversarial ledger
//     cannot perturb a single report byte (tests/cost_ledger_test.cpp
//     pins this).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_STORE_COSTLEDGER_H
#define HGLIFT_STORE_COSTLEDGER_H

#include <cstdint>
#include <optional>
#include <string>

namespace hglift::elf {
class BinaryImage;
}

namespace hglift::store {

/// Format version of the on-disk record. Bump on any layout change;
/// old-version records are misses.
constexpr uint32_t CostLedgerVersion = 1;

/// One ledger record: the content key, the smoothed observed lift time,
/// and how many observations fed it.
struct CostRecord {
  uint64_t Key = 0;
  double Seconds = 0;
  uint32_t Samples = 0;

  bool operator==(const CostRecord &O) const {
    return Key == O.Key && Seconds == O.Seconds && Samples == O.Samples;
  }
};

/// Content key for cost purposes: FNV-1a over every executable segment's
/// address and bytes. Deliberately instruction-byte-only — symbol renames
/// and rodata edits keep the key (costs barely move), code changes roll it.
uint64_t costKey(const elf::BinaryImage &Img);

/// Canonical serialization: "hgcost <version> <key> <seconds> <samples>\n"
/// with fixed field widths. Byte-deterministic for a given record.
std::string serializeCostRecord(const CostRecord &R);

/// Strict parse: exact canonical form only (a parsed record must
/// re-serialize to the input bytes), version CostLedgerVersion, finite
/// non-negative seconds under 1e6, samples in [1, 1e6]. Anything else is
/// nullopt — the caller degrades to the static heuristic.
std::optional<CostRecord> parseCostRecord(const std::string &Bytes);

/// The ledger directory handle. Cheap to construct; every operation goes
/// to the filesystem so concurrent processes compose the same way the
/// artifact store does.
class CostLedger {
public:
  explicit CostLedger(std::string Dir) : Dir(std::move(Dir)) {}

  /// Path of Key's record file under Dir.
  std::string entryPath(uint64_t Key) const;

  /// Read and validate Key's record. nullopt on missing, torn, corrupt,
  /// wrong-version, or key-mismatched entries (validate-don't-trust).
  std::optional<CostRecord> lookup(uint64_t Key) const;

  /// Fold one observation into Key's record (EWMA, alpha 0.5 — warm data
  /// adapts quickly to code changes the key cannot see, e.g. a faster
  /// solver) and persist it atomically. False only on IO failure, which
  /// callers may ignore: the ledger is advisory.
  bool record(uint64_t Key, double ObservedSeconds);

  const std::string &dir() const { return Dir; }

private:
  std::string Dir;
};

} // namespace hglift::store

#endif // HGLIFT_STORE_COSTLEDGER_H
