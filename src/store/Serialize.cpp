#include "store/Serialize.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <unordered_map>

namespace hglift::store {

using expr::Expr;
using expr::ExprContext;
using expr::ExprKind;
using expr::VarInfo;

namespace {

constexpr uint32_t Magic = 0x4E464748; // "HGFN" little-endian

constexpr uint64_t FnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t FnvPrime = 0x100000001b3ULL;

uint64_t fnv1a(uint64_t H, const uint8_t *P, size_t N) {
  for (size_t I = 0; I < N; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

uint64_t fnv1aU64(uint64_t H, uint64_t V) {
  uint8_t B[8];
  for (int I = 0; I < 8; ++I)
    B[I] = static_cast<uint8_t>(V >> (8 * I));
  return fnv1a(H, B, 8);
}

// --- primitive writer/reader (fixed-width little-endian) -------------------

struct Writer {
  std::vector<uint8_t> Buf;

  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }
  void append(const Writer &O) {
    Buf.insert(Buf.end(), O.Buf.begin(), O.Buf.end());
  }
};

struct Reader {
  const std::vector<uint8_t> &Buf;
  size_t Pos = 0;
  bool Fail = false;

  explicit Reader(const std::vector<uint8_t> &B) : Buf(B) {}

  size_t remaining() const { return Fail ? 0 : Buf.size() - Pos; }

  uint8_t u8() {
    if (remaining() < 1) {
      Fail = true;
      return 0;
    }
    return Buf[Pos++];
  }
  uint32_t u32() {
    if (remaining() < 4) {
      Fail = true;
      return 0;
    }
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Buf[Pos++]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (remaining() < 8) {
      Fail = true;
      return 0;
    }
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Buf[Pos++]) << (8 * I);
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (remaining() < N) {
      Fail = true;
      return std::string();
    }
    std::string S(reinterpret_cast<const char *>(Buf.data() + Pos), N);
    Pos += N;
    return S;
  }
  /// A count of elements each at least MinBytes wide; rejects counts that
  /// cannot fit in the remaining bytes (corrupt input must not OOM us).
  uint32_t count(size_t MinBytes = 1) {
    uint32_t N = u32();
    if (static_cast<uint64_t>(N) * MinBytes > remaining()) {
      Fail = true;
      return 0;
    }
    return N;
  }
};

// --- expression table ------------------------------------------------------

/// Assigns 1-based indices to expressions on first use (0 = null). The
/// table is emitted in assignment order, so every Op/Deref operand has a
/// smaller index than its user.
struct ExprTable {
  std::vector<const Expr *> Order;
  std::unordered_map<const Expr *, uint32_t> Index;

  uint32_t ref(const Expr *E) {
    if (!E)
      return 0;
    auto It = Index.find(E);
    if (It != Index.end())
      return It->second;
    for (const Expr *Op : E->operands())
      ref(Op);
    Order.push_back(E);
    uint32_t Id = static_cast<uint32_t>(Order.size());
    Index.emplace(E, Id);
    return Id;
  }
};

void writeExprTable(Writer &W, const ExprTable &T, const ExprContext &Ctx) {
  W.u32(static_cast<uint32_t>(T.Order.size()));
  for (const Expr *E : T.Order) {
    W.u8(static_cast<uint8_t>(E->kind()));
    W.u8(E->width());
    switch (E->kind()) {
    case ExprKind::Const:
      W.u64(E->constVal());
      break;
    case ExprKind::Var: {
      const VarInfo &VI = Ctx.varInfo(E->varId());
      W.u8(static_cast<uint8_t>(VI.Cls));
      W.str(VI.Name);
      W.u64(VI.Aux);
      break;
    }
    case ExprKind::Op: {
      W.u8(static_cast<uint8_t>(E->opcode()));
      W.u32(static_cast<uint32_t>(E->operands().size()));
      for (const Expr *Op : E->operands())
        W.u32(T.Index.at(Op));
      break;
    }
    case ExprKind::Deref:
      W.u32(E->derefSize());
      W.u32(T.Index.at(E->derefAddr()));
      break;
    }
  }
}

/// Rebuilds the table into Ctx. Entry 0 is null; forward references fail.
std::vector<const Expr *> readExprTable(Reader &R, ExprContext &Ctx) {
  std::vector<const Expr *> Table;
  uint32_t N = R.count(2);
  Table.reserve(N + 1);
  Table.push_back(nullptr);
  auto at = [&](uint32_t Id) -> const Expr * {
    if (Id >= Table.size() || (Id == 0)) {
      R.Fail = true;
      return nullptr;
    }
    return Table[Id];
  };
  for (uint32_t I = 0; I < N && !R.Fail; ++I) {
    uint8_t Kind = R.u8();
    uint8_t Width = R.u8();
    if (Width < 1 || Width > 64) {
      R.Fail = true;
      break;
    }
    switch (static_cast<ExprKind>(Kind)) {
    case ExprKind::Const:
      Table.push_back(Ctx.mkConst(R.u64(), Width));
      break;
    case ExprKind::Var: {
      uint8_t Cls = R.u8();
      std::string Name = R.str();
      uint64_t Aux = R.u64();
      if (Cls > static_cast<uint8_t>(expr::VarClass::External) ||
          Name.empty()) {
        R.Fail = true;
        break;
      }
      Table.push_back(
          Ctx.mkVar(static_cast<expr::VarClass>(Cls), Name, Width, Aux));
      break;
    }
    case ExprKind::Op: {
      uint8_t Opc = R.u8();
      uint32_t NOps = R.count(4);
      if (Opc > static_cast<uint8_t>(expr::Opcode::Ite) || NOps == 0) {
        R.Fail = true;
        break;
      }
      std::vector<const Expr *> Ops;
      Ops.reserve(NOps);
      for (uint32_t J = 0; J < NOps && !R.Fail; ++J)
        Ops.push_back(at(R.u32()));
      if (!R.Fail)
        Table.push_back(
            Ctx.internOp(static_cast<expr::Opcode>(Opc), std::move(Ops),
                         Width));
      break;
    }
    case ExprKind::Deref: {
      uint32_t Size = R.u32();
      const Expr *Addr = at(R.u32());
      if (!R.Fail)
        Table.push_back(Ctx.mkDeref(Addr, Size));
      break;
    }
    default:
      R.Fail = true;
      break;
    }
  }
  return Table;
}

// --- predicates ------------------------------------------------------------

void writePred(Writer &W, ExprTable &T, const pred::Pred &P) {
  W.u8(P.isBottom() ? 1 : 0);
  for (unsigned I = 0; I < x86::NumGPRs; ++I)
    W.u32(T.ref(P.reg64(x86::regFromNum(I))));
  const pred::FlagState &F = P.flags();
  W.u8(static_cast<uint8_t>(F.K));
  W.u32(T.ref(F.L));
  W.u32(T.ref(F.R));
  W.u8(F.Width);
  W.u32(static_cast<uint32_t>(P.cells().size()));
  for (const pred::MemCell &C : P.cells()) {
    W.u32(T.ref(C.Addr));
    W.u32(C.Size);
    W.u32(T.ref(C.Val));
  }
  W.u32(static_cast<uint32_t>(P.ranges().size()));
  for (const pred::RangeClause &C : P.ranges()) {
    W.u32(T.ref(C.E));
    W.u8(static_cast<uint8_t>(C.Op));
    W.u64(C.Bound);
  }
}

bool readPred(Reader &R, const std::vector<const Expr *> &Table,
              pred::Pred &P) {
  auto at = [&](uint32_t Id, bool AllowNull = false) -> const Expr * {
    if (Id == 0) {
      if (!AllowNull)
        R.Fail = true;
      return nullptr;
    }
    if (Id >= Table.size()) {
      R.Fail = true;
      return nullptr;
    }
    return Table[Id];
  };
  uint8_t Bottom = R.u8();
  for (unsigned I = 0; I < x86::NumGPRs; ++I)
    P.setReg64(x86::regFromNum(I), at(R.u32(), /*AllowNull=*/true));
  uint8_t FK = R.u8();
  const Expr *FL = at(R.u32(), /*AllowNull=*/true);
  const Expr *FR = at(R.u32(), /*AllowNull=*/true);
  uint8_t FW = R.u8();
  using FlagKind = pred::FlagState::Kind;
  switch (static_cast<FlagKind>(FK)) {
  case FlagKind::Unknown:
    break;
  case FlagKind::Cmp:
    if (!FL || !FR)
      return false;
    P.setFlagsCmp(FL, FR, FW);
    break;
  case FlagKind::Test:
    if (!FL || !FR)
      return false;
    P.setFlagsTest(FL, FR, FW);
    break;
  case FlagKind::Res:
    if (!FL || FR)
      return false;
    P.setFlagsRes(FL, FW);
    break;
  case FlagKind::ZeroOf:
    if (!FL || FR)
      return false;
    P.setFlagsZeroOf(FL, FW);
    break;
  default:
    return false;
  }
  uint32_t NCells = R.count(12);
  for (uint32_t I = 0; I < NCells && !R.Fail; ++I) {
    const Expr *Addr = at(R.u32());
    uint32_t Size = R.u32();
    const Expr *Val = at(R.u32());
    if (!R.Fail)
      P.setCell(Addr, Size, Val);
  }
  uint32_t NRanges = R.count(13);
  for (uint32_t I = 0; I < NRanges && !R.Fail; ++I) {
    const Expr *E = at(R.u32());
    uint8_t Op = R.u8();
    uint64_t Bound = R.u64();
    if (Op > static_cast<uint8_t>(pred::RelOp::SGt)) {
      R.Fail = true;
      break;
    }
    if (!R.Fail)
      P.addRange(E, static_cast<pred::RelOp>(Op), Bound);
  }
  if (Bottom)
    P.setBottom();
  return !R.Fail;
}

// --- memory models ---------------------------------------------------------

constexpr unsigned MaxForestDepth = 1024;

void writeRegion(Writer &W, ExprTable &T, const smt::Region &R) {
  W.u32(T.ref(R.Addr));
  W.u32(R.Size);
}

void writeTree(Writer &W, ExprTable &T, const mem::MemTree &Tree) {
  W.u32(static_cast<uint32_t>(Tree.Node.size()));
  for (const smt::Region &R : Tree.Node)
    writeRegion(W, T, R);
  W.u32(static_cast<uint32_t>(Tree.Children.size()));
  for (const mem::MemTree &C : Tree.Children)
    writeTree(W, T, C);
}

void writeMemModel(Writer &W, ExprTable &T, const mem::MemModel &M) {
  W.u32(static_cast<uint32_t>(M.Forest.size()));
  for (const mem::MemTree &Tree : M.Forest)
    writeTree(W, T, Tree);
  W.u32(static_cast<uint32_t>(M.Clobbered.size()));
  for (const smt::Region &R : M.Clobbered)
    writeRegion(W, T, R);
  W.u8(M.HavocAll ? 1 : 0);
  W.u8(M.HavocGlobals ? 1 : 0);
}

bool readRegion(Reader &R, const std::vector<const Expr *> &Table,
                smt::Region &Out) {
  uint32_t Id = R.u32();
  Out.Size = R.u32();
  if (Id == 0 || Id >= Table.size()) {
    R.Fail = true;
    return false;
  }
  Out.Addr = Table[Id];
  return !R.Fail;
}

bool readTree(Reader &R, const std::vector<const Expr *> &Table,
              mem::MemTree &Out, unsigned Depth) {
  if (Depth > MaxForestDepth) {
    R.Fail = true;
    return false;
  }
  uint32_t NRegions = R.count(8);
  Out.Node.resize(NRegions);
  for (uint32_t I = 0; I < NRegions && !R.Fail; ++I)
    readRegion(R, Table, Out.Node[I]);
  uint32_t NChildren = R.count(8);
  Out.Children.resize(NChildren);
  for (uint32_t I = 0; I < NChildren && !R.Fail; ++I)
    readTree(R, Table, Out.Children[I], Depth + 1);
  return !R.Fail;
}

bool readMemModel(Reader &R, const std::vector<const Expr *> &Table,
                  mem::MemModel &M) {
  uint32_t NTrees = R.count(8);
  M.Forest.resize(NTrees);
  for (uint32_t I = 0; I < NTrees && !R.Fail; ++I)
    readTree(R, Table, M.Forest[I], 0);
  uint32_t NClob = R.count(8);
  M.Clobbered.resize(NClob);
  for (uint32_t I = 0; I < NClob && !R.Fail; ++I)
    readRegion(R, Table, M.Clobbered[I]);
  M.HavocAll = R.u8() != 0;
  M.HavocGlobals = R.u8() != 0;
  return !R.Fail;
}

// --- instructions ----------------------------------------------------------

void writeInstr(Writer &W, const x86::Instr &I) {
  W.u64(I.Addr);
  W.u8(I.Length);
  W.u8(static_cast<uint8_t>(I.Mn));
  W.u8(static_cast<uint8_t>(I.CC));
  W.u8(I.OpSize);
  for (const x86::Operand &O : I.Ops) {
    W.u8(static_cast<uint8_t>(O.K));
    W.u8(static_cast<uint8_t>(O.R));
    W.u8(O.HighByte ? 1 : 0);
    W.u8(static_cast<uint8_t>(O.M.Base));
    W.u8(static_cast<uint8_t>(O.M.Index));
    W.u8(O.M.Scale);
    W.u32(static_cast<uint32_t>(O.M.Disp));
    W.u8(O.M.RipRel ? 1 : 0);
    W.u64(static_cast<uint64_t>(O.Imm));
    W.u8(O.Size);
  }
}

bool readInstr(Reader &R, x86::Instr &I) {
  I.Addr = R.u64();
  I.Length = R.u8();
  uint8_t Mn = R.u8();
  if (Mn > static_cast<uint8_t>(x86::Mnemonic::Hlt))
    R.Fail = true;
  I.Mn = static_cast<x86::Mnemonic>(Mn);
  I.CC = static_cast<x86::Cond>(R.u8() & 0xf);
  I.OpSize = R.u8();
  for (x86::Operand &O : I.Ops) {
    uint8_t K = R.u8();
    if (K > static_cast<uint8_t>(x86::Operand::Kind::Imm))
      R.Fail = true;
    O.K = static_cast<x86::Operand::Kind>(K);
    O.R = static_cast<x86::Reg>(R.u8());
    O.HighByte = R.u8() != 0;
    O.M.Base = static_cast<x86::Reg>(R.u8());
    O.M.Index = static_cast<x86::Reg>(R.u8());
    O.M.Scale = R.u8();
    O.M.Disp = static_cast<int32_t>(R.u32());
    O.M.RipRel = R.u8() != 0;
    O.Imm = static_cast<int64_t>(R.u64());
    O.Size = R.u8();
  }
  return !R.Fail;
}

// --- diagnostics -----------------------------------------------------------

void writeDiag(Writer &W, const diag::Diagnostic &D) {
  W.u8(static_cast<uint8_t>(D.Kind));
  W.str(D.Message);
  W.u8(static_cast<uint8_t>(D.Prov.Origin));
  W.u64(D.Prov.FunctionEntry);
  W.u64(D.Prov.Addr);
  W.str(D.Prov.Mnemonic);
  W.u64(static_cast<uint64_t>(static_cast<int64_t>(D.Prov.ClauseId)));
  W.str(D.Prov.ClauseText);
  W.u32(static_cast<uint32_t>(D.Prov.QueryChain.size()));
  for (const std::string &Q : D.Prov.QueryChain)
    W.str(Q);
  // Worker is schedule-dependent and excluded from --report-json; store a
  // fixed 0 so serialization is deterministic across thread counts.
  W.u32(0);
}

bool readDiag(Reader &R, diag::Diagnostic &D) {
  uint8_t Kind = R.u8();
  if (Kind > static_cast<uint8_t>(diag::DiagKind::UnsoundnessAnnotation))
    R.Fail = true;
  D.Kind = static_cast<diag::DiagKind>(Kind);
  D.Message = R.str();
  uint8_t Origin = R.u8();
  if (Origin > static_cast<uint8_t>(diag::Component::HoareChecker))
    R.Fail = true;
  D.Prov.Origin = static_cast<diag::Component>(Origin);
  D.Prov.FunctionEntry = R.u64();
  D.Prov.Addr = R.u64();
  D.Prov.Mnemonic = R.str();
  D.Prov.ClauseId = static_cast<int>(static_cast<int64_t>(R.u64()));
  D.Prov.ClauseText = R.str();
  uint32_t NQ = R.count(4);
  D.Prov.QueryChain.resize(NQ);
  for (uint32_t I = 0; I < NQ && !R.Fail; ++I)
    D.Prov.QueryChain[I] = R.str();
  D.Prov.Worker = 0;
  R.u32(); // stored worker field, always 0
  return !R.Fail;
}

// --- graph -----------------------------------------------------------------

void writeKey(Writer &W, const hg::VertexKey &K) {
  W.u64(K.Rip);
  W.u64(K.CtrlHash);
}

hg::VertexKey readKey(Reader &R) {
  hg::VertexKey K;
  K.Rip = R.u64();
  K.CtrlHash = R.u64();
  return K;
}

void writeGraph(Writer &W, ExprTable &T, const hg::HoareGraph &G) {
  writeKey(W, G.Initial);
  W.u32(static_cast<uint32_t>(G.Vertices.size()));
  for (const auto &[Key, V] : G.Vertices) {
    writeKey(W, Key);
    writePred(W, T, V.State.P);
    writeMemModel(W, T, V.State.M);
    writeInstr(W, V.Instr);
    W.u8(V.Explored ? 1 : 0);
    W.u32(V.JoinCount);
  }
  W.u32(static_cast<uint32_t>(G.Edges.size()));
  for (const hg::Edge &E : G.Edges) {
    writeKey(W, E.From);
    writeKey(W, E.To);
    writeInstr(W, E.Instr);
    W.u8(static_cast<uint8_t>(E.Kind));
    W.u64(E.CalleeAddr);
    W.u64(E.ViaTable);
  }
}

bool readGraph(Reader &R, const std::vector<const Expr *> &Table,
               hg::HoareGraph &G) {
  G.Initial = readKey(R);
  uint32_t NVerts = R.count(16);
  for (uint32_t I = 0; I < NVerts && !R.Fail; ++I) {
    hg::Vertex V;
    V.Key = readKey(R);
    if (!readPred(R, Table, V.State.P) ||
        !readMemModel(R, Table, V.State.M) || !readInstr(R, V.Instr))
      return false;
    V.Explored = R.u8() != 0;
    V.JoinCount = R.u32();
    if (!G.Vertices.emplace(V.Key, std::move(V)).second) {
      R.Fail = true; // duplicate vertex key: corrupt entry
      return false;
    }
  }
  uint32_t NEdges = R.count(16);
  for (uint32_t I = 0; I < NEdges && !R.Fail; ++I) {
    hg::Edge E;
    E.From = readKey(R);
    E.To = readKey(R);
    if (!readInstr(R, E.Instr))
      return false;
    uint8_t Kind = R.u8();
    if (Kind > static_cast<uint8_t>(sem::CtrlKind::UnresCall)) {
      R.Fail = true;
      return false;
    }
    E.Kind = static_cast<sem::CtrlKind>(Kind);
    E.CalleeAddr = R.u64();
    E.ViaTable = R.u64();
    G.Edges.push_back(std::move(E));
  }
  return !R.Fail;
}

} // namespace

// --- digests ---------------------------------------------------------------

uint64_t configDigest(const hg::LiftConfig &Cfg) {
  // Every field here is visible in lifted results; Threads, MaxSeconds and
  // the pure-performance cache knobs (Solver.EnableCache/CacheCap,
  // LiftConfig::LeqMemo) are bit-invisible at fixed exploration order and
  // deliberately excluded so flipping them still hits.
  uint64_t H = FnvOffset;
  H = fnv1aU64(H, static_cast<uint64_t>(Cfg.Sym.Policy));
  H = fnv1aU64(H, Cfg.Sym.MaxJumpTableEntries);
  H = fnv1aU64(H, Cfg.WidenAfterJoins);
  H = fnv1aU64(H, Cfg.MaxVertices);
  H = fnv1aU64(H, Cfg.EnableJoin);
  H = fnv1aU64(H, Cfg.CtrlImmediateException);
  H = fnv1aU64(H, Cfg.OrderedWorklist);
  H = fnv1aU64(H, Cfg.Solver.AllocClassAssumptions);
  H = fnv1aU64(H, Cfg.Sym.Vsa ? 2 : 1);
  H = fnv1aU64(H, Cfg.Sym.VsaMaxTargets);
  // Whether Z3 answers queries changes what is provable, and whether it
  // *can* answer is a compile-time property of this binary — a shared
  // cache dir must not leak graphs across differently-built lifters.
#ifdef HGLIFT_WITH_Z3
  H = fnv1aU64(H, Cfg.Solver.UseZ3 ? 2 : 1);
#else
  H = fnv1aU64(H, 0);
#endif
  return H;
}

std::vector<Span> instructionSpans(const hg::FunctionResult &F) {
  std::set<Span> S;
  for (const auto &[Key, V] : F.Graph.Vertices)
    if (V.Explored && V.Instr.isValid())
      S.insert({Key.Rip, V.Instr.Length});
  return std::vector<Span>(S.begin(), S.end());
}

std::optional<uint64_t> byteDigest(const elf::BinaryImage &Img,
                                   const std::vector<Span> &Spans) {
  uint64_t H = FnvOffset;
  for (const Span &S : Spans) {
    size_t Avail = 0;
    const uint8_t *P = Img.bytesAt(S.first, Avail);
    if (!P || Avail < S.second || !Img.isExec(S.first))
      return std::nullopt;
    H = fnv1aU64(H, S.first);
    H = fnv1a(H, P, S.second);
  }
  // External-call targets: a PLT stub changing its name (or address)
  // changes call semantics without changing the caller's instruction
  // bytes, so the whole stub map participates.
  for (const auto &[Addr, Name] : Img.PltStubs) {
    H = fnv1aU64(H, Addr);
    H = fnv1a(H, reinterpret_cast<const uint8_t *>(Name.data()), Name.size());
  }
  return H;
}

// --- entry points ----------------------------------------------------------

std::vector<uint8_t> serializeFunction(const hg::FunctionResult &F,
                                       const elf::BinaryImage &Img,
                                       const hg::LiftConfig &Cfg) {
  ExprTable T;
  Writer Body;

  // Scalars that use no expression references.
  Body.u64(F.ctx().freshCounter());
  Body.u8(F.MayReturn ? 1 : 0);
  Body.u32(F.ResolvedIndirections);
  Body.u32(F.UnresolvedJumps);
  Body.u32(F.UnresolvedCalls);
  const LiftStats &S = F.Stats;
  for (uint64_t C : {S.Vertices, S.Joins, S.Widenings, S.Steps, S.Forks,
                     S.SolverQueries, S.Z3Queries, S.RelCacheHits,
                     S.RelCacheMisses, S.RelCacheInvalidated, S.LeqHits,
                     S.LeqMisses, S.VsaQueries, S.VsaResolved, S.VsaTargets,
                     S.VsaRestarts})
    Body.u64(C);

  // Structures; expression-table indices are assigned on first use, in
  // exactly this serialization order, so the format is deterministic.
  Writer Refs;
  Refs.u32(T.ref(F.RetSym));
  writeGraph(Refs, T, F.Graph);
  Refs.u32(static_cast<uint32_t>(F.Obligations.size()));
  for (const std::string &O : F.Obligations)
    Refs.str(O);
  Refs.u32(static_cast<uint32_t>(F.Diags.size()));
  for (const diag::Diagnostic &D : F.Diags)
    writeDiag(Refs, D);
  Refs.u32(static_cast<uint32_t>(F.Callees.size()));
  for (uint64_t C : F.Callees)
    Refs.u64(C);

  std::vector<Span> Spans = instructionSpans(F);
  std::optional<uint64_t> BD = byteDigest(Img, Spans);

  Writer Out;
  Out.u32(Magic);
  Out.u32(StoreSchemaVersion);
  Out.u32(SemanticsRevision);
  Out.u64(F.Entry);
  Out.u64(configDigest(Cfg));
  Out.u32(static_cast<uint32_t>(Spans.size()));
  for (const Span &Sp : Spans) {
    Out.u64(Sp.first);
    Out.u32(Sp.second);
  }
  Out.u64(BD.value_or(0));
  Out.append(Body);
  writeExprTable(Out, T, F.ctx());
  Out.append(Refs);
  Out.u64(fnv1a(FnvOffset, Out.Buf.data(), Out.Buf.size()));
  return Out.Buf;
}

bool readHeader(const std::vector<uint8_t> &Bytes, EntryHeader &Out) {
  if (Bytes.size() < 8)
    return false;
  // Whole-entry checksum first: everything after this can assume the
  // bytes are the ones that were written (bit flips and truncation are
  // always caught here).
  Reader Tail(Bytes);
  Tail.Pos = Bytes.size() - 8;
  uint64_t Stored = Tail.u64();
  if (fnv1a(FnvOffset, Bytes.data(), Bytes.size() - 8) != Stored)
    return false;

  Reader R(Bytes);
  if (R.u32() != Magic || R.u32() != StoreSchemaVersion ||
      R.u32() != SemanticsRevision)
    return false;
  Out.Entry = R.u64();
  Out.ConfigDigest = R.u64();
  uint32_t NSpans = R.count(12);
  Out.Spans.resize(NSpans);
  for (uint32_t I = 0; I < NSpans && !R.Fail; ++I) {
    Out.Spans[I].first = R.u64();
    Out.Spans[I].second = R.u32();
  }
  Out.ByteDigest = R.u64();
  return !R.Fail;
}

std::optional<hg::FunctionResult>
deserializeFunction(const std::vector<uint8_t> &Bytes,
                    const elf::BinaryImage &Img, const hg::LiftConfig &Cfg) {
  EntryHeader H;
  if (!readHeader(Bytes, H))
    return std::nullopt;

  Reader R(Bytes);
  // Skip the header (readHeader validated it): magic + versions, entry,
  // config digest, span list, byte digest.
  R.Pos = 4 + 4 + 4 + 8 + 8 + 4 + H.Spans.size() * 12 + 8;

  hg::FunctionResult F;
  F.Entry = H.Entry;
  F.Outcome = hg::LiftOutcome::Lifted;
  auto Arena = std::make_shared<hg::LiftArena>(Img, Cfg);
  expr::ExprContext &Ctx = Arena->ctx();

  uint64_t FreshCounter = R.u64();
  F.MayReturn = R.u8() != 0;
  F.ResolvedIndirections = R.u32();
  F.UnresolvedJumps = R.u32();
  F.UnresolvedCalls = R.u32();
  uint64_t *Counters[] = {
      &F.Stats.Vertices,      &F.Stats.Joins,
      &F.Stats.Widenings,     &F.Stats.Steps,
      &F.Stats.Forks,         &F.Stats.SolverQueries,
      &F.Stats.Z3Queries,     &F.Stats.RelCacheHits,
      &F.Stats.RelCacheMisses, &F.Stats.RelCacheInvalidated,
      &F.Stats.LeqHits,       &F.Stats.LeqMisses,
      &F.Stats.VsaQueries,    &F.Stats.VsaResolved,
      &F.Stats.VsaTargets,    &F.Stats.VsaRestarts};
  for (uint64_t *C : Counters)
    *C = R.u64();

  std::vector<const Expr *> Table = readExprTable(R, Ctx);
  if (R.Fail)
    return std::nullopt;

  uint32_t RetSymId = R.u32();
  if (RetSymId == 0 || RetSymId >= Table.size())
    return std::nullopt;
  F.RetSym = Table[RetSymId];

  if (!readGraph(R, Table, F.Graph))
    return std::nullopt;

  uint32_t NObl = R.count(4);
  F.Obligations.resize(NObl);
  for (uint32_t I = 0; I < NObl && !R.Fail; ++I)
    F.Obligations[I] = R.str();

  uint32_t NDiags = R.count(4);
  F.Diags.resize(NDiags);
  for (uint32_t I = 0; I < NDiags && !R.Fail; ++I)
    if (!readDiag(R, F.Diags[I]))
      return std::nullopt;

  uint32_t NCallees = R.count(8);
  for (uint32_t I = 0; I < NCallees && !R.Fail; ++I)
    F.Callees.insert(R.u64());

  // The payload must end exactly at the checksum: trailing garbage means
  // the entry was not produced by this writer.
  if (R.Fail || R.Pos != Bytes.size() - 8)
    return std::nullopt;

  // Resume the producer's fresh-name sequence (a warm Step-2 then
  // allocates the same names a cold one would).
  if (FreshCounter < Ctx.freshCounter())
    return std::nullopt;
  Ctx.setFreshCounter(FreshCounter);

  F.Arena = std::move(Arena);
  return F;
}

} // namespace hglift::store
