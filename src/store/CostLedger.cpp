//===- CostLedger.cpp - Persisted per-binary lift-cost ledger -------------===//

#include "store/CostLedger.h"

#include "elf/Binary.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace hglift::store {

uint64_t costKey(const elf::BinaryImage &Img) {
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](uint8_t B) {
    H ^= B;
    H *= 1099511628211ULL;
  };
  auto Mix64 = [&](uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Mix(static_cast<uint8_t>(V >> (8 * I)));
  };
  for (const elf::Segment &S : Img.Segments) {
    if (!S.Exec)
      continue;
    Mix64(S.VAddr);
    Mix64(S.Bytes.size());
    for (uint8_t B : S.Bytes)
      Mix(B);
  }
  return H;
}

std::string serializeCostRecord(const CostRecord &R) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "hgcost %u %016llx %.6f %u\n",
                CostLedgerVersion, static_cast<unsigned long long>(R.Key),
                R.Seconds, R.Samples);
  return Buf;
}

std::optional<CostRecord> parseCostRecord(const std::string &Bytes) {
  unsigned Version = 0, Samples = 0;
  unsigned long long Key = 0;
  double Seconds = 0;
  int Consumed = 0;
  if (std::sscanf(Bytes.c_str(), "hgcost %u %16llx %lf %u\n%n", &Version, &Key,
                  &Seconds, &Samples, &Consumed) != 4)
    return std::nullopt;
  if (static_cast<size_t>(Consumed) != Bytes.size())
    return std::nullopt;
  if (Version != CostLedgerVersion)
    return std::nullopt;
  if (!std::isfinite(Seconds) || Seconds < 0 || Seconds > 1e6)
    return std::nullopt;
  if (Samples < 1 || Samples > 1000000)
    return std::nullopt;
  CostRecord R{Key, Seconds, Samples};
  // Canonical-form gate: any record we did not write byte-for-byte (torn
  // tail, hand edits, float-rendering drift) is a miss, not a guess.
  if (serializeCostRecord(R) != Bytes)
    return std::nullopt;
  return R;
}

std::string CostLedger::entryPath(uint64_t Key) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.cost",
                static_cast<unsigned long long>(Key));
  return Dir + "/" + Name;
}

std::optional<CostRecord> CostLedger::lookup(uint64_t Key) const {
  std::ifstream In(entryPath(Key), std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  std::optional<CostRecord> R = parseCostRecord(SS.str());
  if (!R || R->Key != Key)
    return std::nullopt;
  return R;
}

bool CostLedger::record(uint64_t Key, double ObservedSeconds) {
  if (!std::isfinite(ObservedSeconds) || ObservedSeconds < 0)
    return false;
  if (ObservedSeconds > 1e6)
    ObservedSeconds = 1e6;
  CostRecord R{Key, ObservedSeconds, 1};
  if (std::optional<CostRecord> Old = lookup(Key)) {
    R.Seconds = 0.5 * Old->Seconds + 0.5 * ObservedSeconds;
    R.Samples = Old->Samples < 1000000 ? Old->Samples + 1 : Old->Samples;
  }
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return false;
  std::string Path = entryPath(Key);
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    std::string Bytes = serializeCostRecord(R);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!Out)
      return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

} // namespace hglift::store
