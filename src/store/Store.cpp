#include "store/Store.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include <unistd.h>

namespace hglift::store {

namespace fs = std::filesystem;

namespace {

std::string hex16(uint64_t V) {
  char Buf[17];
  snprintf(Buf, sizeof(Buf), "%016llx", static_cast<unsigned long long>(V));
  return Buf;
}

uint64_t contentDigest(const std::vector<uint8_t> &Bytes) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (uint8_t B : Bytes) {
    H ^= B;
    H *= 0x100000001b3ULL;
  }
  return H;
}

std::optional<std::vector<uint8_t>> readFile(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  if (!In.good() && !In.eof())
    return std::nullopt;
  return Bytes;
}

/// Atomic publish: write to a unique tempfile in Dir, then rename onto
/// Name. A concurrent reader sees the old file or the new one, never a
/// torn write; concurrent writers of the same name race benignly (last
/// rename wins, both contents are valid).
bool writeFileAtomic(const fs::path &Dir, const std::string &Name,
                     const void *Data, size_t Size) {
  static std::atomic<uint64_t> Counter{0};
  fs::path Tmp = Dir / (".tmp-" + std::to_string(getpid()) + "-" +
                        std::to_string(Counter.fetch_add(1)));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(static_cast<const char *>(Data), Size);
    if (!Out.good())
      return false;
  }
  std::error_code EC;
  fs::rename(Tmp, Dir / Name, EC);
  if (EC) {
    fs::remove(Tmp, EC);
    return false;
  }
  return true;
}

} // namespace

CacheStore::CacheStore(Options O) : Opt(std::move(O)) {
  std::error_code EC;
  fs::create_directories(fs::path(Opt.Dir) / "objects", EC);
  fs::create_directories(fs::path(Opt.Dir) / "index", EC);
}

std::optional<hg::FunctionResult>
CacheStore::lookup(const elf::BinaryImage &Img, const hg::LiftConfig &Cfg,
                   uint64_t Entry) {
  std::optional<hg::FunctionResult> R = lookupImpl(Img, Cfg, Entry);
  std::lock_guard<std::mutex> G(Mu);
  if (R)
    ++Stats.Hits;
  else
    ++Stats.Misses;
  return R;
}

std::optional<hg::FunctionResult>
CacheStore::lookupImpl(const elf::BinaryImage &Img, const hg::LiftConfig &Cfg,
                       uint64_t Entry) {
  fs::path Ref = fs::path(Opt.Dir) / "index" /
                 (hex16(Entry) + "-" + hex16(configDigest(Cfg)) + ".ref");
  std::optional<std::vector<uint8_t>> RefBytes = readFile(Ref);
  if (!RefBytes)
    return std::nullopt;
  std::string Digest(RefBytes->begin(), RefBytes->end());
  while (!Digest.empty() && (Digest.back() == '\n' || Digest.back() == ' '))
    Digest.pop_back();
  if (Digest.size() != 16 ||
      Digest.find_first_not_of("0123456789abcdef") != std::string::npos)
    return std::nullopt;

  fs::path Obj = fs::path(Opt.Dir) / "objects" / (Digest + ".hgfn");
  std::optional<std::vector<uint8_t>> Bytes = readFile(Obj);
  if (!Bytes)
    return std::nullopt;

  // Gate on the header before paying for deserialization: schema +
  // semantics versions and the whole-entry checksum (readHeader), then
  // the identity and content digests against the *current* image.
  EntryHeader H;
  if (!readHeader(*Bytes, H))
    return std::nullopt;
  if (H.Entry != Entry || H.ConfigDigest != configDigest(Cfg))
    return std::nullopt;
  std::optional<uint64_t> BD = byteDigest(Img, H.Spans);
  if (!BD || *BD != H.ByteDigest)
    return std::nullopt;

  std::optional<hg::FunctionResult> F =
      deserializeFunction(*Bytes, Img, Cfg);
  if (!F)
    return std::nullopt;

  if (Opt.Validate) {
    // Never trust the stored graph: re-prove every edge (the paper's
    // Step-2, one theorem per edge). This also covers byte dependencies
    // the spans cannot see, e.g. jump-table rodata — re-running the
    // semantics re-reads them from the current image.
    exporter::CheckContext CC{Img, Cfg.Sym, nullptr};
    exporter::CheckResult CR = exporter::checkFunction(CC, *F);
    if (!CR.allProven()) {
      std::lock_guard<std::mutex> G(Mu);
      ++Stats.ValidationFailures;
      return std::nullopt;
    }
    std::lock_guard<std::mutex> G(Mu);
    ++Stats.Validated;
    Validations[Entry] = std::move(CR);
  }

  // LRU touch: refresh the object's mtime so the byte-budget sweep
  // removes cold entries first.
  std::error_code EC;
  fs::last_write_time(Obj, fs::file_time_type::clock::now(), EC);
  return F;
}

void CacheStore::store(const elf::BinaryImage &Img, const hg::LiftConfig &Cfg,
                       const hg::FunctionResult &F) {
  if (F.Outcome != hg::LiftOutcome::Lifted || !F.Arena)
    return;
  std::vector<Span> Spans = instructionSpans(F);
  if (!byteDigest(Img, Spans))
    return; // spans not mapped (should not happen for a lifted result)

  std::vector<uint8_t> Bytes = serializeFunction(F, Img, Cfg);
  std::string Digest = hex16(contentDigest(Bytes));

  fs::path Objects = fs::path(Opt.Dir) / "objects";
  fs::path Index = fs::path(Opt.Dir) / "index";
  if (!writeFileAtomic(Objects, Digest + ".hgfn", Bytes.data(), Bytes.size()))
    return;
  std::string RefContent = Digest + "\n";
  std::string RefName =
      hex16(F.Entry) + "-" + hex16(configDigest(Cfg)) + ".ref";
  if (!writeFileAtomic(Index, RefName, RefContent.data(), RefContent.size()))
    return;

  {
    std::lock_guard<std::mutex> G(Mu);
    ++Stats.Stored;
  }
  if (Opt.MaxBytes > 0)
    evictOverBudget();
}

void CacheStore::evictOverBudget() {
  std::error_code EC;
  struct ObjInfo {
    fs::path Path;
    uint64_t Size;
    fs::file_time_type MTime;
  };
  std::vector<ObjInfo> Objs;
  uint64_t Total = 0;
  for (const fs::directory_entry &E :
       fs::directory_iterator(fs::path(Opt.Dir) / "objects", EC)) {
    if (EC)
      return;
    if (E.path().filename().string().rfind(".tmp-", 0) == 0)
      continue;
    std::error_code SEC;
    uint64_t Size = E.file_size(SEC);
    fs::file_time_type MT = E.last_write_time(SEC);
    if (SEC)
      continue;
    Objs.push_back({E.path(), Size, MT});
    Total += Size;
  }
  if (Total <= Opt.MaxBytes)
    return;
  std::sort(Objs.begin(), Objs.end(), [](const ObjInfo &A, const ObjInfo &B) {
    return A.MTime < B.MTime;
  });
  uint64_t Evicted = 0;
  for (const ObjInfo &O : Objs) {
    if (Total <= Opt.MaxBytes)
      break;
    std::error_code REC;
    if (fs::remove(O.Path, REC) && !REC) {
      Total -= O.Size;
      ++Evicted;
    }
  }
  if (Evicted) {
    std::lock_guard<std::mutex> G(Mu);
    Stats.Evictions += Evicted;
  }
}

CacheStats CacheStore::stats() const {
  std::lock_guard<std::mutex> G(Mu);
  return Stats;
}

std::optional<exporter::CheckResult> CacheStore::takeValidation(uint64_t Entry) {
  std::lock_guard<std::mutex> G(Mu);
  auto It = Validations.find(Entry);
  if (It == Validations.end())
    return std::nullopt;
  exporter::CheckResult R = std::move(It->second);
  Validations.erase(It);
  return R;
}

void CacheStore::resetValidations() {
  std::lock_guard<std::mutex> G(Mu);
  Validations.clear();
}

} // namespace hglift::store
