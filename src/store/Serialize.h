//===- Serialize.h - Byte-deterministic FunctionResult format --*- C++ -*-===//
//
// Versioned binary serialization of one lifted function: the Hoare Graph
// (vertices with their Pred clauses and MemModel forests, edges with their
// decoded instructions), the return-address symbol, the structured
// diagnostics with provenance, the lift statistics, and the function's
// fresh-variable counter. The format is byte-deterministic: serializing
// the same result twice — or serializing a deserialized copy — produces
// identical bytes, which is what the round-trip tests pin and what makes
// content-addressed storage meaningful.
//
// Wall-clock fields (FunctionResult::Seconds, LiftStats::Seconds) and the
// schedule-dependent Provenance::Worker are excluded — exactly the fields
// --report-json already excludes so its bytes are thread-count-invariant.
//
// The entry header carries three invalidation keys, checkable without
// deserializing the payload:
//
//   * StoreSchemaVersion: the format itself. Bump on any layout change.
//   * SemanticsRevision: the instruction semantics + abstract domains.
//     Bump whenever a change to SymExec / Pred / MemModel / the solver can
//     alter lifted graphs — stored artifacts from older semantics must
//     never be replayed.
//   * a config digest over every LiftConfig field that is visible in the
//     lifted result, and a byte digest over the function's instruction
//     bytes (the spans its explored vertices cover, re-read from the
//     *current* image at lookup time) plus the PLT-stub map (external-call
//     targets). Any mismatch is a miss.
//
// Byte changes the spans cannot see (e.g. jump-table rodata) are caught by
// the Step-2 re-validation every cache hit goes through (store/Store.h).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_STORE_SERIALIZE_H
#define HGLIFT_STORE_SERIALIZE_H

#include "hg/Lifter.h"

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace hglift::store {

/// Bump on any change to the serialized layout below.
constexpr uint32_t StoreSchemaVersion = 2;

/// Bump whenever the instruction semantics or the abstract domains change
/// in a way that can alter a lifted graph (see the header comment).
constexpr uint32_t SemanticsRevision = 1;

/// One instruction span: (address, encoded length).
using Span = std::pair<uint64_t, uint32_t>;

/// Digest over every LiftConfig field the lifted result can depend on.
/// Wall-clock budget, thread count, and the pure-performance cache knobs
/// are bit-invisible in results and deliberately excluded.
uint64_t configDigest(const hg::LiftConfig &Cfg);

/// Sorted distinct (address, length) spans of F's explored instructions.
std::vector<Span> instructionSpans(const hg::FunctionResult &F);

/// FNV digest over the image bytes at Spans plus the PLT-stub map. Returns
/// nullopt if any span is not fully mapped in Img (always a cache miss).
std::optional<uint64_t> byteDigest(const elf::BinaryImage &Img,
                                   const std::vector<Span> &Spans);

/// The header fields of a serialized entry, parseable without building an
/// arena (the store checks these before paying for deserialization).
struct EntryHeader {
  uint64_t Entry = 0;
  uint64_t ConfigDigest = 0;
  std::vector<Span> Spans;
  uint64_t ByteDigest = 0;
};

/// Serialize F. Requires F.Outcome == Lifted and F.Arena (only fully
/// lifted, arena-backed results are cacheable). Cfg contributes only the
/// header's config digest.
std::vector<uint8_t> serializeFunction(const hg::FunctionResult &F,
                                       const elf::BinaryImage &Img,
                                       const hg::LiftConfig &Cfg);

/// Parse and validate the header: magic, schema version, semantics
/// revision, and the trailing whole-entry checksum. False on any mismatch
/// or truncation.
bool readHeader(const std::vector<uint8_t> &Bytes, EntryHeader &Out);

/// Full deserialization into a fresh LiftArena built from (Img, Cfg). The
/// returned result's expressions live in that arena's context, and its
/// fresh-variable counter resumes where the producer's left off. Returns
/// nullopt on any malformation (never trusts the input).
std::optional<hg::FunctionResult>
deserializeFunction(const std::vector<uint8_t> &Bytes,
                    const elf::BinaryImage &Img, const hg::LiftConfig &Cfg);

} // namespace hglift::store

#endif // HGLIFT_STORE_SERIALIZE_H
