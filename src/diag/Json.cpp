#include "diag/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace hglift::diag {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

const JValue *JValue::get(const std::string &Key) const {
  if (K != Kind::Obj)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

std::string JValue::str(const std::string &Key, const std::string &Dflt) const {
  const JValue *V = get(Key);
  return V && V->K == Kind::Str ? V->Str : Dflt;
}

double JValue::num(const std::string &Key, double Dflt) const {
  const JValue *V = get(Key);
  return V && V->K == Kind::Num ? V->Num : Dflt;
}

namespace {

struct Parser {
  const std::string &S;
  size_t I = 0;

  bool ws() {
    while (I < S.size() && std::isspace(static_cast<unsigned char>(S[I])))
      ++I;
    return I < S.size();
  }

  bool lit(const char *L, JValue &Out, JValue::Kind K, bool B) {
    size_t N = std::char_traits<char>::length(L);
    if (S.compare(I, N, L) != 0)
      return false;
    I += N;
    Out.K = K;
    Out.B = B;
    return true;
  }

  bool string(std::string &Out) {
    if (S[I] != '"')
      return false;
    for (++I; I < S.size(); ++I) {
      char C = S[I];
      if (C == '"') {
        ++I;
        return true;
      }
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (++I >= S.size())
        return false;
      switch (S[I]) {
      case '"':
      case '\\':
      case '/':
        Out += S[I];
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (I + 4 >= S.size())
          return false;
        unsigned Code = static_cast<unsigned>(
            std::strtoul(S.substr(I + 1, 4).c_str(), nullptr, 16));
        // Latin-1 subset only; everything we emit stays in it.
        Out += static_cast<char>(Code & 0xff);
        I += 4;
        break;
      }
      default:
        return false;
      }
    }
    return false;
  }

  bool value(JValue &Out) {
    if (!ws())
      return false;
    char C = S[I];
    if (C == 'n')
      return lit("null", Out, JValue::Kind::Null, false);
    if (C == 't')
      return lit("true", Out, JValue::Kind::Bool, true);
    if (C == 'f')
      return lit("false", Out, JValue::Kind::Bool, false);
    if (C == '"') {
      Out.K = JValue::Kind::Str;
      return string(Out.Str);
    }
    if (C == '[') {
      ++I;
      Out.K = JValue::Kind::Arr;
      if (!ws())
        return false;
      if (S[I] == ']') {
        ++I;
        return true;
      }
      while (true) {
        JValue Elem;
        if (!value(Elem))
          return false;
        Out.Arr.push_back(std::move(Elem));
        if (!ws())
          return false;
        if (S[I] == ',') {
          ++I;
          continue;
        }
        if (S[I] == ']') {
          ++I;
          return true;
        }
        return false;
      }
    }
    if (C == '{') {
      ++I;
      Out.K = JValue::Kind::Obj;
      if (!ws())
        return false;
      if (S[I] == '}') {
        ++I;
        return true;
      }
      while (true) {
        if (!ws())
          return false;
        std::string Key;
        if (!string(Key) || !ws() || S[I] != ':')
          return false;
        ++I;
        JValue Member;
        if (!value(Member))
          return false;
        Out.Obj.emplace_back(std::move(Key), std::move(Member));
        if (!ws())
          return false;
        if (S[I] == ',') {
          ++I;
          continue;
        }
        if (S[I] == '}') {
          ++I;
          return true;
        }
        return false;
      }
    }
    // Number.
    size_t J = I;
    while (J < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[J])) || S[J] == '-' ||
            S[J] == '+' || S[J] == '.' || S[J] == 'e' || S[J] == 'E'))
      ++J;
    if (J == I)
      return false;
    Out.K = JValue::Kind::Num;
    Out.Num = std::strtod(S.substr(I, J - I).c_str(), nullptr);
    I = J;
    return true;
  }
};

} // namespace

std::optional<JValue> parseJson(const std::string &Text) {
  Parser P{Text};
  JValue V;
  if (!P.value(V))
    return std::nullopt;
  P.ws();
  if (P.I != Text.size())
    return std::nullopt;
  return V;
}

} // namespace hglift::diag
