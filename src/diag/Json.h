//===- Json.h - Minimal JSON: escaping, values, parsing --------*- C++ -*-===//
//
// Just enough JSON for the diagnostics layer: the escaping every emitter
// shares, and a small recursive-descent parser feeding `hglift explain`
// (which re-reads the --report-json we emit ourselves) and the schema
// tests (which re-read --trace lines). Not a general-purpose library: no
// \uXXXX decoding beyond Latin-1, numbers are doubles, input is trusted
// to be reasonably sized.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_DIAG_JSON_H
#define HGLIFT_DIAG_JSON_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace hglift::diag {

/// Escape S for inclusion inside a JSON string literal.
std::string jsonEscape(const std::string &S);

/// A parsed JSON value. Object member order is preserved (the reports are
/// written in a deliberate order and explain re-renders in it).
struct JValue {
  enum class Kind : uint8_t { Null, Bool, Num, Str, Arr, Obj };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JValue> Arr;
  std::vector<std::pair<std::string, JValue>> Obj;

  bool isObj() const { return K == Kind::Obj; }
  bool isArr() const { return K == Kind::Arr; }
  bool isStr() const { return K == Kind::Str; }
  bool isNum() const { return K == Kind::Num; }

  /// Object member lookup; nullptr when absent or not an object.
  const JValue *get(const std::string &Key) const;

  /// Convenience accessors with defaults.
  std::string str(const std::string &Key, const std::string &Dflt = "") const;
  double num(const std::string &Key, double Dflt = 0) const;
};

/// Parse one JSON document (must consume the whole input modulo trailing
/// whitespace). nullopt on malformed input.
std::optional<JValue> parseJson(const std::string &Text);

} // namespace hglift::diag

#endif // HGLIFT_DIAG_JSON_H
