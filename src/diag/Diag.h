//===- Diag.h - Provenance-carrying diagnostics ----------------*- C++ -*-===//
//
// The paper's trust story (§1) is that every failure is *explainable*:
// verification errors, proof obligations, and unsoundness annotations are
// first-class outputs, not log lines. This header makes them structured.
// A Diagnostic is one such fact; its Provenance records where it was born:
// the function entry, the instruction address and decoded mnemonic, the
// predicate clause involved (when one can be identified), the chain of
// relation-solver queries that led to the decision, and the worker that
// produced it.
//
// Provenance is always collected — attaching it costs a few string copies
// at diagnostic-creation time only, and diagnostics are rare (obligations,
// annotations, rejections). The hot paths (relate(), the worklist loop)
// never build strings; the solver keeps a tiny POD ring of recent queries
// that is rendered lazily, and only when a diagnostic actually needs it.
//
// Layering: this library sits right above support/ so that smt, semantics,
// hg, and export can all attach diagnostics without dependency cycles.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_DIAG_DIAG_H
#define HGLIFT_DIAG_DIAG_H

#include <cstdint>
#include <string>
#include <vector>

namespace hglift::diag {

/// Version of the --report-json document shape. Any change to the set of
/// keys emitted (adding, removing, or renaming) MUST bump this and
/// regenerate tests/golden/report_schema_v*.txt (report_schema_test pins
/// the shape).
constexpr unsigned ReportSchemaVersion = 1;

/// Version of the --trace JSON-Lines event shape, pinned the same way by
/// tests/golden/trace_schema_v*.txt.
constexpr unsigned TraceSchemaVersion = 1;

/// Version of the --fuzz-json campaign report shape (and of the fuzz
/// reproducer sidecar files), pinned by tests/golden/fuzz_schema_v*.txt.
constexpr unsigned FuzzSchemaVersion = 1;

/// Version of the incorrectness-witness sidecar files and of the report
/// `witnesses` section, pinned by tests/golden/witness_schema_v*.txt.
constexpr unsigned WitnessSchemaVersion = 1;

/// The three diagnostic categories of the paper (§1, §5): a function
/// rejection, an explicit assumption, or a residual overapproximation.
enum class DiagKind : uint8_t {
  /// A sanity property could not be established (unprovable return
  /// address, calling-convention violation, undecodable instruction,
  /// budget exhaustion, ...) — or, from the Step-2 checker, a Hoare-triple
  /// edge whose postcondition is not entailed. The function is rejected.
  VerificationError,
  /// An assumption lifting had to make (alias-class separation,
  /// MUST-PRESERVE across external calls). The result is sound only under
  /// the assumption, which is why it is surfaced (§5.2).
  ProofObligation,
  /// A residual overapproximation: an unresolvable indirection (columns
  /// B/C) or an overlapping-instruction ("weird") edge.
  UnsoundnessAnnotation,
};

const char *diagKindName(DiagKind K);

/// The subsystem a diagnostic originates from.
enum class Component : uint8_t {
  Lifter,         ///< Algorithm 1 (worklist, fuel, decode)
  SymExec,        ///< the transformer τ (sanity checks, obligations)
  RelationSolver, ///< necessarily-relation decisions / assumptions
  HoareChecker,   ///< the Step-2 re-verification
};

const char *componentName(Component C);

/// Where a diagnostic was born. FunctionEntry is always stamped (by the
/// Lifter or the checker); Addr/Mnemonic whenever an instruction is in
/// scope. ClauseId/ClauseText identify the predicate clause at issue when
/// one can be singled out (the Step-2 checker's entailment diagnosis does
/// this; see pred::Pred::leqExplain). QueryChain is the rendered tail of
/// the relation-solver query ring at creation time — the solver decisions
/// on the path to this diagnostic, most recent first.
struct Provenance {
  Component Origin = Component::Lifter;
  uint64_t FunctionEntry = 0;
  uint64_t Addr = 0;
  std::string Mnemonic;
  int ClauseId = -1;
  std::string ClauseText;
  std::vector<std::string> QueryChain;
  /// Worker ordinal that produced the diagnostic. Schedule-dependent by
  /// nature, so it is serialized into the trace (whose interleaving is
  /// schedule-dependent anyway) but *excluded* from --report-json, which
  /// is byte-identical across thread counts.
  unsigned Worker = 0;

  bool empty() const {
    return FunctionEntry == 0 && Addr == 0 && Mnemonic.empty();
  }
};

/// One structured diagnostic: a category, the human-readable message (the
/// same text the flat reports always printed), and its provenance.
struct Diagnostic {
  DiagKind Kind = DiagKind::ProofObligation;
  std::string Message;
  Provenance Prov;
};

/// Small ordinal for the calling thread (0 for the first thread that asks,
/// 1 for the second, ...). Stable within a thread's lifetime; used for
/// Provenance::Worker and the tracer's "tid" field.
unsigned workerOrdinal();

//===----------------------------------------------------------------------===//
// Incorrectness witnesses (plain data)
//
// The witness searcher itself lives in src/witness (which links fuzz and
// api), but its *results* must be renderable by the driver's report writer
// and storable in an api::Session without either linking the searcher.
// These structs are the dependency-free summary they exchange.
//===----------------------------------------------------------------------===//

/// The single concretized predicate clause a witness run violates,
/// pre-evaluated so replay needs no symbolic machinery. Exactly one shape
/// is active, selected by Type; unused fields are zero.
struct WitnessClaim {
  /// "reg" | "flags" | "mem" | "range" | "none" ("none": the violation is
  /// structural — a missing edge — and any run reaching the site with the
  /// recorded control transfer reproduces it).
  std::string Type = "none";
  unsigned RegNum = 0;     ///< reg: register number (x86::regNum order)
  uint64_t Expect = 0;     ///< reg/mem: value the abstraction claims
  uint64_t MemAddr = 0;    ///< mem: concrete cell address
  uint32_t MemSize = 0;    ///< mem: cell size in bytes
  std::string RangeOp;     ///< range: rendered RelOp (e.g. "<=u")
  uint64_t RangeBound = 0; ///< range: clause bound
  uint64_t RangeValue = 0; ///< range: concrete value the clause binds
  std::string FlagsPinned; ///< flags: subset of "zsco" the abstraction pins
  bool ExpZF = false, ExpSF = false, ExpCF = false, ExpOF = false;
};

/// One witness-search outcome for one diagnostic site.
struct WitnessRecord {
  uint64_t Function = 0;    ///< entry of the function searched
  uint64_t Addr = 0;        ///< diagnostic site (Provenance::Addr)
  std::string DiagKindName; ///< diagKindName of the seeding diagnostic
  /// "confirmed" | "unconfirmed".
  std::string Verdict = "unconfirmed";
  std::string Reason; ///< unconfirmed: why (empty when confirmed)
  std::string Source; ///< candidate tier that confirmed (empty otherwise)
  unsigned Candidates = 0; ///< candidate states executed
  uint64_t MachineSeed = 0;
  std::vector<uint64_t> Regs; ///< confirmed: entry register file (16)
  std::string Phase;          ///< "at" | "after" | "return" | "reach"
  uint64_t NextRip = 0;       ///< phase "after": observed post-state rip
  WitnessClaim Claim;
  std::string Clause;    ///< symbolic text of the violated clause
  std::string Violation; ///< the oracle's violation message
  size_t TraceLen = 0;   ///< instructions executed before the violation
  /// Post-reduction statistics (0 when no ELF bytes were available).
  size_t Functions = 0;
  size_t Instructions = 0;
  std::string SidecarElf;  ///< basename of the written .elf ("" if none)
  std::string SidecarJson; ///< basename of the written .json ("" if none)
  bool Replayed = false;   ///< disk replay of the sidecar reproduced it
};

/// Everything a witness search produced, attached to a Session / report.
struct WitnessSummary {
  unsigned Budget = 0;   ///< per-site candidate budget the search ran with
  size_t Searched = 0;   ///< diagnostic sites searched
  size_t Confirmed = 0;  ///< sites with a confirmed concrete witness
  size_t Unconfirmed = 0;
  std::vector<WitnessRecord> Records;
};

} // namespace hglift::diag

#endif // HGLIFT_DIAG_DIAG_H
