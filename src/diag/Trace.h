//===- Trace.h - Span-based JSON-Lines tracer ------------------*- C++ -*-===//
//
// Structured tracing for the lifting pipeline: one JSON object per line
// (JSON Lines), one line per event. Events cover per-function lift spans
// (lift_begin/lift_end with the full stats payload, including cache
// hit/miss attribution), fixpoint iterations (one per worklist pop),
// uncached relation-solver decisions, and Step-2 spans and edge checks.
//
// Cost model. Tracing is OFF unless a Tracer is installed; every
// instrumentation point is
//
//   if (Tracer *T = Tracer::active()) { ...build and emit... }
//
// where active() is a single relaxed atomic load — unmeasurable on the
// Step-1 hot path (bench_step1_hotpath gates this). When ON, each event
// renders into a thread-local buffer and is written under one mutex, so
// concurrent workers (--threads N) interleave whole lines, never bytes:
// the output is valid JSON Lines under any schedule (raced under TSAN by
// parallel_lifter_test).
//
// Event order between threads is schedule-dependent; the deterministic
// artifact is --report-json, not the trace.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_DIAG_TRACE_H
#define HGLIFT_DIAG_TRACE_H

#include "diag/Diag.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <ostream>
#include <string>

namespace hglift::diag {

/// Builder for one trace event line: {"ev":"...","ts":...,"tid":N, ...}.
/// Field values are JSON-escaped; hex() renders addresses the same
/// "0x..." way every other artifact does.
class TraceEvent {
public:
  explicit TraceEvent(const char *Type);

  TraceEvent &field(const char *Key, uint64_t V);
  TraceEvent &field(const char *Key, int64_t V);
  TraceEvent &field(const char *Key, double V);
  TraceEvent &field(const char *Key, bool V);
  TraceEvent &field(const char *Key, const std::string &V);
  TraceEvent &field(const char *Key, const char *V);
  TraceEvent &hex(const char *Key, uint64_t V);

  /// The finished line, without the trailing newline.
  std::string finish() &&;

private:
  std::string Buf;
};

/// A JSON-Lines event sink. Install one globally with TracerScope (or
/// install()/uninstall()); instrumentation sites check active().
class Tracer {
public:
  /// Events go to OS (one line each). Name tags the trace_begin event
  /// (typically the binary being lifted). Emits trace_begin on
  /// construction and trace_end (with the event count) on destruction.
  explicit Tracer(std::ostream &OS, const std::string &Name = "");
  ~Tracer();

  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// The installed tracer, or nullptr. One relaxed atomic load: this is
  /// the whole disabled-path cost.
  static Tracer *active() {
    return Active.load(std::memory_order_relaxed);
  }
  static void install(Tracer *T) {
    Active.store(T, std::memory_order_release);
  }
  static void uninstall() { Active.store(nullptr, std::memory_order_release); }

  /// Stamp ts/tid onto E and write it as one line. Thread-safe.
  void emit(TraceEvent &&E);

  /// Seconds since this tracer was created.
  double now() const;

private:
  static std::atomic<Tracer *> Active;

  std::ostream &OS;
  std::mutex Mu;
  std::chrono::steady_clock::time_point Start;
  uint64_t Events = 0;
};

/// RAII install/uninstall, so no error path can leave a dangling tracer
/// installed.
struct TracerScope {
  explicit TracerScope(Tracer &T) { Tracer::install(&T); }
  ~TracerScope() { Tracer::uninstall(); }
  TracerScope(const TracerScope &) = delete;
  TracerScope &operator=(const TracerScope &) = delete;
};

/// Thread-local trace context: the function the calling worker is
/// currently lifting/checking. Lets lower layers (the relation solver)
/// attribute their events to a function without parameter plumbing.
struct TraceContext {
  static uint64_t currentFunction();

  /// RAII setter, used by the Lifter and the Step-2 checker.
  struct FunctionScope {
    explicit FunctionScope(uint64_t Entry);
    ~FunctionScope();
    FunctionScope(const FunctionScope &) = delete;
    FunctionScope &operator=(const FunctionScope &) = delete;

  private:
    uint64_t Saved;
  };
};

} // namespace hglift::diag

#endif // HGLIFT_DIAG_TRACE_H
