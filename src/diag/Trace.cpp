#include "diag/Trace.h"

#include "diag/Json.h"

#include <cinttypes>
#include <cstdio>

namespace hglift::diag {

// --- TraceEvent --------------------------------------------------------------

TraceEvent::TraceEvent(const char *Type) {
  Buf = "{\"ev\": \"";
  Buf += Type;
  Buf += '"';
}

TraceEvent &TraceEvent::field(const char *Key, uint64_t V) {
  Buf += ", \"";
  Buf += Key;
  Buf += "\": ";
  Buf += std::to_string(V);
  return *this;
}

TraceEvent &TraceEvent::field(const char *Key, int64_t V) {
  Buf += ", \"";
  Buf += Key;
  Buf += "\": ";
  Buf += std::to_string(V);
  return *this;
}

TraceEvent &TraceEvent::field(const char *Key, double V) {
  char Num[32];
  std::snprintf(Num, sizeof(Num), "%.6f", V);
  Buf += ", \"";
  Buf += Key;
  Buf += "\": ";
  Buf += Num;
  return *this;
}

TraceEvent &TraceEvent::field(const char *Key, bool V) {
  Buf += ", \"";
  Buf += Key;
  Buf += "\": ";
  Buf += V ? "true" : "false";
  return *this;
}

TraceEvent &TraceEvent::field(const char *Key, const std::string &V) {
  Buf += ", \"";
  Buf += Key;
  Buf += "\": \"";
  Buf += jsonEscape(V);
  Buf += '"';
  return *this;
}

TraceEvent &TraceEvent::field(const char *Key, const char *V) {
  return field(Key, std::string(V));
}

TraceEvent &TraceEvent::hex(const char *Key, uint64_t V) {
  char Num[24];
  std::snprintf(Num, sizeof(Num), "0x%" PRIx64, V);
  Buf += ", \"";
  Buf += Key;
  Buf += "\": \"";
  Buf += Num;
  Buf += '"';
  return *this;
}

std::string TraceEvent::finish() && {
  Buf += '}';
  return std::move(Buf);
}

// --- Tracer ------------------------------------------------------------------

std::atomic<Tracer *> Tracer::Active{nullptr};

Tracer::Tracer(std::ostream &OS, const std::string &Name)
    : OS(OS), Start(std::chrono::steady_clock::now()) {
  TraceEvent E("trace_begin");
  E.field("schema", static_cast<uint64_t>(TraceSchemaVersion));
  E.field("name", Name);
  emit(std::move(E));
}

Tracer::~Tracer() {
  // Defensive: a still-installed tracer must not dangle.
  if (active() == this)
    uninstall();
  TraceEvent E("trace_end");
  E.field("events", Events);
  emit(std::move(E));
  OS.flush();
}

double Tracer::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

void Tracer::emit(TraceEvent &&E) {
  E.field("ts", now());
  E.field("tid", static_cast<uint64_t>(workerOrdinal()));
  std::string Line = std::move(E).finish();
  std::lock_guard<std::mutex> G(Mu);
  ++Events;
  OS << Line << '\n';
}

// --- TraceContext ------------------------------------------------------------

namespace {
thread_local uint64_t CurrentFn = 0;
} // namespace

uint64_t TraceContext::currentFunction() { return CurrentFn; }

TraceContext::FunctionScope::FunctionScope(uint64_t Entry) : Saved(CurrentFn) {
  CurrentFn = Entry;
}

TraceContext::FunctionScope::~FunctionScope() { CurrentFn = Saved; }

} // namespace hglift::diag
