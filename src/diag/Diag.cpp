#include "diag/Diag.h"

#include <atomic>

namespace hglift::diag {

const char *diagKindName(DiagKind K) {
  switch (K) {
  case DiagKind::VerificationError:
    return "verification-error";
  case DiagKind::ProofObligation:
    return "proof-obligation";
  case DiagKind::UnsoundnessAnnotation:
    return "unsoundness-annotation";
  }
  return "?";
}

const char *componentName(Component C) {
  switch (C) {
  case Component::Lifter:
    return "lifter";
  case Component::SymExec:
    return "symexec";
  case Component::RelationSolver:
    return "relation-solver";
  case Component::HoareChecker:
    return "hoare-checker";
  }
  return "?";
}

unsigned workerOrdinal() {
  static std::atomic<unsigned> Next{0};
  thread_local unsigned Mine = Next.fetch_add(1, std::memory_order_relaxed);
  return Mine;
}

} // namespace hglift::diag
