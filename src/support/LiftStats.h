//===- LiftStats.h - Observability counters for the lifting engine -*- C++ -*-//
//
// One LiftStats records what Algorithm 1 did for one function: how many
// vertices it explored, how often it joined and widened, how many symbolic
// steps and memory-model forks the semantics produced, and how many
// necessarily-relation queries reached the solver (and, of those, Z3).
// The struct lives in support/ so every layer — Lifter, SymExec,
// RelationSolver — can hold a sink pointer without dependency cycles.
//
// Aggregation across functions is a plain merge(); the parallel lifting
// engine merges per-function stats under its result mutex, so the binary
// totals are exact regardless of thread count.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SUPPORT_LIFTSTATS_H
#define HGLIFT_SUPPORT_LIFTSTATS_H

#include <cstdint>

namespace hglift {

struct LiftStats {
  /// Vertices of the Hoare Graph explored (fetch+decode+step ran there).
  uint64_t Vertices = 0;
  /// Joins performed at existing vertices (Algorithm 1 lines 5-7).
  uint64_t Joins = 0;
  /// Joins that widened (JoinCount exceeded LiftConfig::WidenAfterJoins).
  uint64_t Widenings = 0;
  /// Symbolic instruction executions (SymExec::step calls).
  uint64_t Steps = 0;
  /// Extra successors from nondeterministic forks (memory-model insertion
  /// outcomes, conditional branches, jump-table fan-out): successors beyond
  /// the first, summed over steps.
  uint64_t Forks = 0;
  /// Necessarily-relation queries answered by the RelationSolver.
  uint64_t SolverQueries = 0;
  /// The subset of SolverQueries that reached the Z3 backend.
  uint64_t Z3Queries = 0;
  /// Computed (uncached) relation queries decided by tier 0: syntactic
  /// identity or a constant linear difference.
  uint64_t SolverTier0Hits = 0;
  /// Decided by tier 1: interval/constant reasoning over range clauses.
  uint64_t SolverTier1Hits = 0;
  /// Decided by the allocation-class assumption layer (recorded as proof
  /// obligations; sits between tier 1 and tier 2).
  uint64_t SolverClassHits = 0;
  /// Decided by tier 2 (Z3).
  uint64_t SolverTier2Hits = 0;
  /// Tier-2 round trips the admission filter skipped because no definite
  /// relation was derivable (the query degrades to Unknown, soundly).
  uint64_t SolverTier2Skipped = 0;
  /// Queries every tier fell through (answered Unknown).
  uint64_t SolverFallthroughs = 0;
  /// Wall-clock seconds spent computing uncached relation decisions (the
  /// portfolio's "query time"; cache hits cost the same in every mode and
  /// are excluded).
  double SolverSeconds = 0;
  /// Relation-solver queries answered from the version-keyed memo.
  uint64_t RelCacheHits = 0;
  /// Relation-solver queries that missed the memo (answered uncached).
  uint64_t RelCacheMisses = 0;
  /// Stale-version memo entries dropped by the sweep at the cache cap
  /// (their Pred was mutated, so the keys can never be hit again).
  uint64_t RelCacheInvalidated = 0;
  /// Live-version memo entries cleared because the sweep freed nothing at
  /// the cap (single hot predicate); these were still hittable.
  uint64_t RelCacheEvicted = 0;
  /// Pred/MemModel leq probes answered from the lifter's digest memo.
  uint64_t LeqHits = 0;
  /// leq probes that fell through to the full comparison.
  uint64_t LeqMisses = 0;
  /// Value-set-analysis resolution attempts on indirect jump/call targets
  /// (docs/VSA.md): one per non-constant rip candidate probed.
  uint64_t VsaQueries = 0;
  /// VSA queries that resolved to a concrete target set.
  uint64_t VsaResolved = 0;
  /// Total concrete targets across resolved VSA queries (column A's
  /// resolved-indirection fan-out).
  uint64_t VsaTargets = 0;
  /// Function re-explorations triggered by a table-shaped-but-unbounded
  /// index (the widening-protection retry loop in Lifter.cpp).
  uint64_t VsaRestarts = 0;
  /// Wall-clock seconds (per function: the lift; aggregated: sum of
  /// per-function times, which exceeds elapsed wall time when parallel).
  double Seconds = 0;

  void merge(const LiftStats &O) {
    Vertices += O.Vertices;
    Joins += O.Joins;
    Widenings += O.Widenings;
    Steps += O.Steps;
    Forks += O.Forks;
    SolverQueries += O.SolverQueries;
    Z3Queries += O.Z3Queries;
    SolverTier0Hits += O.SolverTier0Hits;
    SolverTier1Hits += O.SolverTier1Hits;
    SolverClassHits += O.SolverClassHits;
    SolverTier2Hits += O.SolverTier2Hits;
    SolverTier2Skipped += O.SolverTier2Skipped;
    SolverFallthroughs += O.SolverFallthroughs;
    SolverSeconds += O.SolverSeconds;
    RelCacheHits += O.RelCacheHits;
    RelCacheMisses += O.RelCacheMisses;
    RelCacheInvalidated += O.RelCacheInvalidated;
    RelCacheEvicted += O.RelCacheEvicted;
    LeqHits += O.LeqHits;
    LeqMisses += O.LeqMisses;
    VsaQueries += O.VsaQueries;
    VsaResolved += O.VsaResolved;
    VsaTargets += O.VsaTargets;
    VsaRestarts += O.VsaRestarts;
    Seconds += O.Seconds;
  }
};

/// Counters for one sharded run's scheduler (shard/Shard.h): how the work
/// units were planned, claimed, and stolen, and what the cost model knew.
/// Lives here for the same reason LiftStats does — the shard runner, the
/// driver's --stats-json writer, and the benches all read it without
/// depending on each other. Purely observational: none of these counters
/// feed back into scheduling decisions.
struct ShardSchedStats {
  /// Work units planned (lift units + prewarm units).
  uint64_t UnitsTotal = 0;
  /// Units that produce a report fragment (one per input binary).
  uint64_t UnitsLift = 0;
  /// Advisory store-prewarm units (function-granularity splitting of
  /// large library binaries; failures degrade to a cold cache).
  uint64_t UnitsPrewarm = 0;
  /// Units granted to workers over the claim protocol.
  uint64_t Claims = 0;
  /// Claims whose unit the static round-robin plan would have assigned to
  /// a different worker — the work the pull scheduler moved.
  uint64_t Steals = 0;
  /// Claimed-but-unfinished units returned to the queue by a worker crash
  /// or a unit-level IO failure, then granted again.
  uint64_t Requeues = 0;
  /// Cost-ledger lookups that produced a usable record at plan time.
  uint64_t LedgerHits = 0;
  /// Lookups that fell back to the static text-size heuristic.
  uint64_t LedgerMisses = 0;
  /// Ledger records written back after observed completions.
  uint64_t LedgerRecords = 0;
  /// Sum of per-unit cost estimates at plan time (seconds; ledger entries
  /// verbatim, heuristic entries in calibrated pseudo-seconds).
  double EstimatedSeconds = 0;
  /// Sum of per-unit observed wall seconds reported by workers.
  double ObservedSeconds = 0;

  void merge(const ShardSchedStats &O) {
    UnitsTotal += O.UnitsTotal;
    UnitsLift += O.UnitsLift;
    UnitsPrewarm += O.UnitsPrewarm;
    Claims += O.Claims;
    Steals += O.Steals;
    Requeues += O.Requeues;
    LedgerHits += O.LedgerHits;
    LedgerMisses += O.LedgerMisses;
    LedgerRecords += O.LedgerRecords;
    EstimatedSeconds += O.EstimatedSeconds;
    ObservedSeconds += O.ObservedSeconds;
  }
};

} // namespace hglift

#endif // HGLIFT_SUPPORT_LIFTSTATS_H
