//===- LiftStats.h - Observability counters for the lifting engine -*- C++ -*-//
//
// One LiftStats records what Algorithm 1 did for one function: how many
// vertices it explored, how often it joined and widened, how many symbolic
// steps and memory-model forks the semantics produced, and how many
// necessarily-relation queries reached the solver (and, of those, Z3).
// The struct lives in support/ so every layer — Lifter, SymExec,
// RelationSolver — can hold a sink pointer without dependency cycles.
//
// Aggregation across functions is a plain merge(); the parallel lifting
// engine merges per-function stats under its result mutex, so the binary
// totals are exact regardless of thread count.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SUPPORT_LIFTSTATS_H
#define HGLIFT_SUPPORT_LIFTSTATS_H

#include <cstdint>

namespace hglift {

struct LiftStats {
  /// Vertices of the Hoare Graph explored (fetch+decode+step ran there).
  uint64_t Vertices = 0;
  /// Joins performed at existing vertices (Algorithm 1 lines 5-7).
  uint64_t Joins = 0;
  /// Joins that widened (JoinCount exceeded LiftConfig::WidenAfterJoins).
  uint64_t Widenings = 0;
  /// Symbolic instruction executions (SymExec::step calls).
  uint64_t Steps = 0;
  /// Extra successors from nondeterministic forks (memory-model insertion
  /// outcomes, conditional branches, jump-table fan-out): successors beyond
  /// the first, summed over steps.
  uint64_t Forks = 0;
  /// Necessarily-relation queries answered by the RelationSolver.
  uint64_t SolverQueries = 0;
  /// The subset of SolverQueries that reached the Z3 backend.
  uint64_t Z3Queries = 0;
  /// Relation-solver queries answered from the version-keyed memo.
  uint64_t RelCacheHits = 0;
  /// Relation-solver queries that missed the memo (answered uncached).
  uint64_t RelCacheMisses = 0;
  /// Memo entries dropped by the stale-version sweep at the cache cap.
  uint64_t RelCacheInvalidated = 0;
  /// Pred/MemModel leq probes answered from the lifter's digest memo.
  uint64_t LeqHits = 0;
  /// leq probes that fell through to the full comparison.
  uint64_t LeqMisses = 0;
  /// Wall-clock seconds (per function: the lift; aggregated: sum of
  /// per-function times, which exceeds elapsed wall time when parallel).
  double Seconds = 0;

  void merge(const LiftStats &O) {
    Vertices += O.Vertices;
    Joins += O.Joins;
    Widenings += O.Widenings;
    Steps += O.Steps;
    Forks += O.Forks;
    SolverQueries += O.SolverQueries;
    Z3Queries += O.Z3Queries;
    RelCacheHits += O.RelCacheHits;
    RelCacheMisses += O.RelCacheMisses;
    RelCacheInvalidated += O.RelCacheInvalidated;
    LeqHits += O.LeqHits;
    LeqMisses += O.LeqMisses;
    Seconds += O.Seconds;
  }
};

} // namespace hglift

#endif // HGLIFT_SUPPORT_LIFTSTATS_H
