#include "support/Format.h"

#include <cstdio>

namespace hglift {

std::string hexStr(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%llx", static_cast<unsigned long long>(V));
  return Buf;
}

std::string dispStr(int64_t V) {
  if (V == 0)
    return "";
  char Buf[32];
  if (V < 0)
    std::snprintf(Buf, sizeof(Buf), "-0x%llx",
                  static_cast<unsigned long long>(-V));
  else
    std::snprintf(Buf, sizeof(Buf), "+0x%llx",
                  static_cast<unsigned long long>(V));
  return Buf;
}

std::string hmsStr(double Seconds) {
  if (Seconds < 0)
    Seconds = 0;
  uint64_t S = static_cast<uint64_t>(Seconds + 0.5);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu:%02llu:%02llu",
                static_cast<unsigned long long>(S / 3600),
                static_cast<unsigned long long>((S / 60) % 60),
                static_cast<unsigned long long>(S % 60));
  return Buf;
}

std::string padLeft(const std::string &S, size_t W) {
  if (S.size() >= W)
    return S;
  return std::string(W - S.size(), ' ') + S;
}

std::string padRight(const std::string &S, size_t W) {
  if (S.size() >= W)
    return S;
  return S + std::string(W - S.size(), ' ');
}

std::string groupedStr(uint64_t V) {
  std::string Raw = std::to_string(V);
  std::string Out;
  size_t N = Raw.size();
  for (size_t I = 0; I < N; ++I) {
    if (I != 0 && (N - I) % 3 == 0)
      Out += ' ';
    Out += Raw[I];
  }
  return Out;
}

} // namespace hglift
