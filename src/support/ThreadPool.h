//===- ThreadPool.h - Work queue for parallel per-function lifting -*- C++ -*-//
//
// A small fixed-size thread pool with dynamic task submission: running
// tasks may submit new tasks (the lifter discovers callees while lifting),
// and waitIdle() blocks until the queue is empty *and* no task is still
// running — the quiescence condition of the per-function work-queue
// algorithm, not merely "queue drained".
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SUPPORT_THREADPOOL_H
#define HGLIFT_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hglift {

class ThreadPool {
public:
  /// Spawns NumThreads workers. NumThreads == 0 resolves to the hardware
  /// concurrency (at least 1).
  explicit ThreadPool(unsigned NumThreads);
  /// Drains the queue (waitIdle), then stops and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueue a task. Safe to call from inside a running task.
  void submit(std::function<void()> Job);

  /// Block until every submitted task (including ones submitted by running
  /// tasks after this call started) has finished.
  void waitIdle();

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// The thread count NumThreads == 0 resolves to.
  static unsigned defaultThreads();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex M;
  std::condition_variable HasWork; ///< signalled on submit / stop
  std::condition_variable Idle;    ///< signalled when a task finishes
  size_t Running = 0;              ///< tasks currently executing
  bool Stopping = false;
};

} // namespace hglift

#endif // HGLIFT_SUPPORT_THREADPOOL_H
