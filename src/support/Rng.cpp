#include "support/Rng.h"

namespace hglift {

uint64_t Rng::next() {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t Rng::below(uint64_t Bound) {
  // Rejection-free multiply-shift reduction; bias is negligible for our use
  // (corpus generation and test case selection).
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(next()) * Bound) >> 64);
}

int64_t Rng::range(int64_t Lo, int64_t Hi) {
  return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
}

bool Rng::chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

} // namespace hglift
