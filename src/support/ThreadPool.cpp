#include "support/ThreadPool.h"

namespace hglift {

unsigned ThreadPool::defaultThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = defaultThreads();
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  waitIdle();
  {
    std::lock_guard<std::mutex> G(M);
    Stopping = true;
  }
  HasWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> G(M);
    Queue.push_back(std::move(Job));
  }
  HasWork.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> L(M);
  Idle.wait(L, [this] { return Queue.empty() && Running == 0; });
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> L(M);
  while (true) {
    HasWork.wait(L, [this] { return Stopping || !Queue.empty(); });
    if (Stopping && Queue.empty())
      return;
    std::function<void()> Job = std::move(Queue.front());
    Queue.pop_front();
    ++Running;
    L.unlock();
    Job();
    L.lock();
    --Running;
    if (Queue.empty() && Running == 0)
      Idle.notify_all();
  }
}

} // namespace hglift
