//===- Interval.h - Signed 64-bit interval arithmetic ----------*- C++ -*-===//
//
// Part of hglift, a reproduction of "Formally Verified Lifting of C-Compiled
// x86-64 Binaries" (PLDI 2022).
//
// Intervals over signed 64-bit offsets. The relation solver reduces
// "necessarily separate / enclosed / aliasing" questions about symbolic
// addresses to interval questions about their linearized difference, so the
// arithmetic here must be conservative: any operation that could overflow
// returns the top interval.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SUPPORT_INTERVAL_H
#define HGLIFT_SUPPORT_INTERVAL_H

#include <cstdint>
#include <optional>
#include <string>

namespace hglift {

/// A closed interval [Lo, Hi] of signed 64-bit values. An interval with
/// Lo > Hi is empty (bottom); the canonical empty interval is
/// Interval::empty(). The full range is top().
class Interval {
public:
  Interval() : Lo(INT64_MIN), Hi(INT64_MAX) {}
  Interval(int64_t Point) : Lo(Point), Hi(Point) {}
  Interval(int64_t Lo, int64_t Hi) : Lo(Lo), Hi(Hi) {}

  static Interval top() { return Interval(); }
  static Interval empty() { return Interval(1, 0); }

  int64_t lo() const { return Lo; }
  int64_t hi() const { return Hi; }

  bool isEmpty() const { return Lo > Hi; }
  bool isTop() const { return Lo == INT64_MIN && Hi == INT64_MAX; }
  bool isPoint() const { return Lo == Hi; }

  bool contains(int64_t V) const { return Lo <= V && V <= Hi; }
  bool contains(const Interval &O) const {
    return O.isEmpty() || (Lo <= O.Lo && O.Hi <= Hi);
  }
  bool intersects(const Interval &O) const {
    return !isEmpty() && !O.isEmpty() && Lo <= O.Hi && O.Lo <= Hi;
  }

  /// Entirely below V (every element < V)?
  bool below(int64_t V) const { return isEmpty() || Hi < V; }
  /// Entirely at-or-above V?
  bool atLeast(int64_t V) const { return isEmpty() || Lo >= V; }

  Interval join(const Interval &O) const;
  Interval meet(const Interval &O) const;

  /// Conservative arithmetic: returns top() on any possible overflow.
  Interval add(const Interval &O) const;
  Interval sub(const Interval &O) const;
  Interval mul(int64_t K) const;
  Interval neg() const;

  bool operator==(const Interval &O) const {
    if (isEmpty() && O.isEmpty())
      return true;
    return Lo == O.Lo && Hi == O.Hi;
  }

  std::string str() const;

private:
  int64_t Lo, Hi;
};

} // namespace hglift

#endif // HGLIFT_SUPPORT_INTERVAL_H
