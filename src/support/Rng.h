//===- Rng.h - Deterministic random number generation ----------*- C++ -*-===//
//
// Deterministic, seed-stable RNG (SplitMix64) used by the corpus generator
// and the property-based tests. We do not use std::mt19937 because its
// distributions are not guaranteed identical across standard libraries, and
// the synthetic evaluation corpus must be bit-stable.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SUPPORT_RNG_H
#define HGLIFT_SUPPORT_RNG_H

#include <cstdint>
#include <vector>

namespace hglift {

class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value (SplitMix64).
  uint64_t next();

  /// Uniform value in [0, Bound). Bound must be nonzero.
  uint64_t below(uint64_t Bound);

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi);

  /// Bernoulli trial with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den);

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T> const T &pick(const std::vector<T> &V) {
    return V[below(V.size())];
  }

private:
  uint64_t State;
};

} // namespace hglift

#endif // HGLIFT_SUPPORT_RNG_H
