//===- Format.h - Small formatting helpers ---------------------*- C++ -*-===//

#ifndef HGLIFT_SUPPORT_FORMAT_H
#define HGLIFT_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>

namespace hglift {

/// Format V as lowercase hex with a 0x prefix.
std::string hexStr(uint64_t V);

/// Format V as a signed displacement: "+0x10" / "-0x10" / "" for zero.
std::string dispStr(int64_t V);

/// Format a duration in seconds as "h:mm:ss".
std::string hmsStr(double Seconds);

/// Left-pad S to width W with spaces.
std::string padLeft(const std::string &S, size_t W);
/// Right-pad S to width W with spaces.
std::string padRight(const std::string &S, size_t W);

/// Format a count with thousands separators ("399 771" style, as the paper
/// prints instruction counts).
std::string groupedStr(uint64_t V);

} // namespace hglift

#endif // HGLIFT_SUPPORT_FORMAT_H
