#include "support/Interval.h"

#include <algorithm>

namespace hglift {

namespace {

/// Checked signed addition; nullopt on overflow.
std::optional<int64_t> addOv(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return std::nullopt;
  return R;
}

std::optional<int64_t> subOv(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_sub_overflow(A, B, &R))
    return std::nullopt;
  return R;
}

std::optional<int64_t> mulOv(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_mul_overflow(A, B, &R))
    return std::nullopt;
  return R;
}

} // namespace

Interval Interval::join(const Interval &O) const {
  if (isEmpty())
    return O;
  if (O.isEmpty())
    return *this;
  return Interval(std::min(Lo, O.Lo), std::max(Hi, O.Hi));
}

Interval Interval::meet(const Interval &O) const {
  if (isEmpty() || O.isEmpty())
    return empty();
  Interval R(std::max(Lo, O.Lo), std::min(Hi, O.Hi));
  return R.isEmpty() ? empty() : R;
}

Interval Interval::add(const Interval &O) const {
  if (isEmpty() || O.isEmpty())
    return empty();
  auto L = addOv(Lo, O.Lo);
  auto H = addOv(Hi, O.Hi);
  if (!L || !H)
    return top();
  return Interval(*L, *H);
}

Interval Interval::sub(const Interval &O) const {
  if (isEmpty() || O.isEmpty())
    return empty();
  auto L = subOv(Lo, O.Hi);
  auto H = subOv(Hi, O.Lo);
  if (!L || !H)
    return top();
  return Interval(*L, *H);
}

Interval Interval::mul(int64_t K) const {
  if (isEmpty())
    return empty();
  auto A = mulOv(Lo, K);
  auto B = mulOv(Hi, K);
  if (!A || !B)
    return top();
  return Interval(std::min(*A, *B), std::max(*A, *B));
}

Interval Interval::neg() const {
  if (isEmpty())
    return empty();
  if (Lo == INT64_MIN)
    return top();
  return Interval(-Hi, -Lo);
}

std::string Interval::str() const {
  if (isEmpty())
    return "[]";
  if (isTop())
    return "[T]";
  return "[" + std::to_string(Lo) + "," + std::to_string(Hi) + "]";
}

} // namespace hglift
