#include "semantics/Machine.h"

#include "expr/Expr.h" // maskToWidth / signExtend helpers

namespace hglift::sem {

using expr::maskToWidth;
using expr::signExtend;
using x86::Cond;
using x86::Instr;
using x86::MemOperand;
using x86::Mnemonic;
using x86::Operand;
using x86::Reg;

uint64_t Machine::load(uint64_t Addr, unsigned Size) const {
  uint64_t V = 0;
  for (unsigned I = 0; I < Size; ++I) {
    uint8_t B = 0;
    auto It = Mem.find(Addr + I);
    if (It != Mem.end()) {
      B = It->second;
    } else if (auto R = Img->read(Addr + I, 1)) {
      B = static_cast<uint8_t>(*R);
    }
    V |= static_cast<uint64_t>(B) << (8 * I);
  }
  return V;
}

void Machine::store(uint64_t Addr, unsigned Size, uint64_t V) {
  for (unsigned I = 0; I < Size; ++I)
    Mem[Addr + I] = static_cast<uint8_t>(V >> (8 * I));
}

void Machine::setupCall(uint64_t Entry, uint64_t StackTop) {
  setReg(Reg::RSP, StackTop - 8);
  store(StackTop - 8, 8, RetSentinel);
  Rip = Entry;
}

uint64_t Machine::evalMemAddr(const Instr &I, const MemOperand &M) const {
  uint64_t A = M.RipRel ? I.nextAddr() : 0;
  if (M.Base != Reg::None)
    A += reg(M.Base);
  if (M.Index != Reg::None)
    A += reg(M.Index) * M.Scale;
  return A + static_cast<uint64_t>(static_cast<int64_t>(M.Disp));
}

uint64_t Machine::readOperand(const Instr &I, const Operand &O) const {
  switch (O.K) {
  case Operand::Kind::Imm:
    return maskToWidth(static_cast<uint64_t>(O.Imm), O.Size * 8);
  case Operand::Kind::Reg: {
    uint64_t V = reg(O.R);
    if (O.Size == 1 && O.HighByte)
      return (V >> 8) & 0xff;
    return maskToWidth(V, O.Size * 8);
  }
  case Operand::Kind::Mem:
    return load(evalMemAddr(I, O.M), O.Size);
  case Operand::Kind::None:
    return 0;
  }
  return 0;
}

void Machine::writeOperand(const Instr &I, const Operand &O, uint64_t V) {
  V = maskToWidth(V, O.Size * 8);
  if (O.isMem()) {
    store(evalMemAddr(I, O.M), O.Size, V);
    return;
  }
  uint64_t Old = reg(O.R);
  switch (O.Size) {
  case 8:
    setReg(O.R, V);
    break;
  case 4:
    setReg(O.R, V); // 32-bit writes zero-extend
    break;
  case 2:
    setReg(O.R, (Old & ~uint64_t(0xffff)) | V);
    break;
  case 1:
    if (O.HighByte)
      setReg(O.R, (Old & ~uint64_t(0xff00)) | (V << 8));
    else
      setReg(O.R, (Old & ~uint64_t(0xff)) | V);
    break;
  }
}

namespace {

struct ArithFlags {
  bool ZF, SF, CF, OF;
};

ArithFlags flagsAdd(uint64_t A, uint64_t B, unsigned W) {
  uint64_t R = maskToWidth(A + B, W);
  ArithFlags F;
  F.ZF = R == 0;
  F.SF = signExtend(R, W) < 0;
  F.CF = R < maskToWidth(A, W);
  bool SA = signExtend(A, W) < 0, SB = signExtend(B, W) < 0;
  F.OF = (SA == SB) && (F.SF != SA);
  return F;
}

ArithFlags flagsSub(uint64_t A, uint64_t B, unsigned W) {
  uint64_t MA = maskToWidth(A, W), MB = maskToWidth(B, W);
  uint64_t R = maskToWidth(MA - MB, W);
  ArithFlags F;
  F.ZF = R == 0;
  F.SF = signExtend(R, W) < 0;
  F.CF = MA < MB;
  bool SA = signExtend(MA, W) < 0, SB = signExtend(MB, W) < 0;
  F.OF = (SA != SB) && (F.SF != SA);
  return F;
}

ArithFlags flagsLogic(uint64_t R, unsigned W) {
  ArithFlags F;
  F.ZF = maskToWidth(R, W) == 0;
  F.SF = signExtend(R, W) < 0;
  F.CF = false;
  F.OF = false;
  return F;
}

} // namespace

Machine::Status Machine::doExternalCall(const std::string &Name) {
  if (ExternalHook)
    return ExternalHook(*this, Name);
  if (Name == "exit" || Name == "_exit" || Name == "abort" ||
      Name == "__stack_chk_fail")
    return Status::Halted;
  // Default model: clobber the System V volatile registers, return a
  // pseudo-random value, leave memory alone, and return to the caller.
  for (Reg R : {Reg::RAX, Reg::RCX, Reg::RDX, Reg::RSI, Reg::RDI, Reg::R8,
                Reg::R9, Reg::R10, Reg::R11})
    setReg(R, ExtRng.next());
  ZF = ExtRng.chance(1, 2);
  SF = ExtRng.chance(1, 2);
  CF = ExtRng.chance(1, 2);
  OF = ExtRng.chance(1, 2);
  // Pop the return address pushed by the call.
  uint64_t Ret = load(reg(Reg::RSP), 8);
  setReg(Reg::RSP, reg(Reg::RSP) + 8);
  Rip = Ret;
  return Status::Running;
}

Machine::Status Machine::step() {
  if (!Img->isExec(Rip))
    return Status::Fault;
  size_t Avail;
  const uint8_t *Bytes = Img->bytesAt(Rip, Avail);
  if (!Bytes)
    return Status::Fault;
  // Self-modifying code is out of scope; fetch sees the original image, but
  // fault if any fetched byte was overwritten.
  Instr I = x86::decodeInstr(Bytes, Avail, Rip);
  if (!I.isValid())
    return Status::Fault;
  for (unsigned B = 0; B < I.Length; ++B)
    if (everWritten(Rip + B))
      return Status::Fault;
  Trace.push_back(Rip);

  uint64_t Next = I.nextAddr();
  unsigned W = I.Ops[0].isNone() ? I.OpSize * 8 : I.Ops[0].Size * 8;

  auto CondHolds = [&](Cond C) {
    switch (C) {
    case Cond::O:
      return OF;
    case Cond::NO:
      return !OF;
    case Cond::B:
      return CF;
    case Cond::AE:
      return !CF;
    case Cond::E:
      return ZF;
    case Cond::NE:
      return !ZF;
    case Cond::BE:
      return CF || ZF;
    case Cond::A:
      return !CF && !ZF;
    case Cond::S:
      return SF;
    case Cond::NS:
      return !SF;
    case Cond::P:
    case Cond::NP:
      return false; // parity unmodeled (never emitted by the corpus)
    case Cond::L:
      return SF != OF;
    case Cond::GE:
      return SF == OF;
    case Cond::LE:
      return ZF || (SF != OF);
    case Cond::G:
      return !ZF && (SF == OF);
    }
    return false;
  };

  auto ApplyFlags = [&](const ArithFlags &F) {
    ZF = F.ZF;
    SF = F.SF;
    CF = F.CF;
    OF = F.OF;
  };

  switch (I.Mn) {
  case Mnemonic::Mov:
    writeOperand(I, I.Ops[0], readOperand(I, I.Ops[1]));
    break;
  case Mnemonic::Movzx:
    writeOperand(I, I.Ops[0], readOperand(I, I.Ops[1]));
    break;
  case Mnemonic::Movsx:
  case Mnemonic::Movsxd: {
    uint64_t V = readOperand(I, I.Ops[1]);
    writeOperand(I, I.Ops[0],
                 static_cast<uint64_t>(signExtend(V, I.Ops[1].Size * 8)));
    break;
  }
  case Mnemonic::Lea:
    writeOperand(I, I.Ops[0], evalMemAddr(I, I.Ops[1].M));
    break;
  case Mnemonic::Add:
  case Mnemonic::Adc: {
    uint64_t A = readOperand(I, I.Ops[0]), B = readOperand(I, I.Ops[1]);
    uint64_t Carry = (I.Mn == Mnemonic::Adc && CF) ? 1 : 0;
    ApplyFlags(flagsAdd(A, B + Carry, W));
    writeOperand(I, I.Ops[0], A + B + Carry);
    break;
  }
  case Mnemonic::Sub:
  case Mnemonic::Sbb: {
    uint64_t A = readOperand(I, I.Ops[0]), B = readOperand(I, I.Ops[1]);
    uint64_t Borrow = (I.Mn == Mnemonic::Sbb && CF) ? 1 : 0;
    ApplyFlags(flagsSub(A, B + Borrow, W));
    writeOperand(I, I.Ops[0], A - B - Borrow);
    break;
  }
  case Mnemonic::Cmp: {
    uint64_t A = readOperand(I, I.Ops[0]), B = readOperand(I, I.Ops[1]);
    ApplyFlags(flagsSub(A, B, W));
    break;
  }
  case Mnemonic::And:
  case Mnemonic::Or:
  case Mnemonic::Xor: {
    uint64_t A = readOperand(I, I.Ops[0]), B = readOperand(I, I.Ops[1]);
    uint64_t R = I.Mn == Mnemonic::And ? (A & B)
                 : I.Mn == Mnemonic::Or ? (A | B)
                                        : (A ^ B);
    ApplyFlags(flagsLogic(R, W));
    writeOperand(I, I.Ops[0], R);
    break;
  }
  case Mnemonic::Test: {
    uint64_t A = readOperand(I, I.Ops[0]), B = readOperand(I, I.Ops[1]);
    ApplyFlags(flagsLogic(A & B, W));
    break;
  }
  case Mnemonic::Shl:
  case Mnemonic::Shr:
  case Mnemonic::Sar: {
    uint64_t A = readOperand(I, I.Ops[0]);
    unsigned Count =
        static_cast<unsigned>(readOperand(I, I.Ops[1])) & (W == 64 ? 63 : 31);
    if (Count != 0) {
      uint64_t R;
      if (I.Mn == Mnemonic::Shl)
        R = A << Count;
      else if (I.Mn == Mnemonic::Shr)
        R = maskToWidth(A, W) >> Count;
      else
        R = static_cast<uint64_t>(signExtend(A, W) >> Count);
      ApplyFlags(flagsLogic(R, W)); // CF/OF approximated as 0
      writeOperand(I, I.Ops[0], R);
    }
    break;
  }
  case Mnemonic::Rol:
  case Mnemonic::Ror: {
    uint64_t A = maskToWidth(readOperand(I, I.Ops[0]), W);
    unsigned Count =
        static_cast<unsigned>(readOperand(I, I.Ops[1])) & (W == 64 ? 63 : 31);
    Count %= W;
    if (Count != 0) {
      uint64_t R;
      if (I.Mn == Mnemonic::Rol)
        R = (A << Count) | (A >> (W - Count));
      else
        R = (A >> Count) | (A << (W - Count));
      writeOperand(I, I.Ops[0], R);
      // Only CF/OF change architecturally; we leave ZF/SF as-is.
    }
    break;
  }
  case Mnemonic::Bswap: {
    unsigned Sz = I.Ops[0].Size;
    uint64_t A = readOperand(I, I.Ops[0]);
    uint64_t R = 0;
    for (unsigned B = 0; B < Sz; ++B)
      R |= ((A >> (8 * B)) & 0xff) << (8 * (Sz - 1 - B));
    writeOperand(I, I.Ops[0], R);
    break;
  }
  case Mnemonic::Bsf:
  case Mnemonic::Bsr: {
    uint64_t Src = maskToWidth(readOperand(I, I.Ops[1]), W);
    ZF = Src == 0;
    SF = CF = OF = false;
    if (Src != 0) {
      unsigned Idx = I.Mn == Mnemonic::Bsf
                         ? static_cast<unsigned>(__builtin_ctzll(Src))
                         : 63 - static_cast<unsigned>(__builtin_clzll(Src));
      writeOperand(I, I.Ops[0], Idx);
    }
    break;
  }
  case Mnemonic::Inc: {
    uint64_t A = readOperand(I, I.Ops[0]);
    bool OldCF = CF;
    ApplyFlags(flagsAdd(A, 1, W));
    CF = OldCF; // inc leaves CF
    writeOperand(I, I.Ops[0], A + 1);
    break;
  }
  case Mnemonic::Dec: {
    uint64_t A = readOperand(I, I.Ops[0]);
    bool OldCF = CF;
    ApplyFlags(flagsSub(A, 1, W));
    CF = OldCF;
    writeOperand(I, I.Ops[0], A - 1);
    break;
  }
  case Mnemonic::Neg: {
    uint64_t A = readOperand(I, I.Ops[0]);
    ApplyFlags(flagsSub(0, A, W));
    writeOperand(I, I.Ops[0], 0 - A);
    break;
  }
  case Mnemonic::Not:
    writeOperand(I, I.Ops[0], ~readOperand(I, I.Ops[0]));
    break;
  case Mnemonic::Imul: {
    if (I.numOperands() == 1) {
      // rdx:rax := rax * src (signed widening).
      __int128 P = static_cast<__int128>(signExtend(reg(Reg::RAX), W)) *
                   signExtend(readOperand(I, I.Ops[0]), W);
      writeOperand(I, Operand::reg(Reg::RAX, I.Ops[0].Size),
                   static_cast<uint64_t>(P));
      writeOperand(I, Operand::reg(Reg::RDX, I.Ops[0].Size),
                   static_cast<uint64_t>(P >> (I.Ops[0].Size * 8)));
    } else if (I.numOperands() == 2) {
      uint64_t R = readOperand(I, I.Ops[0]) * readOperand(I, I.Ops[1]);
      writeOperand(I, I.Ops[0], R);
    } else {
      uint64_t R = readOperand(I, I.Ops[1]) * readOperand(I, I.Ops[2]);
      writeOperand(I, I.Ops[0], R);
    }
    ZF = SF = CF = OF = false; // imul flags approximated
    break;
  }
  case Mnemonic::Mul: {
    __uint128_t P = static_cast<__uint128_t>(maskToWidth(reg(Reg::RAX), W)) *
                    readOperand(I, I.Ops[0]);
    writeOperand(I, Operand::reg(Reg::RAX, I.Ops[0].Size),
                 static_cast<uint64_t>(P));
    writeOperand(I, Operand::reg(Reg::RDX, I.Ops[0].Size),
                 static_cast<uint64_t>(P >> (I.Ops[0].Size * 8)));
    ZF = SF = CF = OF = false;
    break;
  }
  case Mnemonic::Div: {
    uint64_t D = readOperand(I, I.Ops[0]);
    if (D == 0)
      return Status::Fault;
    __uint128_t N =
        (static_cast<__uint128_t>(maskToWidth(reg(Reg::RDX), W)) << W) |
        maskToWidth(reg(Reg::RAX), W);
    __uint128_t Q = N / D, R = N % D;
    if (Q > maskToWidth(~uint64_t(0), W))
      return Status::Fault; // #DE on quotient overflow
    writeOperand(I, Operand::reg(Reg::RAX, I.Ops[0].Size),
                 static_cast<uint64_t>(Q));
    writeOperand(I, Operand::reg(Reg::RDX, I.Ops[0].Size),
                 static_cast<uint64_t>(R));
    break;
  }
  case Mnemonic::Idiv: {
    int64_t D = signExtend(readOperand(I, I.Ops[0]), W);
    if (D == 0)
      return Status::Fault;
    __int128 N = (static_cast<__int128>(signExtend(reg(Reg::RDX), W)) << W) |
                 maskToWidth(reg(Reg::RAX), W);
    __int128 Q = N / D, R = N % D;
    writeOperand(I, Operand::reg(Reg::RAX, I.Ops[0].Size),
                 static_cast<uint64_t>(Q));
    writeOperand(I, Operand::reg(Reg::RDX, I.Ops[0].Size),
                 static_cast<uint64_t>(R));
    break;
  }
  case Mnemonic::Push: {
    uint64_t V = readOperand(I, I.Ops[0]);
    setReg(Reg::RSP, reg(Reg::RSP) - 8);
    store(reg(Reg::RSP), 8, V);
    break;
  }
  case Mnemonic::Pop: {
    uint64_t V = load(reg(Reg::RSP), 8);
    setReg(Reg::RSP, reg(Reg::RSP) + 8);
    writeOperand(I, I.Ops[0], V);
    break;
  }
  case Mnemonic::Leave:
    setReg(Reg::RSP, reg(Reg::RBP));
    setReg(Reg::RBP, load(reg(Reg::RSP), 8));
    setReg(Reg::RSP, reg(Reg::RSP) + 8);
    break;
  case Mnemonic::Call: {
    uint64_t Target;
    if (I.Ops[0].isImm())
      Target = static_cast<uint64_t>(I.Ops[0].Imm);
    else
      Target = readOperand(I, I.Ops[0]);
    setReg(Reg::RSP, reg(Reg::RSP) - 8);
    store(reg(Reg::RSP), 8, Next);
    if (auto Ext = Img->externalName(Target)) {
      Rip = Target; // conceptually in the stub
      return doExternalCall(*Ext);
    }
    Rip = Target;
    return Status::Running;
  }
  case Mnemonic::Ret: {
    uint64_t Target = load(reg(Reg::RSP), 8);
    uint64_t Extra =
        I.Ops[0].isImm() ? static_cast<uint64_t>(I.Ops[0].Imm) : 0;
    setReg(Reg::RSP, reg(Reg::RSP) + 8 + Extra);
    if (Target == RetSentinel)
      return Status::Returned;
    Rip = Target;
    return Status::Running;
  }
  case Mnemonic::Jmp: {
    if (I.Ops[0].isImm())
      Rip = static_cast<uint64_t>(I.Ops[0].Imm);
    else
      Rip = readOperand(I, I.Ops[0]);
    if (Rip == RetSentinel)
      return Status::Returned;
    return Status::Running;
  }
  case Mnemonic::Jcc:
    Rip = CondHolds(I.CC) ? static_cast<uint64_t>(I.Ops[0].Imm) : Next;
    return Status::Running;
  case Mnemonic::Setcc:
    writeOperand(I, I.Ops[0], CondHolds(I.CC) ? 1 : 0);
    break;
  case Mnemonic::Cmovcc:
    if (CondHolds(I.CC))
      writeOperand(I, I.Ops[0], readOperand(I, I.Ops[1]));
    else if (I.Ops[0].Size == 4) // 32-bit cmov zeroes the upper half anyway
      writeOperand(I, I.Ops[0], readOperand(I, I.Ops[0]));
    break;
  case Mnemonic::Xchg: {
    uint64_t A = readOperand(I, I.Ops[0]);
    uint64_t B = readOperand(I, I.Ops[1]);
    writeOperand(I, I.Ops[0], B);
    writeOperand(I, I.Ops[1], A);
    break;
  }
  case Mnemonic::Cdqe:
    if (I.OpSize == 8)
      setReg(Reg::RAX, static_cast<uint64_t>(signExtend(reg(Reg::RAX), 32)));
    else
      writeOperand(I, Operand::reg(Reg::RAX, 4),
                   static_cast<uint64_t>(signExtend(reg(Reg::RAX), 16)));
    break;
  case Mnemonic::Cqo: {
    unsigned SW = I.OpSize * 8;
    int64_t V = signExtend(reg(Reg::RAX), SW);
    writeOperand(I, Operand::reg(Reg::RDX, I.OpSize),
                 V < 0 ? ~uint64_t(0) : 0);
    break;
  }
  case Mnemonic::Nop:
  case Mnemonic::Endbr64:
    break;
  case Mnemonic::Syscall:
    // Only exit(60)/exit_group(231) are modeled.
    if (reg(Reg::RAX) == 60 || reg(Reg::RAX) == 231)
      return Status::Halted;
    setReg(Reg::RAX, 0);
    setReg(Reg::RCX, Next);
    setReg(Reg::R11, 0x246);
    break;
  case Mnemonic::Int3:
  case Mnemonic::Ud2:
  case Mnemonic::Hlt:
    return Status::Halted;
  case Mnemonic::Invalid:
    return Status::Fault;
  }

  Rip = Next;
  return Status::Running;
}

Machine::Status Machine::run(uint64_t MaxSteps) {
  for (uint64_t N = 0; N < MaxSteps; ++N) {
    Status S = step();
    if (S != Status::Running)
      return S;
  }
  return Status::StepLimit;
}

} // namespace hglift::sem
