//===- Machine.h - Concrete x86-64 emulator --------------------*- C++ -*-===//
//
// A concrete interpreter for the supported instruction subset. This is the
// semantic ground truth →B of Definition 3.1 in executable form: the
// simulation property tests (Lemma 4.5 / Theorem 4.7) run corpus binaries
// here and check that every concrete transition is covered by an edge of
// the extracted Hoare Graph. It also demonstrates the §2 weird edge: with
// aliasing pointers the emulator really does execute the hidden ret.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SEMANTICS_MACHINE_H
#define HGLIFT_SEMANTICS_MACHINE_H

#include "elf/Binary.h"
#include "support/Rng.h"
#include "x86/Decoder.h"

#include <array>
#include <functional>
#include <map>

namespace hglift::sem {

class Machine {
public:
  enum class Status : uint8_t {
    Running,
    Halted,       ///< hlt / ud2 / int3 / exit() reached
    Returned,     ///< ret popped the sentinel return address
    Fault,        ///< undecodable instruction, unmapped fetch, div-by-zero
    StepLimit,
  };

  explicit Machine(const elf::BinaryImage &Img, uint64_t Seed = 1)
      : Img(&Img), ExtRng(Seed) {
    Regs.fill(0);
  }

  std::array<uint64_t, x86::NumGPRs> Regs;
  uint64_t Rip = 0;
  bool ZF = false, SF = false, CF = false, OF = false;

  /// Sentinel: a ret to this address means "function returned to caller".
  static constexpr uint64_t RetSentinel = 0xdeadbeef00000000ULL;

  uint64_t reg(x86::Reg R) const { return Regs[x86::regNum(R)]; }
  void setReg(x86::Reg R, uint64_t V) { Regs[x86::regNum(R)] = V; }

  /// Little-endian memory access; reads fall back to the binary image for
  /// addresses never written.
  uint64_t load(uint64_t Addr, unsigned Size) const;
  void store(uint64_t Addr, unsigned Size, uint64_t V);
  bool everWritten(uint64_t Addr) const { return Mem.count(Addr) != 0; }

  /// Set up a function-call frame: rsp points at a stack with the sentinel
  /// return address on top, rip at Entry.
  void setupCall(uint64_t Entry, uint64_t StackTop = 0x7fff0000);

  /// Execute one instruction. Returns the new status.
  Status step();

  /// Run until a terminal status or MaxSteps.
  Status run(uint64_t MaxSteps = 100000);

  /// Addresses of instructions executed (for coverage checks).
  const std::vector<uint64_t> &trace() const { return Trace; }

  /// Behaviour of external (PLT) calls: by default, clobber the System V
  /// volatile registers with pseudo-random values and return. exit-like
  /// functions halt. Hook replaceable by tests.
  std::function<Status(Machine &, const std::string &Name)> ExternalHook;

private:
  Status doExternalCall(const std::string &Name);
  uint64_t evalMemAddr(const x86::Instr &I, const x86::MemOperand &M) const;
  uint64_t readOperand(const x86::Instr &I, const x86::Operand &O) const;
  void writeOperand(const x86::Instr &I, const x86::Operand &O, uint64_t V);

  const elf::BinaryImage *Img;
  std::map<uint64_t, uint8_t> Mem;
  std::vector<uint64_t> Trace;
  Rng ExtRng;
};

} // namespace hglift::sem

#endif // HGLIFT_SEMANTICS_MACHINE_H
